package pdedesim_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper (BenchmarkFig…/BenchmarkTable…), each running the corresponding
// experiment end-to-end on a reduced suite, plus microbenchmarks of the hot
// simulation paths. The full-scale reproductions (102 apps, long windows)
// are produced by `go run ./cmd/pdede-experiments -run all`; the benches
// exercise identical code with smaller inputs so `go test -bench=.` stays
// minutes, not hours.

import (
	"io"
	"testing"

	pdedesim "repro"
	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/pdede"
	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchSuite is the reduced experiment scale used by the per-figure benches.
func benchSuite() pdedesim.SuiteOptions {
	return pdedesim.SuiteOptions{
		Apps:         4,
		TotalInstrs:  600_000,
		WarmupInstrs: 250_000,
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := pdedesim.RunExperiment(id, benchSuite(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper artifact -------------------------------------

func BenchmarkFig1FrontendStalls(b *testing.B)    { benchExperiment(b, "fig1") }
func BenchmarkFig3TakenRates(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkFig4BranchMix(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkFig5RuntimePlot(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFig6TargetsPerPage(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7UniqueEntities(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFig8PageDistance(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig10HeadlineIPC(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11aAblation(b *testing.B)        { benchExperiment(b, "fig11a") }
func BenchmarkFig11bLatencyFTQ(b *testing.B)      { benchExperiment(b, "fig11b") }
func BenchmarkFig11cTwoLevel(b *testing.B)        { benchExperiment(b, "fig11c") }
func BenchmarkFig12aShotgun(b *testing.B)         { benchExperiment(b, "fig12a") }
func BenchmarkFig12bLargerBTBs(b *testing.B)      { benchExperiment(b, "fig12b") }
func BenchmarkFig12cIsoMPKI(b *testing.B)         { benchExperiment(b, "fig12c") }
func BenchmarkTable2Storage(b *testing.B)         { benchExperiment(b, "table2") }
func BenchmarkTable4AccessLatency(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkSec55PerfectDirection(b *testing.B) { benchExperiment(b, "sec55") }
func BenchmarkSec56ITTAGE(b *testing.B)           { benchExperiment(b, "sec56") }
func BenchmarkSec57ReturnsInBTB(b *testing.B)     { benchExperiment(b, "sec57") }
func BenchmarkSec511DeeperPipelines(b *testing.B) { benchExperiment(b, "sec511") }

// --- Microbenchmarks of the hot paths -------------------------------------

func benchBranches(n int) []isa.Branch {
	cfg := workload.Default()
	cfg.StaticBranches = 8000
	_, tr, err := workload.Build(cfg, uint64(n*4))
	if err != nil {
		panic(err)
	}
	return tr.Records
}

func BenchmarkBaselineLookupUpdate(b *testing.B) {
	recs := benchBranches(200_000)
	bt, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		l := bt.Lookup(r.PC)
		bt.Update(r, l)
	}
}

func BenchmarkPDedeLookupUpdate(b *testing.B) {
	recs := benchBranches(200_000)
	pd, _ := pdede.New(pdede.MultiEntryConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		l := pd.Lookup(r.PC)
		pd.Update(r, l)
	}
}

func BenchmarkTAGEPredictUpdate(b *testing.B) {
	recs := benchBranches(200_000)
	tg, _ := predictor.NewTAGE(predictor.DefaultTAGEConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		tg.Predict(r.PC)
		tg.Update(r.PC, r.Taken)
	}
}

func BenchmarkITTAGEPredictUpdate(b *testing.B) {
	it, _ := predictor.NewITTAGE(predictor.Default64KBConfig())
	pcs := make([]addr.VA, 256)
	for i := range pcs {
		pcs[i] = addr.Build(1, addr.PageNum(uint64(i)), 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := pcs[i%len(pcs)]
		it.Predict(pc)
		it.Update(pc, pc.Add(128))
		it.Observe(i&1 == 0)
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	cfg := workload.Default()
	cfg.StaticBranches = 8000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := workload.Build(cfg, 500_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(500_000, "instrs/op")
}

func BenchmarkCoreSimulation(b *testing.B) {
	app := workload.Default()
	app.StaticBranches = 8000
	_, tr, err := workload.Build(app, 500_000)
	if err != nil {
		b.Fatal(err)
	}
	opts := pdedesim.DefaultSimOptions()
	opts.WarmupInstrs = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdedesim.SimulateTrace(app, tr, pdedesim.PDedeMultiEntry(), opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Instructions()), "instrs/op")
}

// BenchmarkCoreSimulationAudit guards the cost of the invariant-audit hook:
// the "off" case must track BenchmarkCoreSimulation (a disabled audit is one
// integer compare per record), and the "every-4096" case shows what
// -selfcheck actually costs.
func BenchmarkCoreSimulationAudit(b *testing.B) {
	app := workload.Default()
	app.StaticBranches = 8000
	_, tr, err := workload.Build(app, 500_000)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name  string
		every uint64
	}{
		{"off", 0},
		{"every-4096", 4096},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := pdedesim.DefaultSimOptions()
			opts.WarmupInstrs = 0
			opts.AuditEvery = bc.every
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pdedesim.SimulateTrace(app, tr, pdedesim.PDedeMultiEntry(), opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.Instructions()), "instrs/op")
		})
	}
}

func BenchmarkTraceCodecRoundTrip(b *testing.B) {
	cfg := workload.Default()
	cfg.StaticBranches = 4000
	_, tr, err := workload.Build(cfg, 200_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, pw := io.Pipe()
		done := make(chan error, 1)
		go func() {
			err := trace.Write(pw, tr.TraceName, tr.Open())
			pw.CloseWithError(err)
			done <- err
		}()
		dec, err := trace.NewDecoder(pr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := trace.Collect(dec.Name(), dec); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}

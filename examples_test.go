package pdedesim_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"
)

// exampleDirs enumerates every runnable example; a new example must be
// added here so documentation drift fails `make test` instead of rotting.
var exampleDirs = []string{
	"quickstart",
	"custom-btb",
	"storage-sweep",
	"datacenter-study",
}

// TestExamplesCompileAndRun builds each example into a scratch directory and
// executes it: the examples are the public API's living documentation, so an
// API change that breaks them must break the test suite, not a user.
func TestExamplesCompileAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example execution skipped in -short mode")
	}
	for _, dir := range exampleDirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), dir)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			var stdout, stderr bytes.Buffer
			run := exec.Command(bin)
			run.Stdout = &stdout
			run.Stderr = &stderr
			if err := run.Run(); err != nil {
				t.Fatalf("run failed: %v\nstderr:\n%s", err, stderr.String())
			}
			if stdout.Len() == 0 {
				t.Error("example produced no output")
			}
		})
	}
}

# Developer entry points. `make check` is the gate to run before sending a
# change: build + vet + full tests, plus the race detector over the
# concurrent suite-runner and trace paths. `make check-deep` adds the
# differential-oracle sweep (internal/oracle) at full depth.

GO ?= go

# Minimum combined statement coverage for the design packages (internal/btb
# + internal/pdede) enforced by `make cover`.
COVER_MIN ?= 80.0

# Coverage profile destination: a temp path by default so `make cover` never
# litters (or accidentally commits) a profile into the work tree.
COVERPROFILE ?= $(if $(TMPDIR),$(TMPDIR),/tmp)/pdede-coverage.out

# Per-target fuzz duration. The default keeps `make fuzz` quick for local
# runs; the nightly workflow runs it at FUZZTIME=30s.
FUZZTIME ?= 15s

# Benchmark-and-regression harness (cmd/pdede-bench): BENCH_BASELINE is the
# committed reference report, BENCH_TOLERANCE the allowed per-design
# records/sec loss, BENCH_OUT where the fresh report lands.
BENCH_BASELINE ?= BENCH_PR10.json
BENCH_TOLERANCE ?= 8%
BENCH_OUT ?= $(if $(TMPDIR),$(TMPDIR),/tmp)/pdede-bench.json

# Pinned third-party tool versions, shared with CI. @latest would make lint
# results drift between a contributor's machine and the CI runner.
STATICCHECK_VERSION ?= 2025.1.2
GOVULNCHECK_VERSION ?= v1.1.5

# Packages run under the race detector by `make race`. One variable instead
# of a hardcoded list in the recipe, so new concurrent packages are added
# here (and CI picks them up automatically).
RACE_PKGS ?= ./internal/experiments/... ./internal/trace/... ./internal/core/... ./internal/oracle/... ./internal/serve/... ./internal/cache/... ./internal/predictor/...

# Tenant count for the acceptance-scale chaos run (`make serve-load`). The
# plain test suite runs the same scenario at a modest tenant count.
SERVE_LOAD_TENANTS ?= 1000

# Worker count for the `make check-deep` differential sweep: both the app
# subtests and the per-design subtests run in parallel, so the sweep's
# wall clock scales with this (results are identical for every value).
CHECK_DEEP_WORKERS ?= $(shell nproc 2>/dev/null || echo 4)

.PHONY: build test vet lint perfgate race fuzz cover bench serve-load check check-deep

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet, in three layers:
#   1. cmd/pdede-lint — the repository's own analyzer suite (determinism,
#      hotpath, bitwidth, auditcontract, atomicwrite). Pure stdlib, always
#      runs. Functions marked //pdede:hot are held to the allocation-free
#      hot-path contract; see DESIGN.md "Statically enforced invariants".
#   2. gofmt drift.
#   3. staticcheck, at the pinned $(STATICCHECK_VERSION) — optional locally
#      (skipped with a notice when not installed); the CI lint job installs
#      exactly that version and gets the full check.
lint: vet
	$(GO) run ./cmd/pdede-lint ./...
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi
	@echo "lint: ok"

# Performance-contract gate (cmd/pdede-perfgate; DESIGN.md §6.3): recompile
# the hot packages with escape/inline/bounds-check diagnostics and reconcile
# against the //pdede:noalloc / //pdede:inline / //pdede:nobce directives
# and the per-package caps in PERF_BUDGET.json. -drift also fails on caps
# that are looser than the measured counts (slack hides regressions). After
# an intentional change to the measured counts:
#   go run ./cmd/pdede-perfgate -update-budget
# then review and commit the regenerated PERF_BUDGET.json.
perfgate:
	$(GO) run ./cmd/pdede-perfgate -drift
	@echo "perfgate: ok"

# The experiment harness fans apps out across goroutines, the fault layer is
# exercised from them, the core models run under -parallel app sweeps, the
# differential runner drives parallel subtests, and the serve stack is
# concurrent end to end; keep all of it race-checked on every run.
race:
	$(GO) test -race $(RACE_PKGS)

# Short coverage-guided fuzz sessions (each seed corpus also runs as a plain
# test inside `make test`): the v1 trace decoder, the .pdtz v2 round trip,
# the ChampSim and perf script ingestion adapters, the 57-bit VA component
# algebra, and PDede's delta encode/decode path.
fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzDecoder -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -fuzz FuzzPdtzRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/champsim/ -fuzz FuzzChampSimDecoder -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/perfscript/ -fuzz FuzzPerfScriptParser -fuzztime $(FUZZTIME)
	$(GO) test ./internal/addr/ -fuzz FuzzComponentRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/addr/ -fuzz FuzzBuildDecompose -fuzztime $(FUZZTIME)
	$(GO) test ./internal/pdede/ -fuzz FuzzDelta -fuzztime $(FUZZTIME)

# Statement coverage of the BTB design packages, gated at COVER_MIN: the
# audit/oracle work exists to keep these structures honest, so their own
# test coverage must not rot.
cover:
	$(GO) test -coverprofile=$(COVERPROFILE) ./internal/btb/ ./internal/pdede/
	@total=$$($(GO) tool cover -func=$(COVERPROFILE) | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "cover: internal/btb + internal/pdede total $$total% (min $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' \
		|| { echo "cover: FAIL — below $(COVER_MIN)%"; exit 1; }

# Throughput benchmark: run the fixed (designs × apps × models) matrix —
# plus the suite runner's worker-scaling curve — and compare against the
# committed baseline, failing on regressions beyond BENCH_TOLERANCE. To
# refresh the baseline after an intentional perf change:
#   make bench BENCH_OUT=BENCH_PR7.json BENCH_TOLERANCE=99%
# then review and commit the new BENCH_PR7.json.
bench: build
	$(GO) run ./cmd/pdede-bench -q -scaling -o $(BENCH_OUT) -baseline $(BENCH_BASELINE) -tolerance $(BENCH_TOLERANCE)

# Acceptance-scale chaos run against pdede-serve: SERVE_LOAD_TENANTS
# synthetic tenants with stalling/truncating uploads and one mid-run
# drain/restart cycle, verified bit-identical against offline replay. The
# same scenario runs at a modest tenant count inside `make test`.
serve-load: build
	PDEDE_LOADTEST_TENANTS=$(SERVE_LOAD_TENANTS) $(GO) test -race -run TestChaosLoad -v -count=1 -timeout 20m ./internal/serve/loadtest

check: vet test race cover
	@echo "check: ok"

# Differential-oracle sweep at depth: every registered design runs in
# lockstep with its unbounded reference oracle over 8 catalog apps with
# periodic invariant audits. Semantic divergences and audit failures fail
# the target; capacity/aliasing divergences are legal and logged. The
# (app, design) subtests run CHECK_DEEP_WORKERS-wide.
check-deep: build
	CHECK_DEEP_APPS=8 $(GO) test ./internal/oracle/ -run TestCheckDeep -v -timeout 30m -parallel $(CHECK_DEEP_WORKERS)
	@echo "check-deep: ok"

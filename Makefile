# Developer entry points. `make check` is the gate to run before sending a
# change: build + vet + full tests, plus the race detector over the
# concurrent suite-runner and trace paths.

GO ?= go

.PHONY: build test vet race fuzz check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The experiment harness fans apps out across goroutines and the fault
# layer is exercised from them; keep both race-checked on every run.
race:
	$(GO) test -race ./internal/experiments/... ./internal/trace/...

# Short coverage-guided fuzz of the trace decoder (the seed corpus also
# runs as a plain test inside `make test`).
fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzDecoder -fuzztime 20s

check: vet test race
	@echo "check: ok"

# Developer entry points. `make check` is the gate to run before sending a
# change: build + vet + full tests, plus the race detector over the
# concurrent suite-runner and trace paths. `make check-deep` adds the
# differential-oracle sweep (internal/oracle) at full depth.

GO ?= go

# Minimum combined statement coverage for the design packages (internal/btb
# + internal/pdede) enforced by `make cover`.
COVER_MIN ?= 80.0

.PHONY: build test vet race fuzz cover check check-deep

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The experiment harness fans apps out across goroutines, the fault layer is
# exercised from them, the core models run under -parallel app sweeps, and
# the differential runner drives parallel subtests; keep all of it
# race-checked on every run.
race:
	$(GO) test -race ./internal/experiments/... ./internal/trace/... ./internal/core/... ./internal/oracle/...

# Short coverage-guided fuzz sessions (each seed corpus also runs as a plain
# test inside `make test`): the trace decoder, the 57-bit VA component
# algebra, and PDede's delta encode/decode path.
fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzDecoder -fuzztime 20s
	$(GO) test ./internal/addr/ -fuzz FuzzComponentRoundTrip -fuzztime 10s
	$(GO) test ./internal/addr/ -fuzz FuzzBuildDecompose -fuzztime 10s
	$(GO) test ./internal/pdede/ -fuzz FuzzDelta -fuzztime 20s

# Statement coverage of the BTB design packages, gated at COVER_MIN: the
# audit/oracle work exists to keep these structures honest, so their own
# test coverage must not rot.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/btb/ ./internal/pdede/
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "cover: internal/btb + internal/pdede total $$total% (min $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' \
		|| { echo "cover: FAIL — below $(COVER_MIN)%"; exit 1; }

check: vet test race cover
	@echo "check: ok"

# Differential-oracle sweep at depth: every registered design runs in
# lockstep with its unbounded reference oracle over 8 catalog apps with
# periodic invariant audits. Semantic divergences and audit failures fail
# the target; capacity/aliasing divergences are legal and logged.
check-deep: build
	CHECK_DEEP_APPS=8 $(GO) test ./internal/oracle/ -run TestCheckDeep -v -timeout 30m
	@echo "check-deep: ok"

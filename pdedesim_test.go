package pdedesim

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func quickOpts() SimOptions {
	o := DefaultSimOptions()
	o.TotalInstrs = 800_000
	o.WarmupInstrs = 350_000
	return o
}

func TestCatalogAndLookup(t *testing.T) {
	if got := len(Catalog()); got != 102 {
		t.Fatalf("catalog has %d apps", got)
	}
	if _, err := AppByName("Server-oltp-primary"); err != nil {
		t.Error(err)
	}
	if _, err := AppByName("nope"); err == nil {
		t.Error("bogus app accepted")
	}
}

func TestBuildTraceAndCharacterize(t *testing.T) {
	app := DefaultApp()
	app.StaticBranches = 2000
	tr, err := BuildTrace(app, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Characterize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if c.DynTakenRate() < 0.5 {
		t.Errorf("taken rate %v", c.DynTakenRate())
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	app := DefaultApp()
	app.StaticBranches = 12000
	tr, err := BuildTrace(app, quickOpts().TotalInstrs)
	if err != nil {
		t.Fatal(err)
	}
	base, err := SimulateTrace(app, tr, Baseline(4096), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	me, err := SimulateTrace(app, tr, PDedeMultiEntry(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if me.Speedup(base) <= 0 {
		t.Errorf("PDede-ME speedup %v on capacity-bound app", me.Speedup(base))
	}
	if me.MPKIReduction(base) <= 0 {
		t.Errorf("PDede-ME MPKI reduction %v", me.MPKIReduction(base))
	}
}

func TestAllDesignConstructors(t *testing.T) {
	designs := []func() (TargetPredictor, error){
		Baseline(4096), PDedeDefault(), PDedeMultiTarget(), PDedeMultiEntry(),
		PDedeCustom(PDedeConfig{Sets: 256, Ways: 8, PageEntries: 512, PageWays: 4, RegionEntries: 4}),
		PDedeScaled(8192, 2), DedupOnly(), ShotgunBTB(),
		TwoLevel(256, PDedeMultiEntry()), PerfectBTB(),
	}
	for i, d := range designs {
		tp, err := d()
		if err != nil {
			t.Errorf("design %d: %v", i, err)
			continue
		}
		if tp.Name() == "" {
			t.Errorf("design %d unnamed", i)
		}
	}
}

func TestPipelineModelOption(t *testing.T) {
	app := DefaultApp()
	app.StaticBranches = 6000
	tr, err := BuildTrace(app, 600_000)
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	opts.UsePipelineModel = true
	res, err := SimulateTrace(app, tr, PDedeMultiEntry(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 {
		t.Errorf("pipeline model IPC = %v", res.IPC())
	}
	analytic, err := SimulateTrace(app, tr, PDedeMultiEntry(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.BTBMisses() != analytic.BTBMisses() {
		t.Errorf("models disagree on BTB misses: %d vs %d", res.BTBMisses(), analytic.BTBMisses())
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	if got := len(Experiments()); got != 20 {
		t.Errorf("experiments = %d, want 20", got)
	}
	if got := len(ExtensionExperiments()); got != 6 {
		t.Errorf("extension experiments = %d, want 6", got)
	}
	var buf bytes.Buffer
	if err := RunExperiment("nope", QuickSuite(), &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestDumpSuiteJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a suite")
	}
	path := t.TempDir() + "/suite.json"
	opts := SuiteOptions{Apps: 2, TotalInstrs: 400_000, WarmupInstrs: 150_000}
	if err := DumpSuiteJSON(opts, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []map[string]any
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(recs) != 8 { // 2 apps × 4 designs
		t.Errorf("records = %d, want 8", len(recs))
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	opts := SuiteOptions{Apps: 4, TotalInstrs: 600_000, WarmupInstrs: 250_000}
	var buf bytes.Buffer
	if err := RunExperiment("fig3", opts, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "taken") {
		t.Errorf("fig3 output:\n%s", buf.String())
	}
}

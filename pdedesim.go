// Package pdedesim is the public API of the PDede reproduction: a
// trace-driven branch-target-buffer simulation toolkit built around the
// MICRO 2021 paper "PDede: Partitioned, Deduplicated, Delta Branch Target
// Buffer".
//
// The package wires together three layers:
//
//   - Workloads — a synthetic application generator calibrated to the
//     paper's branch-population analysis (102-app catalog across four
//     categories), producing deterministic dynamic branch traces.
//   - Designs — BTB micro-architectures implementing TargetPredictor: the
//     conventional baseline, the full-target deduplicated design, PDede in
//     its three variants, a Shotgun-style frontend BTB and a two-level
//     hierarchy.
//   - Core — a cycle-approximate decoupled-frontend core model that turns
//     prediction behaviour into IPC, MPKI and Top-Down-style stall
//     decompositions.
//
// Quick start:
//
//	app, _ := pdedesim.AppByName("Server-oltp-primary")
//	base, _ := pdedesim.Simulate(app, pdedesim.Baseline(4096), pdedesim.DefaultSimOptions())
//	pd, _ := pdedesim.Simulate(app, pdedesim.PDedeMultiEntry(), pdedesim.DefaultSimOptions())
//	fmt.Printf("IPC +%.1f%%\n", 100*pd.Speedup(base))
//
// Every published table and figure has a registered experiment; see
// Experiments and RunExperiment.
package pdedesim

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/multilevel"
	"repro/internal/oracle"
	"repro/internal/pdede"
	"repro/internal/shotgun"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported core types. These aliases are the supported public names;
// the internal packages are implementation detail.
type (
	// App configures one synthetic application.
	App = workload.Config
	// Category is the Table 1 application grouping.
	Category = workload.Category
	// Trace is a replayable in-memory branch trace.
	Trace = trace.Memory
	// TargetPredictor is the interface every BTB design implements.
	TargetPredictor = btb.TargetPredictor
	// Lookup is a BTB probe result.
	Lookup = btb.Lookup
	// Result carries IPC/MPKI/stall metrics for one run.
	Result = core.Result
	// CoreParams are the micro-architectural core parameters.
	CoreParams = core.Params
	// PDedeConfig sizes a PDede BTB.
	PDedeConfig = pdede.Config
	// Characterization holds the §3 trace statistics (Figures 3–8).
	Characterization = analysis.Characterization
	// Experiment reproduces one table/figure.
	Experiment = experiments.Experiment
	// SuiteOptions control experiment suite scale.
	SuiteOptions = experiments.Options
)

// Categories.
const (
	Server               = workload.Server
	Browser              = workload.Browser
	BusinessProductivity = workload.BusinessProductivity
	Personal             = workload.Personal
)

// Catalog returns the 102-application suite mirroring the paper's Table 1.
func Catalog() []App { return workload.Catalog() }

// AppByName finds a catalog application.
func AppByName(name string) (App, error) {
	cfg, ok := workload.CatalogByName(name)
	if !ok {
		return App{}, fmt.Errorf("pdedesim: no catalog app named %q", name)
	}
	return cfg, nil
}

// DefaultApp returns a mid-sized calibrated application configuration to
// customize.
func DefaultApp() App { return workload.Default() }

// LoadApp reads a JSON application configuration (fields missing from the
// file keep their DefaultApp values).
func LoadApp(path string) (App, error) { return workload.LoadConfig(path) }

// BuildTrace synthesizes an application and executes it into a trace of
// approximately totalInstrs instructions.
func BuildTrace(app App, totalInstrs uint64) (*Trace, error) {
	_, tr, err := workload.Build(app, totalInstrs)
	return tr, err
}

// Characterize computes the §3 branch-population statistics of a trace.
func Characterize(tr *Trace) (*Characterization, error) {
	return analysis.Characterize(tr.Open())
}

// --- Design constructors -------------------------------------------------

// Baseline returns the conventional set-associative BTB (§2) with the given
// entry count (the paper's baseline is 4096 ≈ 37.5 KiB).
func Baseline(entries int) func() (TargetPredictor, error) {
	return func() (TargetPredictor, error) {
		return btb.NewBaseline(btb.BaselineConfig{Entries: entries})
	}
}

// PDedeDefault returns the iso-storage PDede-Default design.
func PDedeDefault() func() (TargetPredictor, error) {
	return func() (TargetPredictor, error) { return pdede.New(pdede.DefaultConfig()) }
}

// PDedeMultiTarget returns the PDede-Multi Target design (§4.3.1).
func PDedeMultiTarget() func() (TargetPredictor, error) {
	return func() (TargetPredictor, error) { return pdede.New(pdede.MultiTargetConfig()) }
}

// PDedeMultiEntry returns the PDede-Multi Entry size design (§4.3.1), the
// paper's best performer.
func PDedeMultiEntry() func() (TargetPredictor, error) {
	return func() (TargetPredictor, error) { return pdede.New(pdede.MultiEntryConfig()) }
}

// PDedeCustom builds PDede from an explicit configuration.
func PDedeCustom(cfg PDedeConfig) func() (TargetPredictor, error) {
	return func() (TargetPredictor, error) { return pdede.New(cfg) }
}

// PDedeScaled returns the iso-storage PDede matching a baseline of the
// given entry count (Figure 12 sweeps). variant is 0 (Default), 1
// (MultiTarget) or 2 (MultiEntry).
func PDedeScaled(baselineEntries int, variant int) func() (TargetPredictor, error) {
	return func() (TargetPredictor, error) {
		return pdede.New(pdede.ScaledFromBaseline(baselineEntries, pdede.Variant(variant)))
	}
}

// DedupOnly returns the full-target deduplicated design (Figure 11a's first
// ablation step).
func DedupOnly() func() (TargetPredictor, error) {
	return func() (TargetPredictor, error) { return btb.NewDedupBTB(btb.DedupBTBConfig{}) }
}

// ShotgunBTB returns the Shotgun-style comparison design (§5.10).
func ShotgunBTB() func() (TargetPredictor, error) {
	return func() (TargetPredictor, error) { return shotgun.New(shotgun.DefaultConfig()) }
}

// TwoLevel composes an L0 baseline with a second-level design (§5.9).
func TwoLevel(l0Entries int, l1 func() (TargetPredictor, error)) func() (TargetPredictor, error) {
	return func() (TargetPredictor, error) {
		l0, err := btb.NewBaseline(btb.BaselineConfig{Entries: l0Entries, Ways: 4})
		if err != nil {
			return nil, err
		}
		second, err := l1()
		if err != nil {
			return nil, err
		}
		return multilevel.New(l0, second)
	}
}

// PerfectBTB returns the unbounded upper-bound predictor.
func PerfectBTB() func() (TargetPredictor, error) {
	return func() (TargetPredictor, error) { return btb.NewPerfect(), nil }
}

// --- Simulation -----------------------------------------------------------

// SimOptions configure one simulation run.
type SimOptions struct {
	// Params are the core parameters (zero value: Icelake-like, Table 3).
	Params CoreParams
	// TotalInstrs is the trace length to synthesize.
	TotalInstrs uint64
	// WarmupInstrs are excluded from statistics.
	WarmupInstrs uint64
	// PerfectDirection enables the §5.5 study.
	PerfectDirection bool
	// UsePipelineModel selects the event-timestamped pipeline core model
	// (core.RunPipeline) instead of the analytic runahead model. The two
	// share prediction state and cross-validate each other.
	UsePipelineModel bool
	// AuditEvery, when non-zero, deep-checks the design's internal
	// invariants every N records during simulation and fails the run on the
	// first violation. Zero disables auditing (no measurable overhead).
	AuditEvery uint64
}

// DefaultSimOptions mirrors the experiment harness defaults.
func DefaultSimOptions() SimOptions {
	return SimOptions{
		Params:       core.Icelake(),
		TotalInstrs:  3_500_000,
		WarmupInstrs: 1_500_000,
	}
}

// IcelakeParams returns the Table 3 core configuration.
func IcelakeParams() CoreParams { return core.Icelake() }

// Simulate builds the app's trace and runs it through the design.
func Simulate(app App, design func() (TargetPredictor, error), opts SimOptions) (*Result, error) {
	tr, err := BuildTrace(app, opts.TotalInstrs)
	if err != nil {
		return nil, err
	}
	return SimulateTrace(app, tr, design, opts)
}

// SimulateTrace runs a pre-built trace (reuse it across designs: traces are
// deterministic and replayable).
func SimulateTrace(app App, tr *Trace, design func() (TargetPredictor, error), opts SimOptions) (*Result, error) {
	return SimulateTraceContext(context.Background(), app, tr, design, opts)
}

// SimulateTraceContext is SimulateTrace with cancellation: the simulation
// loop observes ctx, so a deadline or an interrupt ends the run with the
// context's error.
func SimulateTraceContext(ctx context.Context, app App, tr *Trace, design func() (TargetPredictor, error), opts SimOptions) (*Result, error) {
	tp, err := design()
	if err != nil {
		return nil, err
	}
	if opts.Params.FetchWidth == 0 {
		opts.Params = core.Icelake()
	}
	cfg := core.Config{
		Params:           opts.Params,
		BackendCPI:       app.BackendCPI,
		BTB:              tp,
		WarmupInstrs:     opts.WarmupInstrs,
		PerfectDirection: opts.PerfectDirection,
		AuditEvery:       opts.AuditEvery,
	}
	if opts.UsePipelineModel {
		return core.RunPipelineContext(ctx, cfg, tr)
	}
	return core.RunContext(ctx, cfg, tr)
}

// --- Self-checking ---------------------------------------------------------

// DiffReport aggregates one differential run of a design against its
// unbounded reference oracle: per-class divergence counts (capacity and
// aliasing effects are legal; semantic divergences and audit failures are
// bugs), recorded samples, and an Err() accessor that is non-nil exactly
// when a fatal divergence was found.
type DiffReport = oracle.Report

// DiffOptions tune a differential run (audit cadence, sample caps, step
// bound). The zero value is usable.
type DiffOptions = oracle.Options

// CheckDesign drives the design and an automatically-selected reference
// oracle in lockstep over the app's trace, comparing every prediction and
// deep-auditing internal invariants periodically. The report is returned
// even when divergences were found; inspect report.Err() for fatality.
func CheckDesign(ctx context.Context, app App, design func() (TargetPredictor, error), totalInstrs uint64, opts DiffOptions) (*DiffReport, error) {
	tr, err := BuildTrace(app, totalInstrs)
	if err != nil {
		return nil, err
	}
	tp, err := design()
	if err != nil {
		return nil, err
	}
	return oracle.DiffDesign(ctx, tp, tr, opts)
}

// TraceSource is a replayable trace provider: the in-memory Trace, a
// file-backed .pdtz mapping, or anything else producing identical reader
// streams on every Open. Real ingested traces (ChampSim, perf/LBR) satisfy
// it via package internal/trace/ingest.
type TraceSource = trace.Source

// DiffDesignNames lists the design roster the differential oracle covers,
// in registry order.
func DiffDesignNames() []string {
	ds := experiments.DiffDesigns()
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name
	}
	return names
}

// CheckDesignOnTrace runs one diff-roster design (by registry name) and its
// reference oracle in lockstep over an arbitrary trace source — typically a
// real ingested trace rather than a synthetic app. The report is returned
// even when divergences were found; inspect report.Err() for fatality.
func CheckDesignOnTrace(ctx context.Context, name string, src TraceSource, opts DiffOptions) (*DiffReport, error) {
	for _, d := range experiments.DiffDesigns() {
		if d.Name != name {
			continue
		}
		tp, err := d.New()
		if err != nil {
			return nil, err
		}
		return oracle.DiffDesign(ctx, tp, src, opts)
	}
	return nil, fmt.Errorf("pdedesim: no diff design named %q (see DiffDesignNames)", name)
}

// --- Experiments ----------------------------------------------------------

// Experiments lists every table/figure reproduction in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExtensionExperiments lists the design-choice ablations that go beyond the
// paper (replacement policy, table sizing, NT-register depth, wrong-path
// pollution).
func ExtensionExperiments() []Experiment { return experiments.ExtExperiments() }

// RunExperiment executes one experiment by id ("fig10", "table2", ...),
// writing its report to w. Zero-valued options run the full 102-app suite.
func RunExperiment(id string, opts SuiteOptions, w io.Writer) error {
	return RunExperimentContext(context.Background(), id, opts, w)
}

// RunExperimentContext is RunExperiment with cancellation and failure
// aggregation: ctx cancels the suite mid-run (completed apps still land in
// the checkpoint, if one is configured), and with opts.KeepGoing the
// report is written from the apps that succeeded while the joined per-app
// failures come back as the returned error — callers get both the partial
// report and a non-nil signal for their exit code.
func RunExperimentContext(ctx context.Context, id string, opts SuiteOptions, w io.Writer) error {
	e, ok := experiments.ByID(id)
	if !ok {
		return fmt.Errorf("pdedesim: unknown experiment %q", id)
	}
	r := experiments.NewRunner(opts).WithContext(ctx)
	fmt.Fprintf(w, "== %s\n   paper: %s\n\n", e.Title, e.Paper)
	if err := e.Run(r, w); err != nil {
		return err
	}
	return r.Err()
}

// QuickSuite returns reduced options for fast exploratory runs.
func QuickSuite() SuiteOptions { return experiments.QuickOptions() }

// DumpSuiteJSON runs the Figure 10 design set (baseline + the three PDede
// variants) over the application suite and writes per-(app, design) JSON
// records to path — the machine-readable artifact for external plotting.
func DumpSuiteJSON(opts SuiteOptions, path string) error {
	return DumpSuiteJSONContext(context.Background(), opts, path)
}

// DumpSuiteJSONContext is DumpSuiteJSON with cancellation. With
// opts.KeepGoing the dump covers the apps that succeeded and the joined
// per-app failures are returned after the file is written.
func DumpSuiteJSONContext(ctx context.Context, opts SuiteOptions, path string) error {
	r := experiments.NewRunner(opts)
	suite, err := r.RunContext(ctx, experiments.StandardDesigns())
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := suite.WriteJSON(f); err != nil {
		return err
	}
	return suite.Err()
}

package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// recordBatch is the reusable decode-buffer size of the record loops: the
// trace is pulled in batches of this many records (trace.ReadBatch), which
// amortizes Reader interface dispatch, and the context is checked once per
// batch — the same cadence as the previous per-record loop's throttled check.
const recordBatch = 1 << 12

// checkCtx returns the context's error, wrapped with simulation progress,
// when the context is done.
func checkCtx(ctx context.Context, records uint64) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: simulation stopped after %d records: %w", records, err)
	}
	return nil
}

// serializeFrac is the share of a multi-cycle BTB lookup's extra latency
// that the taken-branch recurrence exposes as lost BPU throughput; the rest
// is overlapped by next-block prediction (§5.4's decoupled-frontend
// argument). Calibrated so that the always-2-cycle configuration costs
// about one point of IPC gain, as the paper measures.
const serializeFrac = 0.3

// Config assembles one simulation: a core, a branch-prediction unit, and
// the windowing methodology (warmup then measure, per §5.1).
type Config struct {
	Params Params

	// BackendCPI is the cycles-per-instruction the backend would sustain
	// with a perfect frontend (per-app data-dependency pressure; comes from
	// the workload config).
	BackendCPI float64

	// BTB is the target predictor under evaluation.
	BTB btb.TargetPredictor
	// Direction predicts conditional branches (nil selects a default TAGE).
	Direction predictor.Direction
	// PerfectDirection short-circuits direction prediction (§5.5).
	PerfectDirection bool
	// ITTAGE, when non-nil, serves indirect branches instead of the BTB
	// (§5.6: indirect targets are then not allocated in the BTB).
	ITTAGE *predictor.ITTAGE
	// StoreReturnsInBTB drops the RAS and routes returns through the BTB
	// (§5.7). The BTB must be configured to accept returns.
	StoreReturnsInBTB bool

	// UsePipeline requests the event-timestamped pipeline model
	// (RunPipeline); harnesses that accept a Config honour it when
	// dispatching. Run itself ignores the flag.
	UsePipeline bool

	// WarmupInstrs are executed with all structures live but no statistics
	// (the paper warms with 100M+ and measures 10M+; scale to taste).
	WarmupInstrs uint64
	// MeasureInstrs bounds the measured window (0 = to end of trace).
	MeasureInstrs uint64

	// AuditEvery, when non-zero, deep-checks the BTB's internal invariants
	// (btb.Auditable) every N records and aborts the run on the first
	// violation. 0 disables auditing; the only residual per-record cost is
	// one integer compare.
	AuditEvery uint64
}

// auditBTB runs the configured periodic deep-check, wrapping failures with
// enough context to locate the corrupting record window.
func auditBTB(a btb.Auditable, records uint64) error {
	if err := a.Audit(); err != nil {
		return fmt.Errorf("core: BTB audit failed at record %d: %w", records, err)
	}
	return nil
}

// Run replays one trace through the configured core.
func Run(cfg Config, src trace.Source) (*Result, error) {
	return RunContext(context.Background(), cfg, src)
}

// RunContext is Run with cancellation: the record loop observes ctx every
// few thousand records, so a deadline or cancel ends the simulation with
// the context's error instead of running the trace to completion. The
// simulation itself is a Session drained from src, so batch-streamed
// (serve) and whole-trace runs share one code path bit-for-bit.
func RunContext(ctx context.Context, cfg Config, src trace.Source) (*Result, error) {
	se, err := NewSession(cfg, src.Name())
	if err != nil {
		return nil, err
	}

	r := src.Open()
	batch := make([]isa.Branch, recordBatch)
	for {
		if err := checkCtx(ctx, se.Records()); err != nil {
			return nil, err
		}
		n, rerr := trace.ReadBatch(r, batch)
		_, done, err := se.Apply(batch[:n])
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return nil, rerr
		}
		if n == 0 {
			break
		}
	}
	if err := se.Audit(); err != nil {
		return nil, err
	}
	return se.Result(), nil
}

type sim struct {
	cfg    Config
	bpu    *bpu
	ic     *cache.Cache
	l2     *cache.Cache
	res    *Result
	effCPI float64

	seen     uint64 // total instructions processed (incl. warmup)
	measured uint64 // instructions inside the measured window
	lead     float64
	// produceTab caches ceil(len/FetchWidth) for short blocks, replacing a
	// per-record integer division (see initProduceTab).
	produceTab [produceTabLen]float64
	// refill marks that the frontend pipeline was just flushed: the first
	// multi-cycle BTB lookup afterwards exposes its extra latency (a
	// pipelined 2-cycle BTB costs throughput nothing in steady state, only
	// restart latency — §5.4).
	refill bool
}

// step processes one dynamic branch record: the basic block ending in it
// plus the branch's prediction, resolution and cycle accounting.
func (s *sim) step(b isa.Branch) {
	measuring := s.seen >= s.cfg.WarmupInstrs
	s.seen += uint64(b.BlockLen)
	if measuring {
		s.measured += uint64(b.BlockLen)
	}

	misses, fillLat, _ := s.fetch(b, measuring)

	// --- Branch prediction unit (lookup, direction, classification,
	// training) — shared with the pipeline model.
	pr := s.bpu.predict(b)
	if measuring {
		s.bpu.note(s.res, b, pr)
	}

	s.account(b, pr, misses, fillLat, measuring)
}

// fetch models instruction fetch for the block [BlockStart, PC]. ICache
// misses fill from the L2; code that misses there too pays the longer
// latency. It returns the miss count, the fill latency the first miss pays,
// and whether the fill came from beyond the L2 (recorded by the shared
// warmup pass so per-design replay can reproduce the latency without
// re-simulating the caches).
func (s *sim) fetch(b isa.Branch, measuring bool) (misses int, fillLat float64, l2miss bool) {
	p := &s.cfg.Params
	blockStart := b.PC.Add(-uint64(b.BlockLen-1) * isa.InstrBytes)
	misses = s.ic.AccessRange(blockStart, b.PC)
	fillLat = float64(p.ICacheMissLat)
	if misses > 0 {
		if s.l2.AccessRange(blockStart, b.PC) > 0 {
			fillLat = float64(p.L2MissLat)
			l2miss = true
		}
		if measuring {
			s.res.ICacheMisses += uint64(misses)
		}
	}
	if measuring {
		s.res.ICacheAccesses++
	}
	return misses, fillLat, l2miss
}

// account applies one record's cycle accounting. It is shared verbatim by
// the cold path (step) and the warm-replay path (replayStep): the lead and
// refill recurrences must evolve bit-identically in both, so the arithmetic
// lives in exactly one place.
func (s *sim) account(b isa.Branch, pr prediction, misses int, fillLat float64, measuring bool) {
	p := &s.cfg.Params
	// --- Cycle accounting (runahead/lead model, see package comment).
	// The BTB's extra lookup cycle is pipelined: back-to-back lookups
	// overlap, so steady-state supply is unaffected; the latency is exposed
	// only when the frontend restarts after a flush (and, mildly, as slower
	// runahead growth, modelled by the lead debit below).
	produce := produceCycles(&s.produceTab, b.BlockLen, p.FetchWidth)
	extraUsed := b.Taken && pr.look.Hit && pr.look.ExtraLatency > 0 && (pr.dirPred || !b.Kind.IsConditional())
	if extraUsed {
		// Taken-branch lookups form a serial recurrence (the next lookup
		// address is this lookup's target), so a multi-cycle BTB cannot be
		// fully pipelined across taken branches; next-block prediction
		// overlaps most of it. After a flush the full latency is exposed
		// once while the pipeline refills.
		produce += serializeFrac * float64(pr.look.ExtraLatency)
		if s.refill {
			produce += (1 - serializeFrac) * float64(pr.look.ExtraLatency)
		}
	}
	if b.Taken || !b.Kind.IsConditional() {
		s.refill = false
	}
	icacheStall := 0.0
	if misses > 0 {
		icacheStall = fillLat - s.lead
		if icacheStall < 0 {
			icacheStall = 0
		}
		// Extra misses in the same block fill back-to-back (pipelined L2).
		icacheStall += 2 * float64(misses-1)
	}
	consume := float64(b.BlockLen) * s.effCPI
	supply := produce + icacheStall
	bubble := supply - consume - s.lead
	if bubble < 0 {
		bubble = 0
	}
	s.lead += consume + bubble - supply
	if s.lead < 0 {
		s.lead = 0
	}
	if lim := float64(p.FetchQueueEntries); s.lead > lim {
		s.lead = lim
	}

	if measuring {
		s.res.Cycles += consume + bubble + float64(pr.penalty)
		s.res.BackendCycles += consume
		s.res.FrontendBubbles += bubble
	}
	if pr.penalty > 0 {
		s.lead = 0
		s.refill = true
		if p.WrongPathLines > 0 {
			s.polluteWrongPath(b, pr.look)
		}
	}
}

// produceTabLen bounds the produce-cycles lookup table; blocks longer than
// this (vanishingly rare — a block is one basic block) fall back to the
// division.
const produceTabLen = 256

// initProduceTab fills tab[l] = ceil(l/fetchWidth) so the per-record cycle
// accounting indexes instead of dividing.
func initProduceTab(tab *[produceTabLen]float64, fetchWidth int) {
	for i := range tab {
		tab[i] = float64((i + fetchWidth - 1) / fetchWidth)
	}
}

// produceCycles returns ceil(blockLen/fetchWidth) — width-limited cycles to
// supply the block — via the precomputed table when possible.
func produceCycles(tab *[produceTabLen]float64, blockLen uint16, fetchWidth int) float64 {
	if int(blockLen) < produceTabLen {
		return tab[blockLen]
	}
	return float64((int(blockLen) + fetchWidth - 1) / fetchWidth)
}

// polluteWrongPath models the ICache pollution of wrong-path fetch: until a
// resteer resolves, the frontend streams lines from wherever it (wrongly)
// went — the mispredicted target if it had one, the fallthrough otherwise.
func (s *sim) polluteWrongPath(b isa.Branch, look btb.Lookup) {
	start := b.Fallthrough()
	if look.Hit && look.Target != b.NextPC() {
		start = look.Target
	}
	line := uint64(s.cfg.Params.ICacheLineBytes)
	for i := 0; i < s.cfg.Params.WrongPathLines; i++ {
		s.ic.Access(start.Add(uint64(i) * line))
	}
}

package core

import (
	"fmt"

	"repro/internal/isa"
)

// Result aggregates one simulation run (measured window only).
type Result struct {
	App    string
	Design string

	Instructions uint64
	Cycles       float64

	DynBranches  uint64
	TakenDyn     uint64
	LookupsTaken uint64

	// BTBMissByClass counts the paper's §5.1 miss definition — taken branch
	// with no BTB entry or a wrong predicted target — per branch class.
	BTBMissByClass [isa.NumClasses]uint64
	TakenByClass   [isa.NumClasses]uint64
	DirMispredicts uint64
	RASMispredicts uint64
	ICacheMisses   uint64
	ICacheAccesses uint64
	ExtraBTBCycles uint64 // pointer-path (2-cycle) lookups
	DeltaServed    uint64 // same-page (single-cycle) hits
	NTRegisterhits uint64 // misses served by the Next Target register
	WrongPathFlush uint64 // total resteers
	BTBResteers    uint64 // resteers attributed to BTB target misses
	DirResteers    uint64 // resteers attributed to direction mispredicts
	RetResteers    uint64 // resteers attributed to return mispredicts

	// Cycle decomposition (Figure 1): backend busy, frontend bubbles from
	// supply latency (icache + BPU throughput), and resteer penalties.
	BackendCycles    float64
	FrontendBubbles  float64
	BTBResteerCycles float64
	DirResteerCycles float64
	RetResteerCycles float64
}

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / r.Cycles
}

// BTBMisses returns total BTB target misses.
func (r *Result) BTBMisses() uint64 {
	var n uint64
	for _, m := range r.BTBMissByClass {
		n += m
	}
	return n
}

// BTBMPKI is the headline metric: BTB misses per kilo-instruction.
func (r *Result) BTBMPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.BTBMisses()) * 1000 / float64(r.Instructions)
}

// ClassMPKI returns the per-class BTB MPKI.
func (r *Result) ClassMPKI(c isa.Class) float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.BTBMissByClass[c]) * 1000 / float64(r.Instructions)
}

// DirMPKI returns direction mispredicts per kilo-instruction.
func (r *Result) DirMPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.DirMispredicts) * 1000 / float64(r.Instructions)
}

// FrontendStallFrac is the fraction of all cycles lost to frontend causes
// (bubbles plus every resteer penalty) — the Figure 1 numerator.
func (r *Result) FrontendStallFrac() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return (r.FrontendBubbles + r.BTBResteerCycles + r.DirResteerCycles + r.RetResteerCycles) / r.Cycles
}

// BTBResteerShareOfStalls is the share of frontend stall cycles caused by
// BTB resteers (the paper reports >40%).
func (r *Result) BTBResteerShareOfStalls() float64 {
	s := r.FrontendBubbles + r.BTBResteerCycles + r.DirResteerCycles + r.RetResteerCycles
	if s == 0 {
		return 0
	}
	return r.BTBResteerCycles / s
}

// Speedup returns r's IPC gain over a baseline run of the same app.
func (r *Result) Speedup(base *Result) float64 {
	b := base.IPC()
	if b == 0 {
		return 0
	}
	return r.IPC()/b - 1
}

// MPKIReduction returns the relative BTB MPKI reduction vs a baseline run.
func (r *Result) MPKIReduction(base *Result) float64 {
	b := base.BTBMPKI()
	if b == 0 {
		return 0
	}
	return 1 - r.BTBMPKI()/b
}

func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: IPC=%.3f BTB-MPKI=%.3f dir-MPKI=%.3f fe-stall=%.1f%%",
		r.App, r.Design, r.IPC(), r.BTBMPKI(), r.DirMPKI(), 100*r.FrontendStallFrac())
}

package core

import (
	"math"
	"testing"

	"repro/internal/btb"
	"repro/internal/pdede"
	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testTrace(t *testing.T, branches int) (*trace.Memory, workload.Config) {
	t.Helper()
	cfg := workload.Default()
	cfg.StaticBranches = branches
	_, tr, err := workload.Build(cfg, 600_000)
	if err != nil {
		t.Fatal(err)
	}
	return tr, cfg
}

func runWith(t *testing.T, tp btb.TargetPredictor, tr *trace.Memory, app workload.Config, mod func(*Config)) *Result {
	t.Helper()
	cfg := Config{
		Params:       Icelake(),
		BackendCPI:   app.BackendCPI,
		BTB:          tp,
		WarmupInstrs: 200_000,
	}
	if mod != nil {
		mod(&cfg)
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParamsValidate(t *testing.T) {
	if err := Icelake().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Icelake()
	bad.FetchWidth = 0
	if bad.Validate() == nil {
		t.Error("zero fetch width accepted")
	}
	bad = Icelake()
	bad.ExecResteer = 1 // below decode resteer
	if bad.Validate() == nil {
		t.Error("exec < decode resteer accepted")
	}
}

func TestScale(t *testing.T) {
	p := Icelake()
	s := p.Scale(2)
	if s.DecodeResteer != 2*p.DecodeResteer || s.ExecResteer != 2*p.ExecResteer {
		t.Errorf("Scale(2) penalties: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	tr, app := testTrace(t, 2000)
	base, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 512})
	if _, err := Run(Config{Params: Icelake(), BackendCPI: app.BackendCPI}, tr); err == nil {
		t.Error("nil BTB accepted")
	}
	if _, err := Run(Config{Params: Icelake(), BTB: base}, tr); err == nil {
		t.Error("zero BackendCPI accepted")
	}
	bad := Icelake()
	bad.RASEntries = 0
	if _, err := Run(Config{Params: bad, BackendCPI: 0.5, BTB: base}, tr); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestDeterminism(t *testing.T) {
	tr, app := testTrace(t, 2000)
	mk := func() *Result {
		b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
		return runWith(t, b, tr, app, nil)
	}
	a, b := mk(), mk()
	if a.Cycles != b.Cycles || a.BTBMisses() != b.BTBMisses() || a.Instructions != b.Instructions {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestIPCBounded(t *testing.T) {
	tr, app := testTrace(t, 2000)
	b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	res := runWith(t, b, tr, app, nil)
	if ipc := res.IPC(); ipc <= 0 || ipc > float64(Icelake().RetireWidth) {
		t.Errorf("IPC = %v outside (0, retire width]", ipc)
	}
	// Backend CPI bound: IPC cannot exceed 1/BackendCPI either.
	if ipc := res.IPC(); ipc > 1/app.BackendCPI+1e-9 {
		t.Errorf("IPC %v exceeds backend bound %v", ipc, 1/app.BackendCPI)
	}
}

func TestPerfectBTBNearZeroTargetMPKI(t *testing.T) {
	tr, app := testTrace(t, 2000)
	res := runWith(t, btb.NewPerfect(), tr, app, nil)
	// Only compulsory misses and genuine target changes remain.
	if res.BTBMPKI() > 3.0 {
		t.Errorf("perfect BTB MPKI = %v, want small", res.BTBMPKI())
	}
	base, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	rb := runWith(t, base, tr, app, nil)
	if res.BTBMPKI() > rb.BTBMPKI() {
		t.Errorf("perfect BTB (%v) missed more than baseline (%v)", res.BTBMPKI(), rb.BTBMPKI())
	}
}

func TestCapacityOrdering(t *testing.T) {
	// A capacity-bound app: bigger BTBs must monotonically reduce MPKI.
	tr, app := testTrace(t, 16000)
	var prev float64 = math.Inf(1)
	for _, entries := range []int{1024, 4096, 16384} {
		b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: entries})
		res := runWith(t, b, tr, app, nil)
		if res.BTBMPKI() > prev {
			t.Errorf("MPKI rose from %v to %v at %d entries", prev, res.BTBMPKI(), entries)
		}
		prev = res.BTBMPKI()
	}
}

func TestPDedeBeatsBaselineWhenCapacityBound(t *testing.T) {
	tr, app := testTrace(t, 16000)
	base, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	rb := runWith(t, base, tr, app, nil)
	pd, _ := pdede.New(pdede.MultiEntryConfig())
	rp := runWith(t, pd, tr, app, nil)
	if rp.BTBMPKI() >= rb.BTBMPKI() {
		t.Errorf("PDede-ME MPKI %v not below baseline %v", rp.BTBMPKI(), rb.BTBMPKI())
	}
	if rp.IPC() <= rb.IPC() {
		t.Errorf("PDede-ME IPC %v not above baseline %v", rp.IPC(), rb.IPC())
	}
}

func TestVariantOrdering(t *testing.T) {
	tr, app := testTrace(t, 16000)
	mpki := map[string]float64{}
	for _, cfg := range []pdede.Config{pdede.DefaultConfig(), pdede.MultiTargetConfig(), pdede.MultiEntryConfig()} {
		pd, err := pdede.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mpki[pd.Name()] = runWith(t, pd, tr, app, nil).BTBMPKI()
	}
	if mpki["pdede-mt"] > mpki["pdede"]*1.02 {
		t.Errorf("MultiTarget (%v) worse than Default (%v)", mpki["pdede-mt"], mpki["pdede"])
	}
	if mpki["pdede-me"] > mpki["pdede-mt"]*1.02 {
		t.Errorf("MultiEntry (%v) worse than MultiTarget (%v)", mpki["pdede-me"], mpki["pdede-mt"])
	}
}

func TestWarmupReducesColdMisses(t *testing.T) {
	tr, app := testTrace(t, 8000)
	mk := func(warm uint64) float64 {
		b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 16384})
		res := runWith(t, b, tr, app, func(c *Config) { c.WarmupInstrs = warm })
		return res.BTBMPKI()
	}
	cold := mk(0)
	warm := mk(300_000)
	if warm >= cold {
		t.Errorf("warmup did not reduce cold misses: %v vs %v", warm, cold)
	}
}

func TestMeasureWindowLimit(t *testing.T) {
	tr, app := testTrace(t, 2000)
	b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	res := runWith(t, b, tr, app, func(c *Config) {
		c.WarmupInstrs = 100_000
		c.MeasureInstrs = 50_000
	})
	if res.Instructions < 50_000 || res.Instructions > 52_000 {
		t.Errorf("measured %d instructions, want ≈50000", res.Instructions)
	}
}

func TestPerfectDirectionRemovesDirResteers(t *testing.T) {
	tr, app := testTrace(t, 4000)
	b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	res := runWith(t, b, tr, app, func(c *Config) { c.PerfectDirection = true })
	if res.DirMispredicts != 0 {
		t.Errorf("perfect direction left %d mispredicts", res.DirMispredicts)
	}
	b2, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	res2 := runWith(t, b2, tr, app, nil)
	if res.IPC() <= res2.IPC() {
		t.Errorf("perfect direction IPC %v not above real %v", res.IPC(), res2.IPC())
	}
}

func TestITTAGEHandlesIndirects(t *testing.T) {
	tr, app := testTrace(t, 4000)
	mk := func(withIT bool) *Result {
		b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
		return runWith(t, b, tr, app, func(c *Config) {
			if withIT {
				it, err := predictor.NewITTAGE(predictor.Default64KBConfig())
				if err != nil {
					t.Fatal(err)
				}
				c.ITTAGE = it
			}
		})
	}
	with := mk(true)
	without := mk(false)
	// With ITTAGE, indirect branches never count against the BTB.
	if with.BTBMissByClass[2] != 0 { // isa.ClassIndirect
		t.Errorf("indirect BTB misses with ITTAGE: %d", with.BTBMissByClass[2])
	}
	if without.BTBMissByClass[2] == 0 {
		t.Error("no indirect misses without ITTAGE — workload broken?")
	}
}

func TestStoreReturnsInBTB(t *testing.T) {
	tr, app := testTrace(t, 4000)
	pd, _ := pdede.New(func() pdede.Config {
		c := pdede.MultiEntryConfig()
		c.StoreReturns = true
		return c
	}())
	res := runWith(t, pd, tr, app, func(c *Config) { c.StoreReturnsInBTB = true })
	if res.TakenByClass[3] == 0 {
		t.Fatal("no returns in trace")
	}
	if res.BTBMissByClass[3] == 0 {
		t.Error("returns stored in BTB but never missed — suspicious for call-stack targets")
	}
	// RAS path should beat BTB-stored returns (the paper sees lower gains).
	pd2, _ := pdede.New(pdede.MultiEntryConfig())
	res2 := runWith(t, pd2, tr, app, nil)
	if res2.RASMispredicts > res2.TakenByClass[3]/10 {
		t.Errorf("RAS mispredicted %d of %d returns", res2.RASMispredicts, res2.TakenByClass[3])
	}
}

func TestFetchQueueSensitivity(t *testing.T) {
	tr, app := testTrace(t, 16000)
	mk := func(ftq int) float64 {
		pd, _ := pdede.New(pdede.MultiEntryConfig())
		res := runWith(t, pd, tr, app, func(c *Config) { c.Params.FetchQueueEntries = ftq })
		return res.IPC()
	}
	small, large := mk(8), mk(128)
	if small > large {
		t.Errorf("smaller FTQ produced higher IPC: %v vs %v", small, large)
	}
}

func TestDeeperPipelineRaisesBTBCost(t *testing.T) {
	tr, app := testTrace(t, 16000)
	speedup := func(scale float64) float64 {
		params := Icelake()
		if scale != 1 {
			params = params.Scale(scale)
		}
		base, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
		rb := runWith(t, base, tr, app, func(c *Config) { c.Params = params })
		pd, _ := pdede.New(pdede.MultiEntryConfig())
		rp := runWith(t, pd, tr, app, func(c *Config) { c.Params = params })
		return rp.Speedup(rb)
	}
	s1, s2 := speedup(1), speedup(2)
	if s2 <= s1 {
		t.Errorf("deeper pipeline did not raise PDede's gain: %v vs %v", s2, s1)
	}
}

func TestCycleDecompositionAddsUp(t *testing.T) {
	tr, app := testTrace(t, 8000)
	b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	res := runWith(t, b, tr, app, nil)
	sum := res.BackendCycles + res.FrontendBubbles +
		res.BTBResteerCycles + res.DirResteerCycles + res.RetResteerCycles
	if math.Abs(sum-res.Cycles) > 1e-6*res.Cycles {
		t.Errorf("decomposition %v != total cycles %v", sum, res.Cycles)
	}
	if res.FrontendStallFrac() <= 0 || res.FrontendStallFrac() >= 1 {
		t.Errorf("frontend stall fraction = %v", res.FrontendStallFrac())
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Instructions: 1000, Cycles: 2000}
	r.BTBMissByClass[0] = 5
	if r.IPC() != 0.5 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if r.BTBMPKI() != 5 {
		t.Errorf("BTBMPKI = %v", r.BTBMPKI())
	}
	base := &Result{Instructions: 1000, Cycles: 4000}
	base.BTBMissByClass[0] = 10
	if got := r.Speedup(base); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("Speedup = %v, want 1.0", got)
	}
	if got := r.MPKIReduction(base); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("MPKIReduction = %v, want 0.5", got)
	}
	var zero Result
	if zero.IPC() != 0 || zero.BTBMPKI() != 0 || zero.FrontendStallFrac() != 0 {
		t.Error("zero result ratios should be zero")
	}
	if zero.String() == "" {
		t.Error("empty String")
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// RunPipeline is the repository's second, more literal core model: instead
// of the analytic runahead credit of Run, it tracks explicit per-block
// timestamps through BPU → fetch-target queue → ICache/fetch → decode →
// retire, like an event-driven pipeline simulation.
//
//	bpuDone   — cycle the block's prediction leaves the BPU (1 block/cycle,
//	            stalled by FTQ occupancy; after a flush, the first
//	            prediction pays the BTB's extra latency, which is otherwise
//	            pipelined away)
//	fetchDone — ICache fill (prefetch starts at FTQ insert) plus
//	            width-limited fetch, in order
//	decodeAt  — fetchDone + decode depth
//	retire    — in-order, RetireWidth/BackendCPI limited
//
// Mispredictions flush: decode-detected (wrong direct target) restarts the
// BPU at decodeAt; execute-detected (direction, indirect, return) restarts
// at decodeAt + (ExecResteer − DecodeResteer). The penalties therefore
// emerge from pipeline geometry rather than being charged as constants —
// cross-validating the analytic model (see pipeline_test.go).
//
// Both models share the bpu (identical prediction, training and MPKI
// accounting); they differ only in how prediction behaviour becomes cycles.
func RunPipeline(cfg Config, src trace.Source) (*Result, error) {
	return RunPipelineContext(context.Background(), cfg, src)
}

// RunPipelineContext is RunPipeline with cancellation, mirroring
// RunContext: the record loop observes ctx every few thousand records.
func RunPipelineContext(ctx context.Context, cfg Config, src trace.Source) (*Result, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.BTB == nil {
		return nil, fmt.Errorf("core: no BTB configured")
	}
	if cfg.BackendCPI <= 0 {
		return nil, fmt.Errorf("core: BackendCPI must be positive")
	}
	dir := cfg.Direction
	if dir == nil {
		var err error
		dir, err = predictor.NewTAGE(predictor.DefaultTAGEConfig())
		if err != nil {
			return nil, err
		}
	}
	ic, err := cache.New(cfg.Params.ICacheBytes, cfg.Params.ICacheWays, cfg.Params.ICacheLineBytes)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(cfg.Params.L2Bytes, cfg.Params.L2Ways, cfg.Params.ICacheLineBytes)
	if err != nil {
		return nil, err
	}

	p := &pipeline{
		cfg: cfg,
		ic:  ic,
		l2:  l2,
		res: &Result{App: src.Name(), Design: cfg.BTB.Name() + "+pipe"},
	}
	p.bpu = &bpu{cfg: &p.cfg, dir: dir, ras: predictor.NewRAS(cfg.Params.RASEntries)}
	p.effCPI = cfg.BackendCPI
	if min := 1 / float64(cfg.Params.RetireWidth); p.effCPI < min {
		p.effCPI = min
	}
	p.ftqFree = make([]float64, cfg.Params.FetchQueueEntries)
	initProduceTab(&p.produceTab, cfg.Params.FetchWidth)

	var auditable btb.Auditable
	if cfg.AuditEvery != 0 {
		auditable, _ = cfg.BTB.(btb.Auditable)
	}

	r := src.Open()
	records := uint64(0)
	batch := make([]isa.Branch, recordBatch)
loop:
	for {
		if err := checkCtx(ctx, records); err != nil {
			return nil, err
		}
		n, rerr := trace.ReadBatch(r, batch)
		for i := 0; i < n; i++ {
			p.step(batch[i])
			records++
			if auditable != nil && records%cfg.AuditEvery == 0 {
				if err := auditBTB(auditable, records-1); err != nil {
					return nil, err
				}
			}
			if cfg.MeasureInstrs != 0 && p.measured >= cfg.MeasureInstrs {
				break loop
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return nil, rerr
		}
		if n == 0 {
			break
		}
	}
	if auditable != nil {
		if err := auditBTB(auditable, records); err != nil {
			return nil, err
		}
	}
	if p.retireEnd > p.measureStart {
		p.res.Cycles = p.retireEnd - p.measureStart
	}
	return p.res, nil
}

type pipeline struct {
	cfg    Config
	bpu    *bpu
	ic     *cache.Cache
	l2     *cache.Cache
	res    *Result
	effCPI float64

	seen     uint64
	measured uint64

	// Timestamps, in cycles since simulation start.
	bpuDone      float64   // last prediction completion
	fetchEnd     float64   // last fetch completion (fetch is in-order)
	retireEnd    float64   // last retirement completion
	ftqFree      []float64 // ring: fetch-completion times of the last N blocks
	ftqPos       int
	refill       bool    // next prediction pays the BTB extra latency
	measureStart float64 // retireEnd when the measured window began
	started      bool
	// produceTab caches ceil(len/FetchWidth), as in sim.
	produceTab [produceTabLen]float64
}

func (p *pipeline) step(b isa.Branch) {
	par := &p.cfg.Params
	measuring := p.seen >= p.cfg.WarmupInstrs
	if measuring && !p.started {
		p.started = true
		p.measureStart = p.retireEnd
	}
	p.seen += uint64(b.BlockLen)
	if measuring {
		p.measured += uint64(b.BlockLen)
	}

	// --- BPU: one block prediction per cycle, gated by FTQ occupancy (the
	// slot freed by the block FetchQueueEntries back) and by how far the
	// frontend may run ahead of retirement (the queues between decode and
	// retire are finite; FetchQueueEntries cycles of runahead mirrors the
	// analytic model's lead cap).
	issueAt := p.bpuDone + 1
	if slotFree := p.ftqFree[p.ftqPos]; slotFree > issueAt {
		issueAt = slotFree
	}
	if floor := p.retireEnd - float64(par.FetchQueueEntries); issueAt < floor {
		issueAt = floor
	}

	pr := p.bpu.predict(b)
	extraUsed := b.Taken && pr.look.Hit && pr.look.ExtraLatency > 0 &&
		(pr.dirPred || !b.Kind.IsConditional())
	if extraUsed {
		// See sim.go: the taken-branch lookup recurrence serializes part of
		// the extra latency; the full latency shows once per refill.
		issueAt += serializeFrac * float64(pr.look.ExtraLatency)
		if p.refill {
			issueAt += (1 - serializeFrac) * float64(pr.look.ExtraLatency)
		}
	}
	if b.Taken || !b.Kind.IsConditional() {
		p.refill = false
	}
	p.bpuDone = issueAt

	// --- ICache: prefetch fires at FTQ insert; fills are pipelined, from
	// the L2 when it holds the line and from beyond otherwise.
	blockStart := b.PC.Add(-uint64(b.BlockLen-1) * isa.InstrBytes)
	misses := p.ic.AccessRange(blockStart, b.PC)
	ready := issueAt
	if misses > 0 {
		fillLat := float64(par.ICacheMissLat)
		if l2miss := p.l2.AccessRange(blockStart, b.PC); l2miss > 0 {
			fillLat = float64(par.L2MissLat)
		}
		ready += fillLat + 2*float64(misses-1)
	}

	// --- Fetch: in-order, width-limited.
	fetchCycles := produceCycles(&p.produceTab, b.BlockLen, par.FetchWidth)
	fetchStart := ready
	if p.fetchEnd > fetchStart {
		fetchStart = p.fetchEnd
	}
	p.fetchEnd = fetchStart + fetchCycles
	p.ftqFree[p.ftqPos] = p.fetchEnd
	p.ftqPos = (p.ftqPos + 1) % len(p.ftqFree)

	// --- Decode and in-order retire.
	decodeAt := p.fetchEnd + float64(par.DecodeResteer)
	retireStart := decodeAt
	if p.retireEnd > retireStart {
		retireStart = p.retireEnd
	}
	newRetireEnd := retireStart + float64(b.BlockLen)*p.effCPI

	if measuring {
		p.bpu.note(p.res, b, pr)
		p.res.ICacheAccesses++
		p.res.ICacheMisses += uint64(misses)
		p.res.BackendCycles += float64(b.BlockLen) * p.effCPI
		bubble := newRetireEnd - p.retireEnd - float64(b.BlockLen)*p.effCPI
		if bubble > 0 {
			p.res.FrontendBubbles += bubble
		}
	}
	p.retireEnd = newRetireEnd

	// --- Resteer: restart the frontend where the misprediction is caught.
	if pr.penalty > 0 {
		restart := decodeAt
		if pr.kind != 1 || b.Kind.IsIndirect() {
			restart = decodeAt + float64(par.ExecResteer-par.DecodeResteer)
		}
		p.bpuDone = restart
		p.fetchEnd = restart
		for i := range p.ftqFree {
			p.ftqFree[i] = 0
		}
		p.ftqPos = 0
		p.refill = true
		if par.WrongPathLines > 0 {
			start := b.Fallthrough()
			if pr.look.Hit && pr.look.Target != b.NextPC() {
				start = pr.look.Target
			}
			line := uint64(par.ICacheLineBytes)
			for i := 0; i < par.WrongPathLines; i++ {
				p.ic.Access(start.Add(uint64(i) * line))
			}
		}
	}
}

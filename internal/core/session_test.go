package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/pdede"
)

// TestSessionMatchesRunContext proves the incremental path is the same
// simulation: feeding the trace through a Session in ragged batch sizes
// must reproduce RunContext's result bit-for-bit, including cycle floats.
func TestSessionMatchesRunContext(t *testing.T) {
	tr, app := testTrace(t, 3000)

	mk := func() btb.TargetPredictor {
		tp, err := pdede.New(pdede.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return tp
	}
	cfg := Config{
		Params:       Icelake(),
		BackendCPI:   app.BackendCPI,
		WarmupInstrs: 100_000,
	}

	cfg.BTB = mk()
	want, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}

	cfg.BTB = mk()
	se, err := NewSession(cfg, tr.Name())
	if err != nil {
		t.Fatal(err)
	}
	// Ragged batch sizes exercise every batch-boundary path: single
	// records, odd chunks, and one large tail.
	sizes := []int{1, 7, 64, 1, 997, 3, 4096}
	recs := tr.Records
	for i, pos := 0, 0; pos < len(recs); i++ {
		n := sizes[i%len(sizes)]
		if pos+n > len(recs) {
			n = len(recs) - pos
		}
		applied, done, err := se.Apply(recs[pos : pos+n])
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatal("measure window reported done with MeasureInstrs=0")
		}
		if applied != n {
			t.Fatalf("Apply consumed %d of %d", applied, n)
		}
		pos += n
	}
	if se.Records() != uint64(len(recs)) {
		t.Fatalf("Records() = %d, want %d", se.Records(), len(recs))
	}
	got := se.Snapshot()
	if !reflect.DeepEqual(&got, want) {
		t.Errorf("session result diverged from RunContext:\n got %+v\nwant %+v", &got, want)
	}
}

// TestSessionMeasureWindow checks that Apply stops mid-batch when the
// measure window fills and reports the records actually consumed.
func TestSessionMeasureWindow(t *testing.T) {
	tr, app := testTrace(t, 500)
	tp, err := btb.NewBaseline(btb.BaselineConfig{Entries: 512})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Params:        Icelake(),
		BackendCPI:    app.BackendCPI,
		BTB:           tp,
		MeasureInstrs: 50_000,
	}
	se, err := NewSession(cfg, tr.Name())
	if err != nil {
		t.Fatal(err)
	}
	applied, done, err := se.Apply(tr.Records)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("measure window never filled")
	}
	if applied == len(tr.Records) || applied == 0 {
		t.Fatalf("expected a mid-batch stop, consumed %d of %d", applied, len(tr.Records))
	}
	if got := se.Result().Instructions; got < cfg.MeasureInstrs {
		t.Errorf("measured %d instructions, want >= %d", got, cfg.MeasureInstrs)
	}
}

// TestSessionRejectsPipeline pins the incremental API to the analytic
// model: the event-timestamped pipeline cannot checkpoint mid-stream.
func TestSessionRejectsPipeline(t *testing.T) {
	tp, err := btb.NewBaseline(btb.BaselineConfig{Entries: 512})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Params: Icelake(), BackendCPI: 1, BTB: tp, UsePipeline: true}
	if _, err := NewSession(cfg, "x"); err == nil {
		t.Fatal("NewSession accepted UsePipeline")
	}
}

// auditFailBTB is a stub predictor whose audit starts failing after a set
// number of updates, standing in for a structure that corrupts mid-stream.
type auditFailBTB struct {
	updates   int
	failAfter int
}

func (a *auditFailBTB) Name() string                  { return "audit-fail-stub" }
func (a *auditFailBTB) Lookup(addr.VA) btb.Lookup     { return btb.Lookup{} }
func (a *auditFailBTB) Update(isa.Branch, btb.Lookup) { a.updates++ }
func (a *auditFailBTB) StorageBits() uint64           { return 0 }
func (a *auditFailBTB) Reset()                        { a.updates = 0 }
func (a *auditFailBTB) Audit() error {
	if a.updates > a.failAfter {
		return fmt.Errorf("stub corruption after %d updates", a.failAfter)
	}
	return nil
}

// TestSessionAuditDetectsCorruption wires AuditEvery through Apply: once
// the structure's invariants break, the periodic audit must abort the
// session mid-batch with the audit error.
func TestSessionAuditDetectsCorruption(t *testing.T) {
	tr, app := testTrace(t, 500)
	cfg := Config{
		Params:     Icelake(),
		BackendCPI: app.BackendCPI,
		BTB:        &auditFailBTB{failAfter: 1500},
		AuditEvery: 500,
	}
	se, err := NewSession(cfg, tr.Name())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := se.Apply(tr.Records[:1000]); err != nil {
		t.Fatalf("clean structure failed audit: %v", err)
	}
	if err := se.Audit(); err != nil {
		t.Fatalf("explicit audit on clean structure: %v", err)
	}
	applied, _, err := se.Apply(tr.Records[1000:4000])
	if err == nil {
		t.Fatal("periodic audit missed injected corruption")
	}
	if applied == 0 || applied == 3000 {
		t.Errorf("audit should stop mid-batch, consumed %d", applied)
	}
}

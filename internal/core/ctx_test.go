package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/trace"
)

// endlessSource yields the same taken branch forever: only a context can
// stop a run over it.
type endlessSource struct{}

func (endlessSource) Name() string       { return "endless" }
func (endlessSource) Open() trace.Reader { return endlessReader{} }

type endlessReader struct{}

func (endlessReader) Next() (isa.Branch, error) {
	return isa.Branch{
		PC:       addr.Build(1, 2, 0x100),
		Target:   addr.Build(1, 2, 0x40),
		BlockLen: 5,
		Kind:     isa.CondDirect,
		Taken:    true,
	}, nil
}

func ctxTestConfig(t *testing.T) Config {
	t.Helper()
	tp, err := btb.NewBaseline(btb.BaselineConfig{Entries: 256})
	if err != nil {
		t.Fatal(err)
	}
	return Config{Params: Icelake(), BackendCPI: 0.5, BTB: tp}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := RunContext(ctx, ctxTestConfig(t), endlessSource{})
	if res != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = (%v, %v), want deadline exceeded", res, err)
	}
}

func TestRunPipelineContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunPipelineContext(ctx, ctxTestConfig(t), endlessSource{})
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("RunPipelineContext = (%v, %v), want canceled", res, err)
	}
}

// A finite trace must be unaffected by a live context.
func TestRunContextFiniteTrace(t *testing.T) {
	m := &trace.Memory{TraceName: "fin", Records: []isa.Branch{
		{PC: addr.Build(1, 2, 0x100), Target: addr.Build(1, 2, 0x40), BlockLen: 5, Kind: isa.CondDirect, Taken: true},
		{PC: addr.Build(1, 2, 0x44), Target: addr.Build(1, 2, 0x100), BlockLen: 3, Kind: isa.UncondDirect, Taken: true},
	}}
	got, err := RunContext(context.Background(), ctxTestConfig(t), m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(ctxTestConfig(t), m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Instructions != want.Instructions || got.Cycles != want.Cycles {
		t.Errorf("context run differs from plain run: %+v vs %+v", got, want)
	}
}

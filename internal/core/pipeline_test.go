package core

import (
	"testing"

	"repro/internal/btb"
	"repro/internal/pdede"
	"repro/internal/trace"
	"repro/internal/workload"
)

func runPipe(t *testing.T, tp btb.TargetPredictor, tr *trace.Memory, app workload.Config, mod func(*Config)) *Result {
	t.Helper()
	cfg := Config{
		Params:       Icelake(),
		BackendCPI:   app.BackendCPI,
		BTB:          tp,
		WarmupInstrs: 200_000,
	}
	if mod != nil {
		mod(&cfg)
	}
	res, err := RunPipeline(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPipelineBasics(t *testing.T) {
	tr, app := testTrace(t, 8000)
	b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	res := runPipe(t, b, tr, app, nil)
	if res.Instructions == 0 || res.Cycles <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if ipc := res.IPC(); ipc <= 0 || ipc > float64(Icelake().RetireWidth) {
		t.Errorf("IPC = %v out of range", ipc)
	}
}

func TestPipelineDeterminism(t *testing.T) {
	tr, app := testTrace(t, 4000)
	mk := func() *Result {
		b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
		return runPipe(t, b, tr, app, nil)
	}
	a, b := mk(), mk()
	if a.Cycles != b.Cycles || a.BTBMisses() != b.BTBMisses() {
		t.Error("pipeline model not deterministic")
	}
}

// The two core models share the BPU, so their prediction statistics must be
// bit-identical; only the cycle mapping differs.
func TestPipelineMatchesAnalyticStats(t *testing.T) {
	tr, app := testTrace(t, 8000)
	b1, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	analytic := runWith(t, b1, tr, app, nil)
	b2, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	pipe := runPipe(t, b2, tr, app, nil)
	if analytic.BTBMisses() != pipe.BTBMisses() {
		t.Errorf("BTB misses differ: analytic %d vs pipeline %d", analytic.BTBMisses(), pipe.BTBMisses())
	}
	if analytic.DirMispredicts != pipe.DirMispredicts {
		t.Errorf("direction mispredicts differ")
	}
	if analytic.Instructions != pipe.Instructions {
		t.Errorf("instruction counts differ")
	}
}

// Cross-validation: the pipeline model must agree with the analytic model
// on IPC within a loose band and, more importantly, on design orderings.
func TestPipelineCrossValidatesAnalytic(t *testing.T) {
	tr, app := testTrace(t, 16000)

	type pair struct{ analytic, pipe float64 }
	results := map[string]pair{}
	for _, d := range []struct {
		name string
		mk   func() btb.TargetPredictor
	}{
		{"baseline", func() btb.TargetPredictor {
			b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
			return b
		}},
		{"pdede-me", func() btb.TargetPredictor {
			p, _ := pdede.New(pdede.MultiEntryConfig())
			return p
		}},
		{"perfect", func() btb.TargetPredictor { return btb.NewPerfect() }},
	} {
		a := runWith(t, d.mk(), tr, app, nil)
		p := runPipe(t, d.mk(), tr, app, nil)
		results[d.name] = pair{a.IPC(), p.IPC()}
		ratio := p.IPC() / a.IPC()
		if ratio < 0.6 || ratio > 1.4 {
			t.Errorf("%s: pipeline IPC %v vs analytic %v (ratio %v) outside band",
				d.name, p.IPC(), a.IPC(), ratio)
		}
	}
	// Ordering must agree: baseline < pdede-me ≤ perfect in both models.
	for _, m := range []func(pair) float64{
		func(p pair) float64 { return p.analytic },
		func(p pair) float64 { return p.pipe },
	} {
		if !(m(results["baseline"]) < m(results["pdede-me"])) {
			t.Errorf("ordering violated: baseline %v vs pdede-me %v",
				m(results["baseline"]), m(results["pdede-me"]))
		}
		if !(m(results["pdede-me"]) <= m(results["perfect"])*1.02) {
			t.Errorf("ordering violated: pdede-me %v vs perfect %v",
				m(results["pdede-me"]), m(results["perfect"]))
		}
	}
}

func TestPipelineRejectsBadConfig(t *testing.T) {
	tr, app := testTrace(t, 2000)
	if _, err := RunPipeline(Config{Params: Icelake(), BackendCPI: app.BackendCPI}, tr); err == nil {
		t.Error("nil BTB accepted")
	}
	b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 512})
	if _, err := RunPipeline(Config{Params: Icelake(), BTB: b}, tr); err == nil {
		t.Error("zero CPI accepted")
	}
}

func TestPipelineFTQGatesRunahead(t *testing.T) {
	tr, app := testTrace(t, 16000)
	ipc := func(ftq int) float64 {
		pd, _ := pdede.New(pdede.MultiEntryConfig())
		res := runPipe(t, pd, tr, app, func(c *Config) { c.Params.FetchQueueEntries = ftq })
		return res.IPC()
	}
	if small, large := ipc(4), ipc(128); small > large {
		t.Errorf("smaller FTQ gave higher IPC in pipeline model: %v vs %v", small, large)
	}
}

func TestPipelineMeasureWindow(t *testing.T) {
	tr, app := testTrace(t, 2000)
	b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	res := runPipe(t, b, tr, app, func(c *Config) {
		c.WarmupInstrs = 100_000
		c.MeasureInstrs = 50_000
	})
	if res.Instructions < 50_000 || res.Instructions > 52_000 {
		t.Errorf("measured %d instructions", res.Instructions)
	}
}

package core

import (
	"context"
	"errors"
	"io"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// Warm-state cloning: the suite runner evaluates many BTB designs against
// one application trace, and every cold run repeats the same warmup work.
// During warmup (WrongPathLines == 0, the default core), the instruction
// caches, the direction predictor and the RAS evolve identically for every
// design — they see only trace-order addresses and outcomes, never a BTB
// prediction. Only the BTB itself, the optional ITTAGE, and the frontend
// lead/refill recurrence are design-private.
//
// WarmupContext therefore runs the shared structures over the warmup prefix
// exactly once per app, recording the tiny per-record outcomes a design
// needs (icache miss count, L2 miss, direction prediction, RAS pop). Each
// design then clones the warmed structures (Clone on cache.Cache,
// predictor.TAGE, predictor.RAS) and replays the prefix through a fast path
// that touches only its private state. RunWarmContext is proven
// bit-identical to RunContext by TestWarmCloneOracle, which compares whole
// Result structs for every registered design; the periodic btb.Auditable
// deep checks run at the same record cadence on both paths.

// warmRec is the per-record outcome of the shared warmup pass: everything a
// design-private replay needs that it cannot (or must not) recompute.
type warmRec struct {
	rasTarget addr.VA // RAS pop result for returns (valid when warmRASHit)
	misses    uint16  // icache misses fetching the block
	flags     uint8   // warmL2Miss | warmDirPred | warmRASHit
}

const (
	warmL2Miss  = 1 << iota // block's first fill came from beyond the L2
	warmDirPred             // direction predictor said taken
	warmRASHit              // RAS was non-empty for this return
)

// WarmState is the warmed, design-independent frontend state of one
// (app, warmup-window) pair: caches, direction predictor, RAS, and the
// per-record replay log. It is immutable once WarmupContext returns —
// design runs only ever Clone the structures — so one WarmState may be
// shared by any number of concurrent NewWarmSession/RunWarmContext calls.
// The frozen analyzer enforces that immutability at compile time.
//
//pdede:frozen
type WarmState struct {
	base    Config // the canonical config the warmup ran under (BTB nil)
	name    string
	seen    uint64 // instructions covered by the warm prefix
	records uint64 // records covered by the warm prefix (== len(recs))

	ic  *cache.Cache
	l2  *cache.Cache
	dir *predictor.TAGE
	ras *predictor.RAS

	recs []warmRec
}

// Records returns how many trace records the warm prefix covers.
func (w *WarmState) Records() uint64 { return w.records }

// Instructions returns how many instructions the warm prefix covers.
func (w *WarmState) Instructions() uint64 { return w.seen }

// WarmupCompatible reports whether a design config cfg can be served from a
// warm state built with base (nil = compatible). Incompatible designs — a
// custom direction predictor, different core parameters, the pipeline
// model, or wrong-path pollution (which feeds BTB predictions back into the
// shared caches) — must fall back to a cold RunContext.
func WarmupCompatible(base, cfg Config) error {
	switch {
	case cfg.UsePipeline:
		return errors.New("core: warm clone unavailable: pipeline model replays whole traces")
	case cfg.Direction != nil:
		return errors.New("core: warm clone unavailable: custom direction predictor")
	case cfg.Params != base.Params:
		return errors.New("core: warm clone unavailable: core parameters differ from the warmed core")
	case cfg.Params.WrongPathLines != 0:
		return errors.New("core: warm clone unavailable: wrong-path pollution couples the caches to the BTB")
	case cfg.WarmupInstrs != base.WarmupInstrs:
		return errors.New("core: warm clone unavailable: warmup window differs")
	}
	return nil
}

// Compatible reports whether cfg can run from this warm state.
func (w *WarmState) Compatible(cfg Config) error { return WarmupCompatible(w.base, cfg) }

// WarmupContext runs the shared warmup pass: it drives the
// design-independent frontend structures over cfg's warmup prefix of src
// and records the per-record replay log. cfg is the canonical base
// configuration (cfg.BTB is ignored and may be nil); designs later check
// themselves against it with Compatible.
func WarmupContext(ctx context.Context, cfg Config, src trace.Source) (*WarmState, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if err := WarmupCompatible(cfg, cfg); err != nil {
		return nil, err
	}
	if cfg.WarmupInstrs == 0 {
		return nil, errors.New("core: warm clone unavailable: no warmup window")
	}
	dir, err := predictor.NewTAGE(predictor.DefaultTAGEConfig())
	if err != nil {
		return nil, err
	}
	ic, err := cache.New(cfg.Params.ICacheBytes, cfg.Params.ICacheWays, cfg.Params.ICacheLineBytes)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(cfg.Params.L2Bytes, cfg.Params.L2Ways, cfg.Params.ICacheLineBytes)
	if err != nil {
		return nil, err
	}
	w := &WarmState{
		base: cfg,
		name: src.Name(),
		ic:   ic,
		l2:   l2,
		dir:  dir,
		ras:  predictor.NewRAS(cfg.Params.RASEntries),
		recs: make([]warmRec, 0, cfg.WarmupInstrs/4),
	}

	r := src.Open()
	batch := make([]isa.Branch, recordBatch)
	for w.seen < cfg.WarmupInstrs {
		if err := checkCtx(ctx, w.records); err != nil {
			return nil, err
		}
		n, rerr := trace.ReadBatch(r, batch)
		for i := 0; i < n && w.seen < cfg.WarmupInstrs; i++ {
			w.warmStep(batch[i])
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return nil, rerr
		}
		if n == 0 {
			break
		}
	}
	return w, nil
}

// warmStep processes one warm-prefix record through the shared structures,
// mirroring the cold path's fetch and predictor sequencing exactly: the
// caches see the block range, the direction predictor sees Predict then
// Update for every conditional, and the RAS sees the canonical
// (StoreReturnsInBTB == false) pop/push traffic.
func (w *WarmState) warmStep(b isa.Branch) {
	var rec warmRec

	blockStart := b.PC.Add(-uint64(b.BlockLen-1) * isa.InstrBytes)
	misses := w.ic.AccessRange(blockStart, b.PC)
	rec.misses = uint16(misses)
	if misses > 0 && w.l2.AccessRange(blockStart, b.PC) > 0 {
		rec.flags |= warmL2Miss
	}

	if b.Kind.IsReturn() {
		if t, ok := w.ras.Pop(); ok {
			rec.rasTarget = t
			rec.flags |= warmRASHit
		}
	}
	if b.Kind.IsConditional() {
		if w.dir.Predict(b.PC) {
			rec.flags |= warmDirPred
		}
		w.dir.Update(b.PC, b.Taken)
	}
	if b.Kind.IsCall() {
		w.ras.Push(b.Fallthrough())
	}

	w.seen += uint64(b.BlockLen)
	w.records++
	w.recs = append(w.recs, rec)
}

// NewWarmSession builds a Session whose shared frontend state (caches,
// direction predictor, RAS) is deep-cloned from w instead of
// cold-constructed. The caller must then feed the warm prefix through the
// replay path (RunWarmContext does both) before applying measured records.
func NewWarmSession(cfg Config, w *WarmState, name string) (*Session, error) {
	if err := w.Compatible(cfg); err != nil {
		return nil, err
	}
	se, err := NewSession(cfg, name)
	if err != nil {
		return nil, err
	}
	s := se.sim
	s.ic = w.ic.Clone()
	s.l2 = w.l2.Clone()
	s.bpu.dir = w.dir.Clone()
	s.bpu.ras = w.ras.Clone()
	return se, nil
}

// replayWarm feeds the warm prefix through the design-private fast path:
// reads the same records the shared pass consumed from the session's own
// reader (fault-injection and stream-position semantics stay per-reader),
// probes and trains only the BTB/ITTAGE, and reruns the lead/refill cycle
// recurrence with the recorded fetch outcomes. The periodic audit cadence
// matches Session.Apply record for record. eof reports a trace that ended
// inside the warm prefix (the caller then skips the measured phase, exactly
// as a cold run of the same truncated trace would).
func (se *Session) replayWarm(ctx context.Context, w *WarmState, r trace.Reader) (eof bool, err error) {
	s := se.sim
	every := s.cfg.AuditEvery
	batch := make([]isa.Branch, recordBatch)
	for idx := uint64(0); idx < w.records; {
		if err := checkCtx(ctx, se.records); err != nil {
			return false, err
		}
		want := w.records - idx
		if want > recordBatch {
			want = recordBatch
		}
		n, rerr := trace.ReadBatch(r, batch[:want])
		for i := 0; i < n; i++ {
			s.replayStep(batch[i], w.recs[idx])
			idx++
			se.records++
			if se.auditable != nil && se.records%every == 0 {
				if err := auditBTB(se.auditable, se.records-1); err != nil {
					return false, err
				}
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return true, nil
			}
			return false, rerr
		}
		if n == 0 {
			return true, nil
		}
	}
	return false, nil
}

// replayStep is the design-private half of one warm-prefix record: the
// fetch outcome comes from the shared pass's log, the prediction flows
// through replayPredict, and the cycle accounting is the shared account —
// bit-identical to the cold step for the same record.
func (s *sim) replayStep(b isa.Branch, rec warmRec) {
	s.seen += uint64(b.BlockLen)
	fillLat := float64(s.cfg.Params.ICacheMissLat)
	if rec.flags&warmL2Miss != 0 {
		fillLat = float64(s.cfg.Params.L2MissLat)
	}
	pr := s.bpu.replayPredict(b, rec)
	s.account(b, pr, int(rec.misses), fillLat, false)
}

// replayPredict is predict for the warm-replay path: the shared warmup pass
// already drove the direction predictor and the RAS (their outcomes arrive
// in rec, and the cloned structures already hold the post-warmup state), so
// only the design-private BTB and ITTAGE are probed and trained here. The
// resteer classification mirrors predict branch for branch.
func (u *bpu) replayPredict(b isa.Branch, rec warmRec) prediction {
	p := &u.cfg.Params
	out := prediction{usesBTB: true, dirPred: true}

	switch {
	case b.Kind.IsReturn() && !u.cfg.StoreReturnsInBTB:
		out.usesBTB = false
		if rec.flags&warmRASHit != 0 {
			out.look = btb.Lookup{Hit: true, Target: rec.rasTarget}
		}
	case b.Kind.IsIndirect() && u.cfg.ITTAGE != nil:
		out.usesBTB = false
		if t, ok := u.cfg.ITTAGE.Predict(b.PC); ok {
			out.look = btb.Lookup{Hit: true, Target: t}
		}
	default:
		out.look = u.cfg.BTB.Lookup(b.PC)
	}

	if b.Kind.IsConditional() {
		out.dirPred = rec.flags&warmDirPred != 0
		if u.cfg.PerfectDirection {
			out.dirPred = b.Taken
		}
	}

	targetCorrect := out.look.Hit && out.look.Target == b.Target
	switch {
	case b.Kind.IsConditional() && out.dirPred != b.Taken:
		out.penalty, out.kind = p.ExecResteer, 2
	case b.Taken && !targetCorrect:
		switch {
		case b.Kind.IsReturn():
			out.penalty, out.kind = p.ExecResteer, 3
		case b.Kind.IsIndirect():
			out.penalty, out.kind = p.ExecResteer, 1
		default:
			out.penalty, out.kind = p.DecodeResteer, 1
		}
	}

	if out.usesBTB && (!b.Kind.IsReturn() || u.cfg.StoreReturnsInBTB) {
		u.cfg.BTB.Update(b, out.look)
	}
	if b.Kind.IsIndirect() && u.cfg.ITTAGE != nil && b.Taken {
		u.cfg.ITTAGE.Update(b.PC, b.Target)
	}
	if u.cfg.ITTAGE != nil {
		u.cfg.ITTAGE.Observe(b.Taken)
	}
	return out
}

// RunWarmContext is RunContext starting from a warm state: the session's
// shared frontend structures are cloned from w, the warm prefix is replayed
// through the design-private fast path, and the measured window then runs
// through the ordinary Session.Apply loop. The result is bit-identical to
// RunContext with the same cfg and src (see WarmupCompatible for when a
// design must fall back).
func RunWarmContext(ctx context.Context, cfg Config, src trace.Source, w *WarmState) (*Result, error) {
	se, err := NewWarmSession(cfg, w, src.Name())
	if err != nil {
		return nil, err
	}
	r := src.Open()
	eof, err := se.replayWarm(ctx, w, r)
	if err != nil {
		return nil, err
	}
	if !eof {
		batch := make([]isa.Branch, recordBatch)
		for {
			if err := checkCtx(ctx, se.Records()); err != nil {
				return nil, err
			}
			n, rerr := trace.ReadBatch(r, batch)
			_, done, err := se.Apply(batch[:n])
			if err != nil {
				return nil, err
			}
			if done {
				break
			}
			if rerr != nil {
				if errors.Is(rerr, io.EOF) {
					break
				}
				return nil, rerr
			}
			if n == 0 {
				break
			}
		}
	}
	if err := se.Audit(); err != nil {
		return nil, err
	}
	return se.Result(), nil
}

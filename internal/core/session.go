package core

import (
	"fmt"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/predictor"
)

// Session is an incrementally-driven simulation: the same core model that
// RunContext replays from a trace Source, but fed record batches by the
// caller as they arrive. A long-running service applies each tenant's
// streamed batches through a Session and snapshots rolling metrics between
// them; RunContext itself is now a Session drained from a Source, so the
// two paths are the same code and produce bit-identical results.
//
// A Session is a sequential state machine, like the predictors it drives:
// callers serialize Apply/Audit/Snapshot themselves (the serve package
// holds its per-tenant lock around them).
type Session struct {
	sim       *sim
	auditable btb.Auditable
	records   uint64
	name      string
}

// NewSession validates cfg and assembles the simulation state. The pipeline
// model keeps whole-trace replay semantics (event timestamps do not
// checkpoint), so cfg.UsePipeline is rejected here; name labels the
// Result's App field (RunContext passes the trace's name).
func NewSession(cfg Config, name string) (*Session, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.BTB == nil {
		return nil, fmt.Errorf("core: no BTB configured")
	}
	if cfg.BackendCPI <= 0 {
		return nil, fmt.Errorf("core: BackendCPI must be positive")
	}
	if cfg.UsePipeline {
		return nil, fmt.Errorf("core: the pipeline model cannot run incrementally (use RunPipelineContext)")
	}
	dir := cfg.Direction
	if dir == nil {
		var err error
		dir, err = predictor.NewTAGE(predictor.DefaultTAGEConfig())
		if err != nil {
			return nil, err
		}
	}
	ic, err := cache.New(cfg.Params.ICacheBytes, cfg.Params.ICacheWays, cfg.Params.ICacheLineBytes)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(cfg.Params.L2Bytes, cfg.Params.L2Ways, cfg.Params.ICacheLineBytes)
	if err != nil {
		return nil, err
	}
	ras := predictor.NewRAS(cfg.Params.RASEntries)

	s := &sim{
		cfg:  cfg,
		bpu:  &bpu{dir: dir, ras: ras},
		ic:   ic,
		l2:   l2,
		res:  &Result{App: name, Design: cfg.BTB.Name()},
		lead: 0,
	}
	s.bpu.cfg = &s.cfg
	s.effCPI = cfg.BackendCPI
	if min := 1 / float64(cfg.Params.RetireWidth); s.effCPI < min {
		s.effCPI = min
	}
	initProduceTab(&s.produceTab, cfg.Params.FetchWidth)

	se := &Session{sim: s, name: name}
	if cfg.AuditEvery != 0 {
		se.auditable, _ = cfg.BTB.(btb.Auditable)
	}
	return se, nil
}

// Apply steps each record of batch through the core in order, honouring the
// configured audit cadence and the measure window. It returns the number of
// records consumed: n < len(batch) only when the measure window filled
// (done = true, remaining records untouched) or a periodic audit failed
// (err != nil; the structure is corrupt and the Session must be discarded).
func (se *Session) Apply(batch []isa.Branch) (n int, done bool, err error) {
	s := se.sim
	every := s.cfg.AuditEvery
	for i := range batch {
		s.step(batch[i])
		se.records++
		if se.auditable != nil && se.records%every == 0 {
			if err := auditBTB(se.auditable, se.records-1); err != nil {
				return i + 1, false, err
			}
		}
		if s.cfg.MeasureInstrs != 0 && s.measured >= s.cfg.MeasureInstrs {
			return i + 1, true, nil
		}
	}
	return len(batch), false, nil
}

// Audit runs the deep invariant check immediately (when the BTB supports it
// and AuditEvery enabled auditing), independent of the periodic cadence.
// RunContext calls it once at end of trace; a service calls it before
// checkpointing a tenant.
func (se *Session) Audit() error {
	if se.auditable == nil {
		return nil
	}
	return auditBTB(se.auditable, se.records)
}

// Records returns how many branch records the session has applied.
func (se *Session) Records() uint64 { return se.records }

// Result returns the live result accumulator. RunContext returns it
// directly; callers that keep applying batches must not hold mutable
// references across Apply calls — use Snapshot for a stable copy.
func (se *Session) Result() *Result { return se.sim.res }

// Snapshot returns a copy of the rolling result at this instant. Result
// holds no reference types, so a shallow copy is a deep copy.
func (se *Session) Snapshot() Result { return *se.sim.res }

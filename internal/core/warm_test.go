package core

import (
	"context"
	"testing"

	"repro/internal/btb"
	"repro/internal/workload"
)

// TestWarmStateClonesAreIndependent is the Snapshot/Clone deepness
// property at the session level: driving one warm session to completion
// must not perturb the parent WarmState or any sibling clone. Runs of the
// same design minted from the same warm state — before, between and after
// runs of a different design — must stay bit-identical, and every run's
// btb.Auditable census must stay clean (a shared slice leaking between
// clones corrupts replacement state long before it changes headline IPC).
func TestWarmStateClonesAreIndependent(t *testing.T) {
	app := workload.Default()
	app.Name = "warm-indep"
	app.Seed = 59
	_, src, err := workload.Build(app, 90_000)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Params:       Icelake(),
		BackendCPI:   app.BackendCPI,
		WarmupInstrs: 30_000,
		AuditEvery:   1024, // deep census on every run, same cadence
	}
	warm, err := WarmupContext(context.Background(), base, src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(entries int) *Result {
		cfg := base
		tp, err := btb.NewBaseline(btb.BaselineConfig{Entries: entries})
		if err != nil {
			t.Fatal(err)
		}
		cfg.BTB = tp
		res, err := RunWarmContext(context.Background(), cfg, src, warm)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := run(1024)
	other := run(4096) // sibling design mutates its own clones only
	again := run(1024)
	if *first != *again {
		t.Errorf("sibling run perturbed a later clone of the same design:\nfirst: %+v\nagain: %+v", first, again)
	}
	if *first == *other {
		t.Error("different designs produced identical results; clone test is vacuous")
	}
	// The parent state itself must still mint pristine clones.
	final := run(1024)
	if *first != *final {
		t.Errorf("parent warm state drifted across runs:\nfirst: %+v\nfinal: %+v", first, final)
	}
}

// TestWarmupContextRefusals pins the gate conditions that force a cold
// fallback at warm-state construction time.
func TestWarmupContextRefusals(t *testing.T) {
	app := workload.Default()
	app.Name = "warm-refuse"
	app.Seed = 61
	_, src, err := workload.Build(app, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Params: Icelake(), BackendCPI: app.BackendCPI, WarmupInstrs: 10_000}

	noWarm := base
	noWarm.WarmupInstrs = 0
	if _, err := WarmupContext(context.Background(), noWarm, src); err == nil {
		t.Error("zero warmup window accepted")
	}

	pollute := base
	pollute.Params.WrongPathLines = 4
	if _, err := WarmupContext(context.Background(), pollute, src); err == nil {
		t.Error("wrong-path pollution accepted: cache state would depend on the BTB")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := WarmupContext(ctx, base, src); err == nil {
		t.Error("cancelled context not observed by the warmup pass")
	}
}

// TestWarmStateCoverage pins the warm-prefix boundary: the shared pass
// consumes exactly the records whose block start lies inside the warmup
// window (the same measuring test the cold step applies), so replayed
// sessions cross into the measured window on the same record as cold runs.
func TestWarmStateCoverage(t *testing.T) {
	app := workload.Default()
	app.Name = "warm-bound"
	app.Seed = 67
	_, src, err := workload.Build(app, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Params: Icelake(), BackendCPI: app.BackendCPI, WarmupInstrs: 20_000}
	warm, err := WarmupContext(context.Background(), base, src)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Instructions() < base.WarmupInstrs {
		t.Errorf("warm prefix covers %d instructions, want >= %d", warm.Instructions(), base.WarmupInstrs)
	}
	if warm.Records() == 0 || uint64(len(warm.recs)) != warm.Records() {
		t.Errorf("replay log records=%d len(recs)=%d", warm.Records(), len(warm.recs))
	}
	// The pass must stop at the boundary, not drain the trace: only the
	// final record's block may straddle it, so coverage overshoots by less
	// than one maximal basic block (BlockLen is uint16).
	if warm.Instructions() >= base.WarmupInstrs+65536 {
		t.Errorf("warm prefix covers %d instructions for a %d window: pass ran past the boundary",
			warm.Instructions(), base.WarmupInstrs)
	}
}

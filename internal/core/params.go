// Package core implements the cycle-approximate out-of-order core model
// used for all IPC results: a decoupled FDIP frontend (BPU + fetch target
// queue + ICache with implicit prefetch) feeding a retire-width backend,
// with resteer penalties charged at decode (wrong direct targets) or
// execute (wrong directions, wrong indirect targets).
//
// The model is trace-replay based: the BPU walks the architectural path,
// predicting every branch; mispredictions cost pipeline-depth penalties and
// reset the frontend's runahead. The runahead ("lead") abstraction stands in
// for the fetch target queue: the BPU gets ahead of the backend by up to
// the FTQ capacity, and that lead is what hides ICache miss latency and
// PDede's extra lookup cycle. This reproduces the sensitivities the paper
// studies (Figure 11b) at a tiny fraction of a full pipeline simulation's
// cost, which is what makes the 102-app × ~20-config evaluation tractable.
package core

import "fmt"

// Params are the micro-architectural parameters (Table 3, Icelake-like).
type Params struct {
	Name string

	// FetchWidth is the instructions fetched per cycle.
	FetchWidth int
	// RetireWidth is the µops retired per cycle.
	RetireWidth int
	// DecodeResteer is the penalty (cycles) of a resteer detected at
	// decode: wrong or missing target for a *direct* branch.
	DecodeResteer int
	// ExecResteer is the penalty of a resteer detected at execute: wrong
	// direction, or wrong/missing *indirect* target.
	ExecResteer int
	// FetchQueueEntries bounds the frontend runahead, in predicted blocks
	// (≈ cycles of supply).
	FetchQueueEntries int

	// ICacheBytes/Ways/LineBytes size the instruction cache.
	ICacheBytes     int
	ICacheWays      int
	ICacheLineBytes int
	// ICacheMissLat is the fill latency from L2 (cycles).
	ICacheMissLat int
	// L2Bytes/L2Ways size the unified L2 holding code lines the ICache
	// missed; ICache misses that also miss L2 pay L2MissLat instead.
	L2Bytes   int
	L2Ways    int
	L2MissLat int

	// RASEntries sizes the return address stack.
	RASEntries int

	// WrongPathLines is the number of ICache lines fetched down the wrong
	// path before a resteer resolves (wrong-path pollution). 0 disables
	// pollution; the ext-wrongpath ablation sweeps it.
	WrongPathLines int
}

// Icelake returns the Table 3 baseline core.
func Icelake() Params {
	return Params{
		Name:              "icelake",
		FetchWidth:        6,
		RetireWidth:       5,
		DecodeResteer:     10,
		ExecResteer:       20,
		FetchQueueEntries: 64,
		ICacheBytes:       32 * 1024,
		ICacheWays:        8,
		ICacheLineBytes:   64,
		ICacheMissLat:     14,
		L2Bytes:           1 << 20,
		L2Ways:            16,
		L2MissLat:         42,
		RASEntries:        32,
	}
}

// Scale returns the core with pipeline depth/width scaled by f (§5.11's
// 1.5× and 2× future cores): resteer penalties deepen and the machine
// widens, raising the relative cost of every BTB miss.
func (p Params) Scale(f float64) Params {
	s := p
	s.Name = fmt.Sprintf("%s-x%.1f", p.Name, f)
	s.FetchWidth = int(float64(p.FetchWidth)*f + 0.5)
	s.RetireWidth = int(float64(p.RetireWidth)*f + 0.5)
	s.DecodeResteer = int(float64(p.DecodeResteer)*f + 0.5)
	s.ExecResteer = int(float64(p.ExecResteer)*f + 0.5)
	s.FetchQueueEntries = int(float64(p.FetchQueueEntries)*f + 0.5)
	return s
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.FetchWidth <= 0 || p.RetireWidth <= 0:
		return fmt.Errorf("core: widths must be positive")
	case p.DecodeResteer <= 0 || p.ExecResteer < p.DecodeResteer:
		return fmt.Errorf("core: resteer penalties inconsistent (decode %d, exec %d)",
			p.DecodeResteer, p.ExecResteer)
	case p.FetchQueueEntries <= 0:
		return fmt.Errorf("core: fetch queue must be positive")
	case p.ICacheBytes <= 0 || p.ICacheWays <= 0 || p.ICacheLineBytes <= 0:
		return fmt.Errorf("core: icache geometry")
	case p.ICacheMissLat <= 0:
		return fmt.Errorf("core: icache miss latency")
	case p.L2Bytes <= 0 || p.L2Ways <= 0 || p.L2MissLat < p.ICacheMissLat:
		return fmt.Errorf("core: L2 geometry/latency")
	case p.RASEntries <= 0:
		return fmt.Errorf("core: RAS entries")
	}
	return nil
}

package core

import (
	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/predictor"
)

// bpu bundles the branch-prediction unit state shared by both core models
// (the analytic runahead model in sim.go and the event-timestamped pipeline
// in pipeline.go): direction predictor, BTB, RAS and optional ITTAGE.
//
// Predictions and updates happen in trace order at prediction time. Real
// hardware trains the BTB speculatively as soon as targets resolve (§2:
// "BTB updates happen speculatively once the target address is known");
// collapsing predict/update into one step models that with instant repair.
type bpu struct {
	cfg *Config
	dir predictor.Direction
	ras *predictor.RAS
}

// prediction is the outcome of one branch's pass through the BPU.
type prediction struct {
	look    btb.Lookup
	usesBTB bool
	dirPred bool

	// penalty/kind classify the resteer (0 = none; 1 = BTB, 2 = direction,
	// 3 = return), mirroring the §5.1 accounting.
	penalty int
	kind    int
}

// predict runs the full per-branch BPU flow: probe the right structure,
// predict the direction, classify the resteer, then train everything.
func (u *bpu) predict(b isa.Branch) prediction {
	p := &u.cfg.Params
	out := prediction{usesBTB: true, dirPred: true}

	switch {
	case b.Kind.IsReturn() && !u.cfg.StoreReturnsInBTB:
		out.usesBTB = false
		if t, ok := u.ras.Pop(); ok {
			out.look = btb.Lookup{Hit: true, Target: t}
		}
	case b.Kind.IsIndirect() && u.cfg.ITTAGE != nil:
		out.usesBTB = false
		if t, ok := u.cfg.ITTAGE.Predict(b.PC); ok {
			out.look = btb.Lookup{Hit: true, Target: t}
		}
	default:
		out.look = u.cfg.BTB.Lookup(b.PC)
	}

	if b.Kind.IsConditional() {
		out.dirPred = u.dir.Predict(b.PC)
		if u.cfg.PerfectDirection {
			out.dirPred = b.Taken
		}
		u.dir.Update(b.PC, b.Taken)
	}

	targetCorrect := out.look.Hit && out.look.Target == b.Target
	switch {
	case b.Kind.IsConditional() && out.dirPred != b.Taken:
		out.penalty, out.kind = p.ExecResteer, 2
	case b.Taken && !targetCorrect:
		switch {
		case b.Kind.IsReturn():
			out.penalty, out.kind = p.ExecResteer, 3
		case b.Kind.IsIndirect():
			out.penalty, out.kind = p.ExecResteer, 1
		default:
			out.penalty, out.kind = p.DecodeResteer, 1
		}
	}

	// Training.
	if out.usesBTB && (!b.Kind.IsReturn() || u.cfg.StoreReturnsInBTB) {
		u.cfg.BTB.Update(b, out.look)
	}
	if b.Kind.IsIndirect() && u.cfg.ITTAGE != nil && b.Taken {
		u.cfg.ITTAGE.Update(b.PC, b.Target)
	}
	if u.cfg.ITTAGE != nil {
		u.cfg.ITTAGE.Observe(b.Taken)
	}
	if !u.cfg.StoreReturnsInBTB && b.Kind.IsCall() {
		u.ras.Push(b.Fallthrough())
	}
	return out
}

// note records the per-branch statistics common to both models.
func (u *bpu) note(res *Result, b isa.Branch, pr prediction) {
	res.Instructions += uint64(b.BlockLen)
	res.DynBranches++
	targetCorrect := pr.look.Hit && pr.look.Target == b.Target
	if b.Taken {
		res.TakenDyn++
		res.TakenByClass[b.Kind.Class()]++
		if pr.usesBTB {
			res.LookupsTaken++
			if !targetCorrect {
				res.BTBMissByClass[b.Kind.Class()]++
			}
			if pr.look.Hit && pr.look.ExtraLatency > 0 {
				res.ExtraBTBCycles += uint64(pr.look.ExtraLatency)
			}
			if pr.look.Hit && pr.look.ExtraLatency == 0 {
				res.DeltaServed++
			}
		}
	}
	switch pr.kind {
	case 1:
		res.BTBResteers++
		res.WrongPathFlush++
		res.BTBResteerCycles += float64(pr.penalty)
	case 2:
		res.DirResteers++
		res.WrongPathFlush++
		res.DirResteerCycles += float64(pr.penalty)
	case 3:
		res.RASMispredicts++
		res.RetResteers++
		res.WrongPathFlush++
		res.RetResteerCycles += float64(pr.penalty)
	}
	if b.Kind.IsConditional() && pr.dirPred != b.Taken {
		res.DirMispredicts++
	}
}

package core

import (
	"testing"

	"repro/internal/btb"
	"repro/internal/pdede"
	"repro/internal/shotgun"
)

// Cross-design invariants that must hold for every predictor the harness
// supports.
func TestDesignInvariants(t *testing.T) {
	tr, app := testTrace(t, 8000)
	designs := map[string]func() (btb.TargetPredictor, error){
		"baseline": func() (btb.TargetPredictor, error) {
			return btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
		},
		"dedup": func() (btb.TargetPredictor, error) {
			return btb.NewDedupBTB(btb.DedupBTBConfig{})
		},
		"pdede-me": func() (btb.TargetPredictor, error) {
			return pdede.New(pdede.MultiEntryConfig())
		},
		"shotgun": func() (btb.TargetPredictor, error) {
			return shotgun.New(shotgun.DefaultConfig())
		},
		"perfect": func() (btb.TargetPredictor, error) {
			return btb.NewPerfect(), nil
		},
	}
	for name, mk := range designs {
		tp, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := runWith(t, tp, tr, app, nil)
		if res.Instructions == 0 || res.Cycles <= 0 {
			t.Errorf("%s: degenerate result %+v", name, res)
			continue
		}
		if res.BTBMisses() > res.LookupsTaken {
			t.Errorf("%s: more BTB misses (%d) than taken lookups (%d)",
				name, res.BTBMisses(), res.LookupsTaken)
		}
		if res.DeltaServed > res.LookupsTaken {
			t.Errorf("%s: delta-served (%d) exceeds lookups (%d)", name, res.DeltaServed, res.LookupsTaken)
		}
		if res.TakenDyn > res.DynBranches {
			t.Errorf("%s: taken (%d) exceeds branches (%d)", name, res.TakenDyn, res.DynBranches)
		}
		if res.WrongPathFlush != res.BTBResteers+res.DirResteers+res.RetResteers {
			t.Errorf("%s: resteer accounting inconsistent", name)
		}
		if res.IPC() > float64(Icelake().RetireWidth) {
			t.Errorf("%s: IPC %v above retire width", name, res.IPC())
		}
	}
}

// The pipelined-BTB model: the extra lookup cycle must cost far less than a
// naive produce-side charge — removing it entirely should change IPC only
// slightly for PDede (the paper's §5.4 argument).
func TestExtraCycleIsRestartOnly(t *testing.T) {
	tr, app := testTrace(t, 16000)
	pd, _ := pdede.New(pdede.DefaultConfig())
	normal := runWith(t, pd, tr, app, nil)

	// Partition-only forces every hit through the 2-cycle path; even so the
	// IPC delta vs an identical-capacity delta design must stay small
	// (within a few percent), because the latency is pipelined.
	po, _ := pdede.New(func() pdede.Config {
		c := pdede.DefaultConfig()
		c.DisableDelta = true
		return c
	}())
	forced := runWith(t, po, tr, app, nil)
	if d := normal.IPC()/forced.IPC() - 1; d > 0.08 {
		t.Errorf("2-cycle path costs %v IPC — latency is being charged as throughput", d)
	}
	if normal.ExtraBTBCycles == 0 {
		t.Error("no pointer-path lookups recorded for PDede-Default")
	}
	if forced.DeltaServed != 0 {
		t.Error("partition-only served delta lookups")
	}
}

// ICache pressure must respond to footprint.
func TestICacheMissesScaleWithFootprint(t *testing.T) {
	trSmall, appS := testTrace(t, 1200)
	trBig, appB := testTrace(t, 30000)
	b1, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	b2, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	small := runWith(t, b1, trSmall, appS, nil)
	big := runWith(t, b2, trBig, appB, nil)
	mrS := float64(small.ICacheMisses) / float64(small.ICacheAccesses)
	mrB := float64(big.ICacheMisses) / float64(big.ICacheAccesses)
	if mrB <= mrS {
		t.Errorf("icache miss rate did not grow with footprint: %v vs %v", mrS, mrB)
	}
}

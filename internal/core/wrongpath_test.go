package core

import (
	"testing"

	"repro/internal/btb"
)

// Wrong-path fetch must change ICache behaviour without touching BTB
// training (the BPU state is architectural-path only in this model). The
// *direction* of the ICache effect is workload-dependent: wrong-path lines
// displace useful ones (pollution) but frequently rejoin the correct path
// and act as prefetch — on fallthrough-heavy misses the prefetch side wins,
// which real cores exhibit too.
func TestWrongPathPollution(t *testing.T) {
	tr, app := testTrace(t, 16000)
	run := func(lines int) *Result {
		b, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 1024})
		return runWith(t, b, tr, app, func(c *Config) {
			c.Params.WrongPathLines = lines
		})
	}
	clean := run(0)
	dirty := run(8)
	if dirty.BTBMisses() != clean.BTBMisses() {
		t.Errorf("wrong-path fetch changed BTB misses: %d vs %d", dirty.BTBMisses(), clean.BTBMisses())
	}
	if dirty.DirMispredicts != clean.DirMispredicts {
		t.Errorf("wrong-path fetch changed direction behaviour")
	}
	mrClean := float64(clean.ICacheMisses) / float64(clean.ICacheAccesses)
	mrDirty := float64(dirty.ICacheMisses) / float64(dirty.ICacheAccesses)
	if mrClean == mrDirty {
		t.Errorf("wrong-path fetch had no ICache effect at all")
	}
}

// Wrong-path fetch cuts both ways: it pollutes the ICache (the paper's
// concern) but can also act as an accidental prefetcher when the wrong path
// rejoins the right one. The model exhibits both; the invariant worth
// pinning is only that a better BTB keeps a meaningful gain either way.
func TestPollutionKeepsBTBGainPositive(t *testing.T) {
	tr, app := testTrace(t, 16000)
	gain := func(lines int) float64 {
		b1, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
		base := runWith(t, b1, tr, app, func(c *Config) { c.Params.WrongPathLines = lines })
		perfect := runWith(t, btb.NewPerfect(), tr, app, func(c *Config) { c.Params.WrongPathLines = lines })
		return perfect.Speedup(base)
	}
	for _, lines := range []int{0, 8} {
		if g := gain(lines); g <= 0 {
			t.Errorf("perfect-BTB gain with %d wrong-path lines = %v, want > 0", lines, g)
		}
	}
}

// Package textplot renders small ASCII charts for the experiment reports:
// horizontal bar charts for per-design comparisons and scatter strips for
// time-series figures. Reports stay greppable plain text while still
// conveying the *shape* a paper figure would.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value in a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to width characters. Negative
// values extend left of the axis. valueFmt formats the printed value
// (e.g. "%+.1f%%").
func BarChart(bars []Bar, width int, valueFmt string) string {
	if len(bars) == 0 || width < 4 {
		return ""
	}
	labelW := 0
	maxAbs := 0.0
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
		if a := math.Abs(b.Value); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	var sb strings.Builder
	for _, b := range bars {
		n := int(math.Round(math.Abs(b.Value) / maxAbs * float64(width)))
		if n == 0 && b.Value != 0 {
			n = 1
		}
		glyph := "█"
		if b.Value < 0 {
			glyph = "░"
		}
		fmt.Fprintf(&sb, "%-*s |%s %s\n", labelW, b.Label,
			strings.Repeat(glyph, n), fmt.Sprintf(valueFmt, b.Value))
	}
	return sb.String()
}

// Series renders a y-over-x strip chart of at most width columns and height
// rows, downsampling x by averaging. Used for the Figure 5 style
// region/page-over-time plots.
func Series(ys []float64, width, height int) string {
	if len(ys) == 0 || width < 2 || height < 2 {
		return ""
	}
	// Downsample to width buckets by mean.
	cols := make([]float64, 0, width)
	per := float64(len(ys)) / float64(width)
	if per < 1 {
		per = 1
	}
	for start := 0.0; int(start) < len(ys) && len(cols) < width; start += per {
		end := int(start + per)
		if end > len(ys) {
			end = len(ys)
		}
		sum, n := 0.0, 0
		for i := int(start); i < end; i++ {
			sum += ys[i]
			n++
		}
		if n > 0 {
			cols = append(cols, sum/float64(n))
		}
	}
	lo, hi := cols[0], cols[0]
	for _, v := range cols {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(cols)))
	}
	for c, v := range cols {
		r := int((v - lo) / (hi - lo) * float64(height-1))
		grid[height-1-r][c] = '*'
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8.1f ┐\n", hi)
	for _, row := range grid {
		sb.WriteString("         │")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%8.1f ┴%s\n", lo, strings.Repeat("─", len(cols)))
	return sb.String()
}

package textplot

import (
	"strings"
	"testing"
)

func TestBarChartBasics(t *testing.T) {
	out := BarChart([]Bar{
		{"pdede", 0.094},
		{"pdede-me", 0.144},
		{"dedup", -0.02},
	}, 20, "%+.1f%%")
	if out == "" {
		t.Fatal("empty chart")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart has %d lines", len(lines))
	}
	// The largest value owns the longest bar.
	if !strings.Contains(lines[1], strings.Repeat("█", 20)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
	// Negative values render with the alternate glyph.
	if !strings.Contains(lines[2], "░") {
		t.Errorf("negative bar glyph missing:\n%s", out)
	}
	// Labels align.
	if !strings.HasPrefix(lines[0], "pdede    ") {
		t.Errorf("labels not padded:\n%s", out)
	}
}

func TestBarChartDegenerate(t *testing.T) {
	if BarChart(nil, 20, "%f") != "" {
		t.Error("nil bars should render empty")
	}
	if BarChart([]Bar{{"a", 1}}, 2, "%f") != "" {
		t.Error("tiny width should render empty")
	}
	// All zeros must not divide by zero.
	if out := BarChart([]Bar{{"a", 0}, {"b", 0}}, 10, "%.0f"); out == "" {
		t.Error("zero-valued chart vanished")
	}
}

func TestSeriesShape(t *testing.T) {
	ys := make([]float64, 200)
	for i := range ys {
		ys[i] = float64(i % 50)
	}
	out := Series(ys, 40, 8)
	if out == "" {
		t.Fatal("empty series")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 { // hi label + 8 rows + axis
		t.Fatalf("series has %d lines", len(lines))
	}
	if !strings.Contains(out, "*") {
		t.Error("no points plotted")
	}
}

func TestSeriesDegenerate(t *testing.T) {
	if Series(nil, 40, 8) != "" {
		t.Error("nil series should render empty")
	}
	if Series([]float64{1, 2}, 1, 8) != "" {
		t.Error("width 1 should render empty")
	}
	// Constant series must not divide by zero.
	if out := Series([]float64{5, 5, 5, 5}, 10, 4); out == "" {
		t.Error("constant series vanished")
	}
}

func TestSeriesShorterThanWidth(t *testing.T) {
	out := Series([]float64{1, 5, 3}, 40, 4)
	if strings.Count(out, "*") != 3 {
		t.Errorf("want 3 points:\n%s", out)
	}
}

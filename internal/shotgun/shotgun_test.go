package shotgun

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
)

func br(pc, target addr.VA, kind isa.Kind, taken bool) isa.Branch {
	return isa.Branch{PC: pc, Target: target, BlockLen: 4, Kind: kind, Taken: taken}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.MaxPerBlock = 0
	if _, err := New(bad); err == nil {
		t.Error("zero MaxPerBlock accepted")
	}
	bad = DefaultConfig()
	bad.UBTBEntries = 100
	if _, err := New(bad); err == nil {
		t.Error("invalid ubtb geometry accepted")
	}
}

func TestKindRouting(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	call := addr.Build(1, 2, 0x100)
	cond := addr.Build(1, 2, 0x200)
	s.Update(br(call, addr.Build(3, 0, 0), isa.DirectCall, true), btb.Lookup{})
	s.Update(br(cond, addr.Build(1, 2, 0x40), isa.CondDirect, true), btb.Lookup{})
	if !s.ubtb.Lookup(call).Hit {
		t.Error("call not in uBTB")
	}
	if s.cbtb.Lookup(call).Hit {
		t.Error("call leaked into CBTB")
	}
	if !s.cbtb.Lookup(cond).Hit {
		t.Error("conditional not in CBTB")
	}
	if s.ubtb.Lookup(cond).Hit {
		t.Error("conditional leaked into uBTB")
	}
}

func TestNotTakenConditionalsOccupyCBTB(t *testing.T) {
	s, _ := New(DefaultConfig())
	pc := addr.Build(1, 2, 0x200)
	s.Update(br(pc, addr.Build(1, 2, 0x40), isa.CondDirect, false), btb.Lookup{})
	if !s.cbtb.Lookup(pc).Hit {
		t.Error("not-taken conditional did not occupy CBTB (Shotgun stores both)")
	}
}

func TestReturnsBypass(t *testing.T) {
	s, _ := New(DefaultConfig())
	pc := addr.Build(1, 2, 0x300)
	s.Update(br(pc, addr.Build(9, 0, 0), isa.Return, true), btb.Lookup{})
	if s.Lookup(pc).Hit {
		t.Error("return allocated (RSB should serve them)")
	}
}

func TestPrefetchOnUBTBHit(t *testing.T) {
	s, _ := New(DefaultConfig())
	callPC := addr.Build(1, 2, 0x100)
	target := addr.Build(3, 5, 0x000)
	condPC := target.Add(0x20) // conditional just after the call target
	condTgt := target.Add(0x60)

	// Teach the metadata about the conditional, then evict it from CBTB.
	s.Update(br(condPC, condTgt, isa.CondDirect, true), btb.Lookup{})
	s.cbtb.Reset()
	if s.cbtb.Lookup(condPC).Hit {
		t.Fatal("cbtb reset failed")
	}

	// Train the call, then a uBTB hit must prefetch the conditional back.
	s.Update(br(callPC, target, isa.DirectCall, true), btb.Lookup{})
	if l := s.Lookup(callPC); !l.Hit {
		t.Fatal("uBTB miss after training")
	}
	if l := s.cbtb.Lookup(condPC); !l.Hit || l.Target != condTgt {
		t.Errorf("prefetch did not install conditional: %+v", l)
	}
}

func TestPrefetchWindowBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchBlocks = 1
	s, _ := New(cfg)
	target := addr.Build(3, 5, 0x000)
	farCond := target.Add(0x800) // 16 blocks away: outside the window
	s.Update(br(farCond, target.Add(0x840), isa.CondDirect, true), btb.Lookup{})
	s.cbtb.Reset()
	callPC := addr.Build(1, 2, 0x100)
	s.Update(br(callPC, target, isa.DirectCall, true), btb.Lookup{})
	s.Lookup(callPC)
	if s.cbtb.Lookup(farCond).Hit {
		t.Error("prefetch exceeded its window")
	}
}

func TestMetaBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPerBlock = 4
	s, _ := New(cfg)
	blockBase := addr.Build(1, 2, 0)
	for i := 0; i < 16; i++ {
		s.Update(br(blockBase.Add(uint64(i)*4), blockBase.Add(0x400), isa.CondDirect, true), btb.Lookup{})
	}
	if got := len(s.meta[uint64(blockBase)>>blockShift]); got > 4 {
		t.Errorf("meta grew to %d entries, cap 4", got)
	}
}

func TestStorageNearBaseline(t *testing.T) {
	s, _ := New(DefaultConfig())
	base, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	ratio := float64(s.StorageBits()) / float64(base.StorageBits())
	if ratio < 0.8 || ratio > 1.1 {
		t.Errorf("shotgun storage ratio vs baseline = %.2f, want ≈1", ratio)
	}
	s45, _ := New(ScaledConfig(45))
	if s45.StorageBits() <= s.StorageBits() {
		t.Error("45KB config not larger than default")
	}
}

func TestReset(t *testing.T) {
	s, _ := New(DefaultConfig())
	pc := addr.Build(1, 2, 0x100)
	s.Update(br(pc, addr.Build(3, 0, 0), isa.DirectCall, true), btb.Lookup{})
	s.Reset()
	if s.Lookup(pc).Hit {
		t.Error("hit after reset")
	}
	if len(s.meta) != 0 {
		t.Error("meta survived reset")
	}
}

package shotgun

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
)

func trainShotgun(t *testing.T, n int) *Shotgun {
	t.Helper()
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		pc := addr.Build(2, addr.PageNum(uint64(i/256)), addr.PageOffset(uint64((i%256)*16)))
		tgt := addr.Build(2, addr.PageNum(uint64(i/128)), addr.PageOffset(uint64((i%128)*32)))
		kind, taken := isa.UncondDirect, true
		if i%3 == 0 {
			kind, taken = isa.CondDirect, i%6 == 0
		}
		s.Update(br(pc, tgt, kind, taken), s.Lookup(pc))
	}
	return s
}

func TestAuditCleanAfterTraining(t *testing.T) {
	s := trainShotgun(t, 6000)
	if err := s.Audit(); err != nil {
		t.Fatalf("audit of a healthy design failed: %v", err)
	}
}

func TestAuditCatchesMetaOverflow(t *testing.T) {
	s := trainShotgun(t, 2000)
	for blk, lst := range s.meta {
		if len(lst) == 0 {
			continue
		}
		base := blk << blockShift
		for len(s.meta[blk]) <= s.cfg.MaxPerBlock {
			pc := addr.New(base | uint64(len(s.meta[blk])*4))
			s.meta[blk] = append(s.meta[blk], condInfo{pc: pc, target: pc})
		}
		break
	}
	if err := s.Audit(); err == nil {
		t.Fatal("audit accepted a metadata block over its capacity")
	}
}

func TestAuditCatchesMisfiledConditional(t *testing.T) {
	s := trainShotgun(t, 2000)
	corrupted := false
	for blk, lst := range s.meta {
		if len(lst) == 0 {
			continue
		}
		// Move the record's PC out of the block that files it.
		lst[0].pc = addr.New(((blk + 1) << blockShift))
		corrupted = true
		break
	}
	if !corrupted {
		t.Fatal("no metadata to corrupt; enlarge the training run")
	}
	if err := s.Audit(); err == nil {
		t.Fatal("audit accepted a conditional filed under the wrong block")
	}
}

var _ btb.Auditable = (*Shotgun)(nil)

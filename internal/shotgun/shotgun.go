// Package shotgun implements a simplified Shotgun-style BTB (Kumar, Grot,
// Nagarajan — ASPLOS'18), the state-of-the-art comparison point of the
// paper's §5.10.
//
// Shotgun splits the BTB by branch kind: a uBTB holds unconditional
// branches (the skeleton of the control-flow graph) and a CBTB holds
// conditional branches. On a uBTB hit, the conditional branches in the
// spatial region around the unconditional's target are prefetched into the
// CBTB from block-grained metadata (which Shotgun virtualizes into the
// memory hierarchy; modelled here as an unbounded shadow map, which is
// generous to Shotgun).
//
// The paper identifies two structural reasons Shotgun trails PDede at
// iso-storage, both reproduced by this model: the CBTB must capture taken
// *and* not-taken conditionals (halving its effective capacity for the
// PC-indexed-baseline's purposes), and prefetching only covers conditionals
// near a recently-hit unconditional.
package shotgun

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
)

// blockShift groups PCs into 128-byte metadata blocks.
const blockShift = 7

// Config sizes the design.
type Config struct {
	// UBTBEntries/UBTBWays size the unconditional-branch BTB.
	UBTBEntries int
	UBTBWays    int
	// CBTBEntries/CBTBWays size the conditional-branch BTB.
	CBTBEntries int
	CBTBWays    int
	// PrefetchBlocks is how many 128B blocks after an unconditional's
	// target are prefetched into the CBTB.
	PrefetchBlocks int
	// MaxPerBlock bounds the conditionals remembered per metadata block.
	MaxPerBlock int
}

// DefaultConfig approximates iso-storage with the 37.5 KiB baseline:
// 2048-entry uBTB (+16b footprint metadata per entry) and a 1280-entry CBTB.
func DefaultConfig() Config {
	return Config{
		UBTBEntries: 2048, UBTBWays: 8,
		CBTBEntries: 1280, CBTBWays: 5,
		PrefetchBlocks: 4,
		MaxPerBlock:    8,
	}
}

// ScaledConfig grows the structures toward a total byte budget (the §5.10
// sweep evaluates Shotgun up to 45 KB).
func ScaledConfig(totalKB int) Config {
	c := DefaultConfig()
	if totalKB >= 45 {
		c.UBTBEntries, c.UBTBWays = 2560, 10
		c.CBTBEntries, c.CBTBWays = 1536, 6
	}
	return c
}

type condInfo struct {
	pc     addr.VA
	target addr.VA
}

// Shotgun implements btb.TargetPredictor.
type Shotgun struct {
	cfg  Config
	ubtb *btb.Baseline
	cbtb *btb.Baseline

	// meta is the block-grained conditional-branch metadata that Shotgun
	// virtualizes into the cache hierarchy. Unbounded: generous to Shotgun.
	meta map[uint64][]condInfo
}

// New builds the design.
func New(cfg Config) (*Shotgun, error) {
	u, err := btb.NewBaseline(btb.BaselineConfig{Entries: cfg.UBTBEntries, Ways: cfg.UBTBWays})
	if err != nil {
		return nil, fmt.Errorf("shotgun: ubtb: %w", err)
	}
	c, err := btb.NewBaseline(btb.BaselineConfig{Entries: cfg.CBTBEntries, Ways: cfg.CBTBWays})
	if err != nil {
		return nil, fmt.Errorf("shotgun: cbtb: %w", err)
	}
	if cfg.PrefetchBlocks < 0 || cfg.MaxPerBlock <= 0 {
		return nil, fmt.Errorf("shotgun: bad prefetch parameters")
	}
	return &Shotgun{cfg: cfg, ubtb: u, cbtb: c, meta: make(map[uint64][]condInfo)}, nil
}

// Name implements btb.TargetPredictor.
func (s *Shotgun) Name() string { return "shotgun" }

// Lookup implements btb.TargetPredictor. The uBTB is probed first (it
// anchors the control-flow skeleton); a hit triggers prefetching of the
// conditional branches around the target into the CBTB.
func (s *Shotgun) Lookup(pc addr.VA) btb.Lookup {
	if l := s.ubtb.Lookup(pc); l.Hit {
		s.prefetchAround(l.Target)
		return l
	}
	return s.cbtb.Lookup(pc)
}

// prefetchAround installs the recorded conditionals of the blocks following
// target into the CBTB.
func (s *Shotgun) prefetchAround(target addr.VA) {
	base := uint64(target) >> blockShift
	for b := uint64(0); b <= uint64(s.cfg.PrefetchBlocks); b++ {
		for _, ci := range s.meta[base+b] {
			if l := s.cbtb.Lookup(ci.pc); l.Hit {
				continue
			}
			// Shotgun's defining mechanism is prefetch-driven C-BTB
			// fills on U-BTB hits (the BTB-directed prefetch model): the
			// C-BTB is a prefetch buffer, not committed state.
			//pdede:statepurity-ok lookup-time C-BTB installs are the design
			s.cbtb.Update(isa.Branch{
				PC:       ci.pc,
				Target:   ci.target,
				BlockLen: 1,
				Kind:     isa.UncondDirect, // install unconditionally
				Taken:    true,
			}, btb.Lookup{})
		}
	}
}

// Update implements btb.TargetPredictor. Conditionals train the CBTB and
// the block metadata whether or not they were taken (Shotgun's CBTB tracks
// both, which is one of its §5.10 weaknesses); other branches train the
// uBTB.
func (s *Shotgun) Update(b isa.Branch, prior btb.Lookup) {
	if b.Kind.IsConditional() {
		s.recordMeta(b)
		forced := b
		forced.Taken = true // occupy CBTB capacity even when not taken
		s.cbtb.Update(forced, prior)
		return
	}
	if b.Kind.IsReturn() {
		return // served by the RSB, as in the paper's comparison
	}
	s.ubtb.Update(b, prior)
}

func (s *Shotgun) recordMeta(b isa.Branch) {
	blk := uint64(b.PC) >> blockShift
	lst := s.meta[blk]
	for i := range lst {
		if lst[i].pc == b.PC {
			lst[i].target = b.Target
			return
		}
	}
	if len(lst) >= s.cfg.MaxPerBlock {
		copy(lst, lst[1:])
		lst[len(lst)-1] = condInfo{pc: b.PC, target: b.Target}
		return
	}
	s.meta[blk] = append(lst, condInfo{pc: b.PC, target: b.Target})
}

// Audit implements btb.Auditable: both component BTBs must pass their own
// deep checks, and the block-grained metadata must keep its construction
// invariants — at most MaxPerBlock conditionals per block, each recorded
// under the block its PC actually belongs to, with no PC listed twice.
func (s *Shotgun) Audit() error {
	if err := s.ubtb.Audit(); err != nil {
		return fmt.Errorf("shotgun: ubtb: %w", err)
	}
	if err := s.cbtb.Audit(); err != nil {
		return fmt.Errorf("shotgun: cbtb: %w", err)
	}
	blks := make([]uint64, 0, len(s.meta))
	for blk := range s.meta {
		blks = append(blks, blk)
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
	for _, blk := range blks {
		lst := s.meta[blk]
		if len(lst) > s.cfg.MaxPerBlock {
			return fmt.Errorf("shotgun: block %#x holds %d conditionals, cap is %d",
				blk, len(lst), s.cfg.MaxPerBlock)
		}
		for i, ci := range lst {
			if uint64(ci.pc)>>blockShift != blk {
				return fmt.Errorf("shotgun: block %#x records PC %v from block %#x",
					blk, ci.pc, uint64(ci.pc)>>blockShift)
			}
			for _, cj := range lst[i+1:] {
				if cj.pc == ci.pc {
					return fmt.Errorf("shotgun: block %#x records PC %v twice", blk, ci.pc)
				}
			}
		}
	}
	return nil
}

// StorageBits implements btb.TargetPredictor: uBTB entries carry a 16-bit
// footprint field in addition to the baseline layout. The block metadata is
// virtualized into the memory hierarchy (not dedicated storage), as in the
// original design.
func (s *Shotgun) StorageBits() uint64 {
	return s.ubtb.StorageBits() + uint64(s.cfg.UBTBEntries)*16 + s.cbtb.StorageBits()
}

// Reset implements btb.TargetPredictor.
func (s *Shotgun) Reset() {
	s.ubtb.Reset()
	s.cbtb.Reset()
	s.meta = make(map[uint64][]condInfo)
}

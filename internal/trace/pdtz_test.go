package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/isa"
	"repro/internal/rng"
)

// collectAll drains a Reader through NextBatch with a small buffer, so the
// batch path (including block-boundary crossings) is what gets tested.
func collectAll(t *testing.T, r Reader) []isa.Branch {
	t.Helper()
	var out []isa.Branch
	buf := make([]isa.Branch, 7) // deliberately not a divisor of block sizes
	for {
		n, err := ReadBatch(r, buf)
		out = append(out, buf[:n]...)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
	}
}

func TestPdtzRoundTrip(t *testing.T) {
	m := sampleTrace()
	var buf bytes.Buffer
	if err := WritePdtz(&buf, m.TraceName, m.Open()); err != nil {
		t.Fatal(err)
	}
	z, err := ParsePdtz(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if z.Name() != "sample" {
		t.Errorf("name = %q", z.Name())
	}
	if z.Records() != uint64(len(m.Records)) {
		t.Errorf("Records = %d, want %d", z.Records(), len(m.Records))
	}
	got := collectAll(t, z.Open())
	if !reflect.DeepEqual(got, m.Records) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m.Records)
	}
}

func TestPdtzEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePdtz(&buf, "empty", (&Memory{TraceName: "empty"}).Open()); err != nil {
		t.Fatal(err)
	}
	z, err := ParsePdtz(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if z.Records() != 0 || z.Blocks() != 0 {
		t.Errorf("empty trace: %d records, %d blocks", z.Records(), z.Blocks())
	}
	if _, err := z.Open().Next(); !errors.Is(err, io.EOF) {
		t.Errorf("empty trace Next err = %v, want EOF", err)
	}
}

// makeTrace builds a deterministic multi-block trace with a mix of kinds.
func makeTrace(n int) *Memory {
	r := rng.New(7)
	recs := make([]isa.Branch, n)
	pc := addr.Build(3, 9, 0x40)
	for i := range recs {
		k := isa.Kind(r.Intn(int(isa.NumKinds)))
		taken := !k.IsConditional() || r.Intn(3) != 0
		recs[i] = isa.Branch{
			PC:       pc,
			Target:   pc.Add(uint64(r.Intn(1 << 14))),
			BlockLen: uint16(1 + r.Intn(30)),
			Kind:     k,
			Taken:    taken,
		}
		pc = pc.Add(uint64(4 * (1 + r.Intn(64))))
	}
	return &Memory{TraceName: "multi", Records: recs}
}

// Multi-block traces must round-trip across block boundaries, through both
// Next and NextBatch, and re-encode byte-identically.
func TestPdtzMultiBlock(t *testing.T) {
	m := makeTrace(10_000)
	var buf bytes.Buffer
	if err := WritePdtzBlocks(&buf, m.TraceName, m.Open(), 512); err != nil {
		t.Fatal(err)
	}
	z, err := ParsePdtz(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if want := (10_000 + 511) / 512; z.Blocks() != want {
		t.Errorf("Blocks = %d, want %d", z.Blocks(), want)
	}
	if got := collectAll(t, z.Open()); !reflect.DeepEqual(got, m.Records) {
		t.Fatal("batch path mismatch")
	}
	got, err := Collect("x", z.Open())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, m.Records) {
		t.Fatal("Next path mismatch")
	}
	// decode → re-encode is byte-identical (same block size).
	var again bytes.Buffer
	if err := WritePdtzBlocks(&again, z.Name(), z.Open(), 512); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("re-encode is not byte-identical")
	}
}

// The ISSUE's adversarial delta cases: 0-delta repeats (the same PC over
// and over), >32-bit jumps (region-crossing deltas), and strictly
// descending PCs (negative deltas throughout). decode(encode(r)) == r for
// each.
func TestPdtzAdversarialDeltas(t *testing.T) {
	const far = uint64(1) << 40 // well past 32 bits, within the 57-bit VA
	cases := map[string][]isa.Branch{
		"zero-delta-repeats": func() []isa.Branch {
			pc := addr.Build(1, 1, 0x100)
			recs := make([]isa.Branch, 3000)
			for i := range recs {
				recs[i] = isa.Branch{PC: pc, Target: pc, BlockLen: 1, Kind: isa.UncondDirect, Taken: true}
			}
			return recs
		}(),
		"wide-jumps": func() []isa.Branch {
			recs := make([]isa.Branch, 3000)
			pc := addr.New(0x10)
			for i := range recs {
				t := pc.Add(far + uint64(i))
				recs[i] = isa.Branch{PC: pc, Target: t, BlockLen: 9, Kind: isa.IndirectJump, Taken: true}
				pc = t.Add(far * uint64(i%3))
			}
			return recs
		}(),
		"descending-pcs": func() []isa.Branch {
			recs := make([]isa.Branch, 3000)
			pc := addr.New(addr.Mask) // top of the address space, walking down
			for i := range recs {
				recs[i] = isa.Branch{PC: pc, Target: pc.Add(^uint64(0x1000) + 1), BlockLen: 2, Kind: isa.CondDirect, Taken: i%2 == 0}
				pc = addr.New(uint64(pc) - 0x40)
			}
			return recs
		}(),
		"extreme-alternation": func() []isa.Branch {
			lo, hi := addr.New(0), addr.New(addr.Mask)
			recs := make([]isa.Branch, 3000)
			for i := range recs {
				pc := lo
				if i%2 == 0 {
					pc = hi
				}
				recs[i] = isa.Branch{PC: pc, Target: hi, BlockLen: isa.MaxBlockLen, Kind: isa.DirectCall, Taken: true}
			}
			return recs
		}(),
	}
	for name, recs := range cases {
		t.Run(name, func(t *testing.T) {
			m := &Memory{TraceName: name, Records: recs}
			var buf bytes.Buffer
			if err := WritePdtzBlocks(&buf, name, m.Open(), 257); err != nil {
				t.Fatal(err)
			}
			z, err := ParsePdtz(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if got := collectAll(t, z.Open()); !reflect.DeepEqual(got, recs) {
				t.Error("decode(encode(r)) != r")
			}
			// And the two codecs agree with each other on the same records.
			var v1 bytes.Buffer
			if err := Write(&v1, name, m.Open()); err != nil {
				t.Fatal(err)
			}
			dec, err := NewDecoder(bytes.NewReader(v1.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			gotV1, err := Collect(name, dec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotV1.Records, recs) {
				t.Error("v1 codec disagrees on adversarial records")
			}
		})
	}
}

// Property: arbitrary well-formed records round-trip through the v2 codec,
// whatever the block size.
func TestPdtzRoundTripQuick(t *testing.T) {
	f := func(raws []struct {
		PC, Target uint64
		BlockLen   uint16
		Kind       uint8
		Taken      bool
	}, blockSeed uint8) bool {
		recs := make([]isa.Branch, 0, len(raws))
		for _, r := range raws {
			k := isa.Kind(r.Kind % isa.NumKinds)
			recs = append(recs, isa.Branch{
				PC:       addr.New(r.PC),
				Target:   addr.New(r.Target),
				BlockLen: isa.ClampBlockLen(uint64(r.BlockLen)),
				Kind:     k,
				Taken:    r.Taken || !k.IsConditional(),
			})
		}
		m := &Memory{TraceName: "q", Records: recs}
		var buf bytes.Buffer
		if err := WritePdtzBlocks(&buf, "q", m.Open(), 1+int(blockSeed)%9); err != nil {
			return false
		}
		z, err := ParsePdtz(buf.Bytes())
		if err != nil {
			return false
		}
		got, err := Collect("q", z.Open())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Records, recs) ||
			(len(got.Records) == 0 && len(recs) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// OpenBlocks shards a trace: the concatenation of disjoint block ranges
// equals the sequential stream.
func TestPdtzOpenBlocks(t *testing.T) {
	m := makeTrace(5000)
	var buf bytes.Buffer
	if err := WritePdtzBlocks(&buf, m.TraceName, m.Open(), 512); err != nil {
		t.Fatal(err)
	}
	z, err := ParsePdtz(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var joined []isa.Branch
	mid := z.Blocks() / 2
	for _, span := range [][2]int{{0, mid}, {mid, z.Blocks()}} {
		br, err := z.OpenBlocks(span[0], span[1])
		if err != nil {
			t.Fatal(err)
		}
		joined = append(joined, collectAll(t, br)...)
	}
	if !reflect.DeepEqual(joined, m.Records) {
		t.Error("sharded reads do not concatenate to the sequential stream")
	}
	if _, err := z.OpenBlocks(-1, 0); err == nil {
		t.Error("negative first block accepted")
	}
}

// Corrupt payloads must produce positioned errors, never panics, and the
// records decoded before the corruption must still be delivered.
func TestPdtzCorruptPayload(t *testing.T) {
	m := makeTrace(600)
	var buf bytes.Buffer
	if err := WritePdtzBlocks(&buf, m.TraceName, m.Open(), 512); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	z, err := ParsePdtz(data)
	if err != nil {
		t.Fatal(err)
	}
	// Smash a byte in the middle of block 0's payload (after the first few
	// records decode cleanly).
	blob := append([]byte(nil), data...)
	target := z.blocks[0].start + (z.blocks[0].end-z.blocks[0].start)/2
	blob[target] ^= 0xFF
	zc, err := ParsePdtz(blob)
	if err != nil {
		// Structural parse can also legitimately catch it; either way no panic.
		return
	}
	r := zc.Open().(*BlockReader)
	var n int
	var derr error
	b := make([]isa.Branch, 64)
	for {
		k, err := r.NextBatch(b)
		n += k
		if err != nil {
			derr = err
			break
		}
	}
	if errors.Is(derr, io.EOF) {
		// The flipped byte can decode to a different-but-valid stream; only
		// assert on the error shape when it errored.
		return
	}
	if !strings.Contains(derr.Error(), "byte offset") || !strings.Contains(derr.Error(), "record") {
		t.Errorf("corrupt decode error lacks position: %v", derr)
	}
}

func TestPdtzRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("PDT1"),
		[]byte("PDTZ"),
		[]byte("PDTZ\x02\x00ZEND"),
		bytes.Repeat([]byte{0xFF}, 64),
	} {
		if _, err := ParsePdtz(data); err == nil {
			t.Errorf("garbage %q accepted", data)
		}
	}
}

func TestOpenPdtzFile(t *testing.T) {
	m := makeTrace(2000)
	path := filepath.Join(t.TempDir(), "t.pdtz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePdtz(f, m.TraceName, m.Open()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	z, err := OpenPdtz(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectAll(t, z.Open()); !reflect.DeepEqual(got, m.Records) {
		t.Error("mmap-backed decode mismatch")
	}
	if err := z.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPdtz(filepath.Join(t.TempDir(), "missing.pdtz")); err == nil {
		t.Error("missing file accepted")
	}
}

// Two concurrent readers over one shared mapping must both see the exact
// stream. Run under -race (the trace package is in RACE_PKGS) this proves
// the shared-bytes contract: readers share data, never state.
func TestPdtzConcurrentReaders(t *testing.T) {
	m := makeTrace(20_000)
	path := filepath.Join(t.TempDir(), "c.pdtz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePdtz(f, m.TraceName, m.Open()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	z, err := OpenPdtz(path)
	if err != nil {
		t.Fatal(err)
	}
	defer z.Close()

	const readers = 4
	results := make([][]isa.Branch, readers)
	errs := make([]error, readers)
	done := make(chan int, readers)
	for i := 0; i < readers; i++ {
		go func(i int) {
			defer func() { done <- i }()
			r := z.Open()
			buf := make([]isa.Branch, 129)
			for {
				n, err := ReadBatch(r, buf)
				results[i] = append(results[i], buf[:n]...)
				if errors.Is(err, io.EOF) {
					return
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	for i := 0; i < readers; i++ {
		<-done
	}
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], m.Records) {
			t.Errorf("reader %d diverged from the source records", i)
		}
	}
}

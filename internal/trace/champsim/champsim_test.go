package champsim

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/isa"
)

// rec builds one 64-byte input_instr record. dst and src may be shorter than
// the on-disk arrays; remaining slots stay zero (ChampSim's "no register").
func rec(ip uint64, isBranch, taken bool, dst, src []byte) []byte {
	b := make([]byte, recordBytes)
	for i := 0; i < 8; i++ {
		b[i] = byte(ip >> (8 * i))
	}
	if isBranch {
		b[8] = 1
	}
	if taken {
		b[9] = 1
	}
	copy(b[10:12], dst)
	copy(b[12:16], src)
	return b
}

// Branch-record builders for each ChampSim register pattern.
func condBranch(ip uint64, taken bool) []byte {
	return rec(ip, true, taken, []byte{regInstrPointer}, []byte{regFlags, regInstrPointer})
}
func directJump(ip uint64) []byte {
	return rec(ip, true, true, []byte{regInstrPointer}, []byte{regInstrPointer})
}
func indirectJump(ip uint64) []byte {
	return rec(ip, true, true, []byte{regInstrPointer}, []byte{3})
}
func directCall(ip uint64) []byte {
	return rec(ip, true, true, []byte{regInstrPointer, regStackPointer}, []byte{regStackPointer, regInstrPointer})
}
func indirectCall(ip uint64) []byte {
	return rec(ip, true, true, []byte{regInstrPointer, regStackPointer}, []byte{regStackPointer, 3})
}
func ret(ip uint64) []byte {
	return rec(ip, true, true, []byte{regInstrPointer, regStackPointer}, []byte{regStackPointer})
}
func plain(ip uint64) []byte {
	return rec(ip, false, false, []byte{1}, []byte{2})
}

func decodeAll(t *testing.T, raw []byte) ([]isa.Branch, *Reader) {
	t.Helper()
	r := NewReader(bytes.NewReader(raw))
	var out []isa.Branch
	for {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, r
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, b)
	}
}

// A taken branch's target must come from the successor record's ip, and the
// block length must count the instructions since the previous branch.
func TestTakenTargetAndBlockLen(t *testing.T) {
	var raw []byte
	raw = append(raw, plain(0x1000)...)
	raw = append(raw, plain(0x1004)...)
	raw = append(raw, condBranch(0x1008, true)...)
	raw = append(raw, plain(0x2000)...) // taken target
	raw = append(raw, directJump(0x2004)...)
	raw = append(raw, plain(0x3000)...) // jump target

	got, r := decodeAll(t, raw)
	want := []isa.Branch{
		{PC: addr.New(0x1008), Target: addr.New(0x2000), BlockLen: 3, Kind: isa.CondDirect, Taken: true},
		{PC: addr.New(0x2004), Target: addr.New(0x3000), BlockLen: 2, Kind: isa.UncondDirect, Taken: true},
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d branches, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("branch %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	st := r.Stats()
	if st.Instructions != 6 || st.Branches != 2 {
		t.Errorf("stats = %+v, want 6 instructions / 2 branches", st)
	}
}

// Each register pattern must land on its isa.Kind.
func TestClassifyKinds(t *testing.T) {
	cases := []struct {
		name string
		rec  []byte
		kind isa.Kind
	}{
		{"cond", condBranch(0x10, true), isa.CondDirect},
		{"direct-jump", directJump(0x10), isa.UncondDirect},
		{"indirect-jump", indirectJump(0x10), isa.IndirectJump},
		{"direct-call", directCall(0x10), isa.DirectCall},
		{"indirect-call", indirectCall(0x10), isa.IndirectCall},
		{"return", ret(0x10), isa.Return},
		// writes ip with a pattern no rule matches: flags+other, no ip read
		{"other", rec(0x10, true, true, []byte{regInstrPointer}, []byte{regFlags, 3}), isa.IndirectJump},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := append(append([]byte{}, tc.rec...), plain(0x99)...)
			got, r := decodeAll(t, raw)
			if len(got) != 1 {
				t.Fatalf("decoded %d branches, want 1", len(got))
			}
			if got[0].Kind != tc.kind {
				t.Errorf("kind = %v, want %v", got[0].Kind, tc.kind)
			}
			if tc.name == "other" && r.Stats().Other != 1 {
				t.Errorf("Stats.Other = %d, want 1", r.Stats().Other)
			}
		})
	}
}

// A not-taken conditional resolves its target from the last taken visit to
// the same PC; a never-taken conditional falls through.
func TestNotTakenTargets(t *testing.T) {
	var raw []byte
	raw = append(raw, condBranch(0x1000, true)...)  // taken -> memo[0x1000] = 0x2000
	raw = append(raw, plain(0x2000)...)             // target
	raw = append(raw, condBranch(0x1000, false)...) // not taken -> memo hit
	raw = append(raw, plain(0x1004)...)             // fallthrough
	raw = append(raw, condBranch(0x5000, false)...) // never taken -> fallthrough
	raw = append(raw, plain(0x5004)...)

	got, r := decodeAll(t, raw)
	if len(got) != 3 {
		t.Fatalf("decoded %d branches, want 3", len(got))
	}
	if got[1].Target != addr.New(0x2000) {
		t.Errorf("memoized not-taken target = %#x, want 0x2000", uint64(got[1].Target))
	}
	if want := addr.New(0x5000 + isa.InstrBytes); got[2].Target != want {
		t.Errorf("fallthrough target = %#x, want %#x", uint64(got[2].Target), uint64(want))
	}
	st := r.Stats()
	if st.NotTakenMemo != 1 || st.NotTakenFall != 1 {
		t.Errorf("stats = %+v, want 1 memo / 1 fallthrough resolution", st)
	}
}

// A taken branch that ends the trace still gets emitted, resolved through
// the memo when possible.
func TestPendingBranchAtEOF(t *testing.T) {
	var raw []byte
	raw = append(raw, condBranch(0x1000, true)...)
	raw = append(raw, plain(0x2000)...)
	raw = append(raw, condBranch(0x1000, true)...) // last record, no successor

	got, _ := decodeAll(t, raw)
	if len(got) != 2 {
		t.Fatalf("decoded %d branches, want 2", len(got))
	}
	if got[1].Target != addr.New(0x2000) {
		t.Errorf("EOF branch target = %#x, want memoized 0x2000", uint64(got[1].Target))
	}
}

// Malformed streams must fail with the record index and byte offset.
func TestMalformedRecords(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		want []string
	}{
		{"truncated", plain(0x10)[:40], []string{"record 0", "byte offset 0", "truncated"}},
		{"truncated-later", append(plain(0x10), directJump(0x14)[:63]...),
			[]string{"record 1", "byte offset 64", "truncated"}},
		{"bad-is-branch", rec(0x10, false, false, nil, nil), nil}, // fixed below
		{"bad-taken", func() []byte { b := plain(0x10); b[9] = 7; return b }(),
			[]string{"record 0", "invalid branch_taken"}},
		{"branch-no-ip-write", rec(0x10, true, true, []byte{1}, []byte{2}),
			[]string{"record 0", "does not write the instruction pointer"}},
	}
	cases[2].raw = func() []byte { b := plain(0x10); b[8] = 2; return b }()
	cases[2].want = []string{"record 0", "invalid is_branch"}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(bytes.NewReader(tc.raw))
			var err error
			for err == nil {
				_, err = r.Next()
			}
			if errors.Is(err, io.EOF) {
				t.Fatal("decode succeeded, want error")
			}
			for _, frag := range tc.want {
				if !strings.Contains(err.Error(), frag) {
					t.Errorf("error %q missing %q", err, frag)
				}
			}
			// The error must be sticky.
			if _, err2 := r.Next(); err2 == nil || errors.Is(err2, io.EOF) {
				t.Error("error did not stick across Next calls")
			}
		})
	}
}

// FuzzChampSimDecoder feeds arbitrary byte streams through the decoder: it
// must never panic, and every emitted record must satisfy the isa.Branch
// invariants.
func FuzzChampSimDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add(plain(0x1000))
	seed := append(append(append([]byte{}, plain(0x1000)...), condBranch(0x1004, true)...), plain(0x2000)...)
	f.Add(seed)
	f.Add(append(append([]byte{}, ret(0x40)...), plain(0x44)...))
	f.Add(seed[:70])
	f.Fuzz(func(t *testing.T, raw []byte) {
		r := NewReader(bytes.NewReader(raw))
		for {
			b, err := r.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) && !strings.Contains(err.Error(), "champsim: record") {
					t.Fatalf("error without position: %v", err)
				}
				return
			}
			if b.BlockLen == 0 {
				t.Fatalf("emitted BlockLen 0: %+v", b)
			}
			if b.Kind >= isa.NumKinds {
				t.Fatalf("emitted invalid kind: %+v", b)
			}
			if b.PC != addr.New(uint64(b.PC)) || b.Target != addr.New(uint64(b.Target)) {
				t.Fatalf("emitted unmasked address: %+v", b)
			}
		}
	})
}

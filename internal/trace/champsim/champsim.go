// Package champsim ingests ChampSim-style binary instruction traces and
// converts them to the simulator's branch-record model.
//
// ChampSim (the MICRO/CRC-2 simulation infrastructure the PDede paper
// evaluates with) distributes traces as streams of fixed 64-byte
// input_instr records, usually xz- or gzip-compressed:
//
//	offset  size  field
//	     0     8  ip                     (uint64 LE)
//	     8     1  is_branch              (0 or 1)
//	     9     1  branch_taken           (0 or 1)
//	    10     2  destination_registers  (uint8 × 2)
//	    12     4  source_registers       (uint8 × 4)
//	    16    16  destination_memory     (uint64 LE × 2)
//	    32    32  source_memory          (uint64 LE × 4)
//
// The trace does not carry an explicit branch type or target. Both are
// reconstructed exactly the way ChampSim itself does:
//
//   - the type comes from which architectural registers the instruction
//     reads and writes (stack pointer, flags, instruction pointer);
//   - a taken branch's target is the next record's ip;
//   - a not-taken conditional has no target in the trace, so the decoder
//     remembers the last taken target per branch PC and falls back to the
//     modelled fallthrough (pc + isa.InstrBytes) for never-taken branches.
//
// The decoder consumes a plain io.Reader — decompression is the caller's
// seam (see Open in package ingest for the .gz path and the xz guidance).
package champsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/addr"
	"repro/internal/isa"
)

// recordBytes is the fixed size of one input_instr record.
const recordBytes = 64

// ChampSim's x86 register numbering, as used by its Pin tracer: these three
// are the only registers its branch classifier looks at.
const (
	regStackPointer = 6
	regFlags        = 25
	regInstrPointer = 26
)

// branchType mirrors ChampSim's classification of a writes-ip instruction.
type branchType uint8

const (
	branchDirectJump branchType = iota
	branchIndirect
	branchConditional
	branchDirectCall
	branchIndirectCall
	branchReturn
	branchOther // writes ip but matches no known register pattern
)

// kindOf maps a ChampSim branch type onto the simulator's taxonomy.
// branchOther falls back to IndirectJump: the pattern is unclassifiable from
// registers alone (e.g. some far control transfers), and an indirect jump is
// the weakest assumption a BTB study can make about it. Stats.Other counts
// how often the fallback fired so a census can judge whether it matters.
var kindOf = [...]isa.Kind{
	branchDirectJump:   isa.UncondDirect,
	branchIndirect:     isa.IndirectJump,
	branchConditional:  isa.CondDirect,
	branchDirectCall:   isa.DirectCall,
	branchIndirectCall: isa.IndirectCall,
	branchReturn:       isa.Return,
	branchOther:        isa.IndirectJump,
}

// Stats summarizes one decoding pass.
type Stats struct {
	Instructions int64 // total records consumed, branch or not
	Branches     int64 // branch records emitted
	Other        int64 // branches classified branchOther (kind fallback)
	NotTakenMemo int64 // not-taken conditionals resolved from the taken-target memo
	NotTakenFall int64 // not-taken conditionals resolved as modelled fallthrough
}

// Reader decodes a ChampSim instruction stream into isa.Branch records. It
// implements trace.Reader. Branch emission lags the input by one record
// because a taken branch's target is the ip of the instruction that follows
// it.
type Reader struct {
	br  io.Reader
	buf [recordBytes]byte

	rec int64 // records consumed so far (= index of the next record)
	off int64 // byte offset consumed so far

	pending    pendingBranch
	hasPending bool
	sinceBlock uint64 // instructions since the last emitted branch, incl. current
	lastTarget map[uint64]uint64

	stats Stats
	err   error // sticky terminal error
}

type pendingBranch struct {
	ip    uint64
	taken bool
	kind  isa.Kind
	other bool // classified branchOther
	block uint64
	rec   int64 // record index, for errors
}

// NewReader wraps r, which must yield raw (decompressed) input_instr bytes.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: r, lastTarget: make(map[uint64]uint64)}
}

// Stats returns decode counters; valid any time, final after io.EOF.
func (r *Reader) Stats() Stats { return r.stats }

// recErr builds a positioned decode error for the record starting at the
// given byte offset.
func (r *Reader) recErr(rec, off int64, format string, args ...any) error {
	r.err = fmt.Errorf("champsim: record %d at byte offset %d: %s", rec, off, fmt.Sprintf(format, args...))
	return r.err
}

// readRecord fills r.buf with the next 64-byte record. A clean boundary
// returns io.EOF; a partial record is a positioned error.
func (r *Reader) readRecord() error {
	n, err := io.ReadFull(r.br, r.buf[:])
	if err != nil {
		if errors.Is(err, io.EOF) && n == 0 {
			return io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return r.recErr(r.rec, r.off, "truncated record: got %d of %d bytes", n, recordBytes)
		}
		return r.recErr(r.rec, r.off, "read failed after %d bytes: %v", n, err)
	}
	r.rec++
	r.off += recordBytes
	return nil
}

// classify reproduces ChampSim's register-pattern branch typing.
func classify(buf *[recordBytes]byte) (branchType, bool) {
	var readsSP, readsFlags, readsIP, readsOther bool
	for _, reg := range buf[12:16] {
		switch reg {
		case 0:
		case regStackPointer:
			readsSP = true
		case regFlags:
			readsFlags = true
		case regInstrPointer:
			readsIP = true
		default:
			readsOther = true
		}
	}
	var writesSP, writesIP bool
	for _, reg := range buf[10:12] {
		switch reg {
		case regStackPointer:
			writesSP = true
		case regInstrPointer:
			writesIP = true
		}
	}
	if !writesIP {
		// A "branch" that does not write the instruction pointer would be
		// tracer nonsense; the caller turns this into an error.
		return branchOther, false
	}
	// The patterns follow ChampSim's tracer conventions: a call touches the
	// stack pointer and reads the instruction pointer (direct) or another
	// register (indirect), while a return reads nothing but the stack
	// pointer. writesSP disambiguates calls from SP-adjusting jumps.
	switch {
	case !readsSP && !readsFlags && readsIP && !readsOther:
		return branchDirectJump, true
	case !readsSP && !readsFlags && !readsIP:
		return branchIndirect, true
	case !readsSP && readsFlags && readsIP && !readsOther:
		return branchConditional, true
	case readsSP && !readsFlags && readsIP && !readsOther && writesSP:
		return branchDirectCall, true
	case readsSP && !readsFlags && !readsIP && readsOther && writesSP:
		return branchIndirectCall, true
	case readsSP && !readsFlags && !readsIP && !readsOther:
		return branchReturn, true
	default:
		return branchOther, true
	}
}

// resolve turns the pending branch plus the following instruction's ip (or
// the absence of one, at end of trace) into an emitted record.
func (r *Reader) resolve(nextIP uint64, haveNext bool) isa.Branch {
	p := r.pending
	pc := addr.New(p.ip)
	var target addr.VA
	switch {
	case p.taken && haveNext:
		target = addr.New(nextIP)
		r.lastTarget[p.ip] = nextIP
	case p.taken:
		// Taken branch at the very end of the trace: no successor record to
		// read the target from. The memo is the best evidence available.
		if t, ok := r.lastTarget[p.ip]; ok {
			target = addr.New(t)
		} else {
			target = pc.Add(isa.InstrBytes)
		}
	default:
		if t, ok := r.lastTarget[p.ip]; ok {
			target = addr.New(t)
			r.stats.NotTakenMemo++
		} else {
			target = pc.Add(isa.InstrBytes)
			r.stats.NotTakenFall++
		}
	}
	r.stats.Branches++
	if p.other {
		r.stats.Other++
	}
	return isa.Branch{
		PC:       pc,
		Target:   target,
		BlockLen: isa.ClampBlockLen(p.block),
		Kind:     p.kind,
		Taken:    p.taken,
	}
}

// Next implements trace.Reader: it returns the next branch in the
// instruction stream, skipping non-branch instructions (they only extend the
// current basic block).
func (r *Reader) Next() (isa.Branch, error) {
	if r.err != nil {
		return isa.Branch{}, r.err
	}
	for {
		recStart := r.off
		if err := r.readRecord(); err != nil {
			if errors.Is(err, io.EOF) {
				if r.hasPending {
					r.hasPending = false
					return r.resolve(0, false), nil
				}
				return isa.Branch{}, io.EOF
			}
			return isa.Branch{}, err
		}
		r.stats.Instructions++
		r.sinceBlock++
		ip := binary.LittleEndian.Uint64(r.buf[:8])
		isBranch, taken := r.buf[8], r.buf[9]
		if isBranch > 1 {
			return isa.Branch{}, r.recErr(r.rec-1, recStart, "invalid is_branch flag %#x", isBranch)
		}
		if taken > 1 {
			return isa.Branch{}, r.recErr(r.rec-1, recStart, "invalid branch_taken flag %#x", taken)
		}

		var out isa.Branch
		emitted := false
		if r.hasPending {
			out = r.resolve(ip, true)
			emitted = true
			r.hasPending = false
		}
		if isBranch == 1 {
			bt, ok := classify(&r.buf)
			if !ok {
				return isa.Branch{}, r.recErr(r.rec-1, recStart, "is_branch set but instruction does not write the instruction pointer")
			}
			r.pending = pendingBranch{
				ip:    ip,
				taken: taken == 1,
				kind:  kindOf[bt],
				other: bt == branchOther,
				block: r.sinceBlock,
				rec:   r.rec - 1,
			}
			r.hasPending = true
			r.sinceBlock = 0
		}
		if emitted {
			return out, nil
		}
	}
}

package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/isa"
)

// benchTrace is the shared decode workload: a loop-heavy trace with the
// delta distribution the synthetic apps produce (small forward PC strides,
// near targets, occasional wide jumps via makeTrace's RNG).
func benchTrace(b *testing.B, n int) *Memory {
	b.Helper()
	return makeTrace(n)
}

// BenchmarkDecode compares the two codecs on the same records. The metric
// that matters is records/sec (reported as rec/s); the acceptance bar for
// the v2 BlockReader is ≥3× the v1 Decoder. v1 pays one io.ByteReader
// virtual call per encoded byte; v2 decodes batches straight out of a flat
// byte slice.
func BenchmarkDecode(b *testing.B) {
	const records = 200_000
	m := benchTrace(b, records)

	var v1 bytes.Buffer
	if err := Write(&v1, m.TraceName, m.Open()); err != nil {
		b.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := WritePdtz(&v2, m.TraceName, m.Open()); err != nil {
		b.Fatal(err)
	}
	batch := make([]isa.Branch, 4096)

	b.Run("v1-decoder", func(b *testing.B) {
		data := v1.Bytes()
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dec, err := NewDecoder(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			var got int
			for {
				n, err := dec.NextBatch(batch)
				got += n
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			if got != records {
				b.Fatalf("decoded %d records, want %d", got, records)
			}
		}
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
	})

	b.Run("pdtz-blockreader", func(b *testing.B) {
		z, err := ParsePdtz(v2.Bytes())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(v2.Len()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := z.Open().(*BlockReader)
			var got int
			for {
				n, err := r.NextBatch(batch)
				got += n
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			if got != records {
				b.Fatalf("decoded %d records, want %d", got, records)
			}
		}
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
	})
}

// BenchmarkEncode keeps the write paths honest too: v2 must not cost more
// than a small constant over v1 despite building the block index.
func BenchmarkEncode(b *testing.B) {
	const records = 200_000
	m := benchTrace(b, records)
	b.Run("v1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := Write(&buf, m.TraceName, m.Open()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pdtz", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := WritePdtz(&buf, m.TraceName, m.Open()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

//go:build !unix

package trace

import "os"

// mmapFile on platforms without a memory-mapping syscall surface reads the
// whole file instead. The zero-copy BlockReader decode path is unchanged —
// it only ever sees a []byte — the platform just pays one up-front read.
func mmapFile(path string) (data []byte, unmap func() error, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return buf, nil, nil
}

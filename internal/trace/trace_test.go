package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/isa"
)

func sampleTrace() *Memory {
	return &Memory{
		TraceName: "sample",
		Records: []isa.Branch{
			{PC: addr.Build(1, 2, 0x100), Target: addr.Build(1, 2, 0x40), BlockLen: 5, Kind: isa.CondDirect, Taken: true},
			{PC: addr.Build(1, 2, 0x44), Target: addr.Build(2, 0, 0x10), BlockLen: 2, Kind: isa.DirectCall, Taken: true},
			{PC: addr.Build(2, 0, 0x20), Target: addr.Build(1, 2, 0x48), BlockLen: 5, Kind: isa.Return, Taken: true},
			{PC: addr.Build(1, 2, 0x60), Target: addr.Build(1, 2, 0x100), BlockLen: 7, Kind: isa.CondDirect, Taken: false},
		},
	}
}

func TestMemoryReplay(t *testing.T) {
	m := sampleTrace()
	r1, _ := Collect("a", m.Open())
	r2, _ := Collect("b", m.Open())
	if !reflect.DeepEqual(r1.Records, r2.Records) {
		t.Error("two reads of a Memory source differ")
	}
	if !reflect.DeepEqual(r1.Records, m.Records) {
		t.Error("collected records differ from source")
	}
}

func TestInstructions(t *testing.T) {
	if got := sampleTrace().Instructions(); got != 19 {
		t.Errorf("Instructions = %d, want 19", got)
	}
}

func TestLimit(t *testing.T) {
	m := sampleTrace()
	lim := &Limit{R: m.Open(), MaxInstrs: 7}
	got, err := Collect("lim", lim)
	if err != nil {
		t.Fatal(err)
	}
	// 5 instrs, then 2 → reaches 7 exactly at record 2; record 3 excluded.
	if len(got.Records) != 2 {
		t.Fatalf("Limit kept %d records, want 2", len(got.Records))
	}
	// Zero means unlimited.
	all, _ := Collect("all", &Limit{R: m.Open()})
	if len(all.Records) != 4 {
		t.Errorf("unlimited Limit kept %d records", len(all.Records))
	}
}

func TestSkip(t *testing.T) {
	m := sampleTrace()
	sk := &Skip{R: m.Open(), SkipInstrs: 6}
	got, err := Collect("skip", sk)
	if err != nil {
		t.Fatal(err)
	}
	// Records 0 (5 instrs) and 1 (2 instrs) cover the 6-instr warmup.
	if len(got.Records) != 2 || got.Records[0] != m.Records[2] {
		t.Fatalf("Skip yielded %d records starting %+v", len(got.Records), got.Records[0])
	}
	// Zero skip passes everything through.
	all, _ := Collect("all", &Skip{R: m.Open()})
	if len(all.Records) != 4 {
		t.Errorf("zero Skip kept %d records", len(all.Records))
	}
}

func TestSkipPastEnd(t *testing.T) {
	m := sampleTrace()
	sk := &Skip{R: m.Open(), SkipInstrs: 1000}
	if _, err := sk.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("Skip past end: err = %v, want EOF", err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, m.TraceName, m.Open()); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name() != "sample" {
		t.Errorf("decoded name = %q", dec.Name())
	}
	got, err := Collect(dec.Name(), dec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, m.Records) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got.Records, m.Records)
	}
}

// Property: the codec round-trips arbitrary well-formed records.
func TestCodecRoundTripQuick(t *testing.T) {
	f := func(raws []struct {
		PC, Target uint64
		BlockLen   uint16
		Kind       uint8
		Taken      bool
	}) bool {
		recs := make([]isa.Branch, 0, len(raws))
		for _, r := range raws {
			k := isa.Kind(r.Kind % isa.NumKinds)
			taken := r.Taken || !k.IsConditional()
			bl := r.BlockLen
			if bl == 0 {
				bl = 1
			}
			recs = append(recs, isa.Branch{
				PC:       addr.New(r.PC),
				Target:   addr.New(r.Target),
				BlockLen: bl,
				Kind:     k,
				Taken:    taken,
			})
		}
		m := &Memory{TraceName: "q", Records: recs}
		var buf bytes.Buffer
		if err := Write(&buf, m.TraceName, m.Open()); err != nil {
			return false
		}
		dec, err := NewDecoder(&buf)
		if err != nil {
			return false
		}
		got, err := Collect("q", dec)
		if err != nil {
			return false
		}
		if len(got.Records) != len(recs) {
			return false
		}
		for i := range recs {
			if got.Records[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	if _, err := NewDecoder(bytes.NewReader([]byte("NOPE....."))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewDecoder(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestDecoderTruncated(t *testing.T) {
	m := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, m.TraceName, m.Open()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	dec, err := NewDecoder(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := dec.Next()
		if errors.Is(err, io.EOF) {
			t.Fatal("truncated stream reached clean EOF")
		}
		if err != nil {
			return // got a decode error, as desired
		}
	}
}

func TestCompactEncoding(t *testing.T) {
	// A hot loop should encode in only a few bytes per record.
	recs := make([]isa.Branch, 1000)
	pc := addr.Build(1, 1, 0x80)
	for i := range recs {
		recs[i] = isa.Branch{PC: pc, Target: pc.Add(^uint64(63)), BlockLen: 8, Kind: isa.CondDirect, Taken: true}
	}
	m := &Memory{TraceName: "loop", Records: recs}
	var buf bytes.Buffer
	if err := Write(&buf, m.TraceName, m.Open()); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / float64(len(recs))
	if perRecord > 16 {
		t.Errorf("loop trace uses %.1f bytes/record, want ≤ 16", perRecord)
	}
}

// Package perfscript ingests Linux `perf script` branch-stack output (LBR
// samples) and converts it to the simulator's branch-record model.
//
// The expected input is the text produced by
//
//	perf record -b -e branches:u -- <cmd>
//	perf script -F brstack        # optionally with ip/comm/etc. columns
//
// where each sample line carries up to 32 last-branch-record entries of the
// form
//
//	FROM/TO/M|P/X|-/A|-/CYCLES[/TYPE]
//
// e.g. 0x401234/0x401290/P/-/-/3/COND. Entries within a line are listed
// newest-first; the parser reverses each sample so the emitted stream is
// chronological. Tokens that do not look like brstack entries (leading ip,
// comm, event columns, header lines) are ignored, so the default `perf
// script` layout works unmodified.
//
// LBR facts worth knowing when reading censuses made from this data:
//
//   - the LBR records taken branches only, so every emitted record has
//     Taken=true and not-taken conditional work is invisible;
//   - block lengths are reconstructed from consecutive entries within one
//     sample — (FROM − previous TO)/isa.InstrBytes + 1, saturated into
//     [1, isa.MaxBlockLen] — and reset to 1 at sample boundaries;
//   - TYPE is only present when the kernel classified the branch
//     (perf ≥ 4.x with save_type); untyped entries default to CondDirect,
//     the dominant class in real code, and are counted in Stats.Untyped.
package perfscript

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/addr"
	"repro/internal/isa"
)

// kindByType maps perf's branch-type spellings onto the simulator taxonomy.
// Kernel-entry flavours (SYSCALL, SYSRET, IRQ, ERET) have no analogue in the
// model and are skipped rather than mislabelled.
var kindByType = map[string]isa.Kind{
	"COND":      isa.CondDirect,
	"UNCOND":    isa.UncondDirect,
	"JMP":       isa.UncondDirect,
	"IND":       isa.IndirectJump,
	"IND_JMP":   isa.IndirectJump,
	"CALL":      isa.DirectCall,
	"IND_CALL":  isa.IndirectCall,
	"RET":       isa.Return,
	"COND_CALL": isa.DirectCall,
	"COND_RET":  isa.Return,
}

// skippedTypes are recognized but unmodelled branch flavours.
var skippedTypes = map[string]bool{
	"SYSCALL": true,
	"SYSRET":  true,
	"IRQ":     true,
	"ERET":    true,
}

// Stats summarizes one parsing pass.
type Stats struct {
	Lines   int64 // input lines seen
	Samples int64 // lines that carried at least one brstack entry
	Entries int64 // brstack entries emitted
	Skipped int64 // entries dropped (unmodelled type)
	Untyped int64 // entries with no TYPE field, defaulted to CondDirect
}

// Reader parses perf script output into isa.Branch records. It implements
// trace.Reader.
type Reader struct {
	sc    *bufio.Scanner
	line  int64
	queue []isa.Branch
	qhead int
	stats Stats
	err   error
}

// NewReader wraps r, which must yield perf script text.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	// A 32-deep brstack line is ~1.5 KB; leave generous headroom for long
	// symbol columns.
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{sc: sc}
}

// Stats returns parse counters; valid any time, final after io.EOF.
func (r *Reader) Stats() Stats { return r.stats }

// entry is one parsed brstack record, pre-reversal.
type entry struct {
	from, to uint64
	kind     isa.Kind
}

// entryResult says what parseEntry made of a token.
type entryResult int

const (
	notEntry     entryResult = iota // some other perf column; ignore
	emitEntry                       // well-formed, typed
	untypedEntry                    // well-formed, no TYPE field
	skipEntry                       // well-formed but unmodelled type
)

// parseEntry decodes one FROM/TO/M|P/X|-/A|-/CYCLES[/TYPE] token. An error
// means the token had the brstack shape but bad contents.
func parseEntry(tok string) (entry, entryResult, error) {
	if !strings.HasPrefix(tok, "0x") || strings.Count(tok, "/") < 5 {
		return entry{}, notEntry, nil
	}
	fields := strings.Split(tok, "/")
	from, err := strconv.ParseUint(fields[0], 0, 64)
	if err != nil {
		return entry{}, notEntry, fmt.Errorf("bad FROM address %q", fields[0])
	}
	to, err := strconv.ParseUint(fields[1], 0, 64)
	if err != nil {
		return entry{}, notEntry, fmt.Errorf("bad TO address %q", fields[1])
	}
	e := entry{from: from, to: to}
	if len(fields) < 7 || fields[6] == "" || fields[6] == "-" {
		e.kind = isa.CondDirect
		return e, untypedEntry, nil
	}
	typ := fields[6]
	if kind, found := kindByType[typ]; found {
		e.kind = kind
		return e, emitEntry, nil
	}
	if skippedTypes[typ] {
		return e, skipEntry, nil
	}
	return entry{}, notEntry, fmt.Errorf("unknown branch type %q", typ)
}

// fill parses lines until at least one branch is queued or input ends.
func (r *Reader) fill() error {
	for r.sc.Scan() {
		r.line++
		r.stats.Lines++
		text := r.sc.Text()
		if strings.HasPrefix(strings.TrimSpace(text), "#") {
			continue
		}
		var entries []entry
		for _, tok := range strings.Fields(text) {
			e, res, err := parseEntry(tok)
			if err != nil {
				r.err = fmt.Errorf("perfscript: line %d: %v", r.line, err)
				return r.err
			}
			switch res {
			case notEntry:
			case skipEntry:
				r.stats.Skipped++
			case untypedEntry:
				r.stats.Untyped++
				entries = append(entries, e)
			case emitEntry:
				entries = append(entries, e)
			}
		}
		if len(entries) == 0 {
			continue
		}
		r.stats.Samples++
		// Newest-first on the wire; reverse to chronological order and
		// reconstruct block lengths from gaps between consecutive entries.
		r.queue = r.queue[:0]
		r.qhead = 0
		prevTo := uint64(0)
		for i := len(entries) - 1; i >= 0; i-- {
			e := entries[i]
			block := uint64(1)
			if prevTo != 0 && e.from >= prevTo {
				block = (e.from-prevTo)/isa.InstrBytes + 1
			}
			r.queue = append(r.queue, isa.Branch{
				PC:       addr.New(e.from),
				Target:   addr.New(e.to),
				BlockLen: isa.ClampBlockLen(block),
				Kind:     e.kind,
				Taken:    true,
			})
			prevTo = e.to
		}
		r.stats.Entries += int64(len(r.queue))
		return nil
	}
	if err := r.sc.Err(); err != nil {
		r.err = fmt.Errorf("perfscript: line %d: read failed: %v", r.line+1, err)
		return r.err
	}
	return io.EOF
}

// Next implements trace.Reader.
func (r *Reader) Next() (isa.Branch, error) {
	if r.err != nil {
		return isa.Branch{}, r.err
	}
	for r.qhead >= len(r.queue) {
		if err := r.fill(); err != nil {
			if errors.Is(err, io.EOF) {
				return isa.Branch{}, io.EOF
			}
			return isa.Branch{}, err
		}
	}
	b := r.queue[r.qhead]
	r.qhead++
	return b, nil
}

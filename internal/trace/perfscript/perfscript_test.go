package perfscript

import (
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/isa"
)

func decodeAll(t *testing.T, text string) ([]isa.Branch, *Reader) {
	t.Helper()
	r := NewReader(strings.NewReader(text))
	var out []isa.Branch
	for {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, r
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, b)
	}
}

// Entries arrive newest-first within a sample and must come out
// chronological, with block lengths rebuilt from the inter-entry gaps.
func TestSampleReversalAndBlockLen(t *testing.T) {
	// Chronological truth: 0x1000->0x2000 (CALL), then after two more
	// instructions 0x2008->0x3000 (COND). perf prints them newest-first.
	text := "0x2008/0x3000/P/-/-/1/COND 0x1000/0x2000/P/-/-/4/CALL\n"
	got, r := decodeAll(t, text)
	want := []isa.Branch{
		{PC: addr.New(0x1000), Target: addr.New(0x2000), BlockLen: 1, Kind: isa.DirectCall, Taken: true},
		{PC: addr.New(0x2008), Target: addr.New(0x3000), BlockLen: 3, Kind: isa.CondDirect, Taken: true},
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	st := r.Stats()
	if st.Samples != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 sample / 2 entries", st)
	}
}

// The default perf script layout has comm/tid/timestamp/event columns before
// the brstack; headers and empty lines appear too. All must be ignored.
func TestIgnoresNonBrstackColumns(t *testing.T) {
	text := strings.Join([]string{
		"# captured on: Thu Aug  6 2026",
		"",
		"myapp 4711 1234.5678: 100 branches:u: 0x1000/0x2000/P/-/-/3/RET",
		"myapp 4711 1234.5679: 100 branches:u:",
	}, "\n") + "\n"
	got, _ := decodeAll(t, text)
	if len(got) != 1 {
		t.Fatalf("decoded %d records, want 1: %+v", len(got), got)
	}
	if got[0].Kind != isa.Return || got[0].PC != addr.New(0x1000) {
		t.Errorf("record = %+v, want RET 0x1000->0x2000", got[0])
	}
}

// Every documented TYPE spelling must land on its kind; kernel-entry types
// are skipped; missing types default to CondDirect and are counted.
func TestTypeMapping(t *testing.T) {
	cases := []struct {
		typ  string
		kind isa.Kind
	}{
		{"COND", isa.CondDirect},
		{"UNCOND", isa.UncondDirect},
		{"JMP", isa.UncondDirect},
		{"IND", isa.IndirectJump},
		{"IND_JMP", isa.IndirectJump},
		{"CALL", isa.DirectCall},
		{"IND_CALL", isa.IndirectCall},
		{"RET", isa.Return},
		{"COND_CALL", isa.DirectCall},
		{"COND_RET", isa.Return},
	}
	for _, tc := range cases {
		got, _ := decodeAll(t, "0x10/0x20/P/-/-/1/"+tc.typ+"\n")
		if len(got) != 1 || got[0].Kind != tc.kind {
			t.Errorf("type %s: got %+v, want kind %v", tc.typ, got, tc.kind)
		}
	}

	got, r := decodeAll(t, "0x10/0x20/P/-/-/1/SYSCALL 0x30/0x40/P/-/-/1\n")
	if len(got) != 1 {
		t.Fatalf("decoded %d records, want 1 (SYSCALL skipped)", len(got))
	}
	if got[0].Kind != isa.CondDirect {
		t.Errorf("untyped entry kind = %v, want CondDirect", got[0].Kind)
	}
	st := r.Stats()
	if st.Skipped != 1 || st.Untyped != 1 {
		t.Errorf("stats = %+v, want 1 skipped / 1 untyped", st)
	}
}

// Malformed entries must fail with the line number; parse errors stick.
func TestMalformedEntries(t *testing.T) {
	cases := []struct {
		name string
		text string
		want []string
	}{
		{"bad-from", "ok line\n0xzz/0x20/P/-/-/1/COND\n", []string{"line 2", "bad FROM"}},
		{"bad-to", "0x10/0xqq/P/-/-/1/COND\n", []string{"line 1", "bad TO"}},
		{"bad-type", "0x10/0x20/P/-/-/1/WAT\n", []string{"line 1", `unknown branch type "WAT"`}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(tc.text))
			var err error
			for err == nil {
				_, err = r.Next()
			}
			if errors.Is(err, io.EOF) {
				t.Fatal("parse succeeded, want error")
			}
			for _, frag := range tc.want {
				if !strings.Contains(err.Error(), frag) {
					t.Errorf("error %q missing %q", err, frag)
				}
			}
			if _, err2 := r.Next(); err2 == nil || errors.Is(err2, io.EOF) {
				t.Error("error did not stick across Next calls")
			}
		})
	}
}

// Descending or wrapping FROM addresses (sample boundary artifacts, kernel
// to user transitions) must clamp the block heuristic, not underflow.
func TestBlockLenClamps(t *testing.T) {
	// Second entry's FROM is below the first entry's TO.
	text := "0x100/0x9000/P/-/-/1/COND 0x8000/0x9000/P/-/-/1/COND\n"
	got, _ := decodeAll(t, text)
	if len(got) != 2 {
		t.Fatalf("decoded %d records, want 2", len(got))
	}
	if got[1].BlockLen != 1 {
		t.Errorf("descending FROM block length = %d, want clamp to 1", got[1].BlockLen)
	}
}

// FuzzPerfScriptParser feeds arbitrary text through the parser: no panics,
// positioned errors only, and all emitted records must satisfy the
// isa.Branch invariants.
func FuzzPerfScriptParser(f *testing.F) {
	f.Add("")
	f.Add("0x2008/0x3000/P/-/-/1/COND 0x1000/0x2000/P/-/-/4/CALL\n")
	f.Add("# comment\nmyapp 1 2.3: 4 branches:u: 0x10/0x20/P/-/-/1/RET\n")
	f.Add("0x10/0x20/P/-/-/1/SYSCALL 0x30/0x40/M/X/A/9\n")
	f.Add("0x10/0x20/P\n")
	f.Fuzz(func(t *testing.T, text string) {
		r := NewReader(strings.NewReader(text))
		for {
			b, err := r.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) && !strings.Contains(err.Error(), "perfscript: line") {
					t.Fatalf("error without position: %v", err)
				}
				return
			}
			if b.BlockLen == 0 {
				t.Fatalf("emitted BlockLen 0: %+v", b)
			}
			if b.Kind >= isa.NumKinds || !b.Taken {
				t.Fatalf("emitted invalid record: %+v", b)
			}
		}
	})
}

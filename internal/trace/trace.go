// Package trace defines the dynamic control-flow trace abstraction that
// connects workload generation to the micro-architectural models, plus a
// compact binary encoding for storing traces on disk.
//
// A trace is a stream of isa.Branch records. Simulators consume traces
// through the Reader interface; anything that can replay itself from the
// beginning (a file, an in-memory trace, a deterministic generator)
// implements Source.
package trace

import (
	"errors"
	"io"

	"repro/internal/isa"
)

// Reader yields successive dynamic branch records. Next returns io.EOF when
// the trace is exhausted.
type Reader interface {
	Next() (isa.Branch, error)
}

// BatchReader is an optional Reader extension for bulk decoding: NextBatch
// fills buf with up to len(buf) records and returns how many it wrote. A
// non-nil error may accompany n > 0; callers process the n records first and
// handle the error afterwards (io.EOF means a clean end of trace). The hot
// simulation loops read through this interface to amortize per-record
// interface dispatch; ReadBatch adapts plain Readers.
type BatchReader interface {
	Reader
	NextBatch(buf []isa.Branch) (n int, err error)
}

// ReadBatch fills buf from r, taking the BatchReader fast path when r
// provides one and falling back to a Next loop otherwise. The error contract
// matches BatchReader.NextBatch: records before the error are returned with
// it, and io.EOF marks a clean end of trace.
func ReadBatch(r Reader, buf []isa.Branch) (int, error) {
	if br, ok := r.(BatchReader); ok {
		return br.NextBatch(buf)
	}
	for i := range buf {
		b, err := r.Next()
		if err != nil {
			return i, err
		}
		buf[i] = b
	}
	return len(buf), nil
}

// Source produces fresh Readers over the same underlying trace. Simulation
// methodology replays each application once per configuration, so sources
// must be replayable and two Readers from one Source must yield identical
// streams.
type Source interface {
	// Name identifies the trace (application name, file path, ...).
	Name() string
	// Open starts a fresh read of the trace from the beginning.
	Open() Reader
}

// Memory is an in-memory trace. It implements Source.
type Memory struct {
	TraceName string
	Records   []isa.Branch
}

// Name implements Source.
func (m *Memory) Name() string { return m.TraceName }

// Open implements Source.
func (m *Memory) Open() Reader { return &memReader{records: m.Records} }

// Instructions returns the total instruction count of the trace.
func (m *Memory) Instructions() uint64 {
	var n uint64
	for _, b := range m.Records {
		n += uint64(b.BlockLen)
	}
	return n
}

type memReader struct {
	records []isa.Branch
	pos     int
}

func (r *memReader) Next() (isa.Branch, error) {
	if r.pos >= len(r.records) {
		return isa.Branch{}, io.EOF
	}
	b := r.records[r.pos]
	r.pos++
	return b, nil
}

// NextBatch implements BatchReader: a block copy out of the backing slice.
func (r *memReader) NextBatch(buf []isa.Branch) (int, error) {
	n := copy(buf, r.records[r.pos:])
	r.pos += n
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Collect drains a Reader into memory. It stops at io.EOF and propagates any
// other error.
func Collect(name string, r Reader) (*Memory, error) {
	var recs []isa.Branch
	for {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			return &Memory{TraceName: name, Records: recs}, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, b)
	}
}

// Limit wraps a Reader, ending the stream after the record that crosses
// maxInstrs total instructions. A zero maxInstrs means no limit.
type Limit struct {
	R         Reader
	MaxInstrs uint64

	seen uint64
	done bool
}

// Next implements Reader.
func (l *Limit) Next() (isa.Branch, error) {
	if l.done {
		return isa.Branch{}, io.EOF
	}
	b, err := l.R.Next()
	if err != nil {
		return isa.Branch{}, err
	}
	l.seen += uint64(b.BlockLen)
	if l.MaxInstrs != 0 && l.seen >= l.MaxInstrs {
		l.done = true
	}
	return b, nil
}

// Skip discards records until skipInstrs instructions have passed, then
// yields the rest. It models the warmup window: the caller typically runs
// structures over the skipped prefix separately.
type Skip struct {
	R          Reader
	SkipInstrs uint64

	skipped bool
}

// Next implements Reader.
func (s *Skip) Next() (isa.Branch, error) {
	if !s.skipped {
		var seen uint64
		for seen < s.SkipInstrs {
			b, err := s.R.Next()
			if err != nil {
				return isa.Branch{}, err
			}
			seen += uint64(b.BlockLen)
		}
		s.skipped = true
	}
	return s.R.Next()
}

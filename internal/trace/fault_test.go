package trace

import (
	"errors"
	"io"
	"testing"

	"repro/internal/isa"
)

func TestFaultReaderPassThrough(t *testing.T) {
	m := sampleTrace()
	got, err := Collect("copy", &FaultReader{R: m.Open()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(m.Records) {
		t.Fatalf("pass-through yielded %d records, want %d", len(got.Records), len(m.Records))
	}
	for i := range got.Records {
		if got.Records[i] != m.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got.Records[i], m.Records[i])
		}
	}
}

func TestFaultReaderTruncate(t *testing.T) {
	m := sampleTrace()
	r := &FaultReader{R: m.Open(), Plan: FaultPlan{TruncateAt: 3}}
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	_, err := r.Next()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation error = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestFaultSourceTransientClears(t *testing.T) {
	fs := &FaultSource{Src: sampleTrace(), Plan: FaultPlan{FailAt: 2, TransientOpens: 2}}
	for open := 1; open <= 2; open++ {
		_, err := Collect("x", fs.Open())
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("open %d: err = %v, want ErrTransient", open, err)
		}
	}
	if _, err := Collect("x", fs.Open()); err != nil {
		t.Fatalf("open 3 should be clean, got %v", err)
	}
	if fs.Opens() != 3 {
		t.Fatalf("Opens() = %d, want 3", fs.Opens())
	}
}

func TestFaultSourcePermanentTransient(t *testing.T) {
	fs := &FaultSource{Src: sampleTrace(), Plan: FaultPlan{FailAt: 1}}
	for open := 1; open <= 4; open++ {
		if _, err := Collect("x", fs.Open()); !errors.Is(err, ErrTransient) {
			t.Fatalf("open %d: err = %v, want ErrTransient", open, err)
		}
	}
}

func TestFaultReaderCorruption(t *testing.T) {
	m := sampleTrace()
	r := &FaultReader{R: m.Open(), Plan: FaultPlan{CorruptKindAt: 1, CorruptDeltaAt: 2}}
	b, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind < isa.NumKinds {
		t.Fatalf("corrupt kind = %d, want out of range", b.Kind)
	}
	b, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b.BlockLen != 0 || b.Target == m.Records[1].Target {
		t.Fatalf("delta corruption not applied: %+v", b)
	}
}

func TestFaultSourceLoopForever(t *testing.T) {
	fs := &FaultSource{Src: sampleTrace(), Plan: FaultPlan{LoopForever: true}}
	r := fs.Open()
	n := len(sampleTrace().Records)
	for i := 0; i < 5*n; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("looping reader ended at record %d: %v", i, err)
		}
	}
}

func TestFaultReaderPanicAt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PanicAt did not panic")
		}
	}()
	r := &FaultReader{R: sampleTrace().Open(), Plan: FaultPlan{PanicAt: 1}}
	r.Next()
}

package trace

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/isa"
)

func TestFaultReaderPassThrough(t *testing.T) {
	m := sampleTrace()
	got, err := Collect("copy", &FaultReader{R: m.Open()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(m.Records) {
		t.Fatalf("pass-through yielded %d records, want %d", len(got.Records), len(m.Records))
	}
	for i := range got.Records {
		if got.Records[i] != m.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got.Records[i], m.Records[i])
		}
	}
}

func TestFaultReaderTruncate(t *testing.T) {
	m := sampleTrace()
	r := &FaultReader{R: m.Open(), Plan: FaultPlan{TruncateAt: 3}}
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	_, err := r.Next()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation error = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestFaultSourceTransientClears(t *testing.T) {
	fs := &FaultSource{Src: sampleTrace(), Plan: FaultPlan{FailAt: 2, TransientOpens: 2}}
	for open := 1; open <= 2; open++ {
		_, err := Collect("x", fs.Open())
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("open %d: err = %v, want ErrTransient", open, err)
		}
	}
	if _, err := Collect("x", fs.Open()); err != nil {
		t.Fatalf("open 3 should be clean, got %v", err)
	}
	if fs.Opens() != 3 {
		t.Fatalf("Opens() = %d, want 3", fs.Opens())
	}
}

func TestFaultSourcePermanentTransient(t *testing.T) {
	fs := &FaultSource{Src: sampleTrace(), Plan: FaultPlan{FailAt: 1}}
	for open := 1; open <= 4; open++ {
		if _, err := Collect("x", fs.Open()); !errors.Is(err, ErrTransient) {
			t.Fatalf("open %d: err = %v, want ErrTransient", open, err)
		}
	}
}

func TestFaultReaderCorruption(t *testing.T) {
	m := sampleTrace()
	r := &FaultReader{R: m.Open(), Plan: FaultPlan{CorruptKindAt: 1, CorruptDeltaAt: 2}}
	b, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind < isa.NumKinds {
		t.Fatalf("corrupt kind = %d, want out of range", b.Kind)
	}
	b, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b.BlockLen != 0 || b.Target == m.Records[1].Target {
		t.Fatalf("delta corruption not applied: %+v", b)
	}
}

func TestFaultSourceLoopForever(t *testing.T) {
	fs := &FaultSource{Src: sampleTrace(), Plan: FaultPlan{LoopForever: true}}
	r := fs.Open()
	n := len(sampleTrace().Records)
	for i := 0; i < 5*n; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("looping reader ended at record %d: %v", i, err)
		}
	}
}

func TestFaultReaderPanicAt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PanicAt did not panic")
		}
	}()
	r := &FaultReader{R: sampleTrace().Open(), Plan: FaultPlan{PanicAt: 1}}
	r.Next()
}

func TestFaultReaderStall(t *testing.T) {
	m := sampleTrace()
	const d = 30 * time.Millisecond
	r := &FaultReader{R: m.Open(), Plan: FaultPlan{StallAt: 2, StallFor: d}}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	b, err := r.Next()
	if err != nil {
		t.Fatalf("stalled record should still arrive: %v", err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("record 2 arrived after %v, want >= %v", elapsed, d)
	}
	if b != m.Records[1] {
		t.Fatalf("stall corrupted record: %+v vs %+v", b, m.Records[1])
	}
	// Stream content is unchanged: only latency was injected.
	got, err := Collect("rest", r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(m.Records)-2 {
		t.Fatalf("stall dropped records: got %d more, want %d", len(got.Records), len(m.Records)-2)
	}
}

func TestFaultReaderStallEvery(t *testing.T) {
	m := sampleTrace()
	const d = 10 * time.Millisecond
	plan := FaultPlan{StallAt: 1, StallEvery: 2, StallFor: d}
	// Records 1, 3, 5, ... stall; total latency ≥ ceil(n/2)·d.
	n := len(m.Records)
	start := time.Now()
	got, err := Collect("all", &FaultReader{R: m.Open(), Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != n {
		t.Fatalf("stall-every dropped records: %d vs %d", len(got.Records), n)
	}
	want := time.Duration((n+1)/2) * d
	if elapsed := time.Since(start); elapsed < want {
		t.Fatalf("stream completed in %v, want >= %v for %d stalls", elapsed, want, (n+1)/2)
	}
}

func TestFaultReaderStallDisabledWithoutDuration(t *testing.T) {
	// StallAt without StallFor must be a no-op, not a zero-length sleep
	// on a hot path position.
	m := sampleTrace()
	got, err := Collect("all", &FaultReader{R: m.Open(), Plan: FaultPlan{StallAt: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(m.Records) {
		t.Fatalf("got %d records, want %d", len(got.Records), len(m.Records))
	}
}

func TestFaultReaderCleanEOF(t *testing.T) {
	m := sampleTrace()
	r := &FaultReader{R: m.Open(), Plan: FaultPlan{EOFAt: 3}}
	got, err := Collect("short", r)
	if err != nil {
		t.Fatalf("clean truncation must look like a normal end of stream: %v", err)
	}
	if len(got.Records) != 2 {
		t.Fatalf("EOFAt 3 yielded %d records, want 2", len(got.Records))
	}
	for i := range got.Records {
		if got.Records[i] != m.Records[i] {
			t.Fatalf("record %d differs before the cut", i)
		}
	}
	// The end is sticky: reading past it never resumes the stream.
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("read past EOFAt = %v, want io.EOF", err)
	}
}

package trace

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/isa"
)

// ErrTransient marks injected (or real) failures that a retry may clear:
// the read failed, but re-opening the source can succeed. Harnesses
// classify retryability with errors.Is(err, ErrTransient).
var ErrTransient = errors.New("transient trace read error")

// FaultPlan configures deterministic fault injection. Record positions are
// 1-based indices into the stream a single Reader yields; zero disables
// that fault. Faults compose — each record position is checked against
// every configured fault, in the order the fields are listed below.
type FaultPlan struct {
	// PanicAt makes the reader panic when asked for this record, modelling
	// a bug in a predictor or decoder that the harness must contain.
	PanicAt uint64
	// FailAt makes the reader return an error wrapping ErrTransient at
	// this record. TransientOpens bounds how many Readers (in Open order)
	// inject it: the first TransientOpens readers fail, later ones run
	// clean — modelling a fault that clears on retry. TransientOpens <= 0
	// means every reader fails (a permanent, but still transient-typed,
	// fault).
	FailAt         uint64
	TransientOpens int
	// TruncateAt ends the stream with io.ErrUnexpectedEOF at this record,
	// modelling a trace file cut off mid-record.
	TruncateAt uint64
	// CorruptKindAt delivers this record with an out-of-range Kind,
	// modelling bit rot that decodes structurally but is semantically
	// garbage.
	CorruptKindAt uint64
	// CorruptDeltaAt delivers this record with a garbage target and a zero
	// block length, modelling a corrupted delta field.
	CorruptDeltaAt uint64
	// StallAt sleeps for StallFor before yielding this record, modelling a
	// slow or stalling client: the stream is correct but late. When
	// StallEvery is non-zero the stall repeats every StallEvery records
	// after StallAt (a persistently slow link rather than one hiccup).
	// StallFor <= 0 disables the stall regardless of StallAt.
	StallAt    uint64
	StallEvery uint64
	StallFor   time.Duration
	// EOFAt ends the stream with a clean io.EOF at this record, modelling
	// a client that dies after flushing a well-formed prefix — unlike
	// TruncateAt, the consumer cannot tell this short stream from a
	// complete one, so detection has to happen at a higher layer (record
	// counts, sequence acks).
	EOFAt uint64
	// LoopForever restarts the underlying source on EOF so the stream
	// never ends, modelling a hung or runaway reader; only a deadline
	// stops the consumer.
	LoopForever bool
}

// stalls reports whether record pos triggers a stall under p.
func (p *FaultPlan) stalls(pos uint64) bool {
	if p.StallFor <= 0 || p.StallAt == 0 || pos < p.StallAt {
		return false
	}
	if pos == p.StallAt {
		return true
	}
	return p.StallEvery != 0 && (pos-p.StallAt)%p.StallEvery == 0
}

// FaultSource wraps a Source, injecting the faults of Plan into every
// Reader it opens. It implements Source. Open and Opens are safe for
// concurrent use: the parallel suite runner opens one reader per
// (app, design) cell, and cells of one app run concurrently.
type FaultSource struct {
	Src  Source
	Plan FaultPlan

	mu sync.Mutex
	//pdede:guarded-by(mu)
	opens int
}

// Name implements Source.
func (f *FaultSource) Name() string { return f.Src.Name() }

// Opens reports how many readers have been opened, letting tests assert
// retry counts.
func (f *FaultSource) Opens() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opens
}

// Open implements Source.
func (f *FaultSource) Open() Reader {
	f.mu.Lock()
	f.opens++
	opens := f.opens
	f.mu.Unlock()
	plan := f.Plan
	if plan.FailAt != 0 && plan.TransientOpens > 0 && opens > plan.TransientOpens {
		plan.FailAt = 0 // fault has cleared for this and later readers
	}
	return &FaultReader{R: f.Src.Open(), Plan: plan, reopen: f.Src.Open}
}

// FaultReader injects the faults of Plan into an underlying Reader. It
// implements Reader. The zero Plan is a transparent pass-through.
type FaultReader struct {
	R    Reader
	Plan FaultPlan

	pos    uint64
	eof    bool          // EOFAt fired: the stream has ended for good
	reopen func() Reader // for LoopForever; nil restarts nothing
}

// Next implements Reader.
func (r *FaultReader) Next() (isa.Branch, error) {
	if r.eof {
		return isa.Branch{}, io.EOF
	}
	r.pos++
	if r.Plan.stalls(r.pos) {
		time.Sleep(r.Plan.StallFor)
	}
	switch p := &r.Plan; r.pos {
	case p.PanicAt:
		panic(fmt.Sprintf("trace: injected panic at record %d of %T", r.pos, r.R))
	case p.FailAt:
		return isa.Branch{}, fmt.Errorf("trace: injected fault at record %d: %w", r.pos, ErrTransient)
	case p.TruncateAt:
		return isa.Branch{}, fmt.Errorf("trace: injected truncation at record %d: %w", r.pos, io.ErrUnexpectedEOF)
	case p.EOFAt:
		r.eof = true
		return isa.Branch{}, io.EOF
	}
	b, err := r.R.Next()
	if errors.Is(err, io.EOF) && r.Plan.LoopForever && r.reopen != nil {
		r.R = r.reopen()
		b, err = r.R.Next()
	}
	if err != nil {
		return isa.Branch{}, err
	}
	switch p := &r.Plan; r.pos {
	case p.CorruptKindAt:
		b.Kind = isa.NumKinds + isa.Kind(r.pos%3)
	case p.CorruptDeltaAt:
		b.Target = ^b.Target
		b.BlockLen = 0
	}
	return b, nil
}

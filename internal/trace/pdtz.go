package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"

	"repro/internal/addr"
	"repro/internal/isa"
)

// Binary trace format v2 ("PDTZ") — the paper-scale streaming codec.
//
// The v1 format (codec.go) is a single delta stream decoded one byte at a
// time through an io.ByteReader; fine for tooling, too slow for replaying a
// multi-gigabyte ingested trace once per (app, design) cell. v2 keeps the
// same per-record delta scheme but arranges the file so a whole trace can be
// mapped read-only and decoded in batches straight out of the mapping, with
// no per-record allocation or interface dispatch:
//
//	file     := header block* sentinel index footer
//	header   := "PDTZ" version(0x02) uvarint(len(name)) name
//	block    := uvarint(payloadLen) payload            ; payloadLen > 0
//	payload  := uvarint(count) uvarint(basePC) record* ; count > 0
//	record   := flags uvarint(blockLen) varint(pcDelta) varint(targetDelta)
//	sentinel := uvarint(0)                             ; ends the block run
//	index    := uvarint(blockCount) entry*
//	entry    := uvarint(offsetDelta) uvarint(count)    ; offset of the block's
//	                                                   ; payloadLen field; the
//	                                                   ; first entry is absolute,
//	                                                   ; later ones delta-coded
//	footer   := uint64le(indexOffset) "ZEND"
//
// flags/blockLen/deltas are exactly the v1 record fields (bit0 taken,
// bits1-3 kind). Each block is independently decodable: basePC seeds the PC
// delta chain (the encoder stores the block's first PC there and a zero
// first delta), so readers can start at any index entry without replaying
// the prefix — which is also what lets several readers stream one shared
// mapping concurrently.
const (
	magicV2   = "PDTZ"
	versionV2 = 0x02
	footerV2  = "ZEND"

	// footerLen is the fixed tail: 8-byte little-endian index offset plus
	// the footer magic.
	footerLen = 8 + len(footerV2)

	// minRecordBytes bounds a v2 record from below (flags byte plus three
	// single-byte varints); index-declared record counts are validated
	// against it so a corrupt count cannot claim more records than the
	// payload could possibly hold.
	minRecordBytes = 4

	// maxRecordBytes bounds a v2 record from above: the flags byte plus
	// three 10-byte varints. The writer pads every payload with this many
	// zero bytes so the decoder's fast path can read a whole record with a
	// single up-front bounds check instead of one per field.
	maxRecordBytes = 1 + 3*binary.MaxVarintLen64
)

// DefaultBlockRecords is the records-per-block target WritePdtz uses. 4K
// records ≈ 20-30 KB per block: big enough to amortize block transitions,
// small enough that an index seek lands near any record cheaply.
const DefaultBlockRecords = 4096

// WritePdtz encodes a full trace to w in the v2 block format with the
// default block size. See WritePdtzBlocks for the error contract.
func WritePdtz(w io.Writer, name string, r Reader) error {
	return WritePdtzBlocks(w, name, r, DefaultBlockRecords)
}

// WritePdtzBlocks encodes a full trace to w with blockRecords records per
// block. Errors from the source reader or from short writes are annotated
// with the failing record index and the output byte offset already flushed.
func WritePdtzBlocks(w io.Writer, name string, r Reader, blockRecords int) error {
	if blockRecords <= 0 {
		blockRecords = DefaultBlockRecords
	}
	if len(name) > 1<<16 {
		return fmt.Errorf("pdtz: unreasonable name length %d", len(name))
	}
	cw := &countingWriter{w: w}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64, what string) error {
		n := binary.PutUvarint(scratch[:], v)
		if _, err := cw.Write(scratch[:n]); err != nil {
			return fmt.Errorf("pdtz: writing %s at byte offset %d: %w", what, cw.off, err)
		}
		return nil
	}

	if _, err := cw.Write([]byte(magicV2)); err != nil {
		return fmt.Errorf("pdtz: writing magic: %w", err)
	}
	if _, err := cw.Write([]byte{versionV2}); err != nil {
		return fmt.Errorf("pdtz: writing version: %w", err)
	}
	if err := writeUvarint(uint64(len(name)), "name length"); err != nil {
		return err
	}
	if _, err := io.WriteString(cw, name); err != nil {
		return fmt.Errorf("pdtz: writing name: %w", err)
	}

	type indexEntry struct {
		off   int64
		count int
	}
	var (
		index   []indexEntry
		payload bytes.Buffer
		batch   = make([]isa.Branch, blockRecords)
		rec     int64 // global record index of the batch head
		srcEOF  bool
	)
	for !srcEOF {
		n, err := ReadBatch(r, batch)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				return fmt.Errorf("pdtz: reading record %d from source: %w", rec+int64(n), err)
			}
			srcEOF = true
		}
		if n == 0 {
			break
		}
		payload.Reset()
		var enc [binary.MaxVarintLen64]byte
		m := binary.PutUvarint(enc[:], uint64(n))
		payload.Write(enc[:m])
		base := batch[0].PC
		m = binary.PutUvarint(enc[:], uint64(base))
		payload.Write(enc[:m])
		prev := base
		for i := 0; i < n; i++ {
			b := batch[i]
			flags := byte(b.Kind) << kindShift
			if b.Taken {
				flags |= flagTaken
			}
			payload.WriteByte(flags)
			m = binary.PutUvarint(enc[:], uint64(b.BlockLen))
			payload.Write(enc[:m])
			m = binary.PutVarint(enc[:], int64(b.PC)-int64(prev))
			payload.Write(enc[:m])
			m = binary.PutVarint(enc[:], int64(b.Target)-int64(b.PC))
			payload.Write(enc[:m])
			prev = b.PC
		}
		// Trailing zero padding lets the reader decode every record —
		// including the block's last — through the single-bounds-check fast
		// path. Padding bytes are covered by payloadLen and skipped by the
		// record count.
		payload.Write(make([]byte, maxRecordBytes))
		index = append(index, indexEntry{off: cw.off, count: n})
		if err := writeUvarint(uint64(payload.Len()), fmt.Sprintf("block %d length", len(index)-1)); err != nil {
			return err
		}
		if _, err := cw.Write(payload.Bytes()); err != nil {
			return fmt.Errorf("pdtz: writing block %d (records %d..%d) at byte offset %d: %w",
				len(index)-1, rec, rec+int64(n)-1, cw.off, err)
		}
		rec += int64(n)
	}

	if err := writeUvarint(0, "block sentinel"); err != nil {
		return err
	}
	indexOff := cw.off
	if err := writeUvarint(uint64(len(index)), "index block count"); err != nil {
		return err
	}
	prevOff := int64(0)
	for i, e := range index {
		if err := writeUvarint(uint64(e.off-prevOff), fmt.Sprintf("index entry %d offset", i)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(e.count), fmt.Sprintf("index entry %d count", i)); err != nil {
			return err
		}
		prevOff = e.off
	}
	var foot [footerLen]byte
	binary.LittleEndian.PutUint64(foot[:8], uint64(indexOff))
	copy(foot[8:], footerV2)
	if _, err := cw.Write(foot[:]); err != nil {
		return fmt.Errorf("pdtz: writing footer at byte offset %d: %w", cw.off, err)
	}
	return nil
}

// zblock is the parsed index entry for one block.
type zblock struct {
	off     int64 // absolute offset of the block's payloadLen field
	start   int64 // absolute offset of the payload
	end     int64 // absolute offset one past the payload
	count   int   // records in the block, per the index
	firstAt int64 // global index of the block's first record
}

// Pdtz is a parsed v2 trace backed by a single read-only byte slice —
// typically an mmap of the file, so opening a paper-scale trace costs no
// read I/O up front and decoding streams pages in on demand. It implements
// Source; every Open returns an independent BlockReader over the shared
// bytes, so concurrent readers (the parallel suite runner's cells) need no
// locking. The frozen analyzer enforces that the parsed index never changes
// under those readers.
//
//pdede:frozen
type Pdtz struct {
	data    []byte
	name    string
	blocks  []zblock
	records uint64
	unmap   func() error // non-nil when data is an mmap to release on Close
}

// ParsePdtz validates the header, footer and block index of data and
// returns a Pdtz reading from it. The per-record payload bytes are
// validated lazily during decode (with positioned errors), so parsing cost
// is proportional to the index, not the trace.
func ParsePdtz(data []byte) (*Pdtz, error) {
	o := 0
	if len(data) < len(magicV2)+1+footerLen {
		return nil, fmt.Errorf("pdtz: file too short (%d bytes)", len(data))
	}
	if string(data[:len(magicV2)]) != magicV2 {
		return nil, fmt.Errorf("pdtz: bad magic %q", data[:len(magicV2)])
	}
	o = len(magicV2)
	if data[o] != versionV2 {
		return nil, fmt.Errorf("pdtz: unsupported version %d", data[o])
	}
	o++
	nameLen, n := binary.Uvarint(data[o:])
	if n <= 0 || nameLen > 1<<16 {
		return nil, fmt.Errorf("pdtz: invalid name length at byte offset %d", o)
	}
	o += n
	if int64(o)+int64(nameLen) > int64(len(data)) {
		return nil, fmt.Errorf("pdtz: name overruns file at byte offset %d", o)
	}
	name := string(data[o : o+int(nameLen)])
	headerEnd := int64(o) + int64(nameLen)

	if string(data[len(data)-len(footerV2):]) != footerV2 {
		return nil, fmt.Errorf("pdtz: bad footer magic")
	}
	indexOff := int64(binary.LittleEndian.Uint64(data[len(data)-footerLen : len(data)-len(footerV2)]))
	if indexOff < headerEnd || indexOff >= int64(len(data)-footerLen) {
		return nil, fmt.Errorf("pdtz: index offset %d out of range", indexOff)
	}

	io64 := indexOff
	blockCount, n := binary.Uvarint(data[io64:])
	if n <= 0 || blockCount > uint64(len(data)) {
		return nil, fmt.Errorf("pdtz: invalid index block count at byte offset %d", io64)
	}
	io64 += int64(n)
	z := &Pdtz{data: data, name: name}
	z.blocks = make([]zblock, 0, blockCount)
	prevOff := int64(0)
	var firstAt int64
	for i := uint64(0); i < blockCount; i++ {
		offDelta, n := binary.Uvarint(data[io64:])
		if n <= 0 {
			return nil, fmt.Errorf("pdtz: index entry %d: invalid offset at byte offset %d", i, io64)
		}
		io64 += int64(n)
		count, n := binary.Uvarint(data[io64:])
		if n <= 0 || count == 0 || count > uint64(len(data)) {
			return nil, fmt.Errorf("pdtz: index entry %d: invalid record count at byte offset %d", i, io64)
		}
		io64 += int64(n)
		off := prevOff + int64(offDelta)
		if i == 0 {
			off = int64(offDelta)
			if off < headerEnd {
				return nil, fmt.Errorf("pdtz: index entry 0: offset %d inside header", off)
			}
		} else if offDelta == 0 {
			return nil, fmt.Errorf("pdtz: index entry %d: non-increasing offset %d", i, off)
		}
		if off >= indexOff {
			return nil, fmt.Errorf("pdtz: index entry %d: offset %d beyond index", i, off)
		}
		payloadLen, n := binary.Uvarint(data[off:])
		if n <= 0 || payloadLen == 0 {
			return nil, fmt.Errorf("pdtz: block %d: invalid payload length at byte offset %d", i, off)
		}
		start := off + int64(n)
		end := start + int64(payloadLen)
		if end > indexOff {
			return nil, fmt.Errorf("pdtz: block %d: payload overruns index (ends %d, index at %d)", i, end, indexOff)
		}
		if count > payloadLen/minRecordBytes+1 {
			return nil, fmt.Errorf("pdtz: block %d: %d records cannot fit in %d payload bytes", i, count, payloadLen)
		}
		z.blocks = append(z.blocks, zblock{off: off, start: start, end: end, count: int(count), firstAt: firstAt})
		firstAt += int64(count)
		prevOff = off
		z.records += count
	}
	return z, nil
}

// OpenPdtz memory-maps path and parses it as a v2 trace. Close releases the
// mapping; all BlockReaders must be drained before Close. On platforms
// without mmap support the file is read into memory instead.
func OpenPdtz(path string) (*Pdtz, error) {
	data, unmap, err := mmapFile(path)
	if err != nil {
		return nil, fmt.Errorf("pdtz: %s: %w", path, err)
	}
	z, err := ParsePdtz(data)
	if err != nil {
		if unmap != nil {
			_ = unmap()
		}
		return nil, fmt.Errorf("pdtz: %s: %w", path, err)
	}
	//pdede:frozen-ok still constructing: ParsePdtz's result has not escaped yet
	z.unmap = unmap
	return z, nil
}

// Name implements Source.
func (z *Pdtz) Name() string { return z.name }

// Records returns the total record count, from the index.
func (z *Pdtz) Records() uint64 { return z.records }

// Blocks returns the number of blocks in the file.
func (z *Pdtz) Blocks() int { return len(z.blocks) }

// Open implements Source: each call returns an independent zero-copy reader
// over the shared backing bytes.
func (z *Pdtz) Open() Reader { return &BlockReader{z: z} }

// OpenBlocks returns a BlockReader positioned at block first (inclusive)
// ending after block last (exclusive; last <= 0 or > Blocks() means "to the
// end"). Blocks are independently decodable, so this is how a sharded
// consumer splits one mapped trace.
func (z *Pdtz) OpenBlocks(first, last int) (*BlockReader, error) {
	if first < 0 || first > len(z.blocks) {
		return nil, fmt.Errorf("pdtz: block %d out of range [0,%d]", first, len(z.blocks))
	}
	if last <= 0 || last > len(z.blocks) {
		last = len(z.blocks)
	}
	if last < first {
		return nil, fmt.Errorf("pdtz: empty block range [%d,%d)", first, last)
	}
	return &BlockReader{z: z, block: first, lastBlock: last}, nil
}

// Close releases the mapping, if any. The Pdtz must not be used afterwards,
// so the teardown writes below are exempt from the frozen contract.
//
//pdede:frozen-ok
func (z *Pdtz) Close() error {
	z.data = nil
	z.blocks = nil
	if z.unmap != nil {
		u := z.unmap
		z.unmap = nil
		return u()
	}
	return nil
}

// BlockReader decodes a Pdtz sequentially. It implements Reader and
// BatchReader; NextBatch is the zero-copy hot path — records are
// reconstructed straight out of the backing bytes into the caller's batch
// buffer, no intermediate buffering, no per-record allocation. A BlockReader
// is single-goroutine state; open one per concurrent consumer (Open is
// cheap and the backing bytes are shared).
type BlockReader struct {
	z         *Pdtz
	block     int // index of the next block to load
	lastBlock int // exclusive end block; 0 means "all" (set lazily)

	payload   []byte // current block's payload
	pos       int    // decode cursor within payload
	remaining int    // records left in the current block
	prev      int64  // previous record's PC (delta chain state)
	start     int64  // absolute file offset of payload[0], for errors
	rec       int64  // global index of the next record
}

// corrupt builds a positioned decode error: global record index plus the
// absolute byte offset within the backing file.
//
// Kept out of line: inlined into NextBatch, the fmt boxing of its
// arguments becomes heap-escape sites inside the batch decode loop's
// body, breaking that function's //pdede:noalloc contract and bloating
// its frame for a path only corrupt inputs reach.
//
//go:noinline
func (r *BlockReader) corrupt(field string) error {
	return fmt.Errorf("pdtz: record %d at byte offset %d: %s", r.rec, r.start+int64(r.pos), field)
}

// nextBlock advances to the next block, priming the delta chain from the
// block's basePC. Returns io.EOF past the last block.
func (r *BlockReader) nextBlock() error {
	if r.lastBlock == 0 {
		r.lastBlock = len(r.z.blocks)
	}
	if r.block >= r.lastBlock {
		return io.EOF
	}
	b := r.z.blocks[r.block]
	payload := r.z.data[b.start:b.end]
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return fmt.Errorf("pdtz: block %d at byte offset %d: invalid record count", r.block, b.start)
	}
	if int(count) != b.count {
		return fmt.Errorf("pdtz: block %d at byte offset %d: payload count %d != index count %d",
			r.block, b.start, count, b.count)
	}
	o := n
	basePC, n := binary.Uvarint(payload[o:])
	if n <= 0 {
		return fmt.Errorf("pdtz: block %d at byte offset %d: invalid base PC", r.block, b.start+int64(o))
	}
	o += n
	r.payload = payload
	r.pos = o
	r.remaining = b.count
	r.prev = int64(addr.New(basePC))
	r.start = b.start
	r.rec = b.firstAt
	r.block++
	return nil
}

// NextBatch implements BatchReader. It fills buf with up to len(buf)
// records, crossing block boundaries as needed, and returns io.EOF (with
// any records decoded before it) at the clean end of the trace.
//
// The decode loop — including the branchless varint fast path — must not
// allocate; error construction is outlined (corrupt, nextBlock) to keep
// every heap-escape site off this body.
//
//pdede:noalloc
func (r *BlockReader) NextBatch(buf []isa.Branch) (int, error) {
	n := 0
	for n < len(buf) {
		if r.remaining == 0 {
			if err := r.nextBlock(); err != nil {
				return n, err
			}
		}
		p := r.payload
		pos := r.pos
		prev := r.prev
		want := r.remaining
		if left := len(buf) - n; want > left {
			want = left
		}
		// Error exits jump to bad, which syncs the cursor to the failure
		// point (r.pos/r.prev/r.remaining) so the error carries the right
		// offset and a retry re-fails there. Plain locals + goto keep the
		// cursor variables in registers through the hot loop.
		//
		// Records with at least maxRecordBytes of payload left (every record
		// in a writer-padded block) take the fast path: one bounds check up
		// front, then hand-inlined varint decode with a single-byte fast
		// case. The tail path uses the checked binary.Uvarint/Varint
		// routines; both paths accept exactly the standard varint encodings.
		var fault string
		var i int
		for ; i < want; i++ {
			var flags byte
			var kind isa.Kind
			var blockLen uint64
			var pcDelta, targetDelta int64
			if pos+maxRecordBytes <= len(p) {
				flags = p[pos]
				kind = isa.Kind(flags >> kindShift)
				if kind >= isa.NumKinds {
					fault = "invalid kind"
					goto bad
				}
				// Delta varint lengths flip record to record (a near target
				// is 1-2 bytes, a cross-page jump 3+), so a byte-at-a-time
				// loop eats a branch mispredict per field. The ≤3-byte case
				// — all of them in practice — decodes branchlessly from one
				// 32-bit load: length from the first clear continuation bit,
				// payload bits gathered with masks, truncated by length.
				q := pos + 1
				blockLen = uint64(p[q])
				q++
				if blockLen > 0x7f {
					blockLen &= 0x7f
					for s := uint(7); ; s += 7 {
						if s > 63 {
							fault = "invalid block length"
							goto bad
						}
						b := p[q]
						q++
						if b < 0x80 {
							if s == 63 && b > 1 {
								fault = "invalid block length"
								goto bad
							}
							blockLen |= uint64(b) << s
							break
						}
						blockLen |= uint64(b&0x7f) << s
					}
				}
				if blockLen == 0 || blockLen > isa.MaxBlockLen {
					fault = "invalid block length"
					goto bad
				}
				w32 := binary.LittleEndian.Uint32(p[q:])
				var upc uint64
				if w32&0x808080 != 0x808080 {
					l := (bits.TrailingZeros32(^w32&0x808080) + 1) >> 3
					e := w32&0x7f | (w32&0x7f00)>>1 | (w32&0x7f0000)>>2
					upc = uint64(e) & (1<<(7*uint(l)) - 1)
					q += l
				} else {
					upc = uint64(w32) & 0x7f
					q++
					for s := uint(7); ; s += 7 {
						if s > 63 {
							fault = "invalid pc delta"
							goto bad
						}
						b := p[q]
						q++
						if b < 0x80 {
							if s == 63 && b > 1 {
								fault = "invalid pc delta"
								goto bad
							}
							upc |= uint64(b) << s
							break
						}
						upc |= uint64(b&0x7f) << s
					}
				}
				pcDelta = int64(upc>>1) ^ -int64(upc&1)
				w32 = binary.LittleEndian.Uint32(p[q:])
				var utd uint64
				if w32&0x808080 != 0x808080 {
					l := (bits.TrailingZeros32(^w32&0x808080) + 1) >> 3
					e := w32&0x7f | (w32&0x7f00)>>1 | (w32&0x7f0000)>>2
					utd = uint64(e) & (1<<(7*uint(l)) - 1)
					q += l
				} else {
					utd = uint64(w32) & 0x7f
					q++
					for s := uint(7); ; s += 7 {
						if s > 63 {
							fault = "invalid target delta"
							goto bad
						}
						b := p[q]
						q++
						if b < 0x80 {
							if s == 63 && b > 1 {
								fault = "invalid target delta"
								goto bad
							}
							utd |= uint64(b) << s
							break
						}
						utd |= uint64(b&0x7f) << s
					}
				}
				targetDelta = int64(utd>>1) ^ -int64(utd&1)
				pos = q
			} else {
				if pos >= len(p) {
					fault = "payload exhausted before record count"
					goto bad
				}
				flags = p[pos]
				pos++
				kind = isa.Kind(flags >> kindShift)
				if kind >= isa.NumKinds {
					pos--
					fault = "invalid kind"
					goto bad
				}
				var w int
				blockLen, w = binary.Uvarint(p[pos:])
				if w <= 0 || blockLen == 0 || blockLen > isa.MaxBlockLen {
					fault = "invalid block length"
					goto bad
				}
				pos += w
				pcDelta, w = binary.Varint(p[pos:])
				if w <= 0 {
					fault = "invalid pc delta"
					goto bad
				}
				pos += w
				targetDelta, w = binary.Varint(p[pos:])
				if w <= 0 {
					fault = "invalid target delta"
					goto bad
				}
				pos += w
			}
			pc := addr.New(uint64(prev + pcDelta))
			buf[n] = isa.Branch{
				PC:       pc,
				Target:   addr.New(uint64(int64(pc) + targetDelta)),
				BlockLen: uint16(blockLen),
				Kind:     kind,
				Taken:    flags&flagTaken != 0,
			}
			prev = int64(pc)
			n++
		}
		r.pos = pos
		r.prev = prev
		r.remaining -= want
		r.rec += int64(want)
		continue
	bad:
		r.pos, r.prev, r.remaining = pos, prev, r.remaining-i
		r.rec += int64(i)
		return n, r.corrupt(fault)
	}
	return n, nil
}

// Next implements Reader: the single-record path decodes through the same
// state machine as NextBatch. The one-record buffer must stay on the
// stack (NextBatch's buf parameter does not escape) and the constant
// index needs no bounds check.
//
//pdede:noalloc
//pdede:nobce
func (r *BlockReader) Next() (isa.Branch, error) {
	var one [1]isa.Branch
	n, err := r.NextBatch(one[:])
	if n == 1 {
		return one[0], nil
	}
	return isa.Branch{}, err
}

package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// The decoder must never panic on arbitrary input: it either errors or
// terminates cleanly, regardless of what bytes it is fed.
func TestDecoderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		dec, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return true // rejected at header: fine
		}
		for i := 0; i < 10000; i++ {
			if _, err := dec.Next(); err != nil {
				return true
			}
		}
		return true // absurdly long but valid stream: also fine
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Same with a valid header followed by random record bytes.
func TestDecoderNeverPanicsWithValidHeader(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 300; trial++ {
		var buf bytes.Buffer
		buf.WriteString("PDT1")
		buf.WriteByte(1)
		buf.WriteByte('x')
		n := r.Intn(64)
		for i := 0; i < n; i++ {
			buf.WriteByte(byte(r.Uint32()))
		}
		dec, err := NewDecoder(&buf)
		if err != nil {
			t.Fatalf("valid header rejected: %v", err)
		}
		for i := 0; i < 100; i++ {
			if _, err := dec.Next(); err != nil {
				break
			}
		}
	}
}

// Limit and Skip must compose: skip W then limit M covers exactly the
// window in the middle.
func TestWindowComposition(t *testing.T) {
	m := sampleTrace()
	win := &Limit{R: &Skip{R: m.Open(), SkipInstrs: 5}, MaxInstrs: 7}
	got, err := Collect("win", win)
	if err != nil {
		t.Fatal(err)
	}
	// Record 0 (5 instrs) covers the skip; records 1 (2) and 2 (5) cover
	// the 7-instruction window.
	if len(got.Records) != 2 || got.Records[0] != m.Records[1] {
		t.Fatalf("window = %+v", got.Records)
	}
}

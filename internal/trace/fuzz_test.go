package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/rng"
)

// FuzzDecoder drives NewDecoder/Decoder.Next with arbitrary bytes: the
// decoder must never panic, and every non-EOF failure must carry a
// descriptive message. Seeds cover a fully valid encoding, truncations of
// it, header-only inputs and the random-tail corpus style of
// robustness_test.go.
func FuzzDecoder(f *testing.F) {
	var valid bytes.Buffer
	if err := Write(&valid, "sample", sampleTrace().Open()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-1]) // missing trailer
	f.Add(valid.Bytes()[:7])             // cut inside the header
	f.Add([]byte{})
	f.Add([]byte("PDT1"))
	f.Add([]byte("PDT1\x01x\xff"))             // empty named stream
	f.Add([]byte("PDT1\x01x\x02\x05\x80\x80")) // record cut mid-varint
	f.Add([]byte("QQT1\x01x\xff"))             // bad magic
	r := rng.New(99)
	for i := 0; i < 8; i++ {
		seed := []byte("PDT1\x01x")
		n := r.Intn(64)
		for j := 0; j < n; j++ {
			seed = append(seed, byte(r.Uint32()))
		}
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			if err.Error() == "" {
				t.Error("NewDecoder returned an empty error")
			}
			return
		}
		for {
			_, err := dec.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				if err.Error() == "" {
					t.Error("Next returned an empty error")
				}
				dec.Next() // calling again after an error must not crash
				return
			}
		}
	})
}

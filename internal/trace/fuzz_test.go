package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/isa"
	"repro/internal/rng"
)

// FuzzDecoder drives NewDecoder/Decoder.Next with arbitrary bytes: the
// decoder must never panic, and every non-EOF failure must carry a
// descriptive message. Seeds cover a fully valid encoding, truncations of
// it, header-only inputs and the random-tail corpus style of
// robustness_test.go.
func FuzzDecoder(f *testing.F) {
	var valid bytes.Buffer
	if err := Write(&valid, "sample", sampleTrace().Open()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-1]) // missing trailer
	f.Add(valid.Bytes()[:7])             // cut inside the header
	f.Add([]byte{})
	f.Add([]byte("PDT1"))
	f.Add([]byte("PDT1\x01x\xff"))             // empty named stream
	f.Add([]byte("PDT1\x01x\x02\x05\x80\x80")) // record cut mid-varint
	f.Add([]byte("QQT1\x01x\xff"))             // bad magic
	r := rng.New(99)
	for i := 0; i < 8; i++ {
		seed := []byte("PDT1\x01x")
		n := r.Intn(64)
		for j := 0; j < n; j++ {
			seed = append(seed, byte(r.Uint32()))
		}
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			if err.Error() == "" {
				t.Error("NewDecoder returned an empty error")
			}
			return
		}
		for {
			_, err := dec.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				if err.Error() == "" {
					t.Error("Next returned an empty error")
				}
				dec.Next() // calling again after an error must not crash
				return
			}
		}
	})
}

// FuzzPdtzRoundTrip drives the v2 container with arbitrary bytes. Parsing
// and decoding must never panic and must fail with positioned messages; any
// input that parses AND decodes cleanly must survive a decode -> re-encode
// -> re-decode round trip with an identical record stream. Seeds cover
// valid encodings at several sizes plus the corruption styles the decoder's
// fault paths guard against.
func FuzzPdtzRoundTrip(f *testing.F) {
	for _, n := range []int{0, 1, 700, 5000} {
		var valid bytes.Buffer
		if err := WritePdtz(&valid, "seed", makeTrace(n).Open()); err != nil {
			f.Fatal(err)
		}
		f.Add(valid.Bytes())
		f.Add(valid.Bytes()[:valid.Len()-1])          // missing footer byte
		f.Add(valid.Bytes()[:valid.Len()/2])          // cut mid-payload
		f.Add(append([]byte{}, valid.Bytes()[4:]...)) // magic stripped
	}
	f.Add([]byte("PDTZ"))
	f.Add([]byte("PDTZ\x02\x04seedZEND"))
	r := rng.New(7)
	for i := 0; i < 8; i++ {
		seed := []byte("PDTZ\x02\x01x")
		n := r.Intn(96)
		for j := 0; j < n; j++ {
			seed = append(seed, byte(r.Uint32()))
		}
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		z, err := ParsePdtz(data)
		if err != nil {
			if err.Error() == "" {
				t.Error("ParsePdtz returned an empty error")
			}
			return
		}
		// Decode everything. Corrupt payloads must fail with a message;
		// a failed batch must not crash subsequent calls.
		var recs []isa.Branch
		br := z.Open().(*BlockReader)
		buf := make([]isa.Branch, 512)
		for {
			n, err := br.NextBatch(buf)
			recs = append(recs, buf[:n]...)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				if err.Error() == "" {
					t.Error("NextBatch returned an empty error")
				}
				br.NextBatch(buf) // must not panic after an error
				return
			}
		}
		// Clean decode: re-encode and re-decode must reproduce the stream.
		var again bytes.Buffer
		if err := WritePdtz(&again, z.Name(), z.Open()); err != nil {
			t.Fatalf("re-encode of a cleanly decoded trace failed: %v", err)
		}
		z2, err := ParsePdtz(again.Bytes())
		if err != nil {
			t.Fatalf("re-parse of a re-encoded trace failed: %v", err)
		}
		m2, err := Collect("x", z2.Open())
		if err != nil {
			t.Fatalf("re-decode of a re-encoded trace failed: %v", err)
		}
		if len(m2.Records) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(m2.Records))
		}
		for i := range recs {
			if m2.Records[i] != recs[i] {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, recs[i], m2.Records[i])
			}
		}
	})
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/addr"
	"repro/internal/isa"
)

// Binary trace format ("PDT1"):
//
//	header:  magic "PDT1", uvarint name length, name bytes
//	records: per record —
//	    byte   flags: bit0 taken, bits1-3 kind
//	    uvarint blockLen
//	    varint  pcDelta      (signed delta from previous record's PC)
//	    varint  targetDelta  (signed delta from this record's PC)
//	trailer: flags byte 0xFF marks end of stream
//
// Delta encoding keeps hot loops to a few bytes per record: branch PCs
// revisit a small working set and targets are usually near their branch.
const magic = "PDT1"

const (
	flagTaken   = 0x01
	kindShift   = 1
	endOfStream = 0xFF
)

// Write encodes a full trace to w.
func Write(w io.Writer, name string, r Reader) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(name)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	var prevPC addr.VA
	for {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		flags := byte(b.Kind) << kindShift
		if b.Taken {
			flags |= flagTaken
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		n = binary.PutUvarint(buf[:], uint64(b.BlockLen))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutVarint(buf[:], int64(b.PC)-int64(prevPC))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutVarint(buf[:], int64(b.Target)-int64(b.PC))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prevPC = b.PC
	}
	if err := bw.WriteByte(endOfStream); err != nil {
		return err
	}
	return bw.Flush()
}

// Decoder reads the binary trace format. It implements Reader.
type Decoder struct {
	br     *bufio.Reader
	name   string
	prevPC addr.VA
	done   bool
}

// NewDecoder validates the header and returns a Decoder positioned at the
// first record.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	return &Decoder{br: br, name: string(name)}, nil
}

// Name returns the trace name from the header.
func (d *Decoder) Name() string { return d.name }

// unexpectedEOF converts a mid-record EOF into io.ErrUnexpectedEOF so that
// a truncated stream is never mistaken for a clean end of trace.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Next implements Reader.
func (d *Decoder) Next() (isa.Branch, error) {
	if d.done {
		return isa.Branch{}, io.EOF
	}
	flags, err := d.br.ReadByte()
	if err != nil {
		return isa.Branch{}, fmt.Errorf("trace: truncated stream: %w", unexpectedEOF(err))
	}
	if flags == endOfStream {
		d.done = true
		return isa.Branch{}, io.EOF
	}
	kind := isa.Kind(flags >> kindShift)
	if kind >= isa.NumKinds {
		return isa.Branch{}, fmt.Errorf("trace: invalid kind %d", kind)
	}
	blockLen, err := binary.ReadUvarint(d.br)
	if err != nil {
		return isa.Branch{}, fmt.Errorf("trace: reading block length: %w", unexpectedEOF(err))
	}
	if blockLen == 0 || blockLen > 1<<16-1 {
		return isa.Branch{}, fmt.Errorf("trace: invalid block length %d", blockLen)
	}
	pcDelta, err := binary.ReadVarint(d.br)
	if err != nil {
		return isa.Branch{}, fmt.Errorf("trace: reading pc delta: %w", unexpectedEOF(err))
	}
	targetDelta, err := binary.ReadVarint(d.br)
	if err != nil {
		return isa.Branch{}, fmt.Errorf("trace: reading target delta: %w", unexpectedEOF(err))
	}
	pc := addr.New(uint64(int64(d.prevPC) + pcDelta))
	target := addr.New(uint64(int64(pc) + targetDelta))
	d.prevPC = pc
	return isa.Branch{
		PC:       pc,
		Target:   target,
		BlockLen: uint16(blockLen),
		Kind:     kind,
		Taken:    flags&flagTaken != 0,
	}, nil
}

// NextBatch implements BatchReader: it decodes records back-to-back without
// re-crossing the Reader interface per record. Decoded records preceding an
// error are returned alongside it.
func (d *Decoder) NextBatch(buf []isa.Branch) (int, error) {
	for i := range buf {
		b, err := d.Next()
		if err != nil {
			return i, err
		}
		buf[i] = b
	}
	return len(buf), nil
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/addr"
	"repro/internal/isa"
)

// Binary trace format ("PDT1"):
//
//	header:  magic "PDT1", uvarint name length, name bytes
//	records: per record —
//	    byte   flags: bit0 taken, bits1-3 kind
//	    uvarint blockLen
//	    varint  pcDelta      (signed delta from previous record's PC)
//	    varint  targetDelta  (signed delta from this record's PC)
//	trailer: flags byte 0xFF marks end of stream
//
// Delta encoding keeps hot loops to a few bytes per record: branch PCs
// revisit a small working set and targets are usually near their branch.
//
// The v2 format ("PDTZ", pdtz.go) keeps the same per-record delta scheme but
// groups records into independently decodable blocks with a seekable index,
// trading the v1 stream's byte-at-a-time decode for zero-copy batched decode
// out of a single mapping.
const magic = "PDT1"

const (
	flagTaken   = 0x01
	kindShift   = 1
	endOfStream = 0xFF
)

// countingWriter tracks how many bytes reached the underlying writer, so
// write-path errors can report where in the output stream they happened.
type countingWriter struct {
	w   io.Writer
	off int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.off += int64(n)
	return n, err
}

// Write encodes a full trace to w. Errors — from the source reader or from
// short writes to w — are annotated with the 0-based record index and the
// byte offset already flushed to w, so a partial file can be located and
// truncated precisely.
func Write(w io.Writer, name string, r Reader) error {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	wpos := func(rec int64) string {
		return fmt.Sprintf("record %d (flushed through byte %d)", rec, cw.off)
	}
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("trace: writing magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(name)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return fmt.Errorf("trace: writing name length: %w", err)
	}
	if _, err := bw.WriteString(name); err != nil {
		return fmt.Errorf("trace: writing name: %w", err)
	}
	var prevPC addr.VA
	for rec := int64(0); ; rec++ {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("trace: reading %s from source: %w", wpos(rec), err)
		}
		flags := byte(b.Kind) << kindShift
		if b.Taken {
			flags |= flagTaken
		}
		if err := bw.WriteByte(flags); err != nil {
			return fmt.Errorf("trace: writing %s: %w", wpos(rec), err)
		}
		n = binary.PutUvarint(buf[:], uint64(b.BlockLen))
		if _, err := bw.Write(buf[:n]); err != nil {
			return fmt.Errorf("trace: writing %s: %w", wpos(rec), err)
		}
		n = binary.PutVarint(buf[:], int64(b.PC)-int64(prevPC))
		if _, err := bw.Write(buf[:n]); err != nil {
			return fmt.Errorf("trace: writing %s: %w", wpos(rec), err)
		}
		n = binary.PutVarint(buf[:], int64(b.Target)-int64(b.PC))
		if _, err := bw.Write(buf[:n]); err != nil {
			return fmt.Errorf("trace: writing %s: %w", wpos(rec), err)
		}
		prevPC = b.PC
	}
	if err := bw.WriteByte(endOfStream); err != nil {
		return fmt.Errorf("trace: writing end-of-stream marker: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flushing (%d bytes written): %w", cw.off, err)
	}
	return nil
}

// countingByteReader counts consumed bytes so decode errors can point at the
// exact stream offset where a field was cut off.
type countingByteReader struct {
	br  *bufio.Reader
	off int64
}

func (c *countingByteReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

func (c *countingByteReader) readFull(p []byte) error {
	n, err := io.ReadFull(c.br, p)
	c.off += int64(n)
	return err
}

// Decoder reads the binary trace format. It implements Reader.
type Decoder struct {
	br     *countingByteReader
	name   string
	prevPC addr.VA
	rec    int64 // 0-based index of the record Next will decode
	done   bool
}

// NewDecoder validates the header and returns a Decoder positioned at the
// first record.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := &countingByteReader{br: bufio.NewReader(r)}
	head := make([]byte, len(magic))
	if err := br.readFull(head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if err := br.readFull(name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	return &Decoder{br: br, name: string(name)}, nil
}

// Name returns the trace name from the header.
func (d *Decoder) Name() string { return d.name }

// Offset returns the number of bytes consumed from the underlying stream.
func (d *Decoder) Offset() int64 { return d.br.off }

// Records returns how many records have been decoded so far.
func (d *Decoder) Records() int64 { return d.rec }

// unexpectedEOF converts a mid-record EOF into io.ErrUnexpectedEOF so that
// a truncated stream is never mistaken for a clean end of trace.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// recErr annotates a mid-record decode failure with the record index and
// the byte offset the stream was cut at, so a truncated upload or a corrupt
// file can be diagnosed (and resumed) precisely instead of surfacing as a
// bare unexpected-EOF.
func (d *Decoder) recErr(field string, err error) error {
	return fmt.Errorf("trace: record %d at byte offset %d: %s: %w",
		d.rec, d.br.off, field, unexpectedEOF(err))
}

// Next implements Reader.
func (d *Decoder) Next() (isa.Branch, error) {
	if d.done {
		return isa.Branch{}, io.EOF
	}
	flags, err := d.br.ReadByte()
	if err != nil {
		return isa.Branch{}, d.recErr("truncated stream", err)
	}
	if flags == endOfStream {
		d.done = true
		return isa.Branch{}, io.EOF
	}
	kind := isa.Kind(flags >> kindShift)
	if kind >= isa.NumKinds {
		return isa.Branch{}, d.recErr("invalid kind", fmt.Errorf("kind %d", kind))
	}
	blockLen, err := binary.ReadUvarint(d.br)
	if err != nil {
		return isa.Branch{}, d.recErr("reading block length", err)
	}
	if blockLen == 0 || blockLen > isa.MaxBlockLen {
		return isa.Branch{}, d.recErr("invalid block length", fmt.Errorf("length %d", blockLen))
	}
	pcDelta, err := binary.ReadVarint(d.br)
	if err != nil {
		return isa.Branch{}, d.recErr("reading pc delta", err)
	}
	targetDelta, err := binary.ReadVarint(d.br)
	if err != nil {
		return isa.Branch{}, d.recErr("reading target delta", err)
	}
	pc := addr.New(uint64(int64(d.prevPC) + pcDelta))
	target := addr.New(uint64(int64(pc) + targetDelta))
	d.prevPC = pc
	d.rec++
	return isa.Branch{
		PC:       pc,
		Target:   target,
		BlockLen: uint16(blockLen),
		Kind:     kind,
		Taken:    flags&flagTaken != 0,
	}, nil
}

// NextBatch implements BatchReader: it decodes records back-to-back without
// re-crossing the Reader interface per record. Decoded records preceding an
// error are returned alongside it; the error carries the failing record's
// index and byte offset (see recErr).
func (d *Decoder) NextBatch(buf []isa.Branch) (int, error) {
	for i := range buf {
		b, err := d.Next()
		if err != nil {
			return i, err
		}
		buf[i] = b
	}
	return len(buf), nil
}

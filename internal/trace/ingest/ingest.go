// Package ingest opens branch traces of any supported container format
// behind one function: the repo's own .pdt (v1) and .pdtz (v2) codecs,
// ChampSim binary instruction traces, and Linux perf script LBR text, each
// optionally gzip-compressed. Format detection is by content, not filename,
// so renamed or piped-through files still open; an explicit Format pins the
// decoder when sniffing would guess wrong (e.g. a ChampSim trace that
// happens to start with printable bytes).
package ingest

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/trace"
	"repro/internal/trace/champsim"
	"repro/internal/trace/perfscript"
)

// Format pins the decoder used for an input.
type Format string

const (
	// Auto sniffs the format from the leading bytes.
	Auto Format = "auto"
	// Pdt is the repo's v1 single-stream codec.
	Pdt Format = "pdt"
	// Pdtz is the repo's v2 block codec.
	Pdtz Format = "pdtz"
	// ChampSim is the 64-byte binary input_instr stream.
	ChampSim Format = "champsim"
	// Perf is `perf script` LBR text.
	Perf Format = "perf"
)

// ParseFormat validates a -from flag value.
func ParseFormat(s string) (Format, error) {
	switch f := Format(strings.ToLower(s)); f {
	case Auto, Pdt, Pdtz, ChampSim, Perf:
		return f, nil
	default:
		return Auto, fmt.Errorf("unknown trace format %q (want auto, pdt, pdtz, champsim or perf)", s)
	}
}

// Opened is an ingested trace: a replayable Source plus where it came from.
type Opened struct {
	trace.Source
	Format Format // the decoder actually used, never Auto

	// ChampSimStats / PerfStats carry adapter counters when the respective
	// decoder ran; nil otherwise.
	ChampSimStats *champsim.Stats
	PerfStats     *perfscript.Stats

	closeFn func() error
}

// Close releases any resources (an mmap for direct .pdtz opens; nothing for
// fully-ingested formats).
func (o *Opened) Close() error {
	if o.closeFn != nil {
		f := o.closeFn
		o.closeFn = nil
		return f()
	}
	return nil
}

var (
	gzipMagic = []byte{0x1f, 0x8b}
	xzMagic   = []byte{0xfd, '7', 'z', 'X', 'Z', 0x00}
	zstMagic  = []byte{0x28, 0xb5, 0x2f, 0xfd}
)

// Open opens and fully sniffs path. Plain .pdtz files are mmapped (zero-copy
// batched decode); everything else is decoded into memory up front so the
// returned Source replays without re-reading the file.
func Open(path string, format Format) (*Opened, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<16)
	head, err := br.Peek(6)
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("ingest: %s: empty or unreadable: %w", path, err)
	}

	var in io.Reader = br
	compressed := false
	switch {
	case bytes.HasPrefix(head, gzipMagic):
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("ingest: %s: bad gzip stream: %w", path, err)
		}
		defer zr.Close()
		in = bufio.NewReaderSize(zr, 1<<16)
		compressed = true
	case bytes.HasPrefix(head, xzMagic):
		return nil, fmt.Errorf("ingest: %s: xz-compressed (no xz support built in); decompress first, e.g.: xz -dc %s > %s",
			path, path, strings.TrimSuffix(path, ".xz"))
	case bytes.HasPrefix(head, zstMagic):
		return nil, fmt.Errorf("ingest: %s: zstd-compressed (no zstd support built in); decompress first, e.g.: zstd -dc %s > trace",
			path, path)
	}

	if format == Auto || format == "" {
		format, err = sniff(in.(*bufio.Reader))
		if err != nil {
			return nil, fmt.Errorf("ingest: %s: %w", path, err)
		}
	}

	name := traceBaseName(path)
	switch format {
	case Pdt:
		dec, err := trace.NewDecoder(in)
		if err != nil {
			return nil, fmt.Errorf("ingest: %s: %w", path, err)
		}
		m, err := trace.Collect(dec.Name(), dec)
		if err != nil {
			return nil, fmt.Errorf("ingest: %s: %w", path, err)
		}
		return &Opened{Source: m, Format: Pdt}, nil

	case Pdtz:
		if !compressed {
			// The common case: map the file and decode lazily, zero-copy.
			z, err := trace.OpenPdtz(path)
			if err != nil {
				return nil, fmt.Errorf("ingest: %s: %w", path, err)
			}
			return &Opened{Source: z, Format: Pdtz, closeFn: z.Close}, nil
		}
		data, err := io.ReadAll(in)
		if err != nil {
			return nil, fmt.Errorf("ingest: %s: %w", path, err)
		}
		z, err := trace.ParsePdtz(data)
		if err != nil {
			return nil, fmt.Errorf("ingest: %s: %w", path, err)
		}
		return &Opened{Source: z, Format: Pdtz, closeFn: z.Close}, nil

	case ChampSim:
		r := champsim.NewReader(in)
		m, err := trace.Collect(name, r)
		if err != nil {
			return nil, fmt.Errorf("ingest: %s: %w", path, err)
		}
		st := r.Stats()
		return &Opened{Source: m, Format: ChampSim, ChampSimStats: &st}, nil

	case Perf:
		r := perfscript.NewReader(in)
		m, err := trace.Collect(name, r)
		if err != nil {
			return nil, fmt.Errorf("ingest: %s: %w", path, err)
		}
		st := r.Stats()
		return &Opened{Source: m, Format: Perf, PerfStats: &st}, nil
	}
	return nil, fmt.Errorf("ingest: %s: unsupported format %q", path, format)
}

// sniff decides the format from the stream head without consuming it.
func sniff(br *bufio.Reader) (Format, error) {
	head, err := br.Peek(512)
	if err != nil && len(head) == 0 {
		return Auto, fmt.Errorf("empty input")
	}
	if len(head) >= 4 {
		switch string(head[:4]) {
		case "PDT1":
			return Pdt, nil
		case "PDTZ":
			return Pdtz, nil
		}
	}
	// Text (perf script) vs binary (ChampSim): LBR text is pure printable
	// ASCII plus whitespace; a 64-byte input_instr record essentially always
	// contains zero or high bytes in its first lines' worth of data.
	for _, b := range head {
		if b >= 0x80 || (b < 0x20 && b != '\n' && b != '\r' && b != '\t') {
			return ChampSim, nil
		}
	}
	return Perf, nil
}

// traceBaseName strips the recognized container extensions so ingested
// traces get stable, readable names: "leela.champsimtrace.gz" -> "leela".
func traceBaseName(path string) string {
	base := filepath.Base(path)
	for {
		ext := filepath.Ext(base)
		switch strings.ToLower(ext) {
		case ".gz", ".xz", ".zst", ".pdt", ".pdtz", ".champsimtrace", ".champsim", ".trace", ".txt", ".perf":
			base = strings.TrimSuffix(base, ext)
			continue
		}
		if base == "" {
			return "trace"
		}
		return base
	}
}

package ingest

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/trace"
)

func sample(n int) *trace.Memory {
	r := rng.New(11)
	recs := make([]isa.Branch, n)
	pc := addr.Build(2, 5, 0)
	for i := range recs {
		recs[i] = isa.Branch{
			PC:       pc,
			Target:   pc.Add(uint64(4 * (1 + r.Intn(2000)))),
			BlockLen: uint16(1 + r.Intn(20)),
			Kind:     isa.Kind(r.Intn(int(isa.NumKinds))),
			Taken:    r.Intn(4) != 0,
		}
		pc = pc.Add(uint64(4 * (1 + r.Intn(50))))
	}
	return &trace.Memory{TraceName: "ingest-sample", Records: recs}
}

func collect(t *testing.T, s trace.Source) []isa.Branch {
	t.Helper()
	m, err := trace.Collect(s.Name(), s.Open())
	if err != nil {
		t.Fatal(err)
	}
	return m.Records
}

func writeFile(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func gz(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := gzip.NewWriter(&buf)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Both native codecs must be sniffed by magic, plain and gzipped, and
// round-trip the records exactly.
func TestOpenNativeFormats(t *testing.T) {
	m := sample(3000)
	var v1, v2 bytes.Buffer
	if err := trace.Write(&v1, m.TraceName, m.Open()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WritePdtz(&v2, m.TraceName, m.Open()); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		file   string
		data   []byte
		format Format
	}{
		{"t.pdt", v1.Bytes(), Pdt},
		{"renamed.bin", v1.Bytes(), Pdt},
		{"t.pdt.gz", gz(t, v1.Bytes()), Pdt},
		{"t.pdtz", v2.Bytes(), Pdtz},
		{"t.pdtz.gz", gz(t, v2.Bytes()), Pdtz},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			o, err := Open(writeFile(t, tc.file, tc.data), Auto)
			if err != nil {
				t.Fatal(err)
			}
			defer o.Close()
			if o.Format != tc.format {
				t.Errorf("format = %s, want %s", o.Format, tc.format)
			}
			if o.Name() != m.TraceName {
				t.Errorf("name = %q, want %q", o.Name(), m.TraceName)
			}
			if got := collect(t, o); !reflect.DeepEqual(got, m.Records) {
				t.Error("records differ after ingest")
			}
		})
	}
}

// champSimRecord builds one 64-byte input_instr record for fixtures.
func champSimRecord(ip uint64, isBranch, taken bool, dst, src []byte) []byte {
	b := make([]byte, 64)
	for i := 0; i < 8; i++ {
		b[i] = byte(ip >> (8 * i))
	}
	if isBranch {
		b[8] = 1
	}
	if taken {
		b[9] = 1
	}
	copy(b[10:12], dst)
	copy(b[12:16], src)
	return b
}

func TestOpenChampSim(t *testing.T) {
	const regSP, regFlags, regIP = 6, 25, 26
	var raw []byte
	raw = append(raw, champSimRecord(0x1000, false, false, []byte{1}, []byte{2})...)
	raw = append(raw, champSimRecord(0x1004, true, true, []byte{regIP}, []byte{regFlags, regIP})...)
	raw = append(raw, champSimRecord(0x2000, false, false, []byte{1}, []byte{2})...)

	for _, file := range []string{"app.champsimtrace", "app.champsimtrace.gz"} {
		data := raw
		if strings.HasSuffix(file, ".gz") {
			data = gz(t, raw)
		}
		t.Run(file, func(t *testing.T) {
			o, err := Open(writeFile(t, file, data), Auto)
			if err != nil {
				t.Fatal(err)
			}
			defer o.Close()
			if o.Format != ChampSim {
				t.Fatalf("format = %s, want champsim", o.Format)
			}
			if o.Name() != "app" {
				t.Errorf("name = %q, want app", o.Name())
			}
			recs := collect(t, o)
			if len(recs) != 1 || recs[0].Kind != isa.CondDirect || recs[0].Target != addr.New(0x2000) {
				t.Errorf("records = %+v, want one conditional to 0x2000", recs)
			}
			if o.ChampSimStats == nil || o.ChampSimStats.Instructions != 3 {
				t.Errorf("ChampSimStats = %+v, want 3 instructions", o.ChampSimStats)
			}
		})
	}
}

func TestOpenPerfScript(t *testing.T) {
	text := "# header\nmyapp 1 2.5: 7 branches:u: 0x2008/0x3000/P/-/-/1/COND 0x1000/0x2000/P/-/-/4/CALL\n"
	o, err := Open(writeFile(t, "run.perf.txt", []byte(text)), Auto)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if o.Format != Perf {
		t.Fatalf("format = %s, want perf", o.Format)
	}
	recs := collect(t, o)
	if len(recs) != 2 || recs[0].Kind != isa.DirectCall || recs[1].Kind != isa.CondDirect {
		t.Errorf("records = %+v, want CALL then COND", recs)
	}
	if o.PerfStats == nil || o.PerfStats.Samples != 1 {
		t.Errorf("PerfStats = %+v, want 1 sample", o.PerfStats)
	}
}

// A forced format must beat sniffing: LBR text forced as champsim fails as
// binary instead of parsing as perf.
func TestForcedFormat(t *testing.T) {
	path := writeFile(t, "t.txt", []byte("0x10/0x20/P/-/-/1/COND\n"))
	if _, err := Open(path, ChampSim); err == nil || !strings.Contains(err.Error(), "champsim") {
		t.Errorf("forcing champsim on text = %v, want champsim decode error", err)
	}
}

// Unsupported compression must fail with decompression guidance, not a
// decode error.
func TestCompressionGuidance(t *testing.T) {
	xz := append([]byte{0xfd, '7', 'z', 'X', 'Z', 0x00}, make([]byte, 32)...)
	if _, err := Open(writeFile(t, "t.pdt.xz", xz), Auto); err == nil || !strings.Contains(err.Error(), "xz -dc") {
		t.Errorf("xz error = %v, want 'xz -dc' guidance", err)
	}
	zst := append([]byte{0x28, 0xb5, 0x2f, 0xfd}, make([]byte, 32)...)
	if _, err := Open(writeFile(t, "t.zst", zst), Auto); err == nil || !strings.Contains(err.Error(), "zstd -dc") {
		t.Errorf("zstd error = %v, want 'zstd -dc' guidance", err)
	}
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"auto", "pdt", "pdtz", "champsim", "perf", "PDTZ"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Errorf("ParseFormat(%q) = %v", ok, err)
		}
	}
	if _, err := ParseFormat("elf"); err == nil {
		t.Error("ParseFormat(elf) succeeded, want error")
	}
}

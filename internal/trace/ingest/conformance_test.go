package ingest

// Trace-conformance golden corpus. The files under testdata/golden are
// committed outputs of every supported container format for known inputs:
//
//	synthetic.pdt      v1 encoding of a 50k-instruction catalog app trace
//	synthetic.pdtz     v2 encoding of the SAME records
//	champsim.trace.gz  hand-written ChampSim input_instr stream (gzipped)
//	perf.txt           hand-written perf script LBR sample text
//	DIGESTS            sha256 of each decoded record stream (v1-canonical bytes)
//
// The conformance tests assert, on every PR:
//
//  1. byte-exact round-trip — decoding a golden codec file and re-encoding
//     it reproduces the committed bytes bit for bit;
//  2. digest-stable decode — each golden file decodes to the exact record
//     stream recorded in DIGESTS, and synthetic.pdt/synthetic.pdtz decode
//     identically to each other.
//
// Regenerate after an intentional format change with:
//
//	go test ./internal/trace/ingest -run TestGolden -update-golden

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the testdata/golden corpus")

const goldenDir = "testdata/golden"

// goldenApp pins the synthetic member of the corpus.
const (
	goldenAppName = "Server-oltp-primary"
	goldenInstrs  = 50_000
)

// champSimGolden builds the hand-written ChampSim fixture: a deterministic
// instruction stream exercising every branch kind, taken and not-taken
// conditionals (memoized and fallthrough), calls/returns, and multi-record
// basic blocks.
func champSimGolden() []byte {
	const regSP, regFlags, regIP = 6, 25, 26
	var out []byte
	emit := func(ip uint64, isBranch, taken bool, dst, src []byte) {
		b := champSimRecord(ip, isBranch, taken, dst, src)
		out = append(out, b...)
	}
	plain := func(ip uint64) { emit(ip, false, false, []byte{1}, []byte{2}) }
	cond := func(ip uint64, taken bool) {
		emit(ip, true, taken, []byte{regIP}, []byte{regFlags, regIP})
	}
	call := func(ip uint64) {
		emit(ip, true, true, []byte{regIP, regSP}, []byte{regSP, regIP})
	}
	icall := func(ip uint64) {
		emit(ip, true, true, []byte{regIP, regSP}, []byte{regSP, 3})
	}
	ret := func(ip uint64) { emit(ip, true, true, []byte{regIP, regSP}, []byte{regSP}) }
	jmp := func(ip uint64) { emit(ip, true, true, []byte{regIP}, []byte{regIP}) }
	ijmp := func(ip uint64) { emit(ip, true, true, []byte{regIP}, []byte{3}) }

	// A loop body called from two sites through a function, with an
	// indirect dispatch and a switch-style indirect jump.
	for iter := 0; iter < 50; iter++ {
		base := uint64(0x400000 + iter*0x40)
		plain(base)
		plain(base + 4)
		cond(base+8, iter%3 != 0) // not-taken every third iteration
		if iter%3 != 0 {
			plain(0x500000) // taken target: helper block
			call(0x500004)  // direct call
			plain(0x600000) // callee
			ret(0x600004)
			plain(0x500008) // return site
			icall(0x50000c) // indirect call
			plain(0x610000)
			ret(0x610004)
			jmp(0x500010) // jump back into the loop spine
		} else {
			plain(base + 12) // fallthrough path
			ijmp(base + 16)  // switch dispatch
		}
		plain(base + 32)
	}
	return out
}

// perfGolden is the hand-written perf script fixture: default perf column
// layout, comments, an empty sample, kernel-entry entries to skip, an
// untyped entry, and multi-entry stacks in newest-first order.
const perfGolden = `# ========
# captured on    : Thu Aug  6 10:15:22 2026
# event : name = branches:u, freq = 4000
# ========
  app  4711/4711  1023.001122:     400000 branches:u:  0x401248/0x401300/P/-/-/2/CALL 0x401230/0x401240/P/-/-/5/COND
  app  4711/4711  1023.001130:     400000 branches:u:
  app  4711/4711  1023.001150:     400000 branches:u:  0x401310/0x401200/P/-/-/1/RET 0x401304/0x401310/M/-/-/3/COND 0xffffffff81000010/0x401304/P/-/-/9/SYSRET
  app  4711/4711  1023.001160:     400000 branches:u:  0x401260/0x401280/P/-/-/4 0x401250/0x40125c/P/-/-/2/IND_CALL
  app  4711/4711  1023.001170:     400000 branches:u:  0x401290/0x4011f0/P/-/-/7/IND_JMP 0x401284/0x401290/P/-/-/1/UNCOND
`

// digest canonicalizes a record stream (v1 encoding, fixed name) and hashes
// it, so the digest is independent of the container the records came from.
func digest(t *testing.T, s trace.Source) string {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, "digest", s.Open()); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
}

func goldenPath(file string) string { return filepath.Join(goldenDir, file) }

func readGolden(t *testing.T, file string) []byte {
	t.Helper()
	data, err := os.ReadFile(goldenPath(file))
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	return data
}

// TestGoldenUpdate regenerates the corpus when -update-golden is set; it is
// a no-op (and passes) otherwise.
func TestGoldenUpdate(t *testing.T) {
	if !*updateGolden {
		t.Skip("run with -update-golden to regenerate the corpus")
	}
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cfg, ok := workload.CatalogByName(goldenAppName)
	if !ok {
		t.Fatalf("no catalog app %q", goldenAppName)
	}
	_, m, err := workload.Build(cfg, goldenInstrs)
	if err != nil {
		t.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := trace.Write(&v1, m.TraceName, m.Open()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WritePdtz(&v2, m.TraceName, m.Open()); err != nil {
		t.Fatal(err)
	}
	var cs bytes.Buffer
	zw := gzip.NewWriter(&cs)
	if _, err := zw.Write(champSimGolden()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{
		"synthetic.pdt":     v1.Bytes(),
		"synthetic.pdtz":    v2.Bytes(),
		"champsim.trace.gz": cs.Bytes(),
		"perf.txt":          []byte(perfGolden),
	}
	for name, data := range files {
		if err := os.WriteFile(goldenPath(name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Digests of the decoded record streams, via the ingest path itself.
	var names []string
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var dig bytes.Buffer
	for _, name := range names {
		o, err := Open(goldenPath(name), Auto)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(&dig, "%s  %s\n", digest(t, o), name)
		o.Close()
	}
	if err := os.WriteFile(goldenPath("DIGESTS"), dig.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %d golden files + DIGESTS", len(files))
}

// TestGoldenRoundTrip is conformance gate 1: decode → re-encode of each
// native-codec golden file must reproduce the committed bytes exactly.
func TestGoldenRoundTrip(t *testing.T) {
	cases := []struct {
		file   string
		encode func(s trace.Source) ([]byte, error)
	}{
		{"synthetic.pdt", func(s trace.Source) ([]byte, error) {
			var buf bytes.Buffer
			err := trace.Write(&buf, s.Name(), s.Open())
			return buf.Bytes(), err
		}},
		{"synthetic.pdtz", func(s trace.Source) ([]byte, error) {
			var buf bytes.Buffer
			err := trace.WritePdtz(&buf, s.Name(), s.Open())
			return buf.Bytes(), err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			want := readGolden(t, tc.file)
			o, err := Open(goldenPath(tc.file), Auto)
			if err != nil {
				t.Fatal(err)
			}
			defer o.Close()
			got, err := tc.encode(o)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("re-encode differs from committed bytes: got %d bytes, want %d (format drift? regenerate with -update-golden only if intentional)",
					len(got), len(want))
			}
		})
	}
}

// TestGoldenDigests is conformance gate 2: every golden file must decode to
// the exact record stream committed in DIGESTS, and the v1/v2 encodings of
// the synthetic trace must decode identically.
func TestGoldenDigests(t *testing.T) {
	want := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(readGolden(t, "DIGESTS")))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 {
			want[fields[1]] = fields[0]
		}
	}
	if len(want) == 0 {
		t.Fatal("DIGESTS is empty")
	}
	var v1src, v2src trace.Source
	for name, wantDigest := range want {
		o, err := Open(goldenPath(name), Auto)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer o.Close()
		if got := digest(t, o); got != wantDigest {
			t.Errorf("%s: decode digest %s, want %s", name, got, wantDigest)
		}
		switch name {
		case "synthetic.pdt":
			v1src = o
		case "synthetic.pdtz":
			v2src = o
		}
	}
	if v1src == nil || v2src == nil {
		t.Fatal("corpus is missing the synthetic v1/v2 pair")
	}
	m1, err := trace.Collect("x", v1src.Open())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := trace.Collect("x", v2src.Open())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.Records, m2.Records) {
		t.Error("v1 and v2 encodings of the same trace decode differently")
	}
}

// TestGoldenChampSimKinds sanity-checks that the ChampSim fixture really
// exercises the full taxonomy (guards against a regenerated fixture
// silently losing coverage).
func TestGoldenChampSimKinds(t *testing.T) {
	o, err := Open(goldenPath("champsim.trace.gz"), Auto)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	m, err := trace.Collect("x", o.Open())
	if err != nil {
		t.Fatal(err)
	}
	var seen [6]int
	notTaken := 0
	for _, b := range m.Records {
		seen[b.Kind]++
		if !b.Taken {
			notTaken++
		}
	}
	for k, n := range seen {
		if n == 0 {
			t.Errorf("fixture has no records of kind %d", k)
		}
	}
	if notTaken == 0 {
		t.Error("fixture has no not-taken branches")
	}
}

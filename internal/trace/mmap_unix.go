//go:build unix

package trace

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the mapping plus an unmap
// function. Empty files return a nil slice and nil unmap (nothing to
// release). Mapping a trace instead of reading it means opening a
// paper-scale file is O(1) and decoding streams pages in on demand; several
// BlockReaders can consume one shared mapping with no copies and no locks.
func mmapFile(path string) (data []byte, unmap func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() // the mapping outlives the descriptor

	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("file too large to map (%d bytes)", size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems (and special files) refuse mmap; fall back to a
		// plain read so the caller still gets the bytes.
		if _, serr := f.Seek(0, io.SeekStart); serr != nil {
			return nil, nil, serr
		}
		buf, rerr := io.ReadAll(f)
		if rerr != nil {
			return nil, nil, fmt.Errorf("mmap failed (%v) and read fallback failed: %w", err, rerr)
		}
		return buf, nil, nil
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

package pdede

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/rng"
)

// Property: under arbitrary update/lookup interleavings, PDede never
// panics, and any delta-served prediction lies in the probed PC's page.
func TestRandomStreamInvariants(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), MultiTargetConfig(), MultiEntryConfig()} {
		p := mustNew(t, cfg)
		f := func(seed uint64, steps uint16) bool {
			r := rng.New(seed)
			for i := 0; i < int(steps)%500+50; i++ {
				pc := addr.Build(addr.RegionID(uint64(r.Intn(8))), addr.PageNum(uint64(r.Intn(64))), addr.PageOffset(uint64(r.Intn(1024))*4))
				if r.Bool(0.5) {
					var target addr.VA
					if r.Bool(0.6) {
						target = pc.WithOffset(addr.PageOffset(uint64(r.Intn(1024)) * 4))
					} else {
						target = addr.Build(addr.RegionID(uint64(r.Intn(8))), addr.PageNum(uint64(r.Intn(64))), addr.PageOffset(uint64(r.Intn(1024))*4))
					}
					kind := isa.UncondDirect
					if r.Bool(0.3) {
						kind = isa.IndirectJump
					}
					p.Update(isa.Branch{PC: pc, Target: target, BlockLen: 4, Kind: kind, Taken: true}, btb.Lookup{})
				} else {
					l := p.Lookup(pc)
					if l.Hit && l.ExtraLatency == 0 && !cfg.ExtraCycleAlways {
						// Single-cycle hits are delta (or NT-register) served:
						// their targets must share the PC's page.
						if !l.Target.SamePage(pc) {
							return false
						}
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%s: %v", cfg.Variant, err)
		}
	}
}

// Property: storage accounting is monotonic in BTBM capacity.
func TestStorageMonotonic(t *testing.T) {
	prev := uint64(0)
	for _, sets := range []int{64, 128, 256, 512, 1024} {
		cfg := DefaultConfig()
		cfg.Sets = sets
		p := mustNew(t, cfg)
		if p.StorageBits() <= prev {
			t.Fatalf("storage not monotonic at %d sets", sets)
		}
		prev = p.StorageBits()
	}
}

// Property: after training a set of same-page branches that fits trivially,
// every one of them predicts correctly (no false sharing between delta
// entries).
func TestDeltaEntriesIndependent(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	type pair struct{ pc, tgt addr.VA }
	var pairs []pair
	r := rng.New(99)
	for i := 0; i < 300; i++ {
		pc := addr.Build(3, addr.PageNum(uint64(i)), addr.PageOffset(uint64(r.Intn(512))*4))
		tgt := pc.WithOffset(addr.PageOffset(uint64(r.Intn(1024)) * 4))
		pairs = append(pairs, pair{pc, tgt})
		p.Update(taken(pc, tgt), btb.Lookup{})
	}
	for _, pr := range pairs {
		l := p.Lookup(pr.pc)
		if !l.Hit || l.Target != pr.tgt {
			t.Fatalf("pc %v lost its delta target: %+v", pr.pc, l)
		}
	}
}

// Property: dedup means the number of live page entries never exceeds the
// number of distinct pages trained.
func TestPageTableNeverOverAllocates(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	distinct := map[addr.PageNum]bool{}
	r := rng.New(7)
	for i := 0; i < 2000; i++ {
		pc := addr.Build(1, addr.PageNum(uint64(i%700)), 128)
		tgt := addr.Build(2, addr.PageNum(uint64(r.Intn(40))), 64) // ≤40 distinct pages
		distinct[tgt.Page()] = true
		p.Update(taken(pc, tgt), btb.Lookup{})
	}
	live := 0
	for i := 0; i < p.pages.Entries(); i++ {
		if _, ok := p.pages.Get(i); ok {
			live++
		}
	}
	if live > len(distinct) {
		t.Errorf("live page entries %d exceed distinct pages %d", live, len(distinct))
	}
}

// The §4.4.2 anecdote: stale pointers are rare in steady state. Train a
// stable working set and count wrong predictions caused by table churn.
func TestStaleRateSmallInSteadyState(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	r := rng.New(11)
	var lookups, wrong int
	type site struct{ pc, tgt addr.VA }
	// Paper-shaped population: unique target pages ≈ 5% of branches
	// (Fig 7), comfortably inside the 1K-entry Page-BTB.
	sites := make([]site, 3000)
	for i := range sites {
		pc := addr.Build(addr.RegionID(uint64(1+i%3)), addr.PageNum(uint64(i/4)), addr.PageOffset(uint64(i%4)*1024))
		tgt := addr.Build(addr.RegionID(uint64(1+r.Intn(3))), addr.PageNum(uint64(r.Intn(50))), addr.PageOffset(uint64(r.Intn(64))*64))
		sites[i] = site{pc, tgt}
	}
	for step := 0; step < 60000; step++ {
		s := sites[r.Intn(len(sites))]
		l := p.Lookup(s.pc)
		if step > 30000 {
			lookups++
			if l.Hit && l.Target != s.tgt {
				wrong++
			}
		}
		p.Update(taken(s.pc, s.tgt), btb.Lookup{})
	}
	if rate := float64(wrong) / float64(lookups); rate > 0.02 {
		t.Errorf("wrong-target rate %v in steady state (paper: 0.06%% stale events)", rate)
	}
}

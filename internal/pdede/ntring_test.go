package pdede

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/btb"
)

// A deeper Last-register ring plants NT offsets into more predecessors: with
// depth 2, the branch two steps back also learns the current offset.
func TestNTRingDepthTwo(t *testing.T) {
	cfg := MultiTargetConfig()
	cfg.NTLastRegisters = 2
	p := mustNew(t, cfg)

	pcA := addr.Build(5, 9, 0x100)
	pcB := addr.Build(5, 9, 0x180)
	pcC := addr.Build(5, 9, 0x240)
	tgt := func(pc addr.VA, off uint64) addr.VA { return pc.WithOffset(addr.PageOffset(off)) }

	// Train A, B, C in sequence (all same-page).
	p.Update(taken(pcA, tgt(pcA, 0x300)), btb.Lookup{})
	p.Update(taken(pcB, tgt(pcB, 0x400)), btb.Lookup{})
	p.Update(taken(pcC, tgt(pcC, 0x500)), btb.Lookup{})

	// With depth 2, C's offset was planted into BOTH A and B. A hit on A
	// must arm the register with C's offset (the latest plant wins).
	if l := p.Lookup(pcA); !l.Hit {
		t.Fatal("A missing")
	}
	miss := addr.Build(5, 9, 0x800)
	l := p.Lookup(miss)
	if !l.Hit || l.Target != miss.WithOffset(0x500) {
		t.Errorf("depth-2 ring did not serve C's offset via A: %+v", l)
	}

	// Depth 1 plants only into the immediate predecessor: a hit on A must
	// NOT arm the register with anything (A only ever preceded B... wait —
	// with depth 1, after training C the only planted entry is B).
	p1 := mustNew(t, MultiTargetConfig())
	p1.Update(taken(pcA, tgt(pcA, 0x300)), btb.Lookup{})
	p1.Update(taken(pcB, tgt(pcB, 0x400)), btb.Lookup{})
	p1.Update(taken(pcC, tgt(pcC, 0x500)), btb.Lookup{})
	p1.Lookup(pcA) // A carries B's offset (planted when B trained)
	l = p1.Lookup(miss)
	if !l.Hit || l.Target != miss.WithOffset(0x400) {
		t.Errorf("depth-1 A should carry B's offset: %+v", l)
	}
}

func TestNTRingBrokenByDifferentPage(t *testing.T) {
	cfg := MultiTargetConfig()
	cfg.NTLastRegisters = 2
	p := mustNew(t, cfg)
	pcA := addr.Build(5, 9, 0x100)
	p.Update(taken(pcA, pcA.WithOffset(0x300)), btb.Lookup{})
	// Different-page branch clears the ring.
	p.Update(taken(addr.Build(5, 10, 0x40), addr.Build(7, 3, 0x20)), btb.Lookup{})
	// The next same-page branch must not plant into A.
	pcB := addr.Build(5, 9, 0x180)
	p.Update(taken(pcB, pcB.WithOffset(0x400)), btb.Lookup{})
	p.Lookup(pcA)
	if l := p.Lookup(addr.Build(5, 9, 0x900)); l.Hit {
		t.Errorf("NT planted across a different-page break: %+v", l)
	}
}

func TestNTConfigValidation(t *testing.T) {
	cfg := MultiTargetConfig()
	cfg.NTLastRegisters = 9
	if cfg.Validate() == nil {
		t.Error("ring depth 9 accepted")
	}
}

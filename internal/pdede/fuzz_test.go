package pdede

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/btb"
)

// FuzzDelta pins the delta encode/decode path for arbitrary addresses: a
// fresh PDede trained with one taken branch must serve back the exact
// architectural target — same-page targets through the 12-bit delta field,
// cross-page ones through the Page/Region pointer reconstruction — and pass
// a full audit afterwards. On an empty table there is no aliasing, no
// eviction and no dangling pointer, so any target mismatch is an
// encode/decode bug, not a capacity effect.
func FuzzDelta(f *testing.F) {
	f.Add(uint64(0x1ffc7bb4003c9e4), uint64(0x9e8), true, uint8(0))
	f.Add(uint64(0x1ffc7bb4003c9e4), uint64(0x123456789), false, uint8(1))
	f.Add(uint64(0), uint64(0), true, uint8(2))
	f.Add(^uint64(0), ^uint64(0), false, uint8(0))
	f.Fuzz(func(t *testing.T, pcRaw, tgtRaw uint64, samePage bool, variant uint8) {
		var cfg Config
		switch variant % 3 {
		case 0:
			cfg = DefaultConfig()
		case 1:
			cfg = MultiTargetConfig()
		default:
			cfg = MultiEntryConfig()
		}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pc := addr.New(pcRaw)
		var tgt addr.VA
		if samePage {
			tgt = pc.WithOffset(addr.PageOffset(tgtRaw))
		} else {
			tgt = addr.New(tgtRaw)
		}
		p.Update(taken(pc, tgt), btb.Lookup{})
		l := p.Lookup(pc)
		if !l.Hit {
			t.Fatalf("fresh table missed its only trained branch pc=%v", pc)
		}
		if l.Target != tgt {
			t.Fatalf("pc=%v target=%v decoded as %v", pc, tgt, l.Target)
		}
		if pc.SamePage(tgt) && l.ExtraLatency != 0 {
			t.Fatalf("same-page target %v took the multi-cycle pointer path", tgt)
		}
		if err := p.Audit(); err != nil {
			t.Fatalf("audit after one update: %v", err)
		}
	})
}

package pdede

import (
	"testing"

	"repro/internal/addr"
)

// trainMixed drives n branches through the design: even branches are
// same-page (delta path), odd ones cross pages (pointer path).
func trainMixed(t *testing.T, cfg Config, n int) *PDede {
	t.Helper()
	p := mustNew(t, cfg)
	for i := 0; i < n; i++ {
		pc := addr.Build(3, addr.PageNum(uint64(i/256)), addr.PageOffset(uint64((i%256)*16)))
		var tgt addr.VA
		if i%2 == 0 {
			tgt = pc.WithOffset(addr.PageOffset(uint64((i * 48) & 0xfff)))
		} else {
			tgt = addr.Build(7, addr.PageNum(uint64(i/64)), addr.PageOffset(uint64((i%64)*64)))
		}
		p.Update(taken(pc, tgt), p.Lookup(pc))
	}
	return p
}

func TestAuditCleanAfterTraining(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), MultiTargetConfig(), MultiEntryConfig()} {
		p := trainMixed(t, cfg, 8000)
		if err := p.Audit(); err != nil {
			t.Errorf("%s: audit of a healthy design failed: %v", cfg.Variant, err)
		}
	}
}

func TestAuditCatchesOversizedOffset(t *testing.T) {
	p := trainMixed(t, DefaultConfig(), 1000)
	for i := range p.entries {
		if p.entries[i].valid {
			p.entries[i].offset = 1 << addr.OffsetBits
			break
		}
	}
	if err := p.Audit(); err == nil {
		t.Fatal("audit accepted an offset wider than the delta field")
	}
}

func TestAuditCatchesDanglingPartitionPointer(t *testing.T) {
	p := trainMixed(t, DefaultConfig(), 1000)
	corrupted := false
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && !e.delta {
			e.pagePtr = int32(p.pages.Entries())
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no pointer-path entry to corrupt; enlarge the training run")
	}
	if err := p.Audit(); err == nil {
		t.Fatal("audit accepted an out-of-range page pointer")
	}
}

func TestAuditCatchesPointerEntryInNarrowWay(t *testing.T) {
	p := trainMixed(t, MultiEntryConfig(), 4000)
	corrupted := false
	for s := 0; s < p.cfg.Sets && !corrupted; s++ {
		base := s * p.cfg.Ways
		for w := p.halfWays; w < p.cfg.Ways; w++ {
			e := &p.entries[base+w]
			if e.valid && e.delta {
				e.delta = false // narrow ways have no pointer fields to back this
				corrupted = true
				break
			}
		}
	}
	if !corrupted {
		t.Fatal("no narrow-way delta entry to corrupt; enlarge the training run")
	}
	if err := p.Audit(); err == nil {
		t.Fatal("audit accepted a pointer-path entry in a narrow way")
	}
}

func TestAuditCatchesDuplicateTag(t *testing.T) {
	p := trainMixed(t, DefaultConfig(), 8000)
	corrupted := false
outer:
	for s := 0; s < p.cfg.Sets; s++ {
		base := s * p.cfg.Ways
		first := -1
		for w := 0; w < p.cfg.Ways; w++ {
			if !p.entries[base+w].valid {
				continue
			}
			if first < 0 {
				first = base + w
				continue
			}
			p.entries[base+w].tag = p.entries[first].tag
			corrupted = true
			break outer
		}
	}
	if !corrupted {
		t.Fatal("no set with two valid entries; enlarge the training run")
	}
	if err := p.Audit(); err == nil {
		t.Fatal("audit accepted a duplicated tag")
	}
}

func TestAuditCatchesNTStateOutsideMultiTarget(t *testing.T) {
	p := trainMixed(t, DefaultConfig(), 1000)
	corrupted := false
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.delta {
			e.ntValid = true
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no delta entry to corrupt; enlarge the training run")
	}
	if err := p.Audit(); err == nil {
		t.Fatal("audit accepted NT state in the Default variant")
	}
}

func TestAuditCatchesDeltaWhenDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableDelta = true
	p := trainMixed(t, cfg, 1000)
	if err := p.Audit(); err != nil {
		t.Fatalf("pre-corruption audit failed: %v", err)
	}
	for i := range p.entries {
		if p.entries[i].valid {
			p.entries[i].delta = true
			break
		}
	}
	if err := p.Audit(); err == nil {
		t.Fatal("audit accepted a delta entry with delta encoding disabled")
	}
}

// Package pdede implements the paper's contribution: the Partitioned,
// Deduplicated, Delta branch target buffer (§4).
//
// Structure:
//
//	BTB-Monitor (BTBM) — indexed with the hashed branch PC, carries the
//	    12-bit tag and all per-branch metadata, stores the 12-bit target
//	    page offset directly, plus pointers into the Page-BTB and
//	    Region-BTB for different-page branches.
//	Page-BTB   — small deduplicated table of 18-bit page components,
//	    content-indexed, no tags (the BTBM pointer locates entries).
//	Region-BTB — tiny (4-entry) deduplicated table of 27-bit region
//	    components.
//
// Delta encoding: when a branch's target lies in its own page (delta bit
// set) the target is PC's page ‖ stored offset — no Page/Region access, no
// extra cycle. Different-page branches pay one extra lookup cycle for the
// sequential BTBM → Page/Region read (§5.4).
//
// Variants (§4.3.1):
//
//	MultiTarget — reuses the idle pointer fields of a same-page entry to
//	    hold the target offset of the next taken same-page branch, served
//	    from the Next Target Offset register when that branch misses.
//	MultiEntry  — half the ways of each set are narrow (no pointer fields,
//	    same-page branches only), doubling tracked PCs at iso-storage.
package pdede

import (
	"fmt"
	"math/bits"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
)

// Variant selects the §4.3.1 design.
type Variant uint8

const (
	// Default is PDede with partitioning, dedup and delta encoding.
	Default Variant = iota
	// MultiTarget packs a second same-page target into idle pointer fields.
	MultiTarget
	// MultiEntry splits each set into full and narrow ways.
	MultiEntry
)

func (v Variant) String() string {
	switch v {
	case Default:
		return "pdede"
	case MultiTarget:
		return "pdede-mt"
	case MultiEntry:
		return "pdede-me"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Config sizes a PDede BTB.
type Config struct {
	// Sets and Ways size the BTBM (Sets must be a power of two). For
	// MultiEntry, Ways is the total and the upper half are narrow.
	Sets int
	Ways int
	// PageEntries/PageWays size the Page-BTB (default 1024 × 4-way).
	PageEntries int
	PageWays    int
	// RegionEntries sizes the fully-associative Region-BTB (default 4).
	RegionEntries int
	// Variant selects Default, MultiTarget or MultiEntry.
	Variant Variant
	// DisableDelta turns off delta encoding (the partitioning-only
	// ablation of Figure 11a): every branch uses the pointer path.
	DisableDelta bool
	// ExtraCycleAlways charges the extra lookup cycle on every hit (§5.4
	// sensitivity: a BTB that always takes two cycles).
	ExtraCycleAlways bool
	// StoreReturns also allocates return instructions (§5.7).
	StoreReturns bool
	// NTLastRegisters is the depth of the Last BTBM set/way register ring
	// used by MultiTarget allocation (default 1, the paper's design; the
	// paper's future-work section suggests multiple registers, which the
	// ext-ntdepth ablation explores: a same-page branch's offset is planted
	// into every ringed predecessor whose pointer fields are idle).
	NTLastRegisters int
}

// DefaultConfig is the iso-storage PDede-Default of Table 2: a 6144-entry
// BTBM (512×12) + 1K-entry Page-BTB + 4-entry Region-BTB ≈ 34 KiB versus
// the 37.5 KiB baseline.
func DefaultConfig() Config {
	return Config{
		Sets: 512, Ways: 12,
		PageEntries: 1024, PageWays: 4,
		RegionEntries: 4,
		Variant:       Default,
	}
}

// MultiTargetConfig is PDede-Multi Target at iso-storage.
func MultiTargetConfig() Config {
	c := DefaultConfig()
	c.Variant = MultiTarget
	c.NTLastRegisters = 1
	return c
}

// MultiEntryConfig is PDede-Multi Entry size: 8192 BTBM entries (512×16,
// half narrow) tracking twice the baseline's PCs at iso-storage.
func MultiEntryConfig() Config {
	c := DefaultConfig()
	c.Ways = 16
	c.Variant = MultiEntry
	return c
}

// ScaledFromBaseline returns the iso-storage PDede configuration matching a
// baseline BTB of the given entry count (Figure 12b/12c sweeps). The BTBM
// gets 1.5× the baseline entries (2× for MultiEntry) — the storage freed by
// partitioning and dedup — and the Page-BTB scales at 1/4 of the baseline
// entries, capped below by the default sizing.
func ScaledFromBaseline(baselineEntries int, v Variant) Config {
	c := DefaultConfig()
	c.Variant = v
	c.Sets = nextPow2(baselineEntries / 8)
	if c.Sets < 16 {
		c.Sets = 16
	}
	if v == MultiEntry {
		c.Ways = 16
	}
	pe := nextPow2(baselineEntries / 4)
	if pe < 256 {
		pe = 256
	}
	c.PageEntries = pe
	return c
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

func newScanTags(n int) []addr.Tag {
	st := make([]addr.Tag, n)
	for i := range st {
		st[i] = scanInvalid
	}
	return st
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Sets <= 0 || c.Sets&(c.Sets-1) != 0:
		return fmt.Errorf("pdede: Sets %d not a power of two", c.Sets)
	case c.Ways <= 0:
		return fmt.Errorf("pdede: Ways %d", c.Ways)
	case c.Variant == MultiEntry && c.Ways%2 != 0:
		return fmt.Errorf("pdede: MultiEntry needs even Ways, got %d", c.Ways)
	case c.Variant == MultiEntry && c.DisableDelta:
		return fmt.Errorf("pdede: MultiEntry requires delta encoding")
	case c.Variant == MultiTarget && c.DisableDelta:
		return fmt.Errorf("pdede: MultiTarget requires delta encoding")
	case c.PageEntries <= 0 || c.PageWays <= 0:
		return fmt.Errorf("pdede: page table %d/%d", c.PageEntries, c.PageWays)
	case c.RegionEntries <= 0:
		return fmt.Errorf("pdede: RegionEntries %d", c.RegionEntries)
	case c.NTLastRegisters < 0 || c.NTLastRegisters > 8:
		return fmt.Errorf("pdede: NTLastRegisters %d outside [0,8]", c.NTLastRegisters)
	}
	return nil
}

// PDede is the full design. It implements btb.TargetPredictor.
type PDede struct {
	cfg       Config
	name      string
	indexBits uint
	halfWays  int // first narrow way index (Ways for non-MultiEntry)

	entries []entry
	// scanTags mirrors entries' (valid, tag) pairs as one flat word per way
	// — the tag for live entries, scanInvalid for free ones — so the hot way
	// scans touch 8 bytes per way instead of a 40-byte struct. Kept in sync
	// at every entry (in)validation; Audit cross-checks the mirror.
	scanTags []addr.Tag
	repl     []*btb.SRRIP

	pages   *btb.DedupTable
	regions *btb.DedupTable

	// Next Target Offset register (MultiTarget, §4.3.1): armed by a hit on
	// an entry with the NT bit, serves exactly the next lookup if it
	// misses. Scratch by definition: the register is a one-lookup-deep
	// prediction pipeline latch, re-armed on every Lookup, never part of
	// the committed BTB image (StateDigest ignores it).
	//
	//pdede:scratch
	ntArmed bool
	//pdede:scratch
	ntOffset uint16

	// Last BTBM set/way register ring (MultiTarget allocation path).
	lastRing []int // flat entry indices; -1 = invalid
	lastPos  int

	fullCandidates []int // scratch: way indices allowed for different-page

	// Probe memo: Lookup leaves its decomposed (set, tag) and matched BTBM
	// way for the immediately following Update of the same PC, hoisting the
	// addr decomposition and way scan out of the BTBM probe→train sequence.
	// One-shot: every Update consumes or invalidates it (updates mutate the
	// set). Scratch: a wrong-path lookup clobbering it only costs a
	// re-probe.
	//
	//pdede:scratch
	memoPC addr.VA
	//pdede:scratch
	memoSet addr.SetIndex
	//pdede:scratch
	memoTag addr.Tag
	//pdede:scratch
	memoWay int32 // matched way, -1 on miss
	//pdede:scratch
	memoOK bool

	// Stats accumulates design-internal event counts since Reset.
	// Observability counters, not predictor state: excluded from
	// StateDigest and free for the prediction path to bump.
	//
	//pdede:scratch
	Stats Stats
}

// Stats captures PDede-internal events for analysis and tests.
type Stats struct {
	// StaleRepairs counts in-place pointer re-wirings after a Page/Region
	// entry was reused under a live BTBM entry (§4.4.2's 0.06% event).
	StaleRepairs uint64
	// Retrains counts target changes that went through the confidence path.
	Retrains uint64
	// NTServed counts BTBM misses answered by the Next Target register.
	NTServed uint64
}

// entry is field-ordered widest-first: the Sets×Ways array dominates the
// model's memory, and this layout packs it at 24 bytes per entry instead
// of 32.
type entry struct {
	tag       addr.Tag
	pagePtr   int32
	regionPtr int32
	offset    uint16
	// MultiTarget: the next taken same-page branch's offset (§4.3.1).
	ntOffset uint16
	conf     uint8
	valid    bool
	delta    bool
	ntValid  bool
}

// scanInvalid marks a free way in the scanTags mirror. Real tags are
// btb.TagBits (12) wide, so no live entry can carry it.
const scanInvalid = addr.Tag(^uint64(0))

// New builds a PDede BTB.
func New(cfg Config) (*PDede, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pages, err := btb.NewDedupTable(cfg.PageEntries, cfg.PageWays)
	if err != nil {
		return nil, fmt.Errorf("pdede: page table: %w", err)
	}
	regions, err := btb.NewDedupTable(cfg.RegionEntries, cfg.RegionEntries)
	if err != nil {
		return nil, fmt.Errorf("pdede: region table: %w", err)
	}
	p := &PDede{
		cfg:       cfg,
		name:      cfg.Variant.String(),
		indexBits: uint(bits.TrailingZeros(uint(cfg.Sets))),
		halfWays:  cfg.Ways,
		entries:   make([]entry, cfg.Sets*cfg.Ways),
		scanTags:  newScanTags(cfg.Sets * cfg.Ways),
		repl:      btb.NewSRRIPSlab(cfg.Sets, cfg.Ways, 2),
		pages:     pages,
		regions:   regions,
	}
	if cfg.DisableDelta {
		p.name = "pdede-partition-only"
	}
	if cfg.Variant == MultiEntry {
		p.halfWays = cfg.Ways / 2
	}
	if cfg.Variant == MultiTarget {
		depth := cfg.NTLastRegisters
		if depth == 0 {
			depth = 1
		}
		p.lastRing = make([]int, depth)
		for i := range p.lastRing {
			p.lastRing[i] = -1
		}
	}
	p.fullCandidates = make([]int, p.halfWays)
	for i := range p.fullCandidates {
		p.fullCandidates[i] = i
	}
	return p, nil
}

// Name implements btb.TargetPredictor.
func (p *PDede) Name() string { return p.name }

// Config returns the configuration.
func (p *PDede) Config() Config { return p.cfg }

// narrow reports whether way w holds narrow (same-page-only) entries.
//
//pdede:inline
//pdede:noalloc
func (p *PDede) narrow(w int) bool { return w >= p.halfWays }

// Lookup implements btb.TargetPredictor (§4.4.1).
//
//pdede:hot
//pdede:noalloc
//pdede:nobce
func (p *PDede) Lookup(pc addr.VA) btb.Lookup {
	set, tag := addr.IndexTag(pc, p.indexBits, btb.TagBits)
	p.memoPC, p.memoSet, p.memoTag, p.memoWay, p.memoOK = pc, set, tag, -1, true
	base := int(set) * p.cfg.Ways
	end := base + p.cfg.Ways

	armNext := false
	var armOffset uint16
	result := btb.Lookup{}
	found := false

	// The window guard is unreachable under the sets*ways = len
	// construction invariant; stating it lets the prove pass elide every
	// bounds check in the way scan (tags and ents share the length
	// end-base).
	if base >= 0 && end >= base && end <= len(p.scanTags) && end <= len(p.entries) {
		tags := p.scanTags[base:end]
		ents := p.entries[base:end]
		for w, st := range tags {
			if st != tag {
				continue
			}
			e := &ents[w]
			found = true
			p.memoWay = int32(w)
			if e.delta {
				// Same-page: concatenate the PC's page with the stored offset;
				// no Page/Region access, no extra cycle.
				result = btb.Lookup{Hit: true, Target: pc.WithOffset(addr.PageOffset(e.offset))}
				if e.ntValid {
					armNext, armOffset = true, e.ntOffset
				}
			} else {
				pv, okP := p.pages.Get(int(e.pagePtr))
				rv, okR := p.regions.Get(int(e.regionPtr))
				if okP && okR {
					result = btb.Lookup{
						Hit:          true,
						Target:       addr.Build(addr.RegionID(rv), addr.PageNum(pv), addr.PageOffset(e.offset)),
						ExtraLatency: 1,
					}
				}
			}
			break
		}
	}

	if !found && p.cfg.Variant == MultiTarget && p.ntArmed {
		// BTBM miss served from the Next Target Offset register: the next
		// taken branch after the arming entry shares its page, so the
		// missing PC's own page completes the target.
		result = btb.Lookup{Hit: true, Target: pc.WithOffset(addr.PageOffset(p.ntOffset))}
		p.Stats.NTServed++
	}
	// The register serves exactly the lookup following the arming hit.
	p.ntArmed, p.ntOffset = armNext, armOffset

	if result.Hit && p.cfg.ExtraCycleAlways {
		result.ExtraLatency = 1
	}
	return result
}

// Update implements btb.TargetPredictor (§4.4.2).
//
//pdede:hot
//pdede:noalloc
func (p *PDede) Update(br isa.Branch, prior btb.Lookup) {
	if !br.Taken {
		return
	}
	if br.Kind.IsReturn() && !p.cfg.StoreReturns {
		return
	}
	set, tag, w := p.probe(br.PC)
	base := int(set) * p.cfg.Ways
	repl := p.repl[set]
	samePage := br.PC.SamePage(br.Target) && !p.cfg.DisableDelta

	if w >= 0 {
		e := &p.entries[base+w]
		repl.Touch(w)
		if pred, ok := p.predictFrom(e, br.PC); ok && pred == br.Target {
			if e.conf < 3 {
				e.conf++
			}
			if !e.delta {
				p.pages.Touch(int(e.pagePtr))
				p.regions.Touch(int(e.regionPtr))
			}
			p.noteMultiTarget(br, set, w, samePage)
			return
		}
		// Stale pointer repair: if the stored offset still matches but the
		// Page/Region pointer dereferences to the wrong component (the
		// pointed-at entry was reused by another value, §4.4.2), re-wire the
		// pointers in place. The update already has the full target, so this
		// costs no extra hardware and avoids paying the confidence
		// hysteresis for what is not a target change.
		if !e.delta && !samePage && e.offset == uint16(br.Target.Offset()) {
			pp, rp, ok := p.allocPartition(br.Target)
			if ok {
				p.Stats.StaleRepairs++
				e.pagePtr = int32(pp)
				e.regionPtr = int32(rp)
				p.noteMultiTarget(br, set, w, samePage)
				return
			}
		}
		// Wrong or unreadable target: give confident entries a grace
		// period (indirect branches flip between targets).
		if e.conf > 0 {
			e.conf--
			p.noteMultiTarget(br, set, w, samePage)
			return
		}
		p.Stats.Retrains++
		if samePage {
			e.delta = true
			e.offset = uint16(br.Target.Offset())
			e.ntValid = false
			p.noteMultiTarget(br, set, w, samePage)
			return
		}
		if p.narrow(w) {
			// A narrow way cannot describe a different-page target:
			// invalidate and fall through to a fresh allocation in the
			// full ways.
			e.valid = false
			p.scanTags[base+w] = scanInvalid
			w = -1
		} else {
			pp, rp, ok := p.allocPartition(br.Target)
			if !ok {
				return
			}
			e.delta = false
			e.offset = uint16(br.Target.Offset())
			e.pagePtr = int32(pp)
			e.regionPtr = int32(rp)
			e.ntValid = false
			p.noteMultiTarget(br, set, w, samePage)
			return
		}
	}

	// Allocation path. Different-page branches allocate their Page/Region
	// entries first; only on success is the BTBM entry created (§4.4.2).
	var pp, rp int
	if !samePage {
		var ok bool
		pp, rp, ok = p.allocPartition(br.Target)
		if !ok {
			return
		}
	}
	w = p.victim(set, samePage)
	if w < 0 {
		return
	}
	p.entries[base+w] = entry{
		valid:     true,
		tag:       tag,
		delta:     samePage,
		offset:    uint16(br.Target.Offset()),
		pagePtr:   int32(pp),
		regionPtr: int32(rp),
	}
	p.scanTags[base+w] = tag
	repl.Insert(w)
	p.noteMultiTarget(br, set, w, samePage)
}

// probe resolves pc's (set, tag, matched way), reusing the Lookup memo when
// Update immediately follows Lookup for the same PC and re-deriving
// otherwise. The memo is consumed either way: the caller mutates the set.
//
//pdede:hot
//pdede:noalloc
//pdede:nobce
func (p *PDede) probe(pc addr.VA) (set addr.SetIndex, tag addr.Tag, way int) {
	if p.memoOK && p.memoPC == pc {
		p.memoOK = false
		return p.memoSet, p.memoTag, int(p.memoWay)
	}
	p.memoOK = false
	set, tag = addr.IndexTag(pc, p.indexBits, btb.TagBits)
	way = -1
	base := int(set) * p.cfg.Ways
	end := base + p.cfg.Ways
	// Guarded window as in Lookup: unreachable guard, bounds-check-free scan.
	if base >= 0 && end >= base && end <= len(p.scanTags) {
		for w, st := range p.scanTags[base:end] {
			if st == tag {
				way = w
				break
			}
		}
	}
	return set, tag, way
}

// predictFrom reconstructs the target an entry currently encodes.
//
//pdede:hot
//pdede:noalloc
//pdede:nobce
func (p *PDede) predictFrom(e *entry, pc addr.VA) (addr.VA, bool) {
	if e.delta {
		return pc.WithOffset(addr.PageOffset(e.offset)), true
	}
	pv, okP := p.pages.Get(int(e.pagePtr))
	rv, okR := p.regions.Get(int(e.regionPtr))
	if !okP || !okR {
		return 0, false
	}
	return addr.Build(addr.RegionID(rv), addr.PageNum(pv), addr.PageOffset(e.offset)), true
}

// allocPartition ensures the target's page and region components exist in
// the dedup tables, returning their pointers.
func (p *PDede) allocPartition(target addr.VA) (pagePtr, regionPtr int, ok bool) {
	pp, _ := p.pages.FindOrInsert(uint64(target.Page()))
	rp, _ := p.regions.FindOrInsert(uint64(target.Region()))
	return pp, rp, true
}

// victim picks the way to allocate for a new entry. Same-page branches may
// use any way but prefer narrow ones (keeping full ways free for branches
// that need pointers); different-page branches are restricted to full ways
// (§4.4.2, MultiEntry).
//
//pdede:hot
func (p *PDede) victim(set addr.SetIndex, samePage bool) int {
	base := int(set) * p.cfg.Ways
	repl := p.repl[set]
	if samePage {
		for w := p.cfg.Ways - 1; w >= 0; w-- { // narrow ways sit at the top
			if !p.entries[base+w].valid {
				return w
			}
		}
		return repl.Victim(nil)
	}
	for w := 0; w < p.halfWays; w++ {
		if !p.entries[base+w].valid {
			return w
		}
	}
	return repl.Victim(p.fullCandidates)
}

// noteMultiTarget maintains the Last BTBM set/way register ring and plants
// the next-target offset into ringed same-page predecessors (§4.3.1; ring
// depth > 1 is the paper's future-work extension).
func (p *PDede) noteMultiTarget(br isa.Branch, set addr.SetIndex, way int, samePage bool) {
	if p.cfg.Variant != MultiTarget {
		return
	}
	cur := int(set)*p.cfg.Ways + way
	if samePage {
		off := uint16(br.Target.Offset())
		for _, idx := range p.lastRing {
			if idx < 0 || idx == cur {
				continue
			}
			prev := &p.entries[idx]
			if prev.valid && prev.delta {
				prev.ntValid = true
				prev.ntOffset = off
			}
		}
		p.lastRing[p.lastPos] = cur
		p.lastPos = (p.lastPos + 1) % len(p.lastRing)
		return
	}
	// A different-page branch breaks the same-page chain.
	for i := range p.lastRing {
		p.lastRing[i] = -1
	}
	p.lastPos = 0
}

// FullEntryBits returns the storage of one full BTBM entry: PID(1) +
// tag(12) + SRRIP(2) + conf(2) + delta(1) + offset(12) + page pointer +
// region pointer (+1 next-target bit for MultiTarget).
func (p *PDede) FullEntryBits() uint64 {
	b := uint64(1+btb.TagBits+2+2+1+12) + p.pages.PtrBits() + p.regions.PtrBits()
	if p.cfg.Variant == MultiTarget {
		b++ // NT bit; the next-target offset reuses the pointer fields
	}
	return b
}

// NarrowEntryBits returns the storage of one narrow (same-page-only) entry.
func (p *PDede) NarrowEntryBits() uint64 {
	return uint64(1 + btb.TagBits + 2 + 2 + 1 + 12)
}

// StorageBits implements btb.TargetPredictor.
func (p *PDede) StorageBits() uint64 {
	full := uint64(p.cfg.Sets * p.halfWays)
	narrow := uint64(p.cfg.Sets * (p.cfg.Ways - p.halfWays))
	return full*p.FullEntryBits() + narrow*p.NarrowEntryBits() +
		p.pages.StorageBits(addr.PageBits) +
		p.regions.StorageBits(addr.RegionBits)
}

// Entries returns the BTBM capacity.
func (p *PDede) Entries() int { return p.cfg.Sets * p.cfg.Ways }

// Reset implements btb.TargetPredictor.
func (p *PDede) Reset() {
	p.memoOK = false
	for i := range p.entries {
		p.entries[i] = entry{}
		p.scanTags[i] = scanInvalid
	}
	for _, r := range p.repl {
		r.Reset()
	}
	p.pages.Reset()
	p.regions.Reset()
	p.ntArmed = false
	for i := range p.lastRing {
		p.lastRing[i] = -1
	}
	p.lastPos = 0
	p.Stats = Stats{}
}

// Pages and Regions expose the dedup tables (read-mostly: analysis/tests).
func (p *PDede) Pages() *btb.DedupTable   { return p.pages }
func (p *PDede) Regions() *btb.DedupTable { return p.regions }

package pdede

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
)

func taken(pc, target addr.VA) isa.Branch {
	return isa.Branch{PC: pc, Target: target, BlockLen: 4, Kind: isa.UncondDirect, Taken: true}
}

func mustNew(t *testing.T, cfg Config) *PDede {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 8, PageEntries: 1024, PageWays: 4, RegionEntries: 4},
		{Sets: 500, Ways: 8, PageEntries: 1024, PageWays: 4, RegionEntries: 4},
		{Sets: 512, Ways: 0, PageEntries: 1024, PageWays: 4, RegionEntries: 4},
		{Sets: 512, Ways: 15, Variant: MultiEntry, PageEntries: 1024, PageWays: 4, RegionEntries: 4},
		{Sets: 512, Ways: 16, Variant: MultiEntry, DisableDelta: true, PageEntries: 1024, PageWays: 4, RegionEntries: 4},
		{Sets: 512, Ways: 12, PageEntries: 0, PageWays: 4, RegionEntries: 4},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	for _, c := range []Config{DefaultConfig(), MultiTargetConfig(), MultiEntryConfig()} {
		if err := c.Validate(); err != nil {
			t.Errorf("preset rejected: %v", err)
		}
	}
}

func TestSamePageDeltaPath(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	pc := addr.Build(5, 9, 0x800)
	tgt := addr.Build(5, 9, 0x100) // same page
	p.Update(taken(pc, tgt), btb.Lookup{})
	l := p.Lookup(pc)
	if !l.Hit || l.Target != tgt {
		t.Fatalf("delta lookup = %+v", l)
	}
	if l.ExtraLatency != 0 {
		t.Errorf("same-page lookup charged extra cycle: %d", l.ExtraLatency)
	}
}

func TestDifferentPagePointerPath(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	pc := addr.Build(5, 9, 0x800)
	tgt := addr.Build(7, 33, 0x2a0)
	p.Update(taken(pc, tgt), btb.Lookup{})
	l := p.Lookup(pc)
	if !l.Hit || l.Target != tgt {
		t.Fatalf("pointer lookup = %+v (want target %v)", l, tgt)
	}
	if l.ExtraLatency != 1 {
		t.Errorf("different-page lookup extra = %d, want 1", l.ExtraLatency)
	}
}

func TestDeltaDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableDelta = true
	p := mustNew(t, cfg)
	pc := addr.Build(5, 9, 0x800)
	tgt := addr.Build(5, 9, 0x100)
	p.Update(taken(pc, tgt), btb.Lookup{})
	l := p.Lookup(pc)
	if !l.Hit || l.Target != tgt {
		t.Fatalf("lookup = %+v", l)
	}
	if l.ExtraLatency != 1 {
		t.Errorf("partition-only must always pay the extra cycle, got %d", l.ExtraLatency)
	}
}

func TestExtraCycleAlways(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExtraCycleAlways = true
	p := mustNew(t, cfg)
	pc := addr.Build(5, 9, 0x800)
	p.Update(taken(pc, addr.Build(5, 9, 0x100)), btb.Lookup{})
	if l := p.Lookup(pc); l.ExtraLatency != 1 {
		t.Errorf("ExtraCycleAlways hit extra = %d, want 1", l.ExtraLatency)
	}
}

func TestPageRegionDeduplication(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	// Many branches, all targeting the same page.
	for i := 0; i < 64; i++ {
		pc := addr.Build(5, addr.PageNum(uint64(10+i)), 0x80)
		tgt := addr.Build(7, 33, addr.PageOffset(uint64(i*16)))
		p.Update(taken(pc, tgt), btb.Lookup{})
	}
	// Exactly one page entry and one region entry must be live.
	livePages := 0
	for i := 0; i < p.pages.Entries(); i++ {
		if _, ok := p.pages.Get(i); ok {
			livePages++
		}
	}
	liveRegions := 0
	for i := 0; i < p.regions.Entries(); i++ {
		if _, ok := p.regions.Get(i); ok {
			liveRegions++
		}
	}
	if livePages != 1 || liveRegions != 1 {
		t.Errorf("live pages=%d regions=%d, want 1/1 (dedup)", livePages, liveRegions)
	}
	// And all 64 branches still predict correctly through the shared entry.
	for i := 0; i < 64; i++ {
		pc := addr.Build(5, addr.PageNum(uint64(10+i)), 0x80)
		want := addr.Build(7, 33, addr.PageOffset(uint64(i*16)))
		if l := p.Lookup(pc); !l.Hit || l.Target != want {
			t.Fatalf("branch %d lost its target: %+v", i, l)
		}
	}
}

func TestStalePointerGivesWrongTargetNotCrash(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageEntries = 4
	cfg.PageWays = 4
	p := mustNew(t, cfg)
	pc := addr.Build(5, 9, 0x800)
	tgt := addr.Build(7, 33, 0x2a0)
	p.Update(taken(pc, tgt), btb.Lookup{})
	// Thrash the tiny page table with other pages.
	for i := 0; i < 32; i++ {
		p.Update(taken(addr.Build(6, addr.PageNum(uint64(i)), 0), addr.Build(8, addr.PageNum(uint64(100+i)), 0x10)), btb.Lookup{})
	}
	l := p.Lookup(pc)
	if l.Hit && l.Target == tgt {
		t.Log("entry survived thrash (possible)")
	}
	// Re-training repairs the entry.
	p.Update(taken(pc, tgt), btb.Lookup{})
	p.Update(taken(pc, tgt), btb.Lookup{})
	if l := p.Lookup(pc); !l.Hit || l.Target != tgt {
		t.Errorf("retrain failed: %+v", l)
	}
}

func TestMultiTargetNextTargetRegister(t *testing.T) {
	p := mustNew(t, MultiTargetConfig())
	pcA := addr.Build(5, 9, 0x100)
	tgtA := addr.Build(5, 9, 0x200) // same-page
	pcB := addr.Build(5, 9, 0x240)  // next taken branch after A
	tgtB := addr.Build(5, 9, 0x400) // same-page

	// Train A then B consecutively: B's offset is planted into A's entry.
	p.Update(taken(pcA, tgtA), btb.Lookup{})
	p.Update(taken(pcB, tgtB), btb.Lookup{})

	// A hit on A arms the NT register…
	if l := p.Lookup(pcA); !l.Hit || l.Target != tgtA {
		t.Fatalf("lookup A = %+v", l)
	}
	// …so a miss on a brand-new same-page PC right after is served with
	// B's offset applied to the missing PC's page.
	pcNew := addr.Build(5, 9, 0x300)
	l := p.Lookup(pcNew)
	if !l.Hit {
		t.Fatal("NT register did not serve the following miss")
	}
	if want := pcNew.WithOffset(addr.PageOffset(tgtB.Offset())); l.Target != want {
		t.Errorf("NT target = %v, want %v", l.Target, want)
	}

	// The register only lives for one lookup: a second miss is a miss.
	if l := p.Lookup(pcNew.Add(64)); l.Hit {
		t.Error("NT register served two consecutive misses")
	}
}

func TestMultiTargetRegisterClearedByHit(t *testing.T) {
	p := mustNew(t, MultiTargetConfig())
	pcA := addr.Build(5, 9, 0x100)
	pcB := addr.Build(5, 9, 0x240)
	p.Update(taken(pcA, addr.Build(5, 9, 0x200)), btb.Lookup{})
	p.Update(taken(pcB, addr.Build(5, 9, 0x400)), btb.Lookup{})
	p.Lookup(pcA) // arms
	p.Lookup(pcB) // hit: consumes/clears without using the register
	if l := p.Lookup(addr.Build(5, 9, 0x999)); l.Hit {
		t.Error("register survived an intervening hit")
	}
}

func TestMultiTargetDefaultVariantUnaffected(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	pcA := addr.Build(5, 9, 0x100)
	pcB := addr.Build(5, 9, 0x240)
	p.Update(taken(pcA, addr.Build(5, 9, 0x200)), btb.Lookup{})
	p.Update(taken(pcB, addr.Build(5, 9, 0x400)), btb.Lookup{})
	p.Lookup(pcA)
	if l := p.Lookup(addr.Build(5, 9, 0x300)); l.Hit {
		t.Error("Default variant served a miss from the NT register")
	}
}

func TestMultiEntryNarrowWaysRejectDifferentPage(t *testing.T) {
	cfg := MultiEntryConfig()
	cfg.Sets = 1 // single set: easy occupancy inspection
	cfg.Ways = 8 // 4 full + 4 narrow
	p := mustNew(t, cfg)

	// Fill with different-page branches: only the 4 full ways may hold them.
	for i := 0; i < 16; i++ {
		pc := addr.Build(5, addr.PageNum(uint64(i)), 0x80)
		p.Update(taken(pc, addr.Build(7, addr.PageNum(uint64(100+i)), 0x10)), btb.Lookup{})
	}
	fullLive, narrowLive := 0, 0
	for w := 0; w < 8; w++ {
		if p.entries[w].valid {
			if p.narrow(w) {
				narrowLive++
			} else {
				fullLive++
			}
		}
	}
	if narrowLive != 0 {
		t.Errorf("narrow ways hold %d different-page entries", narrowLive)
	}
	if fullLive != 4 {
		t.Errorf("full ways live = %d, want 4", fullLive)
	}

	// Same-page branches may fill the narrow ways.
	for i := 0; i < 8; i++ {
		pc := addr.Build(6, addr.PageNum(uint64(i)), 0x80)
		p.Update(taken(pc, pc.WithOffset(0x10)), btb.Lookup{})
	}
	narrowLive = 0
	for w := 4; w < 8; w++ {
		if p.entries[w].valid {
			narrowLive++
		}
	}
	if narrowLive != 4 {
		t.Errorf("narrow ways live = %d, want 4", narrowLive)
	}
}

func TestMultiEntryRetrainNarrowToDifferentPage(t *testing.T) {
	cfg := MultiEntryConfig()
	cfg.Sets = 1
	cfg.Ways = 8
	p := mustNew(t, cfg)
	pc := addr.Build(6, 3, 0x80)
	p.Update(taken(pc, pc.WithOffset(0x10)), btb.Lookup{}) // same-page → narrow way
	// Target moves to a different page; entry must migrate to a full way.
	far := addr.Build(9, 77, 0x40)
	p.Update(taken(pc, far), btb.Lookup{}) // conf 0 → retrain
	l := p.Lookup(pc)
	if !l.Hit || l.Target != far {
		t.Fatalf("after migration: %+v", l)
	}
	for w := 4; w < 8; w++ {
		e := &p.entries[w]
		if e.valid && !e.delta {
			t.Error("narrow way holds a pointer entry after retrain")
		}
	}
}

func TestCapacityAdvantageOverBaseline(t *testing.T) {
	// With a working set of same-page branches beyond 4K, PDede-MultiEntry
	// (8K entries) must retain far more than the 4K-entry baseline.
	pd := mustNew(t, MultiEntryConfig())
	base, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	n := 7000
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			pc := addr.Build(3, addr.PageNum(uint64(i/16)), addr.PageOffset(uint64(i%16)*256))
			br := taken(pc, pc.WithOffset(addr.PageOffset(uint64((i%16)*256+64))))
			pd.Update(br, btb.Lookup{})
			base.Update(br, btb.Lookup{})
		}
	}
	pdHits, baseHits := 0, 0
	for i := 0; i < n; i++ {
		pc := addr.Build(3, addr.PageNum(uint64(i/16)), addr.PageOffset(uint64(i%16)*256))
		if pd.Lookup(pc).Hit {
			pdHits++
		}
		if base.Lookup(pc).Hit {
			baseHits++
		}
	}
	if pdHits <= baseHits {
		t.Errorf("PDede hits %d not above baseline hits %d", pdHits, baseHits)
	}
	if float64(pdHits)/float64(n) < 0.9 {
		t.Errorf("PDede retention %.2f too low for 7K same-page set", float64(pdHits)/float64(n))
	}
}

func TestStorageBudgets(t *testing.T) {
	base, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	baseBits := base.StorageBits() // 37.5 KiB

	for _, tc := range []struct {
		cfg Config
	}{
		{DefaultConfig()}, {MultiTargetConfig()}, {MultiEntryConfig()},
	} {
		p := mustNew(t, tc.cfg)
		got := p.StorageBits()
		// "Iso-storage" per the paper means "as close as possible" (§4.4.3);
		// MultiEntry lands ~3% above the 37.5 KiB baseline, the others below.
		if float64(got) > float64(baseBits)*1.06 {
			t.Errorf("%s storage %d bits exceeds baseline %d by more than 6%%",
				p.Name(), got, baseBits)
		}
		if got < baseBits/2 {
			t.Errorf("%s storage %d bits suspiciously small vs baseline %d",
				p.Name(), got, baseBits)
		}
	}
	// MultiEntry must track 2× the baseline's PCs.
	me := mustNew(t, MultiEntryConfig())
	if me.Entries() != 8192 {
		t.Errorf("MultiEntry entries = %d, want 8192", me.Entries())
	}
}

func TestScaledFromBaseline(t *testing.T) {
	for _, entries := range []int{1024, 2048, 4096, 8192, 16384} {
		for _, v := range []Variant{Default, MultiTarget, MultiEntry} {
			cfg := ScaledFromBaseline(entries, v)
			if err := cfg.Validate(); err != nil {
				t.Errorf("scaled(%d,%v): %v", entries, v, err)
				continue
			}
			p := mustNew(t, cfg)
			base, _ := btb.NewBaseline(btb.BaselineConfig{Entries: entries})
			ratio := float64(p.StorageBits()) / float64(base.StorageBits())
			if ratio > 1.06 {
				t.Errorf("scaled(%d,%v) storage ratio %.3f exceeds baseline", entries, v, ratio)
			}
			wantEntries := entries * 3 / 2
			if v == MultiEntry {
				wantEntries = entries * 2
			}
			if p.Entries() != wantEntries {
				t.Errorf("scaled(%d,%v) entries = %d, want %d", entries, v, p.Entries(), wantEntries)
			}
		}
	}
}

func TestReset(t *testing.T) {
	p := mustNew(t, MultiTargetConfig())
	pc := addr.Build(5, 9, 0x100)
	p.Update(taken(pc, addr.Build(7, 2, 0x10)), btb.Lookup{})
	p.Reset()
	if p.Lookup(pc).Hit {
		t.Error("hit after Reset")
	}
}

func TestConfidenceProtectsDominantIndirectTarget(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	pc := addr.Build(5, 9, 0x100)
	hot := addr.Build(7, 2, 0x10)
	cold := addr.Build(8, 3, 0x20)
	for i := 0; i < 3; i++ {
		p.Update(taken(pc, hot), btb.Lookup{})
	}
	p.Update(taken(pc, cold), btb.Lookup{})
	if l := p.Lookup(pc); l.Target != hot {
		t.Error("one cold observation displaced hot indirect target")
	}
}

func TestReturnsPolicy(t *testing.T) {
	ret := isa.Branch{PC: addr.Build(1, 2, 0x40), Target: addr.Build(1, 3, 0), BlockLen: 2, Kind: isa.Return, Taken: true}
	p := mustNew(t, DefaultConfig())
	p.Update(ret, btb.Lookup{})
	if p.Lookup(ret.PC).Hit {
		t.Error("return allocated without StoreReturns")
	}
	cfg := DefaultConfig()
	cfg.StoreReturns = true
	p2 := mustNew(t, cfg)
	p2.Update(ret, btb.Lookup{})
	if !p2.Lookup(ret.PC).Hit {
		t.Error("StoreReturns did not allocate return")
	}
}

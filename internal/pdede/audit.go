package pdede

import (
	"fmt"
	"hash/fnv"

	"repro/internal/addr"
	"repro/internal/btb"
)

// Audit implements btb.Auditable: a deep check of every BTBM entry and both
// dedup tables. The invariants are exactly the bookkeeping that, when
// broken, corrupts MPKI silently instead of crashing:
//
//   - per-set tag uniqueness (two entries answering one PC);
//   - every different-page entry's Page/Region pointer dereferences (slots
//     never invalidate outside Reset, so an unreadable pointer is a wiring
//     bug, not the paper's benign value-reuse dangling);
//   - stored offsets fit the 12-bit field, so a delta entry's reconstructed
//     target pc.WithOffset(offset) always lands inside the PC's own page;
//   - narrow (same-page-only) ways never hold pointer-path entries, and
//     delta state only appears where the configuration allows it;
//   - MultiTarget ring/register state stays in range;
//   - the Page/Region tables keep their content-addressing invariants.
func (p *PDede) Audit() error {
	for s := 0; s < p.cfg.Sets; s++ {
		base := s * p.cfg.Ways
		for w := 0; w < p.cfg.Ways; w++ {
			e := &p.entries[base+w]
			if !e.valid {
				if p.scanTags[base+w] != scanInvalid {
					return fmt.Errorf("pdede: set %d way %d scan mirror holds tag %#x for a free way",
						s, w, p.scanTags[base+w])
				}
				continue
			}
			if p.scanTags[base+w] != e.tag {
				return fmt.Errorf("pdede: set %d way %d scan mirror %#x disagrees with tag %#x",
					s, w, p.scanTags[base+w], e.tag)
			}
			if e.offset >= 1<<addr.OffsetBits {
				return fmt.Errorf("pdede: set %d way %d offset %#x exceeds %d bits",
					s, w, e.offset, addr.OffsetBits)
			}
			if e.conf > 3 {
				return fmt.Errorf("pdede: set %d way %d confidence %d exceeds 2 bits", s, w, e.conf)
			}
			if e.delta {
				if p.cfg.DisableDelta {
					return fmt.Errorf("pdede: set %d way %d is delta-encoded with delta encoding disabled", s, w)
				}
			} else {
				if p.narrow(w) {
					return fmt.Errorf("pdede: narrow way %d of set %d holds a different-page entry", w, s)
				}
				if !p.pages.ValidSlot(int(e.pagePtr)) {
					return fmt.Errorf("pdede: set %d way %d page pointer %d does not dereference", s, w, e.pagePtr)
				}
				if !p.regions.ValidSlot(int(e.regionPtr)) {
					return fmt.Errorf("pdede: set %d way %d region pointer %d does not dereference", s, w, e.regionPtr)
				}
			}
			if e.ntValid {
				if p.cfg.Variant != MultiTarget {
					return fmt.Errorf("pdede: set %d way %d has NT state outside the MultiTarget variant", s, w)
				}
				if !e.delta {
					return fmt.Errorf("pdede: set %d way %d packs an NT offset into live pointer fields", s, w)
				}
				if e.ntOffset >= 1<<addr.OffsetBits {
					return fmt.Errorf("pdede: set %d way %d NT offset %#x exceeds %d bits",
						s, w, e.ntOffset, addr.OffsetBits)
				}
			}
			for w2 := w + 1; w2 < p.cfg.Ways; w2++ {
				e2 := &p.entries[base+w2]
				if e2.valid && e2.tag == e.tag {
					return fmt.Errorf("pdede: set %d holds tag %#x twice (ways %d and %d)", s, e.tag, w, w2)
				}
			}
		}
	}
	if p.ntArmed && p.cfg.Variant != MultiTarget {
		return fmt.Errorf("pdede: NT register armed outside the MultiTarget variant")
	}
	for i, idx := range p.lastRing {
		if idx < -1 || idx >= len(p.entries) {
			return fmt.Errorf("pdede: last-BTBM ring slot %d holds out-of-range index %d", i, idx)
		}
	}
	if err := p.pages.Audit(); err != nil {
		return fmt.Errorf("pdede: page table: %w", err)
	}
	if err := p.regions.Audit(); err != nil {
		return fmt.Errorf("pdede: region table: %w", err)
	}
	return nil
}

// StateDigest implements btb.StateDigester: a hash over every live BTBM
// entry and its reconstructed target, so divergence reports can fingerprint
// the design state at the failing step.
func (p *PDede) StateDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for i := range p.entries {
		e := &p.entries[i]
		if !e.valid {
			continue
		}
		put(uint64(i))
		put(uint64(e.tag))
		put(uint64(e.offset))
		if e.delta {
			put(1)
		} else {
			put(0)
			if pv, ok := p.pages.Get(int(e.pagePtr)); ok {
				put(pv)
			}
			if rv, ok := p.regions.Get(int(e.regionPtr)); ok {
				put(rv)
			}
		}
	}
	return h.Sum64()
}

var _ btb.Auditable = (*PDede)(nil)
var _ btb.StateDigester = (*PDede)(nil)

package workload

import (
	"errors"
	"io"
	"runtime"
	"testing"

	"repro/internal/trace"
)

// Streaming and in-memory execution must produce bit-identical traces.
func TestStreamMatchesMemory(t *testing.T) {
	cfg := Default()
	cfg.StaticBranches = 2000
	_, mem, err := Build(cfg, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	src := &StreamSource{Cfg: cfg, TotalInstrs: 120_000}
	if src.Name() != cfg.Name {
		t.Errorf("source name %q", src.Name())
	}
	r := src.Open()
	for i, want := range mem.Records {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d differs: %+v vs %+v", i, got, want)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("stream did not end: %v", err)
	}
}

// A second Open replays identically (Source contract).
func TestStreamReplayable(t *testing.T) {
	src := &StreamSource{Cfg: Default(), TotalInstrs: 50_000}
	a, err := trace.Collect("a", src.Open())
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.Collect("b", src.Open())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("replays differ in length: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("replays differ at %d", i)
		}
	}
}

// Abandoned readers must not leak their generator goroutines.
func TestStreamAbandonedReaderDoesNotLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		src := &StreamSource{Cfg: Default(), TotalInstrs: 2_000_000}
		r := src.Open()
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
		// Drop the reader without draining.
	}
	for i := 0; i < 20; i++ {
		runtime.GC()
		runtime.Gosched()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
	}
	t.Errorf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
}

package workload

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Executor runs a Program, emitting a dynamic branch trace. Execution is a
// dispatch loop: the driver indirect-calls a Zipf-chosen function; functions
// walk their sites, looping on back-edges, descending into callees and
// returning to their callers. All randomness is derived from the program
// seed, so the trace for a given Config is reproducible bit-for-bit.
type Executor struct {
	p     *Program
	r     *rng.Source
	zipf  *rng.Zipf
	out   []isa.Branch
	sink  func(isa.Branch) bool // non-nil for streaming execution
	count uint64                // instructions emitted so far
	limit uint64

	// dispatchStart marks e.count at the current driver dispatch; once a
	// dispatch exceeds Config.DispatchInstrs, further calls are treated as
	// leaves so that one dispatch cannot consume the whole trace budget
	// (unbounded call trees otherwise explode combinatorially through
	// call-in-loop sites).
	dispatchStart uint64
}

// newExecutor prepares a run of the program's dynamic walk.
func newExecutor(p *Program, totalInstrs uint64) *Executor {
	e := &Executor{
		p:     p,
		r:     rng.New(p.Cfg.Seed).Fork(3),
		limit: totalInstrs,
	}
	e.zipf = rng.NewZipf(e.r.Fork(1), len(p.Funcs), p.Cfg.HotTheta)
	return e
}

// Execute builds the program's dynamic trace with approximately
// totalInstrs instructions (the trace ends at the first function return to
// the driver after the budget is reached).
func Execute(p *Program, totalInstrs uint64) *trace.Memory {
	e := newExecutor(p, totalInstrs)
	e.out = make([]isa.Branch, 0, totalInstrs/4)
	e.run()
	return &trace.Memory{TraceName: p.Cfg.Name, Records: e.out}
}

// run drives the dispatch loop until the instruction budget is spent.
func (e *Executor) run() {
	p := e.p

	// Execution has region-level phases: programs run inside one library
	// (region) for extended stretches before migrating (Figure 5a shows
	// exactly this temporal locality). Dispatch therefore sticks to the
	// current region and only occasionally follows a draw into another one.
	// The hottest functions (the application binary itself) stay active
	// throughout; phases move across the library regions.
	coreRegion := p.Funcs[0].Region
	curRegion := coreRegion
	for e.count < e.limit {
		callee := e.zipf.Next()
		if r := p.Funcs[callee].Region; r != curRegion && r != coreRegion {
			if e.r.Bool(0.97) {
				// Stay in phase: redraw until a same-region function comes up.
				stayed := false
				for tries := 0; tries < 24; tries++ {
					c := e.zipf.Next()
					if r := p.Funcs[c].Region; r == curRegion || r == coreRegion {
						callee, stayed = c, true
						break
					}
				}
				if !stayed {
					curRegion = p.Funcs[callee].Region
				}
			} else {
				curRegion = p.Funcs[callee].Region
			}
		}
		e.dispatchStart = e.count
		// Driver dispatch: indirect call into the chosen function.
		e.emit(isa.Branch{
			PC:       p.DriverCallPC,
			Target:   p.Funcs[callee].Entry,
			BlockLen: 4,
			Kind:     isa.IndirectCall,
			Taken:    true,
		})
		e.runFunc(p.Funcs[callee], p.DriverCallPC.Add(isa.InstrBytes), 0)
		// Driver loop back-edge (taken until the final iteration).
		taken := e.count < e.limit
		e.emit(isa.Branch{
			PC:       p.DriverLoopPC,
			Target:   p.DriverCallBlock,
			BlockLen: 3,
			Kind:     isa.CondDirect,
			Taken:    taken,
		})
	}
}

func (e *Executor) emit(b isa.Branch) {
	if e.sink != nil {
		if !e.sink(b) {
			// Consumer cancelled: burn the remaining budget so every loop
			// and recursion unwinds promptly.
			e.count = e.limit + uint64(b.BlockLen)
			return
		}
		e.count += uint64(b.BlockLen)
		return
	}
	e.out = append(e.out, b)
	e.count += uint64(b.BlockLen)
}

// runFunc interprets one invocation of f and emits its return record.
// retAddr is where the return jumps back to.
func (e *Executor) runFunc(f *Func, retAddr addr.VA, depth int) {
	// Per-invocation remaining-trip counters for loop back-edges: -1 means
	// "not started"; sampled on first arrival at the back-edge.
	var trips map[int]int

	// The dispatch budget also bounds loop execution: without it, nested
	// loops could let a single dispatch swallow the entire trace budget and
	// collapse the dynamic working set onto a handful of functions.
	budget := uint64(e.p.Cfg.DispatchInstrs) * 2

	i := 0
	for i < len(f.Sites) && e.count < e.limit && e.count-e.dispatchStart < budget {
		s := &f.Sites[i]
		switch s.Kind {
		case isa.CondDirect:
			if s.LoopTo >= 0 {
				if trips == nil {
					trips = make(map[int]int, 4)
				}
				rem, started := trips[i]
				if !started {
					// Stable trip count with occasional data-dependent jitter:
					// predictable enough for a history predictor, not perfectly
					// regular.
					rem = s.TripMean - 1
					if e.r.Bool(0.15) {
						rem += e.r.Intn(3) - 1
					}
					if rem < 0 {
						rem = 0
					}
				}
				if rem > 0 {
					trips[i] = rem - 1
					e.emit(isa.Branch{PC: s.PC, Target: s.Target, BlockLen: s.BlockLen, Kind: s.Kind, Taken: true})
					i = s.LoopTo
					continue
				}
				delete(trips, i) // re-sample on next loop entry
				e.emit(isa.Branch{PC: s.PC, Target: s.Target, BlockLen: s.BlockLen, Kind: s.Kind, Taken: false})
				i++
				continue
			}
			taken := e.r.Bool(s.TakenP)
			e.emit(isa.Branch{PC: s.PC, Target: s.Target, BlockLen: s.BlockLen, Kind: s.Kind, Taken: taken})
			i++

		case isa.UncondDirect:
			e.emit(isa.Branch{PC: s.PC, Target: s.Target, BlockLen: s.BlockLen, Kind: s.Kind, Taken: true})
			if s.SkipTo >= 0 {
				i = s.SkipTo
			} else {
				i++
			}

		case isa.DirectCall:
			e.emit(isa.Branch{PC: s.PC, Target: s.Target, BlockLen: s.BlockLen, Kind: s.Kind, Taken: true})
			e.descend(s.Callee, s.PC, depth)
			i++

		case isa.IndirectCall:
			// Indirect call sites are mostly monomorphic at runtime: the
			// first callee dominates, the rest are occasional.
			callee := s.Callees[0]
			if e.r.Bool(0.30) {
				callee = s.Callees[e.r.Intn(len(s.Callees))]
			}
			e.emit(isa.Branch{PC: s.PC, Target: e.p.Funcs[callee].Entry, BlockLen: s.BlockLen, Kind: s.Kind, Taken: true})
			e.descend(callee, s.PC, depth)
			i++

		case isa.IndirectJump:
			// Switch dispatch skews heavily toward a dominant case.
			k := 0
			if e.r.Bool(0.30) {
				k = e.r.Intn(len(s.JumpTo))
			}
			e.emit(isa.Branch{PC: s.PC, Target: s.JumpTargets[k], BlockLen: s.BlockLen, Kind: s.Kind, Taken: true})
			i = s.JumpTo[k]

		default: // isa.Return never appears as a Site kind
			i++
		}
	}
	// Implicit return.
	e.emit(isa.Branch{PC: f.RetPC, Target: retAddr, BlockLen: f.RetBlockLen, Kind: isa.Return, Taken: true})
}

// descend runs a callee unless the depth limit is reached, in which case the
// callee contributes only its return (modelling a trivially small leaf).
func (e *Executor) descend(callee int, callPC addr.VA, depth int) {
	retAddr := callPC.Add(isa.InstrBytes)
	cf := e.p.Funcs[callee]
	if depth+1 >= e.p.Cfg.MaxCallDepth ||
		e.count-e.dispatchStart >= uint64(e.p.Cfg.DispatchInstrs) {
		e.emit(isa.Branch{PC: cf.RetPC, Target: retAddr, BlockLen: cf.RetBlockLen, Kind: isa.Return, Taken: true})
		return
	}
	e.runFunc(cf, retAddr, depth+1)
}

// Build synthesizes the program and executes it in one step. Errors name
// the application so harnesses that aggregate failures across a suite can
// report which workload was unbuildable.
func Build(cfg Config, totalInstrs uint64) (*Program, *trace.Memory, error) {
	p, err := NewProgram(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("workload %q: %w", cfg.Name, err)
	}
	return p, Execute(p, totalInstrs), nil
}

package workload

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/isa"
)

// Region phase locality: within short windows, taken non-return targets
// should touch very few regions (this is what keeps the 4-entry Region-BTB
// viable, Fig 5a).
func TestRegionPhaseLocality(t *testing.T) {
	cfg := Default()
	cfg.StaticBranches = 24000
	_, tr, err := Build(cfg, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	const window = 50_000
	var instr uint64
	next := uint64(window)
	regions := map[addr.RegionID]bool{}
	maxRegions, windows := 0, 0
	for _, b := range tr.Records {
		instr += uint64(b.BlockLen)
		if b.Taken && !b.Kind.IsReturn() {
			regions[b.Target.Region()] = true
		}
		if instr >= next {
			if len(regions) > maxRegions {
				maxRegions = len(regions)
			}
			windows++
			regions = map[addr.RegionID]bool{}
			next += window
		}
	}
	if windows < 10 {
		t.Fatalf("only %d windows", windows)
	}
	if maxRegions > 5 {
		t.Errorf("window touched %d regions; phase locality broken (Region-BTB holds 4)", maxRegions)
	}
}

// The region count must stay small even for huge footprints (the paper's
// regions are ~100× rarer than pages).
func TestRegionCountCapped(t *testing.T) {
	cfg := Default()
	cfg.StaticBranches = 60000
	p, err := NewProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.RegionIDs) > 7 { // 6 library regions + driver
		t.Errorf("program uses %d regions", len(p.RegionIDs))
	}
}

// Functions must stay inside their region's contiguous index span so that
// same-region calls are really same-region.
func TestRegionSpansContiguous(t *testing.T) {
	cfg := Default()
	cfg.StaticBranches = 12000
	p, err := NewProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lastRegion := -1
	seen := map[int]bool{}
	for _, f := range p.Funcs {
		if f.Region != lastRegion {
			if seen[f.Region] {
				t.Fatalf("region %d appears in two separate spans", f.Region)
			}
			seen[f.Region] = true
			lastRegion = f.Region
		}
	}
}

// Indirect sites must be dominated by one target (mostly-monomorphic
// behaviour); otherwise even a perfect BTB drowns in target-change misses.
func TestIndirectDominance(t *testing.T) {
	cfg := Default()
	cfg.StaticBranches = 8000
	_, tr, err := Build(cfg, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]map[uint64]int{} // pc → target → count
	for _, b := range tr.Records {
		if !b.Kind.IsIndirect() || !b.Taken {
			continue
		}
		m := counts[uint64(b.PC)]
		if m == nil {
			m = map[uint64]int{}
			counts[uint64(b.PC)] = m
		}
		m[uint64(b.Target)]++
	}
	var domSum, total float64
	sites := 0
	for _, m := range counts {
		all, best := 0, 0
		for _, n := range m {
			all += n
			if n > best {
				best = n
			}
		}
		if all < 20 {
			continue // too few samples for a dominance estimate
		}
		domSum += float64(best) / float64(all)
		total++
		sites++
	}
	if sites < 10 {
		t.Skip("too few hot indirect sites")
	}
	if dom := domSum / total; dom < 0.6 {
		t.Errorf("mean dominant-target share %v, want ≥ 0.6", dom)
	}
}

// Page sharing: multiple functions share pages, which is what produces the
// paper's ~18 targets per page.
func TestFunctionsSharePages(t *testing.T) {
	cfg := Default()
	cfg.StaticBranches = 8000
	p, err := NewProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perPage := map[uint64]int{}
	for _, f := range p.Funcs {
		perPage[f.Entry.PageAddr()]++
	}
	shared := 0
	for _, n := range perPage {
		if n >= 2 {
			shared++
		}
	}
	if float64(shared)/float64(len(perPage)) < 0.3 {
		t.Errorf("only %d/%d pages hold ≥2 function entries", shared, len(perPage))
	}
}

// Loop back-edges must land in the same page as their branch most of the
// time (tight inner loops are the delta-encoding motivation).
func TestLoopBackEdgesSamePage(t *testing.T) {
	cfg := Default()
	cfg.StaticBranches = 8000
	p, err := NewProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same, total := 0, 0
	for _, f := range p.Funcs {
		for _, s := range f.Sites {
			if s.Kind == isa.CondDirect && s.LoopTo >= 0 {
				total++
				if s.PC.SamePage(s.Target) {
					same++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no loops generated")
	}
	if frac := float64(same) / float64(total); frac < 0.8 {
		t.Errorf("only %v of loop back-edges are same-page", frac)
	}
}

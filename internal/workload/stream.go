package workload

import (
	"io"
	"runtime"

	"repro/internal/isa"
	"repro/internal/trace"
)

// StreamSource is a trace.Source that regenerates its records on every
// Open instead of materializing them: memory stays constant no matter how
// long the trace is, at the cost of re-running the (deterministic)
// executor. Use it for traces too large to hold (hundreds of millions of
// instructions); Memory traces are faster when replaying many designs over
// the same app.
type StreamSource struct {
	Cfg         Config
	TotalInstrs uint64
}

// Name implements trace.Source.
func (s *StreamSource) Name() string { return s.Cfg.Name }

// Open implements trace.Source: it launches a generator goroutine feeding
// bounded chunks through a channel. The goroutine exits when the trace
// budget is exhausted or the reader is garbage-collected (a finalizer
// closes the cancellation channel, so abandoned readers do not leak).
func (s *StreamSource) Open() trace.Reader {
	const chunkSize = 4096
	chunks := make(chan []isa.Branch, 2)
	done := make(chan struct{})
	r := &streamReader{chunks: chunks, done: done}

	go func() {
		defer close(chunks)
		p, err := NewProgram(s.Cfg)
		if err != nil {
			return // surfaces as a short stream; Validate cfg beforehand
		}
		buf := make([]isa.Branch, 0, chunkSize)
		flush := func() bool {
			if len(buf) == 0 {
				return true
			}
			out := make([]isa.Branch, len(buf))
			copy(out, buf)
			buf = buf[:0]
			select {
			case chunks <- out:
				return true
			case <-done:
				return false
			}
		}
		emit := func(b isa.Branch) bool {
			buf = append(buf, b)
			if len(buf) == chunkSize {
				return flush()
			}
			return true
		}
		streamExecute(p, s.TotalInstrs, emit)
		flush()
	}()

	// If the reader is dropped without draining, unblock the generator.
	runtime.SetFinalizer(r, func(sr *streamReader) { sr.cancel() })
	return r
}

type streamReader struct {
	chunks   chan []isa.Branch
	done     chan struct{}
	cur      []isa.Branch
	pos      int
	finished bool
}

func (r *streamReader) cancel() {
	if !r.finished {
		r.finished = true
		close(r.done)
	}
}

// Next implements trace.Reader.
func (r *streamReader) Next() (isa.Branch, error) {
	for r.pos >= len(r.cur) {
		chunk, ok := <-r.chunks
		if !ok {
			r.cancel()
			return isa.Branch{}, io.EOF
		}
		r.cur = chunk
		r.pos = 0
	}
	b := r.cur[r.pos]
	r.pos++
	return b, nil
}

// streamExecute runs the executor with a callback sink instead of an
// in-memory slice. emit returns false to abort (reader cancelled).
func streamExecute(p *Program, totalInstrs uint64, emit func(isa.Branch) bool) {
	e := newExecutor(p, totalInstrs)
	e.sink = emit
	e.run()
}

package workload

import (
	"reflect"
	"testing"

	"repro/internal/isa"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.StaticBranches = 10 },
		func(c *Config) { c.SitesPerFunc = 1 },
		func(c *Config) { c.CondFrac = 1.5 },
		func(c *Config) { c.SamePageBias = -0.1 },
		func(c *Config) { c.BiasTakenFrac = 0.8; c.BiasNotFrac = 0.5 },
		func(c *Config) { c.TripMean = 0 },
		func(c *Config) { c.BackendCPI = 0 },
		func(c *Config) { c.HotTheta = 3 },
		func(c *Config) { c.PageSpread = 0.5 },
		func(c *Config) { c.MaxCallDepth = 0 },
	}
	for i, m := range mut {
		c := Default()
		m(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestProgramStructure(t *testing.T) {
	cfg := Default()
	cfg.StaticBranches = 2000
	p, err := NewProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != cfg.NumFunctions() {
		t.Errorf("funcs = %d, want %d", len(p.Funcs), cfg.NumFunctions())
	}
	if len(p.RegionIDs) < 3 {
		t.Errorf("too few regions: %d", len(p.RegionIDs))
	}
	for _, f := range p.Funcs {
		if len(f.Sites) < 2 {
			t.Fatalf("func %d has %d sites", f.Index, len(f.Sites))
		}
		prevEnd := f.Entry
		for i, s := range f.Sites {
			if s.BlockStart != prevEnd {
				t.Fatalf("func %d site %d: blocks not contiguous", f.Index, i)
			}
			if s.PC != s.BlockStart.Add(uint64(s.BlockLen-1)*isa.InstrBytes) {
				t.Fatalf("func %d site %d: PC/BlockStart/BlockLen inconsistent", f.Index, i)
			}
			if s.Kind == isa.CondDirect && s.LoopTo >= 0 {
				if s.LoopTo >= i {
					t.Fatalf("func %d site %d: loop target %d not backward", f.Index, i, s.LoopTo)
				}
				if s.Target != f.Sites[s.LoopTo].BlockStart {
					t.Fatalf("func %d site %d: loop target address mismatch", f.Index, i)
				}
			}
			if s.Kind == isa.UncondDirect && s.SkipTo >= 0 && s.SkipTo <= i {
				t.Fatalf("func %d site %d: uncond skip not forward", f.Index, i)
			}
			if s.Kind == isa.IndirectJump {
				if len(s.JumpTo) < 2 {
					t.Fatalf("func %d site %d: indirect jump with %d targets", f.Index, i, len(s.JumpTo))
				}
				for k, j := range s.JumpTo {
					if j <= i {
						t.Fatalf("func %d site %d: indirect dest %d not forward", f.Index, i, j)
					}
					if s.JumpTargets[k] != f.Sites[j].BlockStart {
						t.Fatalf("func %d site %d: indirect dest address mismatch", f.Index, i)
					}
				}
			}
			if s.Kind == isa.DirectCall {
				if s.Callee < 0 || s.Callee >= len(p.Funcs) {
					t.Fatalf("func %d site %d: bad callee %d", f.Index, i, s.Callee)
				}
				if s.Target != p.Funcs[s.Callee].Entry {
					t.Fatalf("func %d site %d: call target mismatch", f.Index, i)
				}
			}
			if s.Kind == isa.IndirectCall && len(s.Callees) < 2 {
				t.Fatalf("func %d site %d: indirect call with %d callees", f.Index, i, len(s.Callees))
			}
			prevEnd = s.PC.Add(isa.InstrBytes)
		}
		if f.RetPC.Add(isa.InstrBytes*uint64(f.RetBlockLen-1)) == f.Entry {
			t.Fatalf("func %d: degenerate return placement", f.Index)
		}
	}
}

func TestProgramDeterminism(t *testing.T) {
	cfg := Default()
	cfg.StaticBranches = 1500
	p1, err := NewProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewProgram(cfg)
	if !reflect.DeepEqual(p1.RegionIDs, p2.RegionIDs) {
		t.Error("region ids differ between identical builds")
	}
	for i := range p1.Funcs {
		if !reflect.DeepEqual(p1.Funcs[i], p2.Funcs[i]) {
			t.Fatalf("func %d differs between identical builds", i)
		}
	}
}

func TestExecuteDeterminism(t *testing.T) {
	cfg := Default()
	cfg.StaticBranches = 1500
	_, t1, err := Build(cfg, 50000)
	if err != nil {
		t.Fatal(err)
	}
	_, t2, _ := Build(cfg, 50000)
	if len(t1.Records) != len(t2.Records) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1.Records), len(t2.Records))
	}
	for i := range t1.Records {
		if t1.Records[i] != t2.Records[i] {
			t.Fatalf("records differ at %d", i)
		}
	}
}

func TestExecuteBudget(t *testing.T) {
	cfg := Default()
	cfg.StaticBranches = 1500
	_, tr, err := Build(cfg, 100000)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Instructions()
	if got < 100000 || got > 120000 {
		t.Errorf("instructions = %d, want ≈100000 (small overshoot allowed)", got)
	}
}

func TestTraceWellFormed(t *testing.T) {
	cfg := Default()
	cfg.StaticBranches = 2000
	_, tr, err := Build(cfg, 200000)
	if err != nil {
		t.Fatal(err)
	}
	depth := 0
	for i, b := range tr.Records {
		if err := b.Validate(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if b.Kind.IsCall() {
			depth++
		}
		if b.Kind.IsReturn() {
			depth--
		}
		if depth < 0 {
			t.Fatalf("record %d: more returns than calls", i)
		}
		// Indirect jumps may legitimately dispatch to the fallthrough case;
		// other unconditional flow must actually go somewhere else.
		if b.Taken && b.Target == b.Fallthrough() &&
			b.Kind != isa.CondDirect && b.Kind != isa.IndirectJump {
			t.Fatalf("record %d: degenerate unconditional target", i)
		}
	}
}

// Calls and returns must pair so the RAS predicts returns well.
func TestCallReturnPairing(t *testing.T) {
	cfg := Default()
	cfg.StaticBranches = 2000
	_, tr, err := Build(cfg, 200000)
	if err != nil {
		t.Fatal(err)
	}
	var stack []uint64
	matched, total := 0, 0
	for _, b := range tr.Records {
		if b.Kind.IsCall() {
			stack = append(stack, uint64(b.PC)+isa.InstrBytes)
		}
		if b.Kind.IsReturn() {
			total++
			if len(stack) > 0 {
				if uint64(b.Target) == stack[len(stack)-1] {
					matched++
				}
				stack = stack[:len(stack)-1]
			}
		}
	}
	if total == 0 {
		t.Fatal("no returns in trace")
	}
	if frac := float64(matched) / float64(total); frac < 0.99 {
		t.Errorf("only %.2f of returns match call stack", frac)
	}
}

func TestCatalogShape(t *testing.T) {
	apps := Catalog()
	if len(apps) != 102 {
		t.Fatalf("catalog has %d apps, want 102", len(apps))
	}
	counts := map[Category]int{}
	names := map[string]bool{}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Errorf("app %s invalid: %v", a.Name, err)
		}
		if names[a.Name] {
			t.Errorf("duplicate app name %s", a.Name)
		}
		names[a.Name] = true
		counts[a.Category]++
	}
	want := map[Category]int{Server: 61, Browser: 20, BusinessProductivity: 11, Personal: 10}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("category counts = %v, want %v", counts, want)
	}
}

func TestCatalogDeterminism(t *testing.T) {
	a, b := Catalog(), Catalog()
	if !reflect.DeepEqual(a, b) {
		t.Error("catalog not deterministic")
	}
}

func TestCatalogSpecials(t *testing.T) {
	for _, name := range []string{
		"Browser-js-static-analyzer", "Personal-animation",
		"Server-data-analytics", "Server-microservices-hub",
		"Server-oltp-primary", "Browser-html5-render",
		"Browser-imaging", "Browser-wasm-runtime",
	} {
		if _, ok := CatalogByName(name); !ok {
			t.Errorf("special app %s missing", name)
		}
	}
	if _, ok := CatalogByName("no-such-app"); ok {
		t.Error("CatalogByName invented an app")
	}
}

func TestCatalogCategory(t *testing.T) {
	if got := len(CatalogCategory(Browser)); got != 20 {
		t.Errorf("browser apps = %d, want 20", got)
	}
}

package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ConfigFromJSON decodes an application configuration. Missing fields keep
// the Default() values, so a file only needs the knobs it changes:
//
//	{"Name": "my-service", "StaticBranches": 30000, "SamePageBias": 0.5}
func ConfigFromJSON(r io.Reader) (Config, error) {
	cfg := Default()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("workload: decoding config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// LoadConfig reads a JSON application configuration from a file.
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return ConfigFromJSON(f)
}

// WriteJSON encodes the configuration (for saving customized apps).
func (c Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

package workload

import (
	"sync"
	"testing"
)

// Every one of the 102 catalog applications must synthesize and execute
// into a well-formed trace. This is the suite's integration safety net: a
// layout overflow or a degenerate parameter combination in any app fails
// here rather than deep inside an experiment run.
func TestAllCatalogAppsBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all 102 apps")
	}
	apps := Catalog()
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	errs := make(chan error, len(apps))
	for _, app := range apps {
		wg.Add(1)
		go func(cfg Config) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			p, tr, err := Build(cfg, 150_000)
			if err != nil {
				errs <- err
				return
			}
			if len(p.Funcs) < 4 {
				t.Errorf("%s: only %d functions", cfg.Name, len(p.Funcs))
			}
			if got := tr.Instructions(); got < 150_000 {
				t.Errorf("%s: trace has only %d instructions", cfg.Name, got)
			}
			for i, b := range tr.Records {
				if err := b.Validate(); err != nil {
					t.Errorf("%s record %d: %v", cfg.Name, i, err)
					break
				}
			}
		}(app)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Static branch counts must land near the configured budget.
func TestStaticBranchBudgetHonored(t *testing.T) {
	for _, n := range []int{2000, 8000, 30000} {
		cfg := Default()
		cfg.StaticBranches = n
		p, err := NewProgram(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := p.StaticBranchCount()
		lo, hi := n*70/100, n*135/100
		if got < lo || got > hi {
			t.Errorf("budget %d produced %d static branches (want %d..%d)", n, got, lo, hi)
		}
	}
}

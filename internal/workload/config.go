// Package workload synthesizes frontend-bound applications and executes them
// into dynamic branch traces.
//
// The paper evaluates PDede on 102 proprietary applications whose exact
// traces are unavailable. This package substitutes a parametric program
// model calibrated to the branch-population statistics the paper publishes
// in its analysis section (Figs 3–8): taken rates, branch-type mix, target
// sharing, unique region/page/offset cardinalities, targets per page and per
// region, and the fraction of same-page branches. A synthetic program is a
// set of functions placed across sparse ASLR-style regions; executing it
// with a seeded random walk (loops, calls, indirect dispatch) produces a
// deterministic trace with realistic temporal and spatial locality.
package workload

import (
	"fmt"
)

// Category mirrors Table 1 of the paper.
type Category uint8

const (
	// Server: online transaction processing, web traffic, cloud services,
	// microservices (61 apps in the paper).
	Server Category = iota
	// Browser: HTML5, Javascript, JVM, WebAssembly, games, image rendering
	// (20 apps).
	Browser
	// BusinessProductivity: compression, email, presentations, spreadsheets,
	// document processing (11 apps).
	BusinessProductivity
	// Personal: email, image editing, games, video playback (10 apps).
	Personal

	NumCategories = 4
)

var categoryNames = [NumCategories]string{
	"Server", "Browser", "BP", "Personal",
}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Config describes one synthetic application. The zero value is not usable;
// start from Default() or the catalog.
type Config struct {
	// Name identifies the application in reports.
	Name string
	// Category is the Table 1 grouping.
	Category Category
	// Seed makes the program and its execution deterministic.
	Seed uint64

	// StaticBranches is the number of static branch sites to synthesize
	// (excluding the implicit per-function returns). Frontend-bound apps
	// have working sets well beyond the 4K-entry baseline BTB.
	StaticBranches int
	// SitesPerFunc is the mean number of branch sites per function.
	SitesPerFunc int
	// PagesPerRegion is the mean number of code pages per ASLR region;
	// the paper observes ~120 (2200 targets/region ÷ 18 targets/page).
	PagesPerRegion int
	// PageSpread ≥ 1 stretches the page indices used inside a region,
	// leaving unused gaps (sparse address-space population).
	PageSpread float64

	// CondFrac, CallFrac, IndirectFrac set the static branch-kind mix.
	// CondFrac of the sites are conditional; of the remainder, CallFrac are
	// calls and IndirectFrac of those branches/calls use indirect targets.
	CondFrac     float64
	CallFrac     float64
	IndirectFrac float64

	// LoopFrac is the fraction of conditional sites that are loop
	// back-edges.
	LoopFrac float64
	// TripMean is the mean loop trip count.
	TripMean int
	// BiasTakenFrac / BiasNotFrac split non-loop conditionals into
	// strongly-taken / strongly-not-taken; the rest are ~50/50 (hard to
	// predict).
	BiasTakenFrac float64
	BiasNotFrac   float64

	// ShareTargets is the probability a direct branch target reuses an
	// already-assigned target (drives the 30% duplicate-target figure).
	ShareTargets float64
	// SamePageBias is the probability a conditional or unconditional
	// jump's target stays within the branch's own page when possible.
	SamePageBias float64
	// CrossRegionCallFrac is the probability a call targets a function in
	// a different region (library call).
	CrossRegionCallFrac float64

	// HotTheta is the Zipf exponent of the function dispatch distribution
	// (higher ⇒ smaller hot set).
	HotTheta float64
	// BlockLenMean is the mean basic-block length in instructions.
	BlockLenMean int
	// MaxCallDepth bounds the dynamic call stack (below the driver).
	MaxCallDepth int
	// DispatchInstrs bounds the instructions one driver dispatch may emit
	// before calls stop descending; it controls how quickly execution moves
	// between hot functions.
	DispatchInstrs int

	// BackendCPI is the per-app backend derating used by the core model: the
	// cycles-per-µop the backend would sustain with a perfect frontend.
	// It models data-dependency back-pressure that the trace cannot express.
	BackendCPI float64
}

// Default returns a mid-sized, calibrated configuration.
func Default() Config {
	return Config{
		Name:                "default",
		Category:            Server,
		Seed:                1,
		StaticBranches:      16000,
		SitesPerFunc:        18,
		PagesPerRegion:      120,
		PageSpread:          1.6,
		CondFrac:            0.62,
		CallFrac:            0.55,
		IndirectFrac:        0.18,
		LoopFrac:            0.14,
		TripMean:            4,
		BiasTakenFrac:       0.62,
		BiasNotFrac:         0.34,
		ShareTargets:        0.35,
		SamePageBias:        0.80,
		CrossRegionCallFrac: 0.10,
		HotTheta:            0.85,
		BlockLenMean:        6,
		MaxCallDepth:        10,
		DispatchInstrs:      3000,
		BackendCPI:          0.45,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("workload: empty Name")
	case c.StaticBranches < 100:
		return fmt.Errorf("workload %s: StaticBranches %d too small", c.Name, c.StaticBranches)
	case c.SitesPerFunc < 2:
		return fmt.Errorf("workload %s: SitesPerFunc %d too small", c.Name, c.SitesPerFunc)
	case c.PagesPerRegion < 1:
		return fmt.Errorf("workload %s: PagesPerRegion %d", c.Name, c.PagesPerRegion)
	case c.PageSpread < 1:
		return fmt.Errorf("workload %s: PageSpread %v < 1", c.Name, c.PageSpread)
	case c.TripMean < 1:
		return fmt.Errorf("workload %s: TripMean %d", c.Name, c.TripMean)
	case c.BlockLenMean < 2:
		return fmt.Errorf("workload %s: BlockLenMean %d", c.Name, c.BlockLenMean)
	case c.MaxCallDepth < 1:
		return fmt.Errorf("workload %s: MaxCallDepth %d", c.Name, c.MaxCallDepth)
	case c.DispatchInstrs < 100:
		return fmt.Errorf("workload %s: DispatchInstrs %d too small", c.Name, c.DispatchInstrs)
	case c.BackendCPI <= 0:
		return fmt.Errorf("workload %s: BackendCPI %v", c.Name, c.BackendCPI)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"CondFrac", c.CondFrac}, {"CallFrac", c.CallFrac},
		{"IndirectFrac", c.IndirectFrac}, {"LoopFrac", c.LoopFrac},
		{"BiasTakenFrac", c.BiasTakenFrac}, {"BiasNotFrac", c.BiasNotFrac},
		{"ShareTargets", c.ShareTargets}, {"SamePageBias", c.SamePageBias},
		{"CrossRegionCallFrac", c.CrossRegionCallFrac},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("workload %s: %s = %v outside [0,1]", c.Name, p.name, p.v)
		}
	}
	if c.BiasTakenFrac+c.BiasNotFrac > 1 {
		return fmt.Errorf("workload %s: BiasTakenFrac+BiasNotFrac > 1", c.Name)
	}
	if c.HotTheta < 0 || c.HotTheta > 2 {
		return fmt.Errorf("workload %s: HotTheta %v outside [0,2]", c.Name, c.HotTheta)
	}
	return nil
}

// NumFunctions derives the function count from the static branch budget.
func (c Config) NumFunctions() int {
	n := c.StaticBranches / c.SitesPerFunc
	if n < 4 {
		n = 4
	}
	return n
}

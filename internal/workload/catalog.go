package workload

import (
	"fmt"

	"repro/internal/rng"
)

// The catalog mirrors Table 1 of the paper: 102 frontend-bound applications
// across four categories (Server 61, Browser 20, BP 11, Personal 10). The
// paper anonymizes its suite; here every app is a procedurally generated
// configuration drawn from category-specific parameter ranges, with a few
// hand-tuned members reproducing the specific applications the paper calls
// out in §5.2 (Javascript static analyzer, Animation, Data Analytics,
// Microservices/OLTP, HTML5-rendering, Imaging).

// catRange bounds the procedural parameters of one category.
type catRange struct {
	category       Category
	count          int
	prefix         []string
	branchesLo     int // static branch sites
	branchesHi     int
	indirectLo     float64
	indirectHi     float64
	samePageLo     float64
	samePageHi     float64
	hotThetaLo     float64
	hotThetaHi     float64
	tripLo, tripHi int
	cpiLo, cpiHi   float64
}

var catRanges = []catRange{
	{
		category: Server, count: 61,
		prefix:     []string{"oltp", "webtraffic", "cloudsvc", "microservice", "rpc", "kvstore"},
		branchesLo: 18000, branchesHi: 52000,
		indirectLo: 0.12, indirectHi: 0.24,
		samePageLo: 0.66, samePageHi: 0.84,
		hotThetaLo: 0.10, hotThetaHi: 0.40,
		tripLo: 2, tripHi: 6,
		cpiLo: 0.40, cpiHi: 0.60,
	},
	{
		category: Browser, count: 20,
		prefix:     []string{"html5", "javascript", "jvm", "wasm", "game", "imgrender"},
		branchesLo: 10000, branchesHi: 30000,
		indirectLo: 0.18, indirectHi: 0.30,
		samePageLo: 0.70, samePageHi: 0.88,
		hotThetaLo: 0.15, hotThetaHi: 0.50,
		tripLo: 2, tripHi: 5,
		cpiLo: 0.38, cpiHi: 0.55,
	},
	{
		category: BusinessProductivity, count: 11,
		prefix:     []string{"compress", "email", "slides", "sheet", "docproc"},
		branchesLo: 7000, branchesHi: 18000,
		indirectLo: 0.10, indirectHi: 0.20,
		samePageLo: 0.72, samePageHi: 0.90,
		hotThetaLo: 0.20, hotThetaHi: 0.55,
		tripLo: 3, tripHi: 8,
		cpiLo: 0.42, cpiHi: 0.62,
	},
	{
		category: Personal, count: 10,
		prefix:     []string{"mail", "imgedit", "game", "video"},
		branchesLo: 6000, branchesHi: 15000,
		indirectLo: 0.10, indirectHi: 0.22,
		samePageLo: 0.70, samePageHi: 0.88,
		hotThetaLo: 0.20, hotThetaHi: 0.55,
		tripLo: 3, tripHi: 8,
		cpiLo: 0.40, cpiHi: 0.60,
	},
}

func lerp(lo, hi, u float64) float64 { return lo + (hi-lo)*u }

// appFromRange draws one deterministic configuration from a category range.
func appFromRange(cr catRange, idx int) Config {
	r := rng.New(0xC0FFEE + uint64(cr.category)<<32 + uint64(idx))
	cfg := Default()
	cfg.Category = cr.category
	cfg.Name = fmt.Sprintf("%s-%s-%02d", cr.category, cr.prefix[idx%len(cr.prefix)], idx)
	cfg.Seed = r.Uint64()
	cfg.StaticBranches = cr.branchesLo + r.Intn(cr.branchesHi-cr.branchesLo+1)
	cfg.IndirectFrac = lerp(cr.indirectLo, cr.indirectHi, r.Float64())
	cfg.SamePageBias = lerp(cr.samePageLo, cr.samePageHi, r.Float64())
	cfg.HotTheta = lerp(cr.hotThetaLo, cr.hotThetaHi, r.Float64())
	cfg.TripMean = r.Range(cr.tripLo, cr.tripHi)
	cfg.BackendCPI = lerp(cr.cpiLo, cr.cpiHi, r.Float64())
	cfg.LoopFrac = lerp(0.10, 0.18, r.Float64())
	cfg.CallFrac = lerp(0.55, 0.75, r.Float64())
	cfg.ShareTargets = lerp(0.25, 0.45, r.Float64())
	cfg.CrossRegionCallFrac = lerp(0.05, 0.15, r.Float64())
	cfg.BlockLenMean = r.Range(5, 8)
	cfg.DispatchInstrs = r.Range(900, 2000)
	cfg.PageSpread = lerp(1.3, 2.4, r.Float64())
	return cfg
}

// Catalog returns the full 102-application suite. Entries are deterministic:
// calling Catalog twice yields identical configurations.
func Catalog() []Config {
	var apps []Config
	for _, cr := range catRanges {
		for i := 0; i < cr.count; i++ {
			apps = append(apps, appFromRange(cr, i))
		}
	}
	applySpecials(apps)
	return apps
}

// applySpecials tunes the named applications the paper discusses.
func applySpecials(apps []Config) {
	find := func(name string) *Config {
		for i := range apps {
			if apps[i].Name == name {
				return &apps[i]
			}
		}
		panic("workload: special app not in catalog: " + name)
	}

	// Javascript static analyzer (§5.2): hot working set slightly exceeds
	// the baseline BTB but fits comfortably in PDede's larger effective
	// capacity → near-complete MPKI elimination, largest IPC gain.
	js := find("Browser-javascript-01")
	js.Name = "Browser-js-static-analyzer"
	js.StaticBranches = 14000
	js.HotTheta = 0.20 // flat profile: everything is warm
	js.SamePageBias = 0.82
	js.IndirectFrac = 0.06
	js.TripMean = 4
	js.BackendCPI = 0.36

	// Animation (§5.2): 2.3× larger page footprint than the JS analyzer;
	// hot set exceeds even PDede's resources → limited gain.
	an := find("Personal-game-02")
	an.Name = "Personal-animation"
	an.StaticBranches = 52000
	an.HotTheta = 0.30
	an.SamePageBias = 0.62
	an.TripMean = 3

	// Data Analytics (§5.2): ~90% same-page branches; Multi-Target packs
	// its targets especially well.
	da := find("Server-kvstore-05")
	da.Name = "Server-data-analytics"
	da.SamePageBias = 0.97
	da.LoopFrac = 0.30
	da.TripMean = 6

	// Microservices & OLTP (§5.2): only ~50% same-page; exercise the
	// Region/Page-BTB path.
	ms := find("Server-microservice-03")
	ms.Name = "Server-microservices-hub"
	ms.SamePageBias = 0.40
	ms.CrossRegionCallFrac = 0.20
	ms.LoopFrac = 0.08
	ms.TripMean = 3
	ms.CallFrac = 0.72
	ol := find("Server-oltp-00")
	ol.Name = "Server-oltp-primary"
	ol.SamePageBias = 0.42
	ol.CrossRegionCallFrac = 0.18
	ol.LoopFrac = 0.08
	ol.TripMean = 3
	ol.CallFrac = 0.72

	// HTML5 rendering (§5.2): dense target sharing (>15 targets/page,
	// >2K/region) maximizing dedup efficiency.
	ht := find("Browser-html5-00")
	ht.Name = "Browser-html5-render"
	ht.ShareTargets = 0.50
	ht.PagesPerRegion = 160

	// Imaging (§5.2): >18% IPC gains.
	im := find("Browser-imgrender-05")
	im.Name = "Browser-imaging"
	im.StaticBranches = 12000
	im.HotTheta = 0.45

	// Wasm browser app used for the Fig 5 runtime plot.
	wa := find("Browser-wasm-03")
	wa.Name = "Browser-wasm-runtime"
	wa.PagesPerRegion = 150
	wa.PageSpread = 2.2

	// JITed server applications (§5.8): large footprints that still profit
	// at 16K-entry BTBs.
	for i, name := range []string{"Server-cloudsvc-02", "Server-rpc-04"} {
		j := find(name)
		j.Name = fmt.Sprintf("Server-jit-backend-%d", i)
		j.StaticBranches = 60000
		j.HotTheta = 0.45
	}
}

// CatalogByName returns the named app from the catalog.
func CatalogByName(name string) (Config, bool) {
	for _, c := range Catalog() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

// CatalogCategory returns the catalog subset for one category.
func CatalogCategory(cat Category) []Config {
	var out []Config
	for _, c := range Catalog() {
		if c.Category == cat {
			out = append(out, c)
		}
	}
	return out
}

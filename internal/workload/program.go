package workload

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/isa"
	"repro/internal/rng"
)

// Site is one static branch site inside a function. Execution walks a
// function's sites in order; loop back-edges, forward jumps and indirect
// jumps redirect the walk by site index, so the emitted (PC, target, taken)
// stream is always internally consistent with the generated addresses.
type Site struct {
	// BlockStart is the address of the first instruction of the basic block
	// that ends at this site.
	BlockStart addr.VA
	// PC is the branch instruction address: BlockStart + (BlockLen-1)*4.
	PC addr.VA
	// BlockLen is the block's instruction count including the branch.
	BlockLen uint16
	// Kind classifies the site.
	Kind isa.Kind

	// Target is the static target for direct sites.
	Target addr.VA
	// TakenP is the taken probability of a non-loop conditional.
	TakenP float64
	// LoopTo ≥ 0 makes a conditional a loop back-edge to that site index.
	LoopTo int
	// TripMean is this loop's mean trip count.
	TripMean int
	// SkipTo ≥ 0 redirects an unconditional direct jump to that site index.
	SkipTo int
	// Callee ≥ 0 is the callee function index of a direct call.
	Callee int
	// Callees are the candidate callee function indices of an indirect call.
	Callees []int
	// JumpTo are the candidate destination site indices of an indirect jump,
	// with JumpTargets the corresponding addresses.
	JumpTo      []int
	JumpTargets []addr.VA
}

// Func is a synthetic function: a contiguous code range holding an ordered
// list of branch sites and an implicit return.
type Func struct {
	// Index is the function's position in Program.Funcs.
	Index int
	// Entry is the first instruction of the function.
	Entry addr.VA
	// RetPC is the return instruction address (after the last site's block).
	RetPC addr.VA
	// RetBlockLen is the size of the block ending at the return.
	RetBlockLen uint16
	// Sites are the function's branch sites in address order.
	Sites []Site
	// Region is the region index the function lives in.
	Region int
}

// Program is a fully synthesized static application.
type Program struct {
	Cfg Config
	// Funcs is the function list; dispatch weights are Zipf over this order
	// (index 0 is the hottest function).
	Funcs []*Func
	// RegionIDs are the distinct 27-bit region identifiers in use
	// (index 0 is the driver's region).
	RegionIDs []addr.RegionID
	// DriverCallPC / DriverLoopPC form the dispatch loop that drives
	// execution: an indirect call followed by a loop-back conditional.
	DriverCallPC    addr.VA
	DriverCallBlock addr.VA
	DriverLoopPC    addr.VA
}

// StaticBranchCount returns the number of static sites including returns and
// the driver's two sites.
func (p *Program) StaticBranchCount() int {
	n := 2 // driver call + driver loop
	for _, f := range p.Funcs {
		n += len(f.Sites) + 1 // + return
	}
	return n
}

// NewProgram synthesizes the static structure of an application.
func NewProgram(cfg Config) (*Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	layoutRNG := src.Fork(1)
	siteRNG := src.Fork(2)

	nf := cfg.NumFunctions()
	p := &Program{Cfg: cfg}

	// --- Regions. Functions are grouped into contiguous runs that share a
	// region, like libraries. Region IDs are random 27-bit values (ASLR),
	// so regions are separated by huge distances.
	funcBytes := float64(cfg.SitesPerFunc*cfg.BlockLenMean*isa.InstrBytes) * cfg.PageSpread
	totalPages := int(float64(nf)*funcBytes/4096) + 1
	numRegions := (totalPages + cfg.PagesPerRegion - 1) / cfg.PagesPerRegion
	if numRegions < 2 {
		numRegions = 2
	}
	// Applications traverse very few regions (paper: regions are ~100×
	// rarer than pages, and the 4-entry Region-BTB suffices). Large code
	// footprints therefore use *denser* regions rather than more of them.
	if numRegions > 6 {
		numRegions = 6
	}
	seen := make(map[uint64]bool)
	for len(p.RegionIDs) < numRegions+1 { // +1 for the driver region
		id := layoutRNG.Uint64() & ((1 << addr.RegionBits) - 1)
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		p.RegionIDs = append(p.RegionIDs, addr.RegionID(id))
	}

	// --- Driver: its own page in region 0.
	driverBase := addr.Build(p.RegionIDs[0], 8, 0)
	p.DriverCallBlock = driverBase
	p.DriverCallPC = driverBase.Add(3 * isa.InstrBytes) // 4-instr block
	p.DriverLoopPC = p.DriverCallPC.Add(3 * isa.InstrBytes)

	// --- Function placement. Functions are packed at byte granularity —
	// several small functions share a page, which is what produces the
	// paper's ~18 branch targets per page — with PageSpread-controlled gaps
	// between them, and occasional page-skips that leave unused pages
	// (sparse address-space population).
	p.Funcs = make([]*Func, 0, nf)
	region := 1
	cursor := uint64(2 * 4096) // byte offset within the region; low pages unused
	startPage := cursor >> 12
	for i := 0; i < nf; i++ {
		if int(cursor>>12-startPage) >= cfg.PagesPerRegion && region < numRegions {
			region++
			cursor = uint64(2+layoutRNG.Intn(8)) * 4096
			startPage = cursor >> 12
		}
		f := &Func{Index: i, Region: region}
		f.Entry = addr.Build(p.RegionIDs[region], addr.PageNum(cursor>>12), addr.PageOffset(cursor&0xfff))
		sites := cfg.SitesPerFunc/2 + layoutRNG.Intn(cfg.SitesPerFunc) // ~SitesPerFunc mean
		if sites < 2 {
			sites = 2
		}
		buildFunctionBody(cfg, siteRNG, f, sites)
		p.Funcs = append(p.Funcs, f)

		fnBytes := uint64(f.RetPC-f.Entry) + isa.InstrBytes
		gap := uint64(float64(fnBytes)*(cfg.PageSpread-1)) + uint64(layoutRNG.Intn(16))*isa.InstrBytes
		cursor += (fnBytes + gap + 3) &^ 3
		if layoutRNG.Bool(0.08) {
			// Skip ahead a few pages, leaving a hole.
			cursor = (cursor>>12 + uint64(1+layoutRNG.Intn(4))) << 12
		}
		if cursor>>12 >= (1<<addr.PageBits)-64 {
			// Region overflow (extremely spread layouts): move on.
			region++
			if region > numRegions {
				return nil, fmt.Errorf("workload %s: layout overflow, too few regions", cfg.Name)
			}
			cursor = 2 * 4096
			startPage = cursor >> 12
		}
	}

	// Wire call targets now that all entries exist.
	wireCalls(cfg, siteRNG, p)
	return p, nil
}

// buildFunctionBody lays out nSites blocks contiguously from f.Entry and
// assigns branch kinds and intra-function targets.
func buildFunctionBody(cfg Config, r *rng.Source, f *Func, nSites int) {
	f.Sites = make([]Site, nSites)
	pos := f.Entry
	for i := 0; i < nSites; i++ {
		bl := uint16(r.Geometric(1/float64(cfg.BlockLenMean), 24))
		if bl < 2 {
			bl = 2
		}
		s := &f.Sites[i]
		s.BlockStart = pos
		s.BlockLen = bl
		s.PC = pos.Add(uint64(bl-1) * isa.InstrBytes)
		s.LoopTo, s.SkipTo, s.Callee = -1, -1, -1
		pos = s.PC.Add(isa.InstrBytes)
	}
	f.RetBlockLen = 2
	f.RetPC = pos.Add(uint64(f.RetBlockLen-1) * isa.InstrBytes)

	// Kind assignment and intra-function targets.
	for i := range f.Sites {
		s := &f.Sites[i]
		switch {
		case r.Bool(cfg.CondFrac):
			s.Kind = isa.CondDirect
			assignCondTarget(cfg, r, f, i)
		case r.Bool(cfg.CallFrac):
			if r.Bool(cfg.IndirectFrac) {
				s.Kind = isa.IndirectCall
			} else {
				s.Kind = isa.DirectCall
			}
			// Targets wired in wireCalls.
		default:
			switch {
			case r.Bool(cfg.IndirectFrac) && i < len(f.Sites)-1:
				s.Kind = isa.IndirectJump
				assignIndirectJump(r, f, i)
			case i < len(f.Sites)-1:
				s.Kind = isa.UncondDirect
				assignUncondTarget(r, f, i)
			default:
				// The last site falls through to the return block; an
				// unconditional jump there would be a no-op jump to its own
				// fallthrough, so make it a biased conditional instead.
				s.Kind = isa.CondDirect
				assignCondTarget(cfg, r, f, i)
			}
		}
	}
}

// assignCondTarget makes site i a loop back-edge or a forward conditional
// and picks its target, honouring SamePageBias and ShareTargets.
func assignCondTarget(cfg Config, r *rng.Source, f *Func, i int) {
	s := &f.Sites[i]
	if i > 0 && r.Bool(cfg.LoopFrac) {
		// Loop back-edge to an earlier site, preferring a nearby one (tight
		// inner loops) which also keeps the target in the same page.
		back := 1 + r.Geometric(0.5, i)
		if back > i {
			back = i
		}
		j := i - back
		if r.Bool(cfg.SamePageBias) {
			// Pull the back target into the same page if the preferred one
			// crossed a boundary.
			for j < i && !f.Sites[j].BlockStart.SamePage(s.PC) {
				j++
			}
			if j == i {
				j = i - back
			}
		}
		s.LoopTo = j
		s.Target = f.Sites[j].BlockStart
		// Trip counts are mostly stable per site (loop bounds rarely change
		// between invocations), which lets history predictors learn exits.
		s.TripMean = 1 + r.Geometric(1/float64(cfg.TripMean), 16*cfg.TripMean)
		return
	}
	// Forward conditional: bimodal bias. Most conditionals are strongly
	// biased (well-predicted by TAGE); a small fraction are genuinely
	// data-dependent coin flips.
	switch {
	case r.Bool(cfg.BiasTakenFrac):
		s.TakenP = 0.99
	case r.Bool(cfg.BiasNotFrac / (1 - cfg.BiasTakenFrac)):
		// Error-handling/guard branches: execute often, almost never taken.
		s.TakenP = 0.004
	default:
		s.TakenP = 0.3 + 0.4*r.Float64()
	}
	s.Target = pickForwardTarget(cfg, r, f, i)
}

// assignUncondTarget gives an unconditional jump a short forward skip of at
// least two blocks (a one-block skip would target the jump's own
// fallthrough, which no compiler emits).
func assignUncondTarget(r *rng.Source, f *Func, i int) {
	s := &f.Sites[i]
	j := i + 1 + r.Geometric(0.6, 3)
	if j < len(f.Sites) {
		s.SkipTo = j
		s.Target = f.Sites[j].BlockStart
		return
	}
	// Jump over the remaining sites straight to the return block.
	s.Target = f.RetPC.Add(-uint64((f.RetBlockLen - 1) * isa.InstrBytes))
	s.SkipTo = len(f.Sites) // sentinel: proceed to return
}

// assignIndirectJump gives a switch-style site 2..6 forward destinations.
func assignIndirectJump(r *rng.Source, f *Func, i int) {
	s := &f.Sites[i]
	n := 2 + r.Intn(5)
	for k := 0; k < n; k++ {
		j := i + 1 + r.Intn(len(f.Sites)-i-1)
		s.JumpTo = append(s.JumpTo, j)
		s.JumpTargets = append(s.JumpTargets, f.Sites[j].BlockStart)
	}
}

// pickForwardTarget selects a non-redirecting conditional target: same-page
// with probability SamePageBias, shared with probability ShareTargets.
func pickForwardTarget(cfg Config, r *rng.Source, f *Func, i int) addr.VA {
	s := &f.Sites[i]
	// Share an existing conditional target in this function when possible.
	if r.Bool(cfg.ShareTargets) {
		for tries := 0; tries < 4; tries++ {
			j := r.Intn(len(f.Sites))
			t := f.Sites[j].Target
			if j != i && t != 0 && f.Sites[j].Kind == isa.CondDirect {
				if !r.Bool(cfg.SamePageBias) || t.SamePage(s.PC) {
					return t
				}
			}
		}
	}
	if r.Bool(cfg.SamePageBias) {
		// A block start shortly after i, same page if one exists.
		for d := 1; d <= 4 && i+d < len(f.Sites); d++ {
			if f.Sites[i+d].BlockStart.SamePage(s.PC) {
				return f.Sites[i+d].BlockStart
			}
		}
		// Fall back to an instruction-aligned address elsewhere in the
		// branch's own page.
		return s.PC.WithOffset((s.PC.Offset() + addr.PageOffset(isa.InstrBytes*uint64(1+r.Intn(64)))) & 0xfff &^ 3)
	}
	// Cross-page target: a later site's block in this function, or the
	// return block.
	for d := 1; d <= 8 && i+d < len(f.Sites); d++ {
		if !f.Sites[i+d].BlockStart.SamePage(s.PC) {
			return f.Sites[i+d].BlockStart
		}
	}
	return f.RetPC
}

// wireCalls assigns callees to all call sites across the program. Direct
// calls prefer same-region callees except for CrossRegionCallFrac library
// calls; indirect calls get 2..6 candidate callees. Hot functions (low
// indices) are preferred, concentrating the dynamic call graph.
func wireCalls(cfg Config, r *rng.Source, p *Program) {
	nf := len(p.Funcs)
	// Cross-region calls concentrate on the first couple of regions (the
	// hot shared libraries): real call graphs route cross-library traffic
	// through a small service core, which is what keeps the dynamic region
	// working set tiny even when calls cross regions constantly.
	hotSpan := nf
	for _, f := range p.Funcs {
		if f.Region > 2 {
			hotSpan = f.Index
			break
		}
	}
	// Functions are laid out sequentially, so each region owns a contiguous
	// index span; same-region picks draw directly from the caller's span
	// (an accept-reject loop over all functions would leak calls into
	// random regions and thrash the 4-entry Region-BTB).
	spanStart := make(map[int]int)
	spanEnd := make(map[int]int)
	for _, f := range p.Funcs {
		if _, ok := spanStart[f.Region]; !ok {
			spanStart[f.Region] = f.Index
		}
		spanEnd[f.Region] = f.Index + 1
	}
	pick := func(from *Func) int {
		for tries := 0; ; tries++ {
			// Frontend-bound applications have famously flat profiles: the
			// call graph fans out broadly instead of funnelling into a tiny
			// hot core, which is exactly what makes their branch working
			// sets exceed the BTB.
			u := r.Float64()
			if r.Bool(cfg.CrossRegionCallFrac) {
				// Cross-region: land uniformly in the hot-library span.
				j := int(u * float64(hotSpan))
				if j >= nf {
					j = nf - 1
				}
				if j != from.Index {
					return j
				}
				continue
			}
			lo, hi := spanStart[from.Region], spanEnd[from.Region]
			j := lo + int(u*float64(hi-lo))
			if j >= hi {
				j = hi - 1
			}
			if j != from.Index {
				return j
			}
			if hi-lo <= 1 || tries > 8 {
				return (j + 1) % nf
			}
		}
	}
	for _, f := range p.Funcs {
		for i := range f.Sites {
			s := &f.Sites[i]
			switch s.Kind {
			case isa.DirectCall:
				s.Callee = pick(f)
				s.Target = p.Funcs[s.Callee].Entry
			case isa.IndirectCall:
				n := 2 + r.Intn(5)
				for k := 0; k < n; k++ {
					s.Callees = append(s.Callees, pick(f))
				}
			}
		}
	}
}

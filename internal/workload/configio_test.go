package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestConfigFromJSONPartial(t *testing.T) {
	in := `{"Name": "custom", "StaticBranches": 30000, "SamePageBias": 0.5}`
	cfg, err := ConfigFromJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "custom" || cfg.StaticBranches != 30000 || cfg.SamePageBias != 0.5 {
		t.Errorf("overridden fields wrong: %+v", cfg)
	}
	// Unmentioned fields keep defaults.
	d := Default()
	if cfg.TripMean != d.TripMean || cfg.BlockLenMean != d.BlockLenMean {
		t.Errorf("defaults not preserved: %+v", cfg)
	}
}

func TestConfigFromJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"Name": ""}`,               // fails Validate
		`{"SamePageBias": 1.5}`,      // out of range
		`{"NoSuchField": 1}`,         // unknown field
		`{"StaticBranches": "lots"}`, // wrong type
		`{`,                          // malformed
	}
	for _, in := range cases {
		if _, err := ConfigFromJSON(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	want := Default()
	want.Name = "roundtrip"
	want.StaticBranches = 12345
	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ConfigFromJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestLoadConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "app.json")
	if err := os.WriteFile(path, []byte(`{"Name":"filed","StaticBranches":5000}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "filed" {
		t.Errorf("loaded %+v", cfg)
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// A loaded custom config must actually run end-to-end.
func TestLoadedConfigBuilds(t *testing.T) {
	cfg, err := ConfigFromJSON(strings.NewReader(`{"Name":"mini","StaticBranches":1500}`))
	if err != nil {
		t.Fatal(err)
	}
	_, tr, err := Build(cfg, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Instructions() < 60_000 {
		t.Errorf("trace too short: %d", tr.Instructions())
	}
}

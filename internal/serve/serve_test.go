package serve_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testConfig is a small, fast service configuration shared by the tests:
// a 512-entry baseline BTB and tiny timeouts so failure paths run in
// milliseconds.
func testConfig(t *testing.T) serve.Config {
	t.Helper()
	return serve.Config{
		Design:     experiments.BaselineDesign("baseline-512", 512),
		Workers:    2,
		RetryAfter: time.Millisecond, // floors to a 0s header: tests rely on client backoff
	}
}

func startServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func newTestClient(url string) *client.Client {
	return client.New(client.Options{
		BaseURL:     url,
		Retries:     20,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		Seed:        42,
	})
}

// testRecords builds a deterministic synthetic branch stream.
func testRecords(t *testing.T, seed uint64, n int) []isa.Branch {
	t.Helper()
	cfg := workload.Default()
	cfg.Seed = seed
	cfg.StaticBranches = 400
	_, tr, err := workload.Build(cfg, uint64(n)*12+20_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) < n {
		t.Fatalf("workload built %d records, need %d", len(tr.Records), n)
	}
	return tr.Records[:n]
}

// offlineDigest replays recs through a fresh offline session built from the
// same service config and returns the result digest plus the result.
func offlineDigest(t *testing.T, cfg serve.Config, name string, recs []isa.Branch) (string, core.Result) {
	t.Helper()
	se, err := cfg.NewSession(name)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(recs); {
		n, _, err := se.Apply(recs[pos:])
		if err != nil {
			t.Fatal(err)
		}
		pos += n
	}
	snap := se.Snapshot()
	return serve.ResultDigest(&snap), snap
}

// encodeBatch serializes records the way the client does, for raw HTTP
// tests that bypass the client package.
func encodeBatch(t *testing.T, name string, recs []isa.Branch) []byte {
	t.Helper()
	var buf bytes.Buffer
	src := &trace.Memory{TraceName: name, Records: recs}
	if err := trace.Write(&buf, name, src.Open()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBatchStreamMatchesOffline is the core served-vs-offline contract:
// streaming a trace in batches through HTTP must produce bit-identical
// rolling results to an offline core.Session replay.
func TestBatchStreamMatchesOffline(t *testing.T) {
	cfg := testConfig(t)
	_, ts := startServer(t, cfg)
	c := newTestClient(ts.URL)
	recs := testRecords(t, 1, 3000)

	var last *serve.BatchAck
	const batch = 500
	for seq, pos := uint64(1), 0; pos < len(recs); seq++ {
		end := pos + batch
		if end > len(recs) {
			end = len(recs)
		}
		ack, err := c.SendBatch(context.Background(), "alpha", seq, recs[pos:end])
		if err != nil {
			t.Fatalf("batch %d: %v", seq, err)
		}
		if ack.Records != end-pos {
			t.Fatalf("batch %d applied %d records, want %d", seq, ack.Records, end-pos)
		}
		last = ack
		pos = end
	}
	wantDigest, want := offlineDigest(t, cfg, "alpha", recs)
	if last.Digest != wantDigest {
		t.Errorf("served digest %s != offline %s", last.Digest, wantDigest)
	}
	if last.TotalRecords != uint64(len(recs)) {
		t.Errorf("TotalRecords = %d, want %d", last.TotalRecords, len(recs))
	}
	if last.MPKI != want.BTBMPKI() || last.IPC != want.IPC() {
		t.Errorf("rolling metrics diverge: got (%g, %g), want (%g, %g)",
			last.MPKI, last.IPC, want.BTBMPKI(), want.IPC())
	}

	st, err := c.Stats(context.Background(), "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if st.Digest != wantDigest || st.NextSeq != last.Seq+1 {
		t.Errorf("stats = %+v, want digest %s next_seq %d", st, wantDigest, last.Seq+1)
	}
}

// TestExactlyOnce resends an applied batch and checks it is acknowledged
// from cache without re-training the simulator.
func TestExactlyOnce(t *testing.T) {
	cfg := testConfig(t)
	_, ts := startServer(t, cfg)
	c := newTestClient(ts.URL)
	recs := testRecords(t, 2, 400)

	first, err := c.SendBatch(context.Background(), "dup", 1, recs[:200])
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.SendBatch(context.Background(), "dup", 1, recs[:200])
	if err != nil {
		t.Fatal(err)
	}
	if !again.Duplicate || again.Records != 0 {
		t.Fatalf("retransmit not detected: %+v", again)
	}
	if again.Digest != first.Digest || again.TotalRecords != first.TotalRecords {
		t.Errorf("duplicate ack carries different state: %+v vs %+v", again, first)
	}
	second, err := c.SendBatch(context.Background(), "dup", 2, recs[200:])
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, _ := offlineDigest(t, cfg, "dup", recs)
	if second.Digest != wantDigest {
		t.Errorf("digest after retransmit %s != offline %s (double-applied?)", second.Digest, wantDigest)
	}
}

// TestGapRejected: skipping ahead must be a terminal ordering error.
func TestGapRejected(t *testing.T) {
	_, ts := startServer(t, testConfig(t))
	c := newTestClient(ts.URL)
	recs := testRecords(t, 3, 100)
	_, err := c.SendBatch(context.Background(), "gappy", 5, recs)
	var se *client.Err
	if !errors.As(err, &se) || se.Body.Code != serve.CodeGap || se.Body.Retryable {
		t.Fatalf("err = %v, want non-retryable %s", err, serve.CodeGap)
	}
}

// TestPanicIsolationAndQuarantine injects simulator panics for one tenant
// and checks: the crash is contained (other tenants unaffected), the
// crashed batch is never applied, state rebuilds from the journal, and the
// tenant quarantines after the configured crash count.
func TestPanicIsolationAndQuarantine(t *testing.T) {
	cfg := testConfig(t)
	cfg.QuarantineAfter = 2
	cfg.ApplyHook = func(tenant string, seq uint64) {
		if tenant == "victim" && seq == 2 {
			panic("injected simulator bug")
		}
	}
	_, ts := startServer(t, cfg)
	c := newTestClient(ts.URL)
	recs := testRecords(t, 4, 600)

	if _, err := c.SendBatch(context.Background(), "victim", 1, recs[:200]); err != nil {
		t.Fatal(err)
	}
	// First crash: contained, not applied, not retryable.
	_, err := c.SendBatch(context.Background(), "victim", 2, recs[200:400])
	var se *client.Err
	if !errors.As(err, &se) || se.Body.Code != serve.CodeCrashed {
		t.Fatalf("err = %v, want %s", err, serve.CodeCrashed)
	}
	// The bystander tenant is untouched by the victim's crash.
	if _, err := c.SendBatch(context.Background(), "bystander", 1, recs[:200]); err != nil {
		t.Fatalf("crash leaked across tenants: %v", err)
	}
	// The victim's state survived: batch 1 is still there, rebuilt from
	// the journal, bit-identical to an offline replay.
	st, err := c.Stats(context.Background(), "victim")
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, _ := offlineDigest(t, cfg, "victim", recs[:200])
	if st.Digest != wantDigest || st.NextSeq != 2 || st.Crashes != 1 {
		t.Errorf("post-crash stats %+v, want digest %s next_seq 2 crashes 1", st, wantDigest)
	}
	// Second crash trips quarantine; further batches are refused.
	if _, err := c.SendBatch(context.Background(), "victim", 2, recs[200:400]); err == nil {
		t.Fatal("second crash not reported")
	}
	_, err = c.SendBatch(context.Background(), "victim", 2, recs[400:600])
	if !errors.As(err, &se) || se.Body.Code != serve.CodeQuarantined || se.Body.Retryable {
		t.Fatalf("err = %v, want non-retryable %s", err, serve.CodeQuarantined)
	}
}

// TestTruncatedUploadRetries injects a mid-stream truncation into the
// first attempt's body; the server must apply nothing, answer a retryable
// error, and the clean retry must succeed with unchanged results.
func TestTruncatedUploadRetries(t *testing.T) {
	cfg := testConfig(t)
	_, ts := startServer(t, cfg)
	recs := testRecords(t, 5, 300)
	c := client.New(client.Options{
		BaseURL:     ts.URL,
		Retries:     5,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        7,
		Fault: func(tenant string, seq uint64, attempt int) trace.FaultPlan {
			if attempt == 0 {
				return trace.FaultPlan{TruncateAt: 50}
			}
			return trace.FaultPlan{}
		},
	})
	ack, err := c.SendBatch(context.Background(), "chopped", 1, recs)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Duplicate {
		t.Error("truncated attempt must not have applied")
	}
	wantDigest, _ := offlineDigest(t, cfg, "chopped", recs)
	if ack.Digest != wantDigest {
		t.Errorf("digest %s != offline %s", ack.Digest, wantDigest)
	}
}

// TestBackpressure fills the single worker and its depth-1 queue, then
// checks the next batch is refused with 429 + Retry-After instead of
// queueing unboundedly.
func TestBackpressure(t *testing.T) {
	var gate atomic.Bool
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.ApplyHook = func(string, uint64) {
		for gate.Load() {
			time.Sleep(time.Millisecond)
		}
	}
	gate.Store(true)
	_, ts := startServer(t, cfg)
	recs := testRecords(t, 6, 50)

	post := func(tenant string) *http.Response {
		body := encodeBatch(t, tenant, recs)
		resp, err := http.Post(
			fmt.Sprintf("%s/v1/tenants/%s/batches/1", ts.URL, tenant),
			"application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// First batch occupies the worker; second fills the queue.
	done := make(chan *http.Response, 2)
	go func() { done <- post("w1") }()
	time.Sleep(50 * time.Millisecond)
	go func() { done <- post("w2") }()
	time.Sleep(50 * time.Millisecond)

	resp := post("w3")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get(serve.RetryAfterHeader) == "" {
		t.Error("429 without a Retry-After hint")
	}
	gate.Store(false)
	for i := 0; i < 2; i++ {
		r := <-done
		if r.StatusCode != http.StatusOK {
			t.Errorf("queued batch finished with %d, want 200", r.StatusCode)
		}
		r.Body.Close()
	}
}

// TestDeadlineThenDuplicate: a slow apply misses the request deadline
// (504, retryable); the retry of the same sequence number is acknowledged
// as a duplicate once the batch lands.
func TestDeadlineThenDuplicate(t *testing.T) {
	cfg := testConfig(t)
	cfg.RequestTimeout = 20 * time.Millisecond
	var slow atomic.Bool
	slow.Store(true)
	cfg.ApplyHook = func(string, uint64) {
		if slow.CompareAndSwap(true, false) {
			time.Sleep(80 * time.Millisecond)
		}
	}
	_, ts := startServer(t, cfg)
	c := client.New(client.Options{
		BaseURL:     ts.URL,
		Retries:     20,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
		Seed:        9,
	})
	recs := testRecords(t, 7, 200)
	ack, err := c.SendBatch(context.Background(), "tardy", 1, recs)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Duplicate {
		t.Log("note: first attempt won the race; duplicate path not exercised this run")
	}
	if ack.TotalRecords != uint64(len(recs)) {
		t.Errorf("TotalRecords = %d, want %d (batch lost or double-applied)", ack.TotalRecords, len(recs))
	}
	wantDigest, _ := offlineDigest(t, cfg, "tardy", recs)
	st, err := c.Stats(context.Background(), "tardy")
	if err != nil {
		t.Fatal(err)
	}
	if st.Digest != wantDigest {
		t.Errorf("digest %s != offline %s", st.Digest, wantDigest)
	}
}

// TestShedAndRestore drives more tenants than the resident cap allows and
// checks idle state is checkpointed out, restored on demand, and still
// bit-identical to offline replay afterwards.
func TestShedAndRestore(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.MaxResidentTenants = 2
	cfg.CheckpointDir = t.TempDir()
	_, ts := startServer(t, cfg)
	c := newTestClient(ts.URL)

	tenants := []string{"s-a", "s-b", "s-c", "s-d"}
	perTenant := make(map[string][]isa.Branch)
	for i, name := range tenants {
		perTenant[name] = testRecords(t, uint64(100+i), 400)
	}
	for _, name := range tenants {
		if _, err := c.SendBatch(context.Background(), name, 1, perTenant[name][:200]); err != nil {
			t.Fatalf("%s batch 1: %v", name, err)
		}
	}
	// A second round touches every tenant again: the ones shed in between
	// must restore from checkpoint transparently.
	for _, name := range tenants {
		ack, err := c.SendBatch(context.Background(), name, 2, perTenant[name][200:])
		if err != nil {
			t.Fatalf("%s batch 2: %v", name, err)
		}
		wantDigest, _ := offlineDigest(t, cfg, name, perTenant[name])
		if ack.Digest != wantDigest {
			t.Errorf("%s digest %s != offline %s after shed/restore", name, ack.Digest, wantDigest)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, metric := range []string{"pdede_serve_tenants_shed_total", "pdede_serve_tenants_restored_total"} {
		if !metricAtLeast(body, metric, 1) {
			t.Errorf("expected %s >= 1 with a resident cap of 2 and 4 tenants\n%s", metric, body)
		}
	}
}

// metricAtLeast parses one un-labelled counter line out of the exposition.
func metricAtLeast(body, name string, min int) bool {
	for _, line := range strings.Split(body, "\n") {
		var v int
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v >= min
		}
	}
	return false
}

// TestConfigDigestGuardsCheckpoints: a server with a different design must
// refuse another server's checkpoints instead of replaying a journal into
// the wrong simulator.
func TestConfigDigestGuardsCheckpoints(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	cfg.CheckpointDir = dir
	s1, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	c := newTestClient(ts1.URL)
	recs := testRecords(t, 8, 200)
	if _, err := c.SendBatch(context.Background(), "pinned", 1, recs); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	other := testConfig(t)
	other.Design = experiments.BaselineDesign("baseline-1024", 1024)
	other.CheckpointDir = dir
	_, ts2 := startServer(t, other)
	c2 := newTestClient(ts2.URL)
	_, err = c2.SendBatch(context.Background(), "pinned", 2, recs)
	var se *client.Err
	if !errors.As(err, &se) || se.Body.Code != serve.CodeCheckpoint || se.Body.Retryable {
		t.Fatalf("err = %v, want non-retryable %s", err, serve.CodeCheckpoint)
	}
}

// TestBadRequests pins the validation surface.
func TestBadRequests(t *testing.T) {
	_, ts := startServer(t, testConfig(t))
	recs := testRecords(t, 9, 20)
	body := encodeBatch(t, "x", recs)
	cases := []struct {
		name string
		url  string
		body []byte
		want int
	}{
		{"bad tenant", "/v1/tenants/..sneaky/batches/1", body, http.StatusBadRequest},
		{"bad seq", "/v1/tenants/ok/batches/zero", body, http.StatusBadRequest},
		{"seq zero", "/v1/tenants/ok/batches/0", body, http.StatusBadRequest},
		{"empty body", "/v1/tenants/ok/batches/1", nil, http.StatusBadRequest},
		{"garbage body", "/v1/tenants/ok/batches/1", []byte("not a trace"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, "application/octet-stream", bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// An unknown tenant has no stats.
	resp, err := http.Get(ts.URL + "/v1/tenants/ghost/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("stats for unknown tenant: %d, want 404", resp.StatusCode)
	}
}

// TestHealthEndpoints checks liveness vs readiness split across drain.
func TestHealthEndpoints(t *testing.T) {
	s, ts := startServer(t, testConfig(t))
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz = %d", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("readyz = %d", got)
	}
	s.BeginDrain()
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200 (still alive)", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", got)
	}
	recs := testRecords(t, 10, 20)
	resp, err := http.Post(ts.URL+"/v1/tenants/late/batches/1",
		"application/octet-stream", bytes.NewReader(encodeBatch(t, "late", recs)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("batch while draining = %d, want 503", resp.StatusCode)
	}
}

package loadtest

import (
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
)

// TestChaosLoad runs the full chaos scenario: many concurrent tenants,
// stalling and truncating uploads, and one mid-run drain/restart cycle.
// The tier-1 default keeps the tenant count modest; `make serve-load` (and
// the nightly chaos job) sets PDEDE_LOADTEST_TENANTS=1000 for the
// acceptance-scale run.
func TestChaosLoad(t *testing.T) {
	tenants := 120
	if s := os.Getenv("PDEDE_LOADTEST_TENANTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad PDEDE_LOADTEST_TENANTS=%q", s)
		}
		tenants = n
	}
	rep, err := Run(Options{
		Config: serve.Config{
			Design:     experiments.BaselineDesign("baseline-512", 512),
			Workers:    8,
			QueueDepth: 256,
			RetryAfter: time.Millisecond,
		},
		Tenants:      tenants,
		Batches:      3,
		BatchRecords: 120,
		Seed:         1,
		Restart:      true,
		Log:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TruncationsInjected == 0 || rep.StallsInjected == 0 {
		t.Errorf("chaos did not fire: %s", rep)
	}
	if rep.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", rep.Restarts)
	}
	// Every truncated upload forces at least one retry.
	if rep.Attempts < rep.Batches+rep.TruncationsInjected {
		t.Errorf("attempts %d too low for %d batches with %d truncations",
			rep.Attempts, rep.Batches, rep.TruncationsInjected)
	}
}

// TestRunRejectsMissingDesign pins the harness's own validation.
func TestRunRejectsMissingDesign(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("Run accepted a zero Options")
	}
}

// Package loadtest is the chaos harness for pdede-serve: it drives many
// synthetic tenants through a live server while injecting the failures the
// service is engineered for — stalling uploads, mid-stream truncation, and
// a full drain/restart cycle — then proves the invariants that matter:
//
//   - zero lost batches: every tenant's final TotalRecords is exact;
//   - zero double-applied batches: retried sequence numbers are
//     acknowledged as duplicates, never re-trained;
//   - bit-identical results: every tenant's final digest equals an
//     offline core.Session replay of the same records.
//
// The harness is deterministic end to end: tenant traces come from
// internal/workload seeded per tenant, client backoff jitter comes from
// internal/rng, and faults are assigned by tenant index — a rerun with
// the same options injects the same chaos.
package loadtest

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/isa"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options configures one chaos run.
type Options struct {
	// Config is the service configuration; Design is required. When
	// Restart is set and CheckpointDir is empty, a temporary directory is
	// created and removed afterwards.
	Config serve.Config
	// Tenants is the number of synthetic tenants (default 100).
	Tenants int
	// Batches per tenant (default 3) of BatchRecords records each
	// (default 120).
	Batches      int
	BatchRecords int
	// Seed derives every tenant's trace and the client backoff jitter.
	Seed uint64
	// Concurrency bounds simultaneously streaming tenants (default 64).
	Concurrency int
	// Restart, when set, drains and restarts the server once, mid-run,
	// after roughly half of all batches have been acknowledged — the
	// SIGTERM/restart cycle from the service's point of view.
	Restart bool
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// Report summarizes a completed run. All invariants already held if the
// run returned no error; the report carries the fault and latency tallies.
type Report struct {
	Tenants, Batches, Records int
	// Attempts counts HTTP attempts for batch uploads; Attempts minus
	// acknowledged batches is the retry volume the faults induced.
	Attempts int
	// StallsInjected and TruncationsInjected count fault-carrying attempts.
	StallsInjected      int
	TruncationsInjected int
	// DuplicateAcks counts batches acknowledged from the server's
	// exactly-once cache rather than applied (a retry whose first attempt
	// had actually landed).
	DuplicateAcks int
	Restarts      int
	Elapsed       time.Duration
	// Batch-upload latency distribution (includes retries and backoff).
	P50, P90, P99, Max time.Duration
}

func (r *Report) String() string {
	return fmt.Sprintf(
		"tenants=%d batches=%d records=%d attempts=%d dup_acks=%d stalls=%d truncations=%d restarts=%d elapsed=%v p50=%v p90=%v p99=%v max=%v",
		r.Tenants, r.Batches, r.Records, r.Attempts, r.DuplicateAcks,
		r.StallsInjected, r.TruncationsInjected, r.Restarts, r.Elapsed.Round(time.Millisecond),
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
}

// noDeadline: batch deadlines are the server's job here; the harness
// bounds the run by retry counts instead.
var noDeadline = context.Background()

// tenantName is the synthetic tenant naming scheme.
func tenantName(i int) string { return fmt.Sprintf("t%05d", i) }

// faultFor assigns chaos by tenant index: every 5th tenant (offset 1)
// truncates its first batch's first attempt mid-stream; every 5th (offset
// 2) stalls repeatedly while uploading its middle batch — a slow client
// holding a handler goroutine. Retries are always clean.
func faultFor(i, batches int, stalls, truncs *atomic.Int64) func(string, uint64, int) trace.FaultPlan {
	mid := uint64(batches)/2 + 1
	return func(_ string, seq uint64, attempt int) trace.FaultPlan {
		if attempt != 0 {
			return trace.FaultPlan{}
		}
		switch i % 5 {
		case 1:
			if seq == 1 {
				truncs.Add(1)
				return trace.FaultPlan{TruncateAt: 40}
			}
		case 2:
			if seq == mid {
				stalls.Add(1)
				return trace.FaultPlan{StallAt: 10, StallEvery: 25, StallFor: 2 * time.Millisecond}
			}
		}
		return trace.FaultPlan{}
	}
}

// buildRecords generates tenant i's deterministic trace.
func buildRecords(seed uint64, i, n int) ([]isa.Branch, error) {
	cfg := workload.Default()
	cfg.Seed = seed ^ uint64(i)*0x9e3779b97f4a7c15
	cfg.StaticBranches = 300
	_, tr, err := workload.Build(cfg, uint64(n)*12+20_000)
	if err != nil {
		return nil, err
	}
	if len(tr.Records) < n {
		return nil, fmt.Errorf("loadtest: workload for tenant %d built %d records, need %d", i, len(tr.Records), n)
	}
	return tr.Records[:n], nil
}

// Run executes the chaos scenario and verifies every invariant. A non-nil
// error means an invariant broke (or the harness itself failed); the
// Report is returned alongside whenever the run got far enough to measure.
func Run(opt Options) (*Report, error) {
	if opt.Config.Design.New == nil {
		return nil, fmt.Errorf("loadtest: Options.Config.Design is required")
	}
	if opt.Tenants <= 0 {
		opt.Tenants = 100
	}
	if opt.Batches <= 0 {
		opt.Batches = 3
	}
	if opt.BatchRecords <= 0 {
		opt.BatchRecords = 120
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 64
	}
	logf := opt.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	cfg := opt.Config
	if opt.Restart && cfg.CheckpointDir == "" {
		dir, err := os.MkdirTemp("", "pdede-loadtest-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.CheckpointDir = dir
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	var front atomic.Pointer[serve.Server]
	front.Store(srv)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		front.Load().Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()
	defer func() { front.Load().Close() }()

	var (
		attempts, stalls, truncs, dups atomic.Int64
		acked                          atomic.Int64
		restarts                       atomic.Int64
		restartOnce                    sync.Once
		restartErr                     error
	)
	totalBatches := opt.Tenants * opt.Batches
	maybeRestart := func() {
		if !opt.Restart || acked.Load() < int64(totalBatches/2) {
			return
		}
		restartOnce.Do(func() {
			logf("loadtest: draining and restarting server at %d/%d batches", acked.Load(), totalBatches)
			old := front.Load()
			old.BeginDrain()
			if err := old.Close(); err != nil {
				restartErr = fmt.Errorf("loadtest: drain: %w", err)
				return
			}
			next, err := serve.New(cfg)
			if err != nil {
				restartErr = fmt.Errorf("loadtest: restart: %w", err)
				return
			}
			front.Store(next)
			restarts.Add(1)
			logf("loadtest: server restarted")
		})
	}

	start := time.Now()
	var (
		mu        sync.Mutex
		latencies []time.Duration
		failures  []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(failures) < 20 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}
	sem := make(chan struct{}, opt.Concurrency)
	var wg sync.WaitGroup
	allRecords := make([][]isa.Branch, opt.Tenants)
	for i := 0; i < opt.Tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			name := tenantName(i)
			recs, err := buildRecords(opt.Seed, i, opt.Batches*opt.BatchRecords)
			if err != nil {
				fail("%v", err)
				return
			}
			allRecords[i] = recs
			fault := faultFor(i, opt.Batches, &stalls, &truncs)
			c := client.New(client.Options{
				BaseURL:     ts.URL,
				Retries:     100,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  50 * time.Millisecond,
				Seed:        opt.Seed,
				Fault: func(tenant string, seq uint64, attempt int) trace.FaultPlan {
					attempts.Add(1)
					return fault(tenant, seq, attempt)
				},
			})
			tenantLat := make([]time.Duration, 0, opt.Batches)
			for b := 0; b < opt.Batches; b++ {
				batch := recs[b*opt.BatchRecords : (b+1)*opt.BatchRecords]
				t0 := time.Now()
				ack, err := c.SendBatch(noDeadline, name, uint64(b+1), batch)
				if err != nil {
					fail("%s batch %d: %v", name, b+1, err)
					return
				}
				tenantLat = append(tenantLat, time.Since(t0))
				if ack.Duplicate {
					dups.Add(1)
				} else if ack.Records != len(batch) {
					fail("%s batch %d: applied %d of %d records", name, b+1, ack.Records, len(batch))
					return
				}
				if want := uint64((b + 1) * opt.BatchRecords); ack.TotalRecords != want {
					fail("%s batch %d: TotalRecords %d, want %d (lost or double-applied)",
						name, b+1, ack.TotalRecords, want)
					return
				}
				acked.Add(1)
				maybeRestart()
			}
			mu.Lock()
			latencies = append(latencies, tenantLat...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if restartErr != nil {
		return nil, restartErr
	}
	if opt.Restart && restarts.Load() == 0 {
		return nil, fmt.Errorf("loadtest: restart requested but never triggered")
	}
	if len(failures) > 0 {
		return nil, fmt.Errorf("loadtest: %d invariant violations, first: %s", len(failures), strings.Join(failures, "; "))
	}
	logf("loadtest: traffic done in %v (%d attempts for %d batches); verifying against offline replay", elapsed.Round(time.Millisecond), attempts.Load(), totalBatches)

	if err := verifyOffline(&cfg, ts.URL, opt, allRecords); err != nil {
		return nil, err
	}

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	rep := &Report{
		Tenants:             opt.Tenants,
		Batches:             totalBatches,
		Records:             totalBatches * opt.BatchRecords,
		Attempts:            int(attempts.Load()),
		StallsInjected:      int(stalls.Load()),
		TruncationsInjected: int(truncs.Load()),
		DuplicateAcks:       int(dups.Load()),
		Restarts:            int(restarts.Load()),
		Elapsed:             elapsed,
		P50:                 pct(0.50),
		P90:                 pct(0.90),
		P99:                 pct(0.99),
		Max:                 pct(1.0),
	}
	logf("loadtest: %s", rep)
	return rep, nil
}

// verifyOffline fetches every tenant's authoritative stats and compares
// them against a clean offline core.Session replay of the same records —
// the bit-identical acceptance check. Replays fan out across CPUs.
func verifyOffline(cfg *serve.Config, baseURL string, opt Options, allRecords [][]isa.Branch) error {
	c := client.New(client.Options{
		BaseURL:     baseURL,
		Retries:     20,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Seed:        opt.Seed,
	})
	var (
		mu       sync.Mutex
		failures []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(failures) < 20 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i := range allRecords {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			name := tenantName(i)
			recs := allRecords[i]
			if recs == nil {
				fail("%s: no records generated", name)
				return
			}
			st, err := c.Stats(noDeadline, name)
			if err != nil {
				fail("%s: stats: %v", name, err)
				return
			}
			if st.TotalRecords != uint64(len(recs)) {
				fail("%s: server holds %d records, want %d", name, st.TotalRecords, len(recs))
				return
			}
			se, err := cfg.NewSession(name)
			if err != nil {
				fail("%s: offline session: %v", name, err)
				return
			}
			for pos := 0; pos < len(recs); {
				n, _, err := se.Apply(recs[pos:])
				if err != nil {
					fail("%s: offline replay: %v", name, err)
					return
				}
				pos += n
			}
			snap := se.Snapshot()
			if want := serve.ResultDigest(&snap); st.Digest != want {
				fail("%s: served digest %s != offline %s", name, st.Digest, want)
			}
		}(i)
	}
	wg.Wait()
	if len(failures) > 0 {
		return fmt.Errorf("loadtest: offline verification failed for %d tenants, first: %s",
			len(failures), strings.Join(failures, "; "))
	}
	return nil
}

package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/isa"
)

// tenant is one client's simulation plus the bookkeeping that makes it
// survive crashes, shedding and restarts. The source of truth is the
// journal — the exact sequence of records ever applied — not the simulator:
// the simulator can always be rebuilt by replaying the journal through a
// fresh core.Session, and determinism makes the rebuild bit-identical.
type tenant struct {
	name string

	// pending counts admitted-but-unapplied batches; it is both the
	// per-tenant queue-depth gate and the shedder's activity check.
	pending atomic.Int32
	// touch is the logical-clock stamp of the last request; the shedder
	// evicts the smallest stamps first.
	touch atomic.Uint64

	mu sync.Mutex
	// sess is the live simulator; nil when shed to disk or torn down
	// after a crash (rebuilt on demand by replaying the journal).
	//pdede:guarded-by(mu)
	sess *core.Session
	// journal holds every record ever applied, in order.
	//pdede:guarded-by(mu)
	journal []isa.Branch
	// nextSeq is the next batch to APPLY — the exactly-once watermark,
	// persisted in checkpoints.
	//pdede:guarded-by(mu)
	nextSeq uint64
	// nextAdmit is the next batch to ADMIT to the queue. It runs ahead of
	// nextSeq by the queued batches and resets to nextSeq after a crash.
	//pdede:guarded-by(mu)
	nextAdmit uint64
	// lastAck caches the ack for batch nextSeq-1, answering retries of the
	// most recent batch without touching the simulator.
	//pdede:guarded-by(mu)
	lastAck BatchAck
	//pdede:guarded-by(mu)
	crashes int
	//pdede:guarded-by(mu)
	quarantined bool
	// restored means the on-disk checkpoint has been loaded (or is known
	// absent); false after shedding so the next request reloads.
	//pdede:guarded-by(mu)
	restored bool
	// wantDigest is the checkpointed result digest, verified once against
	// the replayed state on the next rebuild.
	//pdede:guarded-by(mu)
	wantDigest string
}

// apply runs one admitted batch to completion: exactly-once dedup, lazy
// restore/rebuild, the panic-isolated simulator step, journal append, and
// the ack. It is the only writer of nextSeq.
func (t *tenant) apply(s *Server, seq uint64, recs []isa.Branch) reply {
	t.mu.Lock()
	defer t.mu.Unlock()
	defer t.pending.Add(-1)
	if t.quarantined {
		return errReply(http.StatusServiceUnavailable, CodeQuarantined, false,
			"tenant %s is quarantined after %d crashes", t.name, t.crashes)
	}
	if seq < t.nextSeq {
		s.met.duplicates.Add(1)
		return t.duplicateAckLocked(seq)
	}
	if seq != t.nextSeq {
		// A crash rolled nextAdmit back while this batch sat in the queue;
		// it cannot apply over the gap. Retryable: once the client
		// resubmits the missing batch this sequence number admits again.
		return errReply(http.StatusConflict, CodePending, true,
			"batch %d is waiting for batch %d", seq, t.nextSeq)
	}
	if rep := t.ensureSessionLocked(s); rep != nil {
		return *rep
	}

	var hook func()
	if s.cfg.ApplyHook != nil {
		h, name := s.cfg.ApplyHook, t.name
		hook = func() { h(name, seq) }
	}
	n, err := protectedApply(t.sess, hook, recs)
	if err != nil {
		// The session stepped an unknown number of records before failing;
		// discard it. The journal still holds the exact pre-batch state,
		// so the next batch rebuilds from there — the crashing batch was
		// never applied.
		t.sess = nil
		s.resident.Add(-1)
		t.nextAdmit = t.nextSeq
		t.crashes++
		s.met.crashes.Add(1)
		if t.crashes >= s.cfg.QuarantineAfter {
			t.quarantined = true
			s.met.quarantines.Add(1)
			return errReply(http.StatusServiceUnavailable, CodeQuarantined, false,
				"tenant %s quarantined after %d crashes (last: %v)", t.name, t.crashes, err)
		}
		return errReply(http.StatusInternalServerError, CodeCrashed, false,
			"batch %d crashed the simulator: %v", seq, err)
	}
	t.journal = append(t.journal, recs[:n]...)
	t.nextSeq = seq + 1
	ack := t.ackLocked(seq, n)
	t.lastAck = ack
	s.met.batches.Add(1)
	s.met.records.Add(uint64(n))
	return reply{status: http.StatusOK, ack: &ack}
}

// protectedApply is the panic-isolation boundary around the simulator: a
// panicking predictor (or injected test hook) becomes an error confined to
// this tenant instead of taking the process down.
func protectedApply(se *core.Session, hook func(), recs []isa.Branch) (n int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if hook != nil {
		hook()
	}
	n, _, err = se.Apply(recs)
	return n, err
}

// ackLocked builds the ack for batch seq from the live session state.
//
//pdede:guarded-by(mu)
func (t *tenant) ackLocked(seq uint64, n int) BatchAck {
	snap := t.sess.Snapshot()
	return BatchAck{
		Tenant:       t.name,
		Seq:          seq,
		Records:      n,
		TotalRecords: t.sess.Records(),
		Instructions: snap.Instructions,
		MPKI:         snap.BTBMPKI(),
		IPC:          snap.IPC(),
		Digest:       ResultDigest(&snap),
	}
}

// duplicateAckLocked answers a batch that already applied. The most recent
// batch replays its cached full ack; older ones get a thin ack (the client
// already consumed their state long ago).
//
//pdede:guarded-by(mu)
func (t *tenant) duplicateAckLocked(seq uint64) reply {
	if seq == t.nextSeq-1 && t.lastAck.Seq == seq {
		ack := t.lastAck
		ack.Duplicate = true
		ack.Records = 0
		return reply{status: http.StatusOK, ack: &ack}
	}
	return reply{status: http.StatusOK, ack: &BatchAck{Tenant: t.name, Seq: seq, Duplicate: true}}
}

// restoreLocked loads t's on-disk checkpoint the first time the tenant is
// touched after process start or shedding. A missing file means a fresh
// tenant; a checkpoint written under a different configuration is refused
// (the journal would replay into a different simulator).
//
//pdede:guarded-by(mu)
func (t *tenant) restoreLocked(s *Server) *reply {
	if t.restored {
		return nil
	}
	if s.cfg.CheckpointDir == "" {
		t.restored = true
		return nil
	}
	data, err := os.ReadFile(checkpointPath(s.cfg.CheckpointDir, t.name))
	if errors.Is(err, fs.ErrNotExist) {
		t.restored = true
		return nil
	}
	if err != nil {
		rep := errReply(http.StatusInternalServerError, CodeInternal, true,
			"reading checkpoint for %s: %v", t.name, err)
		return &rep
	}
	ck, recs, err := decodeCheckpoint(data, s.digest, t.name)
	if err != nil {
		rep := errReply(http.StatusConflict, CodeCheckpoint, false, "%v", err)
		return &rep
	}
	t.journal = recs
	t.nextSeq = ck.NextSeq
	t.nextAdmit = ck.NextSeq
	t.crashes = ck.Crashes
	t.quarantined = ck.Quarantined
	t.wantDigest = ck.ResultDigest
	t.lastAck = BatchAck{}
	t.restored = true
	s.met.restores.Add(1)
	return nil
}

// ensureSessionLocked (re)builds t's simulator by replaying the journal
// through a fresh core.Session, then verifies the replayed state against
// the checkpointed result digest — a corrupted journal or a simulator
// change slips through the config digest only to be caught here.
//
//pdede:guarded-by(mu)
func (t *tenant) ensureSessionLocked(s *Server) *reply {
	if t.sess != nil {
		return nil
	}
	se, err := newTenantSession(&s.cfg, t.name)
	if err != nil {
		rep := errReply(http.StatusInternalServerError, CodeInternal, false,
			"building simulator for %s: %v", t.name, err)
		return &rep
	}
	for pos := 0; pos < len(t.journal); {
		n, _, err := se.Apply(t.journal[pos:])
		if err != nil {
			rep := errReply(http.StatusInternalServerError, CodeInternal, false,
				"replaying journal for %s: %v", t.name, err)
			return &rep
		}
		if n == 0 {
			break
		}
		pos += n
	}
	if t.wantDigest != "" {
		snap := se.Snapshot()
		if got := ResultDigest(&snap); got != t.wantDigest {
			rep := errReply(http.StatusConflict, CodeCheckpoint, false,
				"replayed state digest %s does not match checkpointed %s for %s",
				got, t.wantDigest, t.name)
			return &rep
		}
		t.wantDigest = ""
	}
	t.sess = se
	if t.nextSeq > 1 {
		t.lastAck = t.ackLocked(t.nextSeq-1, 0)
	}
	s.resident.Add(1)
	return nil
}

// Package client is the Go client for pdede-serve. It streams sequence-
// numbered PDT1 batches, classifies failures by the server's retryable
// flag, and retries with deterministic jittered exponential backoff —
// deterministic because the jitter derives from internal/rng seeded by
// (seed, tenant, seq, attempt), so a replayed load test backs off
// identically and chaos runs are reproducible.
//
// The sequence-number protocol makes retries safe: if an attempt applied
// but its response was lost, the retry is acknowledged as a duplicate with
// the same rolling state, never re-applied.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Options configures a Client. The zero value of every field except
// BaseURL selects a default.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; default http.DefaultClient (deadlines come
	// from the request context, not a client-wide timeout).
	HTTP *http.Client
	// Retries bounds retry attempts per batch beyond the first (default 8).
	Retries int
	// BaseBackoff and MaxBackoff shape the capped exponential backoff
	// (defaults 50ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the deterministic jitter.
	Seed uint64
	// Sleep is a test seam; default time.Sleep.
	Sleep func(time.Duration)
	// Fault, when non-nil, returns a fault plan injected into the encoded
	// request body for the given attempt (0-based) — the chaos harness
	// uses it to make a specific attempt stall mid-stream or truncate.
	Fault func(tenant string, seq uint64, attempt int) trace.FaultPlan
}

// Client sends batches to one pdede-serve instance. Methods are safe for
// concurrent use; per-call randomness is derived statelessly.
type Client struct {
	opt Options
}

// New applies defaults and returns a Client.
func New(opt Options) *Client {
	if opt.HTTP == nil {
		opt.HTTP = http.DefaultClient
	}
	if opt.Retries <= 0 {
		opt.Retries = 8
	}
	if opt.BaseBackoff <= 0 {
		opt.BaseBackoff = 50 * time.Millisecond
	}
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = 2 * time.Second
	}
	if opt.Sleep == nil {
		opt.Sleep = time.Sleep
	}
	return &Client{opt: opt}
}

// Err is a terminal (non-retried) server response.
type Err struct {
	Status int
	Body   serve.ErrorBody
}

func (e *Err) Error() string {
	return fmt.Sprintf("serve: %d %s: %s", e.Status, e.Body.Code, e.Body.Error)
}

// SendBatch streams one batch and returns its ack, retrying retryable
// failures (transport errors, 429/503/504, truncated uploads) with
// jittered backoff. A *Err return means the server gave a terminal answer.
func (c *Client) SendBatch(ctx context.Context, tenant string, seq uint64, recs []isa.Branch) (*serve.BatchAck, error) {
	url := fmt.Sprintf("%s/v1/tenants/%s/batches/%d", c.opt.BaseURL, tenant, seq)
	var lastErr error
	for attempt := 0; ; attempt++ {
		ack, retryable, wait, err := c.attempt(ctx, url, tenant, seq, recs, attempt)
		if err == nil {
			return ack, nil
		}
		lastErr = err
		if !retryable || attempt >= c.opt.Retries {
			return nil, err
		}
		d := c.backoff(tenant, seq, attempt)
		if wait > d {
			d = wait
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		c.opt.Sleep(d)
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
		}
	}
}

// attempt performs one HTTP exchange. wait is the server's Retry-After
// hint (zero when absent); the caller takes the max of hint and backoff.
func (c *Client) attempt(ctx context.Context, url, tenant string, seq uint64, recs []isa.Branch, attempt int) (ack *serve.BatchAck, retryable bool, wait time.Duration, err error) {
	pr, pw := io.Pipe()
	go func() {
		var rd trace.Reader = (&trace.Memory{TraceName: tenant, Records: recs}).Open()
		if c.opt.Fault != nil {
			if plan := c.opt.Fault(tenant, seq, attempt); plan != (trace.FaultPlan{}) {
				rd = &trace.FaultReader{R: rd, Plan: plan}
			}
		}
		pw.CloseWithError(trace.Write(pw, tenant, rd))
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, pr)
	if err != nil {
		pr.Close()
		return nil, false, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.opt.HTTP.Do(req)
	if err != nil {
		// Transport failure: the server may or may not have applied the
		// batch; the sequence protocol makes blind retry safe.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, false, 0, err
		}
		return nil, true, 0, err
	}
	defer resp.Body.Close()
	if ra := resp.Header.Get(serve.RetryAfterHeader); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
			wait = time.Duration(secs) * time.Second
		}
	}
	if resp.StatusCode == http.StatusOK {
		var a serve.BatchAck
		if derr := json.NewDecoder(resp.Body).Decode(&a); derr != nil {
			return nil, true, wait, fmt.Errorf("decoding ack: %w", derr)
		}
		return &a, false, 0, nil
	}
	var body serve.ErrorBody
	if derr := json.NewDecoder(resp.Body).Decode(&body); derr != nil {
		body = serve.ErrorBody{Error: resp.Status, Code: serve.CodeInternal, Retryable: resp.StatusCode >= 500}
	}
	return nil, body.Retryable, wait, &Err{Status: resp.StatusCode, Body: body}
}

// Stats fetches a tenant's authoritative rolling state, retrying
// retryable failures like SendBatch does.
func (c *Client) Stats(ctx context.Context, tenant string) (*serve.TenantStats, error) {
	url := fmt.Sprintf("%s/v1/tenants/%s/stats", c.opt.BaseURL, tenant)
	var lastErr error
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		st, retryable, err := c.statsAttempt(ctx, url)
		if err == nil {
			return st, nil
		}
		lastErr = err
		if !retryable {
			return nil, err
		}
		c.opt.Sleep(c.backoff(tenant, 0, attempt))
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

func (c *Client) statsAttempt(ctx context.Context, url string) (*serve.TenantStats, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.opt.HTTP.Do(req)
	if err != nil {
		retryable := !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
		return nil, retryable, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var st serve.TenantStats
		if derr := json.NewDecoder(resp.Body).Decode(&st); derr != nil {
			return nil, true, fmt.Errorf("decoding stats: %w", derr)
		}
		return &st, false, nil
	}
	var body serve.ErrorBody
	if derr := json.NewDecoder(resp.Body).Decode(&body); derr != nil {
		body = serve.ErrorBody{Error: resp.Status, Code: serve.CodeInternal, Retryable: resp.StatusCode >= 500}
	}
	return nil, body.Retryable, &Err{Status: resp.StatusCode, Body: body}
}

// backoff derives the deterministic jittered delay for one retry: capped
// exponential scaled by a factor in [0.5, 1.0) drawn from a splitmix64
// stream forked on (seed^tenant, seq, attempt).
func (c *Client) backoff(tenant string, seq uint64, attempt int) time.Duration {
	d := c.opt.BaseBackoff << uint(min(attempt, 16))
	if d > c.opt.MaxBackoff || d <= 0 {
		d = c.opt.MaxBackoff
	}
	h := fnv.New64a()
	io.WriteString(h, tenant)
	src := rng.New(c.opt.Seed ^ h.Sum64()).Fork(seq).Fork(uint64(attempt))
	return time.Duration(float64(d) * (0.5 + 0.5*src.Float64()))
}

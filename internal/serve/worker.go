package serve

import (
	"hash/fnv"
	"io"

	"repro/internal/isa"
)

// job is one admitted batch on its way to its tenant's worker shard.
type job struct {
	t    *tenant
	seq  uint64
	recs []isa.Branch
	// reply is buffered(1) and receives exactly one send, so the worker
	// never blocks on a handler that already timed out and left.
	reply chan reply
}

// worker drains one shard queue. Tenants shard to workers by name hash, so
// a tenant's batches always apply in admission order on one goroutine; the
// tenant lock inside apply makes that an invariant rather than a hope.
func (s *Server) worker(q chan job) {
	defer s.workers.Done()
	for jb := range q {
		//pdede:blocking-ok reply is buffered(1) and receives exactly one send
		jb.reply <- jb.t.apply(s, jb.seq, jb.recs)
	}
}

// shard maps a tenant name to its worker queue.
func shard(tenant string, n int) int {
	h := fnv.New32a()
	io.WriteString(h, tenant)
	return int(h.Sum32() % uint32(n))
}

package serve

// Wire types of the pdede-serve HTTP API. Batches travel as PDT1 binary
// trace streams (internal/trace codec) in the request body; everything
// else is JSON.
//
// The API is sequence-numbered for exactly-once application: the client
// numbers a tenant's batches 1, 2, 3, ... and the server applies batch n
// only when it is the next one. A retried batch whose first attempt did
// apply is acknowledged from the tenant's cache without touching the
// simulator, so client retries (timeouts, restarts, 5xx) can never
// double-train a predictor.

// BatchAck acknowledges one applied (or deduplicated) batch.
type BatchAck struct {
	Tenant string `json:"tenant"`
	// Seq is the acknowledged batch sequence number.
	Seq uint64 `json:"seq"`
	// Records is the number of branch records this batch applied (0 for a
	// duplicate acknowledged from cache without re-application).
	Records int `json:"records"`
	// Duplicate marks a batch that had already been applied; the ack
	// carries the rolling state without re-applying anything.
	Duplicate bool `json:"duplicate,omitempty"`

	// TotalRecords/Instructions are the tenant's lifetime applied totals.
	TotalRecords uint64 `json:"total_records"`
	Instructions uint64 `json:"instructions"`
	// MPKI and IPC are the rolling metrics over the measured window.
	MPKI float64 `json:"mpki"`
	IPC  float64 `json:"ipc"`
	// Digest fingerprints the tenant's entire rolling result (every
	// counter and cycle float) after this batch; an offline replay of the
	// same records through core.Session produces the same digest iff the
	// served simulation is bit-identical.
	Digest string `json:"digest"`
}

// TenantStats is the GET stats document for one tenant.
type TenantStats struct {
	Tenant  string `json:"tenant"`
	NextSeq uint64 `json:"next_seq"`
	// Resident reports whether the simulator was live in memory when this
	// stats request arrived. False means the request found the tenant shed
	// (or just restarted) and rebuilt it from the journal to answer — the
	// metrics below are authoritative either way.
	Resident    bool `json:"resident"`
	Quarantined bool `json:"quarantined"`
	Crashes     int  `json:"crashes"`

	TotalRecords uint64  `json:"total_records"`
	Instructions uint64  `json:"instructions"`
	MPKI         float64 `json:"mpki"`
	IPC          float64 `json:"ipc"`
	Digest       string  `json:"digest"`
}

// ErrorBody is the JSON error document accompanying every non-2xx status.
type ErrorBody struct {
	Error string `json:"error"`
	// Code is a stable machine-readable cause: one of the Code* constants.
	Code string `json:"code"`
	// Retryable tells well-behaved clients whether retrying (after the
	// Retry-After hint, when present) can succeed.
	Retryable bool `json:"retryable"`
}

// Stable error codes.
const (
	// CodeBackpressure: the tenant's queue (or its worker's shard queue) is
	// full. 429 with a Retry-After hint; retryable.
	CodeBackpressure = "backpressure"
	// CodeDraining: the server is shutting down gracefully; a restarted
	// instance will resume from checkpoints. 503; retryable.
	CodeDraining = "draining"
	// CodePending: this exact batch is already queued or in flight
	// (a concurrent duplicate submission). 409; retryable — by the time
	// the client retries, the first copy has usually applied and the
	// retry acks as a duplicate.
	CodePending = "pending"
	// CodeGap: the batch skips ahead of the tenant's next expected
	// sequence number; earlier batches are missing. 409; not retryable.
	CodeGap = "gap"
	// CodeQuarantined: the tenant crashed the simulator too many times and
	// is refusing further batches. 503; not retryable.
	CodeQuarantined = "quarantined"
	// CodeTruncated: the request body ended mid-record (a dying or
	// misbehaving client); nothing was applied. 400; retryable with a
	// rebuilt body.
	CodeTruncated = "truncated"
	// CodeBadRequest: malformed tenant name, sequence number, or body.
	// 400; not retryable.
	CodeBadRequest = "bad-request"
	// CodeTooLarge: the batch exceeds the configured record cap. 413; not
	// retryable as-is (split the batch).
	CodeTooLarge = "too-large"
	// CodeDeadline: the batch missed its per-request deadline while queued
	// or applying; it may still apply afterwards, so the client must
	// retry the same sequence number and expect a possible duplicate ack.
	// 504; retryable.
	CodeDeadline = "deadline"
	// CodeCheckpoint: the tenant's on-disk checkpoint was written by an
	// incompatible configuration (digest mismatch) or is corrupt. 409;
	// not retryable.
	CodeCheckpoint = "checkpoint-conflict"
	// CodeCrashed: applying this batch panicked the simulator; tenant
	// state was rolled back and the batch was not applied. 500; not
	// retryable (the same records would crash again).
	CodeCrashed = "crashed"
	// CodeUnknownTenant: a stats query for a tenant with no applied state
	// in memory or on disk. 404; not retryable.
	CodeUnknownTenant = "unknown-tenant"
	// CodeInternal: unexpected server-side failure. 500.
	CodeInternal = "internal"
)

// RetryAfterHeader is the standard backpressure hint header on 429/503.
const RetryAfterHeader = "Retry-After"

// Package serve implements the pdede-serve daemon: a multi-tenant HTTP
// front end over core.Session. Each tenant is one independent simulation —
// its own BTB, direction predictor and caches — fed by streamed PDT1
// branch-trace batches and answering with rolling MPKI/IPC.
//
// The package is engineered failure-first:
//
//   - batches are sequence-numbered and applied exactly once, so client
//     retries after timeouts or restarts can never double-train a tenant;
//   - per-tenant queues and per-worker shard queues are bounded, and
//     overflow is explicit backpressure (429 + Retry-After), never an
//     unbounded buffer;
//   - a panicking simulator is contained to its tenant: the session is
//     discarded, rebuilt from the journal, and the tenant quarantined
//     after repeated crashes;
//   - under the resident-tenant cap, the least-recently-touched idle
//     tenants are checkpointed to disk (internal/atomicio) and freed,
//     then restored on their next request;
//   - SIGTERM drain refuses new work, finishes what is queued, and
//     checkpoints every tenant; a restarted server restores them with
//     bit-identical rolling metrics (config-digest validated).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Config parameterizes a Server. The zero value of every optional field
// selects a sensible default (see New); Design is required. Once New has
// normalized its copy, the snapshot the Server holds never changes — the
// frozen analyzer enforces that no handler writes through it.
//
//pdede:frozen
type Config struct {
	// Design builds each tenant's BTB and optionally adjusts the core
	// configuration (the experiments registry supplies these; the design
	// name feeds the config digest that validates checkpoints).
	Design experiments.Design
	// Params are the core model parameters; the zero value selects
	// core.Icelake().
	Params core.Params
	// BackendCPI is the backend cycles-per-instruction applied to every
	// tenant (default 1.0).
	BackendCPI float64
	// WarmupInstrs run with structures live but statistics off.
	WarmupInstrs uint64
	// AuditEvery deep-checks each tenant's BTB invariants every N records;
	// an audit failure is treated like a crash (the tenant's state is
	// rebuilt from its journal). 0 disables auditing.
	AuditEvery uint64

	// Workers is the size of the apply pool; tenants are sharded across
	// workers by name hash, so one tenant's batches always apply in order
	// on one goroutine. Default 4.
	Workers int
	// QueueDepth bounds each worker's shard queue. Default 64.
	QueueDepth int
	// TenantPending bounds how many admitted batches one tenant may have
	// queued at once. Default 4.
	TenantPending int
	// MaxBatchRecords rejects oversized batches (413). Default 1<<20.
	MaxBatchRecords int
	// MaxResidentTenants caps how many tenants keep a live simulator in
	// memory — the service's stand-in for memory pressure. Beyond the cap,
	// the least-recently-touched idle tenants are checkpointed and freed,
	// to be restored on their next request. 0 disables shedding; shedding
	// also requires CheckpointDir (state is never silently dropped).
	MaxResidentTenants int
	// CheckpointDir is where tenant checkpoints live; "" disables
	// checkpoint/restore (and therefore shedding and drain persistence).
	CheckpointDir string
	// QuarantineAfter stops accepting batches for a tenant after this many
	// simulator crashes. Default 3.
	QuarantineAfter int
	// RequestTimeout bounds how long a batch request may wait for its
	// worker (queued + applying). The batch may still apply after the 504;
	// the client retries the same sequence number and gets a duplicate
	// ack. Default 30s; negative disables.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent in the Retry-After header on
	// backpressure and drain responses (whole seconds, floored). Default 1s.
	RetryAfter time.Duration

	// ApplyHook, when non-nil, runs inside the panic-isolation boundary
	// just before each batch applies — a test seam for injecting simulator
	// crashes.
	ApplyHook func(tenant string, seq uint64)
}

// Server is the multi-tenant simulation service. Create with New, mount
// Handler, and Close on shutdown.
type Server struct {
	cfg    Config
	digest string
	queues []chan job

	workers  sync.WaitGroup
	inflight sync.WaitGroup
	clock    atomic.Uint64 // logical LRU clock for shedding
	resident atomic.Int64  // tenants with a live core.Session
	shedMu   sync.Mutex    // at most one shed sweep at a time
	met      metrics

	mu sync.Mutex
	// tenants maps tenant name to its state. Entries are created on first
	// request and never removed; shedding frees the heavy state inside.
	//pdede:guarded-by(mu)
	tenants map[string]*tenant
	// draining refuses new requests while inflight ones finish.
	//pdede:guarded-by(mu)
	draining bool
	//pdede:guarded-by(mu)
	closed bool
}

// New validates cfg (by building a probe simulator), applies defaults, and
// starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Design.New == nil {
		return nil, fmt.Errorf("serve: Config.Design is required")
	}
	if cfg.Params == (core.Params{}) {
		cfg.Params = core.Icelake()
	}
	if cfg.BackendCPI <= 0 {
		cfg.BackendCPI = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.TenantPending <= 0 {
		cfg.TenantPending = 4
	}
	if cfg.MaxBatchRecords <= 0 {
		cfg.MaxBatchRecords = 1 << 20
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = 3
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxResidentTenants > 0 && cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("serve: MaxResidentTenants requires CheckpointDir (shedding must not drop state)")
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	// A design that cannot build (or that requests the pipeline model,
	// which cannot run incrementally) should fail at startup, not on the
	// first tenant's first batch.
	if _, err := newTenantSession(&cfg, "probe"); err != nil {
		return nil, fmt.Errorf("serve: design %q cannot serve: %w", cfg.Design.Name, err)
	}

	s := &Server{
		cfg:     cfg,
		tenants: make(map[string]*tenant),
	}
	s.digest = configDigest(&cfg)
	s.queues = make([]chan job, cfg.Workers)
	for i := range s.queues {
		s.queues[i] = make(chan job, cfg.QueueDepth)
		s.workers.Add(1)
		go s.worker(s.queues[i])
	}
	return s, nil
}

// ConfigDigest identifies the simulation configuration; checkpoints carry
// it and a server refuses checkpoints written under a different one.
func (s *Server) ConfigDigest() string { return s.digest }

// NewSession builds one tenant's simulator from this service config. The
// server calls it per tenant; offline verifiers (the chaos harness, the
// drain tests) call it to replay a tenant's records outside the service
// and compare digests.
func (cfg *Config) NewSession(name string) (*core.Session, error) {
	tp, err := cfg.Design.New()
	if err != nil {
		return nil, err
	}
	// Apply the simulation-shaping defaults here (not just in New) so an
	// offline replay from the same un-defaulted Config builds the same
	// simulator the server runs.
	params := cfg.Params
	if params == (core.Params{}) {
		params = core.Icelake()
	}
	cpi := cfg.BackendCPI
	if cpi <= 0 {
		cpi = 1
	}
	cc := core.Config{
		Params:       params,
		BackendCPI:   cpi,
		BTB:          tp,
		WarmupInstrs: cfg.WarmupInstrs,
		AuditEvery:   cfg.AuditEvery,
	}
	if cfg.Design.Mod != nil {
		cfg.Design.Mod(&cc)
	}
	return core.NewSession(cc, name)
}

// newTenantSession is the internal spelling used before defaults are
// applied in New and by per-tenant rebuilds.
func newTenantSession(cfg *Config, name string) (*core.Session, error) {
	return cfg.NewSession(name)
}

// configDigest fingerprints everything that shapes a tenant's simulation:
// the design (name plus its structural digest from the experiments
// registry) and the core knobs. Two servers agree on tenant checkpoints
// iff their digests match.
func configDigest(cfg *Config) string {
	dd := experiments.DesignDigests([]experiments.Design{cfg.Design})
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%+v|%g|%d|%d",
		cfg.Design.Name, dd[cfg.Design.Name], cfg.Params,
		cfg.BackendCPI, cfg.WarmupInstrs, cfg.AuditEvery)
	return fmt.Sprintf("%016x", h.Sum64())
}

// ResultDigest fingerprints a rolling result — every counter and cycle
// float. An offline replay of the same records produces the same digest
// iff the served simulation is bit-identical.
func ResultDigest(r *core.Result) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", *r)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Handler returns the service mux.
func (s *Server) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{tenant}/batches/{seq}", s.handleBatch)
	mux.HandleFunc("GET /v1/tenants/{tenant}/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// reply is the outcome of one request: exactly one of ack or err is set.
type reply struct {
	status int
	ack    *BatchAck
	err    *ErrorBody
}

func errReply(status int, code string, retryable bool, format string, args ...any) reply {
	return reply{status: status, err: &ErrorBody{
		Error:     fmt.Sprintf(format, args...),
		Code:      code,
		Retryable: retryable,
	}}
}

func (s *Server) writeReply(w http.ResponseWriter, rep reply) {
	w.Header().Set("Content-Type", "application/json")
	if rep.status == http.StatusTooManyRequests ||
		(rep.err != nil && rep.err.Code == CodeDraining) {
		w.Header().Set(RetryAfterHeader, strconv.Itoa(int(s.cfg.RetryAfter/time.Second)))
	}
	w.WriteHeader(rep.status)
	enc := json.NewEncoder(w)
	if rep.ack != nil {
		enc.Encode(rep.ack)
		return
	}
	enc.Encode(rep.err)
}

// enterRequest registers an inflight request unless the server is
// draining. Registering under the same lock as the draining check means
// Close's inflight.Wait can never miss a request that saw draining=false.
func (s *Server) enterRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// tenantFor returns the named tenant's state, creating it on first touch.
func (s *Server) tenantFor(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[name]
	if t == nil {
		t = &tenant{name: name, nextSeq: 1, nextAdmit: 1}
		s.tenants[name] = t
	}
	return t
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if !validTenantName(name) {
		s.writeReply(w, errReply(http.StatusBadRequest, CodeBadRequest, false,
			"invalid tenant name %q", name))
		return
	}
	seq, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
	if err != nil || seq == 0 {
		s.writeReply(w, errReply(http.StatusBadRequest, CodeBadRequest, false,
			"invalid sequence number %q", r.PathValue("seq")))
		return
	}
	if !s.enterRequest() {
		s.met.drainRejects.Add(1)
		s.writeReply(w, errReply(http.StatusServiceUnavailable, CodeDraining, true,
			"server is draining"))
		return
	}
	defer s.inflight.Done()

	// The whole body is decoded before any tenant state is touched: a
	// slow or dying client holds only its own request open and can never
	// stall a worker or leave a half-applied batch.
	recs, badBody := decodeBody(r.Body, s.cfg.MaxBatchRecords)
	if badBody != nil {
		if badBody.err.Code == CodeTruncated {
			s.met.truncated.Add(1)
		}
		s.writeReply(w, *badBody)
		return
	}

	t := s.tenantFor(name)
	t.touch.Store(s.clock.Add(1))
	ch, rep := s.admit(t, seq, recs)
	if ch == nil {
		s.writeReply(w, rep)
		return
	}
	s.maybeShed()

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	select {
	case out := <-ch:
		s.writeReply(w, out)
	case <-ctx.Done():
		s.met.deadlines.Add(1)
		s.writeReply(w, errReply(http.StatusGatewayTimeout, CodeDeadline, true,
			"batch %d missed its deadline; it may still apply — retry the same sequence number", seq))
	}
}

// admit decides one batch's fate under the tenant lock: duplicate ack,
// ordering error, quarantine refusal, backpressure, or enqueue to the
// tenant's worker shard. A nil channel means rep is the final answer;
// otherwise the worker's reply arrives on the channel.
func (s *Server) admit(t *tenant, seq uint64, recs []isa.Branch) (chan reply, reply) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rep := t.restoreLocked(s); rep != nil {
		return nil, *rep
	}
	if t.quarantined {
		return nil, errReply(http.StatusServiceUnavailable, CodeQuarantined, false,
			"tenant %s is quarantined after %d crashes", t.name, t.crashes)
	}
	switch {
	case seq < t.nextSeq:
		s.met.duplicates.Add(1)
		return nil, t.duplicateAckLocked(seq)
	case seq < t.nextAdmit:
		return nil, errReply(http.StatusConflict, CodePending, true,
			"batch %d is already queued or in flight", seq)
	case seq > t.nextAdmit:
		return nil, errReply(http.StatusConflict, CodeGap, false,
			"batch %d skips ahead: next expected is %d", seq, t.nextAdmit)
	}
	if int(t.pending.Load()) >= s.cfg.TenantPending {
		s.met.backpressure.Add(1)
		return nil, errReply(http.StatusTooManyRequests, CodeBackpressure, true,
			"tenant %s already has %d batches queued", t.name, s.cfg.TenantPending)
	}
	ch := make(chan reply, 1)
	select {
	case s.queues[shard(t.name, len(s.queues))] <- job{t: t, seq: seq, recs: recs, reply: ch}:
		t.nextAdmit = seq + 1
		t.pending.Add(1)
		return ch, reply{}
	default:
		s.met.backpressure.Add(1)
		return nil, errReply(http.StatusTooManyRequests, CodeBackpressure, true,
			"worker queue for tenant %s is full", t.name)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if !validTenantName(name) {
		s.writeReply(w, errReply(http.StatusBadRequest, CodeBadRequest, false,
			"invalid tenant name %q", name))
		return
	}
	if !s.enterRequest() {
		s.met.drainRejects.Add(1)
		s.writeReply(w, errReply(http.StatusServiceUnavailable, CodeDraining, true,
			"server is draining"))
		return
	}
	defer s.inflight.Done()
	t := s.tenantFor(name)
	t.touch.Store(s.clock.Add(1))
	st, rep := s.statsFor(t)
	if rep != nil {
		s.writeReply(w, *rep)
		return
	}
	s.maybeShed()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// statsFor snapshots one tenant, restoring (and if needed rebuilding) its
// state so the reported metrics are always authoritative.
func (s *Server) statsFor(t *tenant) (*TenantStats, *reply) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rep := t.restoreLocked(s); rep != nil {
		return nil, rep
	}
	if t.nextSeq == 1 && len(t.journal) == 0 && t.crashes == 0 {
		rep := errReply(http.StatusNotFound, CodeUnknownTenant, false,
			"tenant %s has no state", t.name)
		return nil, &rep
	}
	st := &TenantStats{
		Tenant:      t.name,
		NextSeq:     t.nextSeq,
		Resident:    t.sess != nil,
		Quarantined: t.quarantined,
		Crashes:     t.crashes,
	}
	if rep := t.ensureSessionLocked(s); rep != nil {
		return nil, rep
	}
	snap := t.sess.Snapshot()
	st.TotalRecords = t.sess.Records()
	st.Instructions = snap.Instructions
	st.MPKI = snap.BTBMPKI()
	st.IPC = snap.IPC()
	st.Digest = ResultDigest(&snap)
	return st, nil
}

// maybeShed checkpoints and frees the least-recently-touched idle tenants
// while the resident count exceeds the cap. At most one sweep runs at a
// time; an active tenant (pending batches) is never shed.
func (s *Server) maybeShed() {
	max := s.cfg.MaxResidentTenants
	if max <= 0 || s.cfg.CheckpointDir == "" {
		return
	}
	if int(s.resident.Load()) <= max {
		return
	}
	if !s.shedMu.TryLock() {
		return
	}
	defer s.shedMu.Unlock()

	type cand struct {
		t     *tenant
		touch uint64
	}
	s.mu.Lock()
	var names []string
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	cands := make([]cand, 0, len(names))
	for _, name := range names {
		cands = append(cands, cand{t: s.tenants[name]})
	}
	s.mu.Unlock()
	for i := range cands {
		cands[i].touch = cands[i].t.touch.Load()
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].touch < cands[j].touch })
	for _, c := range cands {
		if int(s.resident.Load()) <= max {
			break
		}
		s.shedOne(c.t)
	}
}

// shedOne checkpoints one idle tenant and frees its simulator and journal;
// the next request restores it from disk. On checkpoint failure the tenant
// stays resident — state is never dropped.
func (s *Server) shedOne(t *tenant) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sess == nil || t.pending.Load() != 0 {
		return
	}
	if err := t.checkpointLocked(s); err != nil {
		s.met.checkpointErrors.Add(1)
		return
	}
	t.sess = nil
	t.journal = nil
	t.restored = false
	t.lastAck = BatchAck{}
	t.wantDigest = ""
	s.resident.Add(-1)
	s.met.shed.Add(1)
}

// BeginDrain flips the server into drain mode: /readyz reports 503 and new
// requests are refused with a retryable "draining" error, while queued and
// inflight batches keep applying.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
}

// Close drains and shuts down: refuse new requests, wait for inflight ones
// (every admitted batch is applied and acked), stop the workers, then
// checkpoint every tenant. A server restarted on the same CheckpointDir
// resumes each tenant bit-identically. Close is idempotent.
func (s *Server) Close() error {
	s.BeginDrain()
	s.inflight.Wait()
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if wasClosed {
		return nil
	}
	for _, q := range s.queues {
		close(q)
	}
	s.workers.Wait()
	return s.checkpointAll()
}

// checkpointAll persists every tenant that holds state this process
// created or loaded. Tenants already shed to disk (restored=false) are
// skipped: their checkpoint is the current truth.
func (s *Server) checkpointAll() error {
	if s.cfg.CheckpointDir == "" {
		return nil
	}
	s.mu.Lock()
	var names []string
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	ts := make([]*tenant, 0, len(names))
	for _, name := range names {
		ts = append(ts, s.tenants[name])
	}
	s.mu.Unlock()
	var firstErr error
	for _, t := range ts {
		t.mu.Lock()
		if t.restored && (t.nextSeq > 1 || t.crashes > 0) {
			if err := t.checkpointLocked(s); err != nil {
				s.met.checkpointErrors.Add(1)
				if firstErr == nil {
					firstErr = err
				}
			}
		}
		t.mu.Unlock()
	}
	return firstErr
}

// decodeBody reads a whole PDT1 batch into memory. Any mid-stream decode
// failure maps to the retryable "truncated" error: whether the client died,
// stalled forever (the HTTP server's read timeout fires), or sent garbage,
// nothing was applied and a rebuilt body can succeed.
func decodeBody(r io.Reader, max int) ([]isa.Branch, *reply) {
	fail := func(err error) ([]isa.Branch, *reply) {
		rep := errReply(http.StatusBadRequest, CodeTruncated, true, "decoding batch: %v", err)
		return nil, &rep
	}
	d, err := trace.NewDecoder(r)
	if err != nil {
		return fail(err)
	}
	var recs []isa.Branch
	for {
		b, err := d.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fail(err)
		}
		recs = append(recs, b)
		if len(recs) > max {
			rep := errReply(http.StatusRequestEntityTooLarge, CodeTooLarge, false,
				"batch exceeds %d records", max)
			return nil, &rep
		}
	}
	if len(recs) == 0 {
		rep := errReply(http.StatusBadRequest, CodeBadRequest, false, "empty batch")
		return nil, &rep
	}
	return recs, nil
}

// validTenantName accepts [A-Za-z0-9_.-]{1,64}, not starting with a dot
// (checkpoint files are <name>.ckpt; dot-prefixed names would collide with
// atomicio temp files).
func validTenantName(name string) bool {
	if len(name) == 0 || len(name) > 64 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return false
		}
	}
	return true
}

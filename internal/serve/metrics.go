package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// metrics are the service's operational counters. Everything is atomic:
// counters are bumped on hot paths that must not contend on a lock.
type metrics struct {
	batches          atomic.Uint64 // batches applied (exactly once each)
	records          atomic.Uint64 // records applied
	duplicates       atomic.Uint64 // retried batches answered from cache
	backpressure     atomic.Uint64 // 429s (tenant or shard queue full)
	deadlines        atomic.Uint64 // requests that missed RequestTimeout
	truncated        atomic.Uint64 // bodies that died mid-stream
	crashes          atomic.Uint64 // simulator panics/audit failures contained
	quarantines      atomic.Uint64 // tenants quarantined
	shed             atomic.Uint64 // tenants checkpointed + freed under pressure
	restores         atomic.Uint64 // tenants restored from checkpoint
	checkpoints      atomic.Uint64 // checkpoint files written
	checkpointErrors atomic.Uint64
	drainRejects     atomic.Uint64 // requests refused while draining
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ready\n")
}

// handleMetrics renders the prometheus-style text exposition. Counters
// come first in a fixed order, then per-worker queue depths, then
// per-tenant gauges in sorted name order — the output is deterministic for
// a given state, so scrapes and tests can diff it.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	counters := []struct {
		name string
		v    uint64
	}{
		{"pdede_serve_batches_applied_total", s.met.batches.Load()},
		{"pdede_serve_records_applied_total", s.met.records.Load()},
		{"pdede_serve_duplicate_batches_total", s.met.duplicates.Load()},
		{"pdede_serve_backpressure_total", s.met.backpressure.Load()},
		{"pdede_serve_deadline_misses_total", s.met.deadlines.Load()},
		{"pdede_serve_truncated_batches_total", s.met.truncated.Load()},
		{"pdede_serve_crashes_total", s.met.crashes.Load()},
		{"pdede_serve_quarantines_total", s.met.quarantines.Load()},
		{"pdede_serve_tenants_shed_total", s.met.shed.Load()},
		{"pdede_serve_tenants_restored_total", s.met.restores.Load()},
		{"pdede_serve_checkpoints_written_total", s.met.checkpoints.Load()},
		{"pdede_serve_checkpoint_errors_total", s.met.checkpointErrors.Load()},
		{"pdede_serve_drain_rejects_total", s.met.drainRejects.Load()},
	}
	for _, c := range counters {
		fmt.Fprintf(&b, "%s %d\n", c.name, c.v)
	}
	fmt.Fprintf(&b, "pdede_serve_resident_tenants %d\n", s.resident.Load())
	for i, q := range s.queues {
		fmt.Fprintf(&b, "pdede_serve_queue_depth{worker=\"%d\"} %d\n", i, len(q))
	}

	s.mu.Lock()
	var names []string
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	ts := make([]*tenant, 0, len(names))
	for _, name := range names {
		ts = append(ts, s.tenants[name])
	}
	s.mu.Unlock()
	for _, t := range ts {
		t.mu.Lock()
		fmt.Fprintf(&b, "pdede_serve_tenant_next_seq{tenant=%q} %d\n", t.name, t.nextSeq)
		fmt.Fprintf(&b, "pdede_serve_tenant_pending{tenant=%q} %d\n", t.name, t.pending.Load())
		if t.quarantined {
			fmt.Fprintf(&b, "pdede_serve_tenant_quarantined{tenant=%q} 1\n", t.name)
		}
		if t.sess != nil {
			snap := t.sess.Snapshot()
			fmt.Fprintf(&b, "pdede_serve_tenant_mpki{tenant=%q} %s\n",
				t.name, formatFloat(snap.BTBMPKI()))
			fmt.Fprintf(&b, "pdede_serve_tenant_ipc{tenant=%q} %s\n",
				t.name, formatFloat(snap.IPC()))
		}
		t.mu.Unlock()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, b.String())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

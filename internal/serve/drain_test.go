package serve_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// TestDrainCheckpointRestart is the graceful-shutdown contract under live
// traffic: mid-stream, the server drains (as the SIGTERM handler in
// cmd/pdede-serve does — BeginDrain then Close), checkpoints every tenant,
// and a fresh server on the same checkpoint directory picks the streams
// back up. Clients just retry through the outage. At the end every
// tenant's rolling state must be bit-identical to an offline replay —
// which a lost batch, a double-applied batch, or any metric gap would
// break — and TotalRecords must be exact.
func TestDrainCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	cfg.CheckpointDir = dir
	cfg.Workers = 2

	// front proxies to whichever server generation is current, so clients
	// keep one URL across the restart. The pre-restart pointer serves 503
	// draining, which clients treat as retryable.
	var front atomic.Pointer[serve.Server]
	s1, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front.Store(s1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		front.Load().Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	const (
		tenants   = 6
		batches   = 4
		batchRecs = 200
	)
	perTenant := make([][]isa.Branch, tenants)
	for i := range perTenant {
		perTenant[i] = testRecords(t, uint64(500+i), batches*batchRecs)
	}

	// Restart once, after roughly half the total batches have been acked.
	var (
		acked       atomic.Int64
		restartOnce sync.Once
		restarted   = make(chan struct{})
	)
	maybeRestart := func() {
		if acked.Load() < tenants*batches/2 {
			return
		}
		restartOnce.Do(func() {
			// BeginDrain is what the daemon's SIGTERM handler calls; Close
			// finishes the drain and checkpoints every tenant.
			s1.BeginDrain()
			if err := s1.Close(); err != nil {
				t.Errorf("drain: %v", err)
			}
			s2, err := serve.New(cfg)
			if err != nil {
				t.Errorf("restart: %v", err)
				close(restarted)
				return
			}
			front.Store(s2)
			t.Cleanup(func() { s2.Close() })
			close(restarted)
		})
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	finals := make([]*serve.BatchAck, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("drain-%02d", i)
			c := client.New(client.Options{
				BaseURL:     ts.URL,
				Retries:     60,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  25 * time.Millisecond,
				Seed:        uint64(i),
			})
			for b := 0; b < batches; b++ {
				recs := perTenant[i][b*batchRecs : (b+1)*batchRecs]
				ack, err := c.SendBatch(context.Background(), name, uint64(b+1), recs)
				if err != nil {
					errs <- fmt.Errorf("%s batch %d: %w", name, b+1, err)
					return
				}
				want := uint64((b + 1) * batchRecs)
				if ack.TotalRecords != want {
					errs <- fmt.Errorf("%s batch %d: TotalRecords %d, want %d (lost or double-applied)",
						name, b+1, ack.TotalRecords, want)
					return
				}
				finals[i] = ack
				acked.Add(1)
				maybeRestart()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	select {
	case <-restarted:
	default:
		t.Fatal("restart never triggered; test did not exercise the drain path")
	}
	if t.Failed() {
		return
	}

	// Every stream must have crossed the restart with no gap and no
	// replay: the final rolling state equals a clean offline replay.
	c := newTestClient(ts.URL)
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("drain-%02d", i)
		wantDigest, want := offlineDigest(t, cfg, name, perTenant[i])
		if finals[i].Digest != wantDigest {
			t.Errorf("%s: final digest %s != offline %s", name, finals[i].Digest, wantDigest)
		}
		if finals[i].MPKI != want.BTBMPKI() || finals[i].IPC != want.IPC() {
			t.Errorf("%s: rolling metrics (%g, %g) != offline (%g, %g)",
				name, finals[i].MPKI, finals[i].IPC, want.BTBMPKI(), want.IPC())
		}
		st, err := c.Stats(context.Background(), name)
		if err != nil {
			t.Errorf("%s: stats: %v", name, err)
			continue
		}
		if st.Digest != wantDigest || st.TotalRecords != uint64(batches*batchRecs) {
			t.Errorf("%s: post-restart stats %+v, want digest %s records %d",
				name, st, wantDigest, batches*batchRecs)
		}
	}
}

// TestCloseCheckpointsIdleTenants: tenants that received traffic but are
// idle at shutdown must still be durably checkpointed by Close.
func TestCloseCheckpointsIdleTenants(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	cfg.CheckpointDir = dir

	s1, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	c := newTestClient(ts1.URL)
	recs := testRecords(t, 11, 300)
	ack1, err := c.SendBatch(context.Background(), "idle", 1, recs[:150])
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := startServer(t, cfg)
	c2 := newTestClient(ts2.URL)
	st, err := c2.Stats(context.Background(), "idle")
	if err != nil {
		t.Fatalf("state lost across restart: %v", err)
	}
	if st.Digest != ack1.Digest || st.NextSeq != 2 {
		t.Fatalf("restored stats %+v, want digest %s next_seq 2", st, ack1.Digest)
	}
	ack2, err := c2.SendBatch(context.Background(), "idle", 2, recs[150:])
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, _ := offlineDigest(t, cfg, "idle", recs)
	if ack2.Digest != wantDigest {
		t.Errorf("digest %s != offline %s after restart", ack2.Digest, wantDigest)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"

	"repro/internal/atomicio"
	"repro/internal/isa"
	"repro/internal/trace"
)

// checkpointVersion is bumped whenever the schema or the journal encoding
// changes incompatibly.
const checkpointVersion = 1

// checkpointFile is one tenant's durable state: the journal (as a PDT1
// stream, base64 inside JSON) plus the exactly-once watermark and health
// counters. The simulator itself is never serialized — replaying the
// journal through a fresh session reproduces it bit-identically, and
// ResultDigest proves it did.
type checkpointFile struct {
	Version      int    `json:"version"`
	ConfigDigest string `json:"config_digest"`
	Tenant       string `json:"tenant"`
	NextSeq      uint64 `json:"next_seq"`
	Crashes      int    `json:"crashes"`
	Quarantined  bool   `json:"quarantined,omitempty"`
	ResultDigest string `json:"result_digest,omitempty"`
	Records      []byte `json:"records"`
}

func checkpointPath(dir, tenant string) string {
	return filepath.Join(dir, tenant+".ckpt")
}

// encodeJournal serializes the journal with the standard trace codec.
func encodeJournal(name string, recs []isa.Branch) ([]byte, error) {
	var buf bytes.Buffer
	src := &trace.Memory{TraceName: name, Records: recs}
	if err := trace.Write(&buf, name, src.Open()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeJournal(data []byte) ([]isa.Branch, error) {
	d, err := trace.NewDecoder(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	m, err := trace.Collect(d.Name(), d)
	if err != nil {
		return nil, err
	}
	return m.Records, nil
}

// decodeCheckpoint parses and validates a checkpoint document.
func decodeCheckpoint(data []byte, wantConfigDigest, tenant string) (*checkpointFile, []isa.Branch, error) {
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, nil, fmt.Errorf("serve: corrupt checkpoint for %s: %w", tenant, err)
	}
	if ck.Version != checkpointVersion {
		return nil, nil, fmt.Errorf("serve: checkpoint for %s has version %d, want %d",
			tenant, ck.Version, checkpointVersion)
	}
	if ck.Tenant != tenant {
		return nil, nil, fmt.Errorf("serve: checkpoint names tenant %q, not %q", ck.Tenant, tenant)
	}
	if ck.ConfigDigest != wantConfigDigest {
		return nil, nil, fmt.Errorf(
			"serve: checkpoint for %s was written under config %s; this server runs %s",
			tenant, ck.ConfigDigest, wantConfigDigest)
	}
	if ck.NextSeq == 0 {
		return nil, nil, fmt.Errorf("serve: checkpoint for %s has zero next_seq", tenant)
	}
	recs, err := decodeJournal(ck.Records)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: corrupt journal for %s: %w", tenant, err)
	}
	return &ck, recs, nil
}

// checkpointLocked durably persists t's full state via the atomic write
// path: a crash mid-checkpoint leaves the previous checkpoint intact.
//
//pdede:guarded-by(mu)
func (t *tenant) checkpointLocked(s *Server) error {
	data, err := encodeJournal(t.name, t.journal)
	if err != nil {
		return fmt.Errorf("serve: encoding journal for %s: %w", t.name, err)
	}
	ck := checkpointFile{
		Version:      checkpointVersion,
		ConfigDigest: s.digest,
		Tenant:       t.name,
		NextSeq:      t.nextSeq,
		Crashes:      t.crashes,
		Quarantined:  t.quarantined,
		Records:      data,
	}
	if t.sess != nil {
		snap := t.sess.Snapshot()
		ck.ResultDigest = ResultDigest(&snap)
	} else {
		// Crashed or never-rebuilt state: carry the still-unverified
		// digest forward so the eventual rebuild is still checked.
		ck.ResultDigest = t.wantDigest
	}
	if err := atomicio.WriteJSON(checkpointPath(s.cfg.CheckpointDir, t.name), &ck); err != nil {
		return err
	}
	s.met.checkpoints.Add(1)
	return nil
}

package atomicio

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o600); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "new" {
		t.Fatalf("content = %q, want %q", data, "new")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o600 {
		t.Errorf("perm = %o, want 600", perm)
	}
	assertNoTempLitter(t, dir)
}

// TestWriteFileRenameFailure proves the core atomicity promise with a fake
// rename: when the final rename fails, the original file is untouched and
// the temp file is cleaned up.
func TestWriteFileRenameFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	if err := WriteFile(path, []byte("survivor"), 0o644); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected rename failure")
	prev := rename
	rename = func(oldpath, newpath string) error { return injected }
	defer func() { rename = prev }()

	err := WriteFile(path, []byte("doomed"), 0o644)
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want the injected rename failure", err)
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(data) != "survivor" {
		t.Fatalf("original clobbered on rename failure: %q", data)
	}
	assertNoTempLitter(t, dir)
}

func TestWriteJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.json")
	in := map[string]int{"a": 1, "b": 2}
	if err := WriteJSON(path, in); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out["a"] != 1 || out["b"] != 2 {
		t.Fatalf("round trip = %v", out)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("JSON document should end with a newline")
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no-such", "x"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}

// assertNoTempLitter fails if any temp file was left behind in dir.
func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") {
			t.Errorf("temp litter left behind: %s", e.Name())
		}
	}
}

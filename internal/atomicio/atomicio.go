// Package atomicio is the single write path for checkpoint and report
// files: write to a temp file in the destination directory, then rename
// over the target. Readers — including a resumed run inspecting its own
// previous checkpoint — therefore observe either the old complete document
// or the new complete document, never a torn one.
//
// The pdede-lint atomicwrite analyzer statically enforces that the
// persistence packages (internal/experiments, internal/perf) create files
// only through this package.
package atomicio

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temp file is created
// in path's directory so the final rename never crosses filesystems. On
// error the temp file is removed; path is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := os.Chmod(name, perm); err != nil {
		os.Remove(name)
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("atomicio: %w", err)
	}
	return nil
}

// WriteJSON atomically replaces path with the indented JSON encoding of v.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("atomicio: encoding %s: %w", path, err)
	}
	return WriteFile(path, append(data, '\n'), 0o644)
}

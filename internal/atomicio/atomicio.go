// Package atomicio is the single write path for checkpoint and report
// files: write to a temp file in the destination directory, fsync it, then
// rename over the target and fsync the directory. Readers — including a
// resumed run inspecting its own previous checkpoint, or a restarted
// pdede-serve restoring tenant state — therefore observe either the old
// complete document or the new complete document, never a torn one, and a
// completed write survives power loss (the data is on stable storage
// before the rename, the rename itself before WriteFile returns).
//
// The pdede-lint atomicwrite analyzer statically enforces that the
// persistence packages (internal/experiments, internal/perf,
// internal/serve) create files only through this package.
package atomicio

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// rename is swapped by tests to prove the failure path leaves the target
// untouched; everywhere else it is os.Rename.
var rename = os.Rename

// WriteFile atomically and durably replaces path with data. The temp file
// is created in path's directory so the final rename never crosses
// filesystems, and is fsynced before the rename so a crash can never
// promote an empty or partial file over a good one. After the rename the
// parent directory is fsynced, making the new directory entry itself
// durable. On error the temp file is removed; path is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := os.Chmod(name, perm); err != nil {
		os.Remove(name)
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := syncDir(dir); err != nil {
		// The rename is visible but its directory entry may not be durable
		// yet; surface that rather than claiming a completed write.
		return fmt.Errorf("atomicio: fsync %s: %w", dir, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Filesystems that cannot fsync directories (some network and FUSE mounts)
// report EINVAL or ENOTSUP; the rename is still atomic there, just not
// durable, which matches the old behaviour — so those two are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// WriteJSON atomically replaces path with the indented JSON encoding of v.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("atomicio: encoding %s: %w", path, err)
	}
	return WriteFile(path, append(data, '\n'), 0o644)
}

package cactilite

import (
	"math"
	"testing"
)

func TestCalibrationWithinTolerance(t *testing.T) {
	for _, r := range Table4() {
		for _, pair := range []struct {
			got, want float64
			what      string
		}{
			{r.OnePortNs, r.PaperOnePort, "1RW"},
			{r.SixPortNs, r.PaperSixPort, "6RW"},
		} {
			if pair.want == 0 {
				continue
			}
			relErr := math.Abs(pair.got-pair.want) / pair.want
			if relErr > 0.12 {
				t.Errorf("%s %s: model %.3f vs paper %.2f (%.0f%% off)",
					r.Name, pair.what, pair.got, pair.want, 100*relErr)
			}
		}
	}
}

func TestRelativeOrderings(t *testing.T) {
	rows := Table4()
	baseline, btbm, pbtb, pdede := rows[0], rows[1], rows[2], rows[3]
	// The paper's architectural arguments, which must hold in the model:
	if btbm.OnePortNs >= baseline.OnePortNs {
		t.Error("BTBM not faster than baseline BTB (1 port)")
	}
	if btbm.SixPortNs >= baseline.SixPortNs {
		t.Error("BTBM not faster than baseline BTB (6 ports)")
	}
	if pbtb.OnePortNs >= btbm.OnePortNs {
		t.Error("Page-BTB not faster than BTBM")
	}
	if pdede.OnePortNs != btbm.OnePortNs+pbtb.OnePortNs {
		t.Error("PDede path is not the serialized sum")
	}
}

func TestMonotonicity(t *testing.T) {
	small := Structure{Bits: 1 << 12, EntryBits: 40, Ports: 1}
	big := Structure{Bits: 1 << 20, EntryBits: 40, Ports: 1}
	if small.AccessNs() >= big.AccessNs() {
		t.Error("access time not monotonic in size")
	}
	p1 := Structure{Bits: 1 << 16, EntryBits: 60, Ports: 1}
	p6 := p1
	p6.Ports = 6
	if p1.AccessNs() >= p6.AccessNs() {
		t.Error("access time not monotonic in ports")
	}
}

func TestCyclesAt(t *testing.T) {
	base := Structure{Bits: 4096 * 75, EntryBits: 75, Ports: 1}
	// 0.24 ns at 3.9 GHz ≈ 0.94 cycles → 1 cycle.
	if got := base.CyclesAt(3.9); got != 1 {
		t.Errorf("baseline cycles = %d, want 1", got)
	}
	if got := base.CyclesAt(0); got != 0 {
		t.Errorf("zero clock cycles = %d", got)
	}
	// The full PDede path at 3.9 GHz needs 2 cycles — the architectural
	// basis of the 1-cycle penalty.
	pdede := Structure{Bits: 6144 * 42, EntryBits: 42, Ports: 1}
	pb := Structure{Bits: 1024 * 20, EntryBits: 20, Ports: 1}
	total := pdede.AccessNs() + pb.AccessNs()
	if cycles := int(math.Ceil(total * 3.9)); cycles != 2 {
		t.Errorf("PDede path cycles = %d, want 2", cycles)
	}
}

func TestDegenerate(t *testing.T) {
	if (Structure{}).AccessNs() != 0 {
		t.Error("zero structure has nonzero latency")
	}
	if (Structure{Bits: 100, EntryBits: 10, Ports: 0}).AccessNs() != 0 {
		t.Error("zero ports has nonzero latency")
	}
}

func TestRowString(t *testing.T) {
	for _, r := range Table4() {
		if r.String() == "" {
			t.Error("empty row string")
		}
	}
}

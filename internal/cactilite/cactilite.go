// Package cactilite is a small analytic SRAM access-time model standing in
// for CACTI 7 at 22nm (§5.4, Table 4). CACTI itself is a large external
// tool; what the paper needs from it is the *relative* latency of the
// BTB structures — that PDede's BTBM is faster than the baseline BTB, that
// the Page-BTB read is short, and that the serialized BTBM+Page-BTB access
// fits within one extra cycle at 3.9 GHz.
//
// The model is
//
//	t(ns) = (t0 + k·√bytes) · (1 + q·√entryBits·(ports-1)/5)
//
// with constants least-squares calibrated to the six published Table 4
// points. The √bytes term models wordline/bitline RC growth with array
// area; the port factor models the area inflation of multi-ported cells,
// which hits wide entries hardest. Worst-case deviation from the published
// numbers is ≈9% (documented per-point in EXPERIMENTS.md).
package cactilite

import (
	"fmt"
	"math"
)

// Calibrated constants (fit to Table 4 at 22nm).
const (
	t0 = 0.0378    // ns: sense/decode overhead
	k  = 0.0010316 // ns per √byte: array RC growth
	q  = 0.21      // port-area penalty per √entry-bit
)

// Structure describes one SRAM array.
type Structure struct {
	// Name labels the row in reports.
	Name string
	// Bits is the total storage.
	Bits uint64
	// EntryBits is the row width (wider rows suffer more from porting).
	EntryBits uint64
	// Ports is the number of read-write ports (≥1).
	Ports int
}

// AccessNs returns the modelled access time in nanoseconds.
func (s Structure) AccessNs() float64 {
	if s.Bits == 0 || s.Ports < 1 {
		return 0
	}
	bytes := float64(s.Bits) / 8
	base := t0 + k*math.Sqrt(bytes)
	port := 1 + q*math.Sqrt(float64(s.EntryBits))*float64(s.Ports-1)/5
	return base * port
}

// CyclesAt returns the access time in cycles at the given clock (GHz),
// rounded up — the number a pipeline must budget.
func (s Structure) CyclesAt(ghz float64) int {
	if ghz <= 0 {
		return 0
	}
	return int(math.Ceil(s.AccessNs() * ghz))
}

// Row is one line of the Table 4 reproduction.
type Row struct {
	Name         string
	OnePortNs    float64
	SixPortNs    float64
	PaperOnePort float64 // published reference, 0 if the paper has none
	PaperSixPort float64
}

// Table4 reproduces the paper's access-latency comparison for the default
// design points: the 4K-entry baseline BTB, PDede's BTBM, the Page-BTB, and
// the serialized BTBM+Page-BTB path.
func Table4() []Row {
	baseline := Structure{Name: "Baseline BTB", Bits: 4096 * 75, EntryBits: 75}
	btbm := Structure{Name: "BTBM", Bits: 6144 * 42, EntryBits: 42}
	pbtb := Structure{Name: "Page-BTB (PBTB)", Bits: 1024 * 20, EntryBits: 20}

	one := func(s Structure) float64 { s.Ports = 1; return s.AccessNs() }
	six := func(s Structure) float64 { s.Ports = 6; return s.AccessNs() }

	rows := []Row{
		{baseline.Name, one(baseline), six(baseline), 0.24, 0.72},
		{btbm.Name, one(btbm), six(btbm), 0.21, 0.55},
		{pbtb.Name, one(pbtb), six(pbtb), 0.09, 0.16},
	}
	rows = append(rows, Row{
		Name:         "PDede (BTBM+PBTB)",
		OnePortNs:    rows[1].OnePortNs + rows[2].OnePortNs,
		SixPortNs:    rows[1].SixPortNs + rows[2].SixPortNs,
		PaperOnePort: 0.30,
		PaperSixPort: 0.71,
	})
	return rows
}

func (r Row) String() string {
	return fmt.Sprintf("%-20s %5.2f ns (paper %.2f)   %5.2f ns (paper %.2f)",
		r.Name, r.OnePortNs, r.PaperOnePort, r.SixPortNs, r.PaperSixPort)
}

// Package addr defines the 57-bit virtual address model used throughout the
// simulator and the region/page/offset partitioning that PDede exploits.
//
// Addresses follow recent x86 processors with 5-level paging: 57 significant
// bits. PDede splits a branch target into three components:
//
//	region — bits [RegionShift, VABits): 1 GiB address clusters. Under ASLR,
//	         different libraries land in distinct regions, and applications
//	         traverse very few of them.
//	page   — bits [PageShift, RegionShift): the 4 KiB page index within a
//	         region.
//	offset — bits [0, PageShift): the byte offset within a page. Offsets are
//	         dense and are never deduplicated.
package addr

import "fmt"

const (
	// VABits is the number of significant virtual-address bits (5-level paging).
	VABits = 57
	// PageShift is log2 of the page size (4 KiB pages).
	PageShift = 12
	// RegionShift is log2 of the region size (1 GiB regions).
	RegionShift = 30

	// OffsetBits is the width of the page-offset component.
	OffsetBits = PageShift
	// PageBits is the width of the page component (page index within a region).
	PageBits = RegionShift - PageShift
	// RegionBits is the width of the region component.
	RegionBits = VABits - RegionShift

	// Mask selects the significant bits of a virtual address.
	Mask = (uint64(1) << VABits) - 1

	offsetMask = (uint64(1) << OffsetBits) - 1
	pageMask   = (uint64(1) << PageBits) - 1
	regionMask = (uint64(1) << RegionBits) - 1
)

// VA is a 57-bit virtual address. Bits above VABits are always zero for
// values produced by this package; constructors mask them off.
type VA uint64

// The simulator juggles five distinct integer domains that would otherwise
// all flow as raw uint64 — a region index is never a page number, a set
// index is never a tag. Each gets a zero-cost defined type (underlying
// uint64, no wrappers, no methods on the hot path) so cross-domain mixing
// is a compile error where the static types meet and an `addrdomain` lint
// finding where values are laundered through plain integers.
type (
	// RegionID is a 1 GiB region index: bits [RegionShift, VABits) of a VA,
	// RegionBits (27) wide.
	RegionID uint64
	// PageNum is a 4 KiB page index within a region: bits
	// [PageShift, RegionShift) of a VA, PageBits (18) wide.
	PageNum uint64
	// PageOffset is a byte offset within a page: bits [0, PageShift) of a
	// VA, OffsetBits (12) wide.
	PageOffset uint64
	// SetIndex is a hashed set index into a set-associative structure
	// (IndexTag's first result).
	SetIndex uint64
	// Tag is a restricted hashed tag (IndexTag's second result).
	Tag uint64
)

// New returns a VA with bits above VABits cleared.
func New(raw uint64) VA { return VA(raw & Mask) }

// Build composes a virtual address from its region, page and offset
// components. Components wider than their fields are masked.
func Build(region RegionID, page PageNum, offset PageOffset) VA {
	return VA((uint64(region)&regionMask)<<RegionShift |
		(uint64(page)&pageMask)<<PageShift |
		uint64(offset)&offsetMask)
}

// Offset returns the byte offset within the 4 KiB page.
func (v VA) Offset() PageOffset { return PageOffset(uint64(v) & offsetMask) }

// Page returns the page index within the address's region.
func (v VA) Page() PageNum { return PageNum((uint64(v) >> PageShift) & pageMask) }

// Region returns the region index (top RegionBits bits).
func (v VA) Region() RegionID { return RegionID((uint64(v) >> RegionShift) & regionMask) }

// PageAddr returns the full page number (region and page combined), i.e. the
// address with the offset stripped, shifted right by PageShift. Two addresses
// are on the same page iff their PageAddr values are equal.
func (v VA) PageAddr() uint64 { return uint64(v) >> PageShift }

// PageBase returns the address of the first byte of v's page.
func (v VA) PageBase() VA { return VA(uint64(v) &^ offsetMask) }

// SamePage reports whether v and o lie on the same 4 KiB page.
func (v VA) SamePage(o VA) bool { return v.PageAddr() == o.PageAddr() }

// SameRegion reports whether v and o lie in the same 1 GiB region.
func (v VA) SameRegion(o VA) bool { return v.Region() == o.Region() }

// WithOffset returns v with its page offset replaced by offset. This is the
// delta-encoding reconstruction: the region and page come from the branch PC
// and only the offset is supplied by the BTB.
func (v VA) WithOffset(offset PageOffset) VA {
	return VA(uint64(v)&^offsetMask | uint64(offset)&offsetMask)
}

// Add returns v advanced by n bytes, wrapped to the 57-bit space.
func (v VA) Add(n uint64) VA { return VA((uint64(v) + n) & Mask) }

// PageDistance returns the distance between the pages of v and o in pages
// (absolute value). Zero means same page.
func (v VA) PageDistance(o VA) uint64 {
	a, b := v.PageAddr(), o.PageAddr()
	if a > b {
		return a - b
	}
	return b - a
}

// String formats the address showing its partition, e.g.
// "0x0000123456789:r=0x12 p=0x3456 o=0x789".
func (v VA) String() string {
	return fmt.Sprintf("0x%014x{r=0x%x p=0x%x o=0x%x}",
		uint64(v), v.Region(), v.Page(), v.Offset())
}

package addr

import (
	"testing"
	"testing/quick"
)

func TestBuildParts(t *testing.T) {
	v := Build(0x12, 0x3456, 0x789)
	if got := v.Region(); got != 0x12 {
		t.Errorf("Region = %#x, want 0x12", got)
	}
	if got := v.Page(); got != 0x3456 {
		t.Errorf("Page = %#x, want 0x3456", got)
	}
	if got := v.Offset(); got != 0x789 {
		t.Errorf("Offset = %#x, want 0x789", got)
	}
}

func TestPartitionWidths(t *testing.T) {
	if OffsetBits+PageBits+RegionBits != VABits {
		t.Fatalf("partition widths %d+%d+%d != %d",
			OffsetBits, PageBits, RegionBits, VABits)
	}
}

// Property: decompose∘compose is the identity on the 57-bit space.
func TestComposeDecomposeRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		v := New(raw)
		return Build(v.Region(), v.Page(), v.Offset()) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: components never exceed their field widths.
func TestComponentBounds(t *testing.T) {
	f := func(raw uint64) bool {
		v := New(raw)
		return v.Offset() < 1<<OffsetBits &&
			v.Page() < 1<<PageBits &&
			v.Region() < 1<<RegionBits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewMasks(t *testing.T) {
	v := New(^uint64(0))
	if uint64(v) != Mask {
		t.Errorf("New(all-ones) = %#x, want %#x", uint64(v), Mask)
	}
}

func TestSamePage(t *testing.T) {
	base := Build(3, 100, 0)
	if !base.SamePage(base.Add(4095)) {
		t.Error("addresses 4095 bytes apart within a page should be same-page")
	}
	if base.SamePage(base.Add(4096)) {
		t.Error("addresses on adjacent pages should not be same-page")
	}
	if !base.SameRegion(Build(3, 200, 50)) {
		t.Error("same region expected")
	}
	if base.SameRegion(Build(4, 100, 0)) {
		t.Error("different region expected")
	}
}

func TestWithOffset(t *testing.T) {
	v := Build(7, 9, 0x123)
	w := v.WithOffset(0xabc)
	if w.Offset() != 0xabc || w.Page() != 9 || w.Region() != 7 {
		t.Errorf("WithOffset got %v", w)
	}
	// Property: WithOffset only changes the offset.
	f := func(raw, off uint64) bool {
		v := New(raw)
		w := v.WithOffset(PageOffset(off))
		return w.PageAddr() == v.PageAddr() && uint64(w.Offset()) == off&((1<<OffsetBits)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageDistance(t *testing.T) {
	a := Build(1, 10, 100)
	b := Build(1, 13, 5)
	if d := a.PageDistance(b); d != 3 {
		t.Errorf("PageDistance = %d, want 3", d)
	}
	if d := b.PageDistance(a); d != 3 {
		t.Errorf("PageDistance symmetric = %d, want 3", d)
	}
	if d := a.PageDistance(a.Add(1)); d != 0 {
		t.Errorf("same-page distance = %d, want 0", d)
	}
}

func TestPageBase(t *testing.T) {
	v := Build(2, 5, 0x7ff)
	if got := v.PageBase(); got.Offset() != 0 || got.PageAddr() != v.PageAddr() {
		t.Errorf("PageBase = %v", got)
	}
}

func TestFold(t *testing.T) {
	if got := Fold(0xffff_ffff_ffff_ffff, 16); got != 0 {
		t.Errorf("Fold(all-ones,16) = %#x, want 0 (even number of chunks XOR out)", got)
	}
	if got := Fold(0x1234, 16); got != 0x1234 {
		t.Errorf("Fold small = %#x, want 0x1234", got)
	}
	if got := Fold(0xdead, 64); got != 0xdead {
		t.Errorf("Fold width 64 = %#x", got)
	}
}

func TestIndexTagBounds(t *testing.T) {
	f := func(raw uint64) bool {
		idx, tag := IndexTag(New(raw), 9, 12)
		return idx < 1<<9 && tag < 1<<12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexTagSpreads(t *testing.T) {
	// Sequential PCs (stride 4) should hit many distinct sets of a 512-set table.
	seen := make(map[SetIndex]bool)
	for i := 0; i < 4096; i++ {
		idx, _ := IndexTag(New(uint64(0x40_0000+4*i)), 9, 12)
		seen[idx] = true
	}
	if len(seen) < 400 {
		t.Errorf("sequential PCs covered only %d/512 sets", len(seen))
	}
}

func TestIndexModRange(t *testing.T) {
	for _, sets := range []int{1, 3, 512, 768} {
		for i := 0; i < 100; i++ {
			got := IndexMod(New(uint64(i*4096+i)), sets)
			if got < 0 || int(got) >= sets {
				t.Fatalf("IndexMod out of range: %d for %d sets", got, sets)
			}
		}
	}
	if got := IndexMod(New(1), 0); got != 0 {
		t.Errorf("IndexMod with 0 sets = %d, want 0", got)
	}
}

func TestStringContainsParts(t *testing.T) {
	s := Build(1, 2, 3).String()
	if s == "" {
		t.Error("empty String()")
	}
}

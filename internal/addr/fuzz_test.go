package addr

import "testing"

// FuzzComponentRoundTrip pins the 57-bit VA component algebra: any address
// decomposes into region/page/offset and recomposes bit-exactly, masking is
// idempotent, and the SamePage/WithOffset helpers agree with the
// decomposition. These identities are what PDede's partitioning and delta
// encoding rest on — an address that does not round-trip its components
// corrupts every reconstructed target.
func FuzzComponentRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1) << (VABits - 1))
	f.Add(Mask)
	f.Add(^uint64(0))
	f.Add(uint64(0x1ffc7bb4003c9e4))
	f.Fuzz(func(t *testing.T, raw uint64) {
		v := New(raw)
		if uint64(v)&^Mask != 0 {
			t.Fatalf("New(%#x) kept bits above %d: %#x", raw, VABits, uint64(v))
		}
		if New(uint64(v)) != v {
			t.Fatalf("masking not idempotent for %#x", raw)
		}
		r, p, o := v.Region(), v.Page(), v.Offset()
		if r >= 1<<RegionBits || p >= 1<<PageBits || o >= 1<<OffsetBits {
			t.Fatalf("component out of range: r=%#x p=%#x o=%#x", r, p, o)
		}
		if Build(r, p, o) != v {
			t.Fatalf("Build(Region, Page, Offset) = %v, want %v", Build(r, p, o), v)
		}
		if v.PageAddr() != uint64(r)<<PageBits|uint64(p) {
			t.Fatalf("PageAddr %#x != region·page %#x", v.PageAddr(), uint64(r)<<PageBits|uint64(p))
		}
		if got := v.WithOffset(PageOffset(o)); got != v {
			t.Fatalf("WithOffset(own offset) = %v, want %v", got, v)
		}
	})
}

// FuzzBuildDecompose is the inverse direction: Build masks each component to
// its field width, and the built address reads back exactly the masked
// components.
func FuzzBuildDecompose(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0))
	f.Add(uint64(0x7ff1eed), uint64(0x3c), uint64(0x9e4))
	f.Fuzz(func(t *testing.T, region, page, offset uint64) {
		v := Build(RegionID(region), PageNum(page), PageOffset(offset))
		if v.Region() != RegionID(region&(1<<RegionBits-1)) {
			t.Fatalf("Region = %#x, want %#x", v.Region(), region&(1<<RegionBits-1))
		}
		if v.Page() != PageNum(page&(1<<PageBits-1)) {
			t.Fatalf("Page = %#x, want %#x", v.Page(), page&(1<<PageBits-1))
		}
		if v.Offset() != PageOffset(offset&(1<<OffsetBits-1)) {
			t.Fatalf("Offset = %#x, want %#x", v.Offset(), offset&(1<<OffsetBits-1))
		}
		// Two addresses built from the same region+page are SamePage
		// regardless of offsets.
		w := Build(RegionID(region), PageNum(page), PageOffset(offset+1))
		if !v.SamePage(w) {
			t.Fatalf("same region+page not SamePage: %v vs %v", v, w)
		}
	})
}

// FuzzWithOffset checks the delta-reconstruction primitive in isolation:
// pc.WithOffset(PageOffset(o)) stays in pc's page and lands on offset o&offsetMask.
func FuzzWithOffset(f *testing.F) {
	f.Add(uint64(0x12345678), uint64(0x9e4))
	f.Add(^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, raw, offset uint64) {
		pc := New(raw)
		got := pc.WithOffset(PageOffset(offset))
		if !pc.SamePage(got) {
			t.Fatalf("WithOffset left the page: %v -> %v", pc, got)
		}
		if got.Offset() != PageOffset(offset&(1<<OffsetBits-1)) {
			t.Fatalf("WithOffset(%#x).Offset() = %#x", offset, got.Offset())
		}
	})
}

package addr

// Hashing utilities for BTB indexing and tag formation. A good hash spreads
// branch PCs across sets and keeps short (12-bit) tags discriminating, which
// the paper relies on to make restricted tags viable ("With a good hashing
// technique ... such resteering can be minimised", §2).

// Mix64 is a finalizer-style 64-bit mixer (splitmix64 finalizer). It is used
// to scramble PCs before extracting index and tag fields so that nearby PCs
// do not systematically collide.
//
//pdede:bitwidth-ok splitmix64 finalizer shift constants, not address-field widths
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Fold folds a 64-bit value down to width bits by XORing successive
// width-bit chunks together. width must be in (0, 64].
func Fold(x uint64, width uint) uint64 {
	if width >= 64 {
		return x
	}
	mask := (uint64(1) << width) - 1
	var out uint64
	for x != 0 {
		out ^= x & mask
		x >>= width
	}
	return out
}

// IndexTag derives a set index and a tag for a branch PC. Instruction
// addresses are at least 2-byte aligned in practice; we drop the low bit,
// mix, then split. indexBits selects the set, tagBits forms the restricted
// tag. The tag is taken from bits disjoint from the index so that two PCs in
// the same set with equal tags are genuinely aliasing through the fold.
func IndexTag(pc VA, indexBits, tagBits uint) (index SetIndex, tag Tag) {
	h := Mix64(uint64(pc) >> 1)
	index = SetIndex(h & ((uint64(1) << indexBits) - 1))
	t := Fold(h>>indexBits, tagBits)
	if tagBits < 64 {
		t &= (uint64(1) << tagBits) - 1
	}
	return index, Tag(t)
}

// IndexMod derives a set index for tables whose number of sets is not a
// power of two (e.g. a 12-way 512-set BTBM scaled for iso-storage keeps
// power-of-two sets, but sweep configurations may not).
func IndexMod(pc VA, sets int) SetIndex {
	if sets <= 0 {
		return 0
	}
	return SetIndex(Mix64(uint64(pc)>>1) % uint64(sets))
}

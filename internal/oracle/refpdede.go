package oracle

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
)

// RefPDede is the slow reference PDede: the per-entry semantics of §4.4
// (taken-only allocation, delta vs pointer encoding chosen by page locality,
// 2-bit confidence hysteresis, same update ordering) layered on an unbounded
// map, with the partition state stored inline instead of behind dedup
// pointers. There are no sets, ways, tags, replacement, refcounts or
// dangling pointers — every mechanism the real implementation maintains
// incrementally is either absent or, for the partition census, recomputed
// from scratch on demand. That makes it obviously correct by inspection and
// a fair oracle for all three PDede configurations.
type RefPDede struct {
	disableDelta bool
	storeReturns bool
	entries      map[addr.VA]*refPDedeEntry
}

type refPDedeEntry struct {
	// delta entries reproduce the target from the PC's own page + offset;
	// pointer-path entries store the full page and region components the
	// real design reaches through the Page-BTB and Region-BTB.
	delta  bool
	offset uint16
	page   addr.PageNum
	region addr.RegionID
	conf   uint8
}

// NewRefPDede builds the reference. disableDelta mirrors the
// partitioning-only ablation; storeReturns the §5.7 configuration.
func NewRefPDede(disableDelta, storeReturns bool) *RefPDede {
	return &RefPDede{
		disableDelta: disableDelta,
		storeReturns: storeReturns,
		entries:      make(map[addr.VA]*refPDedeEntry),
	}
}

// Name implements btb.TargetPredictor.
func (r *RefPDede) Name() string { return "oracle-refpdede" }

func (e *refPDedeEntry) reconstruct(pc addr.VA) addr.VA {
	if e.delta {
		return pc.WithOffset(addr.PageOffset(e.offset))
	}
	return addr.Build(e.region, e.page, addr.PageOffset(e.offset))
}

// Lookup implements btb.TargetPredictor. Pointer-path entries report the
// real design's one-cycle Page/Region indirection penalty so latency-aware
// comparisons stay meaningful.
func (r *RefPDede) Lookup(pc addr.VA) btb.Lookup {
	e, ok := r.entries[pc]
	if !ok {
		return btb.Lookup{}
	}
	l := btb.Lookup{Hit: true, Target: e.reconstruct(pc)}
	if !e.delta {
		l.ExtraLatency = 1
	}
	return l
}

// Update implements btb.TargetPredictor, mirroring PDede.Update without the
// capacity-driven paths (no victim selection, no narrow-way invalidation, no
// stale-pointer repair — pointers cannot go stale here).
func (r *RefPDede) Update(b isa.Branch, prior btb.Lookup) {
	if !b.Taken {
		return
	}
	if b.Kind.IsReturn() && !r.storeReturns {
		return
	}
	samePage := b.PC.SamePage(b.Target) && !r.disableDelta
	e, ok := r.entries[b.PC]
	if !ok {
		r.entries[b.PC] = newRefPDedeEntry(b.Target, samePage)
		return
	}
	if e.reconstruct(b.PC) == b.Target {
		if e.conf < 3 {
			e.conf++
		}
		return
	}
	if e.conf > 0 {
		e.conf--
		return
	}
	*e = *newRefPDedeEntry(b.Target, samePage)
}

func newRefPDedeEntry(target addr.VA, samePage bool) *refPDedeEntry {
	e := &refPDedeEntry{
		delta:  samePage,
		offset: uint16(target.Offset()),
	}
	if !samePage {
		e.page = target.Page()
		e.region = target.Region()
	}
	return e
}

// PageCensus recomputes, from scratch, the set of distinct page components
// reachable from pointer-path entries — the contents an unbounded Page-BTB
// would hold. The real design's bounded, incrementally-maintained table must
// always store a subset of this census.
func (r *RefPDede) PageCensus() map[addr.PageNum]int {
	census := make(map[addr.PageNum]int)
	for _, e := range r.entries {
		if !e.delta {
			census[e.page]++
		}
	}
	return census
}

// RegionCensus is PageCensus for the region partition.
func (r *RefPDede) RegionCensus() map[addr.RegionID]int {
	census := make(map[addr.RegionID]int)
	for _, e := range r.entries {
		if !e.delta {
			census[e.region]++
		}
	}
	return census
}

// StorageBits implements btb.TargetPredictor (idealized: unbounded).
func (r *RefPDede) StorageBits() uint64 { return 0 }

// Reset implements btb.TargetPredictor.
func (r *RefPDede) Reset() { r.entries = make(map[addr.VA]*refPDedeEntry) }

// Audit implements btb.Auditable: every reconstructed target must be 57-bit
// clean and decompose back into exactly the stored components, delta entries
// must stay inside their PC's page, and the configuration gates must hold.
func (r *RefPDede) Audit() error {
	for _, pc := range sortedPCs(r.entries) {
		e := r.entries[pc]
		if e.conf > 3 {
			return fmt.Errorf("oracle: refpdede entry %v confidence %d exceeds 2 bits", pc, e.conf)
		}
		if e.offset >= 1<<addr.OffsetBits {
			return fmt.Errorf("oracle: refpdede entry %v offset %#x exceeds %d bits",
				pc, e.offset, addr.OffsetBits)
		}
		if e.delta && r.disableDelta {
			return fmt.Errorf("oracle: refpdede entry %v is delta-encoded with delta encoding disabled", pc)
		}
		t := e.reconstruct(pc)
		if uint64(t)&^addr.Mask != 0 {
			return fmt.Errorf("oracle: refpdede entry %v reconstructs %#x beyond %d bits",
				pc, uint64(t), addr.VABits)
		}
		if e.delta {
			if !pc.SamePage(t) {
				return fmt.Errorf("oracle: refpdede delta entry %v reconstructs %v outside its page", pc, t)
			}
		} else if t.Page() != e.page || t.Region() != e.region || uint16(t.Offset()) != e.offset {
			return fmt.Errorf("oracle: refpdede entry %v does not round-trip its components", pc)
		}
	}
	return nil
}

var (
	_ btb.TargetPredictor = (*Reference)(nil)
	_ btb.TargetPredictor = (*RefPDede)(nil)
	_ btb.Auditable       = (*Reference)(nil)
	_ btb.Auditable       = (*RefPDede)(nil)
)

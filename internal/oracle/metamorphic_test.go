package oracle

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pdede"
	"repro/internal/trace"
	"repro/internal/workload"
)

// relabelRegion XORs a constant into the region bits of an address: a
// bijection on the VA space that preserves pages, offsets and therefore
// every SamePage/delta decision — the transformation the partitioned design
// is supposed to be indifferent to, up to hashing.
func relabelRegion(v addr.VA, key uint64) addr.VA {
	return addr.Build(v.Region()^addr.RegionID(key), addr.PageNum(v.Page()), addr.PageOffset(v.Offset()))
}

func relabelTrace(src *trace.Memory, key uint64) *trace.Memory {
	out := &trace.Memory{TraceName: src.TraceName + "-relabel", Records: make([]isa.Branch, len(src.Records))}
	for i, b := range src.Records {
		b.PC = relabelRegion(b.PC, key)
		b.Target = relabelRegion(b.Target, key)
		out.Records[i] = b
	}
	return out
}

// TestMetamorphicRegionRelabel drives the reference oracles over a trace and
// its region-relabeled twin in lockstep: being capacity-free (no sets, no
// hashing), their predictions must correspond exactly under the relabeling.
// The bounded designs are run over the relabeled trace too — their hit
// patterns legitimately shift with the hashed set indices, but their audits
// and differential checks must stay clean.
func TestMetamorphicRegionRelabel(t *testing.T) {
	const key = 0x2a5a5a5
	app := workload.Default()
	_, tr, err := workload.Build(app, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	rl := relabelTrace(tr, key)

	for _, mk := range []func() btb.TargetPredictor{
		func() btb.TargetPredictor { return NewReference(false) },
		func() btb.TargetPredictor { return NewRefPDede(false, false) },
		func() btb.TargetPredictor { return NewRefPDede(true, false) },
	} {
		a, b := mk(), mk()
		ra, rb := tr.Open(), rl.Open()
		for i := 0; ; i++ {
			ba, errA := ra.Next()
			bb, errB := rb.Next()
			if (errA == nil) != (errB == nil) {
				t.Fatal("relabeled trace length differs")
			}
			if errA != nil {
				break
			}
			la, lb := a.Lookup(ba.PC), b.Lookup(bb.PC)
			if la.Hit != lb.Hit {
				t.Fatalf("%s: record %d: hit %t vs relabeled %t", a.Name(), i, la.Hit, lb.Hit)
			}
			if la.Hit && relabelRegion(la.Target, key) != lb.Target {
				t.Fatalf("%s: record %d: target %v does not relabel to %v",
					a.Name(), i, la.Target, lb.Target)
			}
			a.Update(ba, la)
			b.Update(bb, lb)
		}
	}

	for _, d := range checkDeepDesigns() {
		tp, err := d.New()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := DiffDesign(t.Context(), tp, rl, Options{AuditEvery: 2048})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			t.Errorf("%s over relabeled trace: %v", d.Name, err)
		}
	}
}

// TestMetamorphicSameSeedDeterminism pins run-to-run reproducibility: two
// full simulations from the same app configuration must produce bit-equal
// Results — the property every golden-regression and checkpoint-resume
// mechanism in this repository rests on.
func TestMetamorphicSameSeedDeterminism(t *testing.T) {
	app := workload.Default()
	runOnce := func() *core.Result {
		_, tr, err := workload.Build(app, 250_000)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := pdede.New(pdede.MultiEntryConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(core.Config{
			Params:       core.Icelake(),
			BackendCPI:   app.BackendCPI,
			BTB:          tp,
			WarmupInstrs: 50_000,
			AuditEvery:   4096,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := runOnce(), runOnce()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same-seed runs diverged:\n%+v\n%+v", r1, r2)
	}
}

// TestMetamorphicWarmupSplit checks the measurement-window algebra: running
// [0, W) and [W, end) as two windows must partition the branch stream
// exactly — every integer counter sums to the full run's value, and the
// float cycle decomposition sums within rounding.
func TestMetamorphicWarmupSplit(t *testing.T) {
	const split = 120_000
	app := workload.Default()
	_, tr, err := workload.Build(app, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	run := func(warmup, measure uint64) *core.Result {
		tp, err := pdede.New(pdede.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(core.Config{
			Params:        core.Icelake(),
			BackendCPI:    app.BackendCPI,
			BTB:           tp,
			WarmupInstrs:  warmup,
			MeasureInstrs: measure,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(0, 0)
	prefix := run(0, split)
	suffix := run(split, 0)

	sumU := func(name string, f, p, s uint64) {
		if p+s != f {
			t.Errorf("%s: prefix %d + suffix %d != full %d", name, p, s, f)
		}
	}
	sumU("Instructions", full.Instructions, prefix.Instructions, suffix.Instructions)
	sumU("DynBranches", full.DynBranches, prefix.DynBranches, suffix.DynBranches)
	sumU("TakenDyn", full.TakenDyn, prefix.TakenDyn, suffix.TakenDyn)
	sumU("LookupsTaken", full.LookupsTaken, prefix.LookupsTaken, suffix.LookupsTaken)
	sumU("BTBMisses", full.BTBMisses(), prefix.BTBMisses(), suffix.BTBMisses())
	sumU("DirMispredicts", full.DirMispredicts, prefix.DirMispredicts, suffix.DirMispredicts)
	sumU("ICacheMisses", full.ICacheMisses, prefix.ICacheMisses, suffix.ICacheMisses)
	sumU("DeltaServed", full.DeltaServed, prefix.DeltaServed, suffix.DeltaServed)
	sumU("WrongPathFlush", full.WrongPathFlush, prefix.WrongPathFlush, suffix.WrongPathFlush)
	for c := 0; c < int(isa.NumClasses); c++ {
		sumU("BTBMissByClass", full.BTBMissByClass[c], prefix.BTBMissByClass[c], suffix.BTBMissByClass[c])
	}

	sumF := func(name string, f, p, s float64) {
		if f == 0 && p == 0 && s == 0 {
			return
		}
		if rel := math.Abs(p + s - f); rel > 1e-6*math.Max(1, math.Abs(f)) {
			t.Errorf("%s: prefix %g + suffix %g != full %g", name, p, s, f)
		}
	}
	sumF("Cycles", full.Cycles, prefix.Cycles, suffix.Cycles)
	sumF("BackendCycles", full.BackendCycles, prefix.BackendCycles, suffix.BackendCycles)
	sumF("FrontendBubbles", full.FrontendBubbles, prefix.FrontendBubbles, suffix.FrontendBubbles)
}

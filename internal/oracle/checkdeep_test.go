package oracle

import (
	"context"
	"os"
	"strconv"
	"testing"

	"repro/internal/btb"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// checkDeepApps returns how many catalog applications the differential sweep
// covers. `make test` keeps it small; `make check-deep` (and CI) raise it via
// the CHECK_DEEP_APPS environment variable (go test rejects unregistered
// flags, so the knob is an env var).
func checkDeepApps() int {
	if v := os.Getenv("CHECK_DEEP_APPS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 2
}

// checkDeepDesigns is the shared diff-design registry from
// internal/experiments: every design the experiments drive, including the
// ablation intermediates, the hierarchy and Perfect. Keeping the list in
// non-test code lets the pdede-lint auditcontract analyzer verify it.
func checkDeepDesigns() []experiments.Design {
	return experiments.DiffDesigns()
}

// TestCheckDeep is the differential sweep behind `make check-deep`: every
// registered design runs in lockstep with its reference oracle over a subset
// of the application catalog, with periodic deep audits. Any semantic
// divergence or audit failure fails the test; legal capacity/aliasing
// divergences are expected and logged.
func TestCheckDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	const instrs = 400_000
	catalog := workload.Catalog()
	nApps := checkDeepApps()
	if nApps > len(catalog) {
		nApps = len(catalog)
	}
	designs := checkDeepDesigns()
	for i := 0; i < nApps; i++ {
		app := catalog[i*len(catalog)/nApps] // spread across categories
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			_, tr, err := workload.Build(app, instrs)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range designs {
				d := d
				t.Run(d.Name, func(t *testing.T) {
					// Designs of one app run concurrently too (each opens
					// its own reader from the shared source), so the sweep
					// scales with -parallel (CHECK_DEEP_WORKERS in make
					// check-deep), not just with the app count.
					t.Parallel()
					tp, err := d.New()
					if err != nil {
						t.Fatal(err)
					}
					rep, err := DiffDesign(context.Background(), tp, tr, Options{AuditEvery: 2048})
					if err != nil {
						t.Fatal(err)
					}
					if err := rep.Err(); err != nil {
						t.Error(err)
					}
					if rep.Compared == 0 {
						t.Error("differential run compared zero predictions")
					}
					t.Log(rep.Summary())
				})
			}
		})
	}
}

// TestDiffPerfectMatchesReference pins the strongest property the runner
// offers: the unbounded Perfect design and the Reference oracle implement
// the same update rules, so they must agree on every single compare.
func TestDiffPerfectMatchesReference(t *testing.T) {
	app := workload.Default()
	_, tr, err := workload.Build(app, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DiffDesign(context.Background(), btb.NewPerfect(), tr, Options{AuditEvery: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compared == 0 || rep.Agreed != rep.Compared {
		t.Fatalf("perfect vs reference must agree everywhere: %s", rep.Summary())
	}
	var legal uint64
	for c := 0; c < classCount; c++ {
		legal += rep.Counts[c]
	}
	if legal != 0 {
		t.Fatalf("perfect vs reference recorded divergences: %s", rep.Summary())
	}
}

// TestCheckDeepReportsFatalInjection closes the loop on the sweep itself: a
// design that fabricates targets must be flagged, proving the classifier
// does not wave everything through as legal.
func TestCheckDeepReportsFatalInjection(t *testing.T) {
	app := workload.Default()
	_, tr, err := workload.Build(app, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Diff(context.Background(), &fabricator{}, NewReference(false), tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(Semantic) == 0 {
		t.Fatalf("fabricated targets not flagged: %s", rep.Summary())
	}
	if rep.Err() == nil {
		t.Fatal("Err() nil despite semantic divergences")
	}
}

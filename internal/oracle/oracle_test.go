package oracle

import (
	"context"
	"testing"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/pdede"
	"repro/internal/trace"
)

func taken(pc, target addr.VA) isa.Branch {
	return isa.Branch{PC: pc, Target: target, BlockLen: 4, Kind: isa.UncondDirect, Taken: true}
}

func TestReferenceConfidenceHysteresis(t *testing.T) {
	r := NewReference(false)
	pc := addr.Build(1, 2, 0x100)
	a := addr.Build(3, 4, 0x200)
	b := addr.Build(5, 6, 0x300)
	r.Update(taken(pc, a), btb.Lookup{})
	r.Update(taken(pc, a), btb.Lookup{}) // conf 1
	// One differing resolution drains confidence but must not retrain yet.
	r.Update(taken(pc, b), btb.Lookup{})
	if got := r.Lookup(pc); !got.Hit || got.Target != a {
		t.Fatalf("confident entry retrained on first mismatch: %+v", got)
	}
	r.Update(taken(pc, b), btb.Lookup{}) // conf 0 → replace
	if got := r.Lookup(pc); !got.Hit || got.Target != b {
		t.Fatalf("drained entry did not retrain: %+v", got)
	}
}

func TestReferenceSkipsReturnsAndNotTaken(t *testing.T) {
	r := NewReference(false)
	pc := addr.Build(1, 2, 0x100)
	ret := isa.Branch{PC: pc, Target: addr.Build(3, 4, 0), BlockLen: 1, Kind: isa.Return, Taken: true}
	r.Update(ret, btb.Lookup{})
	if r.Lookup(pc).Hit {
		t.Error("return allocated with storeReturns disabled")
	}
	nt := isa.Branch{PC: pc, Target: addr.Build(3, 4, 0), BlockLen: 1, Kind: isa.CondDirect, Taken: false}
	r.Update(nt, btb.Lookup{})
	if r.Lookup(pc).Hit {
		t.Error("not-taken branch allocated")
	}
	rs := NewReference(true)
	rs.Update(ret, btb.Lookup{})
	if !rs.Lookup(pc).Hit {
		t.Error("return not allocated with storeReturns enabled")
	}
}

func TestRefPDedeDeltaAndPointerPaths(t *testing.T) {
	r := NewRefPDede(false, false)
	pc := addr.Build(5, 9, 0x800)
	same := pc.WithOffset(0x100)
	r.Update(taken(pc, same), btb.Lookup{})
	l := r.Lookup(pc)
	if !l.Hit || l.Target != same || l.ExtraLatency != 0 {
		t.Fatalf("delta path: %+v", l)
	}
	pc2 := addr.Build(5, 9, 0x900)
	far := addr.Build(7, 11, 0x40)
	r.Update(taken(pc2, far), btb.Lookup{})
	l = r.Lookup(pc2)
	if !l.Hit || l.Target != far || l.ExtraLatency != 1 {
		t.Fatalf("pointer path: %+v", l)
	}
	if err := r.Audit(); err != nil {
		t.Fatal(err)
	}
	if n := len(r.PageCensus()); n != 1 {
		t.Errorf("page census = %d entries, want 1 (delta entries carry no page)", n)
	}
}

func TestRefPDedeDisableDelta(t *testing.T) {
	r := NewRefPDede(true, false)
	pc := addr.Build(5, 9, 0x800)
	r.Update(taken(pc, pc.WithOffset(0x100)), btb.Lookup{})
	l := r.Lookup(pc)
	if !l.Hit || l.ExtraLatency != 1 {
		t.Fatalf("disabled delta must use the pointer path: %+v", l)
	}
	if err := r.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestForDesignSelection(t *testing.T) {
	p, err := pdede.New(pdede.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ForDesign(p).(*RefPDede); !ok {
		t.Error("PDede not matched with RefPDede")
	}
	b, err := btb.NewBaseline(btb.BaselineConfig{Entries: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ForDesign(b).(*Reference); !ok {
		t.Error("baseline not matched with Reference")
	}
	cfg := pdede.DefaultConfig()
	cfg.DisableDelta = true
	pd, err := pdede.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, ok := ForDesign(pd).(*RefPDede)
	if !ok || !ref.disableDelta {
		t.Error("DisableDelta configuration not mirrored into the oracle")
	}
}

// fabricator is a deliberately broken predictor: it answers every lookup
// with a malformed target above the 57-bit VA space — a prediction no legal
// mechanism can produce — while training nothing.
type fabricator struct{}

func (fabricator) Name() string { return "fabricator" }
func (fabricator) Lookup(pc addr.VA) btb.Lookup {
	return btb.Lookup{Hit: true, Target: addr.VA(uint64(1)<<addr.VABits | uint64(pc))}
}
func (fabricator) Update(isa.Branch, btb.Lookup) {}
func (fabricator) StorageBits() uint64           { return 0 }
func (fabricator) Reset()                        {}

func TestDiffClassifiesCapacityAndStale(t *testing.T) {
	// A 1-entry-ish tiny baseline against the unbounded reference over a
	// working set it cannot hold: expect capacity divergences, zero fatal.
	b, err := btb.NewBaseline(btb.BaselineConfig{Entries: 16, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	var recs []isa.Branch
	for round := 0; round < 4; round++ {
		for i := 0; i < 256; i++ {
			pc := addr.Build(1, addr.PageNum(uint64(i)), 0x10)
			recs = append(recs, taken(pc, addr.Build(2, addr.PageNum(uint64(i)), 0x40)))
		}
	}
	src := &trace.Memory{TraceName: "thrash", Records: recs}
	rep, err := Diff(context.Background(), b, NewReference(false), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FatalCount() != 0 {
		t.Fatalf("legal thrashing flagged fatal: %s", rep.Summary())
	}
	if rep.Count(Capacity) == 0 {
		t.Fatalf("no capacity divergences on a thrashing working set: %s", rep.Summary())
	}
}

func TestDiffAuditFailureStopsRun(t *testing.T) {
	var recs []isa.Branch
	for i := 0; i < 10_000; i++ {
		pc := addr.Build(1, addr.PageNum(uint64(i%512)), addr.PageOffset(uint64((i%256)*16)))
		recs = append(recs, taken(pc, addr.Build(2, addr.PageNum(uint64(i%512)), 0x40)))
	}
	src := &trace.Memory{TraceName: "audit-stop", Records: recs}
	rep, err := Diff(context.Background(), auditFailer{}, NewReference(false), src, Options{AuditEvery: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(AuditFailure) == 0 {
		t.Fatalf("audit failure not recorded: %s", rep.Summary())
	}
	if rep.Steps >= uint64(len(recs)) {
		t.Error("run did not stop at the first audit failure")
	}
	if rep.Err() == nil {
		t.Error("Err() nil despite an audit failure")
	}
}

// auditFailer predicts nothing but fails its deep check, modelling silent
// state corruption with externally healthy predictions.
type auditFailer struct{ fabricator }

func (auditFailer) Lookup(addr.VA) btb.Lookup { return btb.Lookup{} }
func (auditFailer) Audit() error              { return errAlwaysBroken }

var errAlwaysBroken = errImpl("bookkeeping corrupted")

type errImpl string

func (e errImpl) Error() string { return string(e) }

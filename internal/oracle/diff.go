package oracle

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Class labels one design/oracle disagreement. The legal classes are the
// mechanisms a bounded BTB is *allowed* to differ by — capacity, tag
// aliasing, replacement/hysteresis timing, dedup-pointer reuse, next-target
// speculation. Semantic and AuditFailure are fatal: the design produced
// state or a prediction that cannot be derived from anything it observed.
type Class uint8

const (
	// Capacity: the design missed where the unbounded oracle hit. The
	// defining legal divergence of any finite structure (eviction, or a
	// failed allocation).
	Capacity Class = iota
	// AliasHit: the design hit where the oracle missed, with a derivable
	// target. 12-bit tags alias, dedup pointers dangle onto reused values,
	// Shotgun prefetches, and the MultiTarget NT register serves PCs the
	// BTBM never stored — all legal.
	AliasHit
	// StaleTarget: both hit but disagree, and the design's target is one
	// this PC was trained with earlier. Confidence hysteresis and
	// eviction/retrain timing legally lag the oracle.
	StaleTarget
	// DeltaCompose: both hit but disagree, and the design's target is the
	// PC's own page composed with an offset observed on some taken branch —
	// a delta entry trained through tag aliasing, or the NT register.
	DeltaCompose
	// ForeignTarget: both hit but disagree, and the design's target was
	// observed on some other branch, or is a component-wise recomposition of
	// observed region/page/offset values. Tag aliasing and the §4.4.2
	// dangling-pointer value reuse produce exactly these.
	ForeignTarget
	// Semantic: fatal. The design predicted a target that is not derivable
	// from any observation — a fabricated address, an out-of-range bit
	// pattern, or corrupted bookkeeping surfacing as a wrong prediction.
	Semantic
	// AuditFailure: fatal. The design's Audit deep-check found a broken
	// internal invariant, whether or not predictions have diverged yet.
	AuditFailure

	classCount = int(AuditFailure) + 1
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Capacity:
		return "capacity"
	case AliasHit:
		return "alias-hit"
	case StaleTarget:
		return "stale-target"
	case DeltaCompose:
		return "delta-compose"
	case ForeignTarget:
		return "foreign-target"
	case Semantic:
		return "SEMANTIC"
	case AuditFailure:
		return "AUDIT-FAILURE"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Fatal reports whether the class indicates a bug rather than a legal
// capacity/aliasing effect.
func (c Class) Fatal() bool { return c == Semantic || c == AuditFailure }

// Divergence is one recorded disagreement, with enough context to reproduce
// and triage it without rerunning: the dynamic step, the branch, both
// predictions, and a digest of the design state at the failing step.
type Divergence struct {
	Step   uint64
	PC     addr.VA
	Class  Class
	Got    btb.Lookup // the design's prediction
	Want   btb.Lookup // the oracle's prediction
	Digest uint64     // design state digest (0 if the design has none)
	Audit  error      // set for AuditFailure
}

// String implements fmt.Stringer.
func (d Divergence) String() string {
	if d.Class == AuditFailure {
		return fmt.Sprintf("step %d pc %v [%v]: %v (digest %#x)", d.Step, d.PC, d.Class, d.Audit, d.Digest)
	}
	return fmt.Sprintf("step %d pc %v [%v]: design hit=%t target=%v, oracle hit=%t target=%v (digest %#x)",
		d.Step, d.PC, d.Class, d.Got.Hit, d.Got.Target, d.Want.Hit, d.Want.Target, d.Digest)
}

// Options tunes a differential run. The zero value is usable.
type Options struct {
	// AuditEvery invokes the design's (and oracle's) Audit after every N
	// compared branches. 0 defaults to 4096; negative disables audits.
	AuditEvery int
	// MaxSamples bounds recorded Divergence values per class (counters keep
	// counting past the cap). 0 defaults to 4.
	MaxSamples int
	// MaxSteps stops the run after N branch records. 0 means the whole trace.
	MaxSteps uint64
}

func (o Options) auditEvery() int {
	if o.AuditEvery == 0 {
		return 4096
	}
	if o.AuditEvery < 0 {
		return 0
	}
	return o.AuditEvery
}

func (o Options) maxSamples() int {
	if o.MaxSamples <= 0 {
		return 4
	}
	return o.MaxSamples
}

// Report aggregates one differential run.
type Report struct {
	Design string
	Oracle string
	// Steps is the number of branch records driven through both predictors;
	// Compared counts the records where at least one of them hit.
	Steps    uint64
	Compared uint64
	Agreed   uint64
	Counts   [classCount]uint64
	Samples  []Divergence
}

// Count returns the number of divergences of one class.
func (r *Report) Count(c Class) uint64 { return r.Counts[c] }

// FatalCount returns the number of fatal (Semantic + AuditFailure) records.
func (r *Report) FatalCount() uint64 { return r.Counts[Semantic] + r.Counts[AuditFailure] }

// Err returns nil when every divergence was legal, and otherwise an error
// describing the fatal divergences (including the first recorded samples).
func (r *Report) Err() error {
	if r.FatalCount() == 0 {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "oracle: %s vs %s: %d semantic divergence(s), %d audit failure(s)",
		r.Design, r.Oracle, r.Counts[Semantic], r.Counts[AuditFailure])
	for _, d := range r.Samples {
		if d.Class.Fatal() {
			fmt.Fprintf(&sb, "\n  %v", d)
		}
	}
	return fmt.Errorf("%s", sb.String())
}

// Summary renders a one-line human-readable digest of the run.
func (r *Report) Summary() string {
	return fmt.Sprintf("%s vs %s: %d steps, %d compared, %d agreed; capacity=%d alias=%d stale=%d delta=%d foreign=%d semantic=%d audit=%d",
		r.Design, r.Oracle, r.Steps, r.Compared, r.Agreed,
		r.Counts[Capacity], r.Counts[AliasHit], r.Counts[StaleTarget],
		r.Counts[DeltaCompose], r.Counts[ForeignTarget],
		r.Counts[Semantic], r.Counts[AuditFailure])
}

func (r *Report) record(d Divergence, maxSamples int) {
	r.Counts[d.Class]++
	perClass := 0
	for _, s := range r.Samples {
		if s.Class == d.Class {
			perClass++
		}
	}
	if perClass < maxSamples {
		r.Samples = append(r.Samples, d)
	}
}

// knowledge is the runner's record of everything the design has legitimately
// observed, used to separate derivable predictions from fabricated ones.
// Only *past* observations count: it is consulted before each Update.
type knowledge struct {
	perPC   map[addr.VA]map[addr.VA]struct{} // taken targets per branch PC
	targets map[addr.VA]struct{}             // all taken targets
	offsets map[addr.PageOffset]struct{}     // offsets of all taken targets
	pages   map[addr.PageNum]struct{}        // page components of all taken targets
	regions map[addr.RegionID]struct{}       // region components of all taken targets
}

func newKnowledge() *knowledge {
	return &knowledge{
		perPC:   make(map[addr.VA]map[addr.VA]struct{}),
		targets: make(map[addr.VA]struct{}),
		offsets: make(map[addr.PageOffset]struct{}),
		pages:   make(map[addr.PageNum]struct{}),
		regions: make(map[addr.RegionID]struct{}),
	}
}

func (k *knowledge) observe(b isa.Branch) {
	// Everything in the Update record is visible to a design — including the
	// announced would-be target of a not-taken conditional, which Shotgun's
	// CBTB deliberately stores — so any of it may legally resurface in a
	// later prediction. The oracles' taken-only allocation is a separate
	// concern: derivability is about what the design *could* know.
	set, ok := k.perPC[b.PC]
	if !ok {
		set = make(map[addr.VA]struct{})
		k.perPC[b.PC] = set
	}
	set[b.Target] = struct{}{}
	k.targets[b.Target] = struct{}{}
	k.offsets[b.Target.Offset()] = struct{}{}
	k.pages[b.Target.Page()] = struct{}{}
	k.regions[b.Target.Region()] = struct{}{}
}

// classify labels the design's hit target t for branch PC pc, for the case
// where the two predictors disagree. bothHit selects between the both-hit
// taxonomy and the design-hit/oracle-miss one.
func (k *knowledge) classify(pc, t addr.VA, bothHit bool) Class {
	if uint64(t)&^addr.Mask != 0 {
		return Semantic // malformed: bits above the 57-bit VA space
	}
	if _, ok := k.perPC[pc][t]; ok {
		if bothHit {
			return StaleTarget
		}
		return AliasHit
	}
	if pc.SamePage(t) {
		if _, ok := k.offsets[t.Offset()]; ok {
			if bothHit {
				return DeltaCompose
			}
			return AliasHit
		}
	}
	if _, ok := k.targets[t]; ok {
		if bothHit {
			return ForeignTarget
		}
		return AliasHit
	}
	// Component-wise recomposition: PDede's dangling Page/Region pointers
	// can legally pair the region of one observed target with the page of
	// another (§4.4.2). Anything beyond that is fabricated.
	_, okR := k.regions[t.Region()]
	_, okP := k.pages[t.Page()]
	_, okO := k.offsets[t.Offset()]
	if okR && okP && okO {
		if bothHit {
			return ForeignTarget
		}
		return AliasHit
	}
	return Semantic
}

// Diff drives design and oracle in lockstep over src, comparing predictions
// and periodically deep-checking invariants. Both predictors are Reset
// first. The returned Report is complete even when fatal divergences were
// found; ctx cancellation returns the partial report and the context error.
func Diff(ctx context.Context, design, oracle btb.TargetPredictor, src trace.Source, opts Options) (*Report, error) {
	design.Reset()
	oracle.Reset()
	rep := &Report{Design: design.Name(), Oracle: oracle.Name()}
	know := newKnowledge()
	auditEvery := opts.auditEvery()
	maxSamples := opts.maxSamples()
	designAud, _ := design.(btb.Auditable)
	oracleAud, _ := oracle.(btb.Auditable)

	r := src.Open()
	for {
		if opts.MaxSteps != 0 && rep.Steps >= opts.MaxSteps {
			break
		}
		if rep.Steps&1023 == 0 && ctx.Err() != nil {
			return rep, ctx.Err()
		}
		b, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rep, fmt.Errorf("oracle: trace %s: %w", src.Name(), err)
		}
		rep.Steps++

		got := design.Lookup(b.PC)
		want := oracle.Lookup(b.PC)
		if got.Hit || want.Hit {
			rep.Compared++
			switch {
			case got.Hit && want.Hit && got.Target == want.Target:
				rep.Agreed++
			case !got.Hit:
				rep.record(Divergence{
					Step: rep.Steps, PC: b.PC, Class: Capacity, Got: got, Want: want,
				}, maxSamples)
			default:
				d := Divergence{
					Step: rep.Steps, PC: b.PC,
					Class: know.classify(b.PC, got.Target, want.Hit),
					Got:   got, Want: want,
				}
				if d.Class.Fatal() {
					d.Digest = btb.StateDigestOf(design)
				}
				rep.record(d, maxSamples)
			}
		}

		know.observe(b)
		design.Update(b, got)
		oracle.Update(b, want)

		if auditEvery != 0 && rep.Steps%uint64(auditEvery) == 0 {
			if err := auditBoth(designAud, oracleAud); err != nil {
				rep.record(Divergence{
					Step: rep.Steps, PC: b.PC, Class: AuditFailure,
					Audit: err, Digest: btb.StateDigestOf(design),
				}, maxSamples)
				// Bookkeeping is corrupt; further steps only echo the damage.
				return rep, nil
			}
		}
	}
	if err := auditBoth(designAud, oracleAud); err != nil {
		rep.record(Divergence{
			Step: rep.Steps, Class: AuditFailure,
			Audit: err, Digest: btb.StateDigestOf(design),
		}, maxSamples)
	}
	return rep, nil
}

func auditBoth(design, oracle btb.Auditable) error {
	if design != nil {
		if err := design.Audit(); err != nil {
			return err
		}
	}
	if oracle != nil {
		if err := oracle.Audit(); err != nil {
			return fmt.Errorf("oracle self-audit: %w", err)
		}
	}
	return nil
}

// DiffDesign is the common entry point: pick the matching oracle via
// ForDesign and run Diff.
func DiffDesign(ctx context.Context, design btb.TargetPredictor, src trace.Source, opts Options) (*Report, error) {
	return Diff(ctx, design, ForDesign(design), src, opts)
}

// Package oracle cross-validates every BTB design in this repository
// against unbounded, obviously-correct reference predictors.
//
// The problem it solves: PDede's three mechanisms (partitioning,
// BTBM-mediated deduplication, delta encoding) fail silently. A stale
// refcount, a dangling BTBM pointer, or a delta entry served with the wrong
// offset does not crash — it shifts MPKI, which is exactly the failure mode
// that invalidates a reproduction. End-to-end miss rates cannot distinguish
// "the design behaves as specified" from "two bugs cancel on this trace".
//
// The package therefore provides three tools:
//
//   - Reference — a plain map[PC]target predictor with the paper's
//     taken-only allocation and confidence-guarded target replacement, and
//     no capacity, aliasing or latency effects. RefPDede layers PDede's
//     delta/partition semantics on the same unbounded map, recomputing its
//     dedup census from scratch instead of keeping incremental state.
//   - Diff — a differential runner that drives a real design and its oracle
//     in lockstep over one trace, compares predictions, and classifies
//     every disagreement as a legal capacity/aliasing effect or a fatal
//     semantic divergence (a predicted target that cannot be derived from
//     anything the design ever observed).
//   - periodic audits — every AuditEvery steps the runner calls the
//     design's Audit (btb.Auditable) deep-check, catching bookkeeping
//     corruption even while predictions still happen to agree.
package oracle

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/pdede"
)

// Reference is the unbounded reference predictor: one entry per branch PC,
// holding the paper's per-entry semantics (taken-only allocation, returns
// excluded unless configured, 2-bit confidence hysteresis on target
// changes) with no sets, ways, tags or replacement. Everything a bounded
// design does differently from Reference must be attributable to capacity,
// aliasing or its own documented mechanisms.
type Reference struct {
	storeReturns bool
	entries      map[addr.VA]*refEntry
}

type refEntry struct {
	target addr.VA
	conf   uint8
}

// NewReference builds an empty reference predictor. storeReturns mirrors
// the §5.7 configuration where return instructions also allocate.
func NewReference(storeReturns bool) *Reference {
	return &Reference{storeReturns: storeReturns, entries: make(map[addr.VA]*refEntry)}
}

// Name implements btb.TargetPredictor.
func (r *Reference) Name() string { return "oracle-reference" }

// Lookup implements btb.TargetPredictor.
func (r *Reference) Lookup(pc addr.VA) btb.Lookup {
	if e, ok := r.entries[pc]; ok {
		return btb.Lookup{Hit: true, Target: e.target}
	}
	return btb.Lookup{}
}

// Update implements btb.TargetPredictor with the paper's update rules: only
// taken branches train, a matching target raises confidence, a differing
// target first drains confidence and only then replaces.
func (r *Reference) Update(b isa.Branch, prior btb.Lookup) {
	if !b.Taken {
		return
	}
	if b.Kind.IsReturn() && !r.storeReturns {
		return
	}
	e, ok := r.entries[b.PC]
	if !ok {
		r.entries[b.PC] = &refEntry{target: b.Target}
		return
	}
	if e.target == b.Target {
		if e.conf < 3 {
			e.conf++
		}
		return
	}
	if e.conf > 0 {
		e.conf--
		return
	}
	e.target = b.Target
}

// StorageBits implements btb.TargetPredictor (idealized: unbounded).
func (r *Reference) StorageBits() uint64 { return 0 }

// Reset implements btb.TargetPredictor.
func (r *Reference) Reset() { r.entries = make(map[addr.VA]*refEntry) }

// Audit implements btb.Auditable: stored targets must stay 57-bit clean.
// Keys are visited in sorted order so the first reported violation is
// deterministic.
func (r *Reference) Audit() error {
	for _, pc := range sortedPCs(r.entries) {
		e := r.entries[pc]
		if uint64(e.target)&^addr.Mask != 0 {
			return fmt.Errorf("oracle: reference entry %v target %#x exceeds %d bits",
				pc, uint64(e.target), addr.VABits)
		}
		if e.conf > 3 {
			return fmt.Errorf("oracle: reference entry %v confidence %d exceeds 2 bits", pc, e.conf)
		}
	}
	return nil
}

// sortedPCs returns a reference map's keys in ascending order, so audits
// report the same first violation on every run.
func sortedPCs[V any](m map[addr.VA]V) []addr.VA {
	pcs := make([]addr.VA, 0, len(m))
	for pc := range m {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}

// ForDesign returns the oracle matched to a concrete design: RefPDede for
// PDede (so delta/partition semantics are mirrored, including the
// DisableDelta and StoreReturns configuration), Reference for everything
// else. The §5.7 StoreReturns baseline configuration has no marker on the
// design side beyond behaviour, so callers running a returns-in-BTB study
// should construct NewReference(true) themselves.
func ForDesign(tp btb.TargetPredictor) btb.TargetPredictor {
	if p, ok := tp.(*pdede.PDede); ok {
		cfg := p.Config()
		return NewRefPDede(cfg.DisableDelta, cfg.StoreReturns)
	}
	return NewReference(false)
}

// Package multilevel implements the 2-level BTB organisation of §5.9: a
// small, single-cycle L0 backed by a large, slower L1 (which may be a
// conventional BTB or a PDede). Hits in L0 cost nothing extra; L1 hits pay
// one extra cycle (plus whatever the L1 design itself adds) and promote the
// entry into L0.
package multilevel

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
)

// TwoLevel composes two target predictors into an L0/L1 hierarchy. It
// implements btb.TargetPredictor.
type TwoLevel struct {
	name string
	l0   btb.TargetPredictor
	l1   btb.TargetPredictor
}

// New builds the hierarchy. l0 should be a small single-cycle structure;
// l1 the large second level.
func New(l0, l1 btb.TargetPredictor) (*TwoLevel, error) {
	if l0 == nil || l1 == nil {
		return nil, fmt.Errorf("multilevel: both levels required")
	}
	return &TwoLevel{
		name: fmt.Sprintf("2L(%s+%s)", l0.Name(), l1.Name()),
		l0:   l0,
		l1:   l1,
	}, nil
}

// Name implements btb.TargetPredictor.
func (t *TwoLevel) Name() string { return t.name }

// Lookup implements btb.TargetPredictor: L0 first; on an L0 miss the L1
// result (one cycle later) is used and promoted into L0.
func (t *TwoLevel) Lookup(pc addr.VA) btb.Lookup {
	if l0 := t.l0.Lookup(pc); l0.Hit {
		return l0
	}
	l1 := t.l1.Lookup(pc)
	if !l1.Hit {
		return l1
	}
	l1.ExtraLatency++
	// Promote: fill L0 with the L1 prediction (modelled as a taken direct
	// branch — L0 stores raw PC→target pairs regardless of kind).
	// The L0 is a microarchitectural cache of the architectural L1
	// (§5.5), so this lookup-time fill is the filter hierarchy's defining,
	// deliberate behaviour.
	//pdede:statepurity-ok L0 promotion on L1 hit is the modelled design
	t.l0.Update(isa.Branch{
		PC:       pc,
		Target:   l1.Target,
		BlockLen: 1,
		Kind:     isa.UncondDirect,
		Taken:    true,
	}, btb.Lookup{})
	return l1
}

// Update implements btb.TargetPredictor: both levels train.
func (t *TwoLevel) Update(b isa.Branch, prior btb.Lookup) {
	t.l0.Update(b, prior)
	t.l1.Update(b, prior)
}

// StorageBits implements btb.TargetPredictor.
func (t *TwoLevel) StorageBits() uint64 {
	return t.l0.StorageBits() + t.l1.StorageBits()
}

// Audit implements btb.Auditable by delegating to whichever levels are
// themselves auditable (the hierarchy adds no cross-level bookkeeping: L0
// promotion reuses the ordinary Update path).
func (t *TwoLevel) Audit() error {
	for _, lvl := range []btb.TargetPredictor{t.l0, t.l1} {
		if a, ok := lvl.(btb.Auditable); ok {
			if err := a.Audit(); err != nil {
				return fmt.Errorf("multilevel: %s: %w", lvl.Name(), err)
			}
		}
	}
	return nil
}

// Reset implements btb.TargetPredictor.
func (t *TwoLevel) Reset() {
	t.l0.Reset()
	t.l1.Reset()
}

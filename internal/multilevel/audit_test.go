package multilevel

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
)

func TestAuditCleanAfterTraining(t *testing.T) {
	tl := mk(t, 256)
	for i := 0; i < 4000; i++ {
		pc := addr.Build(1, addr.PageNum(uint64(i/256)), addr.PageOffset(uint64((i%256)*16)))
		tl.Update(taken(pc, addr.Build(4, addr.PageNum(uint64(i/2)), 0x40)), tl.Lookup(pc))
	}
	if err := tl.Audit(); err != nil {
		t.Fatalf("audit of a healthy hierarchy failed: %v", err)
	}
}

// brokenBTB is an Auditable predictor whose deep check always fails,
// standing in for a corrupted level.
type brokenBTB struct{ btb.TargetPredictor }

var errBroken = errors.New("invariant violated")

func (brokenBTB) Name() string { return "broken" }
func (brokenBTB) Audit() error { return errBroken }
func (brokenBTB) Lookup(addr.VA) btb.Lookup {
	return btb.Lookup{}
}
func (brokenBTB) Update(isa.Branch, btb.Lookup) {}
func (brokenBTB) StorageBits() uint64           { return 0 }
func (brokenBTB) Reset()                        {}

func TestAuditPropagatesLevelFailure(t *testing.T) {
	l0, err := btb.NewBaseline(btb.BaselineConfig{Entries: 256, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := New(l0, brokenBTB{})
	if err != nil {
		t.Fatal(err)
	}
	auditErr := tl.Audit()
	if !errors.Is(auditErr, errBroken) {
		t.Fatalf("audit did not propagate the level failure: %v", auditErr)
	}
	if !strings.Contains(auditErr.Error(), "broken") {
		t.Errorf("audit error does not name the failing level: %v", auditErr)
	}
}

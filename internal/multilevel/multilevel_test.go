package multilevel

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/pdede"
)

func taken(pc, target addr.VA) isa.Branch {
	return isa.Branch{PC: pc, Target: target, BlockLen: 4, Kind: isa.UncondDirect, Taken: true}
}

func mk(t *testing.T, l0Entries int) *TwoLevel {
	t.Helper()
	l0, err := btb.NewBaseline(btb.BaselineConfig{Entries: l0Entries, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := New(l0, l1)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestNewRequiresLevels(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil levels accepted")
	}
}

func TestL0HitIsFree(t *testing.T) {
	tl := mk(t, 256)
	pc := addr.Build(1, 2, 0x100)
	tgt := addr.Build(3, 4, 0x40)
	tl.Update(taken(pc, tgt), btb.Lookup{})
	l := tl.Lookup(pc)
	if !l.Hit || l.Target != tgt {
		t.Fatalf("lookup = %+v", l)
	}
	if l.ExtraLatency != 0 {
		t.Errorf("L0 hit extra = %d, want 0", l.ExtraLatency)
	}
}

func TestL1HitCostsCycleAndPromotes(t *testing.T) {
	tl := mk(t, 64)
	// Fill L0 far beyond capacity so early PCs fall out of L0 but stay in L1.
	var pcs []addr.VA
	for i := 0; i < 600; i++ {
		pc := addr.Build(1, addr.PageNum(uint64(i)), 0x10)
		pcs = append(pcs, pc)
		tl.Update(taken(pc, addr.Build(2, addr.PageNum(uint64(i)), 0x20)), btb.Lookup{})
	}
	// Find a PC that misses L0 but hits L1.
	var found bool
	for _, pc := range pcs {
		if tl.l0.Lookup(pc).Hit {
			continue
		}
		l := tl.Lookup(pc)
		if !l.Hit {
			continue
		}
		found = true
		if l.ExtraLatency != 1 {
			t.Errorf("L1 hit extra = %d, want 1", l.ExtraLatency)
		}
		// Promotion: next lookup should hit L0 at zero extra.
		if l2 := tl.Lookup(pc); !l2.Hit || l2.ExtraLatency != 0 {
			t.Errorf("after promotion: %+v", l2)
		}
		break
	}
	if !found {
		t.Fatal("no L0-miss/L1-hit PC found")
	}
}

func TestPDedeAsL1(t *testing.T) {
	l0, _ := btb.NewBaseline(btb.BaselineConfig{Entries: 64, Ways: 4})
	l1, err := pdede.New(pdede.MultiEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	tl, _ := New(l0, l1)
	pc := addr.Build(5, 9, 0x800)
	tgt := addr.Build(7, 33, 0x2a0) // different page: PDede pointer path
	tl.Update(taken(pc, tgt), btb.Lookup{})
	// Evict from L0.
	for i := 0; i < 400; i++ {
		tl.Update(taken(addr.Build(1, addr.PageNum(uint64(i)), 0), addr.Build(2, 0, 0x40)), btb.Lookup{})
	}
	if tl.l0.Lookup(pc).Hit {
		t.Skip("pc unexpectedly still in L0")
	}
	l := tl.Lookup(pc)
	if !l.Hit || l.Target != tgt {
		t.Fatalf("lookup = %+v", l)
	}
	// L1 PDede pointer path (1) + L1 access (1) = 2 extra cycles.
	if l.ExtraLatency != 2 {
		t.Errorf("extra = %d, want 2", l.ExtraLatency)
	}
}

func TestStorageAndReset(t *testing.T) {
	tl := mk(t, 256)
	if tl.StorageBits() != tl.l0.StorageBits()+tl.l1.StorageBits() {
		t.Error("storage not additive")
	}
	pc := addr.Build(1, 2, 0x100)
	tl.Update(taken(pc, addr.Build(1, 2, 4)), btb.Lookup{})
	tl.Reset()
	if tl.Lookup(pc).Hit {
		t.Error("hit after reset")
	}
	if tl.Name() == "" {
		t.Error("empty name")
	}
}

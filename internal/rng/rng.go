// Package rng provides the deterministic random-number machinery used by the
// workload generator and the simulator. Everything derives from explicit
// 64-bit seeds so that a given (application, configuration) pair always
// produces a bit-identical trace and simulation result.
package rng

// Source is a splitmix64 generator: tiny state, excellent statistical
// quality for simulation purposes, and trivially forkable.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Fork derives an independent child stream identified by id. Streams with
// distinct ids are decorrelated from the parent and from each other.
func (s *Source) Fork(id uint64) *Source {
	return New(mix(s.state ^ mix(id^0x9e3779b97f4a7c15)))
}

func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Uint64 returns the next 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

// Uint32 returns the next 32-bit value.
func (s *Source) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a value in [0, n). n must be > 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a value in [0, n). n must be > 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Range returns a value in [lo, hi]. Panics if hi < lo.
func (s *Source) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Geometric returns a sample from a geometric distribution with success
// probability p (mean ≈ 1/p), at least 1 and clamped to max. Used for loop
// trip counts and run lengths.
func (s *Source) Geometric(p float64, max int) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs p in (0,1]")
	}
	n := 1
	for n < max && !s.Bool(p) {
		n++
	}
	return n
}

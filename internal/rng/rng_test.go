package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between differently-seeded streams", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	c1again := parent.Fork(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Error("Fork with same id should be reproducible")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Error("Forks with different ids should differ")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", p)
	}
}

func TestRange(t *testing.T) {
	s := New(17)
	for i := 0; i < 1000; i++ {
		v := s.Range(5, 10)
		if v < 5 || v > 10 {
			t.Fatalf("Range out of bounds: %d", v)
		}
	}
	if v := s.Range(4, 4); v != 4 {
		t.Errorf("degenerate Range = %d", v)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(19)
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += s.Geometric(0.25, 1000)
	}
	mean := float64(sum) / n
	if mean < 3.5 || mean > 4.5 {
		t.Errorf("Geometric(0.25) mean = %v, want ~4", mean)
	}
}

func TestGeometricClamp(t *testing.T) {
	s := New(23)
	for i := 0; i < 1000; i++ {
		if v := s.Geometric(0.01, 5); v < 1 || v > 5 {
			t.Fatalf("Geometric clamp violated: %d", v)
		}
	}
}

func TestZipfBounds(t *testing.T) {
	s := New(29)
	z := NewZipf(s, 100, 1.0)
	for i := 0; i < 10000; i++ {
		if r := z.Next(); r < 0 || r >= 100 {
			t.Fatalf("Zipf rank out of range: %d", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(31)
	z := NewZipf(s, 1000, 1.0)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate rank 500 heavily at theta=1.
	if counts[0] < counts[500]*20 {
		t.Errorf("insufficient skew: rank0=%d rank500=%d", counts[0], counts[500])
	}
	// Top 10% of ranks should capture the majority of samples.
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if float64(top)/n < 0.5 {
		t.Errorf("top-10%% share = %v, want > 0.5", float64(top)/n)
	}
}

func TestZipfNearUniform(t *testing.T) {
	s := New(37)
	z := NewZipf(s, 10, 0.0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/n-0.1) > 0.01 {
			t.Errorf("theta=0 rank %d share = %v, want ~0.1", i, float64(c)/n)
		}
	}
}

func TestWeighted(t *testing.T) {
	s := New(41)
	counts := make([]int, 3)
	const n = 90000
	for i := 0; i < n; i++ {
		counts[s.Weighted([]float64{1, 2, 6})]++
	}
	want := []float64{1.0 / 9, 2.0 / 9, 6.0 / 9}
	for i, c := range counts {
		if math.Abs(float64(c)/n-want[i]) > 0.01 {
			t.Errorf("weight %d share = %v, want %v", i, float64(c)/n, want[i])
		}
	}
}

func TestWeightedPanics(t *testing.T) {
	s := New(43)
	for _, bad := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Weighted(%v) should panic", bad)
				}
			}()
			s.Weighted(bad)
		}()
	}
}

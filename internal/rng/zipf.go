package rng

import "math"

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^theta. A small theta (~0) is near-uniform; theta in [0.8, 1.2]
// produces the hot/cold skew typical of branch working sets (a small hot set
// executes most dynamic branches while a long cold tail fills the footprint).
//
// The implementation precomputes the CDF and samples by binary search, which
// is exact, allocation-free at sample time and fast enough for trace
// generation (one search per dynamic control-flow decision at most).
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a sampler over n ranks with exponent theta, drawing
// randomness from src. n must be > 0.
func NewZipf(src *Source, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	inv := 1.0 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1.0 // guard against rounding
	return &Zipf{cdf: cdf, src: src}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns a rank in [0, n), skewed toward low ranks.
func (z *Zipf) Next() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weighted picks an index from weights (non-negative, not all zero) with
// probability proportional to its weight.
func (s *Source) Weighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("rng: all weights zero")
	}
	u := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

package isa

import (
	"testing"

	"repro/internal/addr"
)

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k                                 Kind
		cond, direct, indirect, call, ret bool
	}{
		{CondDirect, true, true, false, false, false},
		{UncondDirect, false, true, false, false, false},
		{DirectCall, false, true, false, true, false},
		{IndirectJump, false, false, true, false, false},
		{IndirectCall, false, false, true, true, false},
		{Return, false, false, false, false, true},
	}
	for _, c := range cases {
		if c.k.IsConditional() != c.cond {
			t.Errorf("%v IsConditional = %v", c.k, c.k.IsConditional())
		}
		if c.k.IsDirect() != c.direct {
			t.Errorf("%v IsDirect = %v", c.k, c.k.IsDirect())
		}
		if c.k.IsIndirect() != c.indirect {
			t.Errorf("%v IsIndirect = %v", c.k, c.k.IsIndirect())
		}
		if c.k.IsCall() != c.call {
			t.Errorf("%v IsCall = %v", c.k, c.k.IsCall())
		}
		if c.k.IsReturn() != c.ret {
			t.Errorf("%v IsReturn = %v", c.k, c.k.IsReturn())
		}
	}
}

func TestClassMapping(t *testing.T) {
	want := map[Kind]Class{
		CondDirect:   ClassCondDirect,
		UncondDirect: ClassUncondDirect,
		DirectCall:   ClassUncondDirect,
		IndirectJump: ClassIndirect,
		IndirectCall: ClassIndirect,
		Return:       ClassReturn,
	}
	for k, c := range want {
		if got := k.Class(); got != c {
			t.Errorf("%v.Class() = %v, want %v", k, got, c)
		}
	}
}

func TestNames(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("out-of-range kind name: %s", Kind(99).String())
	}
}

func TestNextPC(t *testing.T) {
	b := Branch{
		PC:       addr.Build(1, 2, 0x100),
		Target:   addr.Build(1, 2, 0x200),
		BlockLen: 3,
		Kind:     CondDirect,
		Taken:    true,
	}
	if got := b.NextPC(); got != b.Target {
		t.Errorf("taken NextPC = %v, want target", got)
	}
	b.Taken = false
	if got := b.NextPC(); got != b.PC.Add(InstrBytes) {
		t.Errorf("not-taken NextPC = %v, want fallthrough", got)
	}
}

func TestSamePage(t *testing.T) {
	b := Branch{PC: addr.Build(1, 2, 0x10), Target: addr.Build(1, 2, 0xff0)}
	if !b.SamePage() {
		t.Error("same-page branch misreported")
	}
	b.Target = addr.Build(1, 3, 0x10)
	if b.SamePage() {
		t.Error("cross-page branch misreported")
	}
}

func TestValidate(t *testing.T) {
	good := Branch{PC: 4, Target: 8, BlockLen: 1, Kind: UncondDirect, Taken: true}
	if err := good.Validate(); err != nil {
		t.Errorf("valid branch rejected: %v", err)
	}
	zero := good
	zero.BlockLen = 0
	if zero.Validate() == nil {
		t.Error("zero BlockLen accepted")
	}
	nt := good
	nt.Taken = false
	if nt.Validate() == nil {
		t.Error("not-taken unconditional accepted")
	}
	bad := good
	bad.Kind = Kind(42)
	if bad.Validate() == nil {
		t.Error("invalid kind accepted")
	}
}

// Package isa defines the instruction-set-level vocabulary of the simulator:
// branch kinds, the dynamic branch record that traces are made of, and the
// few layout constants shared between the workload generator and the
// micro-architectural models.
package isa

import (
	"fmt"

	"repro/internal/addr"
)

// InstrBytes is the modelled instruction size. The synthetic ISA uses
// fixed-size 4-byte instructions; on x86 instruction lengths vary, but the
// BTB only ever sees byte addresses, so a fixed encoding changes nothing
// structural (offsets, pages and regions behave identically).
const InstrBytes = 4

// Kind classifies a control-flow instruction. The taxonomy follows §2 of the
// paper: conditional direct, unconditional direct (including calls),
// unconditional indirect (including indirect calls), plus returns, which are
// normally served by the return address stack rather than the BTB.
type Kind uint8

const (
	// CondDirect is a conditional branch with a compile-time target
	// (loops, if-then-else).
	CondDirect Kind = iota
	// UncondDirect is an unconditional jump with a compile-time target
	// (goto, tail jumps).
	UncondDirect
	// DirectCall is a direct function call (unconditional, direct; pushes a
	// return address).
	DirectCall
	// IndirectJump is an unconditional jump through a register or memory
	// (switch tables, PLT stubs).
	IndirectJump
	// IndirectCall is a function call through a pointer (virtual dispatch,
	// function pointers).
	IndirectCall
	// Return pops the return address stack.
	Return

	// NumKinds is the number of branch kinds.
	NumKinds = 6
)

var kindNames = [NumKinds]string{
	"cond-direct", "uncond-direct", "direct-call",
	"indirect-jump", "indirect-call", "return",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsConditional reports whether the branch has a direction to predict.
func (k Kind) IsConditional() bool { return k == CondDirect }

// IsDirect reports whether the target is encoded in the instruction.
func (k Kind) IsDirect() bool {
	return k == CondDirect || k == UncondDirect || k == DirectCall
}

// IsIndirect reports whether the target is only known at execution.
func (k Kind) IsIndirect() bool {
	return k == IndirectJump || k == IndirectCall
}

// IsCall reports whether the branch pushes a return address.
func (k Kind) IsCall() bool { return k == DirectCall || k == IndirectCall }

// IsReturn reports whether the branch pops the return address stack.
func (k Kind) IsReturn() bool { return k == Return }

// Class is the paper's three-way grouping used in Figure 4 and the MPKI
// breakdowns (returns are reported separately since the RAS serves them).
type Class uint8

const (
	ClassCondDirect Class = iota
	ClassUncondDirect
	ClassIndirect
	ClassReturn

	NumClasses = 4
)

var classNames = [NumClasses]string{
	"conditional-direct", "unconditional-direct", "indirect", "return",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Class maps a Kind onto the paper's grouping.
func (k Kind) Class() Class {
	switch k {
	case CondDirect:
		return ClassCondDirect
	case UncondDirect, DirectCall:
		return ClassUncondDirect
	case IndirectJump, IndirectCall:
		return ClassIndirect
	default:
		return ClassReturn
	}
}

// MaxBlockLen is the largest basic-block length a Branch can carry.
// External trace adapters (ChampSim instruction streams, perf/LBR branch
// stacks) can observe longer branch-free runs — initialization loops,
// vectorized memsets — and must saturate rather than wrap.
const MaxBlockLen = 1<<16 - 1

// ClampBlockLen saturates an instruction count into the BlockLen range
// [1, MaxBlockLen]. Zero-length blocks are illegal (every block contains at
// least its terminating branch), so 0 clamps up to 1.
func ClampBlockLen(n uint64) uint16 {
	switch {
	case n == 0:
		return 1
	case n > MaxBlockLen:
		return MaxBlockLen
	default:
		return uint16(n)
	}
}

// Branch is one dynamic control-flow event. A trace is a sequence of Branch
// records; the sequential instructions between branches are summarised by
// BlockLen, which makes traces compact while preserving instruction counts
// for IPC and MPKI.
type Branch struct {
	// PC is the address of the branch instruction.
	PC addr.VA
	// Target is the architectural target: where execution continues if the
	// branch is taken. For not-taken conditionals it still records the
	// would-be target (the value a BTB would learn).
	Target addr.VA
	// BlockLen is the number of instructions in the basic block that ends
	// with this branch, including the branch itself (≥ 1).
	BlockLen uint16
	// Kind classifies the branch.
	Kind Kind
	// Taken reports the resolved direction. Unconditional branches are
	// always taken.
	Taken bool
}

// Fallthrough returns the address of the instruction after the branch — the
// address fetched when the branch is not taken.
func (b Branch) Fallthrough() addr.VA { return b.PC.Add(InstrBytes) }

// NextPC returns where execution architecturally continues after the branch.
func (b Branch) NextPC() addr.VA {
	if b.Taken {
		return b.Target
	}
	return b.Fallthrough()
}

// SamePage reports whether the branch PC and its target share a page — the
// property delta encoding exploits.
func (b Branch) SamePage() bool { return b.PC.SamePage(b.Target) }

// Validate reports structural problems with the record.
func (b Branch) Validate() error {
	if b.BlockLen == 0 {
		return fmt.Errorf("isa: branch at %v has zero BlockLen", b.PC)
	}
	if b.Kind >= NumKinds {
		return fmt.Errorf("isa: branch at %v has invalid kind %d", b.PC, b.Kind)
	}
	if !b.Kind.IsConditional() && !b.Taken {
		return fmt.Errorf("isa: unconditional %v at %v marked not-taken", b.Kind, b.PC)
	}
	return nil
}

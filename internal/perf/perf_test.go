package perf

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// syntheticReport builds a small well-formed report covering two designs ×
// two cells, with round throughput numbers that make ratio assertions exact.
func syntheticReport() *Report {
	spec := Spec{
		Apps: 2, TotalInstrs: 1000, WarmupInstrs: 100, Reps: 1,
		Models:  []string{ModelAnalytic},
		Designs: []string{"alpha", "beta"},
	}
	mk := func(design, app string, recPerSec float64) Entry {
		const records = 1000
		wall := int64(float64(records) / recPerSec * 1e9)
		return Entry{
			Design: design, App: app, Model: ModelAnalytic,
			Records: records, Instructions: 5000,
			WallNS:        wall,
			NSPerRecord:   float64(wall) / records,
			RecordsPerSec: recPerSec,
			BytesPerOp:    4096, AllocsPerOp: 12,
		}
	}
	return &Report{
		Schema: SchemaVersion,
		Spec:   spec,
		Host:   CurrentHost(),
		Entries: []Entry{
			mk("alpha", "app-1", 4e6), mk("alpha", "app-2", 5e6),
			mk("beta", "app-1", 2e6), mk("beta", "app-2", 3e6),
		},
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	orig := syntheticReport()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, orig); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("report changed across JSON round-trip:\nbefore %+v\nafter  %+v", orig, back)
	}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := SaveReport(path, orig); err != nil {
		t.Fatalf("SaveReport: %v", err)
	}
	loaded, err := LoadReport(path)
	if err != nil {
		t.Fatalf("LoadReport: %v", err)
	}
	if !reflect.DeepEqual(orig, loaded) {
		t.Fatalf("report changed across disk round-trip")
	}
}

func TestReadJSONRejectsBadReports(t *testing.T) {
	wrongSchema := syntheticReport()
	wrongSchema.Schema = SchemaVersion + 1
	var buf bytes.Buffer
	if err := WriteJSON(&buf, wrongSchema); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if _, err := ReadJSON(&buf); err == nil {
		t.Fatalf("ReadJSON accepted schema %d, want %d", wrongSchema.Schema, SchemaVersion)
	}

	dup := syntheticReport()
	dup.Entries = append(dup.Entries, dup.Entries[0])
	buf.Reset()
	if err := WriteJSON(&buf, dup); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if _, err := ReadJSON(&buf); err == nil {
		t.Fatalf("ReadJSON accepted a duplicated entry")
	}
}

func TestCompareIdenticalReportsPass(t *testing.T) {
	base := syntheticReport()
	cur := syntheticReport()
	c, err := Compare(base, cur, 0.08)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !c.OK() {
		t.Fatalf("identical reports failed comparison: %v", c.Err())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err on passing comparison: %v", err)
	}
	for _, d := range c.Designs {
		if d.Ratio != 1 {
			t.Fatalf("design %s ratio %v on identical reports, want 1", d.Design, d.Ratio)
		}
	}
}

func TestCompareFlagsSyntheticRegression(t *testing.T) {
	base := syntheticReport()
	cur := syntheticReport()
	// Halve beta's throughput (a synthetic 2× slowdown); alpha unchanged.
	for i := range cur.Entries {
		if cur.Entries[i].Design != "beta" {
			continue
		}
		cur.Entries[i].RecordsPerSec /= 2
		cur.Entries[i].WallNS *= 2
		cur.Entries[i].NSPerRecord *= 2
	}
	c, err := Compare(base, cur, 0.25)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if c.OK() {
		t.Fatalf("comparison passed despite a 2× regression")
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "beta") {
		t.Fatalf("Err = %v, want mention of design beta", err)
	}
	var beta *DesignDelta
	for i := range c.Designs {
		switch c.Designs[i].Design {
		case "beta":
			beta = &c.Designs[i]
		case "alpha":
			if c.Designs[i].Regressed {
				t.Fatalf("unchanged design alpha flagged as regressed")
			}
		}
	}
	if beta == nil {
		t.Fatalf("no delta reported for design beta")
	}
	if !beta.Regressed {
		t.Fatalf("beta not flagged: ratio %v at 25%% tolerance", beta.Ratio)
	}
	if beta.Ratio < 0.49 || beta.Ratio > 0.51 {
		t.Fatalf("beta ratio %v, want ~0.5", beta.Ratio)
	}
	if got := c.Table(); !strings.Contains(got, "REGRESSED") {
		t.Fatalf("delta table lacks REGRESSED marker:\n%s", got)
	}
}

func TestCompareRejectsShrunkMatrix(t *testing.T) {
	base := syntheticReport()
	cur := syntheticReport()
	cur.Entries = cur.Entries[:len(cur.Entries)-1]
	c, err := Compare(base, cur, 0.08)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if c.OK() {
		t.Fatalf("comparison passed with a baseline cell missing")
	}
	if len(c.MissingCells) != 1 {
		t.Fatalf("MissingCells = %v, want exactly one", c.MissingCells)
	}
}

func TestParseTolerance(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		err  bool
	}{
		{"8%", 0.08, false},
		{"8", 0.08, false},
		{"0.08", 0.08, false},
		{"25%", 0.25, false},
		{"0", 0, false},
		{"-1%", 0, true},
		{"100%", 0, true},
		{"nope", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseTolerance(tc.in)
		if tc.err != (err != nil) {
			t.Errorf("ParseTolerance(%q) err = %v, want err=%v", tc.in, err, tc.err)
			continue
		}
		if !tc.err && got != tc.want {
			t.Errorf("ParseTolerance(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestCommittedBaselineValidates keeps the committed reports loadable: a
// hand-edited baseline that no longer parses would disable the CI bench gate
// silently (the job would fail for the wrong reason).
func TestCommittedBaselineValidates(t *testing.T) {
	for _, name := range []string{"BENCH_PR3.json", "BENCH_PR3_BASELINE.json"} {
		r, err := LoadReport(filepath.Join("..", "..", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Entries) == 0 {
			t.Fatalf("%s: no entries", name)
		}
	}
}

// TestSelfCompareOfCommittedReport asserts the committed current report
// passes a self-comparison (comparator exit-zero path) — the same invariant
// `pdede-bench -compare BENCH_PR3.json -baseline BENCH_PR3.json` checks.
func TestSelfCompareOfCommittedReport(t *testing.T) {
	r, err := LoadReport(filepath.Join("..", "..", "BENCH_PR3.json"))
	if err != nil {
		t.Fatalf("loading committed report: %v", err)
	}
	c, err := Compare(r, r, 0)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !c.OK() {
		t.Fatalf("self-comparison failed: %v", c.Err())
	}
}

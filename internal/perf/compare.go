package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/atomicio"
)

// WriteJSON encodes a report with stable, human-diffable formatting.
func WriteJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON decodes and validates a report.
func ReadJSON(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("perf: decoding report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// LoadReport reads a report from disk.
func LoadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// SaveReport writes a report to disk atomically, so a concurrent or
// crashed `make bench` never leaves a torn baseline behind.
func SaveReport(path string, r *Report) error {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		return err
	}
	return atomicio.WriteFile(path, buf.Bytes(), 0o644)
}

// ParseTolerance accepts "8%", "8", or "0.08" forms, returning a fraction.
func ParseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("perf: tolerance %q: %w", s, err)
	}
	if pct || v > 1 {
		v /= 100
	}
	if v < 0 || v >= 1 {
		return 0, fmt.Errorf("perf: tolerance %v outside [0, 1)", v)
	}
	return v, nil
}

// DesignDelta aggregates one design's throughput change between two reports:
// the geometric mean of per-cell records/sec ratios (new/old) across every
// (app, model) cell present in both.
type DesignDelta struct {
	Design string
	// Cells is the number of matched (app, model) measurements.
	Cells int
	// Ratio is the geomean of new/old records-per-second (1.0 = unchanged,
	// <1 = slower).
	Ratio float64
	// WorstCell/WorstRatio single out the most-regressed cell.
	WorstCell  string
	WorstRatio float64
	// OldRecSec/NewRecSec are the geomeans of the matched cells' absolute
	// throughputs, for the table.
	OldRecSec float64
	NewRecSec float64
	// Regressed is set when Ratio < 1 - tolerance.
	Regressed bool
}

// Comparison is the outcome of comparing a new report against a baseline.
type Comparison struct {
	Tolerance float64
	Designs   []DesignDelta
	// MissingCells are baseline entries absent from the new report: a
	// silently shrunk matrix must not pass as "no regression".
	MissingCells []string
	// HostMismatch notes a fingerprint difference (warning, not failure:
	// CI runners vary; the tolerance absorbs it).
	HostMismatch bool
}

// OK reports whether the comparison passes: no design regressed and no
// baseline cell disappeared.
func (c *Comparison) OK() bool {
	if len(c.MissingCells) > 0 {
		return false
	}
	for _, d := range c.Designs {
		if d.Regressed {
			return false
		}
	}
	return true
}

// Err returns nil when the comparison passes, a descriptive error otherwise.
func (c *Comparison) Err() error {
	if c.OK() {
		return nil
	}
	var parts []string
	for _, d := range c.Designs {
		if d.Regressed {
			parts = append(parts, fmt.Sprintf("%s %.1f%% slower", d.Design, 100*(1-d.Ratio)))
		}
	}
	if n := len(c.MissingCells); n > 0 {
		parts = append(parts, fmt.Sprintf("%d baseline cell(s) missing", n))
	}
	return fmt.Errorf("perf: regression beyond %.0f%% tolerance: %s",
		100*c.Tolerance, strings.Join(parts, ", "))
}

// Compare evaluates a new report against a baseline at the given tolerance
// (a fraction: 0.08 allows designs to lose up to 8% records/sec).
func Compare(baseline, current *Report, tolerance float64) (*Comparison, error) {
	if err := baseline.Validate(); err != nil {
		return nil, fmt.Errorf("perf: baseline: %w", err)
	}
	if err := current.Validate(); err != nil {
		return nil, fmt.Errorf("perf: current: %w", err)
	}
	c := &Comparison{
		Tolerance:    tolerance,
		HostMismatch: baseline.Host != current.Host,
	}

	type acc struct {
		cells          int
		logSum         float64
		logOld, logNew float64
		worstCell      string
		worstRatio     float64
	}
	byDesign := make(map[string]*acc)
	var order []string
	for _, old := range baseline.Entries {
		cur, ok := current.Lookup(old.Key())
		if !ok {
			c.MissingCells = append(c.MissingCells, old.Key())
			continue
		}
		a := byDesign[old.Design]
		if a == nil {
			a = &acc{worstRatio: math.Inf(1)}
			byDesign[old.Design] = a
			order = append(order, old.Design)
		}
		ratio := cur.RecordsPerSec / old.RecordsPerSec
		a.cells++
		a.logSum += math.Log(ratio)
		a.logOld += math.Log(old.RecordsPerSec)
		a.logNew += math.Log(cur.RecordsPerSec)
		if ratio < a.worstRatio {
			a.worstRatio = ratio
			a.worstCell = old.App + "/" + old.Model
		}
	}
	sort.Strings(c.MissingCells)
	for _, name := range order {
		a := byDesign[name]
		n := float64(a.cells)
		d := DesignDelta{
			Design:     name,
			Cells:      a.cells,
			Ratio:      math.Exp(a.logSum / n),
			WorstCell:  a.worstCell,
			WorstRatio: a.worstRatio,
			OldRecSec:  math.Exp(a.logOld / n),
			NewRecSec:  math.Exp(a.logNew / n),
		}
		d.Regressed = d.Ratio < 1-tolerance
		c.Designs = append(c.Designs, d)
	}
	return c, nil
}

// Table renders the per-design delta table (GitHub-flavored markdown, which
// also reads fine as plain text in a terminal or a CI job summary).
func (c *Comparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "| design | cells | baseline rec/s | current rec/s | Δ | worst cell | status |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---|---|\n")
	for _, d := range c.Designs {
		status := "ok"
		if d.Regressed {
			status = "**REGRESSED**"
		}
		fmt.Fprintf(&b, "| %s | %d | %.0f | %.0f | %+.1f%% | %s (%+.1f%%) | %s |\n",
			d.Design, d.Cells, d.OldRecSec, d.NewRecSec, 100*(d.Ratio-1),
			d.WorstCell, 100*(d.WorstRatio-1), status)
	}
	for _, m := range c.MissingCells {
		fmt.Fprintf(&b, "| %s | | | | | | **MISSING** |\n", m)
	}
	if c.HostMismatch {
		fmt.Fprintf(&b, "\n_host fingerprint differs from baseline — deltas are indicative only_\n")
	}
	return b.String()
}

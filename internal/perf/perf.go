// Package perf is the repository's benchmark-and-regression subsystem: it
// runs a fixed, seeded workload matrix (BTB designs × catalog apps × both
// core models) through the simulator, measures simulation throughput, and
// emits a schema-versioned JSON report that `pdede-bench -baseline` compares
// against a committed baseline to catch performance regressions in CI.
//
// The quantity under measurement is records/second of the per-record
// simulation loop (trace replay → BPU → cycle accounting): the paper's
// evaluation needs 102 apps × 100M+ warmup instructions (§5.1), so
// simulator throughput directly bounds how much of the evaluation each CI
// run can afford.
package perf

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SchemaVersion identifies the report layout. Comparisons refuse mismatched
// schemas: a schema bump means the measured quantities changed meaning.
const SchemaVersion = 1

// Model names the core model a measurement ran under.
const (
	ModelAnalytic = "analytic" // core.Run: analytic runahead model
	ModelPipeline = "pipeline" // core.RunPipeline: event-timestamped model
)

// Spec fixes the benchmark matrix. The zero value is not runnable; use
// DefaultSpec (the committed-baseline matrix) or derive from it.
type Spec struct {
	// Apps is the number of catalog applications, sampled evenly across
	// the catalog so every Table 1 category stays represented.
	Apps int `json:"apps"`
	// TotalInstrs/WarmupInstrs are the per-app window (the warmup runs
	// with structures live but unmeasured, as in the experiments).
	TotalInstrs  uint64 `json:"total_instrs"`
	WarmupInstrs uint64 `json:"warmup_instrs"`
	// Reps is how many times each cell runs; the fastest rep is reported
	// (standard practice: the minimum is the least noisy estimator of the
	// true cost on a shared machine).
	Reps int `json:"reps"`
	// Models lists the core models to measure (default both).
	Models []string `json:"models"`
	// Designs names the design set; informational (the set is fixed by
	// BenchDesigns) but recorded so reports are self-describing.
	Designs []string `json:"designs"`
}

// DefaultSpec is the committed-baseline matrix: every comparison design ×
// 4 apps × both core models, 3 reps.
func DefaultSpec() Spec {
	s := Spec{
		Apps:         4,
		TotalInstrs:  1_000_000,
		WarmupInstrs: 400_000,
		Reps:         3,
		Models:       []string{ModelAnalytic, ModelPipeline},
	}
	for _, d := range BenchDesigns() {
		s.Designs = append(s.Designs, d.Name)
	}
	return s
}

// BenchDesigns is the design set under measurement: the Figure 11a ablation
// chain (baseline → dedup-only → partition-only → PDede → MT → ME) plus the
// Shotgun comparison point, covering every structurally distinct lookup
// path in the repository.
func BenchDesigns() []experiments.Design {
	designs := experiments.AblationDesigns()
	for _, d := range experiments.ShotgunDesigns() {
		if d.Name == experiments.NameShotgun {
			designs = append(designs, d)
		}
	}
	return designs
}

// Host fingerprints the machine a report was produced on. Throughput
// numbers are only comparable between identical-enough hosts; the
// comparator surfaces fingerprint differences as a warning.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentHost fingerprints the running machine.
func CurrentHost() Host {
	return Host{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Entry is one cell of the matrix: a (design, app, model) measurement.
type Entry struct {
	Design string `json:"design"`
	App    string `json:"app"`
	Model  string `json:"model"`

	// Records is the trace record (dynamic branch) count replayed per rep;
	// Instructions the instruction count those records represent.
	Records      uint64 `json:"records"`
	Instructions uint64 `json:"instructions"`

	// WallNS is the fastest rep's wall time for the simulation call alone
	// (trace synthesis and predictor construction excluded).
	WallNS int64 `json:"wall_ns"`
	// NSPerRecord and RecordsPerSec derive from WallNS/Records.
	NSPerRecord   float64 `json:"ns_per_record"`
	RecordsPerSec float64 `json:"records_per_sec"`

	// BytesPerOp/AllocsPerOp are the heap bytes and allocation count of
	// one simulation call (fastest rep): the core's own construction
	// (direction predictor, caches) plus the record loop, which the
	// zero-alloc optimizations keep flat with trace length. The BTB's
	// construction happens before the measured interval.
	BytesPerOp  uint64 `json:"bytes_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
}

// Key identifies an entry across reports.
func (e Entry) Key() string { return e.Design + "|" + e.App + "|" + e.Model }

// Report is the schema-versioned output of one benchmark run.
type Report struct {
	Schema    int     `json:"schema"`
	Generated string  `json:"generated,omitempty"` // RFC3339, informational
	Spec      Spec    `json:"spec"`
	Host      Host    `json:"host"`
	Entries   []Entry `json:"entries"`

	// Scaling is the optional worker-scaling curve of the parallel suite
	// runner (pdede-bench -scaling). Informational: the comparator gates on
	// Entries only, since the curve's shape is a property of the host's
	// core count, not of the code alone.
	Scaling []ScalingEntry `json:"scaling,omitempty"`
}

// Lookup returns the entry with the given key.
func (r *Report) Lookup(key string) (Entry, bool) {
	for _, e := range r.Entries {
		if e.Key() == key {
			return e, true
		}
	}
	return Entry{}, false
}

// Validate checks a decoded report's schema and internal consistency.
func (r *Report) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("perf: report schema %d, want %d", r.Schema, SchemaVersion)
	}
	seen := make(map[string]bool, len(r.Entries))
	for _, e := range r.Entries {
		if e.Design == "" || e.App == "" || e.Model == "" {
			return fmt.Errorf("perf: entry with empty key fields: %+v", e)
		}
		if seen[e.Key()] {
			return fmt.Errorf("perf: duplicate entry %q", e.Key())
		}
		seen[e.Key()] = true
		if e.Records == 0 || e.WallNS <= 0 {
			return fmt.Errorf("perf: entry %q has no measurement", e.Key())
		}
	}
	return nil
}

// sampleApps mirrors the experiment runner's even catalog sampling so the
// bench exercises the same app mix as the experiments.
func sampleApps(n int) []workload.Config {
	apps := workload.Catalog()
	if n <= 0 || n >= len(apps) {
		return apps
	}
	out := make([]workload.Config, 0, n)
	stride := float64(len(apps)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, apps[int(float64(i)*stride)])
	}
	return out
}

// Progress receives one line per completed matrix cell (nil = silent).
type Progress func(format string, args ...any)

// Run executes the matrix and returns the report. Traces are synthesized
// once per app and replayed for every (design, model, rep); the measured
// interval covers exactly the simulation call.
func Run(spec Spec, progress Progress) (*Report, error) {
	if spec.Reps <= 0 {
		spec.Reps = 1
	}
	if len(spec.Models) == 0 {
		spec.Models = []string{ModelAnalytic, ModelPipeline}
	}
	designs := BenchDesigns()
	apps := sampleApps(spec.Apps)

	rep := &Report{
		Schema:    SchemaVersion,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Spec:      spec,
		Host:      CurrentHost(),
	}

	for _, app := range apps {
		_, tr, err := workload.Build(app, spec.TotalInstrs)
		if err != nil {
			return nil, fmt.Errorf("perf: building %s: %w", app.Name, err)
		}
		records := uint64(len(tr.Records))
		instrs := tr.Instructions()
		for _, d := range designs {
			for _, model := range spec.Models {
				e, err := measure(d, app, tr, model, spec)
				if err != nil {
					return nil, fmt.Errorf("perf: %s/%s/%s: %w", d.Name, app.Name, model, err)
				}
				e.Records = records
				e.Instructions = instrs
				e.NSPerRecord = float64(e.WallNS) / float64(records)
				e.RecordsPerSec = float64(records) / (float64(e.WallNS) * 1e-9)
				rep.Entries = append(rep.Entries, e)
				if progress != nil {
					progress("%-22s %-28s %-8s %8.1f ns/rec %12.0f rec/s\n",
						d.Name, app.Name, model, e.NSPerRecord, e.RecordsPerSec)
				}
			}
		}
	}
	return rep, nil
}

// measure runs one matrix cell: Reps simulations, keeping the fastest.
func measure(d experiments.Design, app workload.Config, tr *trace.Memory, model string, spec Spec) (Entry, error) {
	e := Entry{Design: d.Name, App: app.Name, Model: model}
	for rep := 0; rep < spec.Reps; rep++ {
		tp, err := d.New()
		if err != nil {
			return e, err
		}
		cfg := core.Config{
			Params:       core.Icelake(),
			BackendCPI:   app.BackendCPI,
			BTB:          tp,
			WarmupInstrs: spec.WarmupInstrs,
		}
		if d.Mod != nil {
			d.Mod(&cfg)
		}

		var msBefore, msAfter runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		if model == ModelPipeline {
			_, err = core.RunPipeline(cfg, tr)
		} else {
			_, err = core.Run(cfg, tr)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&msAfter)
		if err != nil {
			return e, err
		}

		if rep == 0 || wall.Nanoseconds() < e.WallNS {
			e.WallNS = wall.Nanoseconds()
			e.BytesPerOp = msAfter.TotalAlloc - msBefore.TotalAlloc
			e.AllocsPerOp = msAfter.Mallocs - msBefore.Mallocs
		}
	}
	return e, nil
}

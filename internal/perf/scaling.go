package perf

import (
	"fmt"
	"time"

	"repro/internal/experiments"
)

// ScalingEntry is one point of the worker-scaling curve: the wall clock of
// a fixed suite sweep at a given Options.Workers, and its speedup against
// the 1-worker (sequential-schedule) point of the same run. Results are
// bit-identical across the curve — the equivalence suite in
// internal/experiments proves it — so the curve measures scheduling alone.
type ScalingEntry struct {
	Workers int     `json:"workers"`
	WallNS  int64   `json:"wall_ns"`
	Speedup float64 `json:"speedup_vs_1"`
}

// ScalingSpec fixes the sweep the scaling curve measures.
type ScalingSpec struct {
	Apps         int    `json:"apps"`
	TotalInstrs  uint64 `json:"total_instrs"`
	WarmupInstrs uint64 `json:"warmup_instrs"`
	Workers      []int  `json:"workers"`
}

// DefaultScalingSpec is the committed-baseline curve: the bench design set
// over 8 sampled apps at 1, 2, 4 and 8 workers. Interpret the measured
// speedups against the host fingerprint's num_cpu — a 1-core container
// legitimately reports a flat curve.
func DefaultScalingSpec() ScalingSpec {
	return ScalingSpec{
		Apps:         8,
		TotalInstrs:  600_000,
		WarmupInstrs: 250_000,
		Workers:      []int{1, 2, 4, 8},
	}
}

// RunScaling sweeps the bench design set at each worker count and returns
// the curve. The first measured count is the speedup reference, so specs
// should list 1 first.
func RunScaling(spec ScalingSpec, progress Progress) ([]ScalingEntry, error) {
	if len(spec.Workers) == 0 {
		spec.Workers = DefaultScalingSpec().Workers
	}
	designs := BenchDesigns()
	out := make([]ScalingEntry, 0, len(spec.Workers))
	var ref int64
	for _, workers := range spec.Workers {
		opts := experiments.Options{
			Apps:         spec.Apps,
			TotalInstrs:  spec.TotalInstrs,
			WarmupInstrs: spec.WarmupInstrs,
			Workers:      workers,
		}
		start := time.Now()
		suite, err := experiments.NewRunner(opts).Run(designs)
		wall := time.Since(start).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("perf: scaling sweep at %d workers: %w", workers, err)
		}
		if n := len(suite.Failed()); n != 0 {
			return nil, fmt.Errorf("perf: scaling sweep at %d workers: %d apps failed", workers, n)
		}
		e := ScalingEntry{Workers: workers, WallNS: wall}
		if ref == 0 {
			ref = wall
		}
		e.Speedup = float64(ref) / float64(wall)
		out = append(out, e)
		if progress != nil {
			progress("scaling %2d workers %10.2fms  %.2fx\n", workers, float64(wall)/1e6, e.Speedup)
		}
	}
	return out, nil
}

package experiments

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// -update regenerates the golden files from the current implementation:
//
//	go test ./internal/experiments/ -run TestGolden -update
//
// Review the diff before committing — the goldens exist to make every
// metric-shifting change deliberate and visible.
var updateGoldens = flag.Bool("update", false, "rewrite golden regression files")

// goldenOptions pins a small, fast, fully deterministic suite: 4 apps
// sampled across the categories, short windows, serial execution (the
// runner is order-deterministic regardless, but serial keeps timings tame
// in -race runs).
func goldenOptions() Options {
	return Options{
		Apps:         4,
		TotalInstrs:  300_000,
		WarmupInstrs: 100_000,
		Parallelism:  2,
	}
}

// goldenRelTol absorbs cross-platform float drift (e.g. fused
// multiply-add contraction on arm64) while still catching any real change
// in the cycle accounting.
const goldenRelTol = 1e-6

func runGoldenSuite(t *testing.T, designs []Design) []ExportRecord {
	t.Helper()
	suite, err := NewRunner(goldenOptions()).Run(designs)
	if err != nil {
		t.Fatal(err)
	}
	recs := suite.Export()
	if len(recs) == 0 {
		t.Fatal("golden suite produced no records")
	}
	return recs
}

func goldenCompare(t *testing.T, path string, got []ExportRecord) {
	t.Helper()
	if *updateGoldens {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d records)", path, len(got))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	var want []ExportRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden %s: %v", path, err)
	}
	if len(got) != len(want) {
		t.Fatalf("record count %d, golden has %d", len(got), len(want))
	}
	for i := range want {
		compareRecord(t, i, got[i], want[i])
	}
}

// compareRecord checks one record field-by-field: integers and strings
// exactly, floats within goldenRelTol relative tolerance.
func compareRecord(t *testing.T, i int, got, want ExportRecord) {
	t.Helper()
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	typ := gv.Type()
	for f := 0; f < typ.NumField(); f++ {
		name := typ.Field(f).Name
		g, w := gv.Field(f), wv.Field(f)
		switch g.Kind() {
		case reflect.Float64:
			gf, wf := g.Float(), w.Float()
			if math.Abs(gf-wf) > goldenRelTol*math.Max(1, math.Abs(wf)) {
				t.Errorf("record %d (%s/%s) %s = %g, golden %g",
					i, want.App, want.Design, name, gf, wf)
			}
		default:
			if !reflect.DeepEqual(g.Interface(), w.Interface()) {
				t.Errorf("record %d (%s/%s) %s = %v, golden %v",
					i, want.App, want.Design, name, g.Interface(), w.Interface())
			}
		}
	}
}

// TestGoldenFig1 pins the Figure 1 inputs: the baseline design's stall
// decomposition metrics over the golden app subset.
func TestGoldenFig1(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suites skipped in -short mode")
	}
	recs := runGoldenSuite(t, []Design{BaselineDesign(NameBaseline, 4096)})
	goldenCompare(t, filepath.Join("testdata", "fig1.golden.json"), recs)
}

// TestGoldenFig10 pins the headline comparison: baseline vs the three PDede
// variants, every exported metric.
func TestGoldenFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suites skipped in -short mode")
	}
	recs := runGoldenSuite(t, StandardDesigns())
	goldenCompare(t, filepath.Join("testdata", "fig10.golden.json"), recs)
}

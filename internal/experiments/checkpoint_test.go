package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/btb"
	"repro/internal/core"
)

// ckptMeta is the common sweep identity used by the checkpoint tests.
func ckptMeta() CheckpointMeta {
	return CheckpointMeta{TotalInstrs: 1000, WarmupInstrs: 100}
}

func TestCheckpointMissingFileIsEmpty(t *testing.T) {
	c, err := LoadCheckpoint(filepath.Join(t.TempDir(), "none.ckpt"), ckptMeta())
	if err != nil {
		t.Fatal(err)
	}
	if c.Apps() != 0 {
		t.Errorf("empty checkpoint has %d apps", c.Apps())
	}
	if _, ok := c.Done("a", "d"); ok {
		t.Error("empty checkpoint reported a done pair")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.ckpt")
	c, err := LoadCheckpoint(path, ckptMeta())
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Result{App: "a", Design: "d", Instructions: 900, Cycles: 450}
	if err := c.Record("a", map[string]*core.Result{"d": res}); err != nil {
		t.Fatal(err)
	}
	// Merging a second design must preserve the first.
	if err := c.Record("a", map[string]*core.Result{"d2": {App: "a", Design: "d2"}}); err != nil {
		t.Fatal(err)
	}

	c2, err := LoadCheckpoint(path, ckptMeta())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Done("a", "d")
	if !ok {
		t.Fatal("pair (a, d) lost across reload")
	}
	if got.IPC() != res.IPC() || got.Instructions != res.Instructions {
		t.Errorf("restored result %+v differs from %+v", got, res)
	}
	if _, ok := c2.Done("a", "d2"); !ok {
		t.Error("pair (a, d2) lost across reload")
	}
}

func TestCheckpointWindowMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "win.ckpt")
	c, _ := LoadCheckpoint(path, ckptMeta())
	if err := c.Record("a", map[string]*core.Result{"d": {}}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, CheckpointMeta{TotalInstrs: 2000, WarmupInstrs: 100}); err == nil {
		t.Error("mismatched TotalInstrs accepted")
	}
	if _, err := LoadCheckpoint(path, CheckpointMeta{TotalInstrs: 1000, WarmupInstrs: 200}); err == nil {
		t.Error("mismatched WarmupInstrs accepted")
	}
}

func TestCheckpointSeedMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seed.ckpt")
	meta := ckptMeta()
	meta.Seed = 7
	c, _ := LoadCheckpoint(path, meta)
	if err := c.Record("a", map[string]*core.Result{"d": {}}); err != nil {
		t.Fatal(err)
	}
	meta.Seed = 8
	if _, err := LoadCheckpoint(path, meta); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("mismatched seed accepted: %v", err)
	}
}

// The same design name recorded under a different configuration digest must
// refuse to resume: silently mixing results from two shapes of "b256"
// would corrupt the suite's science.
func TestCheckpointDesignChangeRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "design.ckpt")
	meta := ckptMeta()
	meta.Designs = DesignDigests([]Design{BaselineDesign("b", 256)})
	c, err := LoadCheckpoint(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Record("a", map[string]*core.Result{"b": {}}); err != nil {
		t.Fatal(err)
	}

	// Same name, same config: resume is fine.
	if _, err := LoadCheckpoint(path, meta); err != nil {
		t.Fatalf("unchanged design rejected: %v", err)
	}
	// Same name, different entry count: resume must be refused.
	changed := ckptMeta()
	changed.Designs = DesignDigests([]Design{BaselineDesign("b", 512)})
	if _, err := LoadCheckpoint(path, changed); err == nil || !strings.Contains(err.Error(), "design b") {
		t.Errorf("changed design accepted: %v", err)
	}
}

// Different experiments run disjoint design sets against one checkpoint
// path; only overlapping names are validated, and new digests merge in.
func TestCheckpointDisjointDesignsMerge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "merge.ckpt")
	m1 := ckptMeta()
	m1.Designs = DesignDigests([]Design{BaselineDesign("x", 256)})
	c, _ := LoadCheckpoint(path, m1)
	if err := c.Record("a", map[string]*core.Result{"x": {}}); err != nil {
		t.Fatal(err)
	}

	m2 := ckptMeta()
	m2.Designs = DesignDigests([]Design{BaselineDesign("y", 512)})
	c2, err := LoadCheckpoint(path, m2)
	if err != nil {
		t.Fatalf("disjoint design set rejected: %v", err)
	}
	if err := c2.Record("a", map[string]*core.Result{"y": {}}); err != nil {
		t.Fatal(err)
	}

	// A third load sees both digests, so changing x is still caught.
	bad := ckptMeta()
	bad.Designs = DesignDigests([]Design{BaselineDesign("x", 1024)})
	if _, err := LoadCheckpoint(path, bad); err == nil {
		t.Error("changed design accepted after digest merge")
	}
}

func TestDesignDigestsDistinguishConfigs(t *testing.T) {
	d1 := DesignDigests([]Design{BaselineDesign("b", 256)})["b"]
	d2 := DesignDigests([]Design{BaselineDesign("b", 512)})["b"]
	if d1 == d2 {
		t.Error("digest identical across entry counts")
	}
	// Mod hooks (core-config changes) must alter the digest too.
	plain := BaselineDesign("b", 256)
	perf := WithPerfectDirection(BaselineDesign("b", 256))
	perf.Name = "b" // same name, different core config
	if DesignDigests([]Design{plain})["b"] == DesignDigests([]Design{perf})["b"] {
		t.Error("digest identical across Mod hooks")
	}
	// A crashing constructor digests as name-only instead of panicking.
	boom := Design{Name: "boom", New: func() (btb.TargetPredictor, error) { panic("nope") }}
	if got := DesignDigests([]Design{boom})["boom"]; got == "" {
		t.Error("panicking constructor produced no digest")
	}
}

func TestCheckpointCorruptFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, ckptMeta()); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corrupt file error = %v", err)
	}
}

// Every Record leaves a complete, parseable document behind (the
// write-temp-then-rename contract), and no temp litter.
func TestCheckpointAtomicFlush(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "atomic.ckpt")
	c, _ := LoadCheckpoint(path, ckptMeta())
	for i, app := range []string{"a", "b", "c"} {
		if err := c.Record(app, map[string]*core.Result{"d": {}}); err != nil {
			t.Fatal(err)
		}
		c2, err := LoadCheckpoint(path, ckptMeta())
		if err != nil {
			t.Fatalf("after record %d: %v", i, err)
		}
		if c2.Apps() != i+1 {
			t.Fatalf("after record %d: %d apps persisted", i, c2.Apps())
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir holds %d entries, want just the checkpoint", len(entries))
	}
}

// TestCheckpointFlushOrderIndependent is the regression test for the
// sequential-runner assumption the parallel executor broke: apps now
// finish — and Record — in scheduler order, not catalog order, so the
// on-disk document must be a pure function of the recorded *set*. That is
// enforced twice in flushLocked: app entries are emitted in sorted name
// order, and each entry's design map is serialized by encoding/json,
// which sorts map keys. Two checkpoints fed the same records in opposite,
// interleaved orders must therefore be byte-identical.
func TestCheckpointFlushOrderIndependent(t *testing.T) {
	dir := t.TempDir()
	res := func(app, design string, cyc float64) map[string]*core.Result {
		return map[string]*core.Result{design: {App: app, Design: design, Instructions: 900, Cycles: cyc}}
	}
	record := func(t *testing.T, c *Checkpoint, app, design string, cyc float64) {
		t.Helper()
		if err := c.Record(app, res(app, design, cyc)); err != nil {
			t.Fatal(err)
		}
	}

	fwd, err := LoadCheckpoint(filepath.Join(dir, "fwd.ckpt"), ckptMeta())
	if err != nil {
		t.Fatal(err)
	}
	record(t, fwd, "alpha", "d1", 100)
	record(t, fwd, "alpha", "d2", 110)
	record(t, fwd, "beta", "d1", 200)
	record(t, fwd, "gamma", "d2", 310)

	rev, err := LoadCheckpoint(filepath.Join(dir, "rev.ckpt"), ckptMeta())
	if err != nil {
		t.Fatal(err)
	}
	record(t, rev, "gamma", "d2", 310)
	record(t, rev, "beta", "d1", 200)
	record(t, rev, "alpha", "d2", 110)
	record(t, rev, "alpha", "d1", 100)

	a, err := os.ReadFile(filepath.Join(dir, "fwd.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "rev.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("flush order leaked into the checkpoint document:\nfwd:\n%s\nrev:\n%s", a, b)
	}
}

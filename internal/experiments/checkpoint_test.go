package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestCheckpointMissingFileIsEmpty(t *testing.T) {
	c, err := LoadCheckpoint(filepath.Join(t.TempDir(), "none.ckpt"), 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Apps() != 0 {
		t.Errorf("empty checkpoint has %d apps", c.Apps())
	}
	if _, ok := c.Done("a", "d"); ok {
		t.Error("empty checkpoint reported a done pair")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.ckpt")
	c, err := LoadCheckpoint(path, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Result{App: "a", Design: "d", Instructions: 900, Cycles: 450}
	if err := c.Record("a", map[string]*core.Result{"d": res}); err != nil {
		t.Fatal(err)
	}
	// Merging a second design must preserve the first.
	if err := c.Record("a", map[string]*core.Result{"d2": {App: "a", Design: "d2"}}); err != nil {
		t.Fatal(err)
	}

	c2, err := LoadCheckpoint(path, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Done("a", "d")
	if !ok {
		t.Fatal("pair (a, d) lost across reload")
	}
	if got.IPC() != res.IPC() || got.Instructions != res.Instructions {
		t.Errorf("restored result %+v differs from %+v", got, res)
	}
	if _, ok := c2.Done("a", "d2"); !ok {
		t.Error("pair (a, d2) lost across reload")
	}
}

func TestCheckpointWindowMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "win.ckpt")
	c, _ := LoadCheckpoint(path, 1000, 100)
	if err := c.Record("a", map[string]*core.Result{"d": {}}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, 2000, 100); err == nil {
		t.Error("mismatched TotalInstrs accepted")
	}
	if _, err := LoadCheckpoint(path, 1000, 200); err == nil {
		t.Error("mismatched WarmupInstrs accepted")
	}
}

func TestCheckpointCorruptFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, 1000, 100); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corrupt file error = %v", err)
	}
}

// Every Record leaves a complete, parseable document behind (the
// write-temp-then-rename contract), and no temp litter.
func TestCheckpointAtomicFlush(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "atomic.ckpt")
	c, _ := LoadCheckpoint(path, 1000, 100)
	for i, app := range []string{"a", "b", "c"} {
		if err := c.Record(app, map[string]*core.Result{"d": {}}); err != nil {
			t.Fatal(err)
		}
		c2, err := LoadCheckpoint(path, 1000, 100)
		if err != nil {
			t.Fatalf("after record %d: %v", i, err)
		}
		if c2.Apps() != i+1 {
			t.Fatalf("after record %d: %d apps persisted", i, c2.Apps())
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir holds %d entries, want just the checkpoint", len(entries))
	}
}

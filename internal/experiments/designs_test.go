package experiments

import (
	"testing"

	"repro/internal/core"
)

func TestDesignConstructors(t *testing.T) {
	sets := [][]Design{StandardDesigns(), AblationDesigns(), ShotgunDesigns()}
	for si, ds := range sets {
		names := map[string]bool{}
		for _, d := range ds {
			if d.Name == "" || d.New == nil {
				t.Errorf("set %d: incomplete design %+v", si, d)
				continue
			}
			if names[d.Name] {
				t.Errorf("set %d: duplicate design name %q", si, d.Name)
			}
			names[d.Name] = true
			tp, err := d.New()
			if err != nil {
				t.Errorf("set %d %s: %v", si, d.Name, err)
				continue
			}
			if tp.StorageBits() == 0 {
				t.Errorf("%s reports zero storage", d.Name)
			}
			// A second New must give independent state.
			tp2, _ := d.New()
			if tp == tp2 {
				t.Errorf("%s: New returned shared instance", d.Name)
			}
		}
	}
}

func TestDesignWrappers(t *testing.T) {
	base := BaselineDesign(NameBaseline, 4096)

	pd := WithPerfectDirection(base)
	var cfg core.Config
	pd.Mod(&cfg)
	if !cfg.PerfectDirection {
		t.Error("WithPerfectDirection did not set the flag")
	}
	if pd.Name == base.Name {
		t.Error("wrapper did not rename the design")
	}

	it := WithITTAGE(BaselineDesign(NameBaseline, 4096))
	cfg = core.Config{}
	it.Mod(&cfg)
	if cfg.ITTAGE == nil {
		t.Error("WithITTAGE did not install a predictor")
	}

	rets := WithReturnsInBTB(BaselineDesign(NameBaseline, 4096))
	cfg = core.Config{}
	rets.Mod(&cfg)
	if !cfg.StoreReturnsInBTB {
		t.Error("WithReturnsInBTB did not set the flag")
	}

	p := core.Icelake()
	p.FetchQueueEntries = 7
	wp := WithParams(BaselineDesign(NameBaseline, 4096), "custom", p)
	cfg = core.Config{}
	wp.Mod(&cfg)
	if cfg.Params.FetchQueueEntries != 7 {
		t.Error("WithParams did not apply parameters")
	}
	if wp.Name != "custom" {
		t.Errorf("WithParams name = %q", wp.Name)
	}

	// Wrappers compose: both Mods fire.
	both := WithPerfectDirection(WithReturnsInBTB(BaselineDesign(NameBaseline, 4096)))
	cfg = core.Config{}
	both.Mod(&cfg)
	if !cfg.PerfectDirection || !cfg.StoreReturnsInBTB {
		t.Error("wrapper composition lost a Mod")
	}
}

func TestTwoLevelDesignConstructs(t *testing.T) {
	for _, pdedeL1 := range []bool{false, true} {
		d := TwoLevelDesign("2l", 256, pdedeL1)
		tp, err := d.New()
		if err != nil {
			t.Fatal(err)
		}
		if tp.Name() == "" {
			t.Error("unnamed two-level design")
		}
	}
}

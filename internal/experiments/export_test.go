package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/pdede"
)

func quickME() pdede.Config { return pdede.MultiEntryConfig() }

func TestExportAndJSON(t *testing.T) {
	r := NewRunner(Options{Apps: 3, TotalInstrs: 500_000, WarmupInstrs: 200_000})
	suite, err := r.Run([]Design{
		BaselineDesign(NameBaseline, 4096),
		PDedeDesign(NameMultiEntry, quickME()),
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := suite.Export()
	if len(recs) != 6 { // 3 apps × 2 designs
		t.Fatalf("exported %d records, want 6", len(recs))
	}
	for _, rec := range recs {
		if rec.App == "" || rec.Design == "" || rec.Category == "" {
			t.Errorf("incomplete record: %+v", rec)
		}
		if rec.IPC <= 0 || rec.Instructions == 0 {
			t.Errorf("degenerate record: %+v", rec)
		}
		if rec.CondMisses+rec.UncondMisses+rec.IndirectMisses > rec.BTBMisses {
			t.Errorf("per-class misses exceed total: %+v", rec)
		}
	}

	var buf bytes.Buffer
	if err := suite.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []ExportRecord
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(back) != len(recs) {
		t.Errorf("round-trip lost records: %d vs %d", len(back), len(recs))
	}
}

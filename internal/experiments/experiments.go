package experiments

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/analysis"
	"repro/internal/workload"
)

// Experiment reproduces one table or figure of the paper.
type Experiment struct {
	// ID is the handle used by cmd/pdede-experiments (-run fig10).
	ID string
	// Title describes the artifact.
	Title string
	// Paper is the paper's headline result for side-by-side comparison.
	Paper string
	// Run executes the experiment and writes its report.
	Run func(r *Runner, w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		expFig1(), expFig3(), expFig4(), expFig5(), expFig6(), expFig7(), expFig8(),
		expFig10(), expFig11a(), expFig11b(), expFig11c(),
		expFig12a(), expFig12b(), expFig12c(),
		expTable2(), expTable4(),
		expSec55(), expSec56(), expSec57(), expSec511(),
	}
}

// Extended returns paper artifacts plus the extension ablations.
func Extended() []Experiment {
	return append(All(), ExtExperiments()...)
}

// ByID locates an experiment (paper artifacts and extensions).
func ByID(id string) (Experiment, bool) {
	for _, e := range Extended() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// AppChar pairs an application with its trace characterization.
type AppChar struct {
	App  workload.Config
	Char *analysis.Characterization
}

// CharacterizeSuite runs the §3 analysis over the selected apps in
// parallel.
func (r *Runner) CharacterizeSuite() ([]AppChar, error) {
	apps := r.SuiteApps()
	out := make([]AppChar, len(apps))
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
	)
	sem := make(chan struct{}, r.Opts.Parallelism)
	for i := range apps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, tr, err := workload.Build(apps[i], r.Opts.TotalInstrs)
			if err == nil {
				var c *analysis.Characterization
				c, err = analysis.Characterize(tr.Open())
				if err == nil {
					mu.Lock()
					out[i] = AppChar{App: apps[i], Char: c}
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			if firstEr == nil {
				firstEr = fmt.Errorf("app %s: %w", apps[i].Name, err)
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return out, nil
}

package experiments

import (
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"

	"repro/internal/analysis"
	"repro/internal/workload"
)

// Experiment reproduces one table or figure of the paper.
type Experiment struct {
	// ID is the handle used by cmd/pdede-experiments (-run fig10).
	ID string
	// Title describes the artifact.
	Title string
	// Paper is the paper's headline result for side-by-side comparison.
	Paper string
	// Run executes the experiment and writes its report.
	Run func(r *Runner, w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		expFig1(), expFig3(), expFig4(), expFig5(), expFig6(), expFig7(), expFig8(),
		expFig10(), expFig11a(), expFig11b(), expFig11c(),
		expFig12a(), expFig12b(), expFig12c(),
		expTable2(), expTable4(),
		expSec55(), expSec56(), expSec57(), expSec511(),
	}
}

// Extended returns paper artifacts plus the extension ablations.
func Extended() []Experiment {
	return append(All(), ExtExperiments()...)
}

// ByID locates an experiment (paper artifacts and extensions).
func ByID(id string) (Experiment, bool) {
	for _, e := range Extended() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// AppChar pairs an application with its trace characterization.
type AppChar struct {
	App  workload.Config
	Char *analysis.Characterization
}

// CharacterizeSuite runs the §3 analysis over the selected apps in
// parallel. Each app is panic-isolated like Run; the base context (see
// WithContext) cancels outstanding apps. Without KeepGoing the joined
// per-app errors fail the call; with KeepGoing failed apps are dropped
// from the returned slice and their errors are available via Runner.Err.
func (r *Runner) CharacterizeSuite() ([]AppChar, error) {
	ctx := r.baseCtx()
	apps := r.SuiteApps()
	out := make([]AppChar, len(apps))
	errs := make([]error, len(apps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.Opts.Workers)
	for i := range apps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = fmt.Errorf("app %s: %w", apps[i].Name, ctx.Err())
				return
			}
			//pdede:blocking-ok releasing a held semaphore slot from a buffered channel never blocks
			defer func() { <-sem }()
			c, err := r.characterizeApp(apps[i])
			if err != nil {
				errs[i] = fmt.Errorf("app %s: %w", apps[i].Name, err)
				r.logf("runner: characterize %s FAILED: %v", apps[i].Name, err)
				return
			}
			out[i] = AppChar{App: apps[i], Char: c}
		}(i)
	}
	wg.Wait()
	if joined := errors.Join(errs...); joined != nil {
		if !r.Opts.KeepGoing {
			return nil, joined
		}
		r.noteFailures(joined)
		kept := out[:0]
		for _, c := range out {
			if c.Char != nil {
				kept = append(kept, c)
			}
		}
		out = kept
		if len(out) == 0 {
			return nil, fmt.Errorf("all %d apps failed: %w", len(apps), joined)
		}
	}
	return out, nil
}

// characterizeApp builds and characterizes one app, converting panics into
// errors.
func (r *Runner) characterizeApp(app workload.Config) (_ *analysis.Characterization, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	tr, err := r.buildTrace(app)
	if err != nil {
		return nil, err
	}
	return analysis.Characterize(tr.Open())
}

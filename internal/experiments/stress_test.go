package experiments

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/btb"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestParallelStress hammers every resilience mechanism at once from a
// worker pool far larger than the cell count: ten clean designs plus one
// that panics mid-trace, transient read faults on a third of the apps
// (cleared after two opens, so those apps retry), and a live checkpoint
// flushed concurrently from every finishing app. Run under `make race`
// this is the schedule fuzzer for the parallel runner; the assertions
// below additionally pin that the chaos still reduces to the exact
// sequential outcome — every app fails at the panicking design, keeps all
// ten clean results, and checkpoints exactly those.
func TestParallelStress(t *testing.T) {
	cat := tinyCatalog(6)
	const cleanDesigns = 10

	opts := Options{
		Catalog:        cat,
		TotalInstrs:    30_000,
		WarmupInstrs:   10_000,
		Workers:        32, // far more workers than runnable cells
		KeepGoing:      true,
		Retries:        3,
		Seed:           5,
		CheckpointPath: filepath.Join(t.TempDir(), "stress.ckpt"),
	}
	faulted := map[string]bool{"tiny-1": true, "tiny-4": true}
	var (
		mu      sync.Mutex
		sources = map[string]*trace.FaultSource{}
	)
	opts.BuildTrace = func(app workload.Config, total uint64) (trace.Source, error) {
		src, err := buildSource(app, total)
		if err != nil {
			return nil, err
		}
		if !faulted[app.Name] {
			return src, nil
		}
		// Memoize per app so the open counter survives retries and the
		// transient fault actually clears on the third reader.
		mu.Lock()
		defer mu.Unlock()
		if fs := sources[app.Name]; fs != nil {
			return fs, nil
		}
		fs := &trace.FaultSource{Src: src, Plan: trace.FaultPlan{FailAt: 10, TransientOpens: 2}}
		sources[app.Name] = fs
		return fs, nil
	}

	var designs []Design
	for i := 0; i < cleanDesigns; i++ {
		designs = append(designs, BaselineDesign(fmt.Sprintf("b%d", i), 128<<uint(i%4)))
	}
	designs = append(designs, Design{Name: "panicky", New: func() (btb.TargetPredictor, error) {
		inner, err := btb.NewBaseline(btb.BaselineConfig{Entries: 256})
		if err != nil {
			return nil, err
		}
		return &panickyBTB{TargetPredictor: inner}, nil
	}})

	suite, err := NewRunner(opts).Run(designs)
	if suite == nil {
		t.Fatalf("no suite returned (err=%v)", err)
	}
	if err == nil {
		t.Error("want all-apps-failed error when every app hits the panicking design")
	}

	for i := range suite.Apps {
		a := &suite.Apps[i]
		var pe *PanicError
		if !errors.As(a.Err, &pe) || !strings.Contains(a.Err.Error(), "design panicky") {
			t.Errorf("%s: err = %v, want *PanicError attributed to design panicky", a.App.Name, a.Err)
		}
		if len(a.Results) != cleanDesigns {
			t.Errorf("%s: %d results survived, want %d clean designs", a.App.Name, len(a.Results), cleanDesigns)
		}
		wantAttempts := 1
		if faulted[a.App.Name] {
			// Two transient warmup failures, then the attempt that reaches
			// (and dies at) the panicking design.
			wantAttempts = 3
		}
		if a.Attempts != wantAttempts {
			t.Errorf("%s: %d attempts, want %d", a.App.Name, a.Attempts, wantAttempts)
		}
	}

	ck, err := LoadCheckpoint(opts.CheckpointPath, CheckpointMeta{
		TotalInstrs:  opts.TotalInstrs,
		WarmupInstrs: opts.WarmupInstrs,
		Seed:         opts.Seed,
		Designs:      DesignDigests(designs),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range cat {
		for i := 0; i < cleanDesigns; i++ {
			if _, ok := ck.Done(app.Name, fmt.Sprintf("b%d", i)); !ok {
				t.Errorf("%s: clean design b%d missing from checkpoint", app.Name, i)
			}
		}
		if _, ok := ck.Done(app.Name, "panicky"); ok {
			t.Errorf("%s: failed design present in checkpoint", app.Name)
		}
	}
}

package experiments

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// warmCloneBase returns the canonical base config the suite runner warms
// with, scaled down for test speed. AuditEvery is set so the periodic
// btb.Auditable deep checks run on both paths at the same cadence — the
// differential-oracle guarantee that a warm clone is not just numerically
// but structurally equivalent to a cold run.
func warmCloneBase(app workload.Config) core.Config {
	return core.Config{
		Params:       core.Icelake(),
		BackendCPI:   app.BackendCPI,
		WarmupInstrs: 40_000,
		AuditEvery:   2048,
	}
}

// TestWarmCloneOracle is the warm-state acceptance test: for every design
// in the registry, a run that clones the shared warm state and replays the
// prefix through the design-private fast path must produce a Result
// bit-identical to a cold run of the same (app, design) pair. Result holds
// only value fields, so == is a full bit comparison.
func TestWarmCloneOracle(t *testing.T) {
	app := workload.Default()
	app.Name = "warm-oracle"
	app.Seed = 41
	_, src, err := workload.Build(app, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	base := warmCloneBase(app)
	warm, err := core.WarmupContext(context.Background(), base, src)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range DiffDesigns() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			coldCfg := base
			tp, err := d.New()
			if err != nil {
				t.Fatal(err)
			}
			coldCfg.BTB = tp
			if d.Mod != nil {
				d.Mod(&coldCfg)
			}
			cold, err := core.RunContext(context.Background(), coldCfg, src)
			if err != nil {
				t.Fatal(err)
			}

			warmCfg := base
			tp2, err := d.New()
			if err != nil {
				t.Fatal(err)
			}
			warmCfg.BTB = tp2
			if d.Mod != nil {
				d.Mod(&warmCfg)
			}
			if err := warm.Compatible(warmCfg); err != nil {
				t.Fatalf("registry design incompatible with warm clone: %v", err)
			}
			got, err := core.RunWarmContext(context.Background(), warmCfg, src, warm)
			if err != nil {
				t.Fatal(err)
			}
			if *got != *cold {
				t.Errorf("warm-clone run diverges from cold run:\nwarm: %+v\ncold: %+v", got, cold)
			}
		})
	}
}

// TestWarmCloneOracleModdedConfigs exercises the compatibility gate's edge
// configs explicitly: perfect direction, ITTAGE-served indirects, and
// returns routed through the BTB all reuse the shared warm state (their
// warmup-visible shared-state traffic is design-independent), while a
// parameter change or the pipeline model must be refused.
func TestWarmCloneOracleModdedConfigs(t *testing.T) {
	app := workload.Default()
	app.Name = "warm-modded"
	app.Seed = 43
	_, src, err := workload.Build(app, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	base := warmCloneBase(app)
	warm, err := core.WarmupContext(context.Background(), base, src)
	if err != nil {
		t.Fatal(err)
	}

	compatible := []Design{
		WithPerfectDirection(BaselineDesign("perfect-dir", 1024)),
		WithITTAGE(BaselineDesign("ittage", 1024)),
		WithReturnsInBTB(BaselineDesign("returns-in-btb", 1024)),
	}
	for _, d := range compatible {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			mk := func() core.Config {
				cfg := base
				tp, err := d.New()
				if err != nil {
					t.Fatal(err)
				}
				cfg.BTB = tp
				if d.Mod != nil {
					d.Mod(&cfg)
				}
				return cfg
			}
			cold, err := core.RunContext(context.Background(), mk(), src)
			if err != nil {
				t.Fatal(err)
			}
			warmCfg := mk()
			if err := warm.Compatible(warmCfg); err != nil {
				t.Fatalf("expected compatible, got %v", err)
			}
			got, err := core.RunWarmContext(context.Background(), warmCfg, src, warm)
			if err != nil {
				t.Fatal(err)
			}
			if *got != *cold {
				t.Errorf("warm-clone run diverges from cold run:\nwarm: %+v\ncold: %+v", got, cold)
			}
		})
	}

	t.Run("incompatible", func(t *testing.T) {
		scaled := base
		scaled.Params = core.Icelake().Scale(2)
		if err := warm.Compatible(scaled); err == nil {
			t.Error("scaled params accepted by warm clone")
		}
		pipe := base
		pipe.UsePipeline = true
		if err := warm.Compatible(pipe); err == nil {
			t.Error("pipeline model accepted by warm clone")
		}
		window := base
		window.WarmupInstrs = base.WarmupInstrs / 2
		if err := warm.Compatible(window); err == nil {
			t.Error("different warmup window accepted by warm clone")
		}
	})
}

package experiments

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// tinyCatalog builds n small, fast-to-simulate applications.
func tinyCatalog(n int) []workload.Config {
	out := make([]workload.Config, n)
	for i := range out {
		cfg := workload.Default()
		cfg.Name = fmt.Sprintf("tiny-%d", i)
		cfg.Seed = uint64(100 + i)
		cfg.StaticBranches = 800
		out[i] = cfg
	}
	return out
}

func tinyOpts(cat []workload.Config) Options {
	return Options{
		Catalog:      cat,
		TotalInstrs:  60_000,
		WarmupInstrs: 20_000,
		Parallelism:  2,
	}
}

func tinyDesigns() []Design {
	return []Design{
		BaselineDesign("b256", 256),
		BaselineDesign("b1k", 1024),
	}
}

// buildSource is the default BuildTrace hook body for tests that only
// override some apps.
func buildSource(app workload.Config, total uint64) (trace.Source, error) {
	_, tr, err := workload.Build(app, total)
	return tr, err
}

// appByName finds an app's result in the suite.
func appByName(t *testing.T, s *Suite, name string) *AppResult {
	t.Helper()
	for i := range s.Apps {
		if s.Apps[i].App.Name == name {
			return &s.Apps[i]
		}
	}
	t.Fatalf("app %s missing from suite", name)
	return nil
}

// The acceptance scenario: one app's reader panics, one app's reader loops
// forever until the per-app deadline, and the rest of the suite still
// completes with both failures recorded.
func TestKeepGoingIsolatesPanicAndTimeout(t *testing.T) {
	cat := tinyCatalog(4)
	opts := tinyOpts(cat)
	opts.KeepGoing = true
	opts.AppTimeout = 300 * time.Millisecond
	opts.BuildTrace = func(app workload.Config, total uint64) (trace.Source, error) {
		src, err := buildSource(app, total)
		if err != nil {
			return nil, err
		}
		switch app.Name {
		case "tiny-1":
			return &trace.FaultSource{Src: src, Plan: trace.FaultPlan{PanicAt: 5}}, nil
		case "tiny-2":
			return &trace.FaultSource{Src: src, Plan: trace.FaultPlan{LoopForever: true}}, nil
		}
		return src, nil
	}

	suite, err := NewRunner(opts).Run(tinyDesigns())
	if err != nil {
		t.Fatalf("keep-going run failed outright: %v", err)
	}

	var pe *PanicError
	if a := appByName(t, suite, "tiny-1"); !errors.As(a.Err, &pe) {
		t.Errorf("tiny-1 err = %v, want *PanicError", a.Err)
	}
	if a := appByName(t, suite, "tiny-2"); !errors.Is(a.Err, context.DeadlineExceeded) {
		t.Errorf("tiny-2 err = %v, want deadline exceeded", a.Err)
	}
	for _, name := range []string{"tiny-0", "tiny-3"} {
		a := appByName(t, suite, name)
		if a.Err != nil || len(a.Results) != 2 {
			t.Errorf("%s: err=%v results=%d, want clean run", name, a.Err, len(a.Results))
		}
	}
	joined := suite.Err()
	if joined == nil {
		t.Fatal("suite.Err() = nil with two failed apps")
	}
	for _, frag := range []string{"tiny-1", "tiny-2", "panic"} {
		if !strings.Contains(joined.Error(), frag) {
			t.Errorf("suite error %q missing %q", joined, frag)
		}
	}
	if got := suite.Gains("b1k", "b256"); len(got) != 2 {
		t.Errorf("Gains covered %d apps, want 2 (failed apps skipped)", len(got))
	}
	if got := suite.MPKIReductions("b1k", "b256"); len(got) != 2 {
		t.Errorf("MPKIReductions covered %d apps, want 2", len(got))
	}
	total := 0
	for _, idx := range suite.ByCategory() {
		total += len(idx)
	}
	if total != 2 {
		t.Errorf("ByCategory covered %d apps, want 2", total)
	}
	if rows := suite.Export(); len(rows) != 4 {
		t.Errorf("Export produced %d rows, want 4 (2 apps x 2 designs)", len(rows))
	}
}

func TestFailFastPanicInDesignNew(t *testing.T) {
	opts := tinyOpts(tinyCatalog(1))
	bad := Design{Name: "boom", New: func() (btb.TargetPredictor, error) {
		panic("constructor exploded")
	}}
	suite, err := NewRunner(opts).Run([]Design{bad})
	if suite != nil || err == nil {
		t.Fatalf("fail-fast run = (%v, %v), want (nil, error)", suite, err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if !strings.Contains(err.Error(), "design boom") || len(pe.Stack) == 0 {
		t.Errorf("panic not attributed: %v (stack %d bytes)", err, len(pe.Stack))
	}
}

// panickyBTB panics during Lookup after a few calls, modelling a predictor
// bug that only trips on a live trace.
type panickyBTB struct {
	btb.TargetPredictor
	calls int
}

func (p *panickyBTB) Lookup(pc addr.VA) btb.Lookup {
	p.calls++
	if p.calls > 100 {
		panic("predictor state corrupted")
	}
	return p.TargetPredictor.Lookup(pc)
}

func TestKeepGoingPanicInPredictor(t *testing.T) {
	opts := tinyOpts(tinyCatalog(2))
	opts.KeepGoing = true
	designs := []Design{
		BaselineDesign("b256", 256),
		{Name: "panicky", New: func() (btb.TargetPredictor, error) {
			inner, err := btb.NewBaseline(btb.BaselineConfig{Entries: 256})
			if err != nil {
				return nil, err
			}
			return &panickyBTB{TargetPredictor: inner}, nil
		}},
	}
	suite, err := NewRunner(opts).Run(designs)
	if suite == nil {
		t.Fatalf("no suite returned (err=%v)", err)
	}
	for i := range suite.Apps {
		a := &suite.Apps[i]
		var pe *PanicError
		if !errors.As(a.Err, &pe) {
			t.Errorf("%s: err = %v, want *PanicError", a.App.Name, a.Err)
		}
		if !strings.Contains(a.Err.Error(), "design panicky") {
			t.Errorf("%s: panic not attributed to design: %v", a.App.Name, a.Err)
		}
		// The design that ran before the panicking one survives.
		if a.Results["b256"] == nil {
			t.Errorf("%s: clean design's result was discarded", a.App.Name)
		}
	}
	if err == nil {
		t.Error("want all-apps-failed error when every app fails")
	}
}

func TestRetryThenSucceed(t *testing.T) {
	cat := tinyCatalog(1)
	opts := tinyOpts(cat)
	opts.Retries = 3
	var (
		mu sync.Mutex
		fs *trace.FaultSource
	)
	opts.BuildTrace = func(app workload.Config, total uint64) (trace.Source, error) {
		mu.Lock()
		defer mu.Unlock()
		if fs == nil {
			src, err := buildSource(app, total)
			if err != nil {
				return nil, err
			}
			// The first two readers fail mid-stream; later opens are clean.
			fs = &trace.FaultSource{Src: src, Plan: trace.FaultPlan{FailAt: 10, TransientOpens: 2}}
		}
		return fs, nil
	}
	suite, err := NewRunner(opts).Run(tinyDesigns())
	if err != nil {
		t.Fatalf("retrying run failed: %v", err)
	}
	a := &suite.Apps[0]
	if a.Err != nil || a.Attempts != 3 {
		t.Errorf("attempts = %d err = %v, want 3 attempts and success", a.Attempts, a.Err)
	}
	if len(a.Results) != 2 {
		t.Errorf("results = %d designs, want 2", len(a.Results))
	}
	// Opens: attempts 1 and 2 fail on the shared warmup pass's reader (the
	// first reader the attempt opens), attempt 3 opens one clean reader for
	// the warmup pass plus one per design cell.
	if got := fs.Opens(); got != 5 {
		t.Errorf("source opened %d times, want 5", got)
	}
}

// failNthOpen fails (transiently) only its n-th reader. With one worker,
// reader opens within an app are strictly ordered — warmup pass first,
// then one per design cell in design order — so n selects exactly which
// stage fails. Tests using it pin Workers to 1: under parallel cells the
// open order is scheduling-dependent. opens is not synchronized for the
// same reason.
type failNthOpen struct {
	src   trace.Source
	n     int
	opens int
}

func (f *failNthOpen) Name() string { return f.src.Name() }
func (f *failNthOpen) Open() trace.Reader {
	f.opens++
	if f.opens == f.n {
		return &trace.FaultReader{R: f.src.Open(), Plan: trace.FaultPlan{FailAt: 10, TransientOpens: 0}}
	}
	return f.src.Open()
}

func TestRetrySkipsCompletedDesigns(t *testing.T) {
	cat := tinyCatalog(1)
	opts := tinyOpts(cat)
	opts.Retries = 1
	opts.Workers = 1 // deterministic open order: warmup, b256, b1k
	var (
		mu sync.Mutex
		fs *failNthOpen
	)
	opts.BuildTrace = func(app workload.Config, total uint64) (trace.Source, error) {
		mu.Lock()
		defer mu.Unlock()
		if fs == nil {
			src, err := buildSource(app, total)
			if err != nil {
				return nil, err
			}
			fs = &failNthOpen{src: src, n: 3}
		}
		return fs, nil
	}
	suite, err := NewRunner(opts).Run(tinyDesigns())
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	a := &suite.Apps[0]
	if a.Attempts != 2 || a.Err != nil || len(a.Results) != 2 {
		t.Fatalf("attempts=%d err=%v results=%d, want a clean 2-attempt run", a.Attempts, a.Err, len(a.Results))
	}
	// Opens: attempt 1 = warmup (1, ok), b256 (2, ok), b1k (3, fails);
	// attempt 2 = b1k only — a single pending design skips the shared
	// warmup pass, so it opens one reader (4). A fifth open would mean the
	// done-map was ignored and the completed design re-simulated.
	if fs.opens != 4 {
		t.Errorf("source opened %d times, want 4 (completed design must not rerun)", fs.opens)
	}
}

func TestNonRetryableFailureIsNotRetried(t *testing.T) {
	cat := tinyCatalog(1)
	opts := tinyOpts(cat)
	opts.Retries = 5
	opts.KeepGoing = true
	opts.BuildTrace = func(app workload.Config, total uint64) (trace.Source, error) {
		src, err := buildSource(app, total)
		if err != nil {
			return nil, err
		}
		return &trace.FaultSource{Src: src, Plan: trace.FaultPlan{TruncateAt: 10}}, nil
	}
	suite, _ := NewRunner(opts).Run(tinyDesigns())
	a := &suite.Apps[0]
	if a.Err == nil || a.Attempts != 1 {
		t.Errorf("attempts=%d err=%v, want exactly 1 attempt for a permanent fault", a.Attempts, a.Err)
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := tinyOpts(tinyCatalog(3))
	_, err := NewRunner(opts).RunContext(ctx, tinyDesigns())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	o := Options{RetryBackoff: 10 * time.Millisecond, Seed: 7}
	var prev []time.Duration
	for round := 0; round < 2; round++ {
		var seq []time.Duration
		for attempt := 1; attempt <= 12; attempt++ {
			d := o.backoff("some-app", attempt)
			lo, hi := time.Duration(0), 16*o.RetryBackoff
			if d < lo || d > hi {
				t.Fatalf("attempt %d: backoff %v outside [0, %v]", attempt, d, hi)
			}
			seq = append(seq, d)
		}
		if round == 1 {
			for i := range seq {
				if seq[i] != prev[i] {
					t.Fatalf("backoff not deterministic: %v vs %v at attempt %d", seq[i], prev[i], i+1)
				}
			}
		}
		prev = seq
	}
	if d := (Options{}).backoff("x", 3); d != 0 {
		t.Errorf("zero base backoff = %v, want 0", d)
	}
}

func TestCheckpointResumeSkipsCompletedApps(t *testing.T) {
	cat := tinyCatalog(3)
	path := filepath.Join(t.TempDir(), "suite.ckpt")

	// Run 1: tiny-1's reader panics; the two clean apps land in the
	// checkpoint.
	opts := tinyOpts(cat)
	opts.KeepGoing = true
	opts.CheckpointPath = path
	opts.BuildTrace = func(app workload.Config, total uint64) (trace.Source, error) {
		src, err := buildSource(app, total)
		if err != nil {
			return nil, err
		}
		if app.Name == "tiny-1" {
			return &trace.FaultSource{Src: src, Plan: trace.FaultPlan{PanicAt: 5}}, nil
		}
		return src, nil
	}
	suite1, err := NewRunner(opts).Run(tinyDesigns())
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if appByName(t, suite1, "tiny-1").Err == nil {
		t.Fatal("run 1: tiny-1 should have failed")
	}
	wantIPC := suite1.Apps[0].Results["b256"].IPC()

	// Run 2: fault removed; only the failed app may be rebuilt.
	var (
		mu     sync.Mutex
		builds = map[string]int{}
	)
	opts2 := tinyOpts(cat)
	opts2.KeepGoing = true
	opts2.CheckpointPath = path
	opts2.BuildTrace = func(app workload.Config, total uint64) (trace.Source, error) {
		mu.Lock()
		builds[app.Name]++
		mu.Unlock()
		return buildSource(app, total)
	}
	suite2, err := NewRunner(opts2).Run(tinyDesigns())
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if got := suite2.Err(); got != nil {
		t.Fatalf("run 2 suite errors: %v", got)
	}
	if len(builds) != 1 || builds["tiny-1"] != 1 {
		t.Errorf("run 2 rebuilt %v, want only tiny-1 once (completed apps must not re-simulate)", builds)
	}
	for _, name := range []string{"tiny-0", "tiny-2"} {
		a := appByName(t, suite2, name)
		if !a.Skipped || a.Attempts != 0 || len(a.Results) != 2 {
			t.Errorf("%s: skipped=%v attempts=%d results=%d, want checkpoint restore", name, a.Skipped, a.Attempts, len(a.Results))
		}
	}
	a := appByName(t, suite2, "tiny-1")
	if a.Skipped || a.Err != nil || len(a.Results) != 2 {
		t.Errorf("tiny-1: skipped=%v err=%v results=%d, want fresh successful run", a.Skipped, a.Err, len(a.Results))
	}
	if got := suite2.Apps[0].Results["b256"].IPC(); got != wantIPC {
		t.Errorf("restored IPC %v differs from original %v", got, wantIPC)
	}
	if got := suite2.Gains("b1k", "b256"); len(got) != 3 {
		t.Errorf("run 2 gains cover %d apps, want 3", len(got))
	}
}

// A partially-failed app checkpoints the designs that did complete and
// only re-runs the missing ones on resume.
func TestCheckpointPartialApp(t *testing.T) {
	cat := tinyCatalog(1)
	path := filepath.Join(t.TempDir(), "partial.ckpt")

	opts := tinyOpts(cat)
	opts.KeepGoing = true
	opts.CheckpointPath = path
	opts.Workers = 1 // deterministic open order: warmup, b256, b1k
	var (
		mu sync.Mutex
		fs *failNthOpen
	)
	opts.BuildTrace = func(app workload.Config, total uint64) (trace.Source, error) {
		mu.Lock()
		defer mu.Unlock()
		if fs == nil {
			src, err := buildSource(app, total)
			if err != nil {
				return nil, err
			}
			fs = &failNthOpen{src: src, n: 3}
		}
		return fs, nil
	}
	suite, _ := NewRunner(opts).Run(tinyDesigns()) // no retries: 2nd design fails
	if a := &suite.Apps[0]; a.Err == nil || len(a.Results) != 1 {
		t.Fatalf("setup: err=%v results=%d, want 1 completed design and an error", a.Err, len(a.Results))
	}

	ck, err := LoadCheckpoint(path, CheckpointMeta{TotalInstrs: opts.TotalInstrs, WarmupInstrs: opts.WarmupInstrs})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ck.Done("tiny-0", "b256"); !ok {
		t.Fatal("completed design missing from checkpoint")
	}
	if _, ok := ck.Done("tiny-0", "b1k"); ok {
		t.Fatal("failed design present in checkpoint")
	}

	// Resume with a clean builder: only the missing design runs, so the
	// source is opened exactly once.
	opts2 := tinyOpts(cat)
	opts2.CheckpointPath = path
	var opens int
	opts2.BuildTrace = func(app workload.Config, total uint64) (trace.Source, error) {
		src, err := buildSource(app, total)
		if err != nil {
			return nil, err
		}
		opens++
		return &trace.FaultSource{Src: src}, nil
	}
	suite2, err := NewRunner(opts2).Run(tinyDesigns())
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	a := &suite2.Apps[0]
	if a.Err != nil || len(a.Results) != 2 || a.Skipped {
		t.Errorf("resume: err=%v results=%d skipped=%v", a.Err, len(a.Results), a.Skipped)
	}
	if opens != 1 {
		t.Errorf("resume built the trace %d times, want 1", opens)
	}
}

func TestCharacterizeSuiteKeepGoing(t *testing.T) {
	cat := tinyCatalog(3)
	opts := tinyOpts(cat)
	opts.KeepGoing = true
	opts.BuildTrace = func(app workload.Config, total uint64) (trace.Source, error) {
		if app.Name == "tiny-1" {
			return nil, fmt.Errorf("injected build failure")
		}
		return buildSource(app, total)
	}
	r := NewRunner(opts)
	chars, err := r.CharacterizeSuite()
	if err != nil {
		t.Fatalf("keep-going characterize failed: %v", err)
	}
	if len(chars) != 2 {
		t.Fatalf("characterized %d apps, want 2", len(chars))
	}
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "tiny-1") {
		t.Errorf("runner did not aggregate the failure: %v", r.Err())
	}
}

// A real experiment report over a keep-going suite with one failed app
// must complete: every aggregation that loops suite.Apps directly has to
// skip the failed app instead of dereferencing its missing results.
func TestKeepGoingExperimentReport(t *testing.T) {
	for _, id := range []string{"fig1", "fig10"} {
		t.Run(id, func(t *testing.T) {
			opts := tinyOpts(tinyCatalog(3))
			opts.KeepGoing = true
			opts.BuildTrace = func(app workload.Config, total uint64) (trace.Source, error) {
				if app.Name == "tiny-1" {
					return nil, fmt.Errorf("injected build failure")
				}
				return buildSource(app, total)
			}
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			r := NewRunner(opts)
			var buf strings.Builder
			if err := e.Run(r, &buf); err != nil {
				t.Fatalf("%s report failed: %v", id, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s wrote an empty report", id)
			}
			if r.Err() == nil || !strings.Contains(r.Err().Error(), "tiny-1") {
				t.Errorf("failure not aggregated on the runner: %v", r.Err())
			}
		})
	}
}

// Apps cancelled while still queued are interruptions, not failures:
// Attempts stays 0, Suite.Err stays clean, and the interruption surfaces
// as RunContext's returned error.
func TestCancelledQueuedAppsAreNotFailures(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := tinyOpts(tinyCatalog(3))
	opts.KeepGoing = true
	r := NewRunner(opts)
	suite, err := r.RunContext(ctx, tinyDesigns())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := range suite.Apps {
		a := &suite.Apps[i]
		if !a.Unstarted() || a.Attempts != 0 {
			t.Errorf("%s: unstarted=%v attempts=%d err=%v, want queued-cancelled marker",
				a.App.Name, a.Unstarted(), a.Attempts, a.Err)
		}
	}
	if got := suite.Err(); got != nil {
		t.Errorf("Suite.Err() = %v, want nil (no app actually failed)", got)
	}
	if got := r.Err(); got != nil {
		t.Errorf("Runner.Err() = %v, want nil", got)
	}
}

// Suite.OK returns only apps holding every named design's result.
func TestSuiteOK(t *testing.T) {
	full := AppResult{App: workload.Config{Name: "full"}, Results: map[string]*core.Result{"a": {}, "b": {}}}
	partial := AppResult{App: workload.Config{Name: "partial"}, Results: map[string]*core.Result{"a": {}}}
	failed := AppResult{App: workload.Config{Name: "failed"},
		Results: map[string]*core.Result{"a": {}, "b": {}}, Err: errors.New("boom")}
	s := &Suite{Apps: []AppResult{full, partial, failed, {}}}
	if got := s.OK("a", "b"); len(got) != 1 || got[0].App.Name != "full" {
		t.Errorf("OK(a,b) = %d apps, want just full", len(got))
	}
	if got := s.OK("a"); len(got) != 2 {
		t.Errorf("OK(a) = %d apps, want full and partial", len(got))
	}
	// No designs named: every non-failed app, including empty ones.
	if got := s.OK(); len(got) != 3 {
		t.Errorf("OK() = %d apps, want 3 (failed app excluded)", len(got))
	}
	if r := failed.Result("a"); r == nil {
		t.Error("Result must still expose a failed app's partial results")
	}
	var zero AppResult
	if r := zero.Result("a"); r != nil {
		t.Error("zero-value AppResult returned a result")
	}
}

// A zero-value / failed AppResult must never contribute phantom data to
// suite aggregations, even with a nil Results map.
func TestAggregationsSkipFailedApps(t *testing.T) {
	good := AppResult{App: workload.Config{Name: "good", Category: workload.Server}}
	// Leave good's results empty too: Gains requires both designs present.
	s := &Suite{Apps: []AppResult{
		good,
		{App: workload.Config{Name: "bad", Category: workload.Browser}, Err: errors.New("boom")},
		{}, // zero value, as the old runner used to leave behind
	}}
	if g := s.Gains("a", "b"); len(g) != 0 {
		t.Errorf("Gains = %v, want empty", g)
	}
	if m := s.MPKIReductions("a", "b"); len(m) != 0 {
		t.Errorf("MPKIReductions = %v, want empty", m)
	}
	byCat := s.ByCategory()
	if _, ok := byCat[workload.Browser]; ok {
		t.Error("ByCategory included a failed app")
	}
	// The healthy app and the zero-value app (whose zero Category is
	// Server) are grouped; only the failed app is dropped.
	if n := len(byCat[workload.Server]); n != 2 {
		t.Errorf("Server category has %d apps, want 2", n)
	}
}

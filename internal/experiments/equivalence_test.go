package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// equivalence_test.go is the worker-count equivalence suite: every
// observable output of a suite run — exported reports, Suite.Err text,
// checkpoint files — must be byte-identical no matter how many workers
// execute it. The Workers=1 schedule is the sequential runner's schedule,
// so agreement across counts proves the parallel executor changes only
// wall-clock, never results.

// equivWorkerCounts includes 1 (the sequential reference), even splits,
// and a worker count that divides neither the app count nor the design
// count (7), so reduction is exercised on ragged schedules too.
var equivWorkerCounts = []int{1, 2, 4, 7}

func equivOpts(cat []workload.Config, workers int) Options {
	return Options{
		Catalog:      cat,
		TotalInstrs:  50_000,
		WarmupInstrs: 18_000,
		Workers:      workers,
		Seed:         9,
	}
}

// equivRun executes one sweep and captures its observable outputs.
func equivRun(t *testing.T, opts Options, designs []Design) (export []byte, errText string, ckpt []byte) {
	t.Helper()
	suite, err := NewRunner(opts).Run(designs)
	if err != nil {
		t.Fatalf("workers=%d: run failed: %v", opts.Workers, err)
	}
	var buf bytes.Buffer
	if err := suite.WriteJSON(&buf); err != nil {
		t.Fatalf("workers=%d: export: %v", opts.Workers, err)
	}
	if e := suite.Err(); e != nil {
		errText = e.Error()
	}
	if opts.CheckpointPath != "" {
		data, err := os.ReadFile(opts.CheckpointPath)
		if err != nil {
			t.Fatalf("workers=%d: checkpoint: %v", opts.Workers, err)
		}
		ckpt = data
	}
	return buf.Bytes(), errText, ckpt
}

// TestWorkerCountEquivalence runs the reduced sweep — 8 apps against the
// full differential-oracle design registry — at every worker count and
// asserts the three persisted artifacts agree byte-for-byte with the
// sequential (Workers=1) reference.
func TestWorkerCountEquivalence(t *testing.T) {
	cat := tinyCatalog(8)
	designs := DiffDesigns()

	var refExport, refCkpt []byte
	for _, workers := range equivWorkerCounts {
		opts := equivOpts(cat, workers)
		opts.CheckpointPath = filepath.Join(t.TempDir(), "equiv.ckpt")
		export, errText, ckpt := equivRun(t, opts, designs)
		if errText != "" {
			t.Fatalf("workers=%d: unexpected suite errors: %s", workers, errText)
		}
		if workers == 1 {
			refExport, refCkpt = export, ckpt
			continue
		}
		if !bytes.Equal(export, refExport) {
			t.Errorf("workers=%d: exported report differs from sequential reference", workers)
		}
		if !bytes.Equal(ckpt, refCkpt) {
			t.Errorf("workers=%d: checkpoint file differs from sequential reference", workers)
		}
	}
}

// TestWorkerCountEquivalenceColdStart cross-checks the warm-state path
// end to end: a parallel sweep that shares one warmup pass per app must
// export byte-identical results to a sweep where every cell warms from
// cold. Combined with TestWorkerCountEquivalence this closes the loop —
// parallel+warm ≡ parallel+cold ≡ sequential.
func TestWorkerCountEquivalenceColdStart(t *testing.T) {
	cat := tinyCatalog(8)
	designs := DiffDesigns()

	warmExport, _, _ := equivRun(t, equivOpts(cat, 4), designs)
	coldOpts := equivOpts(cat, 4)
	coldOpts.ColdStart = true
	coldExport, _, _ := equivRun(t, coldOpts, designs)
	if !bytes.Equal(warmExport, coldExport) {
		t.Error("warm-clone sweep exports differ from cold-start sweep")
	}
}

// TestWorkerCountEquivalenceKeepGoing injects a panic into two apps'
// readers and asserts the keep-going outputs — including the joined error
// text and the checkpoint holding only the surviving apps — stay
// byte-identical across worker counts.
func TestWorkerCountEquivalenceKeepGoing(t *testing.T) {
	cat := tinyCatalog(8)
	designs := tinyDesigns()

	var refExport, refErr string
	var refCkpt []byte
	for _, workers := range equivWorkerCounts {
		opts := equivOpts(cat, workers)
		opts.KeepGoing = true
		opts.CheckpointPath = filepath.Join(t.TempDir(), "equiv.ckpt")
		opts.BuildTrace = func(app workload.Config, total uint64) (trace.Source, error) {
			src, err := buildSource(app, total)
			if err != nil {
				return nil, err
			}
			switch app.Name {
			case "tiny-2", "tiny-5":
				return &trace.FaultSource{Src: src, Plan: trace.FaultPlan{PanicAt: 7}}, nil
			}
			return src, nil
		}
		export, errText, ckpt := equivRun(t, opts, designs)
		if !strings.Contains(errText, "tiny-2") || !strings.Contains(errText, "tiny-5") {
			t.Fatalf("workers=%d: suite error %q missing the panicking apps", workers, errText)
		}
		if workers == 1 {
			refExport, refErr, refCkpt = string(export), errText, ckpt
			continue
		}
		if string(export) != refExport {
			t.Errorf("workers=%d: exported report differs from sequential reference", workers)
		}
		if errText != refErr {
			t.Errorf("workers=%d: suite error differs:\n got: %s\nwant: %s", workers, errText, refErr)
		}
		if !bytes.Equal(ckpt, refCkpt) {
			t.Errorf("workers=%d: checkpoint file differs from sequential reference", workers)
		}
	}
}

// TestWorkerCountCancellation cancels a sweep as soon as its first trace
// build starts and asserts, for every worker count, that the apps still
// queued behind the in-flight window are recorded as Unstarted — an
// interruption, never a failure — and that no app sneaks out a complete
// result set after the cancel.
func TestWorkerCountCancellation(t *testing.T) {
	cat := tinyCatalog(12)
	designs := tinyDesigns()

	for _, workers := range equivWorkerCounts {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opts := equivOpts(cat, workers)
			opts.KeepGoing = true
			var once sync.Once
			opts.BuildTrace = func(app workload.Config, total uint64) (trace.Source, error) {
				once.Do(cancel)
				return buildSource(app, total)
			}
			suite, err := NewRunner(opts).RunContext(ctx, designs)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			unstarted := 0
			for i := range suite.Apps {
				a := &suite.Apps[i]
				if a.Attempts == 0 {
					if !a.Unstarted() {
						t.Errorf("%s: attempts=0 but not Unstarted (err=%v, skipped=%v)",
							a.App.Name, a.Err, a.Skipped)
					}
					if len(a.Results) != 0 {
						t.Errorf("%s: unstarted app carries %d results", a.App.Name, len(a.Results))
					}
					unstarted++
					continue
				}
				if a.Err == nil && len(a.Results) == len(designs) {
					t.Errorf("%s: completed every design after cancellation", a.App.Name)
				}
			}
			// At most `workers` apps fit through the in-flight window, so
			// everything behind it must still be queued when the cancel lands.
			if want := len(cat) - workers; unstarted < want {
				t.Errorf("%d apps unstarted, want >= %d (workers=%d of %d apps)",
					unstarted, want, workers, len(cat))
			}
		})
	}
}

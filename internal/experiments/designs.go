package experiments

import (
	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/multilevel"
	"repro/internal/pdede"
	"repro/internal/predictor"
	"repro/internal/shotgun"
)

// Canonical design names used across experiments and reports.
const (
	NameBaseline    = "baseline-4K"
	NameBaseline6K  = "baseline-6K"
	NameBaseline8K  = "baseline-8K"
	NameDedup       = "dedup-only"
	NamePartition   = "partition-only"
	NamePDede       = "pdede-default"
	NameMultiTarget = "pdede-multi-target"
	NameMultiEntry  = "pdede-multi-entry"
	NamePerfect     = "perfect-btb"
	NameShotgun     = "shotgun"
)

// BaselineDesign builds the conventional BTB at the given entry count.
func BaselineDesign(name string, entries int) Design {
	return Design{Name: name, New: func() (btb.TargetPredictor, error) {
		return btb.NewBaseline(btb.BaselineConfig{Entries: entries})
	}}
}

// PDedeDesign builds a PDede configuration.
func PDedeDesign(name string, cfg pdede.Config) Design {
	return Design{Name: name, New: func() (btb.TargetPredictor, error) {
		return pdede.New(cfg)
	}}
}

// PerfectDesign builds the unbounded perfect BTB (every decoded branch
// hits with the correct target).
func PerfectDesign() Design {
	return Design{Name: NamePerfect, New: func() (btb.TargetPredictor, error) {
		return btb.NewPerfect(), nil
	}}
}

// DiffDesigns is the differential-oracle registry: every concrete design
// the experiments drive, including the ablation intermediates, the two
// level hierarchy and the unbounded Perfect model. `make check-deep` runs
// each of these in lockstep with its reference oracle; the pdede-lint
// auditcontract analyzer cross-checks the list against the design
// packages, so a new design that is not constructed here fails lint until
// it is registered (or annotated //pdede:unregistered-ok).
func DiffDesigns() []Design {
	partitionOnly := pdede.DefaultConfig()
	partitionOnly.DisableDelta = true
	ds := []Design{
		BaselineDesign(NameBaseline, 4096),
		BaselineDesign(NameBaseline8K, 8192),
		PDedeDesign(NamePartition, partitionOnly),
		PDedeDesign(NamePDede, pdede.DefaultConfig()),
		PDedeDesign(NameMultiTarget, pdede.MultiTargetConfig()),
		PDedeDesign(NameMultiEntry, pdede.MultiEntryConfig()),
		TwoLevelDesign("2L-pdede-me", 256, true),
		PerfectDesign(),
	}
	for _, d := range AblationDesigns() {
		if d.Name == NameDedup {
			ds = append(ds, d)
		}
	}
	for _, d := range ShotgunDesigns() {
		if d.Name == NameShotgun {
			ds = append(ds, d)
		}
	}
	return ds
}

// DesignByName resolves a design from the differential-oracle registry by
// its registered name. pdede-serve uses it to select the served design
// from a flag; ok is false for unknown names.
func DesignByName(name string) (d Design, ok bool) {
	for _, cand := range DiffDesigns() {
		if cand.Name == name {
			return cand, true
		}
	}
	return Design{}, false
}

// StandardDesigns returns the Figure 10 comparison set.
func StandardDesigns() []Design {
	return []Design{
		BaselineDesign(NameBaseline, 4096),
		PDedeDesign(NamePDede, pdede.DefaultConfig()),
		PDedeDesign(NameMultiTarget, pdede.MultiTargetConfig()),
		PDedeDesign(NameMultiEntry, pdede.MultiEntryConfig()),
	}
}

// AblationDesigns returns the Figure 11a decomposition set, in cumulative
// order: baseline → dedup-only → partitioned → +delta → +MT → +ME.
func AblationDesigns() []Design {
	partitionOnly := pdede.DefaultConfig()
	partitionOnly.DisableDelta = true
	return []Design{
		BaselineDesign(NameBaseline, 4096),
		{Name: NameDedup, New: func() (btb.TargetPredictor, error) {
			return btb.NewDedupBTB(btb.DedupBTBConfig{})
		}},
		PDedeDesign(NamePartition, partitionOnly),
		PDedeDesign(NamePDede, pdede.DefaultConfig()),
		PDedeDesign(NameMultiTarget, pdede.MultiTargetConfig()),
		PDedeDesign(NameMultiEntry, pdede.MultiEntryConfig()),
	}
}

// ShotgunDesigns returns the §5.10 comparison set.
func ShotgunDesigns() []Design {
	return []Design{
		BaselineDesign(NameBaseline, 4096),
		{Name: NameShotgun, New: func() (btb.TargetPredictor, error) {
			return shotgun.New(shotgun.DefaultConfig())
		}},
		{Name: NameShotgun + "-45KB", New: func() (btb.TargetPredictor, error) {
			return shotgun.New(shotgun.ScaledConfig(45))
		}},
		PDedeDesign(NameMultiEntry, pdede.MultiEntryConfig()),
	}
}

// TwoLevelDesign builds an L0+L1 hierarchy; pdedeL1 selects PDede-ME as L1
// instead of a conventional 4K BTB.
func TwoLevelDesign(name string, l0Entries int, pdedeL1 bool) Design {
	return Design{Name: name, New: func() (btb.TargetPredictor, error) {
		l0, err := btb.NewBaseline(btb.BaselineConfig{Entries: l0Entries, Ways: 4})
		if err != nil {
			return nil, err
		}
		var l1 btb.TargetPredictor
		if pdedeL1 {
			l1, err = pdede.New(pdede.MultiEntryConfig())
		} else {
			l1, err = btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
		}
		if err != nil {
			return nil, err
		}
		return multilevel.New(l0, l1)
	}}
}

// WithPerfectDirection wraps a design with the §5.5 perfect direction
// predictor.
func WithPerfectDirection(d Design) Design {
	prev := d.Mod
	d.Name += "+perfdir"
	d.Mod = func(c *core.Config) {
		if prev != nil {
			prev(c)
		}
		c.PerfectDirection = true
	}
	return d
}

// WithITTAGE wraps a design with a 64KB ITTAGE serving indirect branches
// (§5.6); indirect targets no longer allocate in the BTB.
func WithITTAGE(d Design) Design {
	prev := d.Mod
	d.Name += "+ittage"
	d.Mod = func(c *core.Config) {
		if prev != nil {
			prev(c)
		}
		it, err := predictor.NewITTAGE(predictor.Default64KBConfig())
		if err != nil {
			panic(err) // static config; cannot fail
		}
		c.ITTAGE = it
	}
	return d
}

// WithReturnsInBTB wraps a design to drop the RAS and store returns in the
// BTB (§5.7). The predictor must be configured with StoreReturns itself.
func WithReturnsInBTB(d Design) Design {
	prev := d.Mod
	d.Name += "+rets"
	d.Mod = func(c *core.Config) {
		if prev != nil {
			prev(c)
		}
		c.StoreReturnsInBTB = true
	}
	return d
}

// WithParams wraps a design with alternative core parameters (FTQ sweeps,
// §5.11 deeper pipelines).
func WithParams(d Design, name string, params core.Params) Design {
	prev := d.Mod
	d.Name = name
	d.Mod = func(c *core.Config) {
		if prev != nil {
			prev(c)
		}
		c.Params = params
	}
	return d
}

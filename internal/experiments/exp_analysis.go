package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/addr"
	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// expFig1 — frontend stall share and BTB-resteer share (Top-Down style).
func expFig1() Experiment {
	return Experiment{
		ID:    "fig1",
		Title: "Figure 1: frontend stalls and branch-resteer share (baseline BTB)",
		Paper: "BTB-induced resteers are the largest contributor, >40% of frontend stall cycles",
		Run: func(r *Runner, w io.Writer) error {
			suite, err := r.Run([]Design{BaselineDesign(NameBaseline, 4096)})
			if err != nil {
				return err
			}
			tb := metrics.NewTable("category", "apps", "frontend-stall%", "btb-resteer share of stalls%", "all-resteer share%")
			add := func(label string, idx []int) {
				var fe, share, all []float64
				for _, i := range idx {
					res := suite.Apps[i].Result(NameBaseline)
					if res == nil {
						continue
					}
					fe = append(fe, res.FrontendStallFrac())
					share = append(share, res.BTBResteerShareOfStalls())
					stalls := res.FrontendBubbles + res.BTBResteerCycles + res.DirResteerCycles + res.RetResteerCycles
					if stalls > 0 {
						all = append(all, (res.BTBResteerCycles+res.DirResteerCycles+res.RetResteerCycles)/stalls)
					}
				}
				tb.AddRow(label, fmt.Sprint(len(idx)),
					metrics.Pct0(metrics.Mean(fe)), metrics.Pct0(metrics.Mean(share)), metrics.Pct0(metrics.Mean(all)))
			}
			byCat := suite.ByCategory()
			for _, cat := range sortedCategories(byCat) {
				add(cat.String(), byCat[cat])
			}
			var allIdx []int
			for i := range suite.Apps {
				if !suite.Apps[i].Failed() {
					allIdx = append(allIdx, i)
				}
			}
			add("ALL", allIdx)
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// expFig3 — taken-branch rates.
func expFig3() Experiment {
	return Experiment{
		ID:    "fig3",
		Title: "Figure 3: percentage of static branch PCs and dynamic branches that are taken",
		Paper: "branches are taken more than 50% of the time",
		Run: func(r *Runner, w io.Writer) error {
			chars, err := r.CharacterizeSuite()
			if err != nil {
				return err
			}
			var static, dyn []float64
			for _, c := range chars {
				static = append(static, c.Char.StaticTakenRate())
				dyn = append(dyn, c.Char.DynTakenRate())
			}
			tb := metrics.NewTable("metric", "mean", "min", "max")
			tb.AddRow("static taken PCs", metrics.Pct0(metrics.Mean(static)), metrics.Pct0(metrics.Min(static)), metrics.Pct0(metrics.Max(static)))
			tb.AddRow("dynamic taken branches", metrics.Pct0(metrics.Mean(dyn)), metrics.Pct0(metrics.Min(dyn)), metrics.Pct0(metrics.Max(dyn)))
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// expFig4 — branch-type mix among taken branches, per category.
func expFig4() Experiment {
	return Experiment{
		ID:    "fig4",
		Title: "Figure 4: branch-type breakdown of dynamic taken branches, per category",
		Paper: "skewed toward conditional/unconditional direct, but all types occur (indirect ≈10%)",
		Run: func(r *Runner, w io.Writer) error {
			chars, err := r.CharacterizeSuite()
			if err != nil {
				return err
			}
			byCat := map[workload.Category][]AppChar{}
			for _, c := range chars {
				byCat[c.App.Category] = append(byCat[c.App.Category], c)
			}
			tb := metrics.NewTable("category", "cond-direct", "uncond-direct", "indirect", "return")
			for cat := workload.Category(0); cat < workload.NumCategories; cat++ {
				list := byCat[cat]
				if len(list) == 0 {
					continue
				}
				var shares [isa.NumClasses][]float64
				for _, c := range list {
					for cl := isa.Class(0); cl < isa.NumClasses; cl++ {
						shares[cl] = append(shares[cl], c.Char.ClassShare(cl))
					}
				}
				tb.AddRow(cat.String(),
					metrics.Pct0(metrics.Mean(shares[0])), metrics.Pct0(metrics.Mean(shares[1])),
					metrics.Pct0(metrics.Mean(shares[2])), metrics.Pct0(metrics.Mean(shares[3])))
			}
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// expFig5 — region/page/offset time series of the wasm browser app.
func expFig5() Experiment {
	return Experiment{
		ID:    "fig5",
		Title: "Figure 5: runtime region/page/offset plot (WebAssembly browser app)",
		Paper: "few regions with strong phase locality; many pages; offsets dense and unstructured",
		Run: func(r *Runner, w io.Writer) error {
			cfg, ok := workload.CatalogByName("Browser-wasm-runtime")
			if !ok {
				return fmt.Errorf("wasm app missing from catalog")
			}
			_, tr, err := workload.Build(cfg, r.Opts.TotalInstrs)
			if err != nil {
				return err
			}
			samples, err := analysis.TimeSeries(tr.Open(), 512)
			if err != nil {
				return err
			}
			// Summarize in 20 buckets: distinct regions/pages visited and
			// region id range per bucket (a textual stand-in for the plot).
			const buckets = 20
			if len(samples) < buckets {
				return fmt.Errorf("too few samples: %d", len(samples))
			}
			per := len(samples) / buckets
			tb := metrics.NewTable("window", "regions", "dominant-region", "pages", "offset-spread")
			totalRegions := map[int]bool{}
			totalPages := map[int]bool{}
			for b := 0; b < buckets; b++ {
				regs := map[int]int{}
				pages := map[int]bool{}
				var offMin, offMax addr.PageOffset = ^addr.PageOffset(0), 0
				for _, s := range samples[b*per : (b+1)*per] {
					regs[s.Region]++
					pages[s.Page] = true
					totalRegions[s.Region] = true
					totalPages[s.Page] = true
					if s.Offset < offMin {
						offMin = s.Offset
					}
					if s.Offset > offMax {
						offMax = s.Offset
					}
				}
				ids := make([]int, 0, len(regs))
				for id := range regs {
					ids = append(ids, id)
				}
				sort.Ints(ids)
				dom, domN := -1, 0
				for _, id := range ids {
					if n := regs[id]; n > domN {
						dom, domN = id, n
					}
				}
				tb.AddRow(fmt.Sprint(b), fmt.Sprint(len(regs)),
					fmt.Sprintf("r%d (%.0f%%)", dom, 100*float64(domN)/float64(per)),
					fmt.Sprint(len(pages)), fmt.Sprintf("[%d,%d]", offMin, offMax))
			}
			fmt.Fprintf(w, "distinct regions=%d, distinct pages=%d over %d sampled targets\n",
				len(totalRegions), len(totalPages), len(samples))
			if _, err = fmt.Fprint(w, tb); err != nil {
				return err
			}
			// Strip charts of the Figure 5 series: region rank and page rank
			// over time (phases show as plateaus).
			regions := make([]float64, len(samples))
			pages := make([]float64, len(samples))
			for i, smp := range samples {
				regions[i] = float64(smp.Region)
				pages[i] = float64(smp.Page)
			}
			fmt.Fprintf(w, "\nregion rank over time:\n%s", textplot.Series(regions, 72, 6))
			fmt.Fprintf(w, "page rank over time:\n%s", textplot.Series(pages, 72, 8))
			return nil
		},
	}
}

// expFig6 — targets per page and per region.
func expFig6() Experiment {
	return Experiment{
		ID:    "fig6",
		Title: "Figure 6: average branch targets per page and per region",
		Paper: "≈18 targets per page, ≈2200 per region",
		Run: func(r *Runner, w io.Writer) error {
			chars, err := r.CharacterizeSuite()
			if err != nil {
				return err
			}
			var perPage, perRegion []float64
			for _, c := range chars {
				perPage = append(perPage, c.Char.TargetsPerPage())
				perRegion = append(perRegion, c.Char.TargetsPerRegion())
			}
			tb := metrics.NewTable("metric", "mean", "min", "max", "paper")
			tb.AddRow("targets/page", fmt.Sprintf("%.1f", metrics.Mean(perPage)),
				fmt.Sprintf("%.1f", metrics.Min(perPage)), fmt.Sprintf("%.1f", metrics.Max(perPage)), "≈18")
			tb.AddRow("targets/region", fmt.Sprintf("%.0f", metrics.Mean(perRegion)),
				fmt.Sprintf("%.0f", metrics.Min(perRegion)), fmt.Sprintf("%.0f", metrics.Max(perRegion)), "≈2200")
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// expFig7 — unique target/region/page/offset shares.
func expFig7() Experiment {
	return Experiment{
		ID:    "fig7",
		Title: "Figure 7: unique targets / regions / pages / offsets relative to unique branch PCs",
		Paper: "targets 67%, regions 0.07%, pages 5%, offsets 18%",
		Run: func(r *Runner, w io.Writer) error {
			chars, err := r.CharacterizeSuite()
			if err != nil {
				return err
			}
			var tg, rg, pg, of []float64
			for _, c := range chars {
				a, b, d, e := c.Char.UniqueShare()
				tg, rg, pg, of = append(tg, a), append(rg, b), append(pg, d), append(of, e)
			}
			tb := metrics.NewTable("entity", "mean share", "paper")
			tb.AddRow("targets", metrics.Pct0(metrics.Mean(tg)), "67%")
			tb.AddRow("regions", fmt.Sprintf("%.3f%%", 100*metrics.Mean(rg)), "0.07%")
			tb.AddRow("pages", metrics.Pct0(metrics.Mean(pg)), "5%")
			tb.AddRow("offsets", metrics.Pct0(metrics.Mean(of)), "18% (byte-granular ISA; 4-byte instrs here cap offsets at 1024)")
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// expFig8 — PC↔target page distance.
func expFig8() Experiment {
	return Experiment{
		ID:    "fig8",
		Title: "Figure 8: page distance between branch PC and target, by branch class",
		Paper: ">60% of branches have PC and target in the same page",
		Run: func(r *Runner, w io.Writer) error {
			chars, err := r.CharacterizeSuite()
			if err != nil {
				return err
			}
			var agg [isa.NumClasses][analysis.NumDistanceBuckets]uint64
			var samePage []float64
			for _, c := range chars {
				samePage = append(samePage, c.Char.DynSamePageRate())
				for cl := 0; cl < isa.NumClasses; cl++ {
					for b := 0; b < analysis.NumDistanceBuckets; b++ {
						agg[cl][b] += c.Char.DistanceByClass[cl][b]
					}
				}
			}
			tb := metrics.NewTable("class", "same-page", "1-15", "16-4K", "4K-64K", ">64K")
			for cl := isa.Class(0); cl < isa.NumClasses; cl++ {
				if cl == isa.ClassReturn {
					continue // returns are RAS-served and excluded in the paper
				}
				var total uint64
				for _, n := range agg[cl] {
					total += n
				}
				if total == 0 {
					continue
				}
				row := []string{cl.String()}
				for b := 0; b < analysis.NumDistanceBuckets; b++ {
					row = append(row, metrics.Pct0(float64(agg[cl][b])/float64(total)))
				}
				tb.AddRow(row...)
			}
			fmt.Fprintf(w, "mean dynamic same-page rate: %s (paper: >60%%)\n", metrics.Pct0(metrics.Mean(samePage)))
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

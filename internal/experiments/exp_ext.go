package experiments

// Extension experiments: ablations of design choices the paper fixes
// without sweeping (replacement policy, Page/Region table sizing,
// wrong-path pollution) plus the future-work idea the paper sketches in
// §4.3.1 (multiple Last BTBM set/way registers for Multi-Target). These are
// not paper artifacts; they document how sensitive the reproduction is to
// each choice.

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pdede"
	"repro/internal/workload"
)

// ExtExperiments returns the ablations (kept separate from All() so the
// paper-artifact registry stays 1:1 with the paper).
func ExtExperiments() []Experiment {
	return []Experiment{extRepl(), extTables(), extNTDepth(), extWrongPath(), extModels(), extReuse()}
}

// extReuse — stack-distance profiles predicting BTB miss rates analytically.
func extReuse() Experiment {
	return Experiment{
		ID:    "ext-reuse",
		Title: "Extension: taken-PC reuse-distance profiles vs BTB capacity",
		Paper: "quantifies the capacity argument behind Figure 10 without simulating any BTB",
		Run: func(r *Runner, w io.Writer) error {
			apps := r.SuiteApps()
			if len(apps) > 12 {
				apps = apps[:12] // profiles are O(n log n); a subset suffices
			}
			caps := []int{1024, 2048, 4096, 8192, 16384}
			tb := metrics.NewTable("application", "taken PCs", "LRU miss@1K", "@2K", "@4K", "@8K", "@16K")
			for _, app := range apps {
				_, tr, err := workload.Build(app, r.Opts.TotalInstrs)
				if err != nil {
					return err
				}
				u, err := analysis.ReuseProfile(tr.Open())
				if err != nil {
					return err
				}
				row := []string{app.Name, fmt.Sprint(u.WorkingSet())}
				for _, c := range caps {
					row = append(row, metrics.Pct0(u.MissRateAt(c)))
				}
				tb.AddRow(row...)
			}
			_, err := fmt.Fprint(w, tb)
			return err
		},
	}
}

// extModels — cross-validation of the two core models.
func extModels() Experiment {
	return Experiment{
		ID:    "ext-models",
		Title: "Extension: analytic runahead model vs event-timestamped pipeline model",
		Paper: "internal cross-validation; the paper uses a single in-house cycle-accurate simulator",
		Run: func(r *Runner, w io.Writer) error {
			pipeMod := func(d Design) Design {
				prev := d.Mod
				d.Name += "+pipe"
				d.Mod = func(c *core.Config) {
					if prev != nil {
						prev(c)
					}
					c.UsePipeline = true
				}
				return d
			}
			designs := []Design{
				BaselineDesign(NameBaseline, 4096),
				PDedeDesign(NameMultiEntry, pdede.MultiEntryConfig()),
				pipeMod(BaselineDesign(NameBaseline, 4096)),
				pipeMod(PDedeDesign(NameMultiEntry, pdede.MultiEntryConfig())),
			}
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			tb := metrics.NewTable("core model", "PDede-ME IPC gain", "MPKI reduction")
			tb.AddRow("analytic runahead",
				metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(NameMultiEntry, NameBaseline))),
				metrics.Pct0(metrics.Mean(suite.MPKIReductions(NameMultiEntry, NameBaseline))))
			tb.AddRow("event pipeline",
				metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(NameMultiEntry+"+pipe", NameBaseline+"+pipe"))),
				metrics.Pct0(metrics.Mean(suite.MPKIReductions(NameMultiEntry+"+pipe", NameBaseline+"+pipe"))))
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// extRepl — replacement-policy ablation for the baseline BTB.
func extRepl() Experiment {
	return Experiment{
		ID:    "ext-repl",
		Title: "Extension: baseline BTB replacement policy (SRRIP vs LRU vs random vs GHRP-lite)",
		Paper: "the paper fixes SRRIP and cites predictive replacement (GHRP) as orthogonal work",
		Run: func(r *Runner, w io.Writer) error {
			mk := func(name string, pol btb.PolicyKind) Design {
				return Design{Name: name, New: func() (btb.TargetPredictor, error) {
					return btb.NewBaseline(btb.BaselineConfig{Entries: 4096, Policy: pol})
				}}
			}
			designs := []Design{
				mk("baseline-srrip", btb.PolicySRRIP),
				mk("baseline-lru", btb.PolicyLRU),
				mk("baseline-random", btb.PolicyRandom),
				mk("baseline-ghrp", btb.PolicyGHRP),
			}
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			tb := metrics.NewTable("policy", "mean BTB MPKI", "IPC gain vs srrip")
			for _, d := range []string{"baseline-srrip", "baseline-lru", "baseline-random", "baseline-ghrp"} {
				var mpki []float64
				for _, a := range suite.OK(d) {
					mpki = append(mpki, a.Results[d].BTBMPKI())
				}
				tb.AddRow(d, fmt.Sprintf("%.3f", metrics.Mean(mpki)),
					metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(d, "baseline-srrip"))))
			}
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// extTables — Page-BTB and Region-BTB sizing sensitivity.
func extTables() Experiment {
	return Experiment{
		ID:    "ext-tables",
		Title: "Extension: Page-BTB/Region-BTB sizing sensitivity",
		Paper: "the paper fixes 1K page entries and 4 region entries from its Fig 6/7 analysis",
		Run: func(r *Runner, w io.Writer) error {
			type point struct {
				name           string
				pages, regions int
			}
			points := []point{
				{"pages256-regions4", 256, 4},
				{"pages512-regions4", 512, 4},
				{"pages1024-regions2", 1024, 2},
				{"pages1024-regions4", 1024, 4},
				{"pages1024-regions8", 1024, 8},
				{"pages2048-regions4", 2048, 4},
			}
			designs := []Design{BaselineDesign(NameBaseline, 4096)}
			for _, pt := range points {
				cfg := pdede.MultiEntryConfig()
				cfg.PageEntries = pt.pages
				cfg.RegionEntries = pt.regions
				designs = append(designs, PDedeDesign(pt.name, cfg))
			}
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			tb := metrics.NewTable("page/region sizing", "IPC gain", "MPKI reduction")
			for _, pt := range points {
				tb.AddRow(pt.name,
					metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(pt.name, NameBaseline))),
					metrics.Pct0(metrics.Mean(suite.MPKIReductions(pt.name, NameBaseline))))
			}
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// extNTDepth — multiple Last BTBM set/way registers (§4.3.1 future work).
func extNTDepth() Experiment {
	return Experiment{
		ID:    "ext-ntdepth",
		Title: "Extension: Multi-Target with multiple Last BTBM set/way registers",
		Paper: "sketched as future work in §4.3.1 (\"multiple Last BTBM set and way registers\")",
		Run: func(r *Runner, w io.Writer) error {
			designs := []Design{BaselineDesign(NameBaseline, 4096)}
			depths := []int{1, 2, 4}
			for _, d := range depths {
				cfg := pdede.MultiTargetConfig()
				cfg.NTLastRegisters = d
				designs = append(designs, PDedeDesign(fmt.Sprintf("pdede-mt-ring%d", d), cfg))
			}
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			tb := metrics.NewTable("Last-register ring depth", "IPC gain", "MPKI reduction")
			for _, d := range depths {
				name := fmt.Sprintf("pdede-mt-ring%d", d)
				tb.AddRow(fmt.Sprint(d),
					metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(name, NameBaseline))),
					metrics.Pct0(metrics.Mean(suite.MPKIReductions(name, NameBaseline))))
			}
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// extWrongPath — wrong-path ICache pollution sensitivity.
func extWrongPath() Experiment {
	return Experiment{
		ID:    "ext-wrongpath",
		Title: "Extension: wrong-path ICache pollution sensitivity",
		Paper: "the paper's simulator models wrong-path fetch; this sweeps the pollution depth",
		Run: func(r *Runner, w io.Writer) error {
			var designs []Design
			lines := []int{0, 4, 8}
			for _, n := range lines {
				p := core.Icelake()
				p.WrongPathLines = n
				bn := fmt.Sprintf("baseline-wp%d", n)
				mn := fmt.Sprintf("pdede-me-wp%d", n)
				designs = append(designs,
					WithParams(BaselineDesign(bn, 4096), bn, p),
					WithParams(PDedeDesign(mn, pdede.MultiEntryConfig()), mn, p))
			}
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			tb := metrics.NewTable("wrong-path lines", "baseline ICache miss rate", "PDede-ME IPC gain")
			for _, n := range lines {
				var mr []float64
				bn := fmt.Sprintf("baseline-wp%d", n)
				for _, a := range suite.OK(bn) {
					res := a.Results[bn]
					mr = append(mr, float64(res.ICacheMisses)/float64(res.ICacheAccesses))
				}
				tb.AddRow(fmt.Sprint(n),
					metrics.Pct0(metrics.Mean(mr)),
					metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(
						fmt.Sprintf("pdede-me-wp%d", n), fmt.Sprintf("baseline-wp%d", n)))))
			}
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

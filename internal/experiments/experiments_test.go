package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

func quickRunner() *Runner {
	return NewRunner(Options{
		Apps:         8,
		TotalInstrs:  900_000,
		WarmupInstrs: 400_000,
	})
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if o.TotalInstrs == 0 || o.WarmupInstrs == 0 || o.Parallelism <= 0 {
		t.Errorf("normalization left zeros: %+v", o)
	}
	o = Options{TotalInstrs: 100, WarmupInstrs: 200}.normalized()
	if o.WarmupInstrs >= o.TotalInstrs {
		t.Errorf("warmup not clamped: %+v", o)
	}
}

func TestSuiteAppsSampling(t *testing.T) {
	r := NewRunner(Options{Apps: 10})
	apps := r.SuiteApps()
	if len(apps) != 10 {
		t.Fatalf("sampled %d apps, want 10", len(apps))
	}
	cats := map[workload.Category]bool{}
	for _, a := range apps {
		cats[a.Category] = true
	}
	if len(cats) < 3 {
		t.Errorf("sampling covered only %d categories", len(cats))
	}
	full := NewRunner(Options{}).SuiteApps()
	if len(full) != 102 {
		t.Errorf("full suite has %d apps", len(full))
	}
}

func TestRunSuiteBasics(t *testing.T) {
	r := quickRunner()
	suite, err := r.Run(StandardDesigns())
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Apps) != 8 {
		t.Fatalf("suite has %d apps", len(suite.Apps))
	}
	for _, a := range suite.Apps {
		if len(a.Results) != 4 {
			t.Fatalf("app %s has %d results", a.App.Name, len(a.Results))
		}
		for name, res := range a.Results {
			if res.Instructions == 0 || res.Cycles == 0 {
				t.Errorf("%s/%s: empty result", a.App.Name, name)
			}
		}
	}
	gains := suite.Gains(NameMultiEntry, NameBaseline)
	if len(gains) != 8 {
		t.Fatalf("gains for %d apps", len(gains))
	}
	// Headline shape: PDede-ME helps on average.
	if g := metrics.GeoMeanSpeedup(gains); g <= 0 {
		t.Errorf("PDede-ME geomean gain = %v, want > 0", g)
	}
	if red := metrics.Mean(suite.MPKIReductions(NameMultiEntry, NameBaseline)); red <= 0.1 {
		t.Errorf("PDede-ME MPKI reduction = %v, want > 10%%", red)
	}
}

func TestVariantOrderingAcrossSuite(t *testing.T) {
	r := quickRunner()
	suite, err := r.Run(StandardDesigns())
	if err != nil {
		t.Fatal(err)
	}
	gDef := metrics.GeoMeanSpeedup(suite.Gains(NamePDede, NameBaseline))
	gMT := metrics.GeoMeanSpeedup(suite.Gains(NameMultiTarget, NameBaseline))
	gME := metrics.GeoMeanSpeedup(suite.Gains(NameMultiEntry, NameBaseline))
	if !(gME >= gMT && gMT >= gDef-0.002) {
		t.Errorf("ordering violated: default=%v mt=%v me=%v", gDef, gMT, gME)
	}
}

func TestByCategory(t *testing.T) {
	r := quickRunner()
	suite, err := r.Run([]Design{BaselineDesign(NameBaseline, 4096)})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, idx := range suite.ByCategory() {
		total += len(idx)
	}
	if total != len(suite.Apps) {
		t.Errorf("category partition covers %d of %d apps", total, len(suite.Apps))
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	want := []string{"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig10", "fig11a", "fig11b", "fig11c", "fig12a", "fig12b", "fig12c",
		"table2", "table4", "sec55", "sec56", "sec57", "sec511"}
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range want {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%s) failed", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID invented an experiment")
	}
	ext := ExtExperiments()
	if len(ext) != 6 {
		t.Fatalf("extensions = %d, want 6", len(ext))
	}
	for _, e := range ext {
		if _, ok := ByID(e.ID); !ok {
			t.Errorf("ByID(%s) failed", e.ID)
		}
		if e.Run == nil || e.Title == "" {
			t.Errorf("extension %q incomplete", e.ID)
		}
	}
	if got := len(Extended()); got != len(all)+len(ext) {
		t.Errorf("Extended() = %d", got)
	}
}

// Every analysis experiment must run end-to-end on a tiny suite.
func TestAnalysisExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	r := NewRunner(Options{Apps: 4, TotalInstrs: 600_000, WarmupInstrs: 250_000})
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table2", "table4"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		var buf bytes.Buffer
		if err := e.Run(r, &buf); err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

// The headline experiment must produce a well-formed report with the
// paper-shaped design ordering.
func TestFig10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	r := NewRunner(Options{Apps: 6, TotalInstrs: 800_000, WarmupInstrs: 350_000})
	e, _ := ByID("fig10")
	var buf bytes.Buffer
	if err := e.Run(r, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{NamePDede, NameMultiTarget, NameMultiEntry, "Per-category", "Per-app"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig10 output missing %q:\n%s", frag, out)
		}
	}
}

func TestCharacterizeSuite(t *testing.T) {
	r := NewRunner(Options{Apps: 4, TotalInstrs: 500_000, WarmupInstrs: 200_000})
	chars, err := r.CharacterizeSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != 4 {
		t.Fatalf("characterized %d apps", len(chars))
	}
	for _, c := range chars {
		if c.Char == nil || c.Char.DynBranches == 0 {
			t.Errorf("empty characterization for %s", c.App.Name)
		}
	}
}

package experiments

import (
	"encoding/json"
	"io"

	"repro/internal/isa"
)

// ExportRecord is the machine-readable form of one (app, design) result,
// for downstream plotting outside this repository.
type ExportRecord struct {
	App      string  `json:"app"`
	Category string  `json:"category"`
	Design   string  `json:"design"`
	IPC      float64 `json:"ipc"`
	BTBMPKI  float64 `json:"btb_mpki"`
	DirMPKI  float64 `json:"dir_mpki"`

	Instructions   uint64  `json:"instructions"`
	Cycles         float64 `json:"cycles"`
	TakenBranches  uint64  `json:"taken_branches"`
	BTBMisses      uint64  `json:"btb_misses"`
	CondMisses     uint64  `json:"cond_misses"`
	UncondMisses   uint64  `json:"uncond_misses"`
	IndirectMisses uint64  `json:"indirect_misses"`

	FrontendStallFrac float64 `json:"frontend_stall_frac"`
	BTBResteerShare   float64 `json:"btb_resteer_share"`
	ICacheMissRate    float64 `json:"icache_miss_rate"`
	DeltaServed       uint64  `json:"delta_served"`
	ExtraBTBCycles    uint64  `json:"extra_btb_cycles"`
}

// Export flattens the suite into records, app-major then design order.
// Failed apps are skipped: their partial results carry no ByDesign order
// and would otherwise export as misleadingly complete rows.
func (s *Suite) Export() []ExportRecord {
	var out []ExportRecord
	for _, a := range s.Apps {
		if a.Failed() {
			continue
		}
		for _, d := range a.ByDesign {
			r := a.Results[d]
			if r == nil {
				continue
			}
			rec := ExportRecord{
				App:               a.App.Name,
				Category:          a.App.Category.String(),
				Design:            d,
				IPC:               r.IPC(),
				BTBMPKI:           r.BTBMPKI(),
				DirMPKI:           r.DirMPKI(),
				Instructions:      r.Instructions,
				Cycles:            r.Cycles,
				TakenBranches:     r.TakenDyn,
				BTBMisses:         r.BTBMisses(),
				CondMisses:        r.BTBMissByClass[isa.ClassCondDirect],
				UncondMisses:      r.BTBMissByClass[isa.ClassUncondDirect],
				IndirectMisses:    r.BTBMissByClass[isa.ClassIndirect],
				FrontendStallFrac: r.FrontendStallFrac(),
				BTBResteerShare:   r.BTBResteerShareOfStalls(),
				DeltaServed:       r.DeltaServed,
				ExtraBTBCycles:    r.ExtraBTBCycles,
			}
			if r.ICacheAccesses > 0 {
				rec.ICacheMissRate = float64(r.ICacheMisses) / float64(r.ICacheAccesses)
			}
			out = append(out, rec)
		}
	}
	return out
}

// WriteJSON emits the suite as a JSON array.
func (s *Suite) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Export())
}

// Package experiments defines one reproducible experiment per table and
// figure in the paper's evaluation, and the shared machinery to run the
// 102-application suite across BTB designs.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options control suite scale and resilience policy. The defaults run the
// full 102-app catalog with a 1.5M-instruction warmup and a 2M-instruction
// measured window per app (the paper warms 100M+ and measures 10M+ on its
// native simulator; windows here scale with the synthetic footprints).
type Options struct {
	// Apps caps the number of applications (0 = all). Subsets are sampled
	// evenly across the catalog so every category stays represented.
	Apps int
	// TotalInstrs is the trace length per app.
	TotalInstrs uint64
	// WarmupInstrs is the unmeasured prefix.
	WarmupInstrs uint64
	// SelfCheckEvery, when non-zero, deep-audits every design's internal
	// invariants every N records during simulation (core.Config.AuditEvery)
	// and fails the (app, design) run on the first violation.
	SelfCheckEvery uint64
	// Workers sizes the pool that executes every unit of heavy work —
	// trace builds, shared warmup passes, and (app, design) simulation
	// cells (0 = Parallelism, then GOMAXPROCS). Cell outcomes are reduced
	// in fixed suite order, so reports, goldens, checkpoints and Suite.Err
	// are bit-identical for every worker count.
	Workers int
	// Parallelism is the historical name for Workers. It is consulted only
	// when Workers is 0, and normalized() rewrites it to match Workers so
	// old readers keep seeing the effective bound.
	Parallelism int
	// ColdStart disables warm-state sharing: every (app, design) cell then
	// simulates its own warmup prefix from cold, as the sequential runner
	// always did. By default one warmup pass per app is shared across all
	// compatible designs (see core.WarmState); the differential oracle and
	// TestWarmCloneOracle prove the shared path bit-identical, so this
	// knob exists for cross-checking, not correctness.
	ColdStart bool

	// AppTimeout bounds one app's wall-clock budget across all its designs
	// and retries (0 = no deadline). A timed-out app is recorded as failed
	// with context.DeadlineExceeded.
	AppTimeout time.Duration
	// Retries is the number of extra attempts after a retryable failure
	// (so Retries = 2 allows up to 3 attempts). Designs that completed in
	// an earlier attempt are not re-simulated.
	Retries int
	// RetryBackoff is the base delay before the first retry; it doubles
	// per attempt, capped at 16x, with deterministic jitter derived from
	// the app name and Seed (no wall-clock randomness). 0 = retry
	// immediately, which keeps tests instant.
	RetryBackoff time.Duration
	// Retryable classifies errors worth another attempt. nil retries only
	// transient trace faults (errors.Is(err, trace.ErrTransient)); panics
	// and deadline expiries are never retried.
	Retryable func(error) bool
	// Seed feeds the deterministic backoff jitter.
	Seed uint64

	// KeepGoing aggregates failures instead of failing fast: Run returns a
	// Suite holding every completed app, each failed app carries its Err,
	// and Suite.Err joins them. Without it the first failure cancels the
	// remaining apps and Run returns that error alone.
	KeepGoing bool
	// CheckpointPath enables checkpoint/resume: completed (app, design)
	// results are atomically persisted after each app, and a later run
	// with the same path skips them. Resume is refused when the window
	// options, Seed, or a shared design's configuration digest changed
	// since the checkpoint was written (stale results must not mix in).
	CheckpointPath string

	// Catalog overrides the application catalog (nil = workload.Catalog()).
	// Tests use tiny catalogs here.
	Catalog []workload.Config
	// BuildTrace overrides trace construction (nil = workload.Build).
	// Tests inject trace.FaultSource wrappers here.
	BuildTrace func(cfg workload.Config, totalInstrs uint64) (trace.Source, error)
	// Log receives progress and failure lines as the suite runs (nil =
	// discard). Commands point it at stderr.
	Log io.Writer
}

// DefaultOptions returns the full-suite configuration.
func DefaultOptions() Options {
	return Options{
		TotalInstrs:  3_500_000,
		WarmupInstrs: 1_500_000,
	}
}

// QuickOptions returns a reduced configuration for smoke tests and quick
// looks: 16 apps, shorter windows.
func QuickOptions() Options {
	return Options{
		Apps:         16,
		TotalInstrs:  1_200_000,
		WarmupInstrs: 500_000,
	}
}

func (o Options) normalized() Options {
	d := DefaultOptions()
	if o.TotalInstrs == 0 {
		o.TotalInstrs = d.TotalInstrs
	}
	if o.WarmupInstrs == 0 {
		o.WarmupInstrs = d.WarmupInstrs
	}
	if o.WarmupInstrs >= o.TotalInstrs {
		o.WarmupInstrs = o.TotalInstrs / 2
	}
	if o.Workers <= 0 {
		o.Workers = o.Parallelism
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	o.Parallelism = o.Workers
	if o.Retries < 0 {
		o.Retries = 0
	}
	return o
}

// retryable reports whether err is worth another attempt under o.
func (o Options) retryable(err error) bool {
	if o.Retryable != nil {
		return o.Retryable(err)
	}
	return errors.Is(err, trace.ErrTransient)
}

// backoff returns the deterministic delay before retry number attempt
// (1-based): capped exponential in RetryBackoff with jitter in [0.5, 1.0)
// drawn from a stream keyed by (Seed, app).
func (o Options) backoff(app string, attempt int) time.Duration {
	if o.RetryBackoff <= 0 {
		return 0
	}
	d := o.RetryBackoff << (attempt - 1)
	if max := 16 * o.RetryBackoff; d > max || d <= 0 {
		d = max
	}
	h := fnv.New64a()
	h.Write([]byte(app))
	jr := rng.New(o.Seed ^ h.Sum64()).Fork(uint64(attempt))
	return time.Duration((0.5 + 0.5*jr.Float64()) * float64(d))
}

// Design names a BTB configuration under test: a fresh predictor per run
// plus an optional core-config hook (perfect direction, ITTAGE, ...).
type Design struct {
	Name string
	// New builds a fresh predictor (stateful structures must not be shared
	// across runs).
	New func() (btb.TargetPredictor, error)
	// Mod optionally adjusts the core configuration for this design.
	Mod func(*core.Config)
}

// AppResult holds one application's runs across all designs, or the
// reason it has none.
type AppResult struct {
	App      workload.Config
	Results  map[string]*core.Result
	ByDesign []string // design order, for deterministic iteration

	// Err is non-nil when the app failed (build error, run error, panic,
	// or deadline); Results then holds whatever designs completed before
	// the failure. Cancelling a sweep also manufactures per-app context
	// errors: apps still queued stay Unstarted (Attempts == 0) and are
	// excluded from Suite.Err, while apps cancelled mid-simulation keep
	// their context error as a (partial-run) failure.
	Err error
	// Attempts counts how many times the app was attempted (0 for apps
	// restored wholesale from a checkpoint).
	Attempts int
	// Skipped marks an app whose every design was restored from the
	// checkpoint, so nothing was re-simulated.
	Skipped bool
}

// Failed reports whether the app produced an error instead of a full
// result set.
func (a *AppResult) Failed() bool { return a.Err != nil }

// Unstarted reports whether the app was cancelled while still queued: no
// attempt ever ran (Attempts == 0) and Err is a bare context error. Such
// apps were interrupted, not broken, so Suite.Err excludes them;
// RunContext reports the interruption via the context's error instead.
func (a *AppResult) Unstarted() bool {
	return a.Attempts == 0 && !a.Skipped &&
		(errors.Is(a.Err, context.Canceled) || errors.Is(a.Err, context.DeadlineExceeded))
}

// Result returns the app's result for design, or nil when the app never
// completed it (failure, cancellation, or a design absent from the run).
// Safe on zero-value AppResults.
func (a *AppResult) Result(design string) *core.Result { return a.Results[design] }

// Suite is the result of running designs over the app catalog.
type Suite struct {
	Apps    []AppResult
	Designs []string
}

// Err joins every per-app failure (nil when the whole suite succeeded).
// Apps cancelled before their first attempt (see Unstarted) are excluded:
// an interrupted sweep should not report the queued remainder as broken
// apps alongside the one real failure that may have cancelled it.
func (s *Suite) Err() error {
	var errs []error
	for i := range s.Apps {
		if a := &s.Apps[i]; a.Failed() && !a.Unstarted() {
			errs = append(errs, fmt.Errorf("app %s: %w", a.App.Name, a.Err))
		}
	}
	return errors.Join(errs...)
}

// OK returns the apps that completed every named design. Failed apps may
// carry partial result maps and cancelled-before-start apps carry none,
// so report code iterating a suite must go through OK (or Result plus a
// nil check) rather than indexing Results and calling methods on the
// looked-up pointer.
func (s *Suite) OK(designs ...string) []*AppResult {
	var out []*AppResult
	for i := range s.Apps {
		a := &s.Apps[i]
		if a.Failed() {
			continue
		}
		complete := true
		for _, d := range designs {
			if a.Results[d] == nil {
				complete = false
				break
			}
		}
		if complete {
			out = append(out, a)
		}
	}
	return out
}

// Failed returns the indices of failed apps, including apps cancelled
// while still queued (use Unstarted to tell the two apart).
func (s *Suite) Failed() []int {
	var out []int
	for i := range s.Apps {
		if s.Apps[i].Failed() {
			out = append(out, i)
		}
	}
	return out
}

// PanicError records a panic recovered from one (app, design) run,
// preserving the panic value and stack so a crash in one predictor is a
// per-app failure, not a dead process.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string { return fmt.Sprintf("panic: %v", p.Value) }

// pool is the shared work-stealing executor: a fixed set of workers
// draining one unbuffered job queue. Every unit of heavy work in a suite
// run — trace builds, shared warmup passes, (app, design) simulation
// cells — is a job, so total CPU concurrency is bounded by the worker
// count no matter how many apps are in flight. Jobs are leaves: a job
// never submits another job and waits on it, so the pool cannot deadlock.
// With one worker, jobs run strictly in submission order, which makes the
// Workers=1 schedule the sequential runner's schedule exactly.
type pool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

func newPool(workers int) *pool {
	p := &pool{jobs: make(chan func())}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// submit enqueues f; it blocks until a worker accepts the job. That
// backpressure is the pool's contract: workers drain jobs until close, so
// the send always completes.
func (p *pool) submit(f func()) {
	//pdede:blocking-ok backpressure by design; workers drain jobs until close
	p.jobs <- f
}

// run executes f on a worker and waits for it to finish.
func (p *pool) run(f func()) {
	done := make(chan struct{})
	//pdede:blocking-ok backpressure by design; workers drain jobs until close
	p.jobs <- func() { defer close(done); f() }
	<-done
}

// close shuts the queue and waits for the workers to drain.
func (p *pool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// Runner executes suites.
type Runner struct {
	Opts Options

	ctx context.Context // base context for Run; nil = Background

	mu sync.Mutex
	// failures accumulates across Run/CharacterizeSuite calls; worker
	// goroutines append concurrently via noteFailures.
	//
	//pdede:guarded-by(mu)
	failures []error
}

// NewRunner builds a runner with normalized options.
func NewRunner(opts Options) *Runner {
	return &Runner{Opts: opts.normalized()}
}

// WithContext sets the base context used by Run and CharacterizeSuite
// (experiment Run hooks receive only the Runner, so commands cancel whole
// experiments through here). It returns r for chaining.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	r.ctx = ctx
	return r
}

func (r *Runner) baseCtx() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

func (r *Runner) logf(format string, args ...any) {
	if r.Opts.Log != nil {
		fmt.Fprintf(r.Opts.Log, format+"\n", args...)
	}
}

// noteFailures records per-app failures for Err.
func (r *Runner) noteFailures(errs ...error) {
	r.mu.Lock()
	r.failures = append(r.failures, errs...)
	r.mu.Unlock()
}

// Err joins every app failure the runner has tolerated so far (keep-going
// runs return partial suites with a nil error; commands surface this to
// decide the exit code).
func (r *Runner) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return errors.Join(r.failures...)
}

// SuiteApps returns the catalog subset selected by the options.
func (r *Runner) SuiteApps() []workload.Config {
	apps := r.Opts.Catalog
	if apps == nil {
		apps = workload.Catalog()
	}
	if r.Opts.Apps <= 0 || r.Opts.Apps >= len(apps) {
		return apps
	}
	// Even sampling keeps all categories represented.
	out := make([]workload.Config, 0, r.Opts.Apps)
	stride := float64(len(apps)) / float64(r.Opts.Apps)
	for i := 0; i < r.Opts.Apps; i++ {
		out = append(out, apps[int(float64(i)*stride)])
	}
	return out
}

// buildTrace builds (or injects) the app's trace source.
func (r *Runner) buildTrace(app workload.Config) (trace.Source, error) {
	if r.Opts.BuildTrace != nil {
		return r.Opts.BuildTrace(app, r.Opts.TotalInstrs)
	}
	_, tr, err := workload.Build(app, r.Opts.TotalInstrs)
	return tr, err
}

// Run executes every design over the selected apps with the runner's base
// context. See RunContext.
func (r *Runner) Run(designs []Design) (*Suite, error) {
	return r.RunContext(r.baseCtx(), designs)
}

// RunContext executes every design over the selected apps on a shared
// pool of Opts.Workers workers. Traces are built once per app and reused
// across that app's design cells, then discarded (the full suite's traces
// would not fit in memory simultaneously). When the base configuration
// permits (see core.WarmupCompatible), the warmup prefix is also simulated
// once per app and cloned into each compatible design's run instead of
// being re-simulated per cell.
//
// Every (app, design) pair is an independent job, so designs of one app
// run concurrently; cell outcomes are reduced in fixed design order, which
// keeps results, reports, checkpoints and error text bit-identical for
// every worker count.
//
// Each app runs isolated: panics become per-app errors, AppTimeout bounds
// its wall clock, and retryable failures are re-attempted up to
// Opts.Retries times. Without KeepGoing the first failure cancels the
// remaining apps and is returned alone; with KeepGoing every app runs,
// failures land in AppResult.Err (joined by Suite.Err), and RunContext
// errors only when the context is cancelled or no app succeeded at all.
// With CheckpointPath set, completed results are persisted after each app
// and already-completed (app, design) pairs are skipped on resume.
func (r *Runner) RunContext(ctx context.Context, designs []Design) (*Suite, error) {
	apps := r.SuiteApps()
	suite := &Suite{Apps: make([]AppResult, len(apps))}
	for _, d := range designs {
		suite.Designs = append(suite.Designs, d.Name)
	}

	var ckpt *Checkpoint
	if r.Opts.CheckpointPath != "" {
		var err error
		ckpt, err = LoadCheckpoint(r.Opts.CheckpointPath, CheckpointMeta{
			TotalInstrs:  r.Opts.TotalInstrs,
			WarmupInstrs: r.Opts.WarmupInstrs,
			Seed:         r.Opts.Seed,
			Designs:      DesignDigests(designs),
		})
		if err != nil {
			return nil, err
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := newPool(r.Opts.Workers)
	defer workers.close()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
	)
	// appSem bounds how many apps are in flight at once. Orchestrator
	// goroutines below do no heavy work themselves — they feed jobs to the
	// pool — but capping them keeps per-app trace memory bounded and leaves
	// apps beyond the cap Unstarted when the run is cancelled early.
	appSem := make(chan struct{}, r.Opts.Workers)
	for i := range apps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case appSem <- struct{}{}:
			case <-runCtx.Done():
				mu.Lock()
				suite.Apps[i] = AppResult{App: apps[i], Err: runCtx.Err()}
				mu.Unlock()
				return
			}
			//pdede:blocking-ok releasing a held semaphore slot from a buffered channel never blocks
			defer func() { <-appSem }()

			res := r.runApp(runCtx, workers, apps[i], designs, ckpt)
			if res.Err == nil && !res.Skipped {
				r.logf("runner: app %s ok (%d designs, %d attempt(s))",
					apps[i].Name, len(res.Results), res.Attempts)
			}
			if res.Err != nil {
				r.logf("runner: app %s FAILED after %d attempt(s): %v",
					apps[i].Name, res.Attempts, res.Err)
			}
			if ckpt != nil && len(res.Results) > 0 && !res.Skipped {
				if err := ckpt.Record(apps[i].Name, res.Results); err != nil {
					r.logf("runner: checkpoint write failed: %v", err)
					if res.Err == nil {
						res.Err = fmt.Errorf("checkpoint: %w", err)
					}
				}
			}

			mu.Lock()
			defer mu.Unlock()
			suite.Apps[i] = res
			if res.Err != nil && !r.Opts.KeepGoing && firstEr == nil && !res.Unstarted() {
				firstEr = fmt.Errorf("app %s: %w", apps[i].Name, res.Err)
				cancel() // fail fast: stop the rest of the suite
			}
		}(i)
	}
	wg.Wait()

	if firstEr != nil {
		return nil, firstEr
	}
	joined := suite.Err()
	if joined != nil {
		// Note failures before any return below so Runner.Err sees apps
		// that failed for real even when the context was also cancelled.
		r.noteFailures(joined)
	}
	if err := ctx.Err(); err != nil {
		return suite, err
	}
	if joined != nil && len(suite.Failed()) == len(suite.Apps) {
		return suite, fmt.Errorf("all %d apps failed: %w", len(suite.Apps), joined)
	}
	return suite, nil
}

// runApp runs one application across all designs with checkpoint reuse,
// retries, a per-app deadline and panic isolation. It always returns a
// populated AppResult (never a zero value): on failure Err is set and
// Results holds the designs that did complete.
func (r *Runner) runApp(ctx context.Context, workers *pool, app workload.Config, designs []Design, ckpt *Checkpoint) AppResult {
	out := AppResult{App: app, Results: make(map[string]*core.Result, len(designs))}
	restored := make(map[string]bool, len(designs))
	if ckpt != nil {
		for _, d := range designs {
			if res, ok := ckpt.Done(app.Name, d.Name); ok {
				out.Results[d.Name] = res
				restored[d.Name] = true
			}
		}
		if len(out.Results) == len(designs) {
			out.Skipped = true
			for _, d := range designs {
				out.ByDesign = append(out.ByDesign, d.Name)
			}
			r.logf("runner: app %s restored from checkpoint", app.Name)
			return out
		}
	}

	// Cancelled before any work: leave Attempts at 0 so the app reads as
	// unstarted (see AppResult.Unstarted) rather than failed.
	if err := ctx.Err(); err != nil {
		out.Err = err
		return out
	}

	appCtx := ctx
	if r.Opts.AppTimeout > 0 {
		var cancel context.CancelFunc
		appCtx, cancel = context.WithTimeout(ctx, r.Opts.AppTimeout)
		defer cancel()
	}

	for attempt := 1; ; attempt++ {
		out.Attempts = attempt
		err := r.runAppOnce(appCtx, workers, app, designs, out.Results)
		if err == nil {
			out.Err = nil
			for _, d := range designs {
				out.ByDesign = append(out.ByDesign, d.Name)
			}
			return out
		}
		out.Err = err
		if appCtx.Err() != nil || attempt > r.Opts.Retries || !r.Opts.retryable(err) {
			pruneResults(designs, restored, out.Results)
			return out
		}
		r.logf("runner: app %s attempt %d failed (%v), retrying", app.Name, attempt, err)
		if delay := r.Opts.backoff(app.Name, attempt); delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-appCtx.Done():
				t.Stop()
				out.Err = appCtx.Err()
				pruneResults(designs, restored, out.Results)
				return out
			}
		}
	}
}

// pruneResults restores the sequential runner's failure semantics on a
// parallel result map. Cells run concurrently, so when design k fails,
// designs after k may already have succeeded — results a sequential run
// (which stops at the first failing design) would never have produced.
// Dropping every non-checkpointed success past the first missing design
// makes the surviving result set — and hence checkpoint files and reports
// — bit-identical for every worker count. Successes are only pruned on
// the app's final (failed) return: across retries the full done map is
// kept so completed designs are not re-simulated.
func pruneResults(designs []Design, restored map[string]bool, done map[string]*core.Result) {
	minMissing := len(designs)
	for i := range designs {
		if _, ok := done[designs[i].Name]; !ok {
			minMissing = i
			break
		}
	}
	for i := minMissing + 1; i < len(designs); i++ {
		if name := designs[i].Name; !restored[name] {
			delete(done, name)
		}
	}
}

// runAppOnce is a single attempt: build the trace, optionally run the
// shared warmup pass, then fan every design not already in done (filled
// in by checkpoint restore or earlier attempts) out to the worker pool as
// one simulation cell each. Cell outcomes are reduced in design order:
// every success is recorded so a retry never re-simulates it, and the
// error of the earliest failing design is returned — the same design a
// sequential attempt would have stopped at. Panics anywhere below —
// workload generation, the warmup pass, predictor construction, the core
// models — are recovered into *PanicError inside the job that hit them.
func (r *Runner) runAppOnce(ctx context.Context, workers *pool, app workload.Config, designs []Design, done map[string]*core.Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}

	var (
		tr       trace.Source
		buildErr error
	)
	workers.run(func() {
		defer func() {
			if v := recover(); v != nil {
				buildErr = &PanicError{Value: v, Stack: debug.Stack()}
			}
		}()
		tr, buildErr = r.buildTrace(app)
	})
	if buildErr != nil {
		return fmt.Errorf("build: %w", buildErr)
	}

	var pending []*Design
	for i := range designs {
		if _, ok := done[designs[i].Name]; !ok {
			pending = append(pending, &designs[i])
		}
	}

	// Shared warmup: one pass over the warm prefix, cloned into every
	// compatible cell. Only worth a reader open when at least two pending
	// designs can reuse it — below that the pass is pure overhead, and
	// skipping it keeps single-design resumes at one open per attempt.
	var warm *core.WarmState
	if !r.Opts.ColdStart && r.Opts.WarmupInstrs > 0 && r.warmEligible(app, pending) >= 2 {
		var warmErr error
		workers.run(func() {
			defer func() {
				if v := recover(); v != nil {
					warmErr = &PanicError{Value: v, Stack: debug.Stack()}
				}
			}()
			warm, warmErr = core.WarmupContext(ctx, r.baseConfig(app), tr)
		})
		if warmErr != nil {
			return fmt.Errorf("warmup: %w", warmErr)
		}
	}

	type cell struct {
		res *core.Result
		err error
	}
	outs := make([]cell, len(pending))
	var wg sync.WaitGroup
	for k := range pending {
		k := k
		wg.Add(1)
		workers.submit(func() {
			defer wg.Done()
			outs[k].res, outs[k].err = r.runOne(ctx, app, tr, pending[k], warm)
		})
	}
	//pdede:blocking-ok bounded: every submitted job runs and runOne returns promptly on ctx cancellation
	wg.Wait()

	var firstErr error
	for k := range pending {
		if outs[k].err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("design %s: %w", pending[k].Name, outs[k].err)
			}
			continue
		}
		done[pending[k].Name] = outs[k].res
	}
	return firstErr
}

// baseConfig is the design-independent core configuration every cell of
// app starts from; Design.Mod specializes a copy per cell.
func (r *Runner) baseConfig(app workload.Config) core.Config {
	return core.Config{
		Params:       core.Icelake(),
		BackendCPI:   app.BackendCPI,
		WarmupInstrs: r.Opts.WarmupInstrs,
		AuditEvery:   r.Opts.SelfCheckEvery,
	}
}

// warmEligible counts the pending designs whose modified configuration
// can reuse a shared warm state for app.
func (r *Runner) warmEligible(app workload.Config, pending []*Design) int {
	n := 0
	for _, d := range pending {
		if r.probeWarm(app, d) {
			n++
		}
	}
	return n
}

// probeWarm reports whether d's configuration passes the warm-state
// compatibility gate. A panicking Mod reads as incompatible here; the
// design's own cell will surface the panic as that design's error.
func (r *Runner) probeWarm(app workload.Config, d *Design) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	base := r.baseConfig(app)
	cfg := base
	if d.Mod != nil {
		d.Mod(&cfg)
	}
	return core.WarmupCompatible(base, cfg) == nil
}

// runOne simulates one (app, design) cell. Panics in the predictor
// constructor, the core models or the trace reader are recovered here so
// the returned error is attributed to the design that crashed. Cells
// whose configuration is compatible with warm clone its pre-simulated
// shared state and replay the warm prefix through the design-private fast
// path; everything else — pipeline-model designs, modified parameters, a
// cold-start run — simulates from scratch.
func (r *Runner) runOne(ctx context.Context, app workload.Config, tr trace.Source, d *Design, warm *core.WarmState) (_ *core.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	tp, err := d.New()
	if err != nil {
		return nil, err
	}
	cfg := r.baseConfig(app)
	cfg.BTB = tp
	if d.Mod != nil {
		d.Mod(&cfg)
	}
	if cfg.UsePipeline {
		return core.RunPipelineContext(ctx, cfg, tr)
	}
	if warm != nil && warm.Compatible(cfg) == nil {
		return core.RunWarmContext(ctx, cfg, tr, warm)
	}
	return core.RunContext(ctx, cfg, tr)
}

// Gains collects per-app relative IPC gains of design vs base. Failed apps
// are skipped.
func (s *Suite) Gains(design, base string) []float64 {
	var out []float64
	for i := range s.Apps {
		a := &s.Apps[i]
		if a.Failed() {
			continue
		}
		d, b := a.Results[design], a.Results[base]
		if d == nil || b == nil {
			continue
		}
		out = append(out, d.Speedup(b))
	}
	return out
}

// MPKIReductions collects per-app relative BTB-MPKI reductions. Failed
// apps are skipped.
func (s *Suite) MPKIReductions(design, base string) []float64 {
	var out []float64
	for i := range s.Apps {
		a := &s.Apps[i]
		if a.Failed() {
			continue
		}
		d, b := a.Results[design], a.Results[base]
		if d == nil || b == nil {
			continue
		}
		out = append(out, d.MPKIReduction(b))
	}
	return out
}

// ByCategory groups app indices per category. Failed apps are skipped so
// per-category aggregates never average in zero-valued results.
func (s *Suite) ByCategory() map[workload.Category][]int {
	out := make(map[workload.Category][]int)
	for i := range s.Apps {
		if s.Apps[i].Failed() {
			continue
		}
		out[s.Apps[i].App.Category] = append(out[s.Apps[i].App.Category], i)
	}
	for _, idx := range out { //pdede:nondet-ok each slice is sorted independently; iteration order cannot show
		sort.Ints(idx)
	}
	return out
}

// sortedCategories returns a ByCategory map's keys in ascending order, so
// per-category report sections always print in the same order.
func sortedCategories(m map[workload.Category][]int) []workload.Category {
	cats := make([]workload.Category, 0, len(m))
	for c := range m {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	return cats
}

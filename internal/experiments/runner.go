// Package experiments defines one reproducible experiment per table and
// figure in the paper's evaluation, and the shared machinery to run the
// 102-application suite across BTB designs.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options control suite scale. The defaults run the full 102-app catalog
// with a 1.5M-instruction warmup and a 2M-instruction measured window per
// app (the paper warms 100M+ and measures 10M+ on its native simulator;
// windows here scale with the synthetic footprints).
type Options struct {
	// Apps caps the number of applications (0 = all). Subsets are sampled
	// evenly across the catalog so every category stays represented.
	Apps int
	// TotalInstrs is the trace length per app.
	TotalInstrs uint64
	// WarmupInstrs is the unmeasured prefix.
	WarmupInstrs uint64
	// Parallelism bounds concurrent app simulations (0 = GOMAXPROCS).
	Parallelism int
}

// DefaultOptions returns the full-suite configuration.
func DefaultOptions() Options {
	return Options{
		TotalInstrs:  3_500_000,
		WarmupInstrs: 1_500_000,
	}
}

// QuickOptions returns a reduced configuration for smoke tests and quick
// looks: 16 apps, shorter windows.
func QuickOptions() Options {
	return Options{
		Apps:         16,
		TotalInstrs:  1_200_000,
		WarmupInstrs: 500_000,
	}
}

func (o Options) normalized() Options {
	d := DefaultOptions()
	if o.TotalInstrs == 0 {
		o.TotalInstrs = d.TotalInstrs
	}
	if o.WarmupInstrs == 0 {
		o.WarmupInstrs = d.WarmupInstrs
	}
	if o.WarmupInstrs >= o.TotalInstrs {
		o.WarmupInstrs = o.TotalInstrs / 2
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Design names a BTB configuration under test: a fresh predictor per run
// plus an optional core-config hook (perfect direction, ITTAGE, ...).
type Design struct {
	Name string
	// New builds a fresh predictor (stateful structures must not be shared
	// across runs).
	New func() (btb.TargetPredictor, error)
	// Mod optionally adjusts the core configuration for this design.
	Mod func(*core.Config)
}

// AppResult holds one application's runs across all designs.
type AppResult struct {
	App      workload.Config
	Results  map[string]*core.Result
	ByDesign []string // design order, for deterministic iteration
}

// Suite is the result of running designs over the app catalog.
type Suite struct {
	Apps    []AppResult
	Designs []string
}

// Runner executes suites.
type Runner struct {
	Opts Options
}

// NewRunner builds a runner with normalized options.
func NewRunner(opts Options) *Runner {
	return &Runner{Opts: opts.normalized()}
}

// SuiteApps returns the catalog subset selected by the options.
func (r *Runner) SuiteApps() []workload.Config {
	apps := workload.Catalog()
	if r.Opts.Apps <= 0 || r.Opts.Apps >= len(apps) {
		return apps
	}
	// Even sampling keeps all categories represented.
	out := make([]workload.Config, 0, r.Opts.Apps)
	stride := float64(len(apps)) / float64(r.Opts.Apps)
	for i := 0; i < r.Opts.Apps; i++ {
		out = append(out, apps[int(float64(i)*stride)])
	}
	return out
}

// Run executes every design over the selected apps. Traces are built once
// per app and reused across designs, then discarded (the full suite's
// traces would not fit in memory simultaneously).
func (r *Runner) Run(designs []Design) (*Suite, error) {
	apps := r.SuiteApps()
	suite := &Suite{Apps: make([]AppResult, len(apps))}
	for _, d := range designs {
		suite.Designs = append(suite.Designs, d.Name)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
	)
	sem := make(chan struct{}, r.Opts.Parallelism)
	for i := range apps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := r.runApp(apps[i], designs)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstEr == nil {
				firstEr = fmt.Errorf("app %s: %w", apps[i].Name, err)
				return
			}
			suite.Apps[i] = res
		}(i)
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return suite, nil
}

func (r *Runner) runApp(app workload.Config, designs []Design) (AppResult, error) {
	_, tr, err := workload.Build(app, r.Opts.TotalInstrs)
	if err != nil {
		return AppResult{}, err
	}
	out := AppResult{App: app, Results: make(map[string]*core.Result, len(designs))}
	for _, d := range designs {
		res, err := r.runOne(app, tr, d)
		if err != nil {
			return AppResult{}, fmt.Errorf("design %s: %w", d.Name, err)
		}
		out.Results[d.Name] = res
		out.ByDesign = append(out.ByDesign, d.Name)
	}
	return out, nil
}

func (r *Runner) runOne(app workload.Config, tr *trace.Memory, d Design) (*core.Result, error) {
	tp, err := d.New()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Params:       core.Icelake(),
		BackendCPI:   app.BackendCPI,
		BTB:          tp,
		WarmupInstrs: r.Opts.WarmupInstrs,
	}
	if d.Mod != nil {
		d.Mod(&cfg)
	}
	if cfg.UsePipeline {
		return core.RunPipeline(cfg, tr)
	}
	return core.Run(cfg, tr)
}

// Gains collects per-app relative IPC gains of design vs base.
func (s *Suite) Gains(design, base string) []float64 {
	var out []float64
	for _, a := range s.Apps {
		d, b := a.Results[design], a.Results[base]
		if d == nil || b == nil {
			continue
		}
		out = append(out, d.Speedup(b))
	}
	return out
}

// MPKIReductions collects per-app relative BTB-MPKI reductions.
func (s *Suite) MPKIReductions(design, base string) []float64 {
	var out []float64
	for _, a := range s.Apps {
		d, b := a.Results[design], a.Results[base]
		if d == nil || b == nil {
			continue
		}
		out = append(out, d.MPKIReduction(b))
	}
	return out
}

// ByCategory groups app indices per category.
func (s *Suite) ByCategory() map[workload.Category][]int {
	out := make(map[workload.Category][]int)
	for i, a := range s.Apps {
		out[a.App.Category] = append(out[a.App.Category], i)
	}
	for _, idx := range out {
		sort.Ints(idx)
	}
	return out
}

package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/btb"
	"repro/internal/cactilite"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/pdede"
	"repro/internal/textplot"
)

// summarize prints mean IPC gain and MPKI reduction of each design vs base.
func summarize(w io.Writer, s *Suite, base string, designs []string) error {
	tb := metrics.NewTable("design", "IPC gain (geomean)", "BTB MPKI reduction (mean)", "max IPC gain", "min IPC gain")
	for _, d := range designs {
		if d == base {
			continue
		}
		gains := s.Gains(d, base)
		reds := s.MPKIReductions(d, base)
		tb.AddRow(d, metrics.Pct(metrics.GeoMeanSpeedup(gains)), metrics.Pct0(metrics.Mean(reds)),
			metrics.Pct(metrics.Max(gains)), metrics.Pct(metrics.Min(gains)))
	}
	_, err := fmt.Fprint(w, tb)
	return err
}

// expFig10 — headline IPC/MPKI results and the per-app gain curve.
func expFig10() Experiment {
	return Experiment{
		ID:    "fig10",
		Title: "Figure 10: IPC and MPKI improvements of PDede variants over the 4K baseline",
		Paper: "Default +9.4% IPC / −35.4% MPKI; Multi-Target +11.4%; Multi-Entry +14.4% / −54.7% (gains 3–76%)",
		Run: func(r *Runner, w io.Writer) error {
			designs := StandardDesigns()
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			names := []string{NamePDede, NameMultiTarget, NameMultiEntry}
			if err := summarize(w, suite, NameBaseline, names); err != nil {
				return err
			}

			// 10a/b: per-category breakdown for the best design.
			fmt.Fprintln(w, "\nPer-category (PDede-Multi Entry vs baseline):")
			tb := metrics.NewTable("category", "apps", "IPC gain", "MPKI reduction")
			byCat := suite.ByCategory()
			for _, cat := range sortedCategories(byCat) {
				idx := byCat[cat]
				var gains, reds []float64
				for _, i := range idx {
					a := suite.Apps[i]
					me, base := a.Result(NameMultiEntry), a.Result(NameBaseline)
					if me == nil || base == nil {
						continue
					}
					gains = append(gains, me.Speedup(base))
					reds = append(reds, me.MPKIReduction(base))
				}
				tb.AddRow(cat.String(), fmt.Sprint(len(idx)),
					metrics.Pct(metrics.GeoMeanSpeedup(gains)), metrics.Pct0(metrics.Mean(reds)))
			}
			fmt.Fprint(w, tb)

			// Per-class MPKI reduction (the paper: cond −74%, uncond −49%, indirect −4%).
			fmt.Fprintln(w, "\nPer-class MPKI reduction (Multi-Entry vs baseline, suite aggregate):")
			var missBase, missME [isa.NumClasses]uint64
			var instr uint64
			for _, a := range suite.OK(NameBaseline, NameMultiEntry) {
				for cl := 0; cl < isa.NumClasses; cl++ {
					missBase[cl] += a.Results[NameBaseline].BTBMissByClass[cl]
					missME[cl] += a.Results[NameMultiEntry].BTBMissByClass[cl]
				}
				instr += a.Results[NameBaseline].Instructions
			}
			tbc := metrics.NewTable("class", "baseline MPKI", "pdede-me MPKI", "reduction")
			for cl := isa.Class(0); cl < isa.NumClasses; cl++ {
				if missBase[cl] == 0 {
					continue
				}
				b := float64(missBase[cl]) * 1000 / float64(instr)
				m := float64(missME[cl]) * 1000 / float64(instr)
				tbc.AddRow(cl.String(), fmt.Sprintf("%.3f", b), fmt.Sprintf("%.3f", m), metrics.Pct0(1-m/b))
			}
			fmt.Fprint(w, tbc)

			// 10c: the per-app gain curve.
			fmt.Fprintln(w, "\nPer-app IPC gain curve (Multi-Entry, ascending):")
			type appGain struct {
				name string
				gain float64
			}
			var curve []appGain
			for _, a := range suite.OK(NameBaseline, NameMultiEntry) {
				curve = append(curve, appGain{a.App.Name, a.Results[NameMultiEntry].Speedup(a.Results[NameBaseline])})
			}
			sort.Slice(curve, func(i, j int) bool { return curve[i].gain < curve[j].gain })
			var bars []textplot.Bar
			for i, ag := range curve {
				if len(curve) > 24 && i%(len(curve)/24+1) != 0 && i != len(curve)-1 {
					continue
				}
				bars = append(bars, textplot.Bar{Label: ag.name, Value: 100 * ag.gain})
			}
			fmt.Fprint(w, textplot.BarChart(bars, 40, "%+.1f%%"))
			return nil
		},
	}
}

// expFig11a — per-technique contribution.
func expFig11a() Experiment {
	return Experiment{
		ID:    "fig11a",
		Title: "Figure 11a: IPC contribution of each technique (cumulative designs)",
		Paper: "dedup-only +1.6%; +partitioning +5.3%; +delta +2.5%; +MT +2%; +ME +5%",
		Run: func(r *Runner, w io.Writer) error {
			suite, err := r.Run(AblationDesigns())
			if err != nil {
				return err
			}
			order := []string{NameDedup, NamePartition, NamePDede, NameMultiTarget, NameMultiEntry}
			tb := metrics.NewTable("design (cumulative)", "IPC gain vs baseline", "increment over previous", "MPKI reduction")
			var bars []textplot.Bar
			prev := 0.0
			for _, d := range order {
				g := metrics.GeoMeanSpeedup(suite.Gains(d, NameBaseline))
				red := metrics.Mean(suite.MPKIReductions(d, NameBaseline))
				tb.AddRow(d, metrics.Pct(g), metrics.Pct(g-prev), metrics.Pct0(red))
				bars = append(bars, textplot.Bar{Label: d, Value: 100 * g})
				prev = g
			}
			if _, err = fmt.Fprint(w, tb); err != nil {
				return err
			}
			fmt.Fprintln(w)
			_, err = fmt.Fprint(w, textplot.BarChart(bars, 40, "%+.1f%%"))
			return err
		},
	}
}

// expFig11b — 2-cycle-always BTB and fetch-queue sweep.
func expFig11b() Experiment {
	return Experiment{
		ID:    "fig11b",
		Title: "Figure 11b: always-2-cycle BTB penalty and fetch-queue-size sensitivity",
		Paper: "always-2-cycle lowers gains 14.4%→13.4%; gains 12.7% at small FTQ → 15.4% at 128 entries",
		Run: func(r *Runner, w io.Writer) error {
			twoCycle := pdede.MultiEntryConfig()
			twoCycle.ExtraCycleAlways = true
			designs := []Design{
				BaselineDesign(NameBaseline, 4096),
				PDedeDesign(NameMultiEntry, pdede.MultiEntryConfig()),
				PDedeDesign("pdede-me-2cyc-always", twoCycle),
			}
			for _, ftq := range []int{16, 32, 128} {
				p := core.Icelake()
				p.FetchQueueEntries = ftq
				designs = append(designs,
					WithParams(BaselineDesign(fmt.Sprintf("baseline-ftq%d", ftq), 4096), fmt.Sprintf("baseline-ftq%d", ftq), p),
					WithParams(PDedeDesign(fmt.Sprintf("pdede-me-ftq%d", ftq), pdede.MultiEntryConfig()), fmt.Sprintf("pdede-me-ftq%d", ftq), p),
				)
			}
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			tb := metrics.NewTable("configuration", "PDede-ME IPC gain")
			tb.AddRow("FTQ 64 (default)", metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(NameMultiEntry, NameBaseline))))
			tb.AddRow("FTQ 64, 2-cycle-always", metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains("pdede-me-2cyc-always", NameBaseline))))
			for _, ftq := range []int{16, 32, 128} {
				tb.AddRow(fmt.Sprintf("FTQ %d", ftq),
					metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(
						fmt.Sprintf("pdede-me-ftq%d", ftq), fmt.Sprintf("baseline-ftq%d", ftq)))))
			}
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// expFig11c — 2-level BTB with PDede as L1.
func expFig11c() Experiment {
	return Experiment{
		ID:    "fig11c",
		Title: "Figure 11c: 2-level BTB — PDede re-architecting the L1",
		Paper: "PDede L1 provides significant gains across L0 sizes",
		Run: func(r *Runner, w io.Writer) error {
			var designs []Design
			sizes := []int{128, 256, 512, 1024}
			for _, l0 := range sizes {
				designs = append(designs,
					TwoLevelDesign(fmt.Sprintf("2L-base-l0_%d", l0), l0, false),
					TwoLevelDesign(fmt.Sprintf("2L-pdede-l0_%d", l0), l0, true),
				)
			}
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			tb := metrics.NewTable("L0 entries", "PDede-L1 IPC gain over baseline-L1")
			for _, l0 := range sizes {
				g := metrics.GeoMeanSpeedup(suite.Gains(
					fmt.Sprintf("2L-pdede-l0_%d", l0), fmt.Sprintf("2L-base-l0_%d", l0)))
				tb.AddRow(fmt.Sprint(l0), metrics.Pct(g))
			}
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// expFig12a — Shotgun comparison.
func expFig12a() Experiment {
	return Experiment{
		ID:    "fig12a",
		Title: "Figure 12a: comparison to a Shotgun-style state-of-the-art BTB",
		Paper: "Shotgun +0.8% at iso-storage, +2.7% at 45KB; PDede +14.4% at iso-storage",
		Run: func(r *Runner, w io.Writer) error {
			suite, err := r.Run(ShotgunDesigns())
			if err != nil {
				return err
			}
			return summarize(w, suite, NameBaseline, []string{NameShotgun, NameShotgun + "-45KB", NameMultiEntry})
		},
	}
}

// expFig12b — larger BTB sizes.
func expFig12b() Experiment {
	return Experiment{
		ID:    "fig12b",
		Title: "Figure 12b: PDede gains at larger BTB sizes (iso-storage per size)",
		Paper: "gains shrink as footprints start to fit: +3.3% at 16K entries (150KB); JITed servers still +6%",
		Run: func(r *Runner, w io.Writer) error {
			sizes := []int{4096, 8192, 16384}
			var designs []Design
			for _, n := range sizes {
				designs = append(designs,
					BaselineDesign(fmt.Sprintf("baseline-%d", n), n),
					PDedeDesign(fmt.Sprintf("pdede-me-%d", n), pdede.ScaledFromBaseline(n, pdede.MultiEntry)),
				)
			}
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			tb := metrics.NewTable("baseline entries", "storage", "PDede-ME IPC gain", "MPKI reduction", "JITed-server gain")
			for _, n := range sizes {
				base := fmt.Sprintf("baseline-%d", n)
				pd := fmt.Sprintf("pdede-me-%d", n)
				// JITed server apps called out by §5.8.
				var jit []float64
				for _, a := range suite.OK(base, pd) {
					if len(a.App.Name) >= 18 && a.App.Name[:18] == "Server-jit-backend" {
						jit = append(jit, a.Results[pd].Speedup(a.Results[base]))
					}
				}
				jitCell := "n/a"
				if len(jit) > 0 {
					jitCell = metrics.Pct(metrics.GeoMeanSpeedup(jit))
				}
				tb.AddRow(fmt.Sprint(n), fmt.Sprintf("%.1fKB", float64(n*75)/8/1024),
					metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(pd, base))),
					metrics.Pct0(metrics.Mean(suite.MPKIReductions(pd, base))), jitCell)
			}
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// expFig12c — iso-MPKI storage savings.
func expFig12c() Experiment {
	return Experiment{
		ID:    "fig12c",
		Title: "Figure 12c: smallest PDede matching the 4K baseline's MPKI (iso-MPKI storage saving)",
		Paper: "iso-MPKI PDede needs ≈19KB (49% below the 37.5KB baseline); 87KB vs 150KB at 16K entries",
		Run: func(r *Runner, w io.Writer) error {
			var designs []Design
			candidates := []int{1024, 1536, 2048, 3072, 4096}
			for _, n := range candidates {
				designs = append(designs, PDedeDesign(fmt.Sprintf("pdede-me-eq%d", n), pdede.ScaledFromBaseline(n, pdede.MultiEntry)))
			}
			designs = append(designs, BaselineDesign(NameBaseline, 4096))
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			meanMPKI := func(design string) float64 {
				var xs []float64
				for _, a := range suite.OK(design) {
					xs = append(xs, a.Results[design].BTBMPKI())
				}
				return metrics.Mean(xs)
			}
			baseMPKI := meanMPKI(NameBaseline)
			baseBits := uint64(4096 * 75)
			tb := metrics.NewTable("PDede config (baseline-equivalent)", "storage", "vs baseline storage", "mean MPKI", "iso-MPKI?")
			for _, n := range candidates {
				name := fmt.Sprintf("pdede-me-eq%d", n)
				p, err := pdede.New(pdede.ScaledFromBaseline(n, pdede.MultiEntry))
				if err != nil {
					return err
				}
				m := meanMPKI(name)
				tb.AddRow(fmt.Sprint(n),
					fmt.Sprintf("%.1fKB", float64(p.StorageBits())/8/1024),
					metrics.Pct0(float64(p.StorageBits())/float64(baseBits)),
					fmt.Sprintf("%.3f", m),
					fmt.Sprint(m <= baseMPKI))
			}
			fmt.Fprintf(w, "baseline (37.5KB) mean MPKI: %.3f\n", baseMPKI)
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// expTable2 — storage accounting.
func expTable2() Experiment {
	return Experiment{
		ID:    "table2",
		Title: "Table 2: storage requirements of PDede vs the baseline BTB",
		Paper: "iso-storage configurations around the 37.5KB baseline",
		Run: func(r *Runner, w io.Writer) error {
			base, err := btb.NewBaseline(btb.BaselineConfig{Entries: 4096})
			if err != nil {
				return err
			}
			tb := metrics.NewTable("design", "entries", "entry bits", "total", "vs baseline")
			tb.AddRow("baseline BTB", "4096", fmt.Sprint(base.EntryBits()),
				fmt.Sprintf("%.2fKB", float64(base.StorageBits())/8/1024), "100.0%")
			for _, cfg := range []pdede.Config{pdede.DefaultConfig(), pdede.MultiTargetConfig(), pdede.MultiEntryConfig()} {
				p, err := pdede.New(cfg)
				if err != nil {
					return err
				}
				entryDesc := fmt.Sprintf("%d", p.FullEntryBits())
				if cfg.Variant == pdede.MultiEntry {
					entryDesc = fmt.Sprintf("%d/%d", p.FullEntryBits(), p.NarrowEntryBits())
				}
				tb.AddRow(p.Name(), fmt.Sprint(p.Entries()), entryDesc,
					fmt.Sprintf("%.2fKB", float64(p.StorageBits())/8/1024),
					metrics.Pct0(float64(p.StorageBits())/float64(base.StorageBits())))
			}
			dd, err := btb.NewDedupBTB(btb.DedupBTBConfig{})
			if err != nil {
				return err
			}
			tb.AddRow("dedup-only", "4608", fmt.Sprint(dd.MonitorEntryBits()),
				fmt.Sprintf("%.2fKB", float64(dd.StorageBits())/8/1024),
				metrics.Pct0(float64(dd.StorageBits())/float64(base.StorageBits())))
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// expTable4 — access latency.
func expTable4() Experiment {
	return Experiment{
		ID:    "table4",
		Title: "Table 4: access latency at 22nm (calibrated analytic SRAM model)",
		Paper: "baseline 0.24/0.72ns; BTBM 0.21/0.55; PBTB 0.09/0.16; PDede 0.30/0.71 (1/6 RW ports)",
		Run: func(r *Runner, w io.Writer) error {
			tb := metrics.NewTable("structure", "1 RW port", "paper", "6 RW ports", "paper")
			for _, row := range cactilite.Table4() {
				tb.AddRow(row.Name,
					fmt.Sprintf("%.2fns", row.OnePortNs), fmt.Sprintf("%.2fns", row.PaperOnePort),
					fmt.Sprintf("%.2fns", row.SixPortNs), fmt.Sprintf("%.2fns", row.PaperSixPort))
			}
			_, err := fmt.Fprint(w, tb)
			return err
		},
	}
}

// expSec55 — perfect direction predictor.
func expSec55() Experiment {
	return Experiment{
		ID:    "sec55",
		Title: "§5.5: PDede with a perfect branch direction predictor",
		Paper: "gains rise from 14.4% to 15.2%",
		Run: func(r *Runner, w io.Writer) error {
			designs := []Design{
				BaselineDesign(NameBaseline, 4096),
				PDedeDesign(NameMultiEntry, pdede.MultiEntryConfig()),
				WithPerfectDirection(BaselineDesign(NameBaseline, 4096)),
				WithPerfectDirection(PDedeDesign(NameMultiEntry, pdede.MultiEntryConfig())),
			}
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			tb := metrics.NewTable("direction predictor", "PDede-ME IPC gain")
			tb.AddRow("TAGE (default)", metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(NameMultiEntry, NameBaseline))))
			tb.AddRow("perfect", metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(NameMultiEntry+"+perfdir", NameBaseline+"+perfdir"))))
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// expSec56 — ITTAGE.
func expSec56() Experiment {
	return Experiment{
		ID:    "sec56",
		Title: "§5.6: both designs augmented with a 64KB ITTAGE for indirect branches",
		Paper: "PDede still +13.9% (slightly below 14.4%: indirect MPKI no longer credits the BTB)",
		Run: func(r *Runner, w io.Writer) error {
			designs := []Design{
				BaselineDesign(NameBaseline, 4096),
				PDedeDesign(NameMultiEntry, pdede.MultiEntryConfig()),
				WithITTAGE(BaselineDesign(NameBaseline, 4096)),
				WithITTAGE(PDedeDesign(NameMultiEntry, pdede.MultiEntryConfig())),
			}
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			tb := metrics.NewTable("indirect predictor", "PDede-ME IPC gain")
			tb.AddRow("BTB (default)", metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(NameMultiEntry, NameBaseline))))
			tb.AddRow("64KB ITTAGE", metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(NameMultiEntry+"+ittage", NameBaseline+"+ittage"))))
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// expSec57 — returns stored in the BTB.
func expSec57() Experiment {
	return Experiment{
		ID:    "sec57",
		Title: "§5.7: no RAS — return targets stored in the BTB",
		Paper: "PDede still +13.7%",
		Run: func(r *Runner, w io.Writer) error {
			baseRets := btb.BaselineConfig{Entries: 4096, StoreReturns: true}
			meRets := pdede.MultiEntryConfig()
			meRets.StoreReturns = true
			designs := []Design{
				BaselineDesign(NameBaseline, 4096),
				PDedeDesign(NameMultiEntry, pdede.MultiEntryConfig()),
				WithReturnsInBTB(Design{Name: NameBaseline, New: func() (btb.TargetPredictor, error) {
					return btb.NewBaseline(baseRets)
				}}),
				WithReturnsInBTB(PDedeDesign(NameMultiEntry, meRets)),
			}
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			tb := metrics.NewTable("return handling", "PDede-ME IPC gain")
			tb.AddRow("RAS (default)", metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(NameMultiEntry, NameBaseline))))
			tb.AddRow("returns in BTB", metrics.Pct(metrics.GeoMeanSpeedup(suite.Gains(NameMultiEntry+"+rets", NameBaseline+"+rets"))))
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

// expSec511 — deeper future pipelines.
func expSec511() Experiment {
	return Experiment{
		ID:    "sec511",
		Title: "§5.11: deeper/wider future cores (pipeline ×1.5 and ×2)",
		Paper: "gains grow to 16.8% (1.5×) and 20.1% (2×)",
		Run: func(r *Runner, w io.Writer) error {
			var designs []Design
			scales := []float64{1, 1.5, 2}
			for _, sc := range scales {
				p := core.Icelake()
				if sc != 1 {
					p = p.Scale(sc)
				}
				bn := fmt.Sprintf("baseline-x%.1f", sc)
				pn := fmt.Sprintf("pdede-me-x%.1f", sc)
				designs = append(designs,
					WithParams(BaselineDesign(bn, 4096), bn, p),
					WithParams(PDedeDesign(pn, pdede.MultiEntryConfig()), pn, p),
				)
			}
			suite, err := r.Run(designs)
			if err != nil {
				return err
			}
			tb := metrics.NewTable("pipeline scale", "PDede-ME IPC gain")
			for _, sc := range scales {
				g := metrics.GeoMeanSpeedup(suite.Gains(
					fmt.Sprintf("pdede-me-x%.1f", sc), fmt.Sprintf("baseline-x%.1f", sc)))
				tb.AddRow(fmt.Sprintf("%.1fx", sc), metrics.Pct(g))
			}
			_, err = fmt.Fprint(w, tb)
			return err
		},
	}
}

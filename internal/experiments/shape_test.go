package experiments

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pdede"
)

// TestPaperShapeClaims asserts, on a moderate suite, every qualitative claim
// EXPERIMENTS.md documents: the orderings, signs and crossovers that define
// a successful reproduction. Failures here mean the reproduction story is
// broken even if every unit test passes.
func TestPaperShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a multi-design suite")
	}
	r := NewRunner(Options{Apps: 10, TotalInstrs: 1_500_000, WarmupInstrs: 600_000})

	deeper := core.Icelake().Scale(2)
	scaledDesigns := []Design{
		WithParams(BaselineDesign("baseline-x2", 4096), "baseline-x2", deeper),
		WithParams(PDedeDesign("pdede-me-x2", pdede.MultiEntryConfig()), "pdede-me-x2", deeper),
	}
	designs := append(AblationDesigns(), ShotgunDesigns()[1:]...) // skip duplicate baseline
	designs = append(designs,
		BaselineDesign(NameBaseline8K, 8192),
		PDedeDesign("pdede-me-16k", pdede.ScaledFromBaseline(16384, pdede.MultiEntry)),
	)
	designs = append(designs, scaledDesigns...)

	suite, err := r.Run(designs)
	if err != nil {
		t.Fatal(err)
	}
	gain := func(d string) float64 {
		return metrics.GeoMeanSpeedup(suite.Gains(d, NameBaseline))
	}
	red := func(d string) float64 {
		return metrics.Mean(suite.MPKIReductions(d, NameBaseline))
	}

	// Fig 10: variant ordering, positive gains, meaningful MPKI reductions.
	gDef, gMT, gME := gain(NamePDede), gain(NameMultiTarget), gain(NameMultiEntry)
	if !(gDef > 0 && gMT >= gDef-0.003 && gME >= gMT) {
		t.Errorf("fig10 ordering broken: default=%v mt=%v me=%v", gDef, gMT, gME)
	}
	if red(NameMultiEntry) < 0.30 {
		t.Errorf("fig10: ME MPKI reduction %v below 30%%", red(NameMultiEntry))
	}

	// Fig 11a: dedup-only is marginal; partitioning is the big step; delta
	// adds on top.
	if gain(NameDedup) > gDef {
		t.Errorf("fig11a: dedup-only (%v) outperformed full PDede (%v)", gain(NameDedup), gDef)
	}
	if gain(NamePartition) < gain(NameDedup) {
		t.Errorf("fig11a: partitioning (%v) did not improve on dedup-only (%v)",
			gain(NamePartition), gain(NameDedup))
	}
	if gDef < gain(NamePartition)-0.005 {
		t.Errorf("fig11a: delta encoding regressed partitioning: %v vs %v", gDef, gain(NamePartition))
	}

	// Fig 12a: Shotgun trails PDede decisively at iso-storage.
	if gain(NameShotgun) > gME-0.01 {
		t.Errorf("fig12a: shotgun (%v) too close to PDede-ME (%v)", gain(NameShotgun), gME)
	}

	// §5.8 shape: PDede-ME lands in the neighbourhood of a 2× baseline.
	if g8 := gain(NameBaseline8K); gME < g8-0.03 {
		t.Errorf("fig12b shape: ME (%v) far below the 8K baseline (%v)", gME, g8)
	}

	// §5.11: a deeper pipeline amplifies PDede's gain.
	gx2 := metrics.GeoMeanSpeedup(suite.Gains("pdede-me-x2", "baseline-x2"))
	if gx2 <= gME {
		t.Errorf("sec511: 2x pipeline gain %v not above 1x gain %v", gx2, gME)
	}

	// Iso-MPKI direction (fig12c): a PDede scaled for a 16K baseline must
	// crush the 4K baseline's MPKI (it has ~4x the entries).
	if r16 := red("pdede-me-16k"); r16 < red(NameMultiEntry) {
		t.Errorf("fig12c: bigger PDede (%v) reduced MPKI less than iso PDede (%v)",
			r16, red(NameMultiEntry))
	}

	t.Log(fmt.Sprintf("gains: dedup=%+.3f partition=%+.3f default=%+.3f mt=%+.3f me=%+.3f shotgun=%+.3f 8k=%+.3f x2=%+.3f",
		gain(NameDedup), gain(NamePartition), gDef, gMT, gME, gain(NameShotgun), gain(NameBaseline8K), gx2))
}

package experiments

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/atomicio"
	"repro/internal/core"
)

// checkpointVersion guards the on-disk schema. Version 2 added the seed
// and per-design configuration digests.
const checkpointVersion = 2

// checkpointFile is the JSON document persisted between runs. Results are
// keyed by (app, design); the window options, seed and design digests are
// stored so a checkpoint is never silently reused for a differently-scaled
// or differently-configured sweep.
type checkpointFile struct {
	Version      int               `json:"version"`
	TotalInstrs  uint64            `json:"total_instrs"`
	WarmupInstrs uint64            `json:"warmup_instrs"`
	Seed         uint64            `json:"seed"`
	Designs      map[string]string `json:"design_digests,omitempty"`
	Apps         []checkpointEntry `json:"apps"`
}

type checkpointEntry struct {
	App     string                  `json:"app"`
	Designs map[string]*core.Result `json:"designs"`
}

// CheckpointMeta identifies the sweep a checkpoint belongs to. A resume is
// only valid when every field recorded in the file is compatible: equal
// windows and seed, and — for each design name the file has seen before —
// an equal configuration digest. Designs the file has not seen are merged
// in, so experiments sharing a design set can share one checkpoint.
type CheckpointMeta struct {
	TotalInstrs  uint64
	WarmupInstrs uint64
	// Seed is Options.Seed. It only feeds retry jitter today, but it is
	// part of the run's identity, so mixing results across seeds is
	// conservatively refused.
	Seed uint64
	// Designs maps design name → configuration digest (see DesignDigests).
	Designs map[string]string
}

// DesignDigests fingerprints each design's observable configuration: the
// predictor it constructs (self-reported name and storage footprint) and
// the core-config modifications it applies. Checkpoints persist these so a
// resume after a design changed shape under an unchanged name is rejected
// instead of silently mixing stale results with fresh ones. A constructor
// that errors or panics digests as name-only (the run itself surfaces the
// failure).
func DesignDigests(designs []Design) map[string]string {
	out := make(map[string]string, len(designs))
	for i := range designs {
		out[designs[i].Name] = designDigest(&designs[i])
	}
	return out
}

func designDigest(d *Design) string {
	h := fnv.New64a()
	io.WriteString(h, d.Name)
	func() {
		defer func() { recover() }()
		tp, err := d.New()
		if err != nil || tp == nil {
			return
		}
		fmt.Fprintf(h, "|btb=%s/%d", tp.Name(), tp.StorageBits())
	}()
	if d.Mod != nil {
		func() {
			defer func() { recover() }()
			cfg := core.Config{Params: core.Icelake()}
			d.Mod(&cfg)
			fmt.Fprintf(h, "|params=%+v|cpi=%g|perfdir=%t|ittage=%t|dir=%t|rets=%t|pipe=%t|measure=%d",
				cfg.Params, cfg.BackendCPI, cfg.PerfectDirection, cfg.ITTAGE != nil,
				cfg.Direction != nil, cfg.StoreReturnsInBTB, cfg.UsePipeline, cfg.MeasureInstrs)
		}()
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Checkpoint stores completed (app, design) results between suite runs so
// an interrupted or partially-failed sweep resumes instead of restarting.
// Every Record rewrites the whole file via write-temp-then-rename, so the
// file on disk is always a complete, parseable document.
type Checkpoint struct {
	path string
	meta CheckpointMeta

	mu sync.Mutex
	// designs maps design name → config digest, across runs.
	//
	//pdede:guarded-by(mu)
	designs map[string]string
	// done maps app → design → result; Record and Done race from workers.
	//
	//pdede:guarded-by(mu)
	done map[string]map[string]*core.Result
}

// LoadCheckpoint opens (or initializes) the checkpoint at path for the
// sweep identified by meta. A missing file is an empty checkpoint; an
// existing file recorded under different windows, a different seed, or a
// different digest for a design name this sweep also uses is an error,
// since its results would not be comparable.
func LoadCheckpoint(path string, meta CheckpointMeta) (*Checkpoint, error) {
	c := &Checkpoint{
		path:    path,
		meta:    meta,
		designs: make(map[string]string, len(meta.Designs)),
		done:    make(map[string]map[string]*core.Result),
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		for name, dig := range meta.Designs {
			c.designs[name] = dig
		}
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("checkpoint %s: corrupt file: %w", path, err)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d (delete it to start over)", path, f.Version, checkpointVersion)
	}
	if f.TotalInstrs != meta.TotalInstrs || f.WarmupInstrs != meta.WarmupInstrs {
		return nil, fmt.Errorf("checkpoint %s: recorded for %d/%d instr windows, this run uses %d/%d (delete it or match the options)",
			path, f.TotalInstrs, f.WarmupInstrs, meta.TotalInstrs, meta.WarmupInstrs)
	}
	if f.Seed != meta.Seed {
		return nil, fmt.Errorf("checkpoint %s: recorded with seed %d, this run uses %d (delete it or match the options)",
			path, f.Seed, meta.Seed)
	}
	for name, dig := range f.Designs {
		c.designs[name] = dig
	}
	names := make([]string, 0, len(meta.Designs))
	for name := range meta.Designs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dig := meta.Designs[name]
		if old, ok := c.designs[name]; ok && old != dig {
			return nil, fmt.Errorf("checkpoint %s: design %s changed configuration since the checkpoint was written (delete it to re-run)",
				path, name)
		}
		c.designs[name] = dig
	}
	for _, e := range f.Apps {
		if len(e.Designs) > 0 {
			c.done[e.App] = e.Designs
		}
	}
	return c, nil
}

// Done returns the persisted result for an (app, design) pair.
func (c *Checkpoint) Done(app, design string) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.done[app][design]
	return res, ok
}

// Apps returns the number of apps with at least one persisted result.
func (c *Checkpoint) Apps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Record merges an app's completed design results (possibly partial, if
// the app failed midway) and flushes the checkpoint atomically.
func (c *Checkpoint) Record(app string, results map[string]*core.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.done[app]
	if m == nil {
		m = make(map[string]*core.Result, len(results))
		c.done[app] = m
	}
	for d, res := range results {
		m[d] = res
	}
	return c.flushLocked()
}

// flushLocked writes the full document through atomicio, so readers and
// crashed runs never observe a half-written checkpoint.
//
//pdede:guarded-by(mu)
func (c *Checkpoint) flushLocked() error {
	f := checkpointFile{
		Version:      checkpointVersion,
		TotalInstrs:  c.meta.TotalInstrs,
		WarmupInstrs: c.meta.WarmupInstrs,
		Seed:         c.meta.Seed,
		Designs:      c.designs,
	}
	apps := make([]string, 0, len(c.done))
	for app := range c.done {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		f.Apps = append(f.Apps, checkpointEntry{App: app, Designs: c.done[app]})
	}
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := atomicio.WriteFile(c.path, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

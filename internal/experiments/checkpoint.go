package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
)

// checkpointVersion guards the on-disk schema.
const checkpointVersion = 1

// checkpointFile is the JSON document persisted between runs. Results are
// keyed by (app, design); the window options are stored so a checkpoint is
// never silently reused for a differently-scaled sweep.
type checkpointFile struct {
	Version      int               `json:"version"`
	TotalInstrs  uint64            `json:"total_instrs"`
	WarmupInstrs uint64            `json:"warmup_instrs"`
	Apps         []checkpointEntry `json:"apps"`
}

type checkpointEntry struct {
	App     string                  `json:"app"`
	Designs map[string]*core.Result `json:"designs"`
}

// Checkpoint stores completed (app, design) results between suite runs so
// an interrupted or partially-failed sweep resumes instead of restarting.
// Every Record rewrites the whole file via write-temp-then-rename, so the
// file on disk is always a complete, parseable document.
type Checkpoint struct {
	path         string
	totalInstrs  uint64
	warmupInstrs uint64

	mu   sync.Mutex
	done map[string]map[string]*core.Result // app → design → result
}

// LoadCheckpoint opens (or initializes) the checkpoint at path for a sweep
// with the given windows. A missing file is an empty checkpoint; an
// existing file recorded under different windows is an error, since its
// results would not be comparable.
func LoadCheckpoint(path string, totalInstrs, warmupInstrs uint64) (*Checkpoint, error) {
	c := &Checkpoint{
		path:         path,
		totalInstrs:  totalInstrs,
		warmupInstrs: warmupInstrs,
		done:         make(map[string]map[string]*core.Result),
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("checkpoint %s: corrupt file: %w", path, err)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d", path, f.Version, checkpointVersion)
	}
	if f.TotalInstrs != totalInstrs || f.WarmupInstrs != warmupInstrs {
		return nil, fmt.Errorf("checkpoint %s: recorded for %d/%d instr windows, this run uses %d/%d (delete it or match the options)",
			path, f.TotalInstrs, f.WarmupInstrs, totalInstrs, warmupInstrs)
	}
	for _, e := range f.Apps {
		if len(e.Designs) > 0 {
			c.done[e.App] = e.Designs
		}
	}
	return c, nil
}

// Done returns the persisted result for an (app, design) pair.
func (c *Checkpoint) Done(app, design string) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.done[app][design]
	return res, ok
}

// Apps returns the number of apps with at least one persisted result.
func (c *Checkpoint) Apps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Record merges an app's completed design results (possibly partial, if
// the app failed midway) and flushes the checkpoint atomically.
func (c *Checkpoint) Record(app string, results map[string]*core.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.done[app]
	if m == nil {
		m = make(map[string]*core.Result, len(results))
		c.done[app] = m
	}
	for d, res := range results {
		m[d] = res
	}
	return c.flushLocked()
}

// flushLocked writes the full document to a temp file in the same
// directory and renames it over path, so readers and crashed runs never
// observe a half-written checkpoint. Callers hold c.mu.
func (c *Checkpoint) flushLocked() error {
	f := checkpointFile{
		Version:      checkpointVersion,
		TotalInstrs:  c.totalInstrs,
		WarmupInstrs: c.warmupInstrs,
	}
	apps := make([]string, 0, len(c.done))
	for app := range c.done {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		f.Apps = append(f.Apps, checkpointEntry{App: app, Designs: c.done[app]})
	}
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}

	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

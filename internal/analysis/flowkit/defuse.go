package flowkit

import (
	"go/ast"
	"go/types"
)

// Path names a storage location as a base variable plus the chain of struct
// fields selected from it: `p.entries[set][way].tag` has base p and fields
// [entries, tag] (indexing steps do not change which field's storage is
// reached). A write through any Path whose base is a receiver or parameter
// escapes the function — that is what statepurity polices.
type Path struct {
	// Base is the root variable the chain starts from.
	Base *types.Var
	// Fields are the struct fields selected along the chain, outermost
	// first. Empty means the base itself.
	Fields []*types.Var
}

// ResolvePath reduces an lvalue (or pointer-to-lvalue) expression to the
// Path it designates, looking through parens, derefs, index expressions and
// unary &. aliases maps locals to the Paths they are known to alias (from
// CollectAliases); it may be nil. The second result is false when the
// expression does not resolve to a variable-rooted chain (e.g. a call
// result, a composite literal, a global of another package).
func ResolvePath(info *types.Info, e ast.Expr, aliases map[*types.Var]*Path) (*Path, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ResolvePath(info, e.X, aliases)
	case *ast.StarExpr:
		return ResolvePath(info, e.X, aliases)
	case *ast.UnaryExpr:
		// &expr designates the same storage as expr.
		return ResolvePath(info, e.X, aliases)
	case *ast.IndexExpr:
		// Indexing a slice/array/map reaches storage owned by the same
		// field chain.
		return ResolvePath(info, e.X, aliases)
	case *ast.Ident:
		v, ok := objVar(info, e)
		if !ok {
			return nil, false
		}
		if p, ok := aliases[v]; ok {
			return &Path{Base: p.Base, Fields: append([]*types.Var(nil), p.Fields...)}, true
		}
		return &Path{Base: v}, true
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok {
			// Qualified identifier (pkg.Var) or method expression.
			if v, ok := info.Uses[e.Sel].(*types.Var); ok {
				return &Path{Base: v}, true
			}
			return nil, false
		}
		f, ok := sel.Obj().(*types.Var)
		if !ok {
			return nil, false
		}
		base, ok := ResolvePath(info, e.X, aliases)
		if !ok {
			return nil, false
		}
		base.Fields = append(base.Fields, f)
		return base, true
	}
	return nil, false
}

func objVar(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if obj := info.Uses[id]; obj != nil {
		v, ok := obj.(*types.Var)
		return v, ok
	}
	if obj := info.Defs[id]; obj != nil {
		v, ok := obj.(*types.Var)
		return v, ok
	}
	return nil, false
}

// CollectAliases scans fn flow-insensitively for locals initialised from a
// field chain by reference — `e := &p.entries[i]`, or a plain assignment of
// a slice/map/pointer-typed field — and maps each such local to the Path it
// aliases. Writes through the local are then writes to the underlying
// field, which is how `e.target = t` in a probe loop is traced back to
// p.entries. Chained aliases (`q := e`) resolve because the pass iterates
// to a (tiny) fixpoint.
func CollectAliases(fn *ast.FuncDecl, info *types.Info) map[*types.Var]*Path {
	aliases := make(map[*types.Var]*Path)
	if fn.Body == nil {
		return aliases
	}
	record := func(lhs ast.Expr, rhs ast.Expr) bool {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		v, ok := objVar(info, id)
		if !ok {
			return false
		}
		if !aliasesStorage(v.Type()) {
			return false
		}
		p, ok := ResolvePath(info, rhs, aliases)
		if !ok || p.Base == v {
			return false
		}
		if old, exists := aliases[v]; exists && old.Base == p.Base && len(old.Fields) == len(p.Fields) {
			return false
		}
		aliases[v] = p
		return true
	}
	for changed, rounds := true, 0; changed && rounds < 4; rounds++ {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Lhs {
					if record(n.Lhs[i], n.Rhs[i]) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				// `for _, e := range p.entries` with pointer element type
				// aliases the field's storage.
				if n.Value != nil {
					if record(n.Value, n.X) {
						changed = true
					}
				}
			}
			return true
		})
	}
	return aliases
}

// aliasesStorage reports whether a value of type t shares storage with its
// source: pointers, slices and maps do; scalar copies do not.
func aliasesStorage(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

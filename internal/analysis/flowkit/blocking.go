package flowkit

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BlockingOps collects the potentially-blocking operations in a body:
// channel sends, channel receives, and sync waits (WaitGroup.Wait,
// Cond.Wait). Each op is classified as guarded or not:
//
//   - A send/receive inside a `select` is guarded when the select has a
//     `default` clause or any sibling case is a cancellation receive
//     (`<-ctx.Done()` or a done/stop/quit/close/cancel-named channel) —
//     either way the select cannot hang on a dead peer.
//   - A bare cancellation receive is guarded: blocking until shutdown *is*
//     the idiom being demanded.
//   - `for range ch` is exempt entirely: a close-terminated drain loop is
//     the worker-pool idiom, and termination is the closer's obligation,
//     enforced where the channel is closed, not at the range.
//   - Everything else — bare sends, bare receives, sync waits — is
//     unguarded.
//
// Bodies of nested function literals are included: a goroutine body is
// almost always a literal.
func BlockingOps(body ast.Node, info *types.Info) []BlockOp {
	var ops []BlockOp
	if body == nil {
		return ops
	}
	// Comm statements that belong to a select clause are classified with
	// the select's guardedness, not as bare ops.
	inSelect := make(map[ast.Node]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			guarded := selectGuarded(n, info)
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				inSelect[cc.Comm] = true
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					ops = append(ops, BlockOp{
						Kind: BlockSend, Node: comm, Pos: comm.Arrow,
						Guarded: guarded, Expr: types.ExprString(comm.Chan),
					})
				default:
					if recv, ok := commRecv(cc.Comm); ok {
						inSelect[recv] = true
						ops = append(ops, BlockOp{
							Kind: BlockRecv, Node: recv, Pos: recv.OpPos,
							Guarded: guarded || cancellationRecv(recv, info),
							Expr:    types.ExprString(recv.X),
						})
					}
				}
			}
		case *ast.SendStmt:
			if inSelect[n] {
				return true
			}
			ops = append(ops, BlockOp{
				Kind: BlockSend, Node: n, Pos: n.Arrow,
				Expr: types.ExprString(n.Chan),
			})
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || inSelect[n] {
				return true
			}
			ops = append(ops, BlockOp{
				Kind: BlockRecv, Node: n, Pos: n.OpPos,
				Guarded: cancellationRecv(n, info),
				Expr:    types.ExprString(n.X),
			})
		case *ast.RangeStmt:
			// Exempt the ranged channel expression itself, keep walking the
			// loop body.
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					ast.Inspect(n.X, func(m ast.Node) bool {
						if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
							inSelect[u] = true
						}
						return true
					})
				}
			}
		case *ast.CallExpr:
			if isSyncWait(n, info) {
				sel := n.Fun.(*ast.SelectorExpr)
				ops = append(ops, BlockOp{
					Kind: BlockWait, Node: n, Pos: n.Pos(),
					Expr: types.ExprString(sel.X) + "." + sel.Sel.Name,
				})
			}
		}
		return true
	})
	return ops
}

// commRecv extracts the receive expression of a select comm statement
// (`case <-ch:`, `case v := <-ch:`, `case v, ok := <-ch:`).
func commRecv(comm ast.Stmt) (*ast.UnaryExpr, bool) {
	var e ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return nil, false
	}
	return u, true
}

// selectGuarded reports whether a select cannot hang on a dead peer: it has
// a default clause, or one of its cases is a cancellation receive.
func selectGuarded(sel *ast.SelectStmt, info *types.Info) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default clause
		}
		if recv, ok := commRecv(cc.Comm); ok && cancellationRecv(recv, info) {
			return true
		}
	}
	return false
}

// cancellationRecv reports whether a receive waits on a cancellation
// signal: `<-ctx.Done()` (any Done() call), or a channel whose rendered
// name suggests shutdown (done, stop, quit, close, cancel).
func cancellationRecv(recv *ast.UnaryExpr, info *types.Info) bool {
	op := ast.Unparen(recv.X)
	if call, ok := op.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
		return false
	}
	name := strings.ToLower(types.ExprString(op))
	for _, hint := range []string{"done", "stop", "quit", "close", "cancel"} {
		if strings.Contains(name, hint) {
			return true
		}
	}
	return false
}

// isSyncWait reports whether a call is sync.WaitGroup.Wait or
// sync.Cond.Wait — matched by the receiver's named type (package sync, or
// a fixture type named like one).
func isSyncWait(call *ast.CallExpr, info *types.Info) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
		return name == "WaitGroup" || name == "Cond"
	}
	return strings.HasSuffix(name, "WaitGroup") || strings.HasSuffix(name, "Cond")
}

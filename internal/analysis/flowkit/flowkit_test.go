package flowkit

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// check parses and type-checks src (one file, package p) and returns the
// pieces the toolkit consumes.
func check(t *testing.T, src string) (*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return f, pkg, info
}

func fnDecl(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

const lockSrc = `package p

type mutex struct{ held bool }

func (m *mutex) Lock()   {}
func (m *mutex) Unlock() {}

type box struct {
	mu mutex
	n  int
}

func ok(b *box) int {
	b.mu.Lock()
	v := b.n
	b.mu.Unlock()
	return v
}

func branchy(b *box, c bool) int {
	if c {
		b.mu.Lock()
	}
	v := b.n
	if c {
		b.mu.Unlock()
	}
	return v
}

func looped(b *box) int {
	t := 0
	for i := 0; i < 3; i++ {
		b.mu.Lock()
		t += b.n
		b.mu.Unlock()
	}
	return t
}

func deferred(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}
`

// lockGenKill recognises b.mu.Lock()/Unlock() calls, keyed by the rendered
// receiver chain.
func lockGenKill(info *types.Info) GenKill {
	return func(s ast.Stmt) (gen, kill []string) {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return nil, nil
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return nil, nil
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil, nil
		}
		key := types.ExprString(sel.X)
		switch sel.Sel.Name {
		case "Lock":
			return []string{key}, nil
		case "Unlock":
			return nil, []string{key}
		}
		return nil, nil
	}
}

// heldBefore finds the statement containing pos's reads and returns its
// in-facts.
func stmtFacts(t *testing.T, res map[ast.Stmt]Facts, g *Graph, match func(ast.Stmt) bool) Facts {
	t.Helper()
	for _, blk := range g.Blocks {
		for _, s := range blk.Stmts {
			if match(s) {
				return res[s]
			}
		}
	}
	t.Fatal("statement not found in CFG")
	return nil
}

func isAssignTo(name string) func(ast.Stmt) bool {
	return func(s ast.Stmt) bool {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == name
	}
}

func TestMustHoldStraightLine(t *testing.T) {
	f, _, info := check(t, lockSrc)
	fd := fnDecl(t, f, "ok")
	g := New(fd.Body)
	res := MustHold(g, nil, lockGenKill(info))
	facts := stmtFacts(t, res, g, isAssignTo("v"))
	if !facts.Has("b.mu") {
		t.Errorf("lock not held at read in ok: %v", facts)
	}
}

func TestMustHoldBranchIntersection(t *testing.T) {
	f, _, info := check(t, lockSrc)
	fd := fnDecl(t, f, "branchy")
	g := New(fd.Body)
	res := MustHold(g, nil, lockGenKill(info))
	facts := stmtFacts(t, res, g, isAssignTo("v"))
	if facts == nil || facts.Has("b.mu") {
		t.Errorf("conditional lock must not count as held: %v", facts)
	}
}

func TestMustHoldLoopBody(t *testing.T) {
	f, _, info := check(t, lockSrc)
	fd := fnDecl(t, f, "looped")
	g := New(fd.Body)
	res := MustHold(g, nil, lockGenKill(info))
	facts := stmtFacts(t, res, g, func(s ast.Stmt) bool {
		as, ok := s.(*ast.AssignStmt)
		return ok && as.Tok == token.ADD_ASSIGN
	})
	if !facts.Has("b.mu") {
		t.Errorf("lock not held inside loop body: %v", facts)
	}
	// The lock must NOT be considered held at the loop's exit statement.
	ret := stmtFacts(t, res, g, func(s ast.Stmt) bool {
		_, ok := s.(*ast.ReturnStmt)
		return ok
	})
	if ret == nil || ret.Has("b.mu") {
		t.Errorf("lock leaked out of loop: %v", ret)
	}
}

func TestMustHoldDeferIgnored(t *testing.T) {
	f, _, info := check(t, lockSrc)
	fd := fnDecl(t, f, "deferred")
	g := New(fd.Body)
	res := MustHold(g, nil, lockGenKill(info))
	// defer b.mu.Unlock() is a DeferStmt, not an ExprStmt, so the kill does
	// not apply: the lock stays held through the return.
	ret := stmtFacts(t, res, g, func(s ast.Stmt) bool {
		_, ok := s.(*ast.ReturnStmt)
		return ok
	})
	if !ret.Has("b.mu") {
		t.Errorf("defer Unlock must not kill the lock before return: %v", ret)
	}
}

func TestMustHoldEntryPrecondition(t *testing.T) {
	f, _, info := check(t, lockSrc)
	fd := fnDecl(t, f, "branchy")
	g := New(fd.Body)
	res := MustHold(g, []string{"b.mu"}, lockGenKill(info))
	facts := stmtFacts(t, res, g, isAssignTo("v"))
	if !facts.Has("b.mu") {
		t.Errorf("entry precondition lost: %v", facts)
	}
}

const aliasSrc = `package p

type entry struct {
	tag    uint64
	target uint64
}

type table struct {
	entries []entry
	memo    uint64
}

func (t *table) touch(i int, v uint64) {
	e := &t.entries[i]
	e.target = v
	t.memo = v
	var local uint64
	local = v
	_ = local
}
`

func TestCollectAliasesAndResolve(t *testing.T) {
	f, _, info := check(t, aliasSrc)
	fd := fnDecl(t, f, "touch")
	aliases := CollectAliases(fd, info)
	if len(aliases) != 1 {
		t.Fatalf("want 1 alias, got %d", len(aliases))
	}
	var writes []*Path
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		if p, ok := ResolvePath(info, as.Lhs[0], aliases); ok {
			writes = append(writes, p)
		}
		return true
	})
	if len(writes) != 3 {
		t.Fatalf("want 3 resolved writes, got %d", len(writes))
	}
	// e.target = v must resolve through the alias to t.entries.target.
	if got := writes[0]; got.Base.Name() != "t" || len(got.Fields) != 2 ||
		got.Fields[0].Name() != "entries" || got.Fields[1].Name() != "target" {
		t.Errorf("aliased write resolved to base %v fields %v", got.Base, got.Fields)
	}
	if got := writes[1]; got.Base.Name() != "t" || len(got.Fields) != 1 || got.Fields[0].Name() != "memo" {
		t.Errorf("direct field write resolved to base %v fields %v", got.Base, got.Fields)
	}
	if got := writes[2]; got.Base.Name() != "local" || len(got.Fields) != 0 {
		t.Errorf("local write resolved to base %v fields %v", got.Base, got.Fields)
	}
}

const cgSrc = `package p

type design interface {
	Update(uint64)
}

type impl struct{ n uint64 }

func (i *impl) Update(v uint64) { i.n = v }

type other struct{}

func (o other) Render() string { return "" }

func helper(d design, v uint64) { d.Update(v) }

func root(i *impl, v uint64) {
	helper(i, v)
	i.Update(v)
}
`

func TestCallGraph(t *testing.T) {
	f, pkg, info := check(t, cgSrc)
	cg := BuildCallGraph([]*ast.File{f}, pkg, info)
	if len(cg.Decls) != 4 {
		t.Fatalf("want 4 decls, got %d", len(cg.Decls))
	}
	var rootFn, helperFn, updateFn *types.Func
	for fn := range cg.Decls {
		switch fn.Name() {
		case "root":
			rootFn = fn
		case "helper":
			helperFn = fn
		case "Update":
			updateFn = fn
		}
	}
	reach := cg.Reachable([]*types.Func{rootFn})
	if !reach[helperFn] {
		t.Error("helper not reachable from root")
	}
	if !reach[updateFn] {
		t.Error("Update not reachable from root (via CHA through design)")
	}
	// The dynamic call inside helper must resolve to impl.Update and be
	// marked dynamic.
	var dyn *Call
	for i, c := range cg.Calls[helperFn] {
		if c.Dynamic {
			dyn = &cg.Calls[helperFn][i]
		}
	}
	if dyn == nil {
		t.Fatal("no dynamic call recorded in helper")
	}
	if len(dyn.Targets) != 1 || dyn.Targets[0] != updateFn {
		t.Errorf("CHA targets = %v, want [impl.Update]", dyn.Targets)
	}
}

func TestCFGCoversConstructs(t *testing.T) {
	src := `package p

func weird(xs []int, m map[string]int, ch chan int) int {
	total := 0
outer:
	for i, x := range xs {
		switch {
		case x == 0:
			continue outer
		case x < 0:
			break outer
		default:
			total += x
		}
		if i > 10 {
			goto done
		}
		select {
		case v := <-ch:
			total += v
		default:
		}
	}
	for k := range m {
		total += m[k]
	}
done:
	return total
}
`
	f, _, _ := check(t, src)
	fd := fnDecl(t, f, "weird")
	g := New(fd.Body)
	if g.Entry == nil || g.Exit == nil || len(g.Blocks) < 8 {
		t.Fatalf("suspicious graph: %d blocks", len(g.Blocks))
	}
	// Every return statement's block must reach the exit.
	foundReturn := false
	for _, blk := range g.Blocks {
		for _, s := range blk.Stmts {
			if _, ok := s.(*ast.ReturnStmt); ok {
				foundReturn = true
				if len(blk.Succs) == 0 || blk.Succs[len(blk.Succs)-1] != g.Exit {
					t.Error("return block does not lead to exit")
				}
			}
		}
	}
	if !foundReturn {
		t.Error("return statement lost from CFG")
	}
}

package flowkit

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Call is one call site inside a function with a body in the analyzed
// package.
type Call struct {
	// Expr is the call expression.
	Expr *ast.CallExpr
	// Pos anchors diagnostics about the call.
	Pos token.Pos
	// Callee is the static target: the called function or the interface
	// method for dynamic calls. Nil for calls through function values and
	// builtins.
	Callee *types.Func
	// Targets are the resolved in-package bodies this call may reach. For a
	// static call that is the single callee body (if it lives in this
	// package); for an interface call, every in-package concrete method
	// implementing it (class-hierarchy analysis over the package scope).
	// Empty when every possible target lives outside the package.
	Targets []*types.Func
	// Dynamic marks interface-dispatched calls.
	Dynamic bool
}

// CallGraph is the per-package call graph: one node per function or method
// with a body in the package, edges for every call site within those
// bodies. Cross-package callees appear as Call.Callee without Targets —
// per-package analysis (the vet unit model) never has their bodies.
type CallGraph struct {
	// Decls maps each in-package function object to its declaration.
	Decls map[*types.Func]*ast.FuncDecl
	// Calls maps each in-package function object to its call sites.
	Calls map[*types.Func][]Call
	// files maps each declaration to its enclosing file (for directives).
	files map[*types.Func]*ast.File
	// byExpr indexes every recorded call site by its expression, so
	// analyzers walking an AST can recover the resolved targets of the call
	// they are looking at.
	byExpr map[*ast.CallExpr]Call
}

// BuildCallGraph constructs the package's call graph from its syntax and
// type information.
func BuildCallGraph(files []*ast.File, pkg *types.Package, info *types.Info) *CallGraph {
	cg := &CallGraph{
		Decls:  make(map[*types.Func]*ast.FuncDecl),
		Calls:  make(map[*types.Func][]Call),
		files:  make(map[*types.Func]*ast.File),
		byExpr: make(map[*ast.CallExpr]Call),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.Decls[fn] = fd
			cg.files[fn] = f
		}
	}
	// Class-hierarchy index: method name → in-package concrete methods.
	methodsByName := make(map[string][]*types.Func)
	for fn := range cg.Decls {
		if fn.Type().(*types.Signature).Recv() != nil {
			methodsByName[fn.Name()] = append(methodsByName[fn.Name()], fn)
		}
	}
	for fn, fd := range cg.Decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			c := Call{Expr: call, Pos: call.Pos()}
			callee, dynamic := calleeOf(info, call)
			c.Callee = callee
			c.Dynamic = dynamic
			if callee != nil {
				if !dynamic {
					if _, inPkg := cg.Decls[callee]; inPkg {
						c.Targets = []*types.Func{callee}
					}
				} else {
					// CHA: any in-package concrete type whose method set
					// satisfies the interface may be the receiver.
					iface := interfaceOf(callee)
					for _, m := range methodsByName[callee.Name()] {
						if iface == nil || implementsIface(m, iface) {
							c.Targets = append(c.Targets, m)
						}
					}
				}
			}
			cg.Calls[fn] = append(cg.Calls[fn], c)
			cg.byExpr[call] = c
			return true
		})
	}
	return cg
}

// File returns the file containing fn's declaration.
func (cg *CallGraph) File(fn *types.Func) *ast.File { return cg.files[fn] }

// CallAt returns the recorded call site for a call expression. Calls inside
// function literals are recorded too (attributed to the enclosing
// declaration), so this works for any call expression in a declared body.
func (cg *CallGraph) CallAt(call *ast.CallExpr) (Call, bool) {
	c, ok := cg.byExpr[call]
	return c, ok
}

// ReachOpts filter a reachability walk: SkipFunc prunes a function (its
// body is never entered), SkipCall prunes a single call edge.
type ReachOpts struct {
	// SkipFunc, when non-nil, excludes fn entirely (it is neither visited
	// nor traversed).
	SkipFunc func(fn *types.Func) bool
	// SkipCall, when non-nil, excludes one call edge out of from.
	SkipCall func(from *types.Func, c Call) bool
}

// ReachableWith is Reachable with per-function and per-edge pruning —
// analyzers use it to respect escape directives on functions or call sites
// during their closure walks.
func (cg *CallGraph) ReachableWith(roots []*types.Func, opt ReachOpts) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		if _, ok := cg.Decls[fn]; !ok {
			return
		}
		if opt.SkipFunc != nil && opt.SkipFunc(fn) {
			return
		}
		seen[fn] = true
		for _, c := range cg.Calls[fn] {
			if opt.SkipCall != nil && opt.SkipCall(fn, c) {
				continue
			}
			for _, t := range c.Targets {
				visit(t)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// Reachable returns the set of in-package functions reachable from roots
// through the graph's resolved targets (roots included).
func (cg *CallGraph) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		if _, ok := cg.Decls[fn]; !ok {
			return
		}
		seen[fn] = true
		for _, c := range cg.Calls[fn] {
			for _, t := range c.Targets {
				visit(t)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// calleeOf resolves the static callee of a call, reporting whether dispatch
// is dynamic (through an interface). Function-value calls and builtins
// yield (nil, false).
func calleeOf(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn, false
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[fun]
		if ok && sel.Kind() == types.MethodVal {
			fn := sel.Obj().(*types.Func)
			_, isIface := sel.Recv().Underlying().(*types.Interface)
			return fn, isIface
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn, false // qualified pkg.Func
		}
	}
	return nil, false
}

// interfaceOf returns the interface type declaring the method, if any.
func interfaceOf(m *types.Func) *types.Interface {
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	iface, _ := recv.Type().Underlying().(*types.Interface)
	return iface
}

// implementsIface reports whether m's receiver type satisfies iface.
func implementsIface(m *types.Func, iface *types.Interface) bool {
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return types.Implements(recv.Type(), iface) ||
		types.Implements(types.NewPointer(recv.Type()), iface)
}

package flowkit

import (
	"go/ast"
	"go/types"
	"testing"
)

const sumSrc = `package p

type inner struct{ n int }

type outer struct {
	in   inner
	vals []int
}

func (o *outer) setN(v int) { o.in.n = v }

func (o *outer) bump() { o.setN(o.in.n + 1) }

var counter int

func incr() { counter++ }

func chainIncr() { incr() }

func retain(o *outer) []int { return o.vals }

func retainChain(o *outer) []int { return retain(o) }

func freshVals(o *outer) []int { return append([]int(nil), o.vals...) }

func valRecv(o outer) { o.in.n = 5 }

func callsValRecv(o *outer) { valRecv(*o) }

func even(n int, o *outer) bool {
	if n == 0 {
		o.in.n = 0
		return true
	}
	return odd(n-1, o)
}

func odd(n int, o *outer) bool {
	if n == 0 {
		return false
	}
	return even(n-1, o)
}
`

func buildSums(t *testing.T, src string) (*CallGraph, *Summaries, map[string]*types.Func) {
	t.Helper()
	f, pkg, info := check(t, src)
	cg := BuildCallGraph([]*ast.File{f}, pkg, info)
	sums := BuildSummaries(cg, pkg, info)
	byName := make(map[string]*types.Func)
	for fn := range cg.Decls {
		byName[fn.Name()] = fn
	}
	return cg, sums, byName
}

func hasWrite(sum *Summary, kind RootKind, fields ...string) bool {
	for _, e := range sum.Writes {
		if e.Kind != kind || len(e.Fields) != len(fields) {
			continue
		}
		ok := true
		for i, f := range e.Fields {
			if f.Name() != fields[i] {
				ok = false
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestSummaryPropagatesReceiverWrites(t *testing.T) {
	_, sums, fns := buildSums(t, sumSrc)
	bump := sums.ByFunc[fns["bump"]]
	if len(bump.Direct) != 0 {
		t.Errorf("bump has no own writes, got %d", len(bump.Direct))
	}
	if !hasWrite(bump, RootRecv, "in", "n") {
		t.Errorf("bump must inherit setN's receiver write o.in.n; writes: %v", bump.Writes)
	}
	// The propagated effect must name its origin.
	for _, e := range bump.Writes {
		if e.Kind == RootRecv && e.FromCall == nil {
			t.Errorf("propagated write lost FromCall: %+v", e)
		}
	}
}

func TestSummaryPropagatesGlobalWrites(t *testing.T) {
	_, sums, fns := buildSums(t, sumSrc)
	if !hasWrite(sums.ByFunc[fns["chainIncr"]], RootGlobal) {
		t.Error("chainIncr must inherit incr's write to the package-level counter")
	}
}

func TestSummaryRetention(t *testing.T) {
	_, sums, fns := buildSums(t, sumSrc)
	if got := sums.ByFunc[fns["retain"]]; !got.RetainsParam(0) {
		t.Errorf("retain returns its parameter's slice, Retains = %v", got.Retains)
	}
	if got := sums.ByFunc[fns["retainChain"]]; !got.RetainsParam(0) {
		t.Errorf("retainChain launders retention through a call, Retains = %v", got.Retains)
	}
	if got := sums.ByFunc[fns["freshVals"]]; len(got.Retains) != 0 {
		t.Errorf("freshVals reallocates, Retains = %v", got.Retains)
	}
}

func TestSummaryValueCopyDoesNotPropagate(t *testing.T) {
	_, sums, fns := buildSums(t, sumSrc)
	// valRecv writes a by-value receiver copy; the caller's storage is
	// untouched, so nothing may propagate.
	caller := sums.ByFunc[fns["callsValRecv"]]
	if len(caller.Writes) != 0 {
		t.Errorf("value-receiver write leaked into caller: %v", caller.Writes)
	}
}

func TestSummarySCCFixpoint(t *testing.T) {
	_, sums, fns := buildSums(t, sumSrc)
	var found bool
	for _, scc := range sums.SCCs {
		if len(scc) == 2 {
			names := map[string]bool{scc[0].Name(): true, scc[1].Name(): true}
			if names["even"] && names["odd"] {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("even/odd must form one SCC: %v", sums.SCCs)
	}
	// odd writes nothing itself but reaches even's o.in.n through the
	// cycle; the fixpoint must deliver it.
	odd := sums.ByFunc[fns["odd"]]
	if !hasWrite(odd, RootParam, "in", "n") {
		t.Errorf("odd must inherit even's write through the SCC: %v", odd.Writes)
	}
}

const blockSrc = `package p

func blockOps(ch chan int, done chan struct{}) {
	ch <- 1
	<-ch
	<-done
	select {
	case ch <- 2:
	default:
	}
	select {
	case v := <-ch:
		_ = v
	case <-done:
	}
	for range ch {
	}
}

type myWaitGroup struct{}

func (w *myWaitGroup) Wait() {}

func waitOp(w *myWaitGroup) { w.Wait() }
`

func TestBlockingOpsClassification(t *testing.T) {
	f, _, info := check(t, blockSrc)
	fd := fnDecl(t, f, "blockOps")
	ops := BlockingOps(fd.Body, info)
	if len(ops) != 6 {
		t.Fatalf("want 6 blocking ops (range-over-channel exempt), got %d: %+v", len(ops), ops)
	}
	var unguarded []BlockOp
	for _, op := range ops {
		if !op.Guarded {
			unguarded = append(unguarded, op)
		}
	}
	if len(unguarded) != 2 {
		t.Fatalf("want 2 unguarded ops (bare send, bare recv), got %d: %+v", len(unguarded), unguarded)
	}
	if unguarded[0].Kind != BlockSend || unguarded[0].Expr != "ch" {
		t.Errorf("first unguarded op = %+v, want send on ch", unguarded[0])
	}
	if unguarded[1].Kind != BlockRecv || unguarded[1].Expr != "ch" {
		t.Errorf("second unguarded op = %+v, want receive on ch", unguarded[1])
	}
}

func TestBlockingOpsSyncWait(t *testing.T) {
	f, _, info := check(t, blockSrc)
	fd := fnDecl(t, f, "waitOp")
	ops := BlockingOps(fd.Body, info)
	if len(ops) != 1 || ops[0].Kind != BlockWait || ops[0].Guarded {
		t.Fatalf("want one unguarded sync wait, got %+v", ops)
	}
}

func TestCallAt(t *testing.T) {
	f, pkg, info := check(t, sumSrc)
	cg := BuildCallGraph([]*ast.File{f}, pkg, info)
	fd := fnDecl(t, f, "bump")
	var call *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && call == nil {
			call = c
		}
		return true
	})
	c, ok := cg.CallAt(call)
	if !ok || len(c.Targets) != 1 || c.Targets[0].Name() != "setN" {
		t.Fatalf("CallAt(bump's call) = %+v, %v; want setN target", c, ok)
	}
}

func TestReachableWithPruning(t *testing.T) {
	f, pkg, info := check(t, sumSrc)
	cg := BuildCallGraph([]*ast.File{f}, pkg, info)
	var bump, setN *types.Func
	for fn := range cg.Decls {
		switch fn.Name() {
		case "bump":
			bump = fn
		case "setN":
			setN = fn
		}
	}
	all := cg.ReachableWith([]*types.Func{bump}, ReachOpts{})
	if !all[setN] {
		t.Fatal("setN must be reachable from bump with no pruning")
	}
	pruned := cg.ReachableWith([]*types.Func{bump}, ReachOpts{
		SkipCall: func(from *types.Func, c Call) bool {
			return c.Callee != nil && c.Callee.Name() == "setN"
		},
	})
	if pruned[setN] {
		t.Error("setN must be pruned by SkipCall")
	}
	skipped := cg.ReachableWith([]*types.Func{bump}, ReachOpts{
		SkipFunc: func(fn *types.Func) bool { return fn == bump },
	})
	if len(skipped) != 0 {
		t.Errorf("SkipFunc on the root must empty the closure: %v", skipped)
	}
}

package flowkit

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Interprocedural summaries. BuildSummaries condenses every function body in
// the package into a Summary: the storage the function writes (rooted at its
// receiver, parameters, or package-level variables, resolved through local
// aliases), the parameters its results may retain, and the blocking
// operations its body performs. Summaries are computed bottom-up over the
// strongly-connected components of the class-hierarchy call graph, with a
// fixpoint inside each SCC, so a caller's summary includes the effects of
// everything it may reach in the package — the per-package equivalent of a
// whole-program escape/mod-ref analysis, within the vet unit model where
// dependency bodies are unavailable.
//
// Three analyzers consume them: statepurity (which storage does a Lookup
// path reach), clonecomplete (may a helper's result alias its argument),
// and frozen (is a post-construction write reachable for an immutable
// type). ctxblock consumes the per-function blocking facts.

// RootKind classifies the base variable of an Effect path.
type RootKind int

const (
	// RootLocal roots the path at a plain local (function-private storage,
	// unless the local aliases something — aliases are resolved before the
	// root is classified, so a remaining RootLocal really is private).
	RootLocal RootKind = iota
	// RootRecv roots the path at the method receiver.
	RootRecv
	// RootParam roots the path at parameter Effect.Param.
	RootParam
	// RootGlobal roots the path at a package-level variable.
	RootGlobal
)

// WriteOp is the syntactic shape of a write Effect.
type WriteOp int

const (
	// OpAssign is an assignment or composite update (=, +=, ...).
	OpAssign WriteOp = iota
	// OpIncDec is x++ / x--.
	OpIncDec
	// OpDelete is the builtin delete(m, k).
	OpDelete
)

// Effect is one write a function performs, resolved through local aliases
// to the storage it reaches. For propagated effects (FromCall != nil) the
// path is the call-site binding joined with the callee's path: a callee
// writing recv.tag, called as b.inner.Update(...), yields an Effect with
// Fields [inner, tag] in the caller.
type Effect struct {
	// Kind classifies Base.
	Kind RootKind
	// Param is the parameter index when Kind == RootParam.
	Param int
	// Base is the root variable of the written path.
	Base *types.Var
	// Fields are the struct fields selected from Base, outermost first.
	Fields []*types.Var
	// Op is the write's syntactic shape.
	Op WriteOp
	// Node is the statement (or call) in *this* function that performs or
	// triggers the write — the anchor for escape directives.
	Node ast.Node
	// Pos is where the underlying write happens: Node.Pos for direct
	// effects, the callee's write position for propagated ones.
	Pos token.Pos
	// Indirect marks writes that reach storage through a deref, an index
	// step, a resolved alias, or a reference-typed intermediate field —
	// i.e. writes that escape a by-value copy of the root.
	Indirect bool
	// FromCall is the resolved callee for effects propagated from call
	// sites; nil for the function's own writes.
	FromCall *types.Func
}

// BlockKind classifies a blocking operation.
type BlockKind int

const (
	// BlockSend is a channel send.
	BlockSend BlockKind = iota
	// BlockRecv is a channel receive.
	BlockRecv
	// BlockWait is sync.WaitGroup.Wait or sync.Cond.Wait.
	BlockWait
)

func (k BlockKind) String() string {
	switch k {
	case BlockSend:
		return "send"
	case BlockRecv:
		return "receive"
	case BlockWait:
		return "sync wait"
	}
	return "block"
}

// BlockOp is one potentially-blocking operation in a function body.
type BlockOp struct {
	// Kind is the operation's shape.
	Kind BlockKind
	// Node is the send statement, receive expression, or Wait call.
	Node ast.Node
	// Pos anchors diagnostics.
	Pos token.Pos
	// Guarded reports the operation cannot block indefinitely on a dead
	// peer: it is a select case alongside a ctx/done case or a default.
	Guarded bool
	// Expr renders the operand channel (or wait target) for diagnostics.
	Expr string
}

// Summary is the interprocedural condensation of one function.
type Summary struct {
	// Fn is the summarized function.
	Fn *types.Func
	// Direct are the function body's own write effects.
	Direct []Effect
	// Writes is Direct plus every callee effect translated through the
	// call-site bindings (receiver/parameter/global-rooted callee writes
	// only — a callee's writes to its own locals are invisible by
	// construction).
	Writes []Effect
	// Retains lists the parameter indices (receiver = -1) whose storage a
	// result of the function may alias: `return p.buf` retains p.
	Retains []int
	// Blocking are the body's own blocking operations, including those
	// inside nested function literals.
	Blocking []BlockOp
}

// RetainsParam reports whether a result may alias parameter i (receiver
// = -1).
func (s *Summary) RetainsParam(i int) bool {
	for _, p := range s.Retains {
		if p == i {
			return true
		}
	}
	return false
}

// Summaries holds every function summary of one package.
type Summaries struct {
	// ByFunc maps each in-package function to its summary.
	ByFunc map[*types.Func]*Summary
	// SCCs lists the call graph's strongly-connected components in
	// bottom-up (callee-before-caller) order.
	SCCs [][]*types.Func

	cg   *CallGraph
	info *types.Info
	pkg  *types.Package
}

// maxFieldChain bounds propagated field chains: recursive structures
// (list.next.next...) would otherwise grow a chain per fixpoint round.
// Chains are truncated, never dropped, so the effect stays visible at a
// coarser path.
const maxFieldChain = 8

// BuildSummaries computes the package's function summaries bottom-up over
// the call graph's SCC condensation.
func BuildSummaries(cg *CallGraph, pkg *types.Package, info *types.Info) *Summaries {
	s := &Summaries{
		ByFunc: make(map[*types.Func]*Summary, len(cg.Decls)),
		cg:     cg,
		info:   info,
		pkg:    pkg,
	}
	s.SCCs = condense(cg)

	// Direct effects, retention seeds and blocking facts first: they do not
	// depend on callees.
	for _, scc := range s.SCCs {
		for _, fn := range scc {
			s.ByFunc[fn] = s.direct(fn)
		}
	}
	// Bottom-up propagation, iterated to fixpoint inside each SCC (mutual
	// recursion). The lattices are finite — effect paths are truncated at
	// maxFieldChain and retention is a subset of parameter indices — so
	// each SCC converges.
	for _, scc := range s.SCCs {
		for changed := true; changed; {
			changed = false
			for _, fn := range scc {
				if s.propagate(fn) {
					changed = true
				}
			}
		}
	}
	return s
}

// direct summarizes one function body in isolation.
func (s *Summaries) direct(fn *types.Func) *Summary {
	sum := &Summary{Fn: fn}
	fd := s.cg.Decls[fn]
	if fd == nil || fd.Body == nil {
		return sum
	}
	aliases := CollectAliases(fd, s.info)
	recv, params := signatureVars(s.info, fd)

	record := func(node ast.Node, op WriteOp, lhs ast.Expr) {
		eff, ok := s.resolveEffect(lhs, aliases, recv, params)
		if !ok {
			return
		}
		eff.Op = op
		if op == OpDelete {
			eff.Indirect = true // deleting mutates the map's shared storage
		}
		eff.Node = node
		eff.Pos = node.Pos()
		sum.Direct = append(sum.Direct, eff)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				record(n, OpAssign, lhs)
			}
		case *ast.IncDecStmt:
			record(n, OpIncDec, n.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if _, isBuiltin := s.info.Uses[id].(*types.Builtin); isBuiltin {
					record(n, OpDelete, n.Args[0])
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				sum.Retains = mergeRetains(sum.Retains, s.returnRetains(res, aliases, recv, params))
			}
		}
		return true
	})
	sum.Blocking = BlockingOps(fd.Body, s.info)
	sum.Writes = append([]Effect(nil), sum.Direct...)
	return sum
}

// resolveEffect reduces an lvalue to an Effect, resolving local aliases and
// classifying the root. A plain identifier LHS rebinds the local — the
// binding itself is function-private storage even when the local aliases
// shared state — so it resolves without the alias map, exactly like a
// def-site.
func (s *Summaries) resolveEffect(lhs ast.Expr, aliases map[*types.Var]*Path,
	recv *types.Var, params []*types.Var) (Effect, bool) {

	lhsAliases := aliases
	_, isIdent := ast.Unparen(lhs).(*ast.Ident)
	if isIdent {
		lhsAliases = nil
	}
	p, ok := ResolvePath(s.info, lhs, lhsAliases)
	if !ok {
		return Effect{}, false
	}
	eff := Effect{Base: p.Base, Fields: p.Fields}
	eff.Kind, eff.Param = classifyRoot(p.Base, recv, params, s.pkg)
	if !isIdent {
		eff.Indirect = writeIsIndirect(s.info, lhs, p, aliases)
	}
	return eff, true
}

// classifyRoot decides which RootKind a path base is in the context of one
// function.
func classifyRoot(base *types.Var, recv *types.Var, params []*types.Var, pkg *types.Package) (RootKind, int) {
	if recv != nil && base == recv {
		return RootRecv, 0
	}
	for i, p := range params {
		if base == p {
			return RootParam, i
		}
	}
	if pkg != nil && base.Parent() == pkg.Scope() {
		return RootGlobal, 0
	}
	return RootLocal, 0
}

// writeIsIndirect reports whether the write escapes a by-value copy of the
// root: it dereferences, indexes, resolves through an alias local, or
// crosses a reference-typed intermediate field — or the root is itself a
// pointer. A value-receiver `b.seen = 3` fails all of these (the caller's
// copy is untouched); `b.entries[i].valid = true` indexes into a slice
// field, whose backing array IS shared with the caller.
func writeIsIndirect(info *types.Info, lhs ast.Expr, p *Path, aliases map[*types.Var]*Path) bool {
	indirect := false
	ast.Inspect(lhs, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.StarExpr, *ast.IndexExpr:
			indirect = true
		case *ast.Ident:
			if v, ok := objVarOf(info, x); ok {
				if _, isAlias := aliases[v]; isAlias {
					indirect = true
				}
			}
		}
		return true
	})
	for i, f := range p.Fields {
		if i == len(p.Fields)-1 {
			break
		}
		if aliasesStorage(f.Type()) {
			indirect = true
		}
	}
	if _, isPtr := p.Base.Type().Underlying().(*types.Pointer); isPtr {
		indirect = true
	}
	return indirect
}

func objVarOf(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v, true
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, true
	}
	return nil, false
}

// returnRetains computes which parameters a returned expression may alias.
func (s *Summaries) returnRetains(res ast.Expr, aliases map[*types.Var]*Path,
	recv *types.Var, params []*types.Var) []int {

	res = ast.Unparen(res)
	// A returned call: the callee's retention, translated through its
	// arguments. Out-of-package callees are opaque; methods named Clone are
	// trusted fresh by convention (the whole point of the method).
	if call, ok := res.(*ast.CallExpr); ok {
		return s.callRetains(call, aliases, recv, params)
	}
	// Slicing or taking the address of a path keeps the alias.
	switch e := res.(type) {
	case *ast.SliceExpr:
		res = e.X
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			res = e.X
		}
	}
	p, ok := ResolvePath(s.info, res, aliases)
	if !ok {
		return nil
	}
	if t := s.info.TypeOf(res); t != nil && !typeRetainsStorage(t, 0) {
		return nil
	}
	kind, idx := classifyRoot(p.Base, recv, params, s.pkg)
	switch kind {
	case RootRecv:
		return []int{-1}
	case RootParam:
		return []int{idx}
	}
	return nil
}

// callRetains translates a returned call's retention through its argument
// bindings: `return helper(p.buf)` retains p when helper's summary retains
// its first parameter.
func (s *Summaries) callRetains(call *ast.CallExpr, aliases map[*types.Var]*Path,
	recv *types.Var, params []*types.Var) []int {

	c, ok := s.cg.CallAt(call)
	if !ok || len(c.Targets) == 0 {
		return nil
	}
	var out []int
	for _, t := range c.Targets {
		tsum := s.ByFunc[t]
		if tsum == nil {
			continue
		}
		for _, ri := range tsum.Retains {
			arg := bindCallArg(call, c, ri)
			if arg == nil {
				continue
			}
			p, ok := ResolvePath(s.info, arg, aliases)
			if !ok {
				continue
			}
			kind, idx := classifyRoot(p.Base, recv, params, s.pkg)
			switch kind {
			case RootRecv:
				out = mergeRetains(out, []int{-1})
			case RootParam:
				out = mergeRetains(out, []int{idx})
			}
		}
	}
	return out
}

// bindCallArg returns the call-site expression bound to the callee's
// parameter index (receiver = -1), or nil when the binding is not simple
// (variadic spread mismatch, method expression, ...).
func bindCallArg(call *ast.CallExpr, c Call, idx int) ast.Expr {
	if idx == -1 {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		return sel.X
	}
	if idx < 0 || idx >= len(call.Args) {
		return nil
	}
	return call.Args[idx]
}

// propagate folds callee summaries into fn's Writes and Retains, reporting
// whether anything changed.
func (s *Summaries) propagate(fn *types.Func) bool {
	sum := s.ByFunc[fn]
	fd := s.cg.Decls[fn]
	if sum == nil || fd == nil || fd.Body == nil {
		return false
	}
	aliases := CollectAliases(fd, s.info)
	recv, params := signatureVars(s.info, fd)

	seen := make(map[string]bool, len(sum.Writes))
	for _, e := range sum.Writes {
		seen[effectKey(e)] = true
	}
	changed := false
	add := func(e Effect) {
		if len(e.Fields) > maxFieldChain {
			e.Fields = e.Fields[:maxFieldChain]
		}
		k := effectKey(e)
		if seen[k] {
			return
		}
		seen[k] = true
		sum.Writes = append(sum.Writes, e)
		changed = true
	}

	for _, c := range s.cg.Calls[fn] {
		for _, t := range c.Targets {
			tsum := s.ByFunc[t]
			if tsum == nil {
				continue
			}
			for _, eff := range tsum.Writes {
				switch eff.Kind {
				case RootGlobal:
					ne := eff
					ne.Node = c.Expr
					ne.FromCall = t
					add(ne)
				case RootRecv, RootParam:
					if !eff.Indirect {
						// The callee wrote a by-value copy of its receiver
						// or parameter; the caller's storage is untouched.
						continue
					}
					idx := eff.Param
					if eff.Kind == RootRecv {
						idx = -1
					}
					arg := bindCallArg(c.Expr, c, idx)
					if arg == nil {
						continue
					}
					p, ok := ResolvePath(s.info, arg, aliases)
					if !ok {
						continue
					}
					ne := Effect{
						Base:     p.Base,
						Fields:   append(append([]*types.Var(nil), p.Fields...), eff.Fields...),
						Op:       eff.Op,
						Node:     c.Expr,
						Pos:      eff.Pos,
						Indirect: true,
						FromCall: t,
					}
					ne.Kind, ne.Param = classifyRoot(p.Base, recv, params, s.pkg)
					add(ne)
				}
			}
		}
	}

	// Retention through calls discovered after the callee's fixpoint round.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			merged := mergeRetains(sum.Retains, s.returnRetains(res, aliases, recv, params))
			if len(merged) != len(sum.Retains) {
				sum.Retains = merged
				changed = true
			}
		}
		return true
	})
	return changed
}

// effectKey renders an Effect for deduplication.
func effectKey(e Effect) string {
	var b strings.Builder
	b.WriteString(e.Base.Name())
	for _, f := range e.Fields {
		b.WriteByte('.')
		b.WriteString(f.Name())
	}
	if e.FromCall != nil {
		b.WriteByte('@')
		b.WriteString(e.FromCall.FullName())
	}
	return b.String()
}

func mergeRetains(have, more []int) []int {
	for _, m := range more {
		found := false
		for _, h := range have {
			if h == m {
				found = true
				break
			}
		}
		if !found {
			have = append(have, m)
		}
	}
	sort.Ints(have)
	return have
}

// signatureVars extracts the receiver and parameter variables of a
// declaration.
func signatureVars(info *types.Info, fd *ast.FuncDecl) (recv *types.Var, params []*types.Var) {
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if v, ok := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var); ok {
			recv = v
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					params = append(params, v)
				}
			}
		}
	}
	return recv, params
}

// typeRetainsStorage reports whether a value of type t can carry an alias
// to its source's storage: pointers, slices, maps and channels do directly;
// structs and arrays do when a (transitive) field or element does. depth
// caps recursion through self-referential types.
func typeRetainsStorage(t types.Type, depth int) bool {
	if depth > 4 {
		return true // deep/recursive: assume the worst
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Array:
		return typeRetainsStorage(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeRetainsStorage(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

// condense computes the call graph's SCCs (Tarjan) in deterministic
// bottom-up order: every edge leaves a later component toward an earlier
// one, so iterating SCCs in order visits callees before callers.
func condense(cg *CallGraph) [][]*types.Func {
	fns := make([]*types.Func, 0, len(cg.Decls))
	for fn := range cg.Decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })

	index := make(map[*types.Func]int, len(fns))
	low := make(map[*types.Func]int, len(fns))
	onStack := make(map[*types.Func]bool, len(fns))
	var stack []*types.Func
	var sccs [][]*types.Func
	next := 0

	var strongconnect func(fn *types.Func)
	strongconnect = func(fn *types.Func) {
		index[fn] = next
		low[fn] = next
		next++
		stack = append(stack, fn)
		onStack[fn] = true

		for _, c := range cg.Calls[fn] {
			for _, t := range c.Targets {
				if _, ok := cg.Decls[t]; !ok {
					continue
				}
				if _, visited := index[t]; !visited {
					strongconnect(t)
					if low[t] < low[fn] {
						low[fn] = low[t]
					}
				} else if onStack[t] && index[t] < low[fn] {
					low[fn] = index[t]
				}
			}
		}

		if low[fn] == index[fn] {
			var scc []*types.Func
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				scc = append(scc, top)
				if top == fn {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i].FullName() < scc[j].FullName() })
			sccs = append(sccs, scc)
		}
	}
	for _, fn := range fns {
		if _, visited := index[fn]; !visited {
			strongconnect(fn)
		}
	}
	return sccs
}

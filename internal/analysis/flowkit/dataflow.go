package flowkit

import "go/ast"

// Facts is a set of string-keyed dataflow facts (e.g. canonical lock names
// like "c.mu"). A nil Facts means TOP — "everything could hold" — used for
// blocks not yet visited so that intersection at joins starts optimistic.
type Facts map[string]bool

// clone copies f; cloning TOP stays TOP.
func (f Facts) clone() Facts {
	if f == nil {
		return nil
	}
	out := make(Facts, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// intersect returns f ∩ g, treating nil as TOP (identity).
func (f Facts) intersect(g Facts) Facts {
	if f == nil {
		return g.clone()
	}
	if g == nil {
		return f.clone()
	}
	out := make(Facts)
	for k := range f {
		if g[k] {
			out[k] = true
		}
	}
	return out
}

// equal reports whether f and g hold exactly the same facts (nil only
// equals nil).
func (f Facts) equal(g Facts) bool {
	if (f == nil) != (g == nil) {
		return false
	}
	if len(f) != len(g) {
		return false
	}
	for k := range f {
		if !g[k] {
			return false
		}
	}
	return true
}

// Has reports whether the fact is in the set. TOP has every fact: a block
// unreachable from the entry keeps a nil (TOP) in-set, which deliberately
// suppresses diagnostics in dead code.
func (f Facts) Has(k string) bool {
	if f == nil {
		return true
	}
	return f[k]
}

// GenKill classifies one statement's effect on the fact set: facts it
// generates (e.g. mu.Lock() ⇒ "mu" held) and facts it kills (mu.Unlock()).
type GenKill func(ast.Stmt) (gen, kill []string)

// MustHold runs a forward must-dataflow over g: a fact is in a statement's
// in-set only if every path from the entry establishes it (intersection at
// joins, TOP for unvisited predecessors). entry seeds the facts that hold
// on function entry (e.g. a caller-holds-lock precondition).
//
// The result maps every statement in the graph to the facts that must hold
// immediately before it executes.
func MustHold(g *Graph, entry []string, gk GenKill) map[ast.Stmt]Facts {
	in := make([]Facts, len(g.Blocks))  // facts at block entry; nil = TOP
	out := make([]Facts, len(g.Blocks)) // facts at block exit; nil = TOP
	e := make(Facts, len(entry))
	for _, k := range entry {
		e[k] = true
	}
	in[g.Entry.Index] = e

	apply := func(f Facts, blk *Block) Facts {
		cur := f.clone()
		for _, s := range blk.Stmts {
			gen, kill := gk(s)
			if len(gen)+len(kill) == 0 {
				continue
			}
			if cur == nil {
				// Refine TOP to a concrete set lazily: facts born in dead
				// code still propagate so gen/kill stays meaningful there.
				cur = make(Facts)
			}
			for _, k := range kill {
				delete(cur, k)
			}
			for _, k := range gen {
				cur[k] = true
			}
		}
		return cur
	}

	// Worklist iteration to fixpoint. The lattice (sets under intersection)
	// has finite height, so this terminates.
	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	inWork := make([]bool, len(g.Blocks))
	for i := range inWork {
		inWork[i] = true
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.Index] = false

		f := in[blk.Index]
		if blk != g.Entry {
			f = nil // TOP
			for _, p := range blk.Preds {
				f = f.intersect(out[p.Index])
			}
			in[blk.Index] = f
		}
		nf := apply(f, blk)
		if nf.equal(out[blk.Index]) && out[blk.Index] != nil {
			continue
		}
		if nf.equal(out[blk.Index]) && nf == nil {
			continue
		}
		out[blk.Index] = nf
		for _, s := range blk.Succs {
			if !inWork[s.Index] {
				work = append(work, s)
				inWork[s.Index] = true
			}
		}
	}

	// Final pass: per-statement in-sets by replaying each block.
	res := make(map[ast.Stmt]Facts)
	for _, blk := range g.Blocks {
		cur := in[blk.Index].clone()
		for _, s := range blk.Stmts {
			res[s] = cur.clone()
			gen, kill := gk(s)
			if len(gen)+len(kill) == 0 {
				continue
			}
			if cur == nil {
				cur = make(Facts)
			}
			for _, k := range kill {
				delete(cur, k)
			}
			for _, k := range gen {
				cur[k] = true
			}
		}
	}
	return res
}

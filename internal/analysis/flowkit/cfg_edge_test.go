package flowkit

import (
	"go/ast"
	"go/token"
	"testing"
)

// Satellite CFG edge cases: goto back into a loop body, defer inside
// range, select with default, and labeled continue across nested loops.
// Each test asserts the exact block/edge structure the builder commits to.

func buildCFG(t *testing.T, src, fn string) *Graph {
	t.Helper()
	f, _, _ := check(t, src)
	fd := fnDecl(t, f, fn)
	return New(fd.Body)
}

// blockWith returns the unique block holding a statement matched by pred.
func blockWith(t *testing.T, g *Graph, desc string, pred func(ast.Stmt) bool) *Block {
	t.Helper()
	var found *Block
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if pred(s) {
				if found != nil && found != b {
					t.Fatalf("%s appears in blocks %d and %d", desc, found.Index, b.Index)
				}
				found = b
			}
		}
	}
	if found == nil {
		t.Fatalf("no block contains %s", desc)
	}
	return found
}

func assignTo(name string, tok token.Token) func(ast.Stmt) bool {
	return func(s ast.Stmt) bool {
		a, ok := s.(*ast.AssignStmt)
		if !ok || a.Tok != tok || len(a.Lhs) != 1 {
			return false
		}
		id, ok := a.Lhs[0].(*ast.Ident)
		return ok && id.Name == name
	}
}

func incOf(name string) func(ast.Stmt) bool {
	return func(s ast.Stmt) bool {
		i, ok := s.(*ast.IncDecStmt)
		if !ok {
			return false
		}
		id, ok := i.X.(*ast.Ident)
		return ok && id.Name == name
	}
}

func hasSingleSucc(t *testing.T, b *Block, want *Block, desc string) {
	t.Helper()
	if len(b.Succs) != 1 || b.Succs[0] != want {
		t.Fatalf("%s: block %d succs = %v, want exactly block %d",
			desc, b.Index, blockIndexes(b.Succs), want.Index)
	}
}

func blockIndexes(bs []*Block) []int {
	out := make([]int, len(bs))
	for i, b := range bs {
		out[i] = b.Index
	}
	return out
}

func TestCFGGotoIntoLoopBody(t *testing.T) {
	g := buildCFG(t, `package p

func gotoLoop(xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
	retry:
		t += xs[i]
		if t < 0 {
			t = 0
			goto retry
		}
	}
	return t
}
`, "gotoLoop")

	label := blockWith(t, g, "t += xs[i] (the retry: label target)", assignTo("t", token.ADD_ASSIGN))
	reset := blockWith(t, g, "t = 0 (before the goto)", assignTo("t", token.ASSIGN))

	// The goto must land on the label-target block inside the loop body,
	// forming a back edge from the if's then-branch.
	hasSingleSucc(t, reset, label, "goto retry")
	if len(label.Preds) < 2 {
		t.Fatalf("label target block %d must be entered both by loop fall-in and the goto; preds = %v",
			label.Index, blockIndexes(label.Preds))
	}

	// The goto creates a cycle: the label block reaches itself.
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				walk(s)
			}
		}
	}
	walk(label)
	if !seen[label] {
		t.Error("goto into the loop body must make the label block part of a cycle")
	}
}

func TestCFGDeferInsideRange(t *testing.T) {
	g := buildCFG(t, `package p

func deferRange(xs []int) (t int) {
	for _, x := range xs {
		defer println(x)
		t += x
	}
	return
}
`, "deferRange")

	head := blockWith(t, g, "the range statement", func(s ast.Stmt) bool {
		_, ok := s.(*ast.RangeStmt)
		return ok
	})
	deferBlk := blockWith(t, g, "the defer statement", func(s ast.Stmt) bool {
		_, ok := s.(*ast.DeferStmt)
		return ok
	})
	ret := blockWith(t, g, "the return statement", func(s ast.Stmt) bool {
		_, ok := s.(*ast.ReturnStmt)
		return ok
	})

	// Range head branches exactly two ways: into the body and past the
	// loop (empty collection).
	if len(head.Succs) != 2 {
		t.Fatalf("range head %d succs = %v, want body+after", head.Index, blockIndexes(head.Succs))
	}
	if head.Succs[0] != deferBlk && head.Succs[1] != deferBlk {
		t.Fatalf("defer must sit in the loop body block, a direct successor of the head; head succs = %v, defer in %d",
			blockIndexes(head.Succs), deferBlk.Index)
	}
	// The body loops straight back to the head (continueTo = head for range).
	hasSingleSucc(t, deferBlk, head, "range body")
	// The after block falls into the return.
	after := head.Succs[0]
	if after == deferBlk {
		after = head.Succs[1]
	}
	if after != ret {
		t.Fatalf("range after-block %d should hold the return; return is in %d", after.Index, ret.Index)
	}
}

func TestCFGSelectWithDefault(t *testing.T) {
	g := buildCFG(t, `package p

func selDefault(ch chan int) int {
	t := 0
	select {
	case v := <-ch:
		t = v
	default:
		t = -1
	}
	return t
}
`, "selDefault")

	head := blockWith(t, g, "t := 0 (the block entering the select)", assignTo("t", token.DEFINE))
	recv := blockWith(t, g, "the comm clause (v := <-ch)", assignTo("v", token.DEFINE))
	ret := blockWith(t, g, "the return statement", func(s ast.Stmt) bool {
		_, ok := s.(*ast.ReturnStmt)
		return ok
	})

	// With a default clause the head must NOT keep a bypass edge to the
	// join: exactly one successor per clause.
	if len(head.Succs) != 2 {
		t.Fatalf("select head %d succs = %v, want exactly the two clause blocks (no join bypass)",
			head.Index, blockIndexes(head.Succs))
	}
	if head.Succs[0] != recv && head.Succs[1] != recv {
		t.Fatalf("comm clause block %d must be a direct successor of the head (succs %v)",
			recv.Index, blockIndexes(head.Succs))
	}
	// Both clauses converge on the same join, which runs the return.
	hasSingleSucc(t, head.Succs[0], ret, "first select clause")
	hasSingleSucc(t, head.Succs[1], ret, "second select clause")
}

func TestCFGLabeledContinueAcrossNestedLoops(t *testing.T) {
	g := buildCFG(t, `package p

func nested(xss [][]int) int {
	t := 0
outer:
	for i := 0; i < len(xss); i++ {
		for j := 0; j < len(xss[i]); j++ {
			if xss[i][j] < 0 {
				continue outer
			}
			t += xss[i][j]
		}
	}
	return t
}
`, "nested")

	outerPost := blockWith(t, g, "i++ (outer post)", incOf("i"))
	innerPost := blockWith(t, g, "j++ (inner post)", incOf("j"))
	body := blockWith(t, g, "t += xss[i][j] (inner loop body tail)", assignTo("t", token.ADD_ASSIGN))

	// `continue outer` must jump to the OUTER loop's post block, skipping
	// j++ entirely. The branch lives in the if's then-block: empty, one
	// successor, sharing its predecessor with the statement after the if.
	if len(body.Preds) != 1 {
		t.Fatalf("inner body tail %d preds = %v, want the if-condition block only",
			body.Index, blockIndexes(body.Preds))
	}
	condBlk := body.Preds[0]
	var thenBlk *Block
	for _, s := range condBlk.Succs {
		if s != body && len(s.Stmts) == 0 {
			thenBlk = s
		}
	}
	if thenBlk == nil {
		t.Fatalf("if-condition block %d has no empty then-block among succs %v",
			condBlk.Index, blockIndexes(condBlk.Succs))
	}
	hasSingleSucc(t, thenBlk, outerPost, "continue outer")
	if thenBlk.Succs[0] == innerPost {
		t.Fatal("labeled continue must not fall into the inner post block")
	}
	// The ordinary path still runs the inner post.
	hasSingleSucc(t, body, innerPost, "inner body fallthrough")
}

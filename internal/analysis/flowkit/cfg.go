// Package flowkit is a small intraprocedural dataflow toolkit built only on
// go/ast and go/types, the flow-sensitive layer beneath the dataflow
// analyzers (statepurity, guardedby, addrdomain). It provides:
//
//   - a control-flow graph builder over function bodies (New), covering the
//     structured statements the simulator uses: if/for/range/switch/type
//     switch/select, labeled break/continue/goto, and early returns;
//   - a must-hold forward dataflow over the CFG (MustHold) — the lock-set
//     engine behind guardedby, with intersection at joins so a fact only
//     survives if it holds on *every* path;
//   - flow-insensitive def/use collection (CollectAliases, ResolvePath) that
//     tracks which locals alias fields of a receiver or parameter — the
//     write-taint engine behind statepurity;
//   - a type-based in-package call graph (BuildCallGraph) with
//     class-hierarchy resolution of interface calls against the package's
//     own concrete types.
//
// Everything is per-package by design: the `go vet -vettool` protocol hands
// a tool one package's syntax plus export data for its dependencies, so no
// analysis here ever needs a dependency's function bodies.
package flowkit

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line statement sequence.
// Control constructs do not appear in Stmts themselves; their init
// statements and their bodies' statements are distributed into blocks, so a
// client sees every executable simple statement exactly once.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, deterministic).
	Index int
	// Stmts are the simple statements executed in order within the block.
	Stmts []ast.Stmt
	// Succs are the control-flow successors.
	Succs []*Block
	// Preds are the control-flow predecessors (inverse of Succs).
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block in creation order; Blocks[0] is the entry.
	Blocks []*Block
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the single synthetic exit block: returns and falling off the
	// end both lead here. It holds no statements.
	Exit *Block
}

// New builds the CFG of body. A nil body (declaration without
// implementation) yields a graph whose entry falls straight to exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: map[string]*gotoTarget{}}
	entry := b.newBlock()
	b.g.Entry = entry
	exit := b.newBlock()
	b.g.Exit = exit
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(exit)
	b.resolveGotos()
	b.renumber()
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.g
}

// loopCtx tracks where break/continue go for an enclosing loop, switch or
// select (continueTo is nil for switches).
type loopCtx struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

// gotoTarget is a label's block, created lazily so forward gotos resolve.
type gotoTarget struct {
	block *Block
}

type builder struct {
	g     *Graph
	cur   *Block // current block; nil after a terminating statement
	loops []loopCtx
	// pendingLabel carries the label of a LabeledStmt to the loop or switch
	// it labels (LabeledStmt recurses into stmt, which consumes it).
	pendingLabel string
	labels       map[string]*gotoTarget
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump adds an edge from the current block to dst and leaves the current
// block unset (a following statement starts a fresh, unreachable block).
func (b *builder) jump(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
	b.cur = nil
}

// edge adds an edge from src to dst.
func (b *builder) edge(src, dst *Block) {
	src.Succs = append(src.Succs, dst)
}

// startBlock makes blk current, creating a fresh block for unreachable code
// if control already terminated.
func (b *builder) startBlock(blk *Block) { b.cur = blk }

// ensure returns the current block, materialising an unreachable one if a
// terminator just ran (so statements after `return` still get analyzed).
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// labelTarget returns (creating if needed) the goto target block for name.
func (b *builder) labelTarget(name string) *Block {
	t, ok := b.labels[name]
	if !ok {
		t = &gotoTarget{block: b.newBlock()}
		b.labels[name] = t
	}
	return t.block
}

func (b *builder) findLoop(label string, wantContinue bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if wantContinue && lc.continueTo == nil {
			continue
		}
		if label == "" || lc.label == label {
			return lc
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		// The condition is evaluated in the current block; record the
		// IfStmt itself so expression-level facts in Cond are visible.
		cond := b.ensure()
		cond.Stmts = append(cond.Stmts, condMarker(s))
		thenBlk := b.newBlock()
		join := b.newBlock()
		b.edge(cond, thenBlk)
		b.startBlock(thenBlk)
		b.stmt(s.Body)
		b.jump(join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(cond, elseBlk)
			b.startBlock(elseBlk)
			b.stmt(s.Else)
			b.jump(join)
		} else {
			b.edge(cond, join)
		}
		b.startBlock(join)

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.jump(head)
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after) // condition may fail immediately
		}
		b.loops = append(b.loops, loopCtx{label: b.pendingLabel, breakTo: after, continueTo: post})
		b.pendingLabel = ""
		b.startBlock(body)
		b.stmt(s.Body)
		b.jump(post)
		b.startBlock(post)
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.jump(head)
		b.loops = b.loops[:len(b.loops)-1]
		b.startBlock(after)

	case *ast.RangeStmt:
		head := b.newBlock()
		b.jump(head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after) // empty collection
		// The per-iteration key/value assignment happens at the head.
		head.Stmts = append(head.Stmts, s)
		b.loops = append(b.loops, loopCtx{label: b.pendingLabel, breakTo: after, continueTo: head})
		b.pendingLabel = ""
		b.startBlock(body)
		b.stmt(s.Body)
		b.jump(head)
		b.loops = b.loops[:len(b.loops)-1]
		b.startBlock(after)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.ensure()
		head.Stmts = append(head.Stmts, condMarker(s))
		b.switchBody(head, s.Body, hasDefaultClause(s.Body))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.ensure()
		head.Stmts = append(head.Stmts, condMarker(s))
		b.switchBody(head, s.Body, hasDefaultClause(s.Body))

	case *ast.SelectStmt:
		head := b.ensure()
		b.switchBody(head, s.Body, hasDefaultClause(s.Body))

	case *ast.LabeledStmt:
		target := b.labelTarget(s.Label.Name)
		b.jump(target)
		b.startBlock(target)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if lc := b.findLoop(label, false); lc != nil {
				b.jump(lc.breakTo)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if lc := b.findLoop(label, true); lc != nil {
				b.jump(lc.continueTo)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			if s.Label != nil {
				b.jump(b.labelTarget(s.Label.Name))
			} else {
				b.cur = nil
			}
		case token.FALLTHROUGH:
			// Handled structurally in switchBody via fallthrough edges;
			// here we just terminate the block (switchBody wired the edge).
			b.cur = nil
		}

	case *ast.ReturnStmt:
		blk := b.ensure()
		blk.Stmts = append(blk.Stmts, s)
		b.jump(b.g.Exit)

	default:
		// Simple statements: assignments, expressions, declarations, defer,
		// go, send, inc/dec, empty.
		blk := b.ensure()
		blk.Stmts = append(blk.Stmts, s)
	}
}

// switchBody wires the clauses of a switch/type-switch/select: each clause
// body is a successor of head; clause ends jump to the join; fallthrough in
// clause i adds an edge to clause i+1's body.
func (b *builder) switchBody(head *Block, body *ast.BlockStmt, hasDefault bool) {
	join := b.newBlock()
	sw := loopCtx{label: b.pendingLabel, breakTo: join}
	b.pendingLabel = ""
	b.loops = append(b.loops, sw)
	clauseBlocks := make([]*Block, len(body.List))
	for i := range body.List {
		clauseBlocks[i] = b.newBlock()
		b.edge(head, clauseBlocks[i])
	}
	if !hasDefault {
		b.edge(head, join) // no clause may match
	}
	for i, cl := range body.List {
		b.startBlock(clauseBlocks[i])
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				b.stmt(cl.Comm)
			}
			stmts = cl.Body
		}
		fell := false
		for _, st := range stmts {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(clauseBlocks) {
					b.jump(clauseBlocks[i+1])
					fell = true
				}
				break
			}
			b.stmt(st)
		}
		if !fell {
			b.jump(join)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.startBlock(join)
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				return true
			}
		case *ast.CommClause:
			if cl.Comm == nil {
				return true
			}
		}
	}
	return false
}

// resolveGotos is a no-op today: label targets are materialised as blocks at
// first reference, so both forward and backward gotos already point at the
// right block.
func (b *builder) resolveGotos() {}

// renumber reassigns contiguous indices after block creation (indices are
// assigned at creation and stay contiguous, but keep this as the single
// place that guarantees the invariant).
func (b *builder) renumber() {
	for i, blk := range b.g.Blocks {
		blk.Index = i
	}
}

// condStmt wraps a control statement whose condition/tag expression is
// evaluated in the enclosing block. Clients that walk Block.Stmts see the
// wrapper and can inspect only the condition expression, not the bodies
// (whose statements live in their own blocks).
type condStmt struct {
	ast.Stmt
}

// condMarker wraps s for inclusion in a block's statement list.
func condMarker(s ast.Stmt) ast.Stmt { return condStmt{s} }

// CondExprs returns the expressions a wrapped control statement evaluates in
// its block (the if condition or switch tag), and reports whether s is such
// a wrapper. For plain statements it returns (nil, false).
func CondExprs(s ast.Stmt) ([]ast.Expr, bool) {
	c, ok := s.(condStmt)
	if !ok {
		return nil, false
	}
	switch s := c.Stmt.(type) {
	case *ast.IfStmt:
		return []ast.Expr{s.Cond}, true
	case *ast.SwitchStmt:
		if s.Tag != nil {
			return []ast.Expr{s.Tag}, true
		}
		return nil, true
	case *ast.TypeSwitchStmt:
		return nil, true
	}
	return nil, true
}

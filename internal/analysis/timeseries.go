package analysis

import (
	"errors"
	"io"

	"repro/internal/addr"
	"repro/internal/trace"
)

// Sample is one point of the Figure 5 runtime plot: the region, page and
// offset of a taken branch target at a given dynamic branch index.
type Sample struct {
	// Index is the dynamic taken-branch ordinal.
	Index uint64
	// Region, Page, Offset are the target's components. Region and Page are
	// *rank* values (dense ids in first-seen order) so that plots show
	// locality rather than raw 27-bit identifiers.
	Region int
	Page   int
	Offset addr.PageOffset
}

// TimeSeries extracts every stride-th taken-branch target from the trace,
// assigning dense first-seen ranks to regions and pages (the paper's Fig 5
// plots page/region ids over time; ranks preserve the structure while being
// plottable). stride ≤ 0 is treated as 1.
func TimeSeries(r trace.Reader, stride int) ([]Sample, error) {
	if stride <= 0 {
		stride = 1
	}
	regionRank := make(map[addr.RegionID]int)
	pageRank := make(map[uint64]int)
	var out []Sample
	var idx uint64
	for {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if !b.Taken || b.Kind.IsReturn() {
			continue
		}
		idx++
		if idx%uint64(stride) != 0 {
			continue
		}
		reg := b.Target.Region()
		pg := b.Target.PageAddr()
		rr, ok := regionRank[reg]
		if !ok {
			rr = len(regionRank)
			regionRank[reg] = rr
		}
		pr, ok := pageRank[pg]
		if !ok {
			pr = len(pageRank)
			pageRank[pg] = pr
		}
		out = append(out, Sample{Index: idx, Region: rr, Page: pr, Offset: b.Target.Offset()})
	}
}

package analysis

import (
	"errors"
	"io"
	"sort"

	"repro/internal/addr"
	"repro/internal/trace"
)

// Reuse profiles the temporal reuse of taken-branch PCs as LRU stack
// distances: the number of *distinct* taken-branch PCs observed between two
// successive executions of the same PC. The miss rate of a fully
// associative LRU BTB of capacity C is exactly the fraction of accesses
// with stack distance ≥ C, so the profile predicts how any BTB size will
// fare on a trace before simulating it — the quantitative backbone of the
// paper's capacity argument.
type Reuse struct {
	// Accesses is the number of taken-branch executions profiled.
	Accesses uint64
	// Cold is the subset that were first-ever accesses (infinite distance).
	Cold uint64
	// distances holds the finite stack distances, sorted ascending after
	// finalize.
	distances []int32
}

// ReuseProfile computes the profile over a trace. Memory is O(distinct
// PCs); time is O(accesses · log distinct) via a Fenwick tree over access
// timestamps.
func ReuseProfile(r trace.Reader) (*Reuse, error) {
	out := &Reuse{}
	last := make(map[addr.VA]int32) // pc → most recent access time
	bit := make([]int32, 1, 1<<16)  // Fenwick tree over times, 1-based
	timeOf := func(i int32) int32 { return i + 1 }

	add := func(pos int32, delta int32) {
		for i := pos; int(i) < len(bit); i += i & (-i) {
			bit[i] += delta
		}
	}
	sum := func(pos int32) int32 {
		var s int32
		for i := pos; i > 0; i -= i & (-i) {
			s += bit[i]
		}
		return s
	}

	var now int32
	for {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if !b.Taken || b.Kind.IsReturn() {
			continue
		}
		out.Accesses++
		// Grow the tree to cover the new timestamp. An appended node at
		// position p must be initialized with the sum of the range it
		// covers, (p − lowbit(p), p−1], since updates to those positions
		// may predate the node (standard online Fenwick extension).
		for len(bit) <= int(timeOf(now)) {
			p := int32(len(bit))
			bit = append(bit, sum(p-1)-sum(p-(p&-p)))
		}
		if prev, seen := last[b.PC]; seen {
			// Distinct PCs since prev = live markers in (prev, now).
			dist := sum(timeOf(now)-1) - sum(timeOf(prev))
			out.distances = append(out.distances, dist)
			add(timeOf(prev), -1) // the old marker moves forward
		} else {
			out.Cold++
		}
		add(timeOf(now), 1)
		last[b.PC] = now
		now++
	}
	sort.Slice(out.distances, func(i, j int) bool { return out.distances[i] < out.distances[j] })
	return out, nil
}

// MissRateAt returns the predicted miss rate of a fully-associative LRU
// structure with the given capacity: (cold + distances ≥ capacity) /
// accesses.
func (u *Reuse) MissRateAt(capacity int) float64 {
	if u.Accesses == 0 {
		return 0
	}
	// First index with distance ≥ capacity.
	idx := sort.Search(len(u.distances), func(i int) bool {
		return u.distances[i] >= int32(capacity)
	})
	misses := uint64(len(u.distances)-idx) + u.Cold
	return float64(misses) / float64(u.Accesses)
}

// WorkingSet returns the number of distinct PCs profiled.
func (u *Reuse) WorkingSet() int {
	return int(u.Cold)
}

// Percentile returns the p-th percentile stack distance (finite reuses
// only); 0 for an empty profile.
func (u *Reuse) Percentile(p float64) int {
	if len(u.distances) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(u.distances)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(u.distances) {
		i = len(u.distances) - 1
	}
	return int(u.distances[i])
}

// Package frozen enforces construction-time immutability: a struct type
// annotated `//pdede:frozen` may only be written while the value is still
// private to its constructor — once it escapes, it is read-only forever.
//
// The contract exists because frozen values are shared without locks:
// `core.WarmState` is warmed once per app and then cloned concurrently by
// every worker, a `.pdtz` block index is handed to racing BlockReaders over
// one shared mmap, and pdede-serve snapshots its Config per tenant. A
// single post-construction write is a data race that `-race` only sees
// when the schedule cooperates; this check rejects it statically.
//
// The proof is interprocedural, built on flowkit's summaries:
//
//   - A write whose alias-resolved path crosses a frozen type's field is a
//     candidate violation (value copies are exempt — writing a by-value
//     copy touches no shared storage).
//   - A candidate rooted at a local is legal only if the local is bound to
//     a fresh allocation (`w := &WarmState{...}`, `new`, a composite
//     literal) in that same function: still construction.
//   - A candidate rooted at a receiver or parameter is legal only if the
//     function is unexported and *every* in-package call site binds that
//     root to storage that is itself still under construction — a fresh
//     local, or a recursively-legal receiver/parameter. This is how
//     `WarmupContext` (fresh local) → `warmStep` (receiver writes) passes
//     while any post-escape caller of the same method is rejected.
//   - Calls to out-of-package mutator-named methods (Update, Push, Reset,
//     AccessRange, ...) through a frozen field are held to the same
//     standard: mutating an object hanging off frozen state is mutating
//     the frozen snapshot.
//
// Escape: `//pdede:frozen-ok <reason>` on the offending line or the
// function's doc comment — for deliberate post-construction transitions
// such as an explicit invalidation hook.
package frozen

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis/flowkit"
	"repro/internal/analysis/lintkit"
)

// Analyzer is the frozen lint pass.
var Analyzer = &lintkit.Analyzer{
	Name: "frozen",
	Doc:  "types marked //pdede:frozen are immutable once their constructor returns: post-construction writes race with lock-free sharing",
	Run:  run,
}

// mutatorNames are method names presumed to mutate their receiver when the
// body is out of reach (other package or interface dispatch).
var mutatorNames = map[string]bool{
	"Update": true, "Insert": true, "Delete": true, "Remove": true,
	"Reset": true, "Clear": true, "Push": true, "Pop": true,
	"Put": true, "Set": true, "Store": true, "Install": true,
	"Acquire": true, "Release": true, "Touch": true, "FindOrInsert": true,
	"Record": true, "Train": true, "Observe": true, "Evict": true,
	"Invalidate": true, "Promote": true, "Fill": true,
	"Add": true, "Write": true, "AccessRange": true, "Access": true,
}

func run(pass *lintkit.Pass) error {
	frozenFields, typeOf := collectFrozen(pass)
	if len(frozenFields) == 0 {
		return nil
	}
	cg := flowkit.BuildCallGraph(pass.Files, pass.Pkg, pass.TypesInfo)
	sums := flowkit.BuildSummaries(cg, pass.Pkg, pass.TypesInfo)
	ck := &checker{
		pass: pass, cg: cg, sums: sums,
		frozen: frozenFields, typeOf: typeOf,
		callers: callerIndex(cg),
		fresh:   make(map[*types.Func]map[*types.Var]bool),
		memo:    make(map[string]bool),
	}

	var fns []*types.Func
	for fn := range cg.Decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })

	for _, fn := range fns {
		ck.checkFunc(fn)
	}
	return nil
}

// collectFrozen finds //pdede:frozen struct types and returns their field
// set plus, per field, the owning type's name (for diagnostics).
func collectFrozen(pass *lintkit.Pass) (map[*types.Var]bool, map[*types.Var]string) {
	fields := make(map[*types.Var]bool)
	owner := make(map[*types.Var]string)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !typeIsFrozen(pass, file, gd, ts) {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							fields[v] = true
							owner[v] = ts.Name.Name
						}
					}
				}
			}
		}
	}
	return fields, owner
}

// typeIsFrozen reports whether the type declaration carries //pdede:frozen
// (doc comment of the decl or spec, or the line above). The match is exact:
// //pdede:frozen-ok is a different directive.
func typeIsFrozen(pass *lintkit.Pass, file *ast.File, gd *ast.GenDecl, ts *ast.TypeSpec) bool {
	for _, cgrp := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
		if cgrp == nil {
			continue
		}
		for _, c := range cgrp.List {
			rest, ok := strings.CutPrefix(c.Text, lintkit.DirectivePrefix+"frozen")
			if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
				return true
			}
		}
	}
	return pass.NodeHasDirective(file, ts, "frozen")
}

// callerIndex inverts the call graph: callee → its in-package call sites.
type callSite struct {
	caller *types.Func
	call   flowkit.Call
}

func callerIndex(cg *flowkit.CallGraph) map[*types.Func][]callSite {
	out := make(map[*types.Func][]callSite)
	var fns []*types.Func
	for fn := range cg.Decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	for _, fn := range fns {
		for _, c := range cg.Calls[fn] {
			for _, t := range c.Targets {
				out[t] = append(out[t], callSite{caller: fn, call: c})
			}
		}
	}
	return out
}

type checker struct {
	pass    *lintkit.Pass
	cg      *flowkit.CallGraph
	sums    *flowkit.Summaries
	frozen  map[*types.Var]bool
	typeOf  map[*types.Var]string
	callers map[*types.Func][]callSite
	fresh   map[*types.Func]map[*types.Var]bool
	memo    map[string]bool
}

func (ck *checker) checkFunc(fn *types.Func) {
	fd := ck.cg.Decls[fn]
	file := ck.cg.File(fn)
	if ck.pass.FuncHasDirective(file, fd, "frozen-ok") {
		return
	}
	sum := ck.sums.ByFunc[fn]
	if sum == nil {
		return
	}
	for _, eff := range sum.Direct {
		f, touches := ck.frozenField(eff.Fields)
		if !touches || ck.legalEffect(fn, eff) {
			continue
		}
		if ck.pass.NodeHasDirective(file, eff.Node, "frozen-ok") {
			continue
		}
		ck.pass.Reportf(eff.Node.Pos(),
			"write to %s of //pdede:frozen type %s outside construction: frozen state is shared lock-free and must not change after its constructor returns",
			f.Name(), ck.typeOf[f])
	}
	// Mutator-named calls into other packages through a frozen field mutate
	// the frozen object graph; in-package targets are covered by their own
	// summaries above.
	aliases := flowkit.CollectAliases(fd, ck.pass.TypesInfo)
	for _, c := range ck.cg.Calls[fn] {
		if len(c.Targets) > 0 || c.Callee == nil || !mutatorNames[c.Callee.Name()] {
			continue
		}
		if c.Callee.Type().(*types.Signature).Recv() == nil {
			continue
		}
		sel, ok := ast.Unparen(c.Expr.Fun).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		p, ok := flowkit.ResolvePath(ck.pass.TypesInfo, sel.X, aliases)
		if !ok {
			continue
		}
		f, touches := ck.frozenField(p.Fields)
		if !touches {
			continue
		}
		if ck.legalRootVar(fn, p.Base) {
			continue
		}
		if ck.pass.NodeHasDirective(file, c.Expr, "frozen-ok") {
			continue
		}
		ck.pass.Reportf(c.Expr.Pos(),
			"call mutates %s of //pdede:frozen type %s outside construction (%s.%s is a mutator): frozen state must not change after its constructor returns",
			f.Name(), ck.typeOf[f], types.ExprString(sel.X), c.Callee.Name())
	}
}

// frozenField returns the first frozen field crossed by a path.
func (ck *checker) frozenField(fields []*types.Var) (*types.Var, bool) {
	for _, f := range fields {
		if ck.frozen[f] {
			return f, true
		}
	}
	return nil, false
}

// legalEffect decides whether a frozen-touching write is still
// construction-time.
func (ck *checker) legalEffect(fn *types.Func, eff flowkit.Effect) bool {
	if !eff.Indirect {
		// A direct write to a by-value copy: the shared object is
		// untouched.
		return eff.Kind != flowkit.RootGlobal
	}
	return ck.legalRootVar(fn, eff.Base)
}

// legalRootVar dispatches a root variable to the right legality rule.
func (ck *checker) legalRootVar(fn *types.Func, base *types.Var) bool {
	sig := fn.Type().(*types.Signature)
	if r := sig.Recv(); r != nil && base == ck.recvVar(fn) {
		return ck.legalRoot(fn, -1)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if base == ck.paramVar(fn, i) {
			return ck.legalRoot(fn, i)
		}
	}
	if base.Parent() == ck.pass.Pkg.Scope() {
		return false // package-level frozen state: never construction
	}
	return ck.freshLocals(fn)[base]
}

// recvVar / paramVar fetch the declaration-side variables, which are the
// objects flowkit paths are rooted at.
func (ck *checker) recvVar(fn *types.Func) *types.Var {
	return fn.Type().(*types.Signature).Recv()
}

func (ck *checker) paramVar(fn *types.Func, i int) *types.Var {
	return fn.Type().(*types.Signature).Params().At(i)
}

// legalRoot reports whether the receiver (-1) or i'th parameter of fn is
// provably still under construction at every possible entry to fn: fn is
// unexported (nothing outside the package can call it) and each in-package
// call site binds the root to a fresh local or a recursively-legal
// receiver/parameter. Cycles (mutual recursion) resolve to illegal.
func (ck *checker) legalRoot(fn *types.Func, idx int) bool {
	key := fn.FullName() + "#" + strconv.Itoa(idx)
	if v, ok := ck.memo[key]; ok {
		return v
	}
	ck.memo[key] = false // in-progress: a cycle cannot prove construction
	if ast.IsExported(fn.Name()) {
		return false
	}
	for _, site := range ck.callers[fn] {
		arg := boundArg(site.call.Expr, idx)
		if arg == nil {
			return false
		}
		aliases := flowkit.CollectAliases(ck.cg.Decls[site.caller], ck.pass.TypesInfo)
		p, ok := flowkit.ResolvePath(ck.pass.TypesInfo, arg, aliases)
		if !ok || len(p.Fields) > 0 {
			// Bound to stored state (or something unresolvable): the value
			// has escaped its constructor.
			return false
		}
		if !ck.legalRootVar(site.caller, p.Base) {
			return false
		}
	}
	ck.memo[key] = true
	return true
}

// boundArg returns the call-site expression bound to a callee parameter
// index (receiver = -1), or nil when the binding is not simple.
func boundArg(call *ast.CallExpr, idx int) ast.Expr {
	if idx == -1 {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		return sel.X
	}
	if idx < 0 || idx >= len(call.Args) {
		return nil
	}
	return call.Args[idx]
}

// freshLocals finds fn's locals bound to fresh allocations: composite
// literals, &literals, and new(T).
func (ck *checker) freshLocals(fn *types.Func) map[*types.Var]bool {
	if m, ok := ck.fresh[fn]; ok {
		return m
	}
	m := make(map[*types.Var]bool)
	fd := ck.cg.Decls[fn]
	if fd != nil && fd.Body != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := ck.pass.TypesInfo.Defs[id].(*types.Var)
				if !ok {
					continue
				}
				if isFreshAlloc(as.Rhs[i]) {
					m[v] = true
				}
			}
			return true
		})
	}
	ck.fresh[fn] = m
	return m
}

func isFreshAlloc(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

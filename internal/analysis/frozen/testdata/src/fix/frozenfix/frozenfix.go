// Package frozenfix exercises frozen: //pdede:frozen types may only be
// written while still private to their constructor.
package frozenfix

import "strings"

// Warm mirrors core.WarmState: built once, then shared lock-free.
//
//pdede:frozen
type Warm struct {
	seen int
	recs []int
}

// Build is the constructor: w is a fresh local, so the direct writes and
// the receiver writes inside step are all construction-time.
func Build(n int) *Warm {
	w := &Warm{}
	w.seen = 0
	for i := 0; i < n; i++ {
		w.step(i)
	}
	return w
}

// step writes its receiver — legal because its only call site binds the
// receiver to Build's fresh local.
func (w *Warm) step(i int) {
	w.seen++
	w.recs = append(w.recs, i)
}

// fill2 is only reached with already-escaped state (Taint's parameter), so
// its write is rejected interprocedurally.
func fill2(w *Warm) {
	w.seen = 99 // want `write to seen of //pdede:frozen type Warm outside construction`
}

// Taint hands its escaped parameter to fill2.
func Taint(w *Warm) {
	fill2(w)
}

// Mutate writes an escaped value directly: a parameter of an exported
// function is post-construction by definition.
func Mutate(w *Warm) {
	w.seen = 0 // want `write to seen of //pdede:frozen type Warm outside construction`
}

// Reset is an exported method: callable on any escaped value.
func (w *Warm) Reset() {
	w.recs = nil // want `write to recs of //pdede:frozen type Warm outside construction`
}

// ReadCopy writes a by-value copy: the shared object is untouched.
func ReadCopy(w Warm) int {
	w.seen = 1
	return w.seen
}

// Sneaky writes through the slice field of escaped state.
func Sneaky(w *Warm) {
	w.recs[0] = 9 // want `write to recs of //pdede:frozen type Warm outside construction`
}

// Restore deliberately re-seeds after a checkpoint reload.
//
//pdede:frozen-ok restore path rebuilds the snapshot before republishing it
func Restore(w *Warm) {
	w.seen = 7
}

// Snap holds a mutable object behind a frozen field: mutator-named calls
// into other packages count as writes.
//
//pdede:frozen
type Snap struct {
	b *strings.Builder
}

// NewSnap may call mutators during construction: s is a fresh local.
func NewSnap() *Snap {
	s := &Snap{b: new(strings.Builder)}
	s.b.Reset()
	return s
}

// TaintSnap mutates the frozen object graph after escape.
func TaintSnap(s *Snap) {
	s.b.Reset() // want `call mutates b of //pdede:frozen type Snap outside construction`
}

// Thawed is not annotated: writes anywhere are fine.
type Thawed struct {
	seen int
}

func Poke(t *Thawed) {
	t.seen++
}

package frozen_test

import (
	"testing"

	"repro/internal/analysis/frozen"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/lintkit/linttest"
)

func TestFrozen(t *testing.T) {
	linttest.Run(t, "testdata/src/fix", []*lintkit.Analyzer{frozen.Analyzer})
}

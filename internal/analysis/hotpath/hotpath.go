// Package hotpath implements the pdede-lint analyzer for `//pdede:hot`
// functions.
//
// The PR 3 performance work rebuilt the per-branch simulation path —
// Lookup/probe/Update with their one-shot probe memos and packed
// sentinel-tag scan arrays — to run allocation-free: the whole 102-app
// suite lives inside these few functions. A single innocent-looking edit
// (a defer, a closure, an append, passing a concrete value to an
// interface parameter) silently reintroduces per-branch allocations or
// dynamic dispatch and costs double-digit percentages of records/sec,
// which the pdede-bench gate only notices after the fact.
//
// Marking a function with the `//pdede:hot` directive in its doc comment
// makes those edits compile-time errors of the lint suite. Inside a hot
// function the analyzer forbids:
//
//   - defer statements (forced frame bookkeeping on every call);
//   - function literals (closure allocation, inhibits inlining);
//   - append (growth ⇒ allocation; hot structures are pre-sized);
//   - conversions of concrete values to interface types, explicit or
//     implicit (boxing allocates for non-pointer values and adds dynamic
//     dispatch). Calling a method *through* an existing interface value
//     (e.g. the replacement-policy vtable) stays legal: it does not box.
//
// The contract is interprocedural: a hot function's budget is spent by
// everything it calls, so the same rules apply to every in-package function
// reachable from a `//pdede:hot` root through flowkit's class-hierarchy
// call graph — static calls descend into their callee's body, interface
// dispatch descends into every in-package concrete method that may be the
// target. A helper that only a cold path reaches is untouched; the moment a
// hot root can reach it, its defers and appends are hot-path defers and
// appends.
//
// Escapes: `//pdede:hotpath-ok <reason>` on a function's doc comment takes
// the whole function (and everything only it reaches) out of the closure —
// for deliberately cold carve-outs like corruption error construction. On a
// call line it prunes that one edge; on an offending line inside a reached
// function it suppresses that single finding.
//
// The directive is a contract, not a heuristic: annotate the functions the
// profiler shows hot, and the analyzer keeps them — and their callees —
// that way.
package hotpath

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/analysis/flowkit"
	"repro/internal/analysis/lintkit"
)

// Directive marks a function as hot-path in its doc comment.
const Directive = "hot"

// EscapeDirective prunes a function, call edge, or single finding from the
// hot closure.
const EscapeDirective = "hotpath-ok"

// Analyzer is the hot-path check.
var Analyzer = &lintkit.Analyzer{
	Name: "hotpath",
	Doc: "forbid defer, closures, append and interface boxing in functions " +
		"marked //pdede:hot and everything they reach through the in-package call graph",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	cg := flowkit.BuildCallGraph(pass.Files, pass.Pkg, pass.TypesInfo)

	// Roots: every declared function carrying //pdede:hot.
	var roots []*types.Func
	for fn, fd := range cg.Decls {
		if pass.FuncHasDirective(cg.File(fn), fd, Directive) {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })

	opts := flowkit.ReachOpts{
		SkipFunc: func(fn *types.Func) bool {
			return pass.FuncHasDirective(cg.File(fn), cg.Decls[fn], EscapeDirective)
		},
		SkipCall: func(from *types.Func, c flowkit.Call) bool {
			return pass.NodeHasDirective(cg.File(from), c.Expr, EscapeDirective)
		},
	}

	// Walk per root in sorted order so every reached function is checked
	// exactly once and attributed deterministically to the first root that
	// reaches it.
	checked := make(map[*types.Func]bool)
	for _, root := range roots {
		reach := cg.ReachableWith([]*types.Func{root}, opts)
		var fns []*types.Func
		for fn := range reach {
			if !checked[fn] {
				checked[fn] = true
				fns = append(fns, fn)
			}
		}
		sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
		for _, fn := range fns {
			c := &checker{
				pass: pass,
				file: cg.File(fn),
				name: fn.Name(),
			}
			if fn != root {
				c.via = root.Name()
			}
			c.check(cg.Decls[fn])
		}
	}
	return nil
}

// checker applies the hot-path rules to one function body. For a root (via
// == "") diagnostics keep the original intraprocedural wording; for a
// reached callee they name the hot root whose closure pulled it in.
type checker struct {
	pass *lintkit.Pass
	file *ast.File
	name string
	via  string
}

// reportf emits one finding unless the offending line carries the escape
// directive. where/what format: "defer", "frame bookkeeping on the
// per-branch path".
func (c *checker) reportf(node ast.Node, format string, args ...any) {
	if c.pass.NodeHasDirective(c.file, node, EscapeDirective) {
		return
	}
	c.pass.Reportf(node.Pos(), format, args...)
}

// ctx renders the function context for diagnostics: the original "//pdede:hot
// function F" for roots, "function F (on the //pdede:hot path via R)" for
// reached callees.
func (c *checker) ctx() string {
	if c.via == "" {
		return "//pdede:hot function " + c.name
	}
	return "function " + c.name + " (on the //pdede:hot path via " + c.via + ")"
}

func (c *checker) check(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			c.reportf(n, "defer in %s: frame bookkeeping on the per-branch path", c.ctx())
		case *ast.GoStmt:
			c.reportf(n, "go statement in %s: goroutine launch on the per-branch path", c.ctx())
		case *ast.FuncLit:
			c.reportf(n, "closure in %s: allocates and inhibits inlining", c.ctx())
			return false // its body is not part of the hot frame
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.ReturnStmt:
			c.checkReturn(fn, n)
		case *ast.ValueSpec:
			c.checkValueSpec(n)
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr) {
	pass := c.pass
	// Builtin append.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				c.reportf(call, "append in %s: growth allocates; pre-size the structure", c.ctx())
			}
			return
		}
	}
	// Explicit conversion to an interface type: T(x) with T an interface.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if isInterface(tv.Type) && len(call.Args) == 1 && boxes(pass, call.Args[0]) {
			c.reportf(call, "conversion to interface %s in %s boxes its operand", types.TypeString(tv.Type, nil), c.ctx())
		}
		return
	}
	// Implicit conversions at call boundaries: concrete argument, interface
	// parameter.
	sigT := pass.TypesInfo.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // []T passed whole: no boxing
				if i == params.Len()-1 {
					pt = nil // the slice itself
				}
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && isInterface(pt) && boxes(pass, arg) {
			c.reportf(arg, "argument %d of call in %s is boxed into interface %s", i, c.ctx(), types.TypeString(pt, nil))
		}
	}
}

func (c *checker) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, l := range as.Lhs {
		lt := c.pass.TypesInfo.TypeOf(l)
		if lt != nil && isInterface(lt) && boxes(c.pass, as.Rhs[i]) {
			c.reportf(as.Rhs[i], "assignment boxes a concrete value into interface %s in %s", types.TypeString(lt, nil), c.ctx())
		}
	}
}

func (c *checker) checkReturn(fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	if fn.Type.Results == nil {
		return
	}
	var resultTypes []types.Type
	for _, f := range fn.Type.Results.List {
		t := c.pass.TypesInfo.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return
	}
	for i, r := range ret.Results {
		if resultTypes[i] != nil && isInterface(resultTypes[i]) && boxes(c.pass, r) {
			c.reportf(r, "return boxes a concrete value into interface %s in %s", types.TypeString(resultTypes[i], nil), c.ctx())
		}
	}
}

func (c *checker) checkValueSpec(vs *ast.ValueSpec) {
	if vs.Type == nil {
		return
	}
	t := c.pass.TypesInfo.TypeOf(vs.Type)
	if t == nil || !isInterface(t) {
		return
	}
	for _, v := range vs.Values {
		if boxes(c.pass, v) {
			c.reportf(v, "var declaration boxes a concrete value into interface %s in %s", types.TypeString(t, nil), c.ctx())
		}
	}
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether expr has a concrete (non-interface, non-nil) type,
// i.e. using it as an interface value requires a conversion.
func boxes(pass *lintkit.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	b, isBasic := tv.Type.Underlying().(*types.Basic)
	if isBasic && b.Kind() == types.UntypedNil {
		return false
	}
	return !isInterface(tv.Type)
}

// Package hotpath implements the pdede-lint analyzer for `//pdede:hot`
// functions.
//
// The PR 3 performance work rebuilt the per-branch simulation path —
// Lookup/probe/Update with their one-shot probe memos and packed
// sentinel-tag scan arrays — to run allocation-free: the whole 102-app
// suite lives inside these few functions. A single innocent-looking edit
// (a defer, a closure, an append, passing a concrete value to an
// interface parameter) silently reintroduces per-branch allocations or
// dynamic dispatch and costs double-digit percentages of records/sec,
// which the pdede-bench gate only notices after the fact.
//
// Marking a function with the `//pdede:hot` directive in its doc comment
// makes those edits compile-time errors of the lint suite. Inside a hot
// function the analyzer forbids:
//
//   - defer statements (forced frame bookkeeping on every call);
//   - function literals (closure allocation, inhibits inlining);
//   - append (growth ⇒ allocation; hot structures are pre-sized);
//   - conversions of concrete values to interface types, explicit or
//     implicit (boxing allocates for non-pointer values and adds dynamic
//     dispatch). Calling a method *through* an existing interface value
//     (e.g. the replacement-policy vtable) stays legal: it does not box.
//
// The directive is a contract, not a heuristic: annotate the functions the
// profiler shows hot, and the analyzer keeps them that way.
package hotpath

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// Directive marks a function as hot-path in its doc comment.
const Directive = "hot"

// Analyzer is the hot-path check.
var Analyzer = &lintkit.Analyzer{
	Name: "hotpath",
	Doc: "forbid defer, closures, append and interface boxing inside functions " +
		"marked //pdede:hot (the per-branch simulation fast path)",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !pass.FuncHasDirective(file, fn, Directive) {
				continue
			}
			check(pass, fn)
		}
	}
	return nil
}

func check(pass *lintkit.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in //pdede:hot function %s: frame bookkeeping on the per-branch path", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in //pdede:hot function %s: goroutine launch on the per-branch path", name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in //pdede:hot function %s: allocates and inhibits inlining", name)
			return false // its body is not part of the hot frame
		case *ast.CallExpr:
			checkCall(pass, name, n)
		case *ast.AssignStmt:
			checkAssign(pass, name, n)
		case *ast.ReturnStmt:
			checkReturn(pass, name, fn, n)
		case *ast.ValueSpec:
			checkValueSpec(pass, name, n)
		}
		return true
	})
}

func checkCall(pass *lintkit.Pass, name string, call *ast.CallExpr) {
	// Builtin append.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				pass.Reportf(call.Pos(), "append in //pdede:hot function %s: growth allocates; pre-size the structure", name)
			}
			return
		}
	}
	// Explicit conversion to an interface type: T(x) with T an interface.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if isInterface(tv.Type) && len(call.Args) == 1 && boxes(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface %s in //pdede:hot function %s boxes its operand", types.TypeString(tv.Type, nil), name)
		}
		return
	}
	// Implicit conversions at call boundaries: concrete argument, interface
	// parameter.
	sigT := pass.TypesInfo.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // []T passed whole: no boxing
				if i == params.Len()-1 {
					pt = nil // the slice itself
				}
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && isInterface(pt) && boxes(pass, arg) {
			pass.Reportf(arg.Pos(), "argument %d of call in //pdede:hot function %s is boxed into interface %s", i, name, types.TypeString(pt, nil))
		}
	}
}

func checkAssign(pass *lintkit.Pass, name string, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, l := range as.Lhs {
		lt := pass.TypesInfo.TypeOf(l)
		if lt != nil && isInterface(lt) && boxes(pass, as.Rhs[i]) {
			pass.Reportf(as.Rhs[i].Pos(), "assignment boxes a concrete value into interface %s in //pdede:hot function %s", types.TypeString(lt, nil), name)
		}
	}
}

func checkReturn(pass *lintkit.Pass, name string, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	if fn.Type.Results == nil {
		return
	}
	var resultTypes []types.Type
	for _, f := range fn.Type.Results.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return
	}
	for i, r := range ret.Results {
		if resultTypes[i] != nil && isInterface(resultTypes[i]) && boxes(pass, r) {
			pass.Reportf(r.Pos(), "return boxes a concrete value into interface %s in //pdede:hot function %s", types.TypeString(resultTypes[i], nil), name)
		}
	}
}

func checkValueSpec(pass *lintkit.Pass, name string, vs *ast.ValueSpec) {
	if vs.Type == nil {
		return
	}
	t := pass.TypesInfo.TypeOf(vs.Type)
	if t == nil || !isInterface(t) {
		return
	}
	for _, v := range vs.Values {
		if boxes(pass, v) {
			pass.Reportf(v.Pos(), "var declaration boxes a concrete value into interface %s in //pdede:hot function %s", types.TypeString(t, nil), name)
		}
	}
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether expr has a concrete (non-interface, non-nil) type,
// i.e. using it as an interface value requires a conversion.
func boxes(pass *lintkit.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	b, isBasic := tv.Type.Underlying().(*types.Basic)
	if isBasic && b.Kind() == types.UntypedNil {
		return false
	}
	return !isInterface(tv.Type)
}

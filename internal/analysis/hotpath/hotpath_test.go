package hotpath_test

import (
	"testing"

	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/lintkit/linttest"
)

func TestHotpath(t *testing.T) {
	linttest.Run(t, "testdata/src/fix", []*lintkit.Analyzer{hotpath.Analyzer})
}

// Interprocedural fixtures: the //pdede:hot contract follows the
// in-package call graph, so violations inside plain helpers are findings
// the moment a hot root can reach them.
package btb

func spill() {}

// helperDefer is cold on its own; Root1 makes it hot.
func helperDefer() {
	defer spill() // want `defer in function helperDefer \(on the //pdede:hot path via Root1\)`
}

// helperBox is two edges away from the root.
func helperBox(x int) {
	sink(x) // want `argument 0 of call in function helperBox \(on the //pdede:hot path via Root1\) is boxed into interface`
}

func middle(x int) {
	helperBox(x)
}

//pdede:hot
func Root1(x int) {
	helperDefer()
	middle(x)
}

// prunedCold carries the escape directive: its defer — and everything only
// it reaches — is out of the closure.
//
//pdede:hotpath-ok corruption error construction, cold by contract
func prunedCold() {
	defer spill() // ok: the whole function is pruned
	onlyViaPruned()
}

func onlyViaPruned() {
	defer spill() // ok: only reachable through the pruned function
}

// edgeTarget is reached through a call edge annotated away.
func edgeTarget() {
	defer spill() // ok: the only inbound edge is pruned
}

// lineEscape has one deliberate violation suppressed in place.
func lineEscape(x int) {
	//pdede:hotpath-ok deliberate one-off boxing on the error path
	sink(x)
	helperDefer() // already claimed by Root1: reported once, not per root
}

//pdede:hot
func Root2(x int) {
	prunedCold()
	//pdede:hotpath-ok cold slow-path call
	edgeTarget()
	lineEscape(x)
}

// scanner is an in-package interface: dynamic dispatch descends into every
// concrete in-package method that may satisfy it (class-hierarchy
// analysis).
type scanner interface{ Scan(n int) int }

type packedScan struct{ tags []int }

func (p *packedScan) Scan(n int) int {
	p.tags = append(p.tags, n) // want `append in function Scan \(on the //pdede:hot path via RootDyn\)`
	return len(p.tags)
}

//pdede:hot
func RootDyn(s scanner, n int) int {
	return s.Scan(n) // the call itself is legal; the CHA target body is checked
}

// Package btb is a hotpath fixture: only functions carrying the
// //pdede:hot directive in their doc comment are checked.
package btb

type policy interface{ Touch(w int) }

func trace() {}

func each(f func(int)) { _ = f }

func sink(v interface{}) { _ = v }

//pdede:hot
func HotDefer() {
	defer trace() // want `defer in //pdede:hot function HotDefer`
}

//pdede:hot
func HotGo() {
	go trace() // want `go statement in //pdede:hot function HotGo`
}

//pdede:hot
func HotClosure() {
	each(func(int) {}) // want `closure in //pdede:hot function HotClosure`
}

//pdede:hot
func HotAppend(xs []int, v int) []int {
	xs = append(xs, v) // want `append in //pdede:hot function HotAppend`
	return xs
}

//pdede:hot
func HotArgBox(x int) {
	sink(x) // want `boxed into interface`
}

//pdede:hot
func HotAssignBox(x int) {
	var i interface{}
	i = x // want `assignment boxes a concrete value`
	_ = i
}

//pdede:hot
func HotVarBox(x int) {
	var i interface{} = x // want `var declaration boxes a concrete value`
	_ = i
}

//pdede:hot
func HotConvBox(x int) interface{} {
	return interface{}(x) // want `conversion to interface`
}

//pdede:hot
func HotReturnBox(x int) interface{} {
	return x // want `return boxes a concrete value`
}

// HotClean exercises everything the hot path is allowed to do: index
// arithmetic, calls through existing interface values, nil interfaces.
//
//pdede:hot
func HotClean(p policy, xs []int, w int) int {
	p.Touch(w) // ok: call through an existing interface value does not box
	sink(nil)  // ok: nil is not boxed
	xs[0] = w  // ok
	return xs[w%len(xs)]
}

// cold is unmarked: the same constructs pass untouched.
func cold(xs []int) []int {
	defer trace()
	sink(1)
	return append(xs, 1)
}

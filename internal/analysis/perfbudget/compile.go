package perfbudget

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// DiagFlags is the -gcflags value that makes the compiler narrate every
// decision the contracts pin: -m=2 for escape analysis and inlining (with
// costs and refusal reasons), the check_bce debug key for every bounds
// check SSA failed to eliminate.
const DiagFlags = "-m=2 -d=ssa/check_bce/debug=1"

// Compile runs the diagnostic build over the module-relative package dirs
// and parses the compiler's stderr. The build cache replays diagnostics on
// hits, so repeated runs cost one `go build` of already-compiled packages.
// A failing build (the tree does not compile) is an operational error, not
// a finding.
func Compile(moduleDir string, pkgs []string) (*Diagnostics, error) {
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("perfbudget: no packages to compile")
	}
	args := []string{"build", "-gcflags=" + DiagFlags}
	for _, p := range pkgs {
		args = append(args, "./"+filepath.ToSlash(p))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("perfbudget: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return Parse(&stderr)
}

// GoVersion reports the toolchain the gate compiles with ("go1.24.0"),
// asking the same `go` binary Compile shells out to — not the one the gate
// itself was built by.
func GoVersion(moduleDir string) (string, error) {
	cmd := exec.Command("go", "env", "GOVERSION")
	cmd.Dir = moduleDir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("perfbudget: go env GOVERSION: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// MinorVersion trims a toolchain version to its minor release ("go1.24.0"
// → "go1.24"): the diagnostic formats and counts are stable within a minor
// series, which is the granularity the budget file records.
func MinorVersion(v string) string {
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return parts[0] + "." + parts[1]
}

// listedPackage is the subset of `go list -json` output the scanner needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

// listPackages resolves the module-relative package dirs to their compiled
// (non-test, build-constraint-filtered) file sets.
func listPackages(moduleDir string, pkgs []string) (map[string]*listedPackage, error) {
	args := []string{"list", "-json=ImportPath,Dir,GoFiles,Error", "--"}
	for _, p := range pkgs {
		args = append(args, "./"+filepath.ToSlash(p))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("perfbudget: go list: %v\n%s", err, stderr.String())
	}
	byDir := make(map[string]*listedPackage, len(pkgs))
	dec := json.NewDecoder(bytes.NewReader(out))
	i := 0
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("perfbudget: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("perfbudget: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if i >= len(pkgs) {
			return nil, fmt.Errorf("perfbudget: go list returned more packages than requested")
		}
		// go list preserves argument order, so the i-th record is pkgs[i].
		byDir[pkgs[i]] = &lp
		i++
	}
	if i != len(pkgs) {
		return nil, fmt.Errorf("perfbudget: go list returned %d packages, want %d", i, len(pkgs))
	}
	return byDir, nil
}

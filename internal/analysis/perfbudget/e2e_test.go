package perfbudget_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/lintkit/linttest"
	"repro/internal/analysis/perfbudget"
)

// cleanSeed is a module whose contracts all hold: the annotated functions
// allocate nothing, keep bounds checks elided, and inline.
const cleanSeed = `package btb

// Sum is the hot accumulation kernel.
//
//pdede:noalloc
//pdede:nobce
func Sum(xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	return t
}

// Mask is a tiny hot helper.
//
//pdede:inline
//pdede:noalloc
func Mask(v uint64, bits uint) uint64 {
	return v & (1<<bits - 1)
}
`

// corruptSeed injects one violation per contract: Sum's returned pointer
// moves a local to the heap (noalloc), the unhinted index keeps its bounds
// check (nobce), and the defer blocks inlining (inline).
const corruptSeed = `package btb

var sink *int

// Sum leaks a local.
//
//pdede:noalloc
//pdede:nobce
func Sum(xs []int, idx []int) int {
	t := 0
	for _, i := range idx {
		t += xs[i]
	}
	sink = &t
	return t
}

// Mask defers, so it cannot inline.
//
//pdede:inline
func Mask(v uint64, bits uint) uint64 {
	defer func() {}()
	return v & (1<<bits - 1)
}
`

func runGate(t *testing.T, src string) []perfbudget.Finding {
	t.Helper()
	dir := linttest.WriteModule(t, map[string]string{
		"go.mod":              "module fix\n\ngo 1.23\n",
		"internal/btb/btb.go": src,
	})
	pkgs := []string{"internal/btb"}
	srcs, err := perfbudget.ScanPackages(dir, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := perfbudget.Compile(dir, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	budget := perfbudget.UpdateBudget(diags, pkgs, "go1.24.0")
	// The regenerated budget always matches the measured counts, so any
	// finding below is a directive-contract violation.
	return perfbudget.Check(diags, srcs, budget, perfbudget.CheckOptions{BudgetFile: "PERF_BUDGET.json"})
}

// TestGateCleanModule proves a conforming module produces zero findings:
// the directives and the diagnostic build agree end to end.
func TestGateCleanModule(t *testing.T) {
	if got := runGate(t, cleanSeed); len(got) != 0 {
		t.Errorf("clean module: findings = %+v", got)
	}
}

// TestGateCorruptModule proves each injected violation surfaces as exactly
// the right contract finding, anchored in the seeded file.
func TestGateCorruptModule(t *testing.T) {
	got := runGate(t, corruptSeed)
	want := map[string]string{
		perfbudget.DirNoalloc: "heap escape in //pdede:noalloc function Sum",
		perfbudget.DirNobce:   "unelided bounds check in //pdede:nobce function Sum",
		perfbudget.DirInline:  "//pdede:inline function Mask does not inline",
	}
	found := map[string]bool{}
	for _, f := range got {
		sub, ok := want[f.Check]
		if !ok {
			t.Errorf("unexpected check %q: %+v", f.Check, f)
			continue
		}
		if !strings.Contains(f.Message, sub) {
			t.Errorf("finding %q = %q, want substring %q", f.Check, f.Message, sub)
		}
		if f.File != "internal/btb/btb.go" {
			t.Errorf("finding %q anchors at %q, want the seeded file", f.Check, f.File)
		}
		found[f.Check] = true
	}
	for check := range want {
		if !found[check] {
			t.Errorf("no %q finding surfaced; got %+v", check, got)
		}
	}
}

// TestScanPackages pins the source model: module-relative slash paths,
// compiler-style names, directive sets, and test-file exclusion.
func TestScanPackages(t *testing.T) {
	dir := linttest.WriteModule(t, map[string]string{
		"go.mod": "module fix\n\ngo 1.23\n",
		"internal/btb/btb.go": `package btb

type Reader struct{ off int }

// Next advances.
//
//pdede:noalloc
//pdede:nobce
func (r *Reader) Next() int { r.off++; return r.off }

// Peek looks ahead.
//
//pdede:inline
func (r Reader) Peek() int { return r.off }

func plain() {}
`,
		"internal/btb/btb_test.go": `package btb

//pdede:noalloc
func helperInTest() {}
`,
	})
	srcs, err := perfbudget.ScanPackages(dir, []string{"internal/btb"})
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 1 || srcs[0].Pkg != "internal/btb" {
		t.Fatalf("srcs = %+v", srcs)
	}
	ps := srcs[0]
	if len(ps.Files) != 1 || ps.Files[0] != "internal/btb/btb.go" {
		t.Errorf("Files = %v, want only the non-test file", ps.Files)
	}
	if len(ps.Funcs) != 2 {
		t.Fatalf("Funcs = %+v, want the two annotated functions", ps.Funcs)
	}
	next, peek := ps.Funcs[0], ps.Funcs[1]
	if next.Name != "(*Reader).Next" || len(next.Directives) != 2 {
		t.Errorf("Next = %+v", next)
	}
	if peek.Name != "Reader.Peek" || len(peek.Directives) != 1 || peek.Directives[0] != perfbudget.DirInline {
		t.Errorf("Peek = %+v", peek)
	}
	if next.File != "internal/btb/btb.go" || next.DeclLine == 0 || next.EndLine < next.StartLine {
		t.Errorf("Next position = %+v", next)
	}
}

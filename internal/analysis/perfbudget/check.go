package perfbudget

import (
	"fmt"
	"sort"
)

// Finding is one contract violation. Check names identify the violated
// contract in diagnostics and the gate's -json output: "noalloc",
// "inline", "nobce" for directive contracts, "budget" for cap overruns,
// "drift" for a stale budget file.
type Finding struct {
	File    string // source file for directive findings, the budget file for budget/drift
	Line    int
	Col     int
	Check   string
	Message string
}

// CheckOptions configure one reconciliation.
type CheckOptions struct {
	// BudgetFile anchors budget/drift findings (the path the user should
	// edit or regenerate).
	BudgetFile string
	// Drift makes a budget whose caps no longer equal the measured counts
	// a finding in either direction: caps must ratchet down with the code,
	// not linger as slack a regression could hide in.
	Drift bool
}

// Check reconciles a diagnostic build against the declared contracts: each
// annotated function's directives, then the per-package caps. Findings
// come back sorted (file, line, col, check).
func Check(diags *Diagnostics, srcs []*PackageSource, budget *Budget, opt CheckOptions) []Finding {
	var out []Finding
	for _, ps := range srcs {
		for _, fn := range ps.Funcs {
			out = append(out, checkFunc(diags, fn)...)
		}
	}
	out = append(out, checkBudget(diags, budget, opt)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return out
}

// checkFunc judges one annotated function against the sites and decisions
// the compiler reported inside it.
func checkFunc(diags *Diagnostics, fn Function) []Finding {
	var out []Finding
	inBody := func(s Site) bool {
		return s.File == fn.File && s.Line >= fn.StartLine && s.Line <= fn.EndLine
	}
	for _, dir := range fn.Directives {
		switch dir {
		case DirNoalloc:
			for _, s := range diags.Escapes {
				if inBody(s) {
					out = append(out, Finding{
						File: s.File, Line: s.Line, Col: s.Col, Check: DirNoalloc,
						Message: fmt.Sprintf("heap escape in //pdede:noalloc function %s: %s", fn.Name, s.Text),
					})
				}
			}
		case DirNobce:
			for _, s := range diags.Bounds {
				if inBody(s) {
					out = append(out, Finding{
						File: s.File, Line: s.Line, Col: s.Col, Check: DirNobce,
						Message: fmt.Sprintf("unelided bounds check in //pdede:nobce function %s: %s", fn.Name, s.Text),
					})
				}
			}
		case DirInline:
			out = append(out, checkInline(diags, fn)...)
		}
	}
	return out
}

// checkInline matches the function to its inlining decision by declaration
// position (the compiler anchors decisions at the func keyword's line).
func checkInline(diags *Diagnostics, fn Function) []Finding {
	for _, in := range diags.Inlines {
		if in.File != fn.File || in.Line != fn.DeclLine {
			continue
		}
		if in.Can {
			return nil
		}
		return []Finding{{
			File: in.File, Line: in.Line, Col: in.Col, Check: DirInline,
			Message: fmt.Sprintf("//pdede:inline function %s does not inline: %s", fn.Name, in.Reason),
		}}
	}
	return []Finding{{
		File: fn.File, Line: fn.DeclLine, Col: 1, Check: DirInline,
		Message: fmt.Sprintf("no inlining decision recorded for //pdede:inline function %s (diagnostic build did not cover its file?)", fn.Name),
	}}
}

// checkBudget compares measured per-package counts against the caps.
func checkBudget(diags *Diagnostics, budget *Budget, opt CheckOptions) []Finding {
	var out []Finding
	pkgs := budget.PackageList()
	counts := Counts(diags, pkgs)
	for _, pkg := range pkgs {
		cap, got := budget.Packages[pkg], counts[pkg]
		report := func(kind string, gotN, capN int) {
			switch {
			case gotN > capN:
				out = append(out, Finding{
					File: opt.BudgetFile, Check: "budget",
					Message: fmt.Sprintf("package %s: %d %s exceed the budgeted %d (fix the regression, or raise the cap deliberately and note why)",
						pkg, gotN, kind, capN),
				})
			case gotN < capN && opt.Drift:
				out = append(out, Finding{
					File: opt.BudgetFile, Check: "drift",
					Message: fmt.Sprintf("package %s: %d %s measured but %d budgeted — stale caps hide future regressions (run -update-budget and commit)",
						pkg, gotN, kind, capN),
				})
			}
		}
		report("heap-escape sites", got.Escapes, cap.Escapes)
		report("residual bounds checks", got.BoundsChecks, cap.BoundsChecks)
	}
	return out
}

// UpdateBudget builds the budget document for the measured counts.
func UpdateBudget(diags *Diagnostics, pkgs []string, goVersion string) *Budget {
	return &Budget{
		Schema:   BudgetSchema,
		Go:       MinorVersion(goVersion),
		Packages: Counts(diags, pkgs),
	}
}

func sortStrings(s []string) { sort.Strings(s) }

package perfbudget

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// parseFixture parses one committed diagnostic transcript.
func parseFixture(t *testing.T, name string) *Diagnostics {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestParseFixture pins the model extracted from the go1.24 transcript:
// every escape site exactly once (the -m=2 verbose form repeats each site
// with flow traces), both bounds-check variants, and all six inlining
// decisions with costs and refusal reasons.
func TestParseFixture(t *testing.T) {
	d := parseFixture(t, "diag_go1.24.txt")

	wantEscapes := []Site{
		{File: "pkg/pkg.go", Line: 5, Col: 11, Text: "make([]int, n) escapes to heap"},
		{File: "pkg/pkg.go", Line: 25, Col: 40, Text: "v escapes to heap"},
		{File: "pkg/pkg.go", Line: 29, Col: 2, Text: "moved to heap: x"},
	}
	if !reflect.DeepEqual(d.Escapes, wantEscapes) {
		t.Errorf("escapes = %+v, want %+v", d.Escapes, wantEscapes)
	}

	wantBounds := []Site{
		{File: "pkg/pkg.go", Line: 16, Col: 10, Text: "Found IsInBounds"},
		{File: "pkg/pkg.go", Line: 41, Col: 12, Text: "Found IsSliceInBounds"},
	}
	if !reflect.DeepEqual(d.Bounds, wantBounds) {
		t.Errorf("bounds = %+v, want %+v", d.Bounds, wantBounds)
	}

	if len(d.Inlines) != 6 {
		t.Fatalf("got %d inline decisions, want 6: %+v", len(d.Inlines), d.Inlines)
	}
	grow := d.Inlines[0]
	if grow.Name != "Grow" || !grow.Can || grow.Cost != 18 || grow.Line != 4 {
		t.Errorf("Grow decision = %+v", grow)
	}
	big := d.Inlines[5]
	if big.Name != "Big" || big.Can || big.Reason != "unhandled op DEFER" {
		t.Errorf("Big decision = %+v", big)
	}
}

// TestParseToolchainStability proves the parser extracts the same model
// from the go1.23 and go1.24 transcript formats, modulo inline costs
// (which legitimately drift across compiler releases).
func TestParseToolchainStability(t *testing.T) {
	old := parseFixture(t, "diag_go1.23.txt")
	cur := parseFixture(t, "diag_go1.24.txt")

	if !reflect.DeepEqual(old.Escapes, cur.Escapes) {
		t.Errorf("escape sites differ across toolchains:\n go1.23: %+v\n go1.24: %+v", old.Escapes, cur.Escapes)
	}
	if !reflect.DeepEqual(old.Bounds, cur.Bounds) {
		t.Errorf("bounds sites differ across toolchains:\n go1.23: %+v\n go1.24: %+v", old.Bounds, cur.Bounds)
	}
	norm := func(ins []Inline) []Inline {
		out := make([]Inline, len(ins))
		copy(out, ins)
		for i := range out {
			out[i].Cost = 0
		}
		return out
	}
	if !reflect.DeepEqual(norm(old.Inlines), norm(cur.Inlines)) {
		t.Errorf("inline decisions differ across toolchains (modulo cost):\n go1.23: %+v\n go1.24: %+v", old.Inlines, cur.Inlines)
	}
}

// TestParseClassification exercises the line classifier edge cases
// directly.
func TestParseClassification(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		escapes int
		bounds  int
		inlines int
	}{
		{"empty", "", 0, 0, 0},
		{"header only", "# repro/internal/btb\n", 0, 0, 0},
		{"verbose form not counted", "a.go:1:2: x escapes to heap:\na.go:1:2:   flow: {heap} = &x:\n", 0, 0, 0},
		{"summary after verbose counted once", "a.go:1:2: x escapes to heap:\na.go:1:2:   flow: {heap} = &x:\na.go:1:2: x escapes to heap\n", 1, 0, 0},
		{"duplicate summary deduped", "a.go:1:2: moved to heap: x\na.go:1:2: moved to heap: x\n", 1, 0, 0},
		{"does not escape ignored", "a.go:3:4: buf does not escape\n", 0, 0, 0},
		{"both bce ops", "a.go:5:6: Found IsInBounds\na.go:7:8: Found IsSliceInBounds\n", 0, 2, 0},
		{"can inline without cost", "a.go:9:6: can inline F\n", 0, 0, 1},
		{"unknown lines skipped", "a.go:1:1: leaking param: p\nnot a diagnostic at all\n", 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Parse(strings.NewReader(tc.in))
			if err != nil {
				t.Fatal(err)
			}
			if len(d.Escapes) != tc.escapes || len(d.Bounds) != tc.bounds || len(d.Inlines) != tc.inlines {
				t.Errorf("got %d escapes, %d bounds, %d inlines; want %d, %d, %d",
					len(d.Escapes), len(d.Bounds), len(d.Inlines), tc.escapes, tc.bounds, tc.inlines)
			}
		})
	}
}

func TestMinorVersion(t *testing.T) {
	cases := map[string]string{
		"go1.24.0":   "go1.24",
		"go1.23.5":   "go1.23",
		"go1.24":     "go1.24",
		"devel":      "devel",
		"go1.25rc1":  "go1.25rc1",
		"go1.25.0.1": "go1.25",
	}
	for in, want := range cases {
		if got := MinorVersion(in); got != want {
			t.Errorf("MinorVersion(%q) = %q, want %q", in, got, want)
		}
	}
}

package perfbudget

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Function directives: each names one compiler-witnessed property of the
// annotated function.
const (
	// DirNoalloc: no heap-escape site anywhere in the body.
	DirNoalloc = "noalloc"
	// DirInline: the compiler must decide "can inline".
	DirInline = "inline"
	// DirNobce: no residual bounds check in the body.
	DirNobce = "nobce"
)

// directivePrefix mirrors lintkit.DirectivePrefix; perfbudget parses
// fixture modules standalone (no type-checking), so it keeps its own copy.
const directivePrefix = "//pdede:"

// Function is one annotated declaration: where it lives, which contracts
// it declares, and the body range compiler sites are attributed to.
type Function struct {
	Name       string // compiler rendering: F, T.M or (*T).M
	File       string // module-relative, slash-separated
	DeclLine   int    // line of the func keyword — inline decisions anchor here
	StartLine  int
	EndLine    int
	Directives []string // subset of {noalloc, inline, nobce}, in source order
}

// PackageSource is the scanned source of one budgeted package.
type PackageSource struct {
	Pkg   string   // module-relative package dir, the budget key
	Files []string // module-relative compiled files (tests excluded)
	Funcs []Function
}

// ScanPackages parses the compiled files of each budgeted package and
// collects every function declaring a perfbudget directive. Only files the
// build actually compiles are scanned (go list's GoFiles), so a directive
// in a build-constraint-excluded file can never produce a phantom
// "no decision recorded" finding.
func ScanPackages(moduleDir string, pkgs []string) ([]*PackageSource, error) {
	listed, err := listPackages(moduleDir, pkgs)
	if err != nil {
		return nil, err
	}
	// go list reports absolute Dirs; anchor Rel against the same form.
	absModule, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, fmt.Errorf("perfbudget: %w", err)
	}
	fset := token.NewFileSet()
	var out []*PackageSource
	for _, pkg := range pkgs {
		lp := listed[pkg]
		ps := &PackageSource{Pkg: pkg}
		for _, name := range lp.GoFiles {
			abs := name
			if !filepath.IsAbs(abs) {
				abs = filepath.Join(lp.Dir, name)
			}
			rel, err := filepath.Rel(absModule, abs)
			if err != nil {
				return nil, fmt.Errorf("perfbudget: %s outside module %s: %w", abs, absModule, err)
			}
			rel = filepath.ToSlash(rel)
			ps.Files = append(ps.Files, rel)
			f, err := parser.ParseFile(fset, abs, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("perfbudget: %w", err)
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				dirs := funcDirectives(fd)
				if len(dirs) == 0 {
					continue
				}
				ps.Funcs = append(ps.Funcs, Function{
					Name:       compilerName(fd),
					File:       rel,
					DeclLine:   fset.Position(fd.Pos()).Line,
					StartLine:  fset.Position(fd.Pos()).Line,
					EndLine:    fset.Position(fd.End()).Line,
					Directives: dirs,
				})
			}
		}
		sort.Strings(ps.Files)
		out = append(out, ps)
	}
	return out, nil
}

// funcDirectives extracts the perfbudget directives from a declaration's
// doc comment.
func funcDirectives(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var dirs []string
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		name, _, _ := strings.Cut(rest, " ")
		switch name {
		case DirNoalloc, DirInline, DirNobce:
			dirs = append(dirs, name)
		}
	}
	return dirs
}

// compilerName renders a declaration the way `-m` diagnostics name it:
// plain functions as F, value-receiver methods as T.M, pointer-receiver
// methods as (*T).M.
func compilerName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		return "(*" + baseTypeName(star.X) + ")." + fd.Name.Name
	}
	return baseTypeName(t) + "." + fd.Name.Name
}

// baseTypeName renders a receiver base type, dropping type parameters
// (generic receivers are rendered with their shape by the compiler; decl
// line matching makes the name informational only).
func baseTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return baseTypeName(e.X)
	case *ast.IndexListExpr:
		return baseTypeName(e.X)
	}
	return "?"
}

// Package perfbudget makes the Go compiler's escape-analysis, inlining and
// bounds-check-elimination decisions a checked, versioned contract.
//
// The simulator's throughput rests on properties the compiler decides
// silently: whether BlockReader.NextBatch stays allocation-free, whether
// the branchless varint fast path keeps its bounds checks elided, whether
// the probe memos inline. Nothing in ordinary CI pins any of that — one
// innocent refactor sends a hot struct to the heap and the bench gate only
// fires once the regression compounds past its tolerance. This package
// runs the compiler in diagnostic mode
//
//	go build -gcflags='-m=2 -d=ssa/check_bce/debug=1' <hot packages>
//
// parses the diagnostics (heap-escape sites, inlining decisions with cost
// or refusal reason, residual bounds checks) into a structured
// per-function model, and reconciles it against two kinds of declared
// contract:
//
//   - function directives in doc comments — `//pdede:noalloc` (no
//     heap-escape site anywhere in the body), `//pdede:inline` (the
//     compiler must report "can inline"), `//pdede:nobce` (no residual
//     bounds check in the body);
//   - a committed budget file (PERF_BUDGET.json) capping the total
//     heap-escape sites and residual bounds checks per hot package, so
//     unannotated code cannot quietly regress either.
//
// The compiler replays cached diagnostics on build-cache hits, so repeated
// runs are cheap and deterministic for a fixed toolchain. Counts do drift
// across compiler releases; the budget file records the toolchain that
// generated it and the gate (cmd/pdede-perfgate) prints a notice when run
// under a different one.
package perfbudget

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// DefaultPackages is the hot-package set budgeted when no committed budget
// file exists yet (module-relative package directories).
var DefaultPackages = []string{
	"internal/btb",
	"internal/core",
	"internal/pdede",
	"internal/predictor",
	"internal/trace",
}

// Site is one compiler diagnostic anchored to a source position: a
// heap-escape site or a residual bounds check.
type Site struct {
	File string // module-relative path as printed by the compiler
	Line int
	Col  int
	Text string // e.g. "moved to heap: buf", "Found IsInBounds"
}

// Inline is one inlining decision. The compiler anchors it at the function
// declaration.
type Inline struct {
	File   string
	Line   int
	Col    int
	Name   string // as the compiler renders it, e.g. (*BlockReader).NextBatch
	Can    bool
	Cost   int    // valid when Can and the output carried a cost (-m=2)
	Reason string // valid when !Can
}

// Diagnostics is the parsed compiler output for one diagnostic build.
type Diagnostics struct {
	Escapes []Site
	Bounds  []Site
	Inlines []Inline
}

var (
	// posRe splits "file.go:line:col: message".
	posRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)
	// canRe matches both -m=1 ("can inline F") and -m=2 ("can inline F
	// with cost 76 as: ...") forms across toolchains.
	canRe = regexp.MustCompile(`^can inline (\S+)(?: with cost (\d+))?`)
	// cannotRe captures the refusal reason ("function too complex: cost
	// 902 exceeds budget 80", "unhandled op DEFER", ...).
	cannotRe = regexp.MustCompile(`^cannot inline (\S+): (.*)$`)
)

// Parse reads raw `go build` stderr and extracts the structured model. It
// tolerates the diagnostic format of every toolchain in the CI matrix (go
// 1.23 and 1.24): `# package` headers and unknown lines are skipped,
// indented flow explanations and the duplicated verbose escape form
// ("x escapes to heap:" with a trailing colon) are ignored in favor of the
// one-per-site summary lines, and inline costs are optional.
func Parse(r io.Reader) (*Diagnostics, error) {
	d := &Diagnostics{}
	seen := make(map[Site]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := posRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
			continue // indented continuation (escape flow traces)
		}
		file := m[1]
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		site := Site{File: file, Line: ln, Col: col, Text: msg}
		switch {
		case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
			if !seen[site] {
				seen[site] = true
				d.Bounds = append(d.Bounds, site)
			}
		case strings.HasPrefix(msg, "moved to heap: "),
			strings.HasSuffix(msg, " escapes to heap"):
			// The -m=2 verbose form ends in a colon and repeats per flow;
			// only the summary form (matched here) counts a site once.
			if !seen[site] {
				seen[site] = true
				d.Escapes = append(d.Escapes, site)
			}
		default:
			if cm := cannotRe.FindStringSubmatch(msg); cm != nil {
				d.Inlines = append(d.Inlines, Inline{
					File: file, Line: ln, Col: col,
					Name: cm[1], Can: false, Reason: cm[2],
				})
				break
			}
			if cm := canRe.FindStringSubmatch(msg); cm != nil {
				in := Inline{File: file, Line: ln, Col: col, Name: cm[1], Can: true}
				if cm[2] != "" {
					in.Cost, _ = strconv.Atoi(cm[2])
				}
				d.Inlines = append(d.Inlines, in)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perfbudget: reading compiler output: %w", err)
	}
	return d, nil
}

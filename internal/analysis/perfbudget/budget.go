package perfbudget

import (
	"encoding/json"
	"fmt"
	"os"
	"path"

	"repro/internal/atomicio"
)

// BudgetSchema versions the budget file format.
const BudgetSchema = 1

// PackageBudget caps one package's compiler-witnessed costs.
type PackageBudget struct {
	// Escapes caps the heap-escape sites ("moved to heap" + "escapes to
	// heap" summary lines) across the package.
	Escapes int `json:"escapes"`
	// BoundsChecks caps the residual bounds checks SSA could not
	// eliminate.
	BoundsChecks int `json:"bounds_checks"`
}

// Budget is the committed PERF_BUDGET.json document: the gate's package
// scope and per-package caps, stamped with the toolchain that generated
// the counts (they drift across compiler minor releases).
type Budget struct {
	Schema   int                      `json:"schema"`
	Go       string                   `json:"go"` // minor toolchain, e.g. "go1.24"
	Packages map[string]PackageBudget `json:"packages"`
}

// LoadBudget reads and validates a budget file.
func LoadBudget(file string) (*Budget, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, fmt.Errorf("perfbudget: %w", err)
	}
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("perfbudget: parsing %s: %w", file, err)
	}
	if b.Schema != BudgetSchema {
		return nil, fmt.Errorf("perfbudget: %s: schema %d, want %d", file, b.Schema, BudgetSchema)
	}
	if len(b.Packages) == 0 {
		return nil, fmt.Errorf("perfbudget: %s: no packages budgeted", file)
	}
	for pkg := range b.Packages {
		if pkg != path.Clean(pkg) || path.IsAbs(pkg) {
			return nil, fmt.Errorf("perfbudget: %s: package key %q is not a clean module-relative dir", file, pkg)
		}
	}
	return &b, nil
}

// Save writes the budget atomically (the atomicwrite contract: a gate run
// racing a reader must never observe a torn document). Keys marshal
// sorted, so regeneration is byte-stable for identical counts.
func (b *Budget) Save(file string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("perfbudget: %w", err)
	}
	return atomicio.WriteFile(file, append(data, '\n'), 0o644)
}

// PackageList returns the budget's package scope, sorted.
func (b *Budget) PackageList() []string {
	pkgs := make([]string, 0, len(b.Packages))
	for pkg := range b.Packages {
		pkgs = append(pkgs, pkg)
	}
	sortStrings(pkgs)
	return pkgs
}

// Counts tallies the actual per-package costs from one diagnostic build,
// attributing each site to the package whose directory prefixes its file.
func Counts(diags *Diagnostics, pkgs []string) map[string]PackageBudget {
	out := make(map[string]PackageBudget, len(pkgs))
	for _, pkg := range pkgs {
		out[pkg] = PackageBudget{}
	}
	tally := func(sites []Site, bump func(*PackageBudget)) {
		for _, s := range sites {
			pkg := path.Dir(path.Clean(s.File))
			if pb, ok := out[pkg]; ok {
				bump(&pb)
				out[pkg] = pb
			}
		}
	}
	tally(diags.Escapes, func(pb *PackageBudget) { pb.Escapes++ })
	tally(diags.Bounds, func(pb *PackageBudget) { pb.BoundsChecks++ })
	return out
}

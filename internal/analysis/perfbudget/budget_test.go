package perfbudget

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestBudgetRoundTrip(t *testing.T) {
	b := &Budget{
		Schema: BudgetSchema,
		Go:     "go1.24",
		Packages: map[string]PackageBudget{
			"internal/trace": {Escapes: 3, BoundsChecks: 7},
			"internal/btb":   {Escapes: 0, BoundsChecks: 2},
		},
	}
	file := filepath.Join(t.TempDir(), "PERF_BUDGET.json")
	if err := b.Save(file); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBudget(file)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Errorf("round trip = %+v, want %+v", got, b)
	}

	// Regeneration is byte-stable: identical counts marshal identically.
	file2 := filepath.Join(t.TempDir(), "PERF_BUDGET.json")
	if err := b.Save(file2); err != nil {
		t.Fatal(err)
	}
	d1, _ := os.ReadFile(file)
	d2, _ := os.ReadFile(file2)
	if string(d1) != string(d2) {
		t.Errorf("serialization is not byte-stable:\n%s\nvs\n%s", d1, d2)
	}

	if got := b.PackageList(); !reflect.DeepEqual(got, []string{"internal/btb", "internal/trace"}) {
		t.Errorf("PackageList() = %v", got)
	}
}

func TestLoadBudgetRejects(t *testing.T) {
	write := func(t *testing.T, content string) string {
		t.Helper()
		file := filepath.Join(t.TempDir(), "PERF_BUDGET.json")
		if err := os.WriteFile(file, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return file
	}
	cases := []struct {
		name, content, wantErr string
	}{
		{"bad json", "{", "parsing"},
		{"wrong schema", `{"schema": 99, "go": "go1.24", "packages": {"internal/btb": {}}}`, "schema 99"},
		{"no packages", `{"schema": 1, "go": "go1.24", "packages": {}}`, "no packages"},
		{"absolute key", `{"schema": 1, "go": "go1.24", "packages": {"/internal/btb": {}}}`, "not a clean module-relative dir"},
		{"unclean key", `{"schema": 1, "go": "go1.24", "packages": {"internal/../internal/btb": {}}}`, "not a clean module-relative dir"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadBudget(write(t, tc.content))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
	if _, err := LoadBudget(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file: want error")
	}
}

func TestCountsAttribution(t *testing.T) {
	diags := &Diagnostics{
		Escapes: []Site{
			{File: "internal/btb/a.go", Line: 1, Col: 1, Text: "moved to heap: x"},
			{File: "internal/btb/b.go", Line: 2, Col: 1, Text: "y escapes to heap"},
			{File: "internal/trace/c.go", Line: 3, Col: 1, Text: "moved to heap: z"},
			{File: "cmd/other/d.go", Line: 4, Col: 1, Text: "moved to heap: w"}, // outside scope
		},
		Bounds: []Site{
			{File: "internal/trace/c.go", Line: 9, Col: 1, Text: "Found IsInBounds"},
		},
	}
	got := Counts(diags, []string{"internal/btb", "internal/trace"})
	want := map[string]PackageBudget{
		"internal/btb":   {Escapes: 2},
		"internal/trace": {Escapes: 1, BoundsChecks: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Counts = %+v, want %+v", got, want)
	}
}

// TestCheckBudget covers the cap comparison: overrun fails, exact match is
// clean, slack is clean unless drift checking is on.
func TestCheckBudget(t *testing.T) {
	diags := &Diagnostics{
		Escapes: []Site{
			{File: "internal/btb/a.go", Line: 1, Col: 1, Text: "moved to heap: x"},
			{File: "internal/btb/a.go", Line: 2, Col: 1, Text: "moved to heap: y"},
		},
		Bounds: []Site{
			{File: "internal/btb/a.go", Line: 3, Col: 1, Text: "Found IsInBounds"},
		},
	}
	budget := func(esc, bce int) *Budget {
		return &Budget{Schema: 1, Go: "go1.24", Packages: map[string]PackageBudget{
			"internal/btb": {Escapes: esc, BoundsChecks: bce},
		}}
	}
	opt := CheckOptions{BudgetFile: "PERF_BUDGET.json"}

	if got := Check(diags, nil, budget(2, 1), opt); len(got) != 0 {
		t.Errorf("exact match: findings = %+v", got)
	}
	got := Check(diags, nil, budget(1, 1), opt)
	if len(got) != 1 || got[0].Check != "budget" || !strings.Contains(got[0].Message, "2 heap-escape sites exceed the budgeted 1") {
		t.Errorf("overrun: findings = %+v", got)
	}
	if got[0].File != "PERF_BUDGET.json" {
		t.Errorf("budget finding anchors at %q, want the budget file", got[0].File)
	}
	if got := Check(diags, nil, budget(5, 1), opt); len(got) != 0 {
		t.Errorf("slack without -drift: findings = %+v", got)
	}
	driftOpt := CheckOptions{BudgetFile: "PERF_BUDGET.json", Drift: true}
	got = Check(diags, nil, budget(5, 1), driftOpt)
	if len(got) != 1 || got[0].Check != "drift" || !strings.Contains(got[0].Message, "2 heap-escape sites measured but 5 budgeted") {
		t.Errorf("drift: findings = %+v", got)
	}
}

// TestCheckDirectives covers the per-function contract checks against a
// hand-built model.
func TestCheckDirectives(t *testing.T) {
	srcs := []*PackageSource{{
		Pkg:   "internal/btb",
		Files: []string{"internal/btb/a.go"},
		Funcs: []Function{
			{Name: "Clean", File: "internal/btb/a.go", DeclLine: 10, StartLine: 10, EndLine: 20, Directives: []string{DirNoalloc, DirNobce}},
			{Name: "(*T).Leaky", File: "internal/btb/a.go", DeclLine: 30, StartLine: 30, EndLine: 40, Directives: []string{DirNoalloc}},
			{Name: "Checked", File: "internal/btb/a.go", DeclLine: 50, StartLine: 50, EndLine: 60, Directives: []string{DirNobce}},
			{Name: "Hot", File: "internal/btb/a.go", DeclLine: 70, StartLine: 70, EndLine: 75, Directives: []string{DirInline}},
			{Name: "Refused", File: "internal/btb/a.go", DeclLine: 80, StartLine: 80, EndLine: 95, Directives: []string{DirInline}},
			{Name: "Uncovered", File: "internal/btb/other.go", DeclLine: 5, StartLine: 5, EndLine: 9, Directives: []string{DirInline}},
		},
	}}
	diags := &Diagnostics{
		Escapes: []Site{
			{File: "internal/btb/a.go", Line: 35, Col: 3, Text: "moved to heap: buf"},
			{File: "internal/btb/a.go", Line: 25, Col: 3, Text: "moved to heap: between"}, // between functions: attributed to neither
		},
		Bounds: []Site{
			{File: "internal/btb/a.go", Line: 55, Col: 9, Text: "Found IsInBounds"},
		},
		Inlines: []Inline{
			{File: "internal/btb/a.go", Line: 70, Col: 6, Name: "Hot", Can: true, Cost: 12},
			{File: "internal/btb/a.go", Line: 80, Col: 6, Name: "Refused", Can: false, Reason: "function too complex: cost 902 exceeds budget 80"},
		},
	}
	budget := &Budget{Schema: 1, Go: "go1.24", Packages: map[string]PackageBudget{
		"internal/btb": {Escapes: 2, BoundsChecks: 1},
	}}
	got := Check(diags, srcs, budget, CheckOptions{BudgetFile: "PERF_BUDGET.json"})

	wantSubstrings := []string{
		"heap escape in //pdede:noalloc function (*T).Leaky: moved to heap: buf",
		"unelided bounds check in //pdede:nobce function Checked: Found IsInBounds",
		"//pdede:inline function Refused does not inline: function too complex: cost 902 exceeds budget 80",
		"no inlining decision recorded for //pdede:inline function Uncovered",
	}
	if len(got) != len(wantSubstrings) {
		t.Fatalf("got %d findings, want %d: %+v", len(got), len(wantSubstrings), got)
	}
	// Findings sort by (file, line): a.go lines 35, 55, 80, then other.go.
	order := []int{0, 1, 2, 3}
	wantByIndex := map[int]string{
		0: wantSubstrings[0], 1: wantSubstrings[1], 2: wantSubstrings[2], 3: wantSubstrings[3],
	}
	for _, i := range order {
		if !strings.Contains(got[i].Message, wantByIndex[i]) {
			t.Errorf("finding[%d] = %q, want substring %q", i, got[i].Message, wantByIndex[i])
		}
	}
}

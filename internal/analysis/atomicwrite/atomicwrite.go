// Package atomicwrite implements the pdede-lint analyzer guarding the
// checkpoint/report durability contract.
//
// The resilient suite runner's whole crash story (PR 1) assumes readers
// never observe a half-written checkpoint or report: every JSON document
// reaches disk via write-temp-then-rename (internal/atomicio). A direct
// os.Create or os.WriteFile in the experiment/report packages quietly
// reintroduces torn files — the run looks fine until the first crash mid
// flush, at which point -resume refuses a corrupt checkpoint and hours of
// suite progress are gone.
//
// In the persistence packages (internal/experiments, internal/perf) the
// analyzer flags calls to:
//
//   - os.Create / os.WriteFile
//   - os.OpenFile with an O_CREATE flag
//
// Opening files for reading, and temp-file machinery (os.CreateTemp) are
// untouched — the atomic helper itself is built from them.
//
// Escape hatch: `//pdede:raw-write-ok <reason>` on the enclosing function's
// doc comment or the offending line, for writes that are genuinely
// streaming (e.g. progressive text logs where atomicity is meaningless).
package atomicwrite

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// Scope is the import-path suffixes of packages persisting checkpoints and
// reports, including the cmd mains that write result files directly.
var Scope = []string{
	"internal/experiments",
	"internal/perf",
	"internal/serve",
	"cmd/pdede-analyze",
	"cmd/pdede-bench",
	"cmd/pdede-experiments",
	"cmd/pdede-serve",
	"cmd/pdede-sim",
	"cmd/pdede-trace",
}

// Analyzer is the atomic-write check.
var Analyzer = &lintkit.Analyzer{
	Name: "atomicwrite",
	Doc: "require checkpoint/report files to go through the write-temp-then-rename " +
		"helper (internal/atomicio) instead of raw os.Create/os.WriteFile",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if !pass.InScope(Scope) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
				return true
			}
			var what string
			switch obj.Name() {
			case "Create", "WriteFile":
				what = "os." + obj.Name()
			case "OpenFile":
				if len(call.Args) >= 2 && flagHasCreate(pass, call.Args[1]) {
					what = "os.OpenFile(..., O_CREATE, ...)"
				}
			}
			if what == "" {
				return true
			}
			if exempt(pass, file, call) {
				return true
			}
			pass.Reportf(call.Pos(), "%s writes a checkpoint/report file non-atomically: route it through atomicio.WriteFile so readers never see a torn document (or annotate //pdede:raw-write-ok with a reason)", what)
			return true
		})
	}
	return nil
}

// flagHasCreate reports whether the constant flag expression includes the
// os.O_CREATE bit. Non-constant flags are conservatively treated as
// creating.
func flagHasCreate(pass *lintkit.Pass, flag ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[flag]
	if !ok || tv.Value == nil {
		return true
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return true
	}
	creat := int64(64) // os.O_CREATE on every supported platform (syscall.O_CREAT)
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() != "os" {
			continue
		}
		if c, ok := imp.Scope().Lookup("O_CREATE").(*types.Const); ok {
			if cv, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
				creat = cv
			}
		}
	}
	return v&creat != 0
}

func exempt(pass *lintkit.Pass, file *ast.File, n ast.Node) bool {
	if pass.NodeHasDirective(file, n, "raw-write-ok") {
		return true
	}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if n.Pos() >= fn.Body.Pos() && n.End() <= fn.Body.End() {
			return pass.FuncHasDirective(file, fn, "raw-write-ok")
		}
	}
	return false
}

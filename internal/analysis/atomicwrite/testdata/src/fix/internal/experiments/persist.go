// Package experiments is an atomicwrite fixture standing in for the
// persistence scope.
package experiments

import "os"

func Save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile writes a checkpoint/report file non-atomically`
}

func CreateReport(path string) (*os.File, error) {
	return os.Create(path) // want `os.Create writes a checkpoint/report file non-atomically`
}

func OpenCreate(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644) // want `os.OpenFile`
}

func Load(path string) ([]byte, error) {
	return os.ReadFile(path) // ok: reading
}

func OpenAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644) // ok: no O_CREATE
}

func TempFile(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "tmp-*") // ok: temp machinery the helper builds on
}

// StreamLog appends progressive text output, where atomicity is
// meaningless.
//
//pdede:raw-write-ok streaming progress log
func StreamLog(path string) (*os.File, error) {
	return os.Create(path)
}

func LineEscape(path string) (*os.File, error) {
	return os.Create(path) //pdede:raw-write-ok fixture escape on the line
}

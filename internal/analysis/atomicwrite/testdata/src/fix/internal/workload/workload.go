// Package workload is outside the atomicwrite scope.
package workload

import "os"

func Dump(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // ok: out of scope
}

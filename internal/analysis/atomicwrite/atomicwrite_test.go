package atomicwrite_test

import (
	"testing"

	"repro/internal/analysis/atomicwrite"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/lintkit/linttest"
)

func TestAtomicWrite(t *testing.T) {
	linttest.Run(t, "testdata/src/fix", []*lintkit.Analyzer{atomicwrite.Analyzer})
}

// Package statepurity enforces the wrong-path safety contract: a BTB
// prediction must never mutate architectural predictor state.
//
// An FDIP-style decoupled frontend issues many speculative Lookups ahead of
// commit; the ext-wrongpath experiment is only valid if those lookups leave
// no architectural trace. The rule: every method named Lookup in a design
// package — and everything transitively reachable from it through the
// package's call graph — may write only fields annotated `//pdede:scratch`
// (the probe memos and observability counters), never entries, tags,
// refcounts or replacement state. Update, at commit, is the sole mutator.
//
// The check runs on flowkit's interprocedural summaries: each reachable
// function's write set (field-sensitive, alias-resolved — `e :=
// &b.entries[i]; e.target = t` is traced back to b.entries) is judged
// directly, and the reachability closure is the call graph's, pruned at
// escape directives. Callees whose bodies live in other packages cannot be
// summarized under the per-package vet model, so calls to pointer-receiver
// or interface methods with mutating names (Update, Insert, Reset, ...) are
// flagged at the call site; value-receiver methods cannot mutate their
// receiver and pass freely.
//
// Escapes: `//pdede:statepurity-ok <reason>` on the offending line (or the
// line above), or on a function's doc comment to exempt its whole body —
// for deliberate prediction-side effects such as Shotgun's prefetch-driven
// fills or a two-level BTB's L0 promotion, which model real predictors that
// do update microarchitectural (not architectural) helper state on lookup.
package statepurity

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/flowkit"
	"repro/internal/analysis/lintkit"
)

// Analyzer is the statepurity lint pass.
var Analyzer = &lintkit.Analyzer{
	Name: "statepurity",
	Doc:  "Lookup paths may write only //pdede:scratch fields: predictions must leave no architectural BTB state behind (wrong-path safety)",
	Run:  run,
}

// scope is the set of design packages whose Lookup paths are policed.
var scope = []string{
	"internal/btb",
	"internal/pdede",
	"internal/multilevel",
	"internal/shotgun",
	"internal/oracle",
}

// mutatorNames are method names presumed to mutate their receiver when the
// body is out of reach (other package or interface dispatch). Reads like
// Get/Find/Len never appear here.
var mutatorNames = map[string]bool{
	"Update": true, "Insert": true, "Delete": true, "Remove": true,
	"Reset": true, "Clear": true, "Push": true, "Pop": true,
	"Put": true, "Set": true, "Store": true, "Install": true,
	"Acquire": true, "Release": true, "Touch": true, "FindOrInsert": true,
	"Record": true, "Train": true, "Observe": true, "Evict": true,
	"Invalidate": true, "Promote": true, "Fill": true,
}

func run(pass *lintkit.Pass) error {
	if !pass.InScope(scope) {
		return nil
	}
	scratch := scratchFields(pass)
	cg := flowkit.BuildCallGraph(pass.Files, pass.Pkg, pass.TypesInfo)
	sums := flowkit.BuildSummaries(cg, pass.Pkg, pass.TypesInfo)

	var roots []*types.Func
	for fn := range cg.Decls {
		if fn.Name() == "Lookup" && fn.Type().(*types.Signature).Recv() != nil {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })

	// Reachability closure that respects escapes: a call site (or whole
	// function) annotated //pdede:statepurity-ok declares everything beyond
	// it to be deliberate update-path behaviour, so its targets are not
	// traversed.
	reach := cg.ReachableWith(roots, flowkit.ReachOpts{
		SkipFunc: func(fn *types.Func) bool {
			return pass.FuncHasDirective(cg.File(fn), cg.Decls[fn], "statepurity-ok")
		},
		SkipCall: func(from *types.Func, c flowkit.Call) bool {
			if pass.NodeHasDirective(cg.File(from), c.Expr, "statepurity-ok") {
				return true
			}
			// Dynamic mutator calls are flagged at the call site by
			// judgeCall; descending into class-hierarchy targets would
			// re-report the mutation inside bodies that are legal on the
			// Update path.
			return c.Dynamic && c.Callee != nil && mutatorNames[c.Callee.Name()]
		},
	})

	var fns []*types.Func
	for fn := range reach {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })

	for _, fn := range fns {
		checkFunc(pass, cg, sums, fn, scratch)
	}
	return nil
}

// scratchFields collects every struct field in the package annotated with
// //pdede:scratch.
func scratchFields(pass *lintkit.Pass) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, file := range pass.Files {
		f := file
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldHasDirective(pass, f, field, "scratch") {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldHasDirective reports whether the //pdede:<name> directive appears in
// the field's doc comment, line comment, or the line above the field.
func fieldHasDirective(pass *lintkit.Pass, file *ast.File, field *ast.Field, name string) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, lintkit.DirectivePrefix+name) {
				return true
			}
		}
	}
	return pass.NodeHasDirective(file, field, name)
}

// checkFunc judges one reachable function: its summary's own write effects,
// then its call sites whose bodies are out of summary reach.
func checkFunc(pass *lintkit.Pass, cg *flowkit.CallGraph, sums *flowkit.Summaries,
	fn *types.Func, scratch map[*types.Var]bool) {

	fd := cg.Decls[fn]
	file := cg.File(fn)
	sum := sums.ByFunc[fn]
	if sum == nil {
		return
	}

	flagWrite := func(node ast.Node, eff flowkit.Effect) {
		if pass.NodeHasDirective(file, node, "statepurity-ok") {
			return
		}
		pass.Reportf(node.Pos(),
			"prediction path (%s) writes architectural state %s: only //pdede:scratch fields may be written during Lookup",
			fn.Name(), effectString(eff))
	}

	for _, eff := range sum.Direct {
		if anyScratch(eff.Fields, scratch) {
			continue
		}
		switch {
		case eff.Op == flowkit.OpDelete:
			// The builtin delete mutates its map argument's storage; only
			// state we own (receiver/parameter field chains) matters.
			if (eff.Kind == flowkit.RootRecv || eff.Kind == flowkit.RootParam) && len(eff.Fields) > 0 {
				flagWrite(eff.Node, eff)
			}
		case len(eff.Fields) == 0:
			// Reassigning a parameter or local is a write to the copy;
			// package-level variables are architectural by definition.
			if eff.Kind == flowkit.RootGlobal {
				flagWrite(eff.Node, eff)
			}
		case eff.Kind == flowkit.RootRecv || eff.Kind == flowkit.RootParam || eff.Kind == flowkit.RootGlobal:
			flagWrite(eff.Node, eff)
		}
	}

	aliases := flowkit.CollectAliases(fd, pass.TypesInfo)
	for _, c := range cg.Calls[fn] {
		judgeCall(pass, file, fn, c, aliases, scratch)
	}
}

// judgeCall polices a call site whose body is out of reach: in-package
// static targets are summarized and judged directly, but a dynamic or
// cross-package callee is judged by receiver mutability and name.
func judgeCall(pass *lintkit.Pass, file *ast.File, fn *types.Func, c flowkit.Call,
	aliases map[*types.Var]*flowkit.Path, scratch map[*types.Var]bool) {

	if len(c.Targets) > 0 && !c.Dynamic {
		return // static call, body in this package: summarized directly
	}
	if c.Callee == nil {
		return // function value or builtin
	}
	// Dynamic calls are judged by name even when class-hierarchy analysis
	// found in-package targets: the interface may also be satisfied by
	// types in other packages, whose bodies are out of reach under the
	// per-package vet model.
	sig := c.Callee.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return // plain function call: no receiver to mutate
	}
	if _, isPtr := recv.Type().(*types.Pointer); !isPtr && !c.Dynamic {
		return // value receiver cannot mutate the callee's state
	}
	if !mutatorNames[c.Callee.Name()] {
		return
	}
	// The receiver must be state we own for the mutation to matter.
	sel, ok := ast.Unparen(c.Expr.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	info := pass.TypesInfo
	if p, ok := flowkit.ResolvePath(info, sel.X, aliases); ok {
		if !ownedBase(info, fn, p.Base) && p.Base.Parent() != pass.Pkg.Scope() {
			return
		}
		if anyScratch(p.Fields, scratch) {
			return
		}
	}
	if pass.NodeHasDirective(file, c.Expr, "statepurity-ok") {
		return
	}
	pass.Reportf(c.Expr.Pos(),
		"prediction path (%s) calls mutator %s.%s whose body is outside this package: forbidden during Lookup unless //pdede:statepurity-ok",
		fn.Name(), types.ExprString(sel.X), c.Callee.Name())
}

// ownedBase reports whether v is fn's receiver or one of its parameters —
// the variables whose field chains are non-local state.
func ownedBase(info *types.Info, fn *types.Func, v *types.Var) bool {
	sig := fn.Type().(*types.Signature)
	if r := sig.Recv(); r != nil && v.Pos() == r.Pos() && v.Name() == r.Name() {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if v == p || (v.Pos() == p.Pos() && v.Name() == p.Name()) {
			return true
		}
	}
	return false
}

func anyScratch(fields []*types.Var, scratch map[*types.Var]bool) bool {
	for _, f := range fields {
		if scratch[f] {
			return true
		}
	}
	return false
}

// effectString renders an Effect's path for diagnostics: "b.entries.target".
func effectString(e flowkit.Effect) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", e.Base.Name())
	for _, f := range e.Fields {
		fmt.Fprintf(&b, ".%s", f.Name())
	}
	return b.String()
}

// Package statepurity enforces the wrong-path safety contract: a BTB
// prediction must never mutate architectural predictor state.
//
// An FDIP-style decoupled frontend issues many speculative Lookups ahead of
// commit; the ext-wrongpath experiment is only valid if those lookups leave
// no architectural trace. The rule: every method named Lookup in a design
// package — and everything transitively reachable from it through the
// package's call graph — may write only fields annotated `//pdede:scratch`
// (the probe memos and observability counters), never entries, tags,
// refcounts or replacement state. Update, at commit, is the sole mutator.
//
// The check is flow-aware where it matters: writes through locals that
// alias architectural storage (`e := &b.entries[i]; e.target = t`) are
// traced back to the field they reach, and calls are followed through the
// in-package call graph (with class-hierarchy resolution of interface
// dispatch). Callees whose bodies live in other packages cannot be
// inspected under the per-package vet model, so calls to pointer-receiver
// or interface methods with mutating names (Update, Insert, Reset, ...) are
// flagged at the call site; value-receiver methods cannot mutate their
// receiver and pass freely.
//
// Escapes: `//pdede:statepurity-ok <reason>` on the offending line (or the
// line above), or on a function's doc comment to exempt its whole body —
// for deliberate prediction-side effects such as Shotgun's prefetch-driven
// fills or a two-level BTB's L0 promotion, which model real predictors that
// do update microarchitectural (not architectural) helper state on lookup.
package statepurity

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/flowkit"
	"repro/internal/analysis/lintkit"
)

// Analyzer is the statepurity lint pass.
var Analyzer = &lintkit.Analyzer{
	Name: "statepurity",
	Doc:  "Lookup paths may write only //pdede:scratch fields: predictions must leave no architectural BTB state behind (wrong-path safety)",
	Run:  run,
}

// scope is the set of design packages whose Lookup paths are policed.
var scope = []string{
	"internal/btb",
	"internal/pdede",
	"internal/multilevel",
	"internal/shotgun",
	"internal/oracle",
}

// mutatorNames are method names presumed to mutate their receiver when the
// body is out of reach (other package or interface dispatch). Reads like
// Get/Find/Len never appear here.
var mutatorNames = map[string]bool{
	"Update": true, "Insert": true, "Delete": true, "Remove": true,
	"Reset": true, "Clear": true, "Push": true, "Pop": true,
	"Put": true, "Set": true, "Store": true, "Install": true,
	"Acquire": true, "Release": true, "Touch": true, "FindOrInsert": true,
	"Record": true, "Train": true, "Observe": true, "Evict": true,
	"Invalidate": true, "Promote": true, "Fill": true,
}

func run(pass *lintkit.Pass) error {
	if !pass.InScope(scope) {
		return nil
	}
	scratch := scratchFields(pass)
	cg := flowkit.BuildCallGraph(pass.Files, pass.Pkg, pass.TypesInfo)

	var roots []*types.Func
	for fn := range cg.Decls {
		if fn.Name() == "Lookup" && fn.Type().(*types.Signature).Recv() != nil {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })

	// Reachability closure that respects escapes: a call site (or whole
	// function) annotated //pdede:statepurity-ok declares everything beyond
	// it to be deliberate update-path behaviour, so its targets are not
	// traversed.
	reach := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if reach[fn] {
			return
		}
		fd, ok := cg.Decls[fn]
		if !ok {
			return
		}
		file := cg.File(fn)
		if pass.FuncHasDirective(file, fd, "statepurity-ok") {
			return
		}
		reach[fn] = true
		for _, c := range cg.Calls[fn] {
			if pass.NodeHasDirective(file, c.Expr, "statepurity-ok") {
				continue
			}
			if c.Dynamic && c.Callee != nil && mutatorNames[c.Callee.Name()] {
				// Flagged at the call site by checkCall; descending into
				// class-hierarchy targets would re-report the mutation
				// inside bodies that are legal on the Update path.
				continue
			}
			for _, t := range c.Targets {
				visit(t)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}

	var fns []*types.Func
	for fn := range reach {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })

	for _, fn := range fns {
		checkFunc(pass, cg, fn, scratch)
	}
	return nil
}

// scratchFields collects every struct field in the package annotated with
// //pdede:scratch.
func scratchFields(pass *lintkit.Pass) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, file := range pass.Files {
		f := file
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldHasDirective(pass, f, field, "scratch") {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldHasDirective reports whether the //pdede:<name> directive appears in
// the field's doc comment, line comment, or the line above the field.
func fieldHasDirective(pass *lintkit.Pass, file *ast.File, field *ast.Field, name string) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, lintkit.DirectivePrefix+name) {
				return true
			}
		}
	}
	return pass.NodeHasDirective(file, field, name)
}

func checkFunc(pass *lintkit.Pass, cg *flowkit.CallGraph, fn *types.Func, scratch map[*types.Var]bool) {
	fd := cg.Decls[fn]
	file := cg.File(fn)
	if pass.FuncHasDirective(file, fd, "statepurity-ok") {
		return
	}
	info := pass.TypesInfo
	aliases := flowkit.CollectAliases(fd, info)
	state := stateVars(info, fd)

	flagWrite := func(node ast.Node, p *flowkit.Path) {
		if pass.NodeHasDirective(file, node, "statepurity-ok") {
			return
		}
		pass.Reportf(node.Pos(),
			"prediction path (%s) writes architectural state %s: only //pdede:scratch fields may be written during Lookup",
			fn.Name(), pathString(p))
	}

	checkLHS := func(node ast.Node, lhs ast.Expr) {
		lhsAliases := aliases
		if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
			// Assigning to a plain local rebinds the variable — even when
			// the local aliases architectural storage, the binding itself
			// is function-private. Writes *through* the alias (selector,
			// index, deref forms) still resolve via the alias map below.
			lhsAliases = nil
		}
		p, ok := flowkit.ResolvePath(info, lhs, lhsAliases)
		if !ok {
			return
		}
		if len(p.Fields) == 0 {
			// Reassigning a parameter or local is a write to the copy;
			// package-level variables are architectural by definition.
			if p.Base.Parent() == pass.Pkg.Scope() {
				flagWrite(node, p)
			}
			return
		}
		if !state[p.Base] && p.Base.Parent() != pass.Pkg.Scope() {
			return // rooted at a plain local: function-private storage
		}
		for _, f := range p.Fields {
			if scratch[f] {
				return
			}
		}
		flagWrite(node, p)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				checkLHS(n, lhs)
			}
		case *ast.IncDecStmt:
			checkLHS(n, n.X)
		case *ast.CallExpr:
			checkCall(pass, cg, fn, n, aliases, scratch, state, flagWrite)
		}
		return true
	})
}

// checkCall polices call sites: in-package targets are analyzed themselves;
// out-of-reach callees are judged by receiver mutability and name.
func checkCall(pass *lintkit.Pass, cg *flowkit.CallGraph, fn *types.Func, call *ast.CallExpr,
	aliases map[*types.Var]*flowkit.Path, scratch map[*types.Var]bool,
	state map[*types.Var]bool, flagWrite func(ast.Node, *flowkit.Path)) {

	info := pass.TypesInfo
	file := cg.File(fn)
	// Builtin delete mutates its map argument.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
		if p, ok := flowkit.ResolvePath(info, call.Args[0], aliases); ok && len(p.Fields) > 0 && state[p.Base] {
			for _, f := range p.Fields {
				if scratch[f] {
					return
				}
			}
			flagWrite(call, p)
		}
		return
	}
	for _, c := range cg.Calls[fn] {
		if c.Expr != call {
			continue
		}
		if len(c.Targets) > 0 && !c.Dynamic {
			return // static call, body in this package: analyzed directly
		}
		if c.Callee == nil {
			return // function value or builtin
		}
		// Dynamic calls are judged by name even when class-hierarchy
		// analysis found in-package targets: the interface may also be
		// satisfied by types in other packages, whose bodies are out of
		// reach under the per-package vet model.
		sig := c.Callee.Type().(*types.Signature)
		recv := sig.Recv()
		if recv == nil {
			return // plain function call: no receiver to mutate
		}
		if _, isPtr := recv.Type().(*types.Pointer); !isPtr && !c.Dynamic {
			return // value receiver cannot mutate the callee's state
		}
		if !mutatorNames[c.Callee.Name()] {
			return
		}
		// The receiver must be state we own for the mutation to matter.
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		p, ok := flowkit.ResolvePath(info, sel.X, aliases)
		if ok {
			if !state[p.Base] && p.Base.Parent() != pass.Pkg.Scope() {
				return
			}
			for _, f := range p.Fields {
				if scratch[f] {
					return
				}
			}
		}
		if pass.NodeHasDirective(file, call, "statepurity-ok") {
			return
		}
		pass.Reportf(call.Pos(),
			"prediction path (%s) calls mutator %s.%s whose body is outside this package: forbidden during Lookup unless //pdede:statepurity-ok",
			fn.Name(), types.ExprString(sel.X), c.Callee.Name())
		return
	}
}

// stateVars returns the receiver and parameters of fd — the variables whose
// field chains are non-local state.
func stateVars(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					out[v] = true
				}
			}
		}
	}
	add(fd.Recv)
	if fd.Type.Params != nil {
		add(fd.Type.Params)
	}
	return out
}

// pathString renders a Path for diagnostics: "b.entries.target".
func pathString(p *flowkit.Path) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", p.Base.Name())
	for _, f := range p.Fields {
		fmt.Fprintf(&b, ".%s", f.Name())
	}
	return b.String()
}

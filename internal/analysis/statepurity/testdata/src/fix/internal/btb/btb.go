// Package btb is a corruption-injection fixture: a miniature copy of the
// real Baseline with architectural-field writes deliberately seeded into
// its Lookup path, so the statepurity analyzer's detection is itself
// tested (the PR-2 style: prove the checker catches the corruption it
// exists to catch).
package btb

type entry struct {
	tag    uint64
	target uint64
	valid  bool
}

// Baseline is the fixture design under test.
type Baseline struct {
	entries []entry
	repl    []uint8

	// Probe memo — transient lookup→update handoff.
	//
	//pdede:scratch
	memoSet uint64
	//pdede:scratch
	memoOK bool
}

// Lookup carries three seeded violations: a direct entry write, a write
// through an alias, and a replacement-state bump — plus the legal scratch
// writes around them.
func (b *Baseline) Lookup(pc uint64) (uint64, bool) {
	set := pc % uint64(len(b.entries))
	b.memoSet = set
	b.memoOK = true
	e := &b.entries[set]
	if e.valid && e.tag == pc {
		e.target = pc + 4 // want `writes architectural state b.entries.target`
		b.repl[set]++     // want `writes architectural state b.repl`
		return e.target, true
	}
	b.touch(set)
	return 0, false
}

// touch is reachable from Lookup through the call graph, so its write is a
// transitive violation.
func (b *Baseline) touch(set uint64) {
	b.entries[set].valid = false // want `writes architectural state b.entries.valid`
}

// Update is the commit path: the same writes are legal here because Update
// is not reachable from any Lookup.
func (b *Baseline) Update(pc, target uint64) {
	set := pc % uint64(len(b.entries))
	b.entries[set] = entry{tag: pc, target: target, valid: true}
	b.repl[set] = 0
	b.memoOK = false
}

// filter models a prefetcher design whose Lookup deliberately fills a
// backing store through an interface — the Shotgun/TwoLevel pattern that
// needs the escape directive.
type filter struct {
	backing interface {
		Update(pc, target uint64)
	}

	//pdede:scratch
	memoHit bool
}

func (f *filter) Lookup(pc uint64) (uint64, bool) {
	f.memoHit = false
	f.backing.Update(pc, pc+8) // want `calls mutator f.backing.Update`
	return 0, false
}

// promoter shows the sanctioned form: the same interface fill under a
// reasoned escape directive.
type promoter struct {
	backing interface {
		Update(pc, target uint64)
	}
}

func (p *promoter) Lookup(pc uint64) (uint64, bool) {
	//pdede:statepurity-ok fixture: lookup-time fill is this design's point
	p.backing.Update(pc, pc+8)
	return 0, false
}

// reader proves the analyzer stays quiet on a genuinely pure Lookup: reads,
// locals, and value-receiver method calls only.
type reader struct {
	entries []entry
}

func (r *reader) Lookup(pc uint64) (uint64, bool) {
	set := pc % uint64(len(r.entries))
	e := r.entries[set] // value copy: writes to it are function-private
	e.target++
	sum := uint64(0)
	for _, x := range r.entries {
		sum += x.target
	}
	return e.target + sum, e.valid
}

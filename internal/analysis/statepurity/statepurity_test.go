package statepurity_test

import (
	"testing"

	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/lintkit/linttest"
	"repro/internal/analysis/statepurity"
)

func TestStatepurity(t *testing.T) {
	linttest.Run(t, "testdata/src/fix", []*lintkit.Analyzer{statepurity.Analyzer})
}

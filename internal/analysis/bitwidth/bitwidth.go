// Package bitwidth implements the pdede-lint analyzer that cross-checks
// shift and mask constants against the declared address-component widths.
//
// The whole delta/partition encoding rests on a handful of widths declared
// once in internal/addr: 57 significant VA bits, a 12-bit page offset, an
// 18-bit page index, a 27-bit region index (and btb.TagBits = 12). Every
// shift or mask in the encoding must be one of those widths or a
// combination of them. A stray `>> 13` or `& 0x1FFF` compiles, audits
// cleanly on most traces, and silently corrupts delta composition on the
// rest — precisely the silent-model-drift failure mode the oracle exists
// for, except cheaper to rule out before running anything.
//
// In the address-manipulating packages (internal/addr, internal/btb,
// internal/pdede) the analyzer therefore flags:
//
//   - shifts (`<<`, `>>`) by a bare integer literal between 8 and 63 whose
//     value is not a declared component width or a sum/difference of them.
//     Amounts written via the named constants (addr.PageShift, ...) always
//     pass — the point is that widths are spelled once;
//   - masks (`&`, `&^`, `|`) against a bare low-bit literal (2^k − 1) whose
//     width k is similarly undeclared.
//
// Shifts below 8 bits (flag packing, ×2/÷2 arithmetic) are ignored: they
// are never component widths and flagging them would be noise.
//
// Escape hatch: `//pdede:bitwidth-ok <reason>` on the line, the line
// above, or the enclosing function's doc comment — for constants that are
// genuinely not field widths (hash avalanche rotations, for example).
package bitwidth

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/analysis/lintkit"
)

// Scope is the import-path suffixes of the packages whose shifts and masks
// manipulate 57-bit addresses and their components.
var Scope = []string{
	"internal/addr",
	"internal/btb",
	"internal/pdede",
}

// widthSourcePkg is the package (by import-path suffix) declaring the
// canonical component widths.
const widthSourcePkg = "internal/addr"

// widthConsts are the declared-width constant names read from the width
// source package.
var widthConsts = []string{
	"VABits", "PageShift", "RegionShift", "OffsetBits", "PageBits", "RegionBits",
}

// extraWidthSources maps additional package suffixes to width constants
// they contribute (the restricted tag width lives with the BTBs).
var extraWidthSources = map[string][]string{
	"internal/btb": {"TagBits"},
}

// Analyzer is the bitwidth check.
var Analyzer = &lintkit.Analyzer{
	Name: "bitwidth",
	Doc: "flag shift/mask literals in address-component code that do not match " +
		"the declared region/page/offset widths (57-bit VA, 12-bit offset)",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if !pass.InScope(Scope) {
		return nil
	}
	allowed := declaredWidths(pass)
	if len(allowed) == 0 {
		return nil // no width declarations reachable: nothing to check against
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.SHL, token.SHR:
				checkShift(pass, file, allowed, be)
			case token.AND, token.AND_NOT, token.OR:
				checkMask(pass, file, allowed, be, be.X)
				checkMask(pass, file, allowed, be, be.Y)
			}
			return true
		})
	}
	return nil
}

// declaredWidths collects the allowed width values: the declared constants
// plus their pairwise differences (PageAddr shifts by PageShift and keeps
// VABits−PageShift bits, and so on).
func declaredWidths(pass *lintkit.Pass) map[int64][]string {
	vals := map[string]int64{}
	read := func(scope *types.Scope, names []string, qual string) {
		for _, name := range names {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			if v, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
				vals[qual+name] = v
			}
		}
	}
	consider := func(pkg *types.Package) {
		qual := ""
		if pkg != pass.Pkg {
			qual = pkg.Name() + "."
		}
		if lintkit.PathHasSuffix(pkg.Path(), widthSourcePkg) {
			read(pkg.Scope(), widthConsts, qual)
		}
		for suffix, names := range extraWidthSources {
			if lintkit.PathHasSuffix(pkg.Path(), suffix) {
				read(pkg.Scope(), names, qual)
			}
		}
	}
	consider(pass.Pkg)
	for _, imp := range pass.Pkg.Imports() {
		consider(imp)
	}

	allowed := map[int64][]string{}
	note := func(v int64, how string) {
		for _, h := range allowed[v] {
			if h == how {
				return
			}
		}
		allowed[v] = append(allowed[v], how)
	}
	for n, v := range vals {
		note(v, n)
	}
	for a, va := range vals {
		for b, vb := range vals {
			if va-vb > 0 {
				note(va-vb, a+"-"+b)
			}
			if va+vb < 64 {
				note(va+vb, a+"+"+b)
			}
		}
	}
	for _, hows := range allowed {
		sort.Strings(hows)
	}
	return allowed
}

// literalInt returns the constant value of e when e is built purely from
// literals — no identifier anywhere, so nothing ties it to the declared
// widths.
func literalInt(pass *lintkit.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	hasIdent := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			hasIdent = true
			return false
		}
		return true
	})
	if hasIdent {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}

func allowedHint(allowed map[int64][]string) string {
	var ws []int64
	for w := range allowed {
		if w >= 8 {
			ws = append(ws, w)
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	parts := make([]string, len(ws))
	for i, w := range ws {
		parts[i] = allowed[w][0]
	}
	return strings.Join(parts, ", ")
}

func exempt(pass *lintkit.Pass, file *ast.File, n ast.Node) bool {
	if pass.NodeHasDirective(file, n, "bitwidth-ok") {
		return true
	}
	// Function-level exemption via doc directive.
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if n.Pos() >= fn.Body.Pos() && n.End() <= fn.Body.End() {
			return pass.FuncHasDirective(file, fn, "bitwidth-ok")
		}
	}
	return false
}

func checkShift(pass *lintkit.Pass, file *ast.File, allowed map[int64][]string, be *ast.BinaryExpr) {
	v, ok := literalInt(pass, be.Y)
	if !ok || v < 8 || v >= 64 {
		return
	}
	if _, ok := allowed[v]; ok {
		return
	}
	if exempt(pass, file, be) {
		return
	}
	pass.Reportf(be.Pos(), "shift by bare literal %d does not match any declared component width; spell it with the addr constants (declared: %s)",
		v, allowedHint(allowed))
}

func checkMask(pass *lintkit.Pass, file *ast.File, allowed map[int64][]string, be *ast.BinaryExpr, operand ast.Expr) {
	v, ok := literalInt(pass, operand)
	if !ok || v <= 0 {
		return
	}
	u := uint64(v)
	if u&(u+1) != 0 {
		return // not a low-bit mask 2^k-1
	}
	k := int64(bits.Len64(u))
	if k < 8 || k > 64 {
		return
	}
	if _, ok := allowed[k]; ok {
		return
	}
	if exempt(pass, file, be) {
		return
	}
	pass.Reportf(operand.Pos(), "mask %#x selects %d low bits, which is not a declared component width; derive it from the addr constants (declared: %s)",
		v, k, allowedHint(allowed))
}

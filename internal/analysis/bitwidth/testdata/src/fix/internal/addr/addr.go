// Package addr is a bitwidth fixture declaring the canonical component
// widths, mirroring the real internal/addr (57-bit VA, 12-bit offset,
// 18-bit page, 27-bit region).
package addr

const (
	VABits      = 57
	PageShift   = 12
	RegionShift = 30
	OffsetBits  = PageShift
	PageBits    = RegionShift - PageShift
	RegionBits  = VABits - RegionShift
)

func PageOf(x uint64) uint64 {
	return (x >> PageShift) & ((1 << PageBits) - 1) // ok: named constants
}

func BadShift(x uint64) uint64 {
	return x >> 13 // want `shift by bare literal 13`
}

func BadMask(x uint64) uint64 {
	return x & 0x1fff // want `mask 0x1fff selects 13 low bits`
}

func SmallShift(x uint64) uint64 {
	return x << 3 // ok: below the 8-bit floor (flag packing, not a width)
}

func DeclaredLiteral(x uint64) uint64 {
	return x >> 12 // ok: 12 is a declared width even spelled bare
}

func SumOfWidths(x uint64) uint64 {
	return x >> 45 // ok: VABits-PageShift
}

func NonMaskLiteral(x uint64) uint64 {
	return x & 0xff00 // ok: not a low-bit 2^k-1 mask
}

// Mixer scrambles bits; its shift amounts are avalanche constants.
//
//pdede:bitwidth-ok avalanche rotation constants, not field widths
func Mixer(x uint64) uint64 {
	return x ^ x>>31
}

func LineEscape(x uint64) uint64 {
	return x >> 23 //pdede:bitwidth-ok fixture escape on the offending line
}

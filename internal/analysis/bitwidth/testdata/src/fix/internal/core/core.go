// Package core is outside the bitwidth scope: bare shifts pass untouched.
package core

func Hash(x uint64) uint64 {
	return x>>13 ^ x&0x1fff // ok: out of scope
}

// Package btb is a bitwidth fixture: it contributes TagBits and checks
// widths imported from the addr fixture.
package btb

import "fix/internal/addr"

const TagBits = 12

func Tag(x uint64) uint64 {
	return x & ((1 << TagBits) - 1) // ok: named constant
}

func BadTag(x uint64) uint64 {
	return x & 0xffff // want `mask 0xffff selects 16 low bits`
}

func Index(x uint64) uint64 {
	return x >> addr.PageShift // ok: named constant from addr
}

func TagPlusPage(x uint64) uint64 {
	return x >> 30 // ok: TagBits+addr.PageBits (and addr.RegionShift)
}

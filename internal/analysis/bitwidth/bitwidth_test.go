package bitwidth_test

import (
	"testing"

	"repro/internal/analysis/bitwidth"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/lintkit/linttest"
)

func TestBitwidth(t *testing.T) {
	linttest.Run(t, "testdata/src/fix", []*lintkit.Analyzer{bitwidth.Analyzer})
}

// Package clonefix exercises clonecomplete: Clone methods must give every
// pointer/slice/map field fresh backing storage.
package clonefix

type entry struct{ tag, target uint64 }

// Table clones deeply — the real cache.Cache pattern: deref copy, then
// re-append every slice (including nested element slices). No findings.
type Table struct {
	sets [][]entry
	repl []uint8
	name string
}

func (c *Table) Clone() *Table {
	d := *c
	d.sets = append([][]entry(nil), c.sets...)
	for i := range d.sets {
		d.sets[i] = append([]entry(nil), c.sets[i]...)
	}
	d.repl = append([]uint8(nil), c.repl...)
	return &d
}

// Shallow forgets one field: repl rides along from the deref copy.
type Shallow struct {
	sets []entry
	repl []uint8
}

func (s *Shallow) Clone() *Shallow {
	d := *s // want `Clone of Shallow leaves reference field repl aliased to the receiver`
	d.sets = append([]entry(nil), s.sets...)
	return &d
}

// Grow re-assigns the field but appends onto the receiver's own backing
// array, which shares storage until the append happens to reallocate.
type Grow struct{ buf []int }

func (g *Grow) Clone() *Grow {
	d := *g
	d.buf = append(g.buf, 0) // want `Clone of Grow leaves reference field buf aliased to the receiver`
	return &d
}

// Lit builds the clone as a composite literal; field b's initializer still
// aliases the receiver.
type Lit struct {
	a []int
	b []int
}

func (l *Lit) Clone() *Lit {
	return &Lit{
		a: append([]int(nil), l.a...),
		b: l.b, // want `Clone of Lit leaves reference field b aliased to the receiver`
	}
}

// keep returns its argument: its summary records that the result retains
// parameter 0, so routing a receiver slice through it proves nothing.
func keep(b []int) []int { return b }

// freshCopy really reallocates; its summary retains nothing.
func freshCopy(b []int) []int { return append([]int(nil), b...) }

// Help launders the alias through an in-package helper — the
// interprocedural retention summary catches it.
type Help struct{ buf []int }

func (h *Help) Clone() *Help {
	d := *h
	d.buf = keep(h.buf) // want `Clone of Help leaves reference field buf aliased to the receiver`
	return &d
}

// Help2 uses the genuinely-copying helper: the summary proves the result
// is unaliased. No findings.
type Help2 struct{ buf []int }

func (h *Help2) Clone() *Help2 {
	d := *h
	d.buf = freshCopy(h.buf)
	return &d
}

// SharedTab declares its read-only table shareable. Only buf must be
// copied.
type SharedTab struct {
	//pdede:shared-immutable precomputed read-only lookup table
	tab []int
	buf []int
}

func (s *SharedTab) Clone() *SharedTab {
	d := *s
	d.buf = append([]int(nil), s.buf...)
	return &d
}

// Same does not clone at all.
type Same struct{ buf []int }

func (s *Same) Clone() *Same {
	return s // want `Clone of Same leaves reference field buf aliased to the receiver`
}

// Val re-backs its fields on a value receiver (already a copy at entry).
// No findings.
type Val struct{ buf []int }

func (v Val) Clone() Val {
	v.buf = append([]int(nil), v.buf...)
	return v
}

// NoRefs has nothing to deep-copy; any body is fine.
type NoRefs struct{ a, b uint64 }

func (n *NoRefs) Clone() *NoRefs {
	d := *n
	return &d
}

module fix

go 1.22

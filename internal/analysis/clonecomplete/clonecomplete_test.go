package clonecomplete_test

import (
	"testing"

	"repro/internal/analysis/clonecomplete"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/lintkit/linttest"
)

func TestClonecomplete(t *testing.T) {
	linttest.Run(t, "testdata/src/fix", []*lintkit.Analyzer{clonecomplete.Analyzer})
}

// Package clonecomplete enforces deep-copy completeness on Clone methods:
// every pointer/slice/map field of a cloned type must be given fresh
// backing storage by Clone, or be explicitly declared shareable with
// `//pdede:shared-immutable` on the field.
//
// The warm-replay pipeline (core.WarmupContext → per-design Clone →
// RunWarmContext) and pdede-serve's session restore both assume Clone
// produces a structure whose mutation can never reach the original: a
// single shallow-copied slice turns the "byte-identical at any worker
// count" guarantee into a data race. The deepness property tests catch this
// only for types they were written against; this check proves it for every
// `Clone()` method in a package, including future designs.
//
// The proof sketch, per Clone method on a struct type T:
//
//  1. Reference-bearing fields of T (pointer, slice or map underlying
//     type) are collected, minus //pdede:shared-immutable ones.
//  2. The body's result values are tracked: `d := *c` (or a value-receiver
//     copy) starts every reference field in the "aliased" state; a
//     composite literal starts fields at their initializer's
//     classification (zero value = nil = fresh).
//  3. Assignments `d.f = rhs` reclassify f by rhs: fresh for append onto a
//     nil slice, make, new, composite literals, and Clone calls; aliased
//     for anything that still resolves to receiver-rooted storage
//     (`c.f`, `c.f[:n]`, `append(c.f, ...)`, `&c.f`). Calls to in-package
//     helpers are judged by their interprocedural summary: the result is
//     fresh only if the summary proves no result retains a parameter bound
//     to receiver-rooted storage.
//  4. Any reference field still aliased on a returned value is reported;
//     `return c` (no copy at all) reports every reference field.
//
// The check is top-level: fields whose *element* structs carry references
// (e.g. a slice of structs with interior slices) are flagged at the outer
// field only if the outer storage itself is shared — re-building the outer
// slice with fresh element copies is the pattern the tree uses and passes.
// Calls into other packages (whose bodies the per-package vet model cannot
// see) are trusted to return fresh values; the repository convention is
// that cross-package deep copies go through Clone, which is checked in its
// own package.
//
// Escape: `//pdede:shared-immutable <reason>` on the field (shared
// read-only tables), or `//pdede:clonecomplete-ok <reason>` on the method
// or the offending line.
package clonecomplete

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/flowkit"
	"repro/internal/analysis/lintkit"
)

// Analyzer is the clonecomplete lint pass.
var Analyzer = &lintkit.Analyzer{
	Name: "clonecomplete",
	Doc:  "Clone() must deep-copy every pointer/slice/map field or mark it //pdede:shared-immutable: a shallow clone silently couples warm-state replicas",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	cg := flowkit.BuildCallGraph(pass.Files, pass.Pkg, pass.TypesInfo)
	sums := flowkit.BuildSummaries(cg, pass.Pkg, pass.TypesInfo)
	shared := sharedImmutableFields(pass)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name != "Clone" {
				continue
			}
			if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
				continue
			}
			if pass.FuncHasDirective(file, fd, "clonecomplete-ok") {
				continue
			}
			checkClone(pass, file, fd, cg, sums, shared)
		}
	}
	return nil
}

// sharedImmutableFields collects fields annotated //pdede:shared-immutable.
func sharedImmutableFields(pass *lintkit.Pass) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, file := range pass.Files {
		f := file
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldHasDirective(pass, f, field, "shared-immutable") {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

func fieldHasDirective(pass *lintkit.Pass, file *ast.File, field *ast.Field, name string) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, lintkit.DirectivePrefix+name) {
				return true
			}
		}
	}
	return pass.NodeHasDirective(file, field, name)
}

// fieldState is the per-field copy evidence while walking a Clone body.
type fieldState int

const (
	stateFresh   fieldState = iota // fresh backing storage (or nil)
	stateAliased                   // still shares storage with the receiver
)

// result tracks one candidate return value being built in a Clone body.
type result struct {
	state  map[*types.Var]fieldState
	assign map[*types.Var]ast.Node // anchors each field's last classification
	origin ast.Node                // the copy/literal that created the result
}

type checker struct {
	pass      *lintkit.Pass
	file      *ast.File
	info      *types.Info
	cg        *flowkit.CallGraph
	sums      *flowkit.Summaries
	recv      *types.Var
	recvType  types.Type // named receiver type (pointer stripped)
	refFields []*types.Var
	results   map[*types.Var]*result
	reported  map[*types.Var]bool // fields already reported, once each
}

func checkClone(pass *lintkit.Pass, file *ast.File, fd *ast.FuncDecl,
	cg *flowkit.CallGraph, sums *flowkit.Summaries, shared map[*types.Var]bool) {

	info := pass.TypesInfo
	recv, ok := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	if !ok {
		return
	}
	rt := recv.Type()
	if p, isPtr := rt.Underlying().(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	st, ok := rt.Underlying().(*types.Struct)
	if !ok {
		return
	}
	c := &checker{
		pass: pass, file: file, info: info, cg: cg, sums: sums,
		recv: recv, recvType: rt,
		results:  make(map[*types.Var]*result),
		reported: make(map[*types.Var]bool),
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if shared[f] || !refType(f.Type()) {
			continue
		}
		c.refFields = append(c.refFields, f)
	}
	if len(c.refFields) == 0 {
		return
	}
	// A value receiver is already a copy at entry: the method may re-back
	// its fields in place and return it. Track it like any other result,
	// starting fully aliased.
	if _, isPtr := recv.Type().Underlying().(*types.Pointer); !isPtr {
		r := &result{
			state:  make(map[*types.Var]fieldState, len(c.refFields)),
			assign: make(map[*types.Var]ast.Node),
			origin: fd,
		}
		for _, f := range c.refFields {
			r.state[f] = stateAliased
		}
		c.results[recv] = r
	}

	var returned []*result
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if r := c.resultOf(res, n); r != nil {
					returned = append(returned, r)
				}
			}
		}
		return true
	})

	for _, r := range returned {
		for _, f := range c.refFields {
			if r.state[f] != stateAliased || c.reported[f] {
				continue
			}
			anchor := r.assign[f]
			if anchor == nil {
				anchor = r.origin
			}
			if anchor == nil {
				anchor = fd
			}
			if pass.NodeHasDirective(file, anchor, "clonecomplete-ok") {
				continue
			}
			c.reported[f] = true
			pass.Reportf(anchor.Pos(),
				"Clone of %s leaves reference field %s aliased to the receiver: deep-copy it or annotate //pdede:shared-immutable",
				typeName(rt), f.Name())
		}
	}
}

// assign processes one assignment statement: new result roots and per-field
// reclassifications.
func (c *checker) assign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lhs := ast.Unparen(as.Lhs[i])
		rhs := as.Rhs[i]
		switch lhs := lhs.(type) {
		case *ast.Ident:
			v, ok := c.info.Defs[lhs].(*types.Var)
			if !ok {
				if v, ok = c.info.Uses[lhs].(*types.Var); !ok {
					continue
				}
			}
			if r := c.resultOf(rhs, as); r != nil {
				c.results[v] = r
			}
		case *ast.SelectorExpr:
			base, ok := ast.Unparen(lhs.X).(*ast.Ident)
			if !ok {
				continue
			}
			bv, ok := identVar(c.info, base)
			if !ok {
				continue
			}
			r, tracked := c.results[bv]
			if !tracked {
				continue
			}
			f, ok := selectedField(c.info, lhs)
			if !ok {
				continue
			}
			r.state[f] = c.classify(rhs)
			r.assign[f] = as
		}
	}
}

// resultOf interprets an expression as a candidate Clone result: a
// whole-receiver copy, a composite literal of the receiver type, a
// previously tracked local, or (on returns) the bare receiver.
func (c *checker) resultOf(e ast.Expr, origin ast.Node) *result {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	if s, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(s.X)
	}
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := identVar(c.info, e)
		if !ok {
			return nil
		}
		if r, tracked := c.results[v]; tracked {
			return r
		}
		if v == c.recv {
			// `d := *c`, `d := c`, or `return c`: a whole-receiver copy —
			// every reference field starts out shared.
			r := &result{
				state:  make(map[*types.Var]fieldState, len(c.refFields)),
				assign: make(map[*types.Var]ast.Node),
				origin: origin,
			}
			for _, f := range c.refFields {
				r.state[f] = stateAliased
			}
			return r
		}
		return nil
	case *ast.CompositeLit:
		if t := c.info.TypeOf(e); t == nil || !types.Identical(deref(t), c.recvType) {
			return nil
		}
		r := &result{
			state:  make(map[*types.Var]fieldState, len(c.refFields)),
			assign: make(map[*types.Var]ast.Node),
			origin: origin,
		}
		// Unlisted fields are zero-valued: nil is not an alias.
		for _, f := range c.refFields {
			r.state[f] = stateFresh
		}
		st := c.recvType.Underlying().(*types.Struct)
		for i, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if f, ok := c.info.Uses[key].(*types.Var); ok {
					r.state[f] = c.classify(kv.Value)
					r.assign[f] = elt
				}
				continue
			}
			if i < st.NumFields() {
				r.state[st.Field(i)] = c.classify(elt)
				r.assign[st.Field(i)] = elt
			}
		}
		return r
	}
	return nil
}

// classify decides whether an expression produces fresh backing storage or
// still aliases the receiver.
func (c *checker) classify(e ast.Expr) fieldState {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		return c.classifyCall(e)
	case *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit:
		return stateFresh
	case *ast.SliceExpr:
		return c.classify(e.X) // x[a:b] shares x's backing array
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.classify(e.X) // &x aliases x's storage
		}
		return stateFresh
	case *ast.StarExpr:
		return c.classify(e.X)
	case *ast.IndexExpr:
		return c.classify(e.X) // c.ptrs[i] draws from receiver storage
	case *ast.Ident:
		if e.Name == "nil" {
			return stateFresh
		}
	}
	// A path expression: aliased iff it is rooted at the receiver or at a
	// tracked result whose selected field is itself still aliased.
	p, ok := flowkit.ResolvePath(c.info, e, nil)
	if !ok {
		return stateFresh
	}
	if r, tracked := c.results[p.Base]; tracked && len(p.Fields) > 0 {
		return r.state[p.Fields[0]]
	}
	if p.Base == c.recv {
		return stateAliased
	}
	return stateFresh
}

// classifyCall judges a call expression's result.
func (c *checker) classifyCall(call *ast.CallExpr) fieldState {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		switch id.Name {
		case "append":
			// Fresh iff the seed slice is fresh: append([]T(nil), c.f...)
			// reallocates, append(c.f, x) usually does not.
			if len(call.Args) == 0 {
				return stateFresh
			}
			return c.classify(call.Args[0])
		case "make", "new":
			return stateFresh
		}
	}
	// Conversion: classify the converted operand ([]T(nil) is fresh,
	// sliceAlias(c.f) keeps the alias).
	if tv, ok := c.info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return c.classify(call.Args[0])
	}
	// Clone calls produce fresh values by definition — each Clone is itself
	// checked wherever it is declared.
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		if f.Sel.Name == "Clone" {
			return stateFresh
		}
	case *ast.Ident:
		if f.Name == "Clone" {
			return stateFresh
		}
	}
	// In-package helper: the interprocedural summary proves whether any
	// result may retain (alias) an argument; if so, and that argument is
	// receiver-rooted, the helper's result is still coupled to the
	// receiver.
	if rc, ok := c.cg.CallAt(call); ok && len(rc.Targets) > 0 {
		for _, t := range rc.Targets {
			sum := c.sums.ByFunc[t]
			if sum == nil {
				continue
			}
			for _, ri := range sum.Retains {
				arg := boundArg(call, ri)
				if arg == nil {
					return stateAliased // unprovable binding: assume the worst
				}
				if c.classify(arg) == stateAliased {
					return stateAliased
				}
			}
		}
		return stateFresh
	}
	// Cross-package call: trusted fresh (see package doc).
	return stateFresh
}

// boundArg returns the call-site expression bound to a callee parameter
// index (receiver = -1), or nil when the binding is not simple.
func boundArg(call *ast.CallExpr, idx int) ast.Expr {
	if idx == -1 {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		return sel.X
	}
	if idx < 0 || idx >= len(call.Args) {
		return nil
	}
	return call.Args[idx]
}

// refType reports whether a field of this type shares storage when copied
// by value: pointers, slices and maps do.
func refType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func typeName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

func identVar(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v, true
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, true
	}
	return nil, false
}

func selectedField(info *types.Info, sel *ast.SelectorExpr) (*types.Var, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, false
	}
	v, ok := s.Obj().(*types.Var)
	return v, ok
}

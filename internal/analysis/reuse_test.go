package analysis

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

func takenAt(pc addr.VA) isa.Branch {
	return isa.Branch{PC: pc, Target: pc.Add(64), BlockLen: 4, Kind: isa.UncondDirect, Taken: true}
}

func profile(t *testing.T, recs []isa.Branch) *Reuse {
	t.Helper()
	u, err := ReuseProfile((&trace.Memory{TraceName: "t", Records: recs}).Open())
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestReuseSimpleSequence(t *testing.T) {
	a, b, c := addr.Build(1, 1, 0), addr.Build(1, 2, 0), addr.Build(1, 3, 0)
	// A B C A: A's reuse sees {B, C} → distance 2.
	u := profile(t, []isa.Branch{takenAt(a), takenAt(b), takenAt(c), takenAt(a)})
	if u.Accesses != 4 || u.Cold != 3 {
		t.Fatalf("accesses=%d cold=%d", u.Accesses, u.Cold)
	}
	if len(u.distances) != 1 || u.distances[0] != 2 {
		t.Fatalf("distances = %v, want [2]", u.distances)
	}
}

func TestReuseImmediateRepeat(t *testing.T) {
	a := addr.Build(1, 1, 0)
	u := profile(t, []isa.Branch{takenAt(a), takenAt(a), takenAt(a)})
	if len(u.distances) != 2 || u.distances[0] != 0 || u.distances[1] != 0 {
		t.Fatalf("distances = %v, want [0 0]", u.distances)
	}
}

// Property: distances computed by the Fenwick profile match a naive O(n²)
// reference on random streams.
func TestReuseMatchesNaive(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		count := int(n)%120 + 8
		pcs := make([]addr.VA, 12)
		for i := range pcs {
			pcs[i] = addr.Build(1, addr.PageNum(uint64(i)), 0)
		}
		var recs []isa.Branch
		var stream []addr.VA
		for i := 0; i < count; i++ {
			pc := pcs[r.Intn(len(pcs))]
			stream = append(stream, pc)
			recs = append(recs, takenAt(pc))
		}
		u := profile(t, recs)
		// Naive reference.
		var want []int32
		lastIdx := map[addr.VA]int{}
		for i, pc := range stream {
			if j, ok := lastIdx[pc]; ok {
				distinct := map[addr.VA]bool{}
				for k := j + 1; k < i; k++ {
					distinct[stream[k]] = true
				}
				want = append(want, int32(len(distinct)))
			}
			lastIdx[pc] = i
		}
		if len(want) != len(u.distances) {
			return false
		}
		// Compare as multisets (profile sorts).
		counts := map[int32]int{}
		for _, d := range want {
			counts[d]++
		}
		for _, d := range u.distances {
			counts[d]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMissRateMonotonic(t *testing.T) {
	cfg := workload.Default()
	cfg.StaticBranches = 8000
	_, tr, err := workload.Build(cfg, 600_000)
	if err != nil {
		t.Fatal(err)
	}
	u, err := ReuseProfile(tr.Open())
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.1
	for _, c := range []int{256, 1024, 4096, 16384, 1 << 20} {
		mr := u.MissRateAt(c)
		if mr > prev {
			t.Fatalf("miss rate rose with capacity at %d: %v > %v", c, mr, prev)
		}
		prev = mr
	}
	// Infinite capacity leaves only cold misses.
	if got, want := u.MissRateAt(1<<30), float64(u.Cold)/float64(u.Accesses); got != want {
		t.Errorf("infinite-capacity miss rate %v, want cold share %v", got, want)
	}
	if u.WorkingSet() < 3000 {
		t.Errorf("working set %d suspiciously small", u.WorkingSet())
	}
}

func TestReusePredictsBTBPressure(t *testing.T) {
	// The capacity argument in one number: a frontend-bound app's miss rate
	// at 4K must exceed its miss rate at 16K by a wide margin.
	cfg := workload.Default()
	cfg.StaticBranches = 20000
	_, tr, err := workload.Build(cfg, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	u, err := ReuseProfile(tr.Open())
	if err != nil {
		t.Fatal(err)
	}
	at4k, at16k := u.MissRateAt(4096), u.MissRateAt(16384)
	if at4k < at16k+0.02 {
		t.Errorf("no capacity pressure: miss@4K=%v miss@16K=%v", at4k, at16k)
	}
}

func TestReusePercentile(t *testing.T) {
	a, b := addr.Build(1, 1, 0), addr.Build(1, 2, 0)
	u := profile(t, []isa.Branch{takenAt(a), takenAt(b), takenAt(a), takenAt(b)})
	if p := u.Percentile(50); p != 1 {
		t.Errorf("P50 = %d, want 1", p)
	}
	empty := profile(t, nil)
	if empty.Percentile(50) != 0 {
		t.Error("empty percentile not 0")
	}
}

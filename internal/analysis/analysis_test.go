package analysis

import (
	"math"
	"testing"

	"repro/internal/addr"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func mkTrace(recs ...isa.Branch) *trace.Memory {
	return &trace.Memory{TraceName: "t", Records: recs}
}

func TestCharacterizeCounts(t *testing.T) {
	pcA := addr.Build(1, 2, 0x100)
	pcB := addr.Build(1, 2, 0x200)
	tr := mkTrace(
		isa.Branch{PC: pcA, Target: addr.Build(1, 2, 0x40), BlockLen: 5, Kind: isa.CondDirect, Taken: true},
		isa.Branch{PC: pcA, Target: addr.Build(1, 2, 0x40), BlockLen: 5, Kind: isa.CondDirect, Taken: false},
		isa.Branch{PC: pcB, Target: addr.Build(3, 9, 0x40), BlockLen: 3, Kind: isa.DirectCall, Taken: true},
		isa.Branch{PC: addr.Build(3, 9, 0x80), Target: pcB.Add(4), BlockLen: 2, Kind: isa.Return, Taken: true},
	)
	c, err := Characterize(tr.Open())
	if err != nil {
		t.Fatal(err)
	}
	if c.Instructions != 15 {
		t.Errorf("Instructions = %d, want 15", c.Instructions)
	}
	if c.DynBranches != 4 || c.DynTaken != 3 {
		t.Errorf("DynBranches=%d DynTaken=%d", c.DynBranches, c.DynTaken)
	}
	if c.StaticPCs != 3 || c.StaticTakenPCs != 3 {
		t.Errorf("StaticPCs=%d StaticTakenPCs=%d", c.StaticPCs, c.StaticTakenPCs)
	}
	// Return target excluded from target sets: two unique non-return targets.
	if c.UniqueTargets != 2 {
		t.Errorf("UniqueTargets = %d, want 2", c.UniqueTargets)
	}
	if c.UniqueRegions != 2 || c.UniquePages != 2 {
		t.Errorf("regions=%d pages=%d, want 2/2", c.UniqueRegions, c.UniquePages)
	}
	// Both targets have offset 0x40.
	if c.UniqueOffsets != 1 {
		t.Errorf("UniqueOffsets = %d, want 1", c.UniqueOffsets)
	}
	if c.DynSamePage != 1 || c.DynCrossPage != 1 {
		t.Errorf("same/cross = %d/%d, want 1/1", c.DynSamePage, c.DynCrossPage)
	}
	if got := c.DynTakenRate(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("DynTakenRate = %v", got)
	}
	if got := c.ClassShare(isa.ClassUncondDirect); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("uncond share = %v", got)
	}
}

func TestBucketDistance(t *testing.T) {
	cases := []struct {
		d    uint64
		want DistanceBucket
	}{
		{0, SamePage}, {1, Near}, {15, Near}, {16, Mid}, {4095, Mid},
		{4096, Far}, {65535, Far}, {65536, VeryFar}, {1 << 30, VeryFar},
	}
	for _, c := range cases {
		if got := BucketDistance(c.d); got != c.want {
			t.Errorf("BucketDistance(%d) = %v, want %v", c.d, got, c.want)
		}
	}
	for b := DistanceBucket(0); b < NumDistanceBuckets; b++ {
		if b.String() == "" {
			t.Errorf("bucket %d unnamed", b)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	c, err := Characterize(mkTrace().Open())
	if err != nil {
		t.Fatal(err)
	}
	if c.DynTakenRate() != 0 || c.TargetsPerPage() != 0 || c.DynSamePageRate() != 0 {
		t.Error("empty-trace ratios should be zero")
	}
}

func TestTimeSeries(t *testing.T) {
	tr := mkTrace(
		isa.Branch{PC: addr.Build(1, 2, 0), Target: addr.Build(7, 5, 0x10), BlockLen: 2, Kind: isa.UncondDirect, Taken: true},
		isa.Branch{PC: addr.Build(1, 2, 8), Target: addr.Build(7, 5, 0x20), BlockLen: 2, Kind: isa.CondDirect, Taken: false},
		isa.Branch{PC: addr.Build(1, 2, 16), Target: addr.Build(9, 1, 0x30), BlockLen: 2, Kind: isa.UncondDirect, Taken: true},
		isa.Branch{PC: addr.Build(9, 1, 64), Target: addr.Build(7, 5, 0x40), BlockLen: 2, Kind: isa.UncondDirect, Taken: true},
	)
	s, err := TimeSeries(tr.Open(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 {
		t.Fatalf("samples = %d, want 3 (not-taken excluded)", len(s))
	}
	if s[0].Region != 0 || s[1].Region != 1 || s[2].Region != 0 {
		t.Errorf("region ranks = %d,%d,%d want 0,1,0", s[0].Region, s[1].Region, s[2].Region)
	}
	if s[0].Page != 0 || s[1].Page != 1 || s[2].Page != 0 {
		t.Errorf("page ranks wrong: %+v", s)
	}
	if s[2].Offset != 0x40 {
		t.Errorf("offset = %#x", s[2].Offset)
	}
	// Stride sampling.
	s2, _ := TimeSeries(tr.Open(), 2)
	if len(s2) != 1 {
		t.Errorf("stride-2 samples = %d, want 1", len(s2))
	}
}

// TestSuiteCalibration verifies that the synthetic suite reproduces the
// paper's §3 population statistics in shape. It samples a subset of the
// catalog for speed; the full-suite numbers are produced by the fig3..fig8
// experiments.
func TestSuiteCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs trace generation")
	}
	apps := workload.Catalog()
	sample := []workload.Config{apps[0], apps[13], apps[31], apps[47], apps[66], apps[77], apps[88], apps[97]}

	var takenDyn, samePage, tgtShare, pageShare, regShare, tpp, tpr float64
	var indShare float64
	for _, cfg := range sample {
		_, tr, err := workload.Build(cfg, 1_500_000)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Characterize(tr.Open())
		if err != nil {
			t.Fatal(err)
		}
		takenDyn += c.DynTakenRate()
		samePage += c.DynSamePageRate()
		tg, rg, pg, _ := c.UniqueShare()
		tgtShare += tg
		regShare += rg
		pageShare += pg
		tpp += c.TargetsPerPage()
		tpr += c.TargetsPerRegion()
		nonRet := c.DynTaken - c.DynTakenByClass[isa.ClassReturn]
		if nonRet > 0 {
			indShare += float64(c.DynTakenByClass[isa.ClassIndirect]) / float64(nonRet)
		}
	}
	n := float64(len(sample))
	checks := []struct {
		name   string
		got    float64
		lo, hi float64
	}{
		// Paper: branches taken >50% of the time (Fig 3).
		{"dynamic taken rate", takenDyn / n, 0.55, 0.92},
		// Paper: >60% of branches have target in the same page (Fig 8).
		{"same-page rate", samePage / n, 0.60, 0.92},
		// Paper: unique targets = 67% of unique PCs (Fig 7).
		{"unique target share", tgtShare / n, 0.45, 0.85},
		// Paper: unique pages ≈ 5% (Fig 7).
		{"unique page share", pageShare / n, 0.015, 0.10},
		// Paper: unique regions ≈ 0.07% (Fig 7).
		{"unique region share", regShare / n, 0.0001, 0.004},
		// Paper: ~18 targets per page (Fig 6).
		{"targets per page", tpp / n, 10, 40},
		// Paper: ~2200 targets per region (Fig 6).
		{"targets per region", tpr / n, 700, 4000},
		// Paper: all branch types occur; indirect ≈ 10% (Fig 4).
		{"indirect share", indShare / n, 0.03, 0.20},
	}
	for _, c := range checks {
		if c.got < c.lo || c.got > c.hi {
			t.Errorf("%s = %.4f outside calibration band [%.4f, %.4f]", c.name, c.got, c.lo, c.hi)
		} else {
			t.Logf("%s = %.4f (band [%.4f, %.4f])", c.name, c.got, c.lo, c.hi)
		}
	}
}

// Package serve exercises ctxblock: blocking operations reachable from
// pool goroutines must be select-guarded by ctx/done or annotated.
package serve

import (
	"context"
	"sync"
)

type pool struct {
	jobs chan int
	out  chan int
	done chan struct{}
}

// start spawns the pool: a literal goroutine body and a named worker.
func (p *pool) start(ctx context.Context) {
	go p.work(ctx)
	go func() {
		p.jobs <- 1 // want `unguarded send on p.jobs`
		select {
		case p.jobs <- 2:
		case <-ctx.Done():
		}
	}()
}

// work is reachable from the goroutine in start.
func (p *pool) work(ctx context.Context) {
	v := <-p.jobs // want `unguarded receive on p.jobs`
	select {
	case w := <-p.jobs:
		v += w
	default:
	}
	<-p.done // a done-channel receive: blocking until shutdown is the point
	//pdede:blocking-ok reply channel is buffered with capacity 1
	p.out <- v
	p.forward(ctx, v)
}

// forward is reachable transitively (start → work → forward).
func (p *pool) forward(ctx context.Context, v int) {
	p.out <- v // want `unguarded send on p.out`
	select {
	case p.out <- v:
	case <-ctx.Done():
	}
}

// drain ranges over the queue: the close-terminated idiom is exempt.
func (p *pool) drain() int {
	total := 0
	for v := range p.jobs {
		total += v
	}
	return total
}

// spawnDrain proves the range exemption survives the closure walk.
func (p *pool) spawnDrain() {
	go p.drain()
}

// waitAll blocks on a WaitGroup from a pool goroutine.
func (p *pool) waitAll(wg *sync.WaitGroup) {
	go func() {
		wg.Wait() // want `unguarded sync wait on wg.Wait`
	}()
}

// offPath blocks, but nothing spawns it as (or from) a goroutine: out of
// scope for this check.
func (p *pool) offPath() {
	p.jobs <- 9
}

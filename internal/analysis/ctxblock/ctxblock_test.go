package ctxblock_test

import (
	"testing"

	"repro/internal/analysis/ctxblock"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/lintkit/linttest"
)

func TestCtxblock(t *testing.T) {
	linttest.Run(t, "testdata/src/fix", []*lintkit.Analyzer{ctxblock.Analyzer})
}

// Package ctxblock enforces cancellation-awareness in pool goroutines: a
// blocking channel send/receive or sync wait that a goroutine spawned in
// internal/serve or internal/experiments can reach must be select-guarded
// by a ctx.Done()/done-channel case or a default, or carry
// `//pdede:blocking-ok`.
//
// Both packages run worker pools with bounded queues. A bare `ch <- x` in
// a worker survives every test where the peer is alive — and deadlocks the
// drain path the first time a tenant is shed or a run is cancelled between
// the send and its receiver. The repository's idiom is
//
//	select {
//	case ch <- x:
//	case <-ctx.Done():
//	}
//
// and this check makes the idiom mandatory wherever a pool goroutine can
// block. Roots are `go` statements: a literal body is scanned directly,
// named callees are closed over the in-package call graph, and every
// blocking operation found (flowkit.BlockingOps) must be guarded.
//
// Two shapes pass by design:
//
//   - `for job := range queue` — the close-terminated drain loop;
//     termination is the closer's obligation, not the ranger's.
//   - a bare receive from a cancellation channel (`<-ctx.Done()`,
//     `<-s.stop`) — blocking until shutdown is the point.
//
// Escape: `//pdede:blocking-ok <reason>` on the operation's line (or the
// line above), or on the containing function's doc comment — for sends on
// buffered channels with proven capacity (the reply-channel pattern) and
// waits with externally-bounded latency.
package ctxblock

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/flowkit"
	"repro/internal/analysis/lintkit"
)

// Analyzer is the ctxblock lint pass.
var Analyzer = &lintkit.Analyzer{
	Name: "ctxblock",
	Doc:  "blocking channel operations and sync waits reachable from serve/experiments pool goroutines must be select-guarded by ctx/done or annotated //pdede:blocking-ok",
	Run:  run,
}

// scope: the two packages that spawn worker-pool goroutines.
var scope = []string{"internal/serve", "internal/experiments"}

func run(pass *lintkit.Pass) error {
	if !pass.InScope(scope) {
		return nil
	}
	cg := flowkit.BuildCallGraph(pass.Files, pass.Pkg, pass.TypesInfo)
	sums := flowkit.BuildSummaries(cg, pass.Pkg, pass.TypesInfo)

	var fns []*types.Func
	for fn := range cg.Decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })

	// Roots: every `go` statement. Literal bodies contribute their blocking
	// ops directly; named callees (and calls made inside literals) seed the
	// call-graph closure.
	type fileOp struct {
		op   flowkit.BlockOp
		file *ast.File
	}
	var litOps []fileOp
	var targets []*types.Func
	for _, fn := range fns {
		fd := cg.Decls[fn]
		file := cg.File(fn)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				for _, op := range flowkit.BlockingOps(lit.Body, pass.TypesInfo) {
					litOps = append(litOps, fileOp{op: op, file: file})
				}
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if c, ok := cg.CallAt(call); ok {
						targets = append(targets, c.Targets...)
					}
					return true
				})
				return true
			}
			if c, ok := cg.CallAt(gs.Call); ok {
				targets = append(targets, c.Targets...)
			}
			return true
		})
	}

	reported := make(map[token.Pos]bool)
	report := func(file *ast.File, enclosing *ast.FuncDecl, op flowkit.BlockOp) {
		if op.Guarded || reported[op.Pos] {
			return
		}
		reported[op.Pos] = true
		if enclosing != nil && pass.FuncHasDirective(file, enclosing, "blocking-ok") {
			return
		}
		if pass.NodeHasDirective(file, op.Node, "blocking-ok") {
			return
		}
		pass.Reportf(op.Pos,
			"pool goroutine can block forever: unguarded %s on %s — select it against ctx.Done()/a done channel (or //pdede:blocking-ok with the capacity argument)",
			op.Kind, op.Expr)
	}

	closure := cg.Reachable(targets)
	var reach []*types.Func
	for fn := range closure {
		reach = append(reach, fn)
	}
	sort.Slice(reach, func(i, j int) bool { return reach[i].FullName() < reach[j].FullName() })
	for _, fn := range reach {
		sum := sums.ByFunc[fn]
		if sum == nil {
			continue
		}
		for _, op := range sum.Blocking {
			report(cg.File(fn), cg.Decls[fn], op)
		}
	}
	for _, fo := range litOps {
		report(fo.file, nil, fo.op)
	}
	return nil
}

package auditcontract_test

import (
	"testing"

	"repro/internal/analysis/auditcontract"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/lintkit/linttest"
)

func TestAuditContract(t *testing.T) {
	linttest.Run(t, "testdata/src/fix", []*lintkit.Analyzer{auditcontract.Analyzer})
}

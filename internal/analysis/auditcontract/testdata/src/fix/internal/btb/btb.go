// Package btb is an auditcontract fixture declaring the two contracts and
// a spread of designs: audited/registered, audited/unregistered, and
// unaudited.
package btb

// TargetPredictor mirrors the real contract's shape.
type TargetPredictor interface {
	Name() string
	Reset()
}

// Auditable is the deep-check contract.
type Auditable interface{ Audit() error }

// Good implements both contracts and is constructed in the registry.
type Good struct{}

func (*Good) Name() string { return "good" }
func (*Good) Reset()       {}
func (*Good) Audit() error { return nil }

// NewGood is the (T, error) constructor shape the registry uses.
func NewGood() (*Good, error) { return &Good{}, nil }

// Orphan implements both contracts but never appears in the registry.
type Orphan struct{}

func (*Orphan) Name() string { return "orphan" }
func (*Orphan) Reset()       {}
func (*Orphan) Audit() error { return nil }

type Unaudited struct{} // want `BTB design Unaudited implements TargetPredictor but not Auditable`

func (*Unaudited) Name() string { return "unaudited" }
func (*Unaudited) Reset()       {}

// Delegating wraps another design and exposes no state of its own.
//
//pdede:unaudited-ok invariants fully delegated to the wrapped design
type Delegating struct{ inner TargetPredictor }

func (*Delegating) Name() string { return "delegating" }
func (*Delegating) Reset()       {}

// helper is unexported: outside the contract.
type helper struct{}

func (*helper) Name() string { return "helper" }
func (*helper) Reset()       {}

// Table is exported but not a predictor: outside the contract.
type Table struct{}

func (*Table) Size() int { return 0 }

// Package experiments is the auditcontract fixture registry.
//
//pdede:unregistered-ok Unaudited fixture type exercising the auditable check
//pdede:unregistered-ok Delegating covered through the designs it wraps
package experiments

import "fix/internal/btb"

// Design mirrors the real registry entry shape.
type Design struct {
	Name string
	New  func() (btb.TargetPredictor, error)
}

func DiffDesigns() []Design { // want `diff-design registry is missing btb.Orphan`
	return []Design{
		{Name: "good", New: func() (btb.TargetPredictor, error) { return btb.NewGood() }},
	}
}

// Package auditcontract implements the pdede-lint analyzer tying every BTB
// design to the runtime verification machinery.
//
// The differential-oracle subsystem (internal/oracle) only protects designs
// that opt in twice: the type must implement btb.Auditable so deep
// invariant checks run, and it must be constructed in the diff-design
// registry (experiments.DiffDesigns) so the check-deep sweep actually
// drives it against its reference oracle. Both obligations are easy to
// forget when adding a design — the code builds, predicts, and silently
// skips every safety net. This analyzer turns both omissions into lint
// failures:
//
//   - every exported concrete type in a design package (internal/btb,
//     internal/pdede, internal/shotgun, internal/multilevel) that
//     implements btb.TargetPredictor must also implement btb.Auditable;
//   - every such type must be constructed somewhere in the registry
//     package (internal/experiments), which the check-deep sweep and the
//     oracle tests enumerate via experiments.DiffDesigns.
//
// Escape hatch: `//pdede:unaudited-ok <reason>` in the type's doc comment
// exempts a type from both requirements (for wrappers whose invariants are
// fully delegated).
package auditcontract

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/lintkit"
)

// DesignScope is the import-path suffixes of packages that declare concrete
// BTB designs.
var DesignScope = []string{
	"internal/btb",
	"internal/pdede",
	"internal/shotgun",
	"internal/multilevel",
}

// RegistryScope is the package acting as the diff-design registry: every
// design must be constructed somewhere inside it.
const RegistryScope = "internal/experiments"

// btbPkgSuffix locates the package declaring the contracts.
const btbPkgSuffix = "internal/btb"

// Analyzer is the audit-contract check.
var Analyzer = &lintkit.Analyzer{
	Name: "auditcontract",
	Doc: "require every concrete BTB design to implement btb.Auditable and to be " +
		"constructed in the diff-design registry (internal/experiments)",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if pass.InScope(DesignScope) {
		checkAuditable(pass)
	}
	if lintkit.PathHasSuffix(pass.Pkg.Path(), RegistryScope) {
		checkRegistry(pass)
	}
	return nil
}

// contracts resolves the TargetPredictor and Auditable interfaces from the
// btb package (which may be the package under analysis or one of its
// imports). Returns nils when unreachable — the analyzer then stays inert.
func contracts(pass *lintkit.Pass) (predictor, auditable *types.Interface) {
	lookup := func(pkg *types.Package) {
		if !lintkit.PathHasSuffix(pkg.Path(), btbPkgSuffix) {
			return
		}
		if tn, ok := pkg.Scope().Lookup("TargetPredictor").(*types.TypeName); ok {
			if i, ok := tn.Type().Underlying().(*types.Interface); ok {
				predictor = i
			}
		}
		if tn, ok := pkg.Scope().Lookup("Auditable").(*types.TypeName); ok {
			if i, ok := tn.Type().Underlying().(*types.Interface); ok {
				auditable = i
			}
		}
	}
	lookup(pass.Pkg)
	for _, imp := range pass.Pkg.Imports() {
		if predictor != nil && auditable != nil {
			break
		}
		lookup(imp)
	}
	return predictor, auditable
}

// isDesign reports whether named is an exported concrete type whose pointer
// (or value) implements the predictor interface.
func isDesign(named *types.Named, predictor *types.Interface) bool {
	if !named.Obj().Exported() {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return false
	}
	return types.Implements(types.NewPointer(named), predictor) || types.Implements(named, predictor)
}

func implementsAuditable(named *types.Named, auditable *types.Interface) bool {
	return types.Implements(types.NewPointer(named), auditable) || types.Implements(named, auditable)
}

// designTypes enumerates the design types declared in pkg, sorted by name.
func designTypes(pkg *types.Package, predictor *types.Interface) []*types.Named {
	var out []*types.Named
	scope := pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if isDesign(named, predictor) {
			out = append(out, named)
		}
	}
	return out
}

// checkAuditable flags designs in the package under analysis that skip the
// Audit contract.
func checkAuditable(pass *lintkit.Pass) {
	predictor, auditable := contracts(pass)
	if predictor == nil || auditable == nil {
		return
	}
	for _, named := range designTypes(pass.Pkg, predictor) {
		if implementsAuditable(named, auditable) {
			continue
		}
		file, spec := typeSpecOf(pass, named.Obj().Name())
		if spec != nil && typeExempt(pass, file, spec) {
			continue
		}
		pos := named.Obj().Pos()
		if spec != nil {
			pos = spec.Pos()
		}
		pass.Reportf(pos, "BTB design %s implements TargetPredictor but not Auditable: add an Audit() error deep-check (or annotate //pdede:unaudited-ok with a reason)",
			named.Obj().Name())
	}
}

// typeSpecOf finds the declaration of a package-level type by name.
func typeSpecOf(pass *lintkit.Pass, name string) (*ast.File, *ast.TypeSpec) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if ok && ts.Name.Name == name {
					return file, ts
				}
			}
		}
	}
	return nil, nil
}

// typeExempt reports whether the type's doc (or the line above the spec)
// carries the unaudited-ok directive.
func typeExempt(pass *lintkit.Pass, file *ast.File, ts *ast.TypeSpec) bool {
	if pass.NodeHasDirective(file, ts, "unaudited-ok") {
		return true
	}
	if ts.Doc != nil {
		for _, c := range ts.Doc.List {
			if strings.HasPrefix(c.Text, lintkit.DirectivePrefix+"unaudited-ok") {
				return true
			}
		}
	}
	return false
}

// checkRegistry verifies, from inside the registry package, that every
// design type declared by the imported design packages is constructed
// somewhere in this package.
func checkRegistry(pass *lintkit.Pass) {
	predictor, _ := contracts(pass)
	if predictor == nil {
		return
	}

	// Everything this package constructs (any call returning a design type,
	// including the (T, error) constructor shape), plus composite literals.
	constructed := map[string]bool{}
	noteType := func(t types.Type) {
		if t == nil {
			return
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && isDesign(named, predictor) {
			constructed[keyOf(named)] = true
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				switch rt := pass.TypesInfo.TypeOf(n).(type) {
				case *types.Tuple:
					for i := 0; i < rt.Len(); i++ {
						noteType(rt.At(i).Type())
					}
				default:
					noteType(rt)
				}
			case *ast.CompositeLit:
				noteType(pass.TypesInfo.TypeOf(n))
			}
			return true
		})
	}

	exempt := registryExemptions(pass)
	var missing []string
	for _, imp := range pass.Pkg.Imports() {
		inScope := false
		for _, s := range DesignScope {
			if lintkit.PathHasSuffix(imp.Path(), s) {
				inScope = true
				break
			}
		}
		if !inScope {
			continue
		}
		for _, named := range designTypes(imp, predictor) {
			key := keyOf(named)
			if !constructed[key] && !exempt[named.Obj().Name()] {
				missing = append(missing, key)
			}
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(anchorPos(pass), "diff-design registry is missing %s: construct them here so the oracle sweep covers them (or annotate //pdede:unregistered-ok <Type> <reason>)",
		strings.Join(missing, ", "))
}

func keyOf(named *types.Named) string {
	return fmt.Sprintf("%s.%s", named.Obj().Pkg().Name(), named.Obj().Name())
}

// registryExemptions collects `//pdede:unregistered-ok TypeName reason`
// directives anywhere in the registry package.
func registryExemptions(pass *lintkit.Pass) map[string]bool {
	out := map[string]bool{}
	for _, file := range pass.Files {
		for _, d := range pass.FileDirectives(file) {
			if d.Name != "unregistered-ok" {
				continue
			}
			if name, _, _ := strings.Cut(d.Args, " "); name != "" {
				out[name] = true
			}
		}
	}
	return out
}

// anchorPos picks a stable position for package-level registry findings:
// the DiffDesigns declaration when present, the first file otherwise.
func anchorPos(pass *lintkit.Pass) token.Pos {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == "DiffDesigns" {
				return fn.Pos()
			}
		}
	}
	return pass.Files[0].Pos()
}

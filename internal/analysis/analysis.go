// Package analysis computes the branch-population statistics the paper uses
// to motivate PDede (§3, Figures 3–8): taken rates, branch-type mix, target
// region/page/offset cardinalities, targets per page and region, and the
// page distance between branch PCs and their targets.
package analysis

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/addr"
	"repro/internal/isa"
	"repro/internal/trace"
)

// DistanceBucket classifies the page distance between a branch PC and its
// target (Figure 8).
type DistanceBucket int

const (
	// SamePage: distance 0 pages.
	SamePage DistanceBucket = iota
	// Near: 1–15 pages away.
	Near
	// Mid: 16–4095 pages away.
	Mid
	// Far: 4096–65535 pages away.
	Far
	// VeryFar: ≥ 65536 pages (typically a different ASLR region).
	VeryFar

	NumDistanceBuckets = 5
)

var distanceNames = [NumDistanceBuckets]string{
	"same-page", "1-15", "16-4K", "4K-64K", ">64K",
}

func (d DistanceBucket) String() string {
	if int(d) < len(distanceNames) {
		return distanceNames[d]
	}
	return fmt.Sprintf("DistanceBucket(%d)", int(d))
}

// BucketDistance maps a page distance to its bucket.
func BucketDistance(pages uint64) DistanceBucket {
	switch {
	case pages == 0:
		return SamePage
	case pages < 16:
		return Near
	case pages < 4096:
		return Mid
	case pages < 65536:
		return Far
	default:
		return VeryFar
	}
}

// Characterization aggregates every §3 statistic over one trace. All
// "unique" sets are computed over *taken* branches, matching the paper: only
// taken branches consume BTB entries.
type Characterization struct {
	// Instructions is the total dynamic instruction count.
	Instructions uint64
	// DynBranches / DynTaken count dynamic branch records.
	DynBranches uint64
	DynTaken    uint64
	// DynTakenByClass splits dynamic taken branches by Figure 4 class.
	DynTakenByClass [isa.NumClasses]uint64

	// StaticPCs is the number of unique branch PCs observed; StaticTakenPCs
	// the subset observed taken at least once.
	StaticPCs      int
	StaticTakenPCs int

	// UniqueTargets/Regions/Pages/Offsets are the Figure 7 cardinalities
	// over targets of taken non-return branches.
	UniqueTargets int
	UniqueRegions int
	UniquePages   int
	UniqueOffsets int

	// DistanceByClass histograms PC→target page distance for taken
	// non-return branches (Figure 8).
	DistanceByClass [isa.NumClasses][NumDistanceBuckets]uint64
	// DynSamePage / DynCrossPage count dynamic taken non-return branches.
	DynSamePage  uint64
	DynCrossPage uint64
	// StaticSamePage counts unique taken non-return branch PCs whose target
	// set stays within the branch's page.
	StaticSamePage int
}

// Characterize consumes an entire trace.
func Characterize(r trace.Reader) (*Characterization, error) {
	c := &Characterization{}
	pcs := make(map[addr.VA]uint8) // bit0 seen, bit1 taken, bit2 same-page only
	targets := make(map[addr.VA]struct{})
	regions := make(map[addr.RegionID]struct{})
	pages := make(map[uint64]struct{}) // full PageAddr (region‖page), not a PageNum
	offsets := make(map[addr.PageOffset]struct{})

	for {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		c.Instructions += uint64(b.BlockLen)
		c.DynBranches++
		flags := pcs[b.PC] | 1
		if b.Taken {
			c.DynTaken++
			c.DynTakenByClass[b.Kind.Class()]++
			flags |= 2
			if !b.Kind.IsReturn() {
				targets[b.Target] = struct{}{}
				regions[b.Target.Region()] = struct{}{}
				pages[b.Target.PageAddr()] = struct{}{}
				offsets[b.Target.Offset()] = struct{}{}
				dist := b.PC.PageDistance(b.Target)
				c.DistanceByClass[b.Kind.Class()][BucketDistance(dist)]++
				if dist == 0 {
					c.DynSamePage++
					flags |= 4
				} else {
					c.DynCrossPage++
					flags &^= 4
					flags |= 8 // ever cross-page
				}
			}
		}
		pcs[b.PC] = flags
	}

	c.StaticPCs = len(pcs)
	for _, f := range pcs {
		if f&2 != 0 {
			c.StaticTakenPCs++
		}
		if f&4 != 0 && f&8 == 0 {
			c.StaticSamePage++
		}
	}
	c.UniqueTargets = len(targets)
	c.UniqueRegions = len(regions)
	c.UniquePages = len(pages)
	c.UniqueOffsets = len(offsets)
	return c, nil
}

// DynTakenRate is the Figure 3 dynamic metric: the fraction of dynamic
// branch instructions that are taken.
func (c *Characterization) DynTakenRate() float64 {
	return ratio(c.DynTaken, c.DynBranches)
}

// StaticTakenRate is the Figure 3 static metric: the fraction of static
// branch PCs ever observed taken.
func (c *Characterization) StaticTakenRate() float64 {
	return ratio(uint64(c.StaticTakenPCs), uint64(c.StaticPCs))
}

// ClassShare is the Figure 4 metric: class's share of dynamic taken
// branches.
func (c *Characterization) ClassShare(cl isa.Class) float64 {
	return ratio(c.DynTakenByClass[cl], c.DynTaken)
}

// UniqueShare returns the Figure 7 ratios relative to unique taken branch
// PCs: targets, regions, pages and offsets.
func (c *Characterization) UniqueShare() (targets, regions, pages, offsets float64) {
	n := uint64(c.StaticTakenPCs)
	return ratio(uint64(c.UniqueTargets), n),
		ratio(uint64(c.UniqueRegions), n),
		ratio(uint64(c.UniquePages), n),
		ratio(uint64(c.UniqueOffsets), n)
}

// TargetsPerPage and TargetsPerRegion are the Figure 6 metrics.
func (c *Characterization) TargetsPerPage() float64 {
	return ratio(uint64(c.UniqueTargets), uint64(c.UniquePages))
}

func (c *Characterization) TargetsPerRegion() float64 {
	return ratio(uint64(c.UniqueTargets), uint64(c.UniqueRegions))
}

// DynSamePageRate is the Figure 8 headline: fraction of dynamic taken
// non-return branches whose target shares the branch's page.
func (c *Characterization) DynSamePageRate() float64 {
	return ratio(c.DynSamePage, c.DynSamePage+c.DynCrossPage)
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// MPKIDenominator converts an event count into per-kilo-instruction units.
func (c *Characterization) MPKIDenominator(events uint64) float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(events) * 1000 / float64(c.Instructions)
}

// Package guardedby enforces lock discipline on annotated fields: a field
// declared with `//pdede:guarded-by(mu)` may only be read or written while
// the named sibling mutex is held on every control-flow path.
//
// The experiment harness (runner, checkpoint) shares per-run state between
// the driving goroutine and workers; a forgotten Lock around one access is
// a data race the race detector only catches when the schedule cooperates.
// This check proves the discipline statically: flowkit builds the
// function's CFG, a must-hold dataflow tracks which mutexes are locked on
// *all* paths reaching each statement (`x.mu.Lock()` generates the fact,
// `x.mu.Unlock()` kills it, intersection at joins), and every access to a
// guarded field is checked against the lock set.
//
// Conventions:
//
//   - `defer x.mu.Unlock()` does not kill the fact — the mutex stays held
//     until return, which is exactly Go's idiom.
//   - A function whose doc comment carries `//pdede:guarded-by(mu)`
//     declares the precondition "caller holds recv.mu": the fact is seeded
//     at entry (the flushLocked pattern).
//   - Accesses through a locally-allocated object (`c := &Checkpoint{...}`,
//     `new(T)`, or a composite literal) are exempt: no other goroutine can
//     reach storage that has not escaped the constructor yet.
//   - Function literals are skipped: a closure may run on another
//     goroutine, so its lock context is not the enclosing function's. The
//     closure body's own Lock/Unlock calls are still analyzed when the
//     closure is assigned to a named function — otherwise accesses inside
//     it are out of scope for this check.
//
// Escape: `//pdede:guardedby-ok <reason>` on the access line or the line
// above (e.g. single-goroutine setup phases).
package guardedby

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/flowkit"
	"repro/internal/analysis/lintkit"
)

// Analyzer is the guardedby lint pass.
var Analyzer = &lintkit.Analyzer{
	Name: "guardedby",
	Doc:  "require fields annotated //pdede:guarded-by(mu) to be accessed only with the named mutex held on every control-flow path",
	Run:  run,
}

// scope: the concurrent experiment harness, the multi-tenant service, and
// the trace layer's concurrently-opened fault-injection sources.
var scope = []string{"internal/experiments", "internal/serve", "internal/trace"}

func run(pass *lintkit.Pass) error {
	if !pass.InScope(scope) {
		return nil
	}
	guards := guardedFields(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, file, fd, guards)
		}
	}
	return nil
}

// guardedFields maps each annotated field to the name of its guarding
// mutex (the argument of //pdede:guarded-by(mu), a sibling field).
func guardedFields(pass *lintkit.Pass) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for _, file := range pass.Files {
		f := file
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := fieldGuard(pass, f, field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldGuard extracts the mutex name from a field's //pdede:guarded-by(mu)
// directive (doc comment, line comment, or the line above).
func fieldGuard(pass *lintkit.Pass, file *ast.File, field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if mu, ok := parseGuard(c.Text); ok {
				return mu, true
			}
		}
	}
	line := pass.Fset.Position(field.Pos()).Line
	for _, d := range pass.FileDirectives(file) {
		dl := pass.Fset.Position(d.Pos).Line
		if dl != line && dl != line-1 {
			continue
		}
		if mu, ok := parseGuard(lintkit.DirectivePrefix + d.Name + " " + d.Args); ok {
			return mu, true
		}
	}
	return "", false
}

// parseGuard parses "//pdede:guarded-by(mu)".
func parseGuard(text string) (string, bool) {
	const prefix = lintkit.DirectivePrefix + "guarded-by("
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	i := strings.IndexByte(rest, ')')
	if i <= 0 {
		return "", false
	}
	return rest[:i], true
}

func checkFunc(pass *lintkit.Pass, file *ast.File, fd *ast.FuncDecl, guards map[*types.Var]string) {
	info := pass.TypesInfo
	g := flowkit.New(fd.Body)

	// Entry precondition: //pdede:guarded-by(mu) on the function doc means
	// the caller holds recv.mu.
	var entry []string
	if fd.Doc != nil && fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvName := fd.Recv.List[0].Names[0].Name
		for _, c := range fd.Doc.List {
			if mu, ok := parseGuard(c.Text); ok {
				entry = append(entry, recvName+"."+mu)
			}
		}
	}

	held := flowkit.MustHold(g, entry, lockGenKill(info))
	local := locallyAllocated(fd, info)

	for _, blk := range g.Blocks {
		for _, s := range blk.Stmts {
			facts := held[s]
			walkStmtExprs(s, func(e ast.Expr) {
				sel, ok := e.(*ast.SelectorExpr)
				if !ok {
					return
				}
				f, ok := selectedField(info, sel)
				if !ok {
					return
				}
				mu, guarded := guards[f]
				if !guarded {
					return
				}
				baseName, key, ok := lockKey(sel.X, mu)
				if !ok {
					return
				}
				if local[baseName] {
					return // not escaped yet: constructor-private
				}
				if facts.Has(key) {
					return
				}
				if pass.NodeHasDirective(file, sel, "guardedby-ok") {
					return
				}
				pass.Reportf(sel.Pos(),
					"%s.%s is guarded by %s, which is not held on every path to this access",
					types.ExprString(sel.X), f.Name(), key)
			})
		}
	}
}

// walkStmtExprs visits the expressions evaluated by s itself — not the
// bodies of nested control statements (those live in their own CFG blocks)
// and not function literals (their lock context is not ours).
func walkStmtExprs(s ast.Stmt, visit func(ast.Expr)) {
	walkExpr := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if e, ok := n.(ast.Expr); ok {
				visit(e)
			}
			return true
		})
	}
	if cond, ok := flowkit.CondExprs(s); ok {
		for _, e := range cond {
			walkExpr(e)
		}
		return
	}
	if r, ok := s.(*ast.RangeStmt); ok {
		walkExpr(r.X)
		return
	}
	// A simple statement: walk it wholesale, skipping function literals.
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			visit(e)
		}
		return true
	})
}

// selectedField resolves sel to the struct field it selects, if any.
func selectedField(info *types.Info, sel *ast.SelectorExpr) (*types.Var, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, false
	}
	v, ok := s.Obj().(*types.Var)
	return v, ok
}

// lockKey canonicalises the guarded access's base expression and appends
// the mutex name: access `c.done[k]` guarded by mu → base "c", key "c.mu".
// Only simple ident bases are supported; anything else is skipped (unknown
// base ⇒ no sound fact to check against).
func lockKey(base ast.Expr, mu string) (baseName, key string, ok bool) {
	base = ast.Unparen(base)
	if star, ok := base.(*ast.StarExpr); ok {
		base = ast.Unparen(star.X)
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	return id.Name, id.Name + "." + mu, true
}

// lockGenKill recognises sync lock operations: `x.mu.Lock()` ⇒ gen "x.mu",
// `x.mu.Unlock()` ⇒ kill. RLock/RUnlock count too — readers of guarded
// fields are safe under the read lock, and the analysis does not
// distinguish read from write accesses. Deferred unlocks are DeferStmt,
// not ExprStmt, so they never kill: the lock stays held to return.
func lockGenKill(info *types.Info) flowkit.GenKill {
	return func(s ast.Stmt) (gen, kill []string) {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return nil, nil
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return nil, nil
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil, nil
		}
		if !isMutexType(info, sel.X) {
			return nil, nil
		}
		key := types.ExprString(sel.X)
		switch sel.Sel.Name {
		case "Lock", "RLock":
			return []string{key}, nil
		case "Unlock", "RUnlock":
			return nil, []string{key}
		}
		return nil, nil
	}
}

// isMutexType reports whether e's type is (or points to) a sync.Mutex or
// sync.RWMutex — or, in fixtures, any named type ending in "Mutex".
func isMutexType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return strings.HasSuffix(named.Obj().Name(), "Mutex")
}

// locallyAllocated finds locals bound to freshly-allocated objects (`c :=
// &T{...}`, `c := new(T)`) whose guarded fields are exempt: storage that
// has not escaped the constructor cannot be raced. Keyed by name because
// lockKey works on rendered names; shadowing a fresh-alloc name with an
// escaped value inside one function would be pathological style the
// harness does not use.
func locallyAllocated(fd *ast.FuncDecl, _ *types.Info) map[string]bool {
	names := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if isFreshAlloc(as.Rhs[i]) {
				names[id.Name] = true
			}
		}
		return true
	})
	return names
}

func isFreshAlloc(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

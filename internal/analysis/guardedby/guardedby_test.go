package guardedby_test

import (
	"testing"

	"repro/internal/analysis/guardedby"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/lintkit/linttest"
)

func TestGuardedby(t *testing.T) {
	linttest.Run(t, "testdata/src/fix", []*lintkit.Analyzer{guardedby.Analyzer})
}

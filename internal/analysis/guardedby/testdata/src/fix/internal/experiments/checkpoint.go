// Package experiments is a corruption-injection fixture: a miniature copy
// of the real checkpoint with a lock-free read deliberately seeded in, so
// the guardedby analyzer's detection is itself tested.
package experiments

import "sync"

// Result stands in for core.Result.
type Result struct{ MPKI float64 }

// Checkpoint mirrors the real structure: mutex-guarded progress maps
// shared between the driving goroutine and workers.
type Checkpoint struct {
	path string

	mu sync.Mutex
	//pdede:guarded-by(mu)
	designs map[string]string
	//pdede:guarded-by(mu)
	done map[string]map[string]*Result
}

// NewCheckpoint is the constructor: writes before the object escapes are
// exempt (locally allocated).
func NewCheckpoint(path string) *Checkpoint {
	c := &Checkpoint{
		path:    path,
		designs: make(map[string]string),
		done:    make(map[string]map[string]*Result),
	}
	c.designs["seed"] = "d0" // fresh allocation: no lock needed yet
	return c
}

// Done is the disciplined reader: lock, defer unlock, access.
func (c *Checkpoint) Done(app, design string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.done[app][design]
	return r, ok
}

// Record is the disciplined writer with an inline unlock.
func (c *Checkpoint) Record(app, design string, r *Result) {
	c.mu.Lock()
	m := c.done[app]
	if m == nil {
		m = make(map[string]*Result)
		c.done[app] = m
	}
	m[design] = r
	c.flushLocked()
	c.mu.Unlock()
}

// flushLocked declares the caller-holds precondition, so its accesses pass
// without a Lock of its own.
//
//pdede:guarded-by(mu)
func (c *Checkpoint) flushLocked() {
	for app := range c.done {
		_ = app
	}
	_ = len(c.designs)
}

// Peek is the seeded corruption: a read of both guarded maps with no lock
// anywhere on the path.
func (c *Checkpoint) Peek(app string) int {
	n := len(c.done[app])      // want `c.done is guarded by c.mu`
	_, ok := c.designs["seed"] // want `c.designs is guarded by c.mu`
	if ok {
		return n
	}
	return 0
}

// HalfLocked locks on only one branch: the access after the join must
// still be flagged (must-hold intersection).
func (c *Checkpoint) HalfLocked(lock bool) int {
	if lock {
		c.mu.Lock()
	}
	n := len(c.designs) // want `c.designs is guarded by c.mu`
	if lock {
		c.mu.Unlock()
	}
	return n
}

// Unlocked re-reads after releasing: the kill must apply.
func (c *Checkpoint) Unlocked() int {
	c.mu.Lock()
	n := len(c.designs)
	c.mu.Unlock()
	return n + len(c.designs) // want `c.designs is guarded by c.mu`
}

// Waived carries the reasoned escape: single-goroutine setup phase.
func (c *Checkpoint) Waived() int {
	//pdede:guardedby-ok fixture: called before any worker goroutine starts
	return len(c.designs)
}

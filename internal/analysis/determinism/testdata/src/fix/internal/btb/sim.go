// Package btb is a determinism fixture standing in for a simulation-scope
// package (its import path ends in internal/btb).
package btb

import (
	"math/rand"
	"sort"
	"time"
)

func Clock() int64 {
	return time.Now().UnixNano() // want `wall-clock read time.Now`
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read time.Since`
}

func Jitter() int {
	return rand.Intn(8) // want `process-seeded global source`
}

func Draw(r *rand.Rand) int {
	return r.Intn(8) // ok: explicit seeded generator
}

func NewGen(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: constructors do not draw
}

func FirstKey(m map[uint64]int) uint64 {
	for k := range m { // want `returning from inside the loop`
		return k
	}
	return 0
}

func Sum(m map[uint64]int) int {
	total := 0
	for _, v := range m { // ok: commutative accumulation
		total += v
	}
	return total
}

func Histogram(m map[uint64]int) map[int]int {
	h := map[int]int{}
	for _, v := range m { // ok: map-index writes commute
		h[v]++
	}
	return h
}

func Keys(m map[uint64]int) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m { // ok: blessed collect-then-sort idiom
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func Winner(m map[int]int) int {
	best, bestN := -1, 0
	for id, n := range m { // want `selecting a winner by comparison`
		if n > bestN {
			best, bestN = id, n
		}
	}
	return best
}

func Escaped(m map[int]int) {
	for id := range m { //pdede:nondet-ok fixture: order provably cannot reach results
		println(id)
	}
}

func SliceRange(xs []int) int {
	for i, v := range xs { // ok: slices iterate in index order
		if v > 0 {
			return i
		}
	}
	return -1
}
